// Deterministic-schedule protocol simulation (src/check/): reproducibility,
// a seeded schedule sweep checked against the SWMR + coherence invariants,
// and an injected protocol bug that the checker must catch.
//
// Replay workflow: a sweep failure prints its seed; re-run just that
// schedule with
//   MILLIPAGE_SIM_SEED=<seed> ./sim_test --gtest_filter='*ReplayEnvSeed*'

#include <cstdlib>
#include <string>

#include "gtest/gtest.h"
#include "src/check/history_checker.h"
#include "src/check/sim_harness.h"
#include "src/common/failpoint.h"

namespace millipage {
namespace {

// MILLIPAGE_MANAGER_POLICY=sharded re-runs every simulation with the
// directory sharded across hosts (the CI matrix sets it); default is the
// centralized manager.
ManagerPolicy PolicyFromEnv() {
  const char* env = std::getenv("MILLIPAGE_MANAGER_POLICY");
  return (env != nullptr && std::string(env) == "sharded") ? ManagerPolicy::kSharded
                                                           : ManagerPolicy::kCentralized;
}

SimWorkload SweepWorkload() {
  SimWorkload w;
  w.hosts = 3;
  w.cells = 4;
  w.rounds = 3;
  w.ops_per_round = 4;
  w.use_locks = true;
  w.policy = PolicyFromEnv();
  // MILLIPAGE_FAULT_BACKEND=uffd re-runs every simulation with the views
  // wired to the userfaultfd backend (the CI backend matrix sets it).
  w.backend = FaultBackendFromEnv();
  return w;
}

// Runs one seed and verifies every invariant — including shard affinity when
// the workload shards the directory — printing the seed and the minimal
// violating history prefix on failure.
void RunAndCheck(uint64_t seed, const SimWorkload& w) {
  SimResult r = RunSim(seed, w);
  ASSERT_TRUE(r.status.ok()) << "seed " << seed << ": " << r.status.ToString() << "\n"
                             << r.FormattedHistory();
  ASSERT_GT(r.history.size(), 0u) << "seed " << seed << " recorded no events";
  const CheckReport report =
      CheckHistory(r.history, w.hosts, w.policy == ManagerPolicy::kSharded);
  ASSERT_TRUE(report.ok) << "seed " << seed << ":\n"
                         << report.FormatViolation(r.history)
                         << "\nreplay: MILLIPAGE_SIM_SEED=" << seed
                         << " ./sim_test --gtest_filter='*ReplayEnvSeed*'";
}

// The reproducibility contract: the same seed produces a byte-for-byte
// identical event history, run after run.
TEST(SimDeterminism, SameSeedSameHistory) {
  const SimWorkload w = SweepWorkload();
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    SimResult a = RunSim(seed, w);
    SimResult b = RunSim(seed, w);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ASSERT_GT(a.history.size(), 0u);
    EXPECT_EQ(a.FormattedHistory(), b.FormattedHistory()) << "seed " << seed;
  }
}

// Different seeds should explore different schedules (sanity check that the
// scheduler's randomness actually reaches delivery order).
TEST(SimDeterminism, DifferentSeedsDiverge) {
  const SimWorkload w = SweepWorkload();
  const SimResult a = RunSim(11, w);
  const SimResult b = RunSim(12, w);
  ASSERT_TRUE(a.status.ok());
  ASSERT_TRUE(b.status.ok());
  EXPECT_NE(a.FormattedHistory(), b.FormattedHistory());
}

// The schedule sweep: >= 50 distinct seeds, every history checked against
// the SWMR invariants and the coherence oracle.
TEST(SimSweep, FiftySeedsHoldInvariants) {
  const SimWorkload w = SweepWorkload();
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// A second sweep over a heavier write-contention mix (more hosts, fewer
// cells — every cell is fought over).
TEST(SimSweep, ContendedCellsHoldInvariants) {
  SimWorkload w;
  w.hosts = 4;
  w.cells = 2;
  w.rounds = 2;
  w.ops_per_round = 3;
  w.use_locks = false;
  for (uint64_t seed = 1000; seed < 1010; ++seed) {
    RunAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// The same sweep with the directory sharded across hosts (explicitly, not
// via the environment): every id is serviced by the host it hashes to, and
// the checker additionally verifies shard affinity on every manager event.
TEST(SimSweepSharded, FiftySeedsHoldInvariants) {
  SimWorkload w = SweepWorkload();
  w.policy = ManagerPolicy::kSharded;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(SimSweepSharded, ContendedCellsHoldInvariants) {
  SimWorkload w;
  w.hosts = 4;
  w.cells = 2;
  w.rounds = 2;
  w.ops_per_round = 3;
  w.use_locks = false;
  w.policy = ManagerPolicy::kSharded;
  for (uint64_t seed = 1000; seed < 1010; ++seed) {
    RunAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Determinism must hold under sharding too: the extra routing hop is part of
// the scheduled message stream, not a source of nondeterminism.
TEST(SimSweepSharded, SameSeedSameHistory) {
  SimWorkload w = SweepWorkload();
  w.policy = ManagerPolicy::kSharded;
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    SimResult a = RunSim(seed, w);
    SimResult b = RunSim(seed, w);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ASSERT_GT(a.history.size(), 0u);
    EXPECT_EQ(a.FormattedHistory(), b.FormattedHistory()) << "seed " << seed;
  }
}

// Exact replay of one schedule, seed taken from the environment — the tool a
// failing sweep points at.
TEST(SimSweep, ReplayEnvSeed) {
  const char* env = std::getenv("MILLIPAGE_SIM_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set MILLIPAGE_SIM_SEED=<seed> to replay one schedule";
  }
  RunAndCheck(std::strtoull(env, nullptr, 0), SweepWorkload());
}

// Inject a real protocol bug — the manager skips one invalidation during a
// write's invalidation round, leaving a stale readable replica — and require
// the checker to catch it and name the surviving reader.
TEST(SimInjectedBug, SkippedInvalidationIsCaught) {
  // Script: every host reads cell 0 (three read copies), then host 2 writes
  // it — a write that must invalidate hosts 0 and 1. The failpoint swallows
  // the first invalidation of that round.
  SimWorkload w;
  w.hosts = 3;
  w.cells = 1;
  std::vector<std::vector<SimOp>> script(w.hosts);
  script[0] = {{SimOpKind::kAlloc, 0}, {SimOpKind::kBarrier, 0}, {SimOpKind::kRead, 0},
               {SimOpKind::kBarrier, 0}, {SimOpKind::kBarrier, 0}};
  script[1] = {{SimOpKind::kBarrier, 0}, {SimOpKind::kRead, 0}, {SimOpKind::kBarrier, 0},
               {SimOpKind::kBarrier, 0}};
  script[2] = {{SimOpKind::kBarrier, 0}, {SimOpKind::kRead, 0}, {SimOpKind::kBarrier, 0},
               {SimOpKind::kWrite, 0}, {SimOpKind::kBarrier, 0}};

  FailpointAction skip;
  skip.kind = FailpointAction::Kind::kReturn;
  skip.max_hits = 1;
  FailpointScope fp("dsm.mgr.skip_invalidate", skip);

  const SimResult r = RunScript(99, w, script);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const CheckReport report = CheckSwmr(r.history, w.hosts);
  ASSERT_FALSE(report.ok) << "checker missed the injected skipped invalidation\n"
                          << r.FormattedHistory();
  EXPECT_NE(report.message.find("SWMR"), std::string::npos) << report.message;
  // The violating prefix must be a genuine prefix — the minimal history a
  // human replays to see the bug.
  EXPECT_LT(report.violating_index, r.history.size());
  const std::string violation = report.FormatViolation(r.history);
  EXPECT_NE(violation.find("minimal violating history"), std::string::npos);
  printf("checker caught the injected bug:\n%s", violation.c_str());
}

// Same schedule without the failpoint: clean — the bug, not the workload,
// trips the checker.
TEST(SimInjectedBug, SameScheduleCleanWithoutFailpoint) {
  SimWorkload w;
  w.hosts = 3;
  w.cells = 1;
  std::vector<std::vector<SimOp>> script(w.hosts);
  script[0] = {{SimOpKind::kAlloc, 0}, {SimOpKind::kBarrier, 0}, {SimOpKind::kRead, 0},
               {SimOpKind::kBarrier, 0}, {SimOpKind::kBarrier, 0}};
  script[1] = {{SimOpKind::kBarrier, 0}, {SimOpKind::kRead, 0}, {SimOpKind::kBarrier, 0},
               {SimOpKind::kBarrier, 0}};
  script[2] = {{SimOpKind::kBarrier, 0}, {SimOpKind::kRead, 0}, {SimOpKind::kBarrier, 0},
               {SimOpKind::kWrite, 0}, {SimOpKind::kBarrier, 0}};
  const SimResult r = RunScript(99, w, script);
  ASSERT_TRUE(r.status.ok()) << r.status.ToString();
  const CheckReport report = CheckHistory(r.history, w.hosts);
  EXPECT_TRUE(report.ok) << report.FormatViolation(r.history);
}

// ---- Host-death recovery sweeps --------------------------------------------

SimWorkload KillWorkload() {
  SimWorkload w = SweepWorkload();
  w.policy = ManagerPolicy::kSharded;  // failover needs a sharded directory
  w.kill_one_host = true;
  return w;
}

// One seed with a host killed mid-run: the survivors must finish their
// scripts (per-minipage loss is a skip, never a cluster abort), the kill must
// have hit a non-zero host, and the recorded history must pass every
// invariant — including epoch monotonicity and the epoch-aware shard
// affinity that legitimizes adopted-shard service.
void RunKillAndCheck(uint64_t seed, const SimWorkload& w) {
  SimResult r = RunSim(seed, w);
  ASSERT_TRUE(r.status.ok()) << "seed " << seed << ": " << r.status.ToString() << "\n"
                             << r.FormattedHistory();
  ASSERT_TRUE(r.killed) << "seed " << seed << ": the kill never fired";
  ASSERT_NE(r.killed_host, 0) << "seed " << seed << " killed the allocator host";
  const CheckReport report = CheckHistory(r.history, w.hosts, /*sharded=*/true);
  ASSERT_TRUE(report.ok) << "seed " << seed << " (killed host " << r.killed_host
                         << "):\n"
                         << report.FormatViolation(r.history);
}

// The headline chaos sweep: >= 50 seeds, each killing one non-zero host at a
// seeded point; survivors complete checker-clean.
TEST(SimKillHost, FiftySeedsSurvivorsHoldInvariants) {
  const SimWorkload w = KillWorkload();
  uint64_t runs_with_loss = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    RunKillAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    runs_with_loss += RunSim(seed, w).minipages_lost > 0 ? 1 : 0;
  }
  // Sole-copy loss should occur in some (not all) schedules — it is the
  // per-minipage degraded path, and the sweep must cover both outcomes.
  printf("[sim] kill sweep: %llu/50 runs lost at least one minipage\n",
         (unsigned long long)runs_with_loss);
}

// Host death under heavier write contention (fewer cells, no locks).
TEST(SimKillHost, ContendedCellsSurvivorsHoldInvariants) {
  SimWorkload w;
  w.hosts = 4;
  w.cells = 2;
  w.rounds = 2;
  w.ops_per_round = 3;
  w.use_locks = false;
  w.policy = ManagerPolicy::kSharded;
  w.kill_one_host = true;
  for (uint64_t seed = 2000; seed < 2020; ++seed) {
    RunKillAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Exact replay of one kill schedule, seed taken from the environment — the
// tool a failing kill sweep points at.
TEST(SimKillHost, ReplayEnvSeed) {
  const char* env = std::getenv("MILLIPAGE_SIM_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set MILLIPAGE_SIM_SEED=<seed> to replay a kill schedule";
  }
  const uint64_t seed = std::strtoull(env, nullptr, 10);
  const SimResult r = RunSim(seed, KillWorkload());
  printf("[sim] kill replay seed=%llu status=%s killed_host=%u\n%s",
         (unsigned long long)seed, r.status.ToString().c_str(), r.killed_host,
         r.FormattedHistory().c_str());
  RunKillAndCheck(seed, KillWorkload());
}

// Determinism must survive the kill: detector injection, epoch bumps, kicked
// re-sends and copyset rebuilds are all part of the scheduled stream.
TEST(SimKillHost, SameSeedSameHistory) {
  const SimWorkload w = KillWorkload();
  for (uint64_t seed : {3ull, 17ull, 29ull}) {
    SimResult a = RunSim(seed, w);
    SimResult b = RunSim(seed, w);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ASSERT_TRUE(a.killed);
    EXPECT_EQ(a.killed_host, b.killed_host) << "seed " << seed;
    EXPECT_EQ(a.FormattedHistory(), b.FormattedHistory()) << "seed " << seed;
  }
}

// Unit tests for the checker itself on hand-built histories.
TEST(HistoryChecker, FlagsTwoWriters) {
  std::vector<TraceEvent> h(2);
  h[0] = {0, TraceEventKind::kProtSet, 0, 7, 0, 2 /*ReadWrite*/, 0};
  h[1] = {1, TraceEventKind::kProtSet, 1, 7, 0, 2 /*ReadWrite*/, 0};
  const CheckReport r = CheckSwmr(h, 2);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.violating_index, 1u);
}

TEST(HistoryChecker, FlagsSurvivingReader) {
  std::vector<TraceEvent> h(2);
  h[0] = {0, TraceEventKind::kProtSet, 1, 3, 0, 1 /*ReadOnly*/, 0};
  h[1] = {1, TraceEventKind::kProtSet, 0, 3, 0, 2 /*ReadWrite*/, 0};
  const CheckReport r = CheckSwmr(h, 2);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("reader not invalidated"), std::string::npos);
}

TEST(HistoryChecker, AcceptsHandoff) {
  std::vector<TraceEvent> h(3);
  h[0] = {0, TraceEventKind::kProtSet, 0, 3, 0, 2 /*RW*/, 0};
  h[1] = {1, TraceEventKind::kProtSet, 0, 3, 0, 0 /*None*/, 0};
  h[2] = {2, TraceEventKind::kProtSet, 1, 3, 0, 2 /*RW*/, 0};
  EXPECT_TRUE(CheckSwmr(h, 2).ok);
}

TEST(HistoryChecker, FlagsBarrierEpochSkip) {
  std::vector<TraceEvent> h(2);
  h[0] = {0, TraceEventKind::kBarrierRelease, 0, ~0u, 0, 0, 0};
  h[1] = {1, TraceEventKind::kBarrierRelease, 0, ~0u, 0, 2, 0};  // skipped 1
  const CheckReport r = CheckBarrierEpochs(h, 1);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.violating_index, 1u);
}

TEST(HistoryChecker, FlagsDoubleLockGrant) {
  std::vector<TraceEvent> h(2);
  h[0] = {0, TraceEventKind::kLockGrant, 0, 5, 0, 0, 0};
  h[1] = {1, TraceEventKind::kLockGrant, 0, 5, 0, 1, 0};
  ASSERT_FALSE(CheckLockExclusivity(h).ok);
}

TEST(HistoryChecker, FlagsWrongShard) {
  // Minipage 5 with 4 hosts hashes to shard 1; a grant served by host 2 is
  // an affinity violation, one served by host 1 is fine.
  std::vector<TraceEvent> h(1);
  h[0] = {0, TraceEventKind::kMgrReadGrant, 2, 5, 0, 0, 0};
  const CheckReport bad = CheckShardAffinity(h, 4);
  ASSERT_FALSE(bad.ok);
  EXPECT_NE(bad.message.find("shard"), std::string::npos) << bad.message;
  h[0].host = 1;
  EXPECT_TRUE(CheckShardAffinity(h, 4).ok);
}

// kEpochBump trace encoding: arg1 = new epoch, arg2 = newly-dead host id + 1
// (one event per death; arg2 = 0 when no new host died).
TEST(HistoryChecker, FlagsEpochRegression) {
  std::vector<TraceEvent> h(2);
  h[0] = {0, TraceEventKind::kEpochBump, 0, ~0u, 0, 2, 3};  // host 2 died
  h[1] = {1, TraceEventKind::kEpochBump, 0, ~0u, 0, 1, 3};  // epoch went back
  const CheckReport r = CheckEpochMonotonicity(h, 3);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("backwards"), std::string::npos) << r.message;
}

// The old cumulative-mask encoding could express a shrinking dead set; the
// per-death encoding cannot, so the grow-only invariant is now "each host
// announces each death at most once".
TEST(HistoryChecker, FlagsDoubleDeathAnnouncement) {
  std::vector<TraceEvent> h(2);
  h[0] = {0, TraceEventKind::kEpochBump, 0, ~0u, 0, 1, 3};  // host 2 died
  h[1] = {1, TraceEventKind::kEpochBump, 0, ~0u, 0, 2, 3};  // ...died again?
  const CheckReport r = CheckEpochMonotonicity(h, 3);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("dead twice"), std::string::npos) << r.message;
}

TEST(HistoryChecker, FlagsPreDeathGrantHonoredAfterBump) {
  // Shard host 1 grants minipage 3 to host 0 at epoch 0; host 0 then bumps to
  // epoch 1 (host 1 died) but still completes the fault against that grant.
  std::vector<TraceEvent> h(3);
  h[0] = {0, TraceEventKind::kMgrReadGrant, 1, 3, 0, 0, 0};
  h[1] = {1, TraceEventKind::kEpochBump, 0, ~0u, 0, 1, 2};  // host 1 died
  h[2] = {2, TraceEventKind::kFaultEnd, 0, 3, 0, 0, 0};
  const CheckReport r = CheckEpochMonotonicity(h, 2);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("pre-death grant"), std::string::npos) << r.message;
  // The same completion is clean when the grant was traced after the
  // requester's own bump: that is what a kicked retry produces.
  std::vector<TraceEvent> ok(4);
  ok[0] = {0, TraceEventKind::kEpochBump, 0, ~0u, 0, 1, 3};  // host 2 died
  ok[1] = {1, TraceEventKind::kEpochBump, 1, ~0u, 0, 1, 3};
  ok[2] = {2, TraceEventKind::kMgrReadGrant, 1, 3, 0, 0, 0};
  ok[3] = {3, TraceEventKind::kFaultEnd, 0, 3, 0, 0, 0};
  EXPECT_TRUE(CheckEpochMonotonicity(ok, 3).ok);
}

TEST(HistoryChecker, FlagsSelfDeclaredDeath) {
  std::vector<TraceEvent> h(1);
  h[0] = {0, TraceEventKind::kEpochBump, 1, ~0u, 0, 1, 2};  // host 1 says "1 is dead"
  const CheckReport r = CheckEpochMonotonicity(h, 2);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("itself"), std::string::npos) << r.message;
}

TEST(HistoryChecker, ShardAffinityFollowsFailover) {
  // Minipage 5 with 4 hosts homes on shard 1. After a bump declaring host 1
  // dead, the linear-probe successor (host 2) is the legitimate server — and
  // host 1's old slot is no longer legitimate.
  std::vector<TraceEvent> pre(1);
  pre[0] = {0, TraceEventKind::kMgrReadGrant, 2, 5, 0, 0, 0};
  ASSERT_FALSE(CheckShardAffinity(pre, 4).ok);
  std::vector<TraceEvent> post(2);
  post[0] = {0, TraceEventKind::kEpochBump, 2, ~0u, 0, 1, 2};  // host 1 died
  post[1] = {1, TraceEventKind::kMgrReadGrant, 2, 5, 0, 0, 0};
  EXPECT_TRUE(CheckShardAffinity(post, 4).ok);
  post[1].host = 1;  // the dead shard serving after the bump is a violation
  EXPECT_FALSE(CheckShardAffinity(post, 4).ok);
}

TEST(HistoryChecker, FlagsStaleRead) {
  std::vector<TraceEvent> h(3);
  h[0] = {0, TraceEventKind::kAppWrite, 0, ~0u, 0x10, 0xaa, 0};
  h[1] = {1, TraceEventKind::kAppWrite, 1, ~0u, 0x10, 0xbb, 0};
  h[2] = {2, TraceEventKind::kAppRead, 2, ~0u, 0x10, 0xaa, 0};  // stale
  const CheckReport r = CheckCoherenceOracle(h);
  ASSERT_FALSE(r.ok);
  EXPECT_NE(r.message.find("stale"), std::string::npos);
}

}  // namespace
}  // namespace millipage
