#include "src/common/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace millipage {

namespace metrics_internal {

namespace {
bool InitialEnabled() {
  const char* env = std::getenv("MILLIPAGE_METRICS");
  if (env != nullptr && (std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0)) {
    return false;
  }
  return true;
}
}  // namespace

std::atomic<bool> g_enabled{InitialEnabled()};

}  // namespace metrics_internal

void SetMetricsEnabled(bool enabled) {
  metrics_internal::g_enabled.store(enabled, std::memory_order_relaxed);
}

// ---- Histogram -------------------------------------------------------------

void Histogram::RecordAlways(uint64_t v) {
  buckets_[BucketFor(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot s;
  for (int i = 0; i < HistogramSnapshot::kBuckets; ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  const uint64_t mn = min_.load(std::memory_order_relaxed);
  s.min = (s.count == 0 || mn == ~0ULL) ? 0 : mn;
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::Reset() {
  for (auto& b : buckets_) {
    b.store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~0ULL, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

uint64_t HistogramSnapshot::Quantile(double q) const {
  if (count == 0) {
    return 0;
  }
  const uint64_t target = static_cast<uint64_t>(std::ceil(q * static_cast<double>(count - 1)));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets[i];
    if (seen > target) {
      // Bucket i covers (2^(i-1), 2^i]; report its upper bound, capped at
      // the observed maximum so q=1 never overshoots the data.
      const uint64_t upper = 1ULL << i;
      return upper < max ? upper : max;
    }
  }
  return max;
}

void HistogramSnapshot::Merge(const HistogramSnapshot& o) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets[i] += o.buckets[i];
  }
  if (o.count > 0) {
    min = (count == 0 || o.min < min) ? o.min : min;
    max = o.max > max ? o.max : max;
  }
  count += o.count;
  sum += o.sum;
}

// ---- MetricsSnapshot -------------------------------------------------------

void MetricsSnapshot::Merge(const MetricsSnapshot& o) {
  for (const auto& [name, v] : o.counters) {
    counters[name] += v;
  }
  for (const auto& [name, h] : o.histograms) {
    histograms[name].Merge(h);
  }
}

namespace {

void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  *out += buf;
}

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  *out += buf;
}

}  // namespace

std::string MetricsSnapshot::DumpJson() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : counters) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendJsonString(&out, name);
    out.push_back(':');
    AppendU64(&out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) {
      out.push_back(',');
    }
    first = false;
    AppendJsonString(&out, name);
    out += ":{\"count\":";
    AppendU64(&out, h.count);
    out += ",\"sum\":";
    AppendU64(&out, h.sum);
    out += ",\"min\":";
    AppendU64(&out, h.min);
    out += ",\"max\":";
    AppendU64(&out, h.max);
    out += ",\"mean\":";
    AppendDouble(&out, h.mean());
    out += ",\"p50\":";
    AppendU64(&out, h.Quantile(0.5));
    out += ",\"p95\":";
    AppendU64(&out, h.Quantile(0.95));
    out += ",\"p99\":";
    AppendU64(&out, h.Quantile(0.99));
    out += "}";
  }
  out += "}}";
  return out;
}

// ---- MetricsRegistry -------------------------------------------------------

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* instance = new MetricsRegistry();
  return *instance;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot s;
  for (const auto& [name, c] : counters_) {
    s.counters[name] = c->value();
  }
  for (const auto& [name, h] : histograms_) {
    s.histograms[name] = h->Snapshot();
  }
  return s;
}

void MetricsRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) {
    c->Reset();
  }
  for (auto& [name, h] : histograms_) {
    h->Reset();
  }
}

}  // namespace millipage
