// Process-wide fault dispatcher — the POSIX analog of the structured
// exception handler millipage installs on Windows NT.
//
// The DSM runtime registers a callback; when an application thread touches a
// protected vpage, the callback runs the full request/reply protocol,
// upgrades the protection, and returns true so the faulting access is
// retried. Unhandled faults fall through to the default disposition (crash
// with a core), so genuine wild accesses still fail fast.
//
// Two backends share the callback registry:
//
//   kSigsegv      the original SIGSEGV/SIGBUS sigaction. Views are mprotect'd
//                 and the protocol runs inside the signal frame on the
//                 faulting thread.
//   kUserfaultfd  userfaultfd(2) in MINOR+WP mode on the shared memory
//                 object. Views stay PROT_READ|PROT_WRITE; "NoAccess" zaps
//                 the view's ptes (MADV_DONTNEED -> minor fault on next
//                 touch) and "ReadOnly" write-protects them, so faults are
//                 delivered as messages to a poller thread — no signal frame,
//                 no handler-reentrancy hazard — while the faulting thread
//                 sleeps in the kernel until the protocol wakes it.
//
// The backend is a process-wide *mode* for new view registrations, not an
// either/or: the SIGSEGV handler is always installed (it still covers
// mprotect'd anonymous mappings, use-after-unmap, and the fallback path), and
// the poller only exists once a userfaultfd registration succeeded. Install()
// falls back to kSigsegv at runtime when the kernel lacks minor-fault or
// write-protect support for shmem.

#ifndef SRC_OS_FAULT_HANDLER_H_
#define SRC_OS_FAULT_HANDLER_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

#include "src/common/metrics.h"
#include "src/common/status.h"

namespace millipage {

// Returns true if the fault was resolved and the access should be retried.
using FaultCallback = bool (*)(void* ctx, void* fault_addr, bool is_write);

// Fault-delivery backend for application views (DsmConfig::fault_backend).
enum class FaultBackend : uint8_t {
  kSigsegv = 0,      // mprotect + SIGSEGV (always available)
  kUserfaultfd = 1,  // userfaultfd MINOR+WP (needs kernel support; else falls back)
};

const char* FaultBackendName(FaultBackend backend);

// Backend requested by the MILLIPAGE_FAULT_BACKEND environment variable
// ("uffd"/"userfaultfd" selects kUserfaultfd; anything else, including unset,
// is kSigsegv). The CI backend matrix re-runs whole test suites with this
// set, mirroring MILLIPAGE_MANAGER_POLICY.
FaultBackend FaultBackendFromEnv();

class FaultHandler {
 public:
  static constexpr int kMaxSlots = 8;

  static FaultHandler& Instance();

  // Installs the SIGSEGV/SIGBUS sigaction (always) and, when `requested` is
  // kUserfaultfd, brings up the userfaultfd + poller thread on first use.
  // Idempotent and thread-safe; sets the active backend for view sets
  // created afterwards. Falls back to kSigsegv (and still returns Ok) when
  // the kernel lacks UFFD minor/write-protect support — check
  // active_backend() to see what actually took effect.
  Status Install(FaultBackend requested = FaultBackend::kSigsegv);

  // The backend new view registrations will use.
  FaultBackend active_backend() const {
    return active_backend_.load(std::memory_order_acquire);
  }

  // True if this kernel supports the userfaultfd backend (attempts the
  // one-time uffd bring-up if it hasn't happened yet).
  bool UffdSupported();

  // Registers a callback; returns a slot id (>= 0), or -1 if full.
  int Register(FaultCallback cb, void* ctx);
  void Unregister(int slot);

  // ---- userfaultfd range operations (used by ViewSet in uffd mode) --------
  // All require a successful Install(kUserfaultfd); they return Internal
  // status otherwise. `base`/`len` must be page-aligned.

  // Registers [base, base+len) for MINOR+WP fault delivery to the poller.
  Status UffdRegisterRange(void* base, size_t len);
  Status UffdUnregisterRange(void* base, size_t len);

  // "NoAccess": zaps the range's ptes so the next touch minor-faults. The
  // backing page-cache pages (and hence the data) survive.
  Status UffdZapRange(void* base, size_t len);

  // "ReadOnly"/"ReadWrite": materializes ptes for the whole range from the
  // page cache (UFFDIO_CONTINUE) and sets the write-protect bit on or off.
  // The backing pages must already exist in the page cache (ViewSet
  // instantiates the object through the privileged view at creation).
  Status UffdEnsureRange(void* base, size_t len, bool write_protect);

  uint64_t faults_dispatched() const {
    return faults_dispatched_.load(std::memory_order_relaxed);
  }

  FaultHandler(const FaultHandler&) = delete;
  FaultHandler& operator=(const FaultHandler&) = delete;

 private:
  FaultHandler() = default;

  static void SignalEntry(int signo, void* info, void* ucontext);
  bool Dispatch(void* fault_addr, bool is_write);

  Status InstallSigaction();
  // One-time userfaultfd bring-up (fd + API handshake + poller thread).
  // Returns Ok if the uffd backend is usable.
  Status EnsureUffd();
  void PollerLoop();

  struct Slot {
    std::atomic<FaultCallback> cb{nullptr};
    std::atomic<void*> ctx{nullptr};
  };

  Slot slots_[kMaxSlots];
  std::atomic<bool> installed_{false};
  std::atomic<uint64_t> faults_dispatched_{0};
  std::atomic<FaultBackend> active_backend_{FaultBackend::kSigsegv};

  // uffd state: fixed after the one-time bring-up attempt.
  std::atomic<int> uffd_state_{0};  // 0 = untried, 1 = available, -1 = unavailable
  int uffd_fd_ = -1;

  // Registered in Install() (before the sigaction goes live) so SignalEntry
  // only ever touches stable pointers — no registry locking in the handler.
  // Histogram updates are relaxed atomics, safe at signal depth.
  Counter* dispatched_metric_ = nullptr;   // fault.dispatched
  Histogram* decode_ns_ = nullptr;         // fault entry -> addr/W decode
  Histogram* service_ns_ = nullptr;        // fault entry -> fault resolved
};

}  // namespace millipage

#endif  // SRC_OS_FAULT_HANDLER_H_
