// SOR — red/black successive over-relaxation (from the TreadMarks suite).
// The matrix is allocated row by row; a row is the natural sharing unit, so
// each row is one minipage (paper: 32768x64 floats, 256-byte rows, 16
// views). Hosts own contiguous row bands and read the two boundary rows of
// their neighbors every phase.

#ifndef SRC_APPS_SOR_H_
#define SRC_APPS_SOR_H_

#include <vector>

#include "src/apps/app.h"
#include "src/dsm/global_ptr.h"

namespace millipage {

struct SorConfig {
  uint32_t rows = 256;
  uint32_t cols = 64;  // 64 floats = 256 bytes, the paper's row granularity
  uint32_t iterations = 10;
};

class SorApp : public App {
 public:
  explicit SorApp(const SorConfig& config) : config_(config) {}

  std::string name() const override { return "SOR"; }
  std::string input_desc() const override;
  std::string granularity_desc() const override;
  // One 4-flop stencil cell on the paper's 300 MHz Pentium II (~30 cycles).
  double ns_per_work_unit() const override { return 100.0; }

  uint32_t warmup_epochs() const override { return 1; }

  void Setup(DsmNode& manager) override;
  void Worker(DsmNode& node, HostId host) override;
  Status Validate(DsmNode& manager) override;

  // Reference value computed serially (for validation).
  double expected_checksum() const { return expected_checksum_; }

 private:
  float* Row(uint32_t r) const { return rows_[r].get(); }

  SorConfig config_;
  std::vector<GlobalPtr<float>> rows_;
  double expected_checksum_ = 0;
};

}  // namespace millipage

#endif  // SRC_APPS_SOR_H_
