#include "src/multiview/allocator.h"

#include "src/common/logging.h"
#include "src/os/page.h"

namespace millipage {

namespace {
uint64_t AlignUp(uint64_t v, uint64_t a) { return (v + a - 1) / a * a; }
}  // namespace

MinipageAllocator::MinipageAllocator(MinipageTable* mpt, uint64_t object_size,
                                     uint32_t num_views, AllocatorOptions options)
    : mpt_(mpt), object_size_(object_size), num_views_(num_views), options_(options) {
  MP_CHECK(num_views_ >= 1 && num_views_ <= 64) << "dynamic layout supports 1..64 views";
  MP_CHECK(options_.chunking_level >= 1);
  const size_t vpages = PagesFor(object_size);
  vpage_views_.assign(vpages, 0);
  if (options_.page_based) {
    page_minipage_.assign(vpages, kInvalidMinipage);
  }
}

Result<Allocation> MinipageAllocator::Allocate(uint64_t size) {
  if (size == 0) {
    return Status::Invalid("Allocate: size must be > 0");
  }
  if (options_.page_based) {
    return AllocatePageBased(size);
  }
  return AllocateFineGrain(size);
}

void MinipageAllocator::CloseChunk() {
  chunk_minipage_ = kInvalidMinipage;
  chunk_members_ = 0;
}

void MinipageAllocator::MarkVpages(uint64_t first, uint64_t last, uint32_t v) {
  for (uint64_t vp = first; vp <= last; ++vp) {
    vpage_views_[vp] |= (1ULL << v);
  }
}

int MinipageAllocator::FindFreeView(uint64_t first, uint64_t last) {
  // First fit: the lowest free view. Pages then use views 0..k-1 where k is
  // the number of minipages sharing them, so the number of views an
  // application consumes equals its max minipages-per-page (Table 2's
  // "Num. views" column: 16 for SOR rows, 6 for WATER molecules, 27 for
  // TSP tours).
  uint64_t used = 0;
  for (uint64_t vp = first; vp <= last; ++vp) {
    used |= vpage_views_[vp];
  }
  for (uint32_t v = 0; v < num_views_; ++v) {
    if ((used & (1ULL << v)) == 0) {
      return static_cast<int>(v);
    }
  }
  return -1;
}

Result<Allocation> MinipageAllocator::AllocateFineGrain(uint64_t size) {
  // Try to append to the open chunk first.
  if (options_.chunking_level > 1 && chunk_minipage_ != kInvalidMinipage &&
      chunk_members_ < options_.chunking_level) {
    const uint64_t aligned = AlignUp(cursor_, options_.alignment);
    if (aligned + size <= object_size_) {
      const MinipageId chunk_id = chunk_minipage_;
      // Copy the geometry before ExtendLast: holding a reference into the
      // table across a mutating call is a dangling-reference hazard if the
      // table ever reallocates its backing store.
      const Minipage mp = mpt_->Get(chunk_id);
      const uint64_t old_last = mp.last_vpage();
      const uint64_t new_length = aligned + size - mp.offset;
      MP_RETURN_IF_ERROR(mpt_->ExtendLast(chunk_id, new_length));
      const uint64_t new_last = (mp.offset + new_length - 1) / PageSize();
      if (new_last > old_last) {
        MarkVpages(old_last + 1, new_last, chunk_view_);
      }
      cursor_ = aligned + size;
      chunk_members_++;
      Allocation a;
      a.offset = aligned;
      a.size = size;
      a.view = chunk_view_;
      a.minipages = {chunk_id};
      if (chunk_members_ >= options_.chunking_level) {
        CloseChunk();
      }
      return a;
    }
    CloseChunk();
  }

  // Large allocations start on a page boundary so they form clean
  // page-multiple sharing units (the paper's LU 4 KB blocks).
  uint64_t start = AlignUp(cursor_, options_.alignment);
  if (size >= PageSize()) {
    start = AlignUp(start, PageSize());
  } else if (start / PageSize() != (start + size - 1) / PageSize()) {
    // A sub-page minipage is kept inside one vpage (its <offset,length>
    // identification); only large allocations and growing chunks span.
    start = AlignUp(start, PageSize());
  }
  // A vpage can host at most num_views_ minipages; when the current page is
  // saturated, skip to the next page boundary and retry there.
  for (int attempts = 0; attempts < 2; ++attempts) {
    if (start + size > object_size_) {
      return Status::Exhausted("shared memory object exhausted");
    }
    const uint64_t vp0 = start / PageSize();
    const uint64_t vp1 = (start + size - 1) / PageSize();
    // Page-multiple allocations monopolize their vpages, so view 0 is always
    // free for them and rotating would only waste views (the paper's LU uses
    // a single view for its 4 KB blocks). Sub-page allocations rotate.
    const bool full_pages = size >= PageSize();
    const int v = full_pages ? 0 : FindFreeView(vp0, vp1);
    if (v < 0) {
      start = (vp0 + 1) * PageSize();
      continue;
    }
    MP_ASSIGN_OR_RETURN(MinipageId id, mpt_->Define(static_cast<uint32_t>(v), start, size));
    MarkVpages(vp0, vp1, static_cast<uint32_t>(v));
    cursor_ = start + size;
    if (options_.chunking_level > 1) {
      chunk_minipage_ = id;
      chunk_members_ = 1;
      chunk_view_ = static_cast<uint32_t>(v);
    }
    Allocation a;
    a.offset = start;
    a.size = size;
    a.view = static_cast<uint32_t>(v);
    a.minipages = {id};
    return a;
  }
  // Two consecutive saturated pages cannot happen: a fresh page is empty.
  return Status::Internal("allocator invariant violated: fresh page saturated");
}

Result<Allocation> MinipageAllocator::AllocatePageBased(uint64_t size) {
  const uint64_t start = AlignUp(cursor_, options_.alignment);
  if (start + size > object_size_) {
    return Status::Exhausted("shared memory object exhausted");
  }
  const uint64_t vp0 = start / PageSize();
  const uint64_t vp1 = (start + size - 1) / PageSize();
  Allocation a;
  a.offset = start;
  a.size = size;
  a.view = 0;
  for (uint64_t vp = vp0; vp <= vp1; ++vp) {
    if (page_minipage_[vp] == kInvalidMinipage) {
      MP_ASSIGN_OR_RETURN(MinipageId id, mpt_->Define(0, vp * PageSize(), PageSize()));
      page_minipage_[vp] = id;
      MarkVpages(vp, vp, 0);
    }
    a.minipages.push_back(page_minipage_[vp]);
  }
  cursor_ = start + size;
  return a;
}

}  // namespace millipage
