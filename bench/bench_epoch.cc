// Membership-epoch overhead on the no-failure fast path. Every datagram now
// carries an epoch tag packed into the wire `from` field and every receive
// runs the stale-epoch gate, so the recovery subsystem taxes all traffic —
// this bench prices that tax:
//
//   * epoch_tag_ops: the pure header arithmetic (pack + unpack + staleness
//     test), the per-message cost with no protocol around it;
//   * read_fault / lock_roundtrip: end-to-end operation latency on a healthy
//     sharded cluster with recovery enabled — the paths CI gates via
//     ci/check_bench.py so an epoch-check regression on the hot path fails
//     the perf smoke, not a reviewer's eyeball.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/net/message.h"

namespace millipage {
namespace {

// Header-only epoch arithmetic: what every single send and receive pays.
void BenchTagOps(BenchReporter& reporter, const BenchEnv& env) {
  const int iters = env.Scaled(2'000'000, 50'000);
  volatile uint32_t sink = 0;
  const double us = MeasureUs(
      [&] {
        // One send-side pack plus the receive-side unpack and staleness gate,
        // over a rolling epoch so the wraparound comparison is exercised.
        const uint32_t epoch = sink & 0x7ffu;
        const uint16_t from = PackFromEpoch(3, epoch);
        const uint32_t tag = FromEpochTag(from);
        sink = sink + FromHost(from) + (EpochTagStale(tag, epoch & kEpochTagMask) ? 1u : 0u);
      },
      iters, 3);
  PrintRow("epoch tag pack+unpack+stale check", us, "n/a (new subsystem)");
  BenchResult row;
  row.name = "epoch_tag_ops";
  row.params = "pack+unpack+stale";
  row.iterations = static_cast<uint64_t>(iters);
  row.ns_per_op = us * 1000.0;
  reporter.Add(std::move(row));
}

// Healthy-cluster operation latency with the epoch gate on every message.
void BenchNoFailurePaths(BenchReporter& reporter, const BenchEnv& env) {
  DsmConfig cfg;
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  cfg.manager_policy = ManagerPolicy::kSharded;  // the recovery-capable shape
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok()) << cluster.status().ToString();

  const int rounds = env.Scaled(400, 40);
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(8);
    *p = 0;
  });
  // Ping-pong write/read: every round is a remote fault pair, each message
  // stamped and gate-checked. Wall time per round prices the full path.
  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    for (int r = 0; r < rounds; ++r) {
      if (host == static_cast<HostId>(r % 2)) {
        p[0] = r;
      }
      node.Barrier();
    }
  });
  const double fault_ns = static_cast<double>(MonotonicNowNs() - t0) / rounds;

  const uint64_t t1 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId) {
    for (int r = 0; r < rounds; ++r) {
      node.Lock(1);
      node.Unlock(1);
    }
  });
  const double lock_ns = static_cast<double>(MonotonicNowNs() - t1) / rounds;

  PrintRow("sharded fault round (epoch gate on)", fault_ns / 1000.0, "n/a");
  PrintRow("sharded lock round (epoch gate on)", lock_ns / 1000.0, "n/a");
  BenchResult fault_row;
  fault_row.name = "no_failure_fault_round";
  fault_row.params = "hosts=2 sharded recovery=on";
  fault_row.iterations = static_cast<uint64_t>(rounds);
  fault_row.ns_per_op = fault_ns;
  reporter.Add(std::move(fault_row));
  BenchResult lock_row;
  lock_row.name = "no_failure_lock_round";
  lock_row.params = "hosts=2 sharded recovery=on";
  lock_row.iterations = static_cast<uint64_t>(rounds);
  lock_row.ns_per_op = lock_ns;
  reporter.Add(std::move(lock_row));
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_epoch", env);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Membership-epoch overhead on the no-failure path");
  BenchTagOps(reporter, env);
  BenchNoFailurePaths(reporter, env);
  PrintNote("the epoch tag rides in previously-unused high bits of the wire `from`");
  PrintNote("field, so the header stays 32 bytes and the no-failure cost is the");
  PrintNote("pack/unpack arithmetic plus one predictable branch per receive.");
  return reporter.Finish();
}
