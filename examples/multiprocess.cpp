// Multi-process deployment example — the paper's actual shape: one OS
// process per DSM host, connected by a SOCK_SEQPACKET mesh, each with its
// own memory object and SIGSEGV handler. Minipage contents genuinely cross
// process boundaries through the privileged views.
//
// Host 0 publishes a message board; every host appends a line under a lock
// and then everyone reads the full board.
//
// Build & run:  ./build/examples/multiprocess [hosts]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "src/dsm/global_ptr.h"
#include "src/dsm/process_cluster.h"

using namespace millipage;

namespace {
constexpr uint32_t kLineBytes = 64;
constexpr uint32_t kBoardLock = 0;

struct Board {
  int32_t lines;
  char text[15][kLineBytes];
};
}  // namespace

int main(int argc, char** argv) {
  const uint16_t hosts = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 4;
  DsmConfig config;
  config.num_hosts = hosts;
  config.object_size = 1 << 20;
  config.num_views = 8;

  const Status st = RunForkedCluster(config, [](DsmNode& node, HostId host) {
    // The board is the first allocation, so every process can name it.
    GlobalPtr<Board> board(GlobalAddr{0, 0});
    if (host == 0) {
      GlobalPtr<Board> allocated = SharedAlloc<Board>(1);
      MP_CHECK(allocated.addr().offset == 0);
      std::memset(board.get(), 0, sizeof(Board));
    }
    node.Barrier();

    node.Lock(kBoardLock);
    Board* b = board.get();  // write fault migrates the board here
    std::snprintf(b->text[b->lines], kLineBytes, "hello from host %u (pid %d)", host,
                  static_cast<int>(getpid()));
    b->lines++;
    node.Unlock(kBoardLock);
    node.Barrier();

    if (host == 0) {
      const Board* b2 = board.get();
      std::printf("message board (%d lines, written across %u processes):\n", b2->lines,
                  node.num_hosts());
      for (int i = 0; i < b2->lines; ++i) {
        std::printf("  %s\n", b2->text[i]);
      }
      const HostCounters c = node.counters();
      std::printf("host 0 protocol activity: %lu faults, %lu messages sent\n",
                  static_cast<unsigned long>(c.read_faults + c.write_faults),
                  static_cast<unsigned long>(c.messages_sent));
    }
    node.Barrier();
  });
  if (!st.ok()) {
    std::fprintf(stderr, "forked cluster failed: %s\n", st.ToString().c_str());
    return 1;
  }
  return 0;
}
