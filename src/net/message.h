// Wire format of the millipage protocol.
//
// Every message starts with a fixed 32-byte header (the paper notes all
// manager traffic fits in 32 bytes). Data-bearing messages (minipage
// contents) send the payload as a second stage; the receiver reads the
// header, derives the destination address in its privileged view from the
// translation fields the manager filled in, and receives the payload
// directly there — no DSM-layer buffering.

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <cstring>

#include "src/common/logging.h"

namespace millipage {

using HostId = uint16_t;
// Host 0 owns the MPT and the allocator: every *untranslated* request goes
// here first for minipage translation. Directory/lock/barrier shards may
// live elsewhere (DsmConfig::ManagerOf) once the header is translated.
inline constexpr HostId kManagerHost = 0;
// seq value meaning "no thread is waiting for the reply" (prefetch).
inline constexpr uint32_t kNoWaitSlot = 0xffffffffu;
// minipage value meaning "not yet translated by the MPT host". Requests are
// born with it; MgrTranslate replaces it with the real minipage id, and from
// then on every hop (forward, reply, ACK, invalidate, bounce) can be routed
// to the id's owning manager shard. Same value as kInvalidMinipage.
inline constexpr uint32_t kNoMinipage = 0xffffffffu;

enum class MsgType : uint8_t {
  kReadRequest = 1,
  kWriteRequest,
  kReadReply,
  kWriteReply,
  kInvalidateRequest,
  kInvalidateReply,
  kAck,
  kAllocRequest,
  kAllocReply,
  kBarrierEnter,
  kBarrierRelease,
  kLockAcquire,
  kLockGrant,
  kLockRelease,
  kPushUpdate,     // unsolicited read-copy push (TSP best-tour broadcast)
  kDiffUpdate,     // LRC: run-length diff flushed to a minipage's home
  kDiffAck,        // LRC: home applied the diff
  kShutdown,
  // Membership / recovery protocol (host-death survival).
  kEpochBump,       // membership epoch advanced: minipage = new epoch;
                    // privbase = cumulative dead-host mask (≤64-host
                    // clusters, wire-compatible with the original format) or
                    // one newly-dead host id per bump (>64-host clusters,
                    // one datagram per death)
  kCopysetQuery,    // adopting shard asks "do you hold a copy?" (translated
                    // geometry travels in the header, like a forward)
  kCopysetReply,    // answer: pgsize = local Protection value for the id
  kLockProbe,       // adopting shard asks "do you hold lock <minipage>?"
  kLockProbeReply,  // answer: kFlagUpgrade set when the lock is held locally
  kFlushHint,       // self-addressed marker: "drain the coalescer now". Never
                    // crosses hosts; exists so single-stepped (sim) nodes get
                    // a poll wakeup while a batch is pending.
  kBarrierProbe,       // adopting barrier shard asks "how many rounds have
                       // you completed?"
  kBarrierProbeReply,  // answer: pgsize = locally completed barrier rounds
};

const char* MsgTypeName(MsgType t);

// Header flags.
inline constexpr uint8_t kFlagHasPayload = 0x1;
inline constexpr uint8_t kFlagPrefetch = 0x2;
inline constexpr uint8_t kFlagUpgrade = 0x4;    // access grant without data
inline constexpr uint8_t kFlagForwarded = 0x8;  // already translated by manager
inline constexpr uint8_t kFlagBounced = 0x10;   // returned unserved to manager
inline constexpr uint8_t kFlagAbort = 0x20;     // push aborted by the pusher
inline constexpr uint8_t kFlagWriteFetch = 0x40;  // LRC: fetch opens for writing
inline constexpr uint8_t kFlagHomeGrant = 0x80;   // LRC: requester is the home
// Batched frame: the payload is N BatchRecords, each one minipage the header
// operation applies to (see BatchRecord below). Shares bit 0x40 with
// kFlagWriteFetch — safe because the LRC layer never batches and the SC
// coherence types that batch (invalidate/reply/ACK/read-request) never carry
// kFlagWriteFetch.
inline constexpr uint8_t kFlagBatched = 0x40;

// Membership-epoch tag, packed into the high bits of MsgHeader::from. The
// uint16 field carries both the sender's host id and its membership epoch
// (mod a power of two); how the 16 bits are split is a property of the
// cluster *size*, versioned by WireCodec below. The tag is stamped on the
// wire copy at send time and stripped before dispatch, so protocol logic
// only ever sees pure host ids — and the header stays at 32 bytes.
//
// v0 (clusters of ≤ 64 hosts): low 6 bits host id, high 10 bits epoch mod
// 1024 — bit-identical to every release since the epoch tag was introduced,
// so small clusters stay wire-compatible (the golden-bytes regression test
// pins this). v1 (> 64 hosts): low 10 bits host id (up to kMaxHosts = 1024),
// high 6 bits epoch mod 64. Both sides of a cluster share one num_hosts, so
// they always agree on the codec; mod-64 epochs are ample — an epoch bump
// consumes a host death, so wraparound needs 64 deaths with a 32-epoch-stale
// datagram still in flight.
inline constexpr uint16_t kHostIdMask = 0x3f;
inline constexpr uint32_t kEpochTagShift = 6;
inline constexpr uint32_t kEpochTagMask = 0x3ff;

struct WireCodec {
  uint16_t host_mask;
  uint32_t epoch_shift;
  uint32_t epoch_mask;

  static constexpr WireCodec For(uint32_t num_hosts) {
    return num_hosts <= 64 ? WireCodec{0x3f, 6, 0x3ff}      // v0: legacy split
                           : WireCodec{0x3ff, 10, 0x3f};    // v1: wide hosts
  }

  uint16_t Pack(HostId from, uint32_t epoch) const {
    return static_cast<uint16_t>((from & host_mask) | ((epoch & epoch_mask) << epoch_shift));
  }
  HostId Host(uint16_t from) const { return from & host_mask; }
  uint32_t EpochTag(uint16_t from) const { return from >> epoch_shift; }

  // True when tag `t` is older than tag `now` under modular wraparound: the
  // signed circular distance (now - t) lands in (0, modulus/2). Equal tags
  // and tags ahead of `now` (a peer that bumped first) are not stale.
  bool TagStale(uint32_t t, uint32_t now) const {
    const uint32_t d = (now - t) & epoch_mask;
    return d != 0 && d < (epoch_mask + 1) / 2;
  }
};

// Legacy free functions: the v0 codec, kept for call sites that are
// ≤64-host by construction (bench_epoch's tag micro-bench, old tests).
inline uint16_t PackFromEpoch(HostId from, uint32_t epoch) {
  return WireCodec::For(64).Pack(from, epoch);
}
inline HostId FromHost(uint16_t from) { return WireCodec::For(64).Host(from); }
inline uint32_t FromEpochTag(uint16_t from) { return WireCodec::For(64).EpochTag(from); }
inline bool EpochTagStale(uint32_t t, uint32_t now) {
  return WireCodec::For(64).TagStale(t, now);
}

// Canonical shared address: (application view, offset within the memory
// object). Identical on every host, so no pointer translation is needed
// between hosts in either deployment mode.
struct GlobalAddr {
  uint32_t view = 0;
  uint64_t offset = 0;

  // 16 bits of view id, 48 bits of offset. A view id that doesn't fit would
  // silently alias another view's addresses on the wire, so it is fatal here
  // at the pack site rather than a corruption three hops later.
  uint64_t Pack() const {
    MP_CHECK(view < (1u << 16)) << "view id " << view << " overflows the 16-bit wire field";
    MP_CHECK(offset < (1ULL << 48)) << "offset overflows the 48-bit wire field";
    return (static_cast<uint64_t>(view) << 48) | offset;
  }
  static GlobalAddr Unpack(uint64_t packed) {
    return GlobalAddr{static_cast<uint32_t>(packed >> 48), packed & ((1ULL << 48) - 1)};
  }
  bool operator==(const GlobalAddr&) const = default;
};

struct MsgHeader {
  uint8_t type = 0;
  uint8_t flags = 0;
  HostId from = 0;       // original requester
  uint32_t seq = 0;      // requester's wait-slot (the paper's event handle)
  uint64_t addr = 0;     // packed GlobalAddr of the faulting access
  // Translation info, filled by the MPT host (MgrTranslate). kNoMinipage
  // until then — all 8 flag bits are taken, so "has this request been
  // translated" is discriminated by this field, not a flag.
  uint32_t minipage = kNoMinipage;  // minipage id (doubles as lock/barrier id)
  uint32_t pgsize = 0;    // minipage length; also payload length when
                          // kFlagHasPayload is set
  uint64_t privbase = 0;  // object offset of the minipage base (addr2priv)

  MsgType msg_type() const { return static_cast<MsgType>(type); }
  void set_type(MsgType t) { type = static_cast<uint8_t>(t); }
  GlobalAddr global_addr() const { return GlobalAddr::Unpack(addr); }
  bool has_payload() const { return (flags & kFlagHasPayload) != 0; }
  bool translated() const { return minipage != kNoMinipage; }
};

static_assert(sizeof(MsgHeader) == 32, "header must stay at 32 bytes, as in the paper");

// Batched second-stage format. A frame whose header carries kFlagBatched is
// an ordinary 32-byte MsgHeader whose payload is N BatchRecords instead of
// minipage data: one record per minipage the operation applies to, in send
// order. Every record (including the first) lives in the payload — the
// header's per-minipage fields are not load-bearing on a batched frame, since
// transports overwrite pgsize with the payload length at send time. A
// 1-record batch is never emitted: the coalescer sends it as a plain
// unbatched message, keeping single-record frames bit-identical to the v0
// wire format. type/flags/from/seq are shared by every record; the types
// that batch either ignore from/seq on receive (kInvalidateRequest) or carry
// a uniform value per destination (kInvalidateReply's from, kAck's
// kNoWaitSlot seq, a group fetch's slot/gen).
struct BatchRecord {
  uint64_t addr = 0;      // packed GlobalAddr
  uint64_t privbase = 0;  // object offset of the minipage base
  uint32_t minipage = kNoMinipage;
  uint32_t pgsize = 0;

  static BatchRecord From(const MsgHeader& h) {
    return BatchRecord{h.addr, h.privbase, h.minipage, h.pgsize};
  }
  // Overwrites the per-minipage fields, leaving type/flags/from/seq alone.
  void ApplyTo(MsgHeader* h) const {
    h->addr = addr;
    h->privbase = privbase;
    h->minipage = minipage;
    h->pgsize = pgsize;
  }
  bool operator==(const BatchRecord&) const = default;
};

static_assert(sizeof(BatchRecord) == 24, "batch records are a fixed 24-byte wire format");

// Cap on records per frame: 64 records = 1536 payload bytes, comfortably one
// datagram on every transport. A round needing more flushes mid-batch.
inline constexpr uint32_t kMaxBatchRecords = 64;

}  // namespace millipage

#endif  // SRC_NET_MESSAGE_H_
