file(REMOVE_RECURSE
  "CMakeFiles/multiprocess.dir/multiprocess.cpp.o"
  "CMakeFiles/multiprocess.dir/multiprocess.cpp.o.d"
  "multiprocess"
  "multiprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
