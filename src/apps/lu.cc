#include "src/apps/lu.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace millipage {

std::string LuApp::input_desc() const {
  std::ostringstream os;
  os << config_.n << "x" << config_.n << " matrix, " << config_.block << "x" << config_.block
     << " blocks";
  return os.str();
}

std::string LuApp::granularity_desc() const {
  std::ostringstream os;
  os << "a block, " << config_.block * config_.block * sizeof(float) << " bytes";
  return os.str();
}

void LuApp::Setup(DsmNode& manager) {
  (void)manager;
  MP_CHECK(config_.n % config_.block == 0) << "block must divide n";
  const uint32_t b = config_.block;
  blocks_.clear();
  blocks_.reserve(nb() * nb());
  for (uint32_t i = 0; i < nb() * nb(); ++i) {
    blocks_.push_back(SharedAlloc<float>(b * b));
  }
  // Diagonally dominant input so factorization without pivoting is stable.
  Rng rng(0x10f5eedULL ^ config_.n);
  original_.assign(static_cast<size_t>(config_.n) * config_.n, 0.0f);
  for (uint32_t i = 0; i < config_.n; ++i) {
    for (uint32_t j = 0; j < config_.n; ++j) {
      float v = static_cast<float>(rng.NextDouble());
      if (i == j) {
        v += static_cast<float>(config_.n);
      }
      original_[static_cast<size_t>(i) * config_.n + j] = v;
      Block(i / b, j / b)[(i % b) * b + (j % b)] = v;
    }
  }
}

void LuApp::Worker(DsmNode& node, HostId host) {
  const uint32_t b = config_.block;
  const uint16_t hosts = node.num_hosts();
  const uint64_t interior_units = static_cast<uint64_t>(b) * b * b;
  // Distribution pass (excluded warmup epoch): owners take their blocks.
  for (uint32_t bi = 0; bi < nb(); ++bi) {
    for (uint32_t bj = 0; bj < nb(); ++bj) {
      if (Owner(bi, bj, hosts) == host) {
        volatile float* blk = Block(bi, bj);
        blk[0] = blk[0];
      }
    }
  }
  node.Barrier();
  for (uint32_t k = 0; k < nb(); ++k) {
    // 1. Factor the diagonal block.
    if (Owner(k, k, hosts) == host) {
      float* d = Block(k, k);
      for (uint32_t p = 0; p < b; ++p) {
        for (uint32_t r = p + 1; r < b; ++r) {
          d[r * b + p] /= d[p * b + p];
          for (uint32_t c = p + 1; c < b; ++c) {
            d[r * b + c] -= d[r * b + p] * d[p * b + c];
          }
        }
      }
      node.AddWorkUnits(interior_units / 3);
    }
    node.Barrier();
    // 2. Perimeter row (U) and column (L) blocks.
    for (uint32_t j = k + 1; j < nb(); ++j) {
      if (Owner(k, j, hosts) != host) {
        continue;
      }
      const float* d = Block(k, k);
      float* u = Block(k, j);
      for (uint32_t p = 0; p < b; ++p) {
        for (uint32_t r = p + 1; r < b; ++r) {
          for (uint32_t c = 0; c < b; ++c) {
            u[r * b + c] -= d[r * b + p] * u[p * b + c];
          }
        }
      }
      node.AddWorkUnits(interior_units / 2);
    }
    for (uint32_t i = k + 1; i < nb(); ++i) {
      if (Owner(i, k, hosts) != host) {
        continue;
      }
      const float* d = Block(k, k);
      float* l = Block(i, k);
      for (uint32_t p = 0; p < b; ++p) {
        for (uint32_t r = 0; r < b; ++r) {
          l[r * b + p] /= d[p * b + p];
          for (uint32_t c = p + 1; c < b; ++c) {
            l[r * b + c] -= l[r * b + p] * d[p * b + c];
          }
        }
      }
      node.AddWorkUnits(interior_units / 2);
    }
    node.Barrier();
    // 3. Interior update, with the paper's two prefetch calls issued ahead
    // of the owned blocks' source operands.
    if (config_.use_prefetch) {
      for (uint32_t i = k + 1; i < nb(); ++i) {
        for (uint32_t j = k + 1; j < nb(); ++j) {
          if (Owner(i, j, hosts) == host) {
            node.Prefetch(blocks_[i * nb() + k].addr());
            node.Prefetch(blocks_[k * nb() + j].addr());
          }
        }
      }
    }
    for (uint32_t i = k + 1; i < nb(); ++i) {
      for (uint32_t j = k + 1; j < nb(); ++j) {
        if (Owner(i, j, hosts) != host) {
          continue;
        }
        const float* li = Block(i, k);
        const float* uj = Block(k, j);
        float* a = Block(i, j);
        for (uint32_t r = 0; r < b; ++r) {
          for (uint32_t p = 0; p < b; ++p) {
            const float lrp = li[r * b + p];
            for (uint32_t c = 0; c < b; ++c) {
              a[r * b + c] -= lrp * uj[p * b + c];
            }
          }
        }
        node.AddWorkUnits(interior_units);
      }
    }
    node.Barrier();
  }
}

Status LuApp::Validate(DsmNode& manager) {
  (void)manager;
  const uint32_t n = config_.n;
  const uint32_t b = config_.block;
  // Sampled residual check: (L*U)[i][j] must reproduce the input.
  const uint32_t step = n >= 64 ? n / 32 : 1;
  double max_rel_err = 0;
  for (uint32_t i = 0; i < n; i += step) {
    for (uint32_t j = 0; j < n; j += step) {
      double sum = 0;
      const uint32_t kmax = std::min(i, j);
      for (uint32_t k = 0; k <= kmax; ++k) {
        const double l = (k == i) ? 1.0 : Block(i / b, k / b)[(i % b) * b + (k % b)];
        const double u = Block(k / b, j / b)[(k % b) * b + (j % b)];
        sum += l * u;
      }
      const double want = original_[static_cast<size_t>(i) * n + j];
      const double rel = std::abs(sum - want) / (std::abs(want) + 1.0);
      max_rel_err = std::max(max_rel_err, rel);
    }
  }
  if (max_rel_err > 1e-2) {
    return Status::Internal("LU residual too large: " + std::to_string(max_rel_err));
  }
  return Status::Ok();
}

}  // namespace millipage
