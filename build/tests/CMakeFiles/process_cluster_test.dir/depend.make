# Empty dependencies file for process_cluster_test.
# This may be replaced when dependencies are built.
