# Empty dependencies file for mp_dsm.
# This may be replaced when dependencies are built.
