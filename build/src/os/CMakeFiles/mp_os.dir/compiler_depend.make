# Empty compiler generated dependencies file for mp_os.
# This may be replaced when dependencies are built.
