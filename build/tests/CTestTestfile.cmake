# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(common_test "/root/repo/build/tests/common_test")
set_tests_properties(common_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(os_test "/root/repo/build/tests/os_test")
set_tests_properties(os_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(multiview_test "/root/repo/build/tests/multiview_test")
set_tests_properties(multiview_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(net_test "/root/repo/build/tests/net_test")
set_tests_properties(net_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(diff_test "/root/repo/build/tests/diff_test")
set_tests_properties(diff_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dsm_smoke_test "/root/repo/build/tests/dsm_smoke_test")
set_tests_properties(dsm_smoke_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dsm_protocol_test "/root/repo/build/tests/dsm_protocol_test")
set_tests_properties(dsm_protocol_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(dsm_sweep_test "/root/repo/build/tests/dsm_sweep_test")
set_tests_properties(dsm_sweep_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(lrc_test "/root/repo/build/tests/lrc_test")
set_tests_properties(lrc_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(process_cluster_test "/root/repo/build/tests/process_cluster_test")
set_tests_properties(process_cluster_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(apps_test "/root/repo/build/tests/apps_test")
set_tests_properties(apps_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(model_test "/root/repo/build/tests/model_test")
set_tests_properties(model_test PROPERTIES  TIMEOUT "300" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;22;add_test;/root/repo/tests/CMakeLists.txt;0;")
