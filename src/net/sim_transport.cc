#include "src/net/sim_transport.h"

#include <cstring>

#include "src/common/logging.h"

namespace millipage {

// The fabric-facing Transport of one simulated host. Its only job is to
// attach the sender's identity to Send and to drain staged deliveries.
class SimEndpoint : public Transport {
 public:
  SimEndpoint(SimNet* net, HostId me) : net_(net), me_(me) {}

  Status Send(HostId to, MsgHeader h, const void* payload, size_t len) override {
    return net_->SendFrom(me_, to, h, payload, len);
  }

  Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                    uint64_t timeout_us) override {
    // The scheduler owns time: there is nothing to wait for that ScheduleNext
    // has not already staged, so the timeout is irrelevant.
    (void)timeout_us;
    return net_->PollStaged(me, h, sink);
  }

  uint16_t num_hosts() const override { return net_->num_hosts(); }

 private:
  SimNet* const net_;
  const HostId me_;
};

SimNet::SimNet(uint16_t num_hosts, uint64_t seed, SimOptions options)
    : num_hosts_(num_hosts),
      options_(options),
      rng_(seed),
      queues_(static_cast<size_t>(num_hosts) * num_hosts),
      pair_tail_us_(static_cast<size_t>(num_hosts) * num_hosts, 0),
      staged_(num_hosts) {
  MP_CHECK(num_hosts > 0);
  MP_CHECK(options_.min_delay_us <= options_.max_delay_us);
  pair_rng_.reserve(queues_.size());
  for (size_t pair = 0; pair < queues_.size(); ++pair) {
    pair_rng_.emplace_back(seed ^ (0x9e3779b97f4a7c15ULL * (pair + 1)));
  }
  endpoints_.reserve(num_hosts);
  for (uint16_t h = 0; h < num_hosts; ++h) {
    endpoints_.push_back(std::make_unique<SimEndpoint>(this, h));
  }
}

SimNet::~SimNet() = default;

Transport* SimNet::endpoint(HostId h) const {
  MP_CHECK(h < num_hosts_);
  return endpoints_[h].get();
}

uint64_t SimNet::now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_us_;
}

size_t SimNet::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& q : queues_) {
    n += q.size();
  }
  for (const auto& q : staged_) {
    n += q.size();
  }
  return n;
}

uint64_t SimNet::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t SimNet::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void SimNet::Drop(HostId dst, MsgType type, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_rules_.push_back(DropRule{dst, type, count});
}

void SimNet::KillHost(HostId v) {
  MP_CHECK(v < num_hosts_);
  std::lock_guard<std::mutex> lock(mu_);
  dead_mask_ |= 1ULL << v;
  for (uint16_t peer = 0; peer < num_hosts_; ++peer) {
    dropped_ += queues_[PairIndex(v, peer)].size();
    dropped_ += queues_[PairIndex(peer, v)].size();
    queues_[PairIndex(v, peer)].clear();
    queues_[PairIndex(peer, v)].clear();
  }
  dropped_ += staged_[v].size();
  staged_[v].clear();
}

uint64_t SimNet::dead_mask() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_mask_;
}

Status SimNet::SendFrom(HostId from, HostId to, const MsgHeader& h, const void* payload,
                        size_t len) {
  if (to >= num_hosts_) {
    return Status::Invalid("SimNet: bad destination host");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (((dead_mask_ >> from) & 1u) != 0 || ((dead_mask_ >> to) & 1u) != 0) {
    dropped_++;
    return Status::Ok();  // dead hosts neither send nor receive
  }
  for (DropRule& r : drop_rules_) {
    if (r.remaining > 0 && r.dst == to && r.type == h.msg_type()) {
      r.remaining--;
      dropped_++;
      return Status::Ok();
    }
  }
  SimMsg m;
  m.h = h;
  if (payload != nullptr && len > 0) {
    m.h.flags |= kFlagHasPayload;
    m.h.pgsize = static_cast<uint32_t>(len);
    m.payload.resize(len);
    std::memcpy(m.payload.data(), payload, len);
  }
  // Jitter explores interleavings; the pair-tail clamp keeps each (sender,
  // receiver) channel FIFO regardless of the draws.
  const size_t pair = PairIndex(from, to);
  const uint64_t jitter =
      options_.min_delay_us == options_.max_delay_us
          ? options_.min_delay_us
          : pair_rng_[pair].Range(options_.min_delay_us, options_.max_delay_us);
  const uint64_t arrival = std::max(now_us_ + jitter, pair_tail_us_[pair]);
  pair_tail_us_[pair] = arrival;
  m.arrival_us = arrival;
  queues_[pair].push_back(std::move(m));
  return Status::Ok();
}

bool SimNet::ScheduleNext(HostId* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  // Collect the pair-queue heads with the globally minimal arrival time.
  // Iteration order over pairs is fixed, so the candidate list — and with it
  // the seeded tie-break — is deterministic.
  uint64_t best = ~0ULL;
  std::vector<size_t> candidates;
  for (size_t pair = 0; pair < queues_.size(); ++pair) {
    if (queues_[pair].empty()) {
      continue;
    }
    const uint64_t a = queues_[pair].front().arrival_us;
    if (a < best) {
      best = a;
      candidates.clear();
    }
    if (a == best) {
      candidates.push_back(pair);
    }
  }
  if (candidates.empty()) {
    return false;
  }
  const size_t pair = candidates.size() == 1
                          ? candidates[0]
                          : candidates[rng_.Below(candidates.size())];
  SimMsg m = std::move(queues_[pair].front());
  queues_[pair].pop_front();
  now_us_ = std::max(now_us_, m.arrival_us);
  const HostId to = static_cast<HostId>(pair % num_hosts_);
  staged_[to].push_back(std::move(m));
  delivered_++;
  if (dst != nullptr) {
    *dst = to;
  }
  return true;
}

Result<bool> SimNet::PollStaged(HostId me, MsgHeader* h, const PayloadSink& sink) {
  std::unique_lock<std::mutex> lock(mu_);
  MP_CHECK(me < num_hosts_);
  if (staged_[me].empty()) {
    return false;
  }
  SimMsg m = std::move(staged_[me].front());
  staged_[me].pop_front();
  lock.unlock();  // the sink may re-enter the node; keep the fabric unlocked
  *h = m.h;
  if (!m.payload.empty()) {
    std::byte* dst_ptr = sink(m.h);
    if (dst_ptr != nullptr) {
      std::memcpy(dst_ptr, m.payload.data(), m.payload.size());
    } else {
      h->flags &= static_cast<uint8_t>(~kFlagHasPayload);
    }
  }
  return true;
}

}  // namespace millipage
