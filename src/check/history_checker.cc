#include "src/check/history_checker.h"

#include <cstdio>
#include <map>
#include <unordered_map>

#include "src/os/protection.h"

namespace millipage {

namespace {

CheckReport Violation(size_t index, std::string message) {
  CheckReport r;
  r.ok = false;
  r.violating_index = index;
  r.message = std::move(message);
  return r;
}

std::string HostList(uint64_t mask) {
  std::string s;
  for (uint16_t h = 0; h < 64; ++h) {
    if ((mask & (1ULL << h)) != 0) {
      if (!s.empty()) {
        s += ",";
      }
      s += "h" + std::to_string(h);
    }
  }
  return s;
}

}  // namespace

std::string CheckReport::FormatViolation(const std::vector<TraceEvent>& history) const {
  if (ok) {
    return "";
  }
  std::string out = "invariant violation: " + message + "\n";
  out += "minimal violating history (" + std::to_string(violating_index + 1) +
         " events):\n";
  const std::vector<TraceEvent> prefix(history.begin(),
                                       history.begin() + violating_index + 1);
  out += FormatTraceHistory(prefix);
  return out;
}

CheckReport CheckSwmr(const std::vector<TraceEvent>& history, uint16_t num_hosts) {
  // Per minipage: bitmask of hosts holding ReadOnly / ReadWrite copies,
  // replayed from the kProtSet stream.
  std::unordered_map<uint32_t, uint64_t> readers;
  std::unordered_map<uint32_t, uint64_t> writers;
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind != TraceEventKind::kProtSet) {
      continue;
    }
    if (e.host >= num_hosts) {
      return Violation(i, "kProtSet from out-of-range host " + std::to_string(e.host));
    }
    const uint64_t bit = 1ULL << e.host;
    uint64_t& rd = readers[e.minipage];
    uint64_t& wr = writers[e.minipage];
    rd &= ~bit;
    wr &= ~bit;
    switch (static_cast<Protection>(e.arg1)) {
      case Protection::kNoAccess:
        break;
      case Protection::kReadOnly:
        rd |= bit;
        break;
      case Protection::kReadWrite:
        wr |= bit;
        break;
      default:
        return Violation(i, "kProtSet with unknown protection value " +
                                std::to_string(e.arg1));
    }
    if (__builtin_popcountll(wr) > 1) {
      return Violation(i, "SWMR: minipage " + std::to_string(e.minipage) +
                              " writable on multiple hosts {" + HostList(wr) + "}");
    }
    if (wr != 0 && rd != 0) {
      return Violation(i, "SWMR: minipage " + std::to_string(e.minipage) +
                              " writable on {" + HostList(wr) +
                              "} while read copies survive on {" + HostList(rd) +
                              "} (reader not invalidated before write grant)");
    }
  }
  return CheckReport{};
}

CheckReport CheckBarrierEpochs(const std::vector<TraceEvent>& history,
                               uint16_t num_hosts) {
  std::vector<uint64_t> next_gen(num_hosts, 0);
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind != TraceEventKind::kBarrierRelease) {
      continue;
    }
    if (e.host >= num_hosts) {
      return Violation(i, "barrier release on out-of-range host " +
                              std::to_string(e.host));
    }
    if (e.arg1 != next_gen[e.host]) {
      return Violation(i, "barrier epoch not monotonic on host " +
                              std::to_string(e.host) + ": observed generation " +
                              std::to_string(e.arg1) + ", expected " +
                              std::to_string(next_gen[e.host]));
    }
    next_gen[e.host]++;
  }
  return CheckReport{};
}

CheckReport CheckLockExclusivity(const std::vector<TraceEvent>& history) {
  // lock id -> holder (or no entry when free).
  std::map<uint32_t, uint64_t> held;
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind == TraceEventKind::kLockGrant) {
      auto [it, inserted] = held.emplace(e.minipage, e.arg1);
      if (!inserted) {
        return Violation(i, "lock " + std::to_string(e.minipage) +
                                " granted to host " + std::to_string(e.arg1) +
                                " while held by host " + std::to_string(it->second));
      }
    } else if (e.kind == TraceEventKind::kLockRelease) {
      auto it = held.find(e.minipage);
      if (it == held.end()) {
        return Violation(i, "lock " + std::to_string(e.minipage) +
                                " released while free");
      }
      if (it->second != e.arg1) {
        return Violation(i, "lock " + std::to_string(e.minipage) +
                                " released by host " + std::to_string(e.arg1) +
                                " but held by host " + std::to_string(it->second));
      }
      held.erase(it);
    }
  }
  return CheckReport{};
}

CheckReport CheckCoherenceOracle(const std::vector<TraceEvent>& history) {
  std::unordered_map<uint64_t, uint64_t> memory;  // packed addr -> last written value
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind == TraceEventKind::kAppWrite) {
      memory[e.addr] = e.arg1;
    } else if (e.kind == TraceEventKind::kAppRead) {
      const auto it = memory.find(e.addr);
      const uint64_t expected = it == memory.end() ? 0 : it->second;
      if (e.arg1 != expected) {
        char buf[160];
        snprintf(buf, sizeof(buf),
                 "coherence: host %u read %llx at addr %llx, but the latest write "
                 "there was %llx (stale copy served)",
                 e.host, (unsigned long long)e.arg1, (unsigned long long)e.addr,
                 (unsigned long long)expected);
        return Violation(i, buf);
      }
    }
  }
  return CheckReport{};
}

CheckReport CheckShardAffinity(const std::vector<TraceEvent>& history,
                               uint16_t num_hosts) {
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    switch (e.kind) {
      case TraceEventKind::kMgrSvcStart:
      case TraceEventKind::kMgrSvcEnd:
      case TraceEventKind::kMgrReadGrant:
      case TraceEventKind::kMgrWriteGrant:
      case TraceEventKind::kMgrInvalidate:
      case TraceEventKind::kLockGrant:
      case TraceEventKind::kLockRelease:
        break;
      default:
        continue;
    }
    const uint16_t owner = static_cast<uint16_t>(e.minipage % num_hosts);
    if (e.host != owner) {
      return Violation(i, "shard affinity: " +
                              std::string(TraceEventKindName(e.kind)) + " for id " +
                              std::to_string(e.minipage) + " served by host " +
                              std::to_string(e.host) + ", but the id's shard is host " +
                              std::to_string(owner));
    }
  }
  return CheckReport{};
}

CheckReport CheckHistory(const std::vector<TraceEvent>& history, uint16_t num_hosts,
                         bool sharded_managers) {
  CheckReport r = CheckSwmr(history, num_hosts);
  if (!r.ok) {
    return r;
  }
  r = CheckBarrierEpochs(history, num_hosts);
  if (!r.ok) {
    return r;
  }
  r = CheckLockExclusivity(history);
  if (!r.ok) {
    return r;
  }
  if (sharded_managers) {
    r = CheckShardAffinity(history, num_hosts);
    if (!r.ok) {
      return r;
    }
  }
  return CheckCoherenceOracle(history);
}

}  // namespace millipage
