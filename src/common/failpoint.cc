#include "src/common/failpoint.h"

#include <unistd.h>

#include <cstdlib>

#include "src/common/logging.h"

namespace millipage {

namespace {

uint64_t Fnv1a(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// "return(2),skip=40,times=1" -> action. Leading/trailing spaces tolerated.
Status ParseRule(std::string_view rule, FailpointAction* out) {
  FailpointAction a;
  size_t pos = 0;
  bool first = true;
  while (pos <= rule.size()) {
    size_t comma = rule.find(',', pos);
    if (comma == std::string_view::npos) {
      comma = rule.size();
    }
    std::string_view part = rule.substr(pos, comma - pos);
    while (!part.empty() && part.front() == ' ') part.remove_prefix(1);
    while (!part.empty() && part.back() == ' ') part.remove_suffix(1);
    if (first) {
      first = false;
      std::string_view name = part;
      int64_t arg = 0;
      const size_t paren = part.find('(');
      if (paren != std::string_view::npos) {
        if (part.back() != ')') {
          return Status::Invalid("failpoint rule: unterminated '(' in '" + std::string(rule) + "'");
        }
        name = part.substr(0, paren);
        arg = std::atoll(std::string(part.substr(paren + 1, part.size() - paren - 2)).c_str());
      }
      if (name == "off") {
        a.kind = FailpointAction::Kind::kOff;
      } else if (name == "return") {
        a.kind = FailpointAction::Kind::kReturn;
      } else if (name == "delay") {
        a.kind = FailpointAction::Kind::kDelayUs;
      } else if (name == "print") {
        a.kind = FailpointAction::Kind::kPrint;
      } else if (name == "panic") {
        a.kind = FailpointAction::Kind::kPanic;
      } else {
        return Status::Invalid("failpoint rule: unknown action '" + std::string(name) + "'");
      }
      a.arg = arg;
    } else {
      const size_t eq = part.find('=');
      if (eq == std::string_view::npos) {
        return Status::Invalid("failpoint rule: bad modifier '" + std::string(part) + "'");
      }
      const std::string_view key = part.substr(0, eq);
      const std::string val(part.substr(eq + 1));
      if (key == "prob") {
        a.probability = std::atof(val.c_str());
        if (a.probability < 0.0 || a.probability > 1.0) {
          return Status::Invalid("failpoint rule: prob must be in [0,1]");
        }
      } else if (key == "times") {
        a.max_hits = static_cast<uint64_t>(std::atoll(val.c_str()));
      } else if (key == "skip") {
        a.skip = static_cast<uint64_t>(std::atoll(val.c_str()));
      } else {
        return Status::Invalid("failpoint rule: unknown modifier '" + std::string(key) + "'");
      }
    }
    pos = comma + 1;
    if (comma == rule.size()) {
      break;
    }
  }
  *out = a;
  return Status::Ok();
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* instance = [] {
    auto* r = new FailpointRegistry();
    if (const char* seed = std::getenv("MILLIPAGE_FAILPOINT_SEED")) {
      r->SetSeed(static_cast<uint64_t>(std::atoll(seed)));
    }
    if (const char* spec = std::getenv("MILLIPAGE_FAILPOINTS")) {
      const Status st = r->Configure(spec);
      if (!st.ok()) {
        MP_LOG(Error) << "MILLIPAGE_FAILPOINTS: " << st.ToString();
      }
    }
    return r;
  }();
  return *instance;
}

Status FailpointRegistry::Configure(const std::string& spec) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t semi = spec.find(';', pos);
    if (semi == std::string::npos) {
      semi = spec.size();
    }
    const std::string_view entry = std::string_view(spec).substr(pos, semi - pos);
    pos = semi + 1;
    if (entry.empty()) {
      continue;
    }
    const size_t eq = entry.find('=');
    if (eq == std::string_view::npos) {
      return Status::Invalid("failpoint spec: missing '=' in '" + std::string(entry) + "'");
    }
    FailpointAction action;
    MP_RETURN_IF_ERROR(ParseRule(entry.substr(eq + 1), &action));
    Set(std::string(entry.substr(0, eq)), action);
  }
  return Status::Ok();
}

void FailpointRegistry::Set(const std::string& name, const FailpointAction& action) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = points_.try_emplace(name);
  const bool was_armed = !inserted && it->second.action.kind != FailpointAction::Kind::kOff;
  const bool now_armed = action.kind != FailpointAction::Kind::kOff;
  it->second.action = action;
  it->second.rng = Rng(seed_ ^ Fnv1a(name));
  it->second.evals = 0;
  it->second.hits = 0;
  if (now_armed && !was_armed) {
    armed_.fetch_add(1, std::memory_order_release);
  } else if (!now_armed && was_armed) {
    armed_.fetch_sub(1, std::memory_order_release);
  }
}

void FailpointRegistry::Clear(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end()) {
    return;
  }
  if (it->second.action.kind != FailpointAction::Kind::kOff) {
    armed_.fetch_sub(1, std::memory_order_release);
  }
  points_.erase(it);
}

void FailpointRegistry::ClearAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_.store(0, std::memory_order_release);
}

void FailpointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  seed_ = seed;
}

std::optional<FailpointHit> FailpointRegistry::Eval(std::string_view name) {
  if (armed_.load(std::memory_order_relaxed) == 0) {
    return std::nullopt;  // fast path: nothing armed anywhere
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  if (it == points_.end() || it->second.action.kind == FailpointAction::Kind::kOff) {
    return std::nullopt;
  }
  Point& p = it->second;
  p.evals++;
  if (p.evals <= p.action.skip) {
    return std::nullopt;
  }
  if (p.action.max_hits != 0 && p.hits >= p.action.max_hits) {
    return std::nullopt;
  }
  if (p.action.probability < 1.0 && p.rng.NextDouble() >= p.action.probability) {
    return std::nullopt;
  }
  p.hits++;
  return FailpointHit{p.action.kind, p.action.arg};
}

std::optional<int64_t> FailpointRegistry::Fire(std::string_view name) {
  const std::optional<FailpointHit> hit = Eval(name);
  if (!hit.has_value()) {
    return std::nullopt;
  }
  switch (hit->kind) {
    case FailpointAction::Kind::kReturn:
      return hit->arg;
    case FailpointAction::Kind::kDelayUs:
      ::usleep(static_cast<useconds_t>(hit->arg));
      return std::nullopt;
    case FailpointAction::Kind::kPrint:
      MP_LOG(Info) << "failpoint hit: " << std::string(name);
      return std::nullopt;
    case FailpointAction::Kind::kPanic:
      MP_LOG(Fatal) << "failpoint panic: " << std::string(name);
      return std::nullopt;
    case FailpointAction::Kind::kOff:
      return std::nullopt;
  }
  return std::nullopt;
}

uint64_t FailpointRegistry::evals(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.evals;
}

uint64_t FailpointRegistry::hits(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(name);
  return it == points_.end() ? 0 : it->second.hits;
}

}  // namespace millipage
