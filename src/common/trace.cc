#include "src/common/trace.h"

#include <cstdio>

namespace millipage {

const char* TraceEventKindName(TraceEventKind k) {
  switch (k) {
    case TraceEventKind::kProtSet:
      return "ProtSet";
    case TraceEventKind::kFaultStart:
      return "FaultStart";
    case TraceEventKind::kFaultEnd:
      return "FaultEnd";
    case TraceEventKind::kMgrSvcStart:
      return "MgrSvcStart";
    case TraceEventKind::kMgrSvcEnd:
      return "MgrSvcEnd";
    case TraceEventKind::kMgrReadGrant:
      return "MgrReadGrant";
    case TraceEventKind::kMgrWriteGrant:
      return "MgrWriteGrant";
    case TraceEventKind::kMgrInvalidate:
      return "MgrInvalidate";
    case TraceEventKind::kBarrierEnter:
      return "BarrierEnter";
    case TraceEventKind::kBarrierRelease:
      return "BarrierRelease";
    case TraceEventKind::kLockGrant:
      return "LockGrant";
    case TraceEventKind::kLockRelease:
      return "LockRelease";
    case TraceEventKind::kAppRead:
      return "AppRead";
    case TraceEventKind::kAppWrite:
      return "AppWrite";
    case TraceEventKind::kEpochBump:
      return "EpochBump";
    case TraceEventKind::kMinipageLost:
      return "MinipageLost";
  }
  return "?";
}

std::string FormatTraceEvent(const TraceEvent& e) {
  char buf[160];
  snprintf(buf, sizeof(buf), "%6llu %-14s h%u mp=%d addr=%llx arg1=%llu arg2=%llx",
           (unsigned long long)e.lts, TraceEventKindName(e.kind), e.host,
           e.minipage == ~0u ? -1 : static_cast<int>(e.minipage),
           (unsigned long long)e.addr, (unsigned long long)e.arg1,
           (unsigned long long)e.arg2);
  return buf;
}

std::string FormatTraceHistory(const std::vector<TraceEvent>& history) {
  std::string out;
  out.reserve(history.size() * 64);
  for (const TraceEvent& e : history) {
    out += FormatTraceEvent(e);
    out += '\n';
  }
  return out;
}

}  // namespace millipage
