// Ablation: DSM server responsiveness vs service discipline (Section
// 3.5.1). The paper's sweeper wakes on a 1 ms NT multimedia timer whose
// jitter pushed average request delay to ~750 us, dominating fault service;
// they predict the prefetches and chunking compromises would relax once
// polling is responsive. Sweeping the service period reproduces that
// effect: fault latency tracks the server's wake-up period.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

double MeasureReadFaultUs(ServiceMode mode, uint64_t period_us) {
  DsmConfig cfg;
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  cfg.service_mode = mode;
  cfg.service_period_us = period_us;
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(8);
    *p = 1;
  });
  constexpr int kRounds = 120;
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    for (int r = 0; r < kRounds; ++r) {
      if (host == 0) {
        p[0] = r;
      }
      node.Barrier();
      if (host == 1) {
        volatile int v = p[0];
        (void)v;
      }
      node.Barrier();
    }
  });
  return (*cluster)->node(1).read_fault_latency().mean_ns() / 1000.0;
}

}  // namespace
}  // namespace millipage

int main() {
  using namespace millipage;
  PrintHeader("Ablation: server wake-up period vs fault latency (Section 3.5.1)");
  std::printf("  %-28s %16s\n", "service discipline", "read fault (us)");
  std::printf("  %-28s %16.1f\n", "blocking (event-driven)",
              MeasureReadFaultUs(ServiceMode::kBlocking, 0));
  for (uint64_t period : {100UL, 500UL, 1000UL, 2000UL, 5000UL}) {
    char label[48];
    std::snprintf(label, sizeof(label), "periodic, %lu us sweeper", period);
    std::printf("  %-28s %16.1f\n", label, MeasureReadFaultUs(ServiceMode::kPeriodic, period));
  }
  PrintNote("paper: the 1 ms NT timer (std-dev ~955 us) caused ~500 us average server");
  PrintNote("response delay on top of ~250 us protocol time. Expected shape: latency");
  PrintNote("grows roughly with period/2 once the sweeper period dominates the protocol.");
  return 0;
}
