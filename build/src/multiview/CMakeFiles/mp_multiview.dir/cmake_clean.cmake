file(REMOVE_RECURSE
  "CMakeFiles/mp_multiview.dir/allocator.cc.o"
  "CMakeFiles/mp_multiview.dir/allocator.cc.o.d"
  "CMakeFiles/mp_multiview.dir/minipage.cc.o"
  "CMakeFiles/mp_multiview.dir/minipage.cc.o.d"
  "CMakeFiles/mp_multiview.dir/view_set.cc.o"
  "CMakeFiles/mp_multiview.dir/view_set.cc.o.d"
  "libmp_multiview.a"
  "libmp_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
