# Empty dependencies file for bench_ext_lrc.
# This may be replaced when dependencies are built.
