#include "src/dsm/process_cluster.h"

#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/common/logging.h"
#include "src/dsm/global_ptr.h"
#include "src/net/socket_transport.h"
#include "src/net/transport_factory.h"
#include "src/os/fault_handler.h"

namespace millipage {

namespace {

struct ChildFaultCtx {
  DsmNode* node = nullptr;
};

bool ChildFaultTrampoline(void* ctx, void* addr, bool is_write) {
  DsmNode* node = static_cast<ChildFaultCtx*>(ctx)->node;
  uint32_t view;
  uint64_t offset;
  if (!node->views().Resolve(addr, &view, &offset)) {
    return false;
  }
  return node->OnFault(view, offset, is_write);
}

[[noreturn]] void ChildMain(const DsmConfig& config, HostId me, std::vector<int> fds,
                            const std::function<void(DsmNode&, HostId)>& fn) {
  // The factory honours config.transport_backend with runtime fallback: a
  // uring request on a kernel without multishot receive still comes up on
  // the socket backend (mirroring the fault-backend fallback below).
  MeshTransport mesh_transport =
      MakeMeshTransport(config.transport_backend, me, std::move(fds), config.uring_sqpoll);
  if (mesh_transport.transport == nullptr) {
    MP_LOG(Error) << "host " << me << ": transport init failed";
    _exit(2);
  }
  Transport& transport = *mesh_transport.transport;
  // Pin the backend BEFORE any view registers. Forked children must use the
  // SIGSEGV backend even if the parent had userfaultfd active at fork time:
  // the uffd descriptor survives the fork but the poller thread does not, so
  // a view registered against the inherited mode would fault into a queue
  // nobody drains.
  MP_CHECK_OK(FaultHandler::Instance().Install(FaultBackend::kSigsegv));
  Result<std::unique_ptr<DsmNode>> node = DsmNode::Create(config, me, &transport);
  if (!node.ok()) {
    MP_LOG(Error) << "host " << me << ": " << node.status().ToString();
    _exit(2);
  }
  static ChildFaultCtx fault_ctx;
  fault_ctx.node = node->get();
  const int slot = FaultHandler::Instance().Register(&ChildFaultTrampoline, &fault_ctx);
  MP_CHECK(slot >= 0);
  (*node)->Start();

  SetCurrentNode(node->get());
  fn(**node, me);
  // Keep serving until every host is done with the protocol. A liveness
  // failure here (peer dead, release lost) means the cluster cannot finish:
  // report it and self-terminate with a distinct code so the parent (and
  // chaos tests) can tell detection-and-exit apart from a watchdog sweep.
  const Status barrier_st = (*node)->TryBarrier();
  SetCurrentNode(nullptr);
  if (!barrier_st.ok()) {
    MP_LOG(Error) << "host " << me << ": final barrier failed: " << barrier_st.ToString();
    (*node)->Stop();
    FaultHandler::Instance().Unregister(slot);
    std::fflush(nullptr);
    _exit(kLivenessExitCode);
  }
  // Past the final barrier every peer is done; their connections closing is
  // normal teardown, not a failure.
  (*node)->BeginShutdown();
  // Give fire-and-forget traffic (lock releases, final acks) a moment to
  // drain before the server thread goes away.
  ::usleep(20 * 1000);
  (*node)->Stop();
  FaultHandler::Instance().Unregister(slot);
  std::fflush(nullptr);  // _exit skips stdio flush
  _exit(0);
}

}  // namespace

Status RunForkedCluster(const DsmConfig& config,
                        const std::function<void(DsmNode&, HostId)>& fn,
                        uint64_t timeout_ms, std::vector<HostOutcome>* outcomes) {
  if (outcomes != nullptr) {
    outcomes->assign(config.num_hosts, HostOutcome{});
  }
  MP_ASSIGN_OR_RETURN(SocketMesh mesh, SocketMesh::Create(config.num_hosts));
  std::vector<pid_t> pids;
  pids.reserve(config.num_hosts);
  for (uint16_t h = 0; h < config.num_hosts; ++h) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      Status st = Status::Errno("fork");
      for (pid_t p : pids) {
        ::kill(p, SIGKILL);
      }
      return st;
    }
    if (pid == 0) {
      std::vector<int> row = mesh.TakeRow(h);
      ChildMain(config, h, std::move(row), fn);  // never returns
    }
    pids.push_back(pid);
  }
  mesh.CloseAll();

  // Watchdog wait: a host that dies mid-protocol leaves its peers blocked at
  // a barrier, so once any child fails (or the deadline passes) the rest are
  // killed and the run is reported as failed.
  Status result = Status::Ok();
  std::vector<bool> done(config.num_hosts, false);
  uint16_t remaining = config.num_hosts;
  const uint64_t deadline_ms = timeout_ms == 0 ? 120000 : timeout_ms;
  uint64_t waited_ms = 0;
  bool any_failed = false;
  while (remaining > 0) {
    bool reaped = false;
    for (uint16_t h = 0; h < config.num_hosts; ++h) {
      if (done[h]) {
        continue;
      }
      int wstatus = 0;
      const pid_t r = ::waitpid(pids[h], &wstatus, WNOHANG);
      if (r == 0) {
        continue;
      }
      done[h] = true;
      remaining--;
      reaped = true;
      if (outcomes != nullptr) {
        HostOutcome& o = (*outcomes)[h];
        o.exited = r > 0;
        o.signaled = r > 0 && WIFSIGNALED(wstatus);
        o.exit_code = (r > 0 && WIFEXITED(wstatus)) ? WEXITSTATUS(wstatus) : 0;
        o.term_signal = o.signaled ? WTERMSIG(wstatus) : 0;
        o.reaped_at_ms = waited_ms;
      }
      if (r < 0) {
        result = Status::Errno("waitpid");
        any_failed = true;
      } else if (WIFSIGNALED(wstatus)) {
        result = Status::Internal("host " + std::to_string(h) + " killed by signal " +
                                  std::to_string(WTERMSIG(wstatus)));
        any_failed = true;
      } else if (WIFEXITED(wstatus) && WEXITSTATUS(wstatus) != 0) {
        result = Status::Internal("host " + std::to_string(h) + " exited with status " +
                                  std::to_string(WEXITSTATUS(wstatus)));
        any_failed = true;
      }
    }
    if (remaining == 0) {
      break;
    }
    if (reaped) {
      continue;
    }
    // Give survivors a grace period after a failure; then sweep them.
    const uint64_t budget_ms = any_failed ? std::min<uint64_t>(deadline_ms, 2000) : deadline_ms;
    if (waited_ms >= budget_ms) {
      for (uint16_t h = 0; h < config.num_hosts; ++h) {
        if (!done[h]) {
          ::kill(pids[h], SIGKILL);
        }
      }
      if (result.ok()) {
        result = Status::Internal("forked cluster timed out after " +
                                  std::to_string(waited_ms) + " ms");
      }
      // Final blocking reap of the killed children.
      for (uint16_t h = 0; h < config.num_hosts; ++h) {
        if (!done[h]) {
          int wstatus = 0;
          const pid_t r = ::waitpid(pids[h], &wstatus, 0);
          if (outcomes != nullptr) {
            HostOutcome& o = (*outcomes)[h];
            o.exited = r > 0;
            o.signaled = r > 0 && WIFSIGNALED(wstatus);
            o.exit_code = (r > 0 && WIFEXITED(wstatus)) ? WEXITSTATUS(wstatus) : 0;
            o.term_signal = o.signaled ? WTERMSIG(wstatus) : 0;
            o.swept = true;
            o.reaped_at_ms = waited_ms;
          }
          done[h] = true;
          remaining--;
        }
      }
      break;
    }
    ::usleep(5000);
    waited_ms += 5;
  }
  return result;
}

}  // namespace millipage
