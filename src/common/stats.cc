#include "src/common/stats.h"

#include <cmath>

namespace millipage {

SampleStats SampleStats::FromSamples(std::vector<double> samples) {
  SampleStats s;
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  double sum = 0;
  for (double v : samples) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return s;
}

}  // namespace millipage
