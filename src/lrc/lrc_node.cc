#include "src/lrc/lrc_node.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/os/page.h"

namespace millipage {

namespace {
thread_local int tls_lrc_slot = -1;
}  // namespace

Result<std::unique_ptr<LrcNode>> LrcNode::Create(const DsmConfig& config, HostId me,
                                                 Transport* transport) {
  if (me >= config.num_hosts) {
    return Status::Invalid("LrcNode: host id out of range");
  }
  if (config.num_hosts > 64) {
    // Directory copysets are 64-bit masks; larger deployments would shift
    // host bits out of range.
    return Status::Invalid("LrcNode: num_hosts must be <= 64");
  }
  auto node = std::unique_ptr<LrcNode>(new LrcNode(config, me, transport));
  MP_ASSIGN_OR_RETURN(node->views_, ViewSet::Create(config.object_size, config.num_views));
  node->local_mpt_ = std::make_unique<MinipageTable>();
  if (me == kManagerHost) {
    node->mpt_ = std::make_unique<MinipageTable>();
    node->allocator_ = std::make_unique<MinipageAllocator>(
        node->mpt_.get(), node->views_->object_size(), config.num_views,
        config.MakeAllocatorOptions());
  }
  // Sync tables (locks, barrier): one shard on host 0 when centralized,
  // one per host when sharded — lock ids hash across hosts like minipages.
  if (me == kManagerHost || config.manager_policy == ManagerPolicy::kSharded) {
    node->directory_ = std::make_unique<Directory>();
  }
  return node;
}

LrcNode::LrcNode(const DsmConfig& config, HostId me, Transport* transport)
    : config_(config), me_(me), transport_(transport) {}

LrcNode::~LrcNode() { Stop(); }

void LrcNode::Start() {
  MP_CHECK(!server_.joinable());
  stop_.store(false, std::memory_order_release);
  server_ = std::thread([this] { ServerLoop(); });
}

void LrcNode::Stop() {
  if (!server_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  server_.join();
}

uint32_t LrcNode::ThreadSlot() {
  if (tls_lrc_slot < 0) {
    tls_lrc_slot = static_cast<int>(slots_.Acquire());
  }
  return static_cast<uint32_t>(tls_lrc_slot);
}

LrcCounters LrcNode::counters() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return counters_;
}

void LrcNode::SendMsg(HostId to, const MsgHeader& h, const void* payload, size_t len) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.messages_sent++;
  }
  MP_CHECK_OK(transport_->Send(to, h, payload, len));
}

Minipage LrcNode::MinipageFromHeader(const MsgHeader& h) const {
  Minipage mp;
  mp.id = h.minipage;
  mp.view = h.global_addr().view;
  mp.offset = h.privbase;
  mp.length = h.pgsize;
  return mp;
}

// ---- Application API ---------------------------------------------------------

Result<GlobalAddr> LrcNode::SharedMalloc(uint64_t size) {
  if (size == 0 || size > ~0u) {
    return Status::Invalid("SharedMalloc: size must be in (0, 4GiB)");
  }
  MsgHeader h;
  h.set_type(MsgType::kAllocRequest);
  h.from = me_;
  h.seq = ThreadSlot();
  h.pgsize = static_cast<uint32_t>(size);
  SendMsg(kManagerHost, h);
  const MsgHeader reply = slots_.Wait(h.seq);
  if ((reply.flags & kFlagAbort) != 0) {
    return Status::Exhausted("SharedMalloc: shared memory exhausted");
  }
  return reply.global_addr();
}

void LrcNode::Barrier() {
  FlushDirty();  // release
  MsgHeader h;
  h.set_type(MsgType::kBarrierEnter);
  h.from = me_;
  h.seq = ThreadSlot();
  SendMsg(config_.BarrierManager(), h);
  (void)slots_.Wait(h.seq);
  InvalidateCache();  // acquire
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.barriers++;
}

void LrcNode::Lock(uint32_t lock_id) {
  MsgHeader h;
  h.set_type(MsgType::kLockAcquire);
  h.from = me_;
  h.seq = ThreadSlot();
  h.minipage = lock_id;
  SendMsg(config_.ManagerOf(lock_id), h);
  (void)slots_.Wait(h.seq);
  InvalidateCache();  // acquire
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.lock_acquires++;
}

void LrcNode::Unlock(uint32_t lock_id) {
  FlushDirty();  // release
  MsgHeader h;
  h.set_type(MsgType::kLockRelease);
  h.from = me_;
  h.seq = kNoWaitSlot;
  h.minipage = lock_id;
  SendMsg(config_.ManagerOf(lock_id), h);
}

// ---- Fault path ----------------------------------------------------------------

bool LrcNode::OnFault(uint32_t view, uint64_t offset, bool is_write) {
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (is_write) {
      counters_.write_faults++;
    } else {
      counters_.read_faults++;
    }
  }
  // Known minipage? (geometry cached from an earlier fetch/serve)
  Minipage geometry;
  bool known = false;
  bool cached_readable = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Minipage* mp = local_mpt_->Lookup(view, offset);
    if (mp != nullptr) {
      geometry = *mp;
      known = true;
      auto it = cache_.find(mp->id);
      cached_readable =
          it != cache_.end() && views_->GetProtection(*mp) == Protection::kReadOnly;
    }
  }

  if (known && is_write && cached_readable) {
    // Pure local upgrade: twin the current copy, open it for writing. No
    // message, no invalidations — the LRC payoff on false-shared minipages.
    std::lock_guard<std::mutex> lock(mu_);
    CacheEntry& e = cache_[geometry.id];
    if (e.twin == nullptr) {
      e.twin = std::make_unique<Twin>(views_->PrivAddr(geometry.offset), geometry.length);
      dirty_.push_back(geometry.id);
    }
    MP_CHECK_OK(views_->SetProtection(geometry, Protection::kReadWrite));
    std::lock_guard<std::mutex> slock(stats_mu_);
    counters_.local_upgrades++;
    counters_.twins_created++;
    return true;
  }

  // Need the master copy. With known geometry go straight to the home;
  // otherwise route through the manager for MPT translation.
  MsgHeader h;
  h.set_type(MsgType::kReadRequest);
  h.from = me_;
  h.seq = ThreadSlot();
  h.addr = GlobalAddr{view, offset}.Pack();
  if (is_write) {
    h.flags |= kFlagWriteFetch;
  }
  if (known) {
    h.flags |= kFlagForwarded;
    h.minipage = geometry.id;
    h.pgsize = static_cast<uint32_t>(geometry.length);
    h.privbase = geometry.offset;
    const HostId home = HomeOf(geometry.id);
    if (home == me_) {
      // Home faulting on its own master copy: open it directly.
      MP_CHECK_OK(views_->SetProtection(geometry, Protection::kReadWrite));
      return true;
    }
    SendMsg(home, h);
  } else {
    SendMsg(kManagerHost, h);
  }
  (void)slots_.Wait(h.seq);
  return true;
}

// ---- Release / acquire -----------------------------------------------------------

void LrcNode::FlushDirty() {
  std::vector<std::pair<Minipage, Diff>> outgoing;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (MinipageId id : dirty_) {
      auto it = cache_.find(id);
      if (it == cache_.end() || it->second.twin == nullptr) {
        continue;
      }
      CacheEntry& e = it->second;
      const Minipage& mp = e.geometry;
      Diff diff = CreateDiff(*e.twin, views_->PrivAddr(mp.offset), mp.length);
      // Downgrade to ReadOnly: subsequent writes re-twin from current bytes.
      MP_CHECK_OK(views_->SetProtection(mp, Protection::kReadOnly));
      e.twin.reset();
      if (!diff.empty()) {
        outgoing.emplace_back(mp, std::move(diff));
      }
    }
    dirty_.clear();
  }
  if (outgoing.empty()) {
    return;
  }
  flush_acks_pending_.store(static_cast<uint32_t>(outgoing.size()), std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.diffs_flushed += outgoing.size();
  }
  for (auto& [mp, diff] : outgoing) {
    MsgHeader h;
    h.set_type(MsgType::kDiffUpdate);
    h.from = me_;
    h.seq = ThreadSlot();
    h.addr = GlobalAddr{mp.view, mp.offset}.Pack();
    h.minipage = mp.id;
    h.privbase = mp.offset;
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      counters_.diff_bytes += diff.encoded.size();
    }
    SendMsg(HomeOf(mp.id), h, diff.encoded.data(), diff.encoded.size());
  }
  (void)slots_.Wait(ThreadSlot());  // posted when the last kDiffAck arrives
}

void LrcNode::InvalidateCache() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, e] : cache_) {
    MP_CHECK(e.twin == nullptr) << "acquire with unflushed dirty minipage";
    MP_CHECK_OK(views_->SetProtection(e.geometry, Protection::kNoAccess));
  }
  cache_.clear();
  std::lock_guard<std::mutex> slock(stats_mu_);
  counters_.invalidation_sweeps++;
}

// ---- Server thread -----------------------------------------------------------------

void LrcNode::ServerLoop() {
  const PayloadSink sink = [this](const MsgHeader& h) -> std::byte* {
    if (h.msg_type() == MsgType::kDiffUpdate) {
      diff_buffer_.resize(h.pgsize);
      return diff_buffer_.data();
    }
    if (h.privbase + h.pgsize > views_->object_size()) {
      return nullptr;
    }
    return views_->PrivAddr(h.privbase);
  };
  while (!stop_.load(std::memory_order_acquire)) {
    MsgHeader h;
    Result<bool> got = transport_->Poll(me_, &h, sink, 2000);
    MP_CHECK(got.ok()) << got.status().ToString();
    if (*got) {
      HandleMessage(h);
    }
  }
}

void LrcNode::HandleMessage(const MsgHeader& h) {
  switch (h.msg_type()) {
    case MsgType::kReadRequest:
      if ((h.flags & kFlagForwarded) != 0) {
        ServeFetch(h);
      } else {
        MP_CHECK(is_manager());
        allocator_->CloseChunk();
        MgrHandleFetch(h);
      }
      break;
    case MsgType::kReadReply:
      HandleFetchReply(h);
      break;
    case MsgType::kDiffUpdate:
      ApplyIncomingDiff(h, std::move(diff_buffer_));
      break;
    case MsgType::kDiffAck:
      if (flush_acks_pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
        slots_.Post(h.seq, h);
      }
      break;
    case MsgType::kAllocRequest:
      MP_CHECK(is_manager());
      MgrHandleAlloc(h);
      break;
    case MsgType::kAllocReply:
    case MsgType::kBarrierRelease:
    case MsgType::kLockGrant:
      slots_.Post(h.seq, h);
      break;
    case MsgType::kBarrierEnter:
      MP_CHECK(me_ == config_.BarrierManager())
          << "barrier entry received by a non-barrier host";
      if (allocator_ != nullptr) {
        allocator_->CloseChunk();
      }
      MgrHandleBarrierEnter(h);
      break;
    case MsgType::kLockAcquire:
      MP_CHECK(config_.ManagerOf(h.minipage) == me_)
          << "lock acquire received by a non-owning shard";
      if (allocator_ != nullptr) {
        allocator_->CloseChunk();
      }
      MgrHandleLockAcquire(h);
      break;
    case MsgType::kLockRelease:
      MP_CHECK(config_.ManagerOf(h.minipage) == me_)
          << "lock release received by a non-owning shard";
      MgrHandleLockRelease(h);
      break;
    default:
      MP_LOG(Fatal) << "LrcNode: unexpected message " << MsgTypeName(h.msg_type());
  }
}

// ---- Manager role --------------------------------------------------------------------

void LrcNode::MgrHandleFetch(const MsgHeader& h) {
  const GlobalAddr a = h.global_addr();
  const Minipage* mp = mpt_->Lookup(a.view, a.offset);
  MP_CHECK(mp != nullptr) << "LRC fault at unmapped shared address";
  MsgHeader fwd = h;
  fwd.minipage = mp->id;
  fwd.pgsize = static_cast<uint32_t>(mp->length);
  fwd.privbase = mp->offset;
  fwd.flags |= kFlagForwarded;
  const HostId home = HomeOf(mp->id);
  if (home == h.from) {
    // Requester is the home: grant direct access to its master copy.
    MsgHeader reply = fwd;
    reply.set_type(MsgType::kReadReply);
    reply.flags = static_cast<uint8_t>((h.flags & kFlagWriteFetch) | kFlagHomeGrant);
    SendMsg(h.from, reply);
    return;
  }
  SendMsg(home, fwd);
}

void LrcNode::MgrHandleAlloc(const MsgHeader& h) {
  if (h.pgsize == 0) {
    allocator_->CloseChunk();
    return;
  }
  Result<Allocation> alloc = allocator_->Allocate(h.pgsize);
  MsgHeader reply = h;
  reply.set_type(MsgType::kAllocReply);
  if (!alloc.ok()) {
    reply.flags = kFlagAbort;
    SendMsg(h.from, reply);
    return;
  }
  reply.addr = GlobalAddr{alloc->view, alloc->offset}.Pack();
  reply.pgsize = static_cast<uint32_t>(alloc->size);
  reply.privbase = alloc->offset;
  SendMsg(h.from, reply);
}

void LrcNode::MgrHandleBarrierEnter(const MsgHeader& h) {
  BarrierState& b = directory_->barrier();
  b.arrived++;
  b.waiters.push_back(h);
  if (b.arrived < config_.num_hosts) {
    return;
  }
  for (const MsgHeader& w : b.waiters) {
    MsgHeader release = w;
    release.set_type(MsgType::kBarrierRelease);
    release.minipage = b.generation;
    SendMsg(w.from, release);
  }
  b.generation++;
  b.arrived = 0;
  b.waiters.clear();
}

void LrcNode::MgrHandleLockAcquire(const MsgHeader& h) {
  LockEntry& l = directory_->Lock(h.minipage);
  if (!l.held) {
    l.held = true;
    l.holder = h.from;
    MsgHeader grant = h;
    grant.set_type(MsgType::kLockGrant);
    SendMsg(h.from, grant);
    return;
  }
  l.waiters.push_back(h);
}

void LrcNode::MgrHandleLockRelease(const MsgHeader& h) {
  LockEntry& l = directory_->Lock(h.minipage);
  MP_CHECK(l.held && l.holder == h.from) << "unlock by non-holder";
  if (l.waiters.empty()) {
    l.held = false;
    return;
  }
  MsgHeader next = l.waiters.front();
  l.waiters.pop_front();
  l.holder = next.from;
  next.set_type(MsgType::kLockGrant);
  SendMsg(next.from, next);
}

// ---- Home role -----------------------------------------------------------------------

void LrcNode::ServeFetch(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  {
    // Remember the geometry so incoming diffs can be bounds-checked and the
    // home's own later faults resolve locally.
    std::lock_guard<std::mutex> lock(mu_);
    if (local_mpt_->Lookup(mp.view, mp.offset) == nullptr) {
      (void)local_mpt_->Define(mp.view, mp.offset, mp.length);
    }
  }
  MsgHeader reply = h;
  reply.set_type(MsgType::kReadReply);
  reply.flags = static_cast<uint8_t>(h.flags & kFlagWriteFetch);
  SendMsg(h.from, reply, views_->PrivAddr(mp.offset), mp.length);
  std::lock_guard<std::mutex> lock(stats_mu_);
  counters_.fetches++;
  counters_.fetch_bytes += mp.length;
}

void LrcNode::ApplyIncomingDiff(const MsgHeader& h, std::vector<std::byte> payload) {
  const GlobalAddr a = h.global_addr();
  uint64_t length = views_->object_size() - h.privbase;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const Minipage* mp = local_mpt_->Lookup(a.view, a.offset);
    if (mp != nullptr) {
      length = mp->length;
    }
  }
  Diff diff;
  diff.encoded = std::move(payload);
  MP_CHECK_OK(ApplyDiff(diff, views_->PrivAddr(h.privbase), length));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    counters_.diffs_applied++;
  }
  MsgHeader ack = h;
  ack.set_type(MsgType::kDiffAck);
  ack.flags = 0;
  SendMsg(h.from, ack);
}

void LrcNode::HandleFetchReply(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  const bool write_fetch = (h.flags & kFlagWriteFetch) != 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (local_mpt_->Lookup(mp.view, mp.offset) == nullptr) {
      (void)local_mpt_->Define(mp.view, mp.offset, mp.length);
    }
    if ((h.flags & kFlagHomeGrant) != 0) {
      // This host is the home: its object holds the master copy already.
      MP_CHECK_OK(views_->SetProtection(mp, Protection::kReadWrite));
    } else {
      CacheEntry& e = cache_[mp.id];
      e.geometry = mp;
      if (write_fetch) {
        e.twin = std::make_unique<Twin>(views_->PrivAddr(mp.offset), mp.length);
        dirty_.push_back(mp.id);
        MP_CHECK_OK(views_->SetProtection(mp, Protection::kReadWrite));
        std::lock_guard<std::mutex> slock(stats_mu_);
        counters_.twins_created++;
      } else {
        MP_CHECK_OK(views_->SetProtection(mp, Protection::kReadOnly));
      }
    }
  }
  slots_.Post(h.seq, h);
}

}  // namespace millipage
