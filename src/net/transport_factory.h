// Transport backend selection for the multi-process (SEQPACKET mesh) mode,
// mirroring the fault-backend pattern in src/os/fault_handler.h: an enum in
// the config, an env override for test matrices, and a runtime
// probe-and-fallback so a binary built with io_uring support still runs on a
// kernel without it.

#ifndef SRC_NET_TRANSPORT_FACTORY_H_
#define SRC_NET_TRANSPORT_FACTORY_H_

#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/net/transport.h"

namespace millipage {

enum class TransportBackend : uint8_t {
  kSocket = 0,  // poll(2) + per-datagram sendmsg/recvmsg (works everywhere)
  kUring = 1,   // io_uring multishot receive + batched submission (6.0+)
};

const char* TransportBackendName(TransportBackend backend);

// MILLIPAGE_TRANSPORT=uring|socket; anything else (or unset) is kSocket.
TransportBackend TransportBackendFromEnv();

// True when the running kernel supports everything UringTransport needs
// (multishot RECVMSG, provided-buffer rings, EXT_ARG waits). Cached.
bool UringTransportSupported();

struct MeshTransport {
  std::unique_ptr<Transport> transport;
  TransportBackend active = TransportBackend::kSocket;  // what actually runs
};

// Builds the mesh transport for host `me`, honouring `requested` with
// fallback: a uring request on an unsupported kernel logs once and returns a
// SocketTransport (the DSM must come up either way — same contract as the
// userfaultfd-to-SIGSEGV fallback). Takes ownership of the fds.
// `sqpoll` only affects the uring backend (kernel-side submission polling).
MeshTransport MakeMeshTransport(TransportBackend requested, HostId me,
                                std::vector<int> fds_by_peer, bool sqpoll = false);

}  // namespace millipage

#endif  // SRC_NET_TRANSPORT_FACTORY_H_
