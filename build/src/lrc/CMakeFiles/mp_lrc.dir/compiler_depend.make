# Empty compiler generated dependencies file for mp_lrc.
# This may be replaced when dependencies are built.
