file(REMOVE_RECURSE
  "CMakeFiles/bench_sec42_dsm_costs.dir/bench_sec42_dsm_costs.cc.o"
  "CMakeFiles/bench_sec42_dsm_costs.dir/bench_sec42_dsm_costs.cc.o.d"
  "bench_sec42_dsm_costs"
  "bench_sec42_dsm_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec42_dsm_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
