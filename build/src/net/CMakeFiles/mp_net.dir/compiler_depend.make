# Empty compiler generated dependencies file for mp_net.
# This may be replaced when dependencies are built.
