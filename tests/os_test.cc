// Unit tests for the OS layer: memory objects, mappings, protection, and
// the SIGSEGV fault dispatcher.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "src/os/fault_handler.h"
#include "src/os/mapping.h"
#include "src/os/memory_object.h"
#include "src/os/page.h"
#include "src/os/protection.h"

#if defined(__SANITIZE_THREAD__)
#define MILLIPAGE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define MILLIPAGE_TSAN 1
#endif
#endif

namespace millipage {
namespace {

TEST(Page, AlignmentHelpers) {
  const size_t p = PageSize();
  EXPECT_GT(p, 0u);
  EXPECT_EQ(RoundUpToPage(1), p);
  EXPECT_EQ(RoundUpToPage(p), p);
  EXPECT_EQ(RoundUpToPage(p + 1), 2 * p);
  EXPECT_EQ(RoundDownToPage(p + 1), p);
  EXPECT_EQ(PagesFor(0), 0u);
  EXPECT_EQ(PagesFor(1), 1u);
  EXPECT_EQ(PagesFor(p * 3), 3u);
  EXPECT_TRUE(IsPageAligned(static_cast<size_t>(0)));
  EXPECT_FALSE(IsPageAligned(static_cast<size_t>(7)));
}

TEST(MemoryObjectTest, CreateRoundsUpAndRejectsZero) {
  auto obj = MemoryObject::Create(100);
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->valid());
  EXPECT_EQ(obj->size(), PageSize());
  EXPECT_FALSE(MemoryObject::Create(0).ok());
}

TEST(MemoryObjectTest, MoveTransfersOwnership) {
  auto obj = MemoryObject::Create(PageSize());
  ASSERT_TRUE(obj.ok());
  const int fd = obj->fd();
  MemoryObject moved = std::move(*obj);
  EXPECT_EQ(moved.fd(), fd);
  EXPECT_FALSE(obj->valid());  // NOLINT(bugprone-use-after-move)
}

TEST(MappingTest, TwoViewsShareBacking) {
  auto obj = MemoryObject::Create(PageSize());
  ASSERT_TRUE(obj.ok());
  auto m1 = Mapping::MapObject(*obj, 0, PageSize(), Protection::kReadWrite);
  auto m2 = Mapping::MapObject(*obj, 0, PageSize(), Protection::kReadWrite);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_NE(m1->base(), m2->base());
  std::memcpy(m1->base(), "multiview", 10);
  EXPECT_STREQ(reinterpret_cast<const char*>(m2->base()), "multiview");
}

TEST(MappingTest, OffsetWindow) {
  auto obj = MemoryObject::Create(4 * PageSize());
  ASSERT_TRUE(obj.ok());
  auto whole = Mapping::MapObject(*obj, 0, 4 * PageSize(), Protection::kReadWrite);
  auto window = Mapping::MapObject(*obj, 2 * PageSize(), PageSize(), Protection::kReadWrite);
  ASSERT_TRUE(whole.ok() && window.ok());
  whole->base()[2 * PageSize()] = std::byte{0x5a};
  EXPECT_EQ(window->base()[0], std::byte{0x5a});
}

TEST(MappingTest, RejectsBadArguments) {
  auto obj = MemoryObject::Create(PageSize());
  ASSERT_TRUE(obj.ok());
  EXPECT_FALSE(Mapping::MapObject(*obj, 1, PageSize(), Protection::kReadWrite).ok());
  EXPECT_FALSE(Mapping::MapObject(*obj, 0, 2 * PageSize(), Protection::kReadWrite).ok());
  EXPECT_FALSE(Mapping::MapObject(*obj, 0, 0, Protection::kReadWrite).ok());
}

TEST(MappingTest, ProtectRangeValidation) {
  auto m = Mapping::MapAnonymous(4 * PageSize(), Protection::kReadWrite);
  ASSERT_TRUE(m.ok());
  EXPECT_TRUE(m->Protect(PageSize(), PageSize(), Protection::kNoAccess).ok());
  EXPECT_FALSE(m->Protect(1, PageSize(), Protection::kNoAccess).ok());
  EXPECT_FALSE(m->Protect(0, 5 * PageSize(), Protection::kNoAccess).ok());
  EXPECT_TRUE(m->Contains(m->base()));
  EXPECT_FALSE(m->Contains(m->base() + m->length()));
}

TEST(ProtectionTest, FlagsAndAllows) {
  EXPECT_EQ(ProtFlags(Protection::kNoAccess), PROT_NONE);
  EXPECT_EQ(ProtFlags(Protection::kReadOnly), PROT_READ);
  EXPECT_EQ(ProtFlags(Protection::kReadWrite), PROT_READ | PROT_WRITE);
  EXPECT_FALSE(ProtectionAllows(Protection::kNoAccess, false));
  EXPECT_TRUE(ProtectionAllows(Protection::kReadOnly, false));
  EXPECT_FALSE(ProtectionAllows(Protection::kReadOnly, true));
  EXPECT_TRUE(ProtectionAllows(Protection::kReadWrite, true));
  EXPECT_STREQ(ProtectionName(Protection::kReadOnly), "ReadOnly");
}

// Fault-handler fixture: upgrades the protection of a known page on fault.
struct UpgradeCtx {
  Mapping* mapping = nullptr;
  std::atomic<int> read_faults{0};
  std::atomic<int> write_faults{0};
};

bool UpgradeOnFault(void* ctx_raw, void* addr, bool is_write) {
  auto* ctx = static_cast<UpgradeCtx*>(ctx_raw);
  if (!ctx->mapping->Contains(addr)) {
    return false;
  }
  if (is_write) {
    ctx->write_faults.fetch_add(1);
    return ctx->mapping->ProtectAll(Protection::kReadWrite).ok();
  }
  ctx->read_faults.fetch_add(1);
  return ctx->mapping->ProtectAll(Protection::kReadOnly).ok();
}

TEST(FaultHandlerTest, ReadAndWriteFaultsAreDistinguished) {
  ASSERT_TRUE(FaultHandler::Instance().Install().ok());
  auto m = Mapping::MapAnonymous(PageSize(), Protection::kNoAccess);
  ASSERT_TRUE(m.ok());
  UpgradeCtx ctx;
  ctx.mapping = &*m;
  const int slot = FaultHandler::Instance().Register(&UpgradeOnFault, &ctx);
  ASSERT_GE(slot, 0);

  volatile int* p = reinterpret_cast<volatile int*>(m->base());
  const int v = *p;  // read fault
  EXPECT_EQ(v, 0);
  EXPECT_EQ(ctx.read_faults.load(), 1);
  EXPECT_EQ(ctx.write_faults.load(), 0);
  *p = 17;  // write fault (page is ReadOnly now)
  EXPECT_EQ(*p, 17);
  EXPECT_EQ(ctx.write_faults.load(), 1);

  FaultHandler::Instance().Unregister(slot);
}

// REG_ERR decode, write-first: the very first fault on the page is a store,
// so the handler must see is_write=true without a preceding read fault
// (guards against decoding the access kind from page state instead of the
// fault error code).
TEST(FaultHandlerTest, WriteFirstFaultDecodesAsWrite) {
  ASSERT_TRUE(FaultHandler::Instance().Install().ok());
  auto m = Mapping::MapAnonymous(PageSize(), Protection::kNoAccess);
  ASSERT_TRUE(m.ok());
  UpgradeCtx ctx;
  ctx.mapping = &*m;
  const int slot = FaultHandler::Instance().Register(&UpgradeOnFault, &ctx);
  ASSERT_GE(slot, 0);

  volatile int* p = reinterpret_cast<volatile int*>(m->base());
  *p = 23;  // write fault on a NoAccess page
  EXPECT_EQ(*p, 23);
  EXPECT_EQ(ctx.write_faults.load(), 1);
  EXPECT_EQ(ctx.read_faults.load(), 0);

  FaultHandler::Instance().Unregister(slot);
}

// A fault on an address no registered view claims must not be swallowed: the
// handler reports it (with the decoded access kind) and the process dies with
// default SIGSEGV semantics. The target is a view that was mapped and then
// torn down — the classic use-after-unmap.
TEST(FaultHandlerDeathTest, ReadOfUnmappedViewReportsAndDies) {
  ASSERT_TRUE(FaultHandler::Instance().Install().ok());
  EXPECT_DEATH(
      {
        std::byte* gone = nullptr;
        {
          auto m = Mapping::MapAnonymous(PageSize(), Protection::kReadWrite);
          gone = m->base();
        }  // view unmapped here
        (void)*reinterpret_cast<volatile int*>(gone);
      },
      "unhandled fault \\(R\\) at 0x");
}

TEST(FaultHandlerDeathTest, WriteToUnmappedViewReportsAndDies) {
  ASSERT_TRUE(FaultHandler::Instance().Install().ok());
  EXPECT_DEATH(
      {
        std::byte* gone = nullptr;
        {
          auto m = Mapping::MapAnonymous(PageSize(), Protection::kReadWrite);
          gone = m->base();
        }
        *reinterpret_cast<volatile int*>(gone) = 1;
      },
      "unhandled fault \\(W\\) at 0x");
}

// A callback that itself faults while servicing a fault must not be
// re-dispatched (infinite recursion); the depth guard reports the nested
// fault and dies.
TEST(FaultHandlerDeathTest, NestedFaultInHandlerIsRejected) {
#ifdef MILLIPAGE_TSAN
  // tsan's interceptor consumes the nested SIGSEGV before our depth guard can
  // report, so the child dies without the expected message.
  GTEST_SKIP() << "nested-SIGSEGV death message is unobservable under tsan";
#endif
  ASSERT_TRUE(FaultHandler::Instance().Install().ok());
  EXPECT_DEATH(
      {
        auto trap = Mapping::MapAnonymous(PageSize(), Protection::kNoAccess);
        auto inner = Mapping::MapAnonymous(PageSize(), Protection::kNoAccess);
        ASSERT_TRUE(trap.ok() && inner.ok());
        FaultHandler::Instance().Register(
            +[](void* ctx, void*, bool) {
              // Faults at depth 1 — inside the SIGSEGV handler.
              (void)*reinterpret_cast<volatile int*>(ctx);
              return true;
            },
            inner->base());
        (void)*reinterpret_cast<volatile int*>(trap->base());
      },
      "nested fault in handler");
}

// ---- userfaultfd backend ---------------------------------------------------

// Upgrade-on-fault context for the uffd backend: protection changes go
// through the FaultHandler range ops instead of mprotect.
struct UffdUpgradeCtx {
  std::byte* base = nullptr;
  size_t len = 0;
  std::atomic<int> read_faults{0};
  std::atomic<int> write_faults{0};
};

bool UffdUpgradeOnFault(void* ctx_raw, void* addr, bool is_write) {
  auto* ctx = static_cast<UffdUpgradeCtx*>(ctx_raw);
  auto* a = static_cast<std::byte*>(addr);
  if (a < ctx->base || a >= ctx->base + ctx->len) {
    return false;
  }
  FaultHandler& fh = FaultHandler::Instance();
  if (is_write) {
    ctx->write_faults.fetch_add(1);
    return fh.UffdEnsureRange(ctx->base, ctx->len, /*write_protect=*/false).ok();
  }
  ctx->read_faults.fetch_add(1);
  return fh.UffdEnsureRange(ctx->base, ctx->len, /*write_protect=*/true).ok();
}

// Full round trip through the poller: a zapped pte minor-faults on read and
// is installed write-protected; the subsequent store WP-faults and the range
// is un-protected — no SIGSEGV, no mprotect, same backing pages.
TEST(UffdBackendTest, MinorAndWpFaultsResolveThroughPoller) {
  FaultHandler& fh = FaultHandler::Instance();
  if (!fh.UffdSupported()) {
    GTEST_SKIP() << "kernel lacks userfaultfd minor+WP shmem support";
  }
  ASSERT_TRUE(fh.Install(FaultBackend::kUserfaultfd).ok());
  ASSERT_EQ(fh.active_backend(), FaultBackend::kUserfaultfd);
  auto obj = MemoryObject::Create(PageSize());
  ASSERT_TRUE(obj.ok());
  auto priv = Mapping::MapObject(*obj, 0, PageSize(), Protection::kReadWrite);
  auto app = Mapping::MapObject(*obj, 0, PageSize(), Protection::kReadWrite);
  ASSERT_TRUE(priv.ok() && app.ok());
  // UFFDIO_CONTINUE resolves from the page cache, so the object's pages must
  // exist there before the first minor fault (ViewSet does the same).
  std::memset(priv->base(), 0, PageSize());
  reinterpret_cast<int*>(priv->base())[0] = 41;

  UffdUpgradeCtx ctx;
  ctx.base = app->base();
  ctx.len = PageSize();
  ASSERT_TRUE(fh.UffdRegisterRange(app->base(), PageSize()).ok());
  ASSERT_TRUE(fh.UffdZapRange(app->base(), PageSize()).ok());
  const int slot = fh.Register(&UffdUpgradeOnFault, &ctx);
  ASSERT_GE(slot, 0);

  volatile int* p = reinterpret_cast<volatile int*>(app->base());
  EXPECT_EQ(*p, 41);  // minor fault: pte installed ReadOnly via the poller
  EXPECT_EQ(ctx.read_faults.load(), 1);
  EXPECT_EQ(ctx.write_faults.load(), 0);
  *p = 17;  // write-protect fault: WP bit dropped via the poller
  EXPECT_EQ(*p, 17);
  EXPECT_EQ(ctx.write_faults.load(), 1);
  EXPECT_EQ(reinterpret_cast<int*>(priv->base())[0], 17) << "views must share backing";

  fh.Unregister(slot);
  EXPECT_TRUE(fh.UffdUnregisterRange(app->base(), PageSize()).ok());
  // Restore the default mode for the rest of the binary.
  ASSERT_TRUE(fh.Install(FaultBackend::kSigsegv).ok());
}

// Requesting uffd must never fail Install: on kernels without minor+WP shmem
// support it falls back to sigsegv and says so via active_backend().
TEST(UffdBackendTest, InstallFallsBackWhenUnsupported) {
  FaultHandler& fh = FaultHandler::Instance();
  ASSERT_TRUE(fh.Install(FaultBackend::kUserfaultfd).ok());
  if (fh.UffdSupported()) {
    EXPECT_EQ(fh.active_backend(), FaultBackend::kUserfaultfd);
  } else {
    EXPECT_EQ(fh.active_backend(), FaultBackend::kSigsegv);
    // Range ops fail cleanly when the backend never came up.
    EXPECT_FALSE(fh.UffdZapRange(nullptr, PageSize()).ok());
  }
  ASSERT_TRUE(fh.Install(FaultBackend::kSigsegv).ok());
  EXPECT_EQ(fh.active_backend(), FaultBackend::kSigsegv);
}

// A SIGSEGV raised *on the poller thread itself* (a buggy callback chasing a
// wild pointer) can never be serviced — the only thread that could resolve
// it is the one that faulted. The handler's poller guard must report and die
// instead of deadlocking in the kernel.
//
// "threadsafe" death-test style is required: the default fork-based child
// would inherit uffd_state_ == available with no poller thread (fork keeps
// only the calling thread), so the bring-up must happen inside the death
// statement in a re-executed child.
TEST(FaultHandlerDeathTest, FaultOnUffdPollerThreadDies) {
#ifdef MILLIPAGE_TSAN
  GTEST_SKIP() << "nested-SIGSEGV death message is unobservable under tsan";
#endif
  if (!FaultHandler::Instance().UffdSupported()) {
    GTEST_SKIP() << "kernel lacks userfaultfd minor+WP shmem support";
  }
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        FaultHandler& fh = FaultHandler::Instance();
        ASSERT_TRUE(fh.Install(FaultBackend::kUserfaultfd).ok());
        auto obj = MemoryObject::Create(PageSize());
        ASSERT_TRUE(obj.ok());
        auto priv = Mapping::MapObject(*obj, 0, PageSize(), Protection::kReadWrite);
        auto app = Mapping::MapObject(*obj, 0, PageSize(), Protection::kReadWrite);
        ASSERT_TRUE(priv.ok() && app.ok());
        std::memset(priv->base(), 0, PageSize());
        ASSERT_TRUE(fh.UffdRegisterRange(app->base(), PageSize()).ok());
        ASSERT_TRUE(fh.UffdZapRange(app->base(), PageSize()).ok());
        fh.Register(
            +[](void*, void*, bool) {
              // Wild deref at poller depth (volatile so the compiler can't
              // prove the address constant and warn it out).
              volatile uintptr_t wild = 1;
              (void)*reinterpret_cast<volatile int*>(wild);
              return true;
            },
            nullptr);
        (void)*reinterpret_cast<volatile int*>(app->base());
      },
      "nested fault on uffd poller");
}

TEST(FaultHandlerTest, RegisterUnregisterSlots) {
  ASSERT_TRUE(FaultHandler::Instance().Install().ok());
  int slots[FaultHandler::kMaxSlots];
  int registered = 0;
  for (int i = 0; i < FaultHandler::kMaxSlots; ++i) {
    slots[i] = FaultHandler::Instance().Register(&UpgradeOnFault, nullptr);
    if (slots[i] >= 0) {
      registered++;
    }
  }
  EXPECT_GT(registered, 0);
  for (int i = 0; i < FaultHandler::kMaxSlots; ++i) {
    if (slots[i] >= 0) {
      FaultHandler::Instance().Unregister(slots[i]);
    }
  }
  // After unregistering, slots are reusable.
  const int again = FaultHandler::Instance().Register(&UpgradeOnFault, nullptr);
  EXPECT_GE(again, 0);
  FaultHandler::Instance().Unregister(again);
}

}  // namespace
}  // namespace millipage
