#include "src/os/mapping.h"

#include <sys/mman.h>

#include <utility>

#include "src/common/failpoint.h"
#include "src/os/page.h"

namespace millipage {

Result<Mapping> Mapping::MapObject(const MemoryObject& object, size_t offset, size_t length,
                                   Protection prot) {
  if (!object.valid()) {
    return Status::Invalid("MapObject: invalid memory object");
  }
  if (!IsPageAligned(offset) || length == 0) {
    return Status::Invalid("MapObject: offset must be page aligned, length > 0");
  }
  const size_t rounded = RoundUpToPage(length);
  if (offset + rounded > object.size()) {
    return Status::OutOfRange("MapObject: range exceeds object size");
  }
  void* p = ::mmap(nullptr, rounded, ProtFlags(prot), MAP_SHARED, object.fd(),
                   static_cast<off_t>(offset));
  if (p == MAP_FAILED) {
    return Status::Errno("mmap(MAP_SHARED)");
  }
  return Mapping(static_cast<std::byte*>(p), rounded);
}

Result<Mapping> Mapping::MapAnonymous(size_t length, Protection prot) {
  if (length == 0) {
    return Status::Invalid("MapAnonymous: length must be > 0");
  }
  const size_t rounded = RoundUpToPage(length);
  void* p = ::mmap(nullptr, rounded, ProtFlags(prot), MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) {
    return Status::Errno("mmap(MAP_ANONYMOUS)");
  }
  return Mapping(static_cast<std::byte*>(p), rounded);
}

Mapping::~Mapping() {
  if (base_ != nullptr) {
    ::munmap(base_, length_);
  }
}

Mapping::Mapping(Mapping&& other) noexcept
    : base_(std::exchange(other.base_, nullptr)), length_(std::exchange(other.length_, 0)) {}

Mapping& Mapping::operator=(Mapping&& other) noexcept {
  if (this != &other) {
    if (base_ != nullptr) {
      ::munmap(base_, length_);
    }
    base_ = std::exchange(other.base_, nullptr);
    length_ = std::exchange(other.length_, 0);
  }
  return *this;
}

Status Mapping::Protect(size_t offset, size_t len, Protection prot) const {
  if (!IsPageAligned(offset) || !IsPageAligned(len)) {
    return Status::Invalid("Protect: offset/len must be page aligned");
  }
  if (offset + len > length_) {
    return Status::OutOfRange("Protect: range exceeds mapping");
  }
  // Chaos hook: models mprotect failing with ENOMEM/EACCES (split-VMA
  // exhaustion) so the fault-service degradation path has a regression.
  if (FailpointRegistry::Instance().Fire("os.mapping.protect")) {
    return Status::Exhausted("mprotect: injected failure (os.mapping.protect)");
  }
  if (::mprotect(base_ + offset, len, ProtFlags(prot)) != 0) {
    return Status::Errno("mprotect");
  }
  return Status::Ok();
}

}  // namespace millipage
