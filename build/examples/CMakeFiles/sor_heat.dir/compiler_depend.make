# Empty compiler generated dependencies file for sor_heat.
# This may be replaced when dependencies are built.
