// Large-cluster deterministic sim sweeps: 128, 256, and 1024 hosts — far
// past the old 64-host mask ceiling. Workloads are deliberately tiny (one
// round, one or two ops per host): the point is not throughput but that the
// protocol, the HostSet-based directory, the widened (v1) wire codec, and
// the membership machinery hold their invariants when host ids need more
// than 6 bits — and that schedules stay byte-for-byte reproducible.
//
// Suites are split by size so CI can filter: SimLarge128.* / SimLarge256.* /
// SimLargeKill256.* run in the large-cluster matrix leg; SimLarge1024.* is
// the full-ceiling suite (slower, excluded there but in the default ctest
// run of this binary).
//
// Replay: MILLIPAGE_SIM_SEED=<seed> ./sim_large_test --gtest_filter='*ReplayEnvSeed*'

#include <cstdlib>

#include "gtest/gtest.h"
#include "src/check/history_checker.h"
#include "src/check/sim_harness.h"

namespace millipage {
namespace {

SimWorkload LargeWorkload(uint16_t hosts, ManagerPolicy policy) {
  SimWorkload w;
  w.hosts = hosts;
  // A handful of contended cells: with ops ≪ hosts per cell, each cell still
  // collects a large read copyset, so invalidation rounds genuinely fan out
  // past 64 hosts.
  w.cells = 8;
  w.rounds = 1;
  w.ops_per_round = hosts >= 1024 ? 1 : 2;
  w.use_locks = hosts < 1024;  // keep the 1024-host run lean
  w.policy = policy;
  return w;
}

void RunAndCheck(uint64_t seed, const SimWorkload& w) {
  SimResult r = RunSim(seed, w);
  ASSERT_TRUE(r.status.ok()) << "seed " << seed << ": " << r.status.ToString();
  ASSERT_GT(r.history.size(), 0u) << "seed " << seed << " recorded no events";
  const CheckReport report =
      CheckHistory(r.history, w.hosts, w.policy == ManagerPolicy::kSharded);
  ASSERT_TRUE(report.ok) << "seed " << seed << ":\n"
                         << report.FormatViolation(r.history)
                         << "\nreplay: MILLIPAGE_SIM_SEED=" << seed
                         << " ./sim_large_test --gtest_filter='*ReplayEnvSeed*'";
}

void Sweep(uint16_t hosts, ManagerPolicy policy, uint64_t first_seed, int seeds) {
  const SimWorkload w = LargeWorkload(hosts, policy);
  for (uint64_t seed = first_seed; seed < first_seed + static_cast<uint64_t>(seeds);
       ++seed) {
    RunAndCheck(seed, w);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

// Byte-identical same-seed replay at scale: the lazy pair-state fabric must
// reproduce exactly the schedule the dense fabric defined.
void CheckDeterminism(uint16_t hosts, ManagerPolicy policy, uint64_t seed) {
  const SimWorkload w = LargeWorkload(hosts, policy);
  SimResult a = RunSim(seed, w);
  SimResult b = RunSim(seed, w);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_GT(a.history.size(), 0u);
  EXPECT_EQ(a.FormattedHistory(), b.FormattedHistory())
      << hosts << " hosts, seed " << seed;
}

// ---- 128 hosts -------------------------------------------------------------

TEST(SimLarge128, TwentySeedsCentralized) {
  Sweep(128, ManagerPolicy::kCentralized, 1, 20);
}

TEST(SimLarge128, TwentySeedsSharded) { Sweep(128, ManagerPolicy::kSharded, 1, 20); }

TEST(SimLarge128, SameSeedSameHistory) {
  CheckDeterminism(128, ManagerPolicy::kCentralized, 7);
  CheckDeterminism(128, ManagerPolicy::kSharded, 7);
}

// ---- 256 hosts -------------------------------------------------------------

TEST(SimLarge256, TwentySeedsCentralized) {
  Sweep(256, ManagerPolicy::kCentralized, 100, 20);
}

TEST(SimLarge256, TwentySeedsSharded) {
  Sweep(256, ManagerPolicy::kSharded, 100, 20);
}

TEST(SimLarge256, SameSeedSameHistory) {
  CheckDeterminism(256, ManagerPolicy::kCentralized, 103);
  CheckDeterminism(256, ManagerPolicy::kSharded, 103);
}

// ---- 256 hosts, one killed mid-run ----------------------------------------

SimWorkload Kill256Workload() {
  SimWorkload w = LargeWorkload(256, ManagerPolicy::kSharded);
  w.kill_one_host = true;
  return w;
}

void RunKillAndCheck(uint64_t seed) {
  const SimWorkload w = Kill256Workload();
  SimResult r = RunSim(seed, w);
  ASSERT_TRUE(r.status.ok()) << "seed " << seed << ": " << r.status.ToString();
  ASSERT_TRUE(r.killed) << "seed " << seed << ": the kill never fired";
  ASSERT_NE(r.killed_host, 0) << "seed " << seed << " killed the allocator host";
  const CheckReport report = CheckHistory(r.history, w.hosts, /*sharded=*/true);
  ASSERT_TRUE(report.ok) << "seed " << seed << " (killed host " << r.killed_host
                         << "):\n"
                         << report.FormatViolation(r.history);
}

TEST(SimLargeKill256, TwentySeedsSurvivorsHoldInvariants) {
  for (uint64_t seed = 500; seed < 520; ++seed) {
    RunKillAndCheck(seed);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(SimLargeKill256, SameSeedSameHistory) {
  const SimWorkload w = Kill256Workload();
  SimResult a = RunSim(501, w);
  SimResult b = RunSim(501, w);
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_TRUE(a.killed);
  EXPECT_EQ(a.killed_host, b.killed_host);
  EXPECT_EQ(a.FormattedHistory(), b.FormattedHistory());
}

// ---- 1024 hosts (the kMaxHosts ceiling) ------------------------------------

TEST(SimLarge1024, TwentySeedsCentralized) {
  Sweep(1024, ManagerPolicy::kCentralized, 1, 20);
}

TEST(SimLarge1024, TwentySeedsSharded) {
  Sweep(1024, ManagerPolicy::kSharded, 1, 20);
}

TEST(SimLarge1024, SameSeedSameHistory) {
  CheckDeterminism(1024, ManagerPolicy::kSharded, 3);
}

// ---- Replay ---------------------------------------------------------------

// MILLIPAGE_SIM_SEED=<seed> [MILLIPAGE_SIM_HOSTS=128|256|1024] replays one
// large-cluster schedule (sharded policy) for debugging a sweep failure.
TEST(SimLargeReplay, ReplayEnvSeed) {
  const char* env = std::getenv("MILLIPAGE_SIM_SEED");
  if (env == nullptr) {
    GTEST_SKIP() << "set MILLIPAGE_SIM_SEED=<seed> to replay one schedule";
  }
  const char* hosts_env = std::getenv("MILLIPAGE_SIM_HOSTS");
  const uint16_t hosts =
      hosts_env != nullptr ? static_cast<uint16_t>(std::strtoul(hosts_env, nullptr, 0)) : 128;
  RunAndCheck(std::strtoull(env, nullptr, 0), LargeWorkload(hosts, ManagerPolicy::kSharded));
}

}  // namespace
}  // namespace millipage
