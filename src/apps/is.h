// IS — integer sort (NAS parallel benchmarks, bucket-counting kernel). The
// shared state is the global bucket-count array (paper: 2^9 = 512 buckets,
// 2 KB), split into one 256-byte region per host, each region a separate
// minipage (paper Table 2: 8 views, 256-byte granularity). Hosts rotate
// over the regions adding their private histograms — with fine-grain
// minipages the writers never collide; in page-based mode the single page
// ping-pongs.

#ifndef SRC_APPS_IS_H_
#define SRC_APPS_IS_H_

#include <vector>

#include "src/apps/app.h"
#include "src/dsm/global_ptr.h"

namespace millipage {

struct IsConfig {
  uint32_t num_keys = 1 << 16;   // paper: 2^23
  uint32_t key_log2 = 9;         // 2^9 bucket values, as in the paper
  uint32_t iterations = 10;      // ranking repetitions
  uint64_t seed = 42;
};

class IsApp : public App {
 public:
  explicit IsApp(const IsConfig& config) : config_(config) {}

  std::string name() const override { return "IS"; }
  std::string input_desc() const override;
  std::string granularity_desc() const override;
  // One key counted/ranked (load + increment + store) on a 300 MHz P-II.
  double ns_per_work_unit() const override { return 30.0; }

  uint32_t warmup_epochs() const override { return 1; }

  void Setup(DsmNode& manager) override;
  void Worker(DsmNode& node, HostId host) override;
  Status Validate(DsmNode& manager) override;

 private:
  uint32_t num_buckets() const { return 1u << config_.key_log2; }

  IsConfig config_;
  std::vector<GlobalPtr<uint32_t>> regions_;  // per-host slice of the counts
  uint32_t buckets_per_region_ = 0;
  uint16_t num_regions_ = 0;
};

}  // namespace millipage

#endif  // SRC_APPS_IS_H_
