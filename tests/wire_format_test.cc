// Wire-format regression tests. The header is a fixed 32-byte struct whose
// `from` field multiplexes host id and membership-epoch tag; how the 16 bits
// split is versioned by cluster size (WireCodec). These tests pin:
//
//   * golden bytes — a ≤64-host cluster's datagrams are bit-identical to the
//     pre-HostSet encoding (v0: 6-bit host, 10-bit epoch), so mixed-version
//     small clusters stay wire-compatible;
//   * v1 round-trips — >64-host clusters carry 10-bit host ids and 6-bit
//     epoch tags without aliasing, across the whole id range;
//   * epoch-tag staleness under modular wraparound for both codecs.

#include <gtest/gtest.h>

#include <cstring>

#include "src/net/message.h"

namespace millipage {
namespace {

// Serializes a header exactly as every transport does: memcpy of the POD.
void Serialize(const MsgHeader& h, uint8_t out[32]) { std::memcpy(out, &h, sizeof(h)); }

TEST(WireFormat, HeaderIs32Bytes) {
  static_assert(sizeof(MsgHeader) == 32);
  EXPECT_EQ(sizeof(MsgHeader), 32u);
}

// Hand-computed golden bytes for a fully-populated v0 (≤64-host) datagram.
// If this test breaks, the change is not wire-compatible with deployed
// small clusters — stop and version the frame instead.
TEST(WireFormat, GoldenBytesSmallClusterEncoding) {
  const WireCodec codec = WireCodec::For(3);
  struct Case {
    HostId host;
    uint32_t epoch;
    uint16_t expect_from;  // (host & 0x3f) | ((epoch & 0x3ff) << 6)
  };
  const Case cases[] = {
      {3, 0, 0x0003},
      {3, 1, 0x0043},
      {3, 5, 0x0143},
      {63, 1023, 0xffff},
      {0, 1023, 0xffc0},
  };
  for (const Case& c : cases) {
    MsgHeader h;
    h.set_type(MsgType::kWriteRequest);  // = 2
    h.flags = kFlagForwarded;            // = 0x08
    h.from = codec.Pack(c.host, c.epoch);
    h.seq = 0x11223344u;
    h.addr = (GlobalAddr{7, 0x0000000000abcdefULL}).Pack();
    h.minipage = 0x0a0b0c0du;
    h.pgsize = 0x00001000u;
    h.privbase = 0x0102030405060708ULL;

    uint8_t got[32];
    Serialize(h, got);
    const uint8_t expect[32] = {
        // type, flags
        0x02, 0x08,
        // from, little-endian
        static_cast<uint8_t>(c.expect_from & 0xff),
        static_cast<uint8_t>(c.expect_from >> 8),
        // seq
        0x44, 0x33, 0x22, 0x11,
        // addr = view 7 << 48 | offset 0xabcdef
        0xef, 0xcd, 0xab, 0x00, 0x00, 0x00, 0x07, 0x00,
        // minipage
        0x0d, 0x0c, 0x0b, 0x0a,
        // pgsize
        0x00, 0x10, 0x00, 0x00,
        // privbase
        0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01,
    };
    EXPECT_EQ(std::memcmp(got, expect, 32), 0)
        << "host " << c.host << " epoch " << c.epoch
        << ": v0 wire bytes changed (small-cluster compatibility broken)";
  }
}

// The v0 codec and the legacy free functions are the same encoding.
TEST(WireFormat, LegacyHelpersMatchV0Codec) {
  const WireCodec codec = WireCodec::For(64);
  for (uint32_t host = 0; host < 64; host += 7) {
    for (uint32_t epoch : {0u, 1u, 63u, 64u, 1023u, 5000u}) {
      const uint16_t packed = PackFromEpoch(static_cast<HostId>(host), epoch);
      EXPECT_EQ(packed, codec.Pack(static_cast<HostId>(host), epoch));
      EXPECT_EQ(FromHost(packed), host);
      EXPECT_EQ(FromEpochTag(packed), epoch & kEpochTagMask);
      EXPECT_EQ(codec.Host(packed), host);
      EXPECT_EQ(codec.EpochTag(packed), epoch & codec.epoch_mask);
    }
  }
}

// v1 (>64 hosts): 10-bit host ids round-trip with their 6-bit epoch tag for
// every host id a kMaxHosts cluster can produce.
TEST(WireFormat, WideClusterRoundTrip) {
  for (const uint32_t hosts : {65u, 100u, 1023u, 1024u}) {
    const WireCodec codec = WireCodec::For(hosts);
    for (uint32_t host = 0; host < hosts; host += 13) {
      for (uint32_t epoch : {0u, 1u, 5u, 63u, 64u, 200u}) {
        const uint16_t packed = codec.Pack(static_cast<HostId>(host), epoch);
        EXPECT_EQ(codec.Host(packed), host) << "hosts " << hosts;
        EXPECT_EQ(codec.EpochTag(packed), epoch & codec.epoch_mask);
      }
    }
    // Host 1023 with a max tag uses every bit of the field.
    EXPECT_EQ(codec.Pack(1023, 63), 0xffffu);
  }
}

// Both cluster sizes agree on which codec they use, at the boundary.
TEST(WireFormat, CodecVersionBoundary) {
  EXPECT_EQ(WireCodec::For(64).host_mask, 0x3f);
  EXPECT_EQ(WireCodec::For(65).host_mask, 0x3ff);
  EXPECT_EQ(WireCodec::For(1).host_mask, 0x3f);
  EXPECT_EQ(WireCodec::For(1024).host_mask, 0x3ff);
}

// Staleness is a circular comparison: tags strictly behind `now` (within
// half the modulus) are stale; equal or ahead-of-now tags are not.
TEST(WireFormat, TagStaleCircularity) {
  for (const uint32_t hosts : {2u, 100u}) {
    const WireCodec c = WireCodec::For(hosts);
    const uint32_t mod = c.epoch_mask + 1;
    EXPECT_FALSE(c.TagStale(5 % mod, 5 % mod));  // equal: fresh
    EXPECT_TRUE(c.TagStale(4 % mod, 5 % mod));   // behind: stale
    EXPECT_FALSE(c.TagStale(6 % mod, 5 % mod));  // ahead (peer bumped first)
    // Wraparound: now = 1, tag = mod - 1 is two behind, stale.
    EXPECT_TRUE(c.TagStale(mod - 1, 1));
    // A tag half the modulus away is treated as ahead, not stale.
    EXPECT_FALSE(c.TagStale((5 + mod / 2) % mod, 5));
  }
}

// The packed-address format has a 16-bit view field: a view id of 65535
// round-trips, 65536 would silently alias view 0 and must die at the pack
// site instead.
TEST(WireFormat, GlobalAddrViewBoundary) {
  const GlobalAddr max{65535, 0x123456789abcULL};
  EXPECT_EQ(GlobalAddr::Unpack(max.Pack()), max);
  EXPECT_DEATH((GlobalAddr{65536, 0}).Pack(), "view id 65536 overflows");
  EXPECT_DEATH((GlobalAddr{0, 1ULL << 48}).Pack(), "offset overflows");
}

// Batched frames: fixed 24-byte records, shared-bit flag discipline, and a
// lossless header round-trip through From/ApplyTo.
TEST(WireFormat, BatchRecordLayoutAndRoundTrip) {
  static_assert(sizeof(BatchRecord) == 24);
  EXPECT_EQ(kMaxBatchRecords * sizeof(BatchRecord), 1536u);  // one datagram

  MsgHeader h;
  h.set_type(MsgType::kInvalidateRequest);
  h.flags = kFlagForwarded;
  h.from = 7;
  h.seq = 42;
  h.addr = (GlobalAddr{3, 0x1000}).Pack();
  h.minipage = 17;
  h.pgsize = 256;
  h.privbase = 0x2000;

  const BatchRecord r = BatchRecord::From(h);
  MsgHeader out;
  out.set_type(MsgType::kInvalidateRequest);
  out.flags = kFlagForwarded;
  out.from = 7;
  out.seq = 42;
  r.ApplyTo(&out);
  EXPECT_EQ(0, std::memcmp(&h, &out, sizeof(MsgHeader)));

  // kFlagBatched shares 0x40 with the LRC-only kFlagWriteFetch; the batching
  // layer must stay off LRC types, so the constant itself must not move.
  EXPECT_EQ(kFlagBatched, kFlagWriteFetch);
}

}  // namespace
}  // namespace millipage
