
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiview/allocator.cc" "src/multiview/CMakeFiles/mp_multiview.dir/allocator.cc.o" "gcc" "src/multiview/CMakeFiles/mp_multiview.dir/allocator.cc.o.d"
  "/root/repo/src/multiview/minipage.cc" "src/multiview/CMakeFiles/mp_multiview.dir/minipage.cc.o" "gcc" "src/multiview/CMakeFiles/mp_multiview.dir/minipage.cc.o.d"
  "/root/repo/src/multiview/view_set.cc" "src/multiview/CMakeFiles/mp_multiview.dir/view_set.cc.o" "gcc" "src/multiview/CMakeFiles/mp_multiview.dir/view_set.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mp_os.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
