// Ablation: fine-grain minipages vs the Ivy-style full-page baseline — the
// paper's central claim isolated. Two hosts alternately update disjoint
// variables that share one physical page; with minipages each host keeps
// its variable's minipage forever, with page granularity the page bounces
// every round (false sharing).

#include <cstdio>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/model/cost_model.h"

namespace millipage {
namespace {

struct GranResult {
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t data_bytes = 0;
  double modeled_us = 0;
};

GranResult Run(bool page_based, int rounds, int vars_per_host) {
  DsmConfig cfg;
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  cfg.num_views = 16;
  cfg.page_based = page_based;
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok());
  std::vector<GlobalPtr<int>> vars;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < 2 * vars_per_host; ++i) {
      vars.push_back(SharedAlloc<int>(1));
      *vars.back() = 0;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < rounds; ++r) {
      for (int i = 0; i < vars_per_host; ++i) {
        // Interleaved ownership: host 0 takes even vars, host 1 odd, so
        // neighbors on the same page always belong to the other host.
        GlobalPtr<int>& v = vars[static_cast<size_t>(2 * i + host)];
        *v = *v + 1;
        node.AddWorkUnits(1);
      }
      node.Barrier();
    }
  });
  GranResult out;
  AppTimingInput timing;
  timing.ns_per_work_unit = 50.0;
  timing.num_hosts = 2;
  for (uint16_t h = 0; h < 2; ++h) {
    const HostCounters c = (*cluster)->node(h).counters();
    out.read_faults += c.read_faults;
    out.write_faults += c.write_faults;
    out.data_bytes += c.read_fault_bytes + c.write_fault_bytes;
    for (const EpochRecord& r : (*cluster)->node(h).epochs()) {
      timing.epochs.push_back(r);
    }
  }
  out.modeled_us = ModelRun(CostModel(), timing).total_us;
  return out;
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_ablation_granularity", env);
  PrintHeader("Ablation: minipage granularity vs full-page sharing (false sharing)");
  std::printf("  %-12s %10s %10s %12s %14s\n", "granularity", "rd faults", "wr faults",
              "data bytes", "modeled us");
  const int kRounds = env.Scaled(50, 10);
  constexpr int kVars = 4;
  const GranResult fine = Run(false, kRounds, kVars);
  const GranResult coarse = Run(true, kRounds, kVars);
  for (const auto& [label, g] :
       {std::make_pair("minipage", &fine), std::make_pair("full_page", &coarse)}) {
    BenchResult row;
    row.name = label;
    row.params = "rounds=" + std::to_string(kRounds) + " vars_per_host=" + std::to_string(kVars);
    row.iterations = static_cast<uint64_t>(kRounds);
    row.ns_per_op = g->modeled_us * 1000.0 / kRounds;
    row.values["read_faults"] = static_cast<double>(g->read_faults);
    row.values["write_faults"] = static_cast<double>(g->write_faults);
    row.values["data_bytes"] = static_cast<double>(g->data_bytes);
    reporter.Add(std::move(row));
  }
  std::printf("  %-12s %10lu %10lu %12lu %14.0f\n", "minipage",
              static_cast<unsigned long>(fine.read_faults),
              static_cast<unsigned long>(fine.write_faults),
              static_cast<unsigned long>(fine.data_bytes), fine.modeled_us);
  std::printf("  %-12s %10lu %10lu %12lu %14.0f\n", "full page",
              static_cast<unsigned long>(coarse.read_faults),
              static_cast<unsigned long>(coarse.write_faults),
              static_cast<unsigned long>(coarse.data_bytes), coarse.modeled_us);
  std::printf("  page-based / minipage fault ratio: %.1fx\n",
              static_cast<double>(coarse.read_faults + coarse.write_faults) /
                  static_cast<double>(fine.read_faults + fine.write_faults));
  PrintNote("expected: minipage faults stay O(vars) regardless of rounds; full-page");
  PrintNote("faults grow O(rounds * vars) — the slowdown class the paper eliminates.");
  return reporter.Finish();
}
