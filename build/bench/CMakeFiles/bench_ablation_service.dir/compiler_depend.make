# Empty compiler generated dependencies file for bench_ablation_service.
# This may be replaced when dependencies are built.
