// Statistics primitives: per-host counter blocks, latency histograms, and
// per-epoch snapshots. Epochs are closed at barriers; the model library
// prices epoch deltas to produce the Figure 6 / Figure 7 series.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "src/common/metrics.h"

namespace millipage {

// Event counters for a single DSM host. Fields mirror the quantities the
// paper reports: fault counts by kind, message/byte volume, synchronization
// activity, and application work units (the deterministic compute proxy).
// Fields are relaxed atomics: application threads, the server thread, and
// introspection readers all touch a live block concurrently, and a copy of a
// live block (e.g. an epoch snapshot) is a tear-free-per-field read.
struct HostCounters {
  RelaxedCounter read_faults;
  RelaxedCounter write_faults;
  RelaxedCounter read_fault_bytes;   // minipage bytes fetched by read faults
  RelaxedCounter write_fault_bytes;  // minipage bytes fetched by write faults
  RelaxedCounter invalidations_received;
  RelaxedCounter messages_sent;
  RelaxedCounter bytes_sent;
  RelaxedCounter barriers;
  RelaxedCounter lock_acquires;
  RelaxedCounter prefetches;
  RelaxedCounter prefetch_bytes;
  RelaxedCounter work_units;  // app-reported deterministic compute units
  // Requests that queued behind an in-service minipage (manager host only).
  RelaxedCounter competing_requests;
  // Coherence batching: multi-record frames sent and the records they
  // carried. records/frames is the realized coalescing factor.
  RelaxedCounter batch_frames_sent;
  RelaxedCounter batch_records_sent;
  // Datagrams carrying coalescer-routed coherence traffic (invalidate
  // requests and replies, manager-side completion ACKs): multi-record
  // frames, single-record sends, and — with batching off — the one-datagram-
  // per-record protocol. coalesced_records / coalesced_msgs_sent compares
  // the same logical work across batched and unbatched runs.
  RelaxedCounter coalesced_msgs_sent;
  RelaxedCounter coalesced_records;
  // Duplicate or stray invalidate replies dropped idempotently (retransmit
  // tolerance — these used to be fatal).
  RelaxedCounter dup_invalidate_replies;

  HostCounters& operator+=(const HostCounters& o) {
    read_faults += o.read_faults;
    write_faults += o.write_faults;
    read_fault_bytes += o.read_fault_bytes;
    write_fault_bytes += o.write_fault_bytes;
    invalidations_received += o.invalidations_received;
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    barriers += o.barriers;
    lock_acquires += o.lock_acquires;
    prefetches += o.prefetches;
    prefetch_bytes += o.prefetch_bytes;
    work_units += o.work_units;
    competing_requests += o.competing_requests;
    batch_frames_sent += o.batch_frames_sent;
    batch_records_sent += o.batch_records_sent;
    coalesced_msgs_sent += o.coalesced_msgs_sent;
    coalesced_records += o.coalesced_records;
    dup_invalidate_replies += o.dup_invalidate_replies;
    return *this;
  }

  HostCounters operator-(const HostCounters& o) const {
    HostCounters r = *this;
    r.read_faults -= o.read_faults;
    r.write_faults -= o.write_faults;
    r.read_fault_bytes -= o.read_fault_bytes;
    r.write_fault_bytes -= o.write_fault_bytes;
    r.invalidations_received -= o.invalidations_received;
    r.messages_sent -= o.messages_sent;
    r.bytes_sent -= o.bytes_sent;
    r.barriers -= o.barriers;
    r.lock_acquires -= o.lock_acquires;
    r.prefetches -= o.prefetches;
    r.prefetch_bytes -= o.prefetch_bytes;
    r.work_units -= o.work_units;
    r.competing_requests -= o.competing_requests;
    r.batch_frames_sent -= o.batch_frames_sent;
    r.batch_records_sent -= o.batch_records_sent;
    r.coalesced_msgs_sent -= o.coalesced_msgs_sent;
    r.coalesced_records -= o.coalesced_records;
    r.dup_invalidate_replies -= o.dup_invalidate_replies;
    return r;
  }
};

// Counters kept per manager shard (one shard on host 0 when centralized,
// one per host when the directory is sharded). Written by the shard's server
// thread, read from any thread (liveness reports, cluster totals): relaxed
// atomics. Competing requests live in HostCounters only — the shard used to
// keep a duplicate count.
struct ManagerCounters {
  RelaxedCounter requests_served;
  RelaxedCounter invalidation_rounds;
  RelaxedCounter mpt_lookups;
  // Translated requests handed off to another host's shard (only the MPT
  // host routes, so this is nonzero only on host 0, only when sharded).
  RelaxedCounter remote_routed;

  ManagerCounters& operator+=(const ManagerCounters& o) {
    requests_served += o.requests_served;
    invalidation_rounds += o.invalidation_rounds;
    mpt_lookups += o.mpt_lookups;
    remote_routed += o.remote_routed;
    return *this;
  }
};

// One closed epoch (barrier-to-barrier interval) for one host.
struct EpochRecord {
  uint32_t epoch = 0;
  uint32_t host = 0;
  HostCounters delta;
};

// Latency histograms live in src/common/metrics.h (Histogram /
// HistogramSnapshot); the fault paths record into the node's
// MetricsRegistry.

// Simple descriptive statistics over a sample vector.
struct SampleStats {
  double mean = 0;
  double median = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;

  static SampleStats FromSamples(std::vector<double> samples);
};

}  // namespace millipage

#endif  // SRC_COMMON_STATS_H_
