file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_composed_views.dir/bench_ext_composed_views.cc.o"
  "CMakeFiles/bench_ext_composed_views.dir/bench_ext_composed_views.cc.o.d"
  "bench_ext_composed_views"
  "bench_ext_composed_views.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_composed_views.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
