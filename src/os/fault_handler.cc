#include "src/os/fault_handler.h"

#include <signal.h>
#include <string.h>
#include <ucontext.h>

#include <mutex>

namespace millipage {

namespace {

// Decodes whether the faulting access was a write. On x86-64 the page-fault
// error code is in REG_ERR; bit 1 is the W bit.
bool FaultWasWrite(void* ucontext_raw) {
#if defined(__x86_64__)
  const auto* uc = static_cast<ucontext_t*>(ucontext_raw);
  return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
  (void)ucontext_raw;
  // Conservative fallback: treat every fault as a write (requests an
  // exclusive copy; correct but may over-invalidate).
  return true;
#endif
}

}  // namespace

FaultHandler& FaultHandler::Instance() {
  static FaultHandler* instance = new FaultHandler();
  return *instance;
}

Status FaultHandler::Install() {
  static std::once_flag once;
  Status result = Status::Ok();
  std::call_once(once, [&result, this] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    dispatched_metric_ = reg.GetCounter("fault.dispatched");
    decode_ns_ = reg.GetHistogram("fault.decode_ns");
    service_ns_ = reg.GetHistogram("fault.service_ns");
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(&SignalEntry);
    // SA_NODEFER: a fault raised while the handler runs is delivered to the
    // handler again (instead of the kernel force-killing the process with
    // the signal blocked), which lets the depth guard in SignalEntry report
    // nested faults before dying.
    sa.sa_flags = SA_SIGINFO | SA_RESTART | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGSEGV, &sa, nullptr) != 0 || sigaction(SIGBUS, &sa, nullptr) != 0) {
      result = Status::Errno("sigaction");
      return;
    }
    installed_.store(true, std::memory_order_release);
  });
  if (!result.ok()) {
    return result;
  }
  if (!installed_.load(std::memory_order_acquire)) {
    return Status::Internal("fault handler failed to install earlier");
  }
  return Status::Ok();
}

int FaultHandler::Register(FaultCallback cb, void* ctx) {
  for (int i = 0; i < kMaxSlots; ++i) {
    FaultCallback expected = nullptr;
    if (slots_[i].cb.compare_exchange_strong(expected, cb, std::memory_order_acq_rel)) {
      slots_[i].ctx.store(ctx, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void FaultHandler::Unregister(int slot) {
  if (slot >= 0 && slot < kMaxSlots) {
    slots_[slot].cb.store(nullptr, std::memory_order_release);
    slots_[slot].ctx.store(nullptr, std::memory_order_release);
  }
}

namespace {

// Recursion depth of SignalEntry on this thread. Fault service legitimately
// runs at depth 1 (the whole protocol executes inside the SIGSEGV handler);
// a fault raised at depth >= 1 means the handler itself faulted and must not
// be dispatched again.
thread_local int tls_fault_depth = 0;

// Async-signal-safe report before the process dies. `msg` names the class
// of failure ("unhandled fault" / "nested fault").
void ReportFatalFault(const char* msg, void* addr, bool is_write) {
  char buf[96];
  char* p = buf;
  const char* prefix = "[millipage] ";
  while (*prefix != '\0') {
    *p++ = *prefix++;
  }
  while (*msg != '\0') {
    *p++ = *msg++;
  }
  *p++ = is_write ? 'W' : 'R';
  const char* at = ") at 0x";
  while (*at != '\0') {
    *p++ = *at++;
  }
  const auto a = reinterpret_cast<uintptr_t>(addr);
  for (int shift = 60; shift >= 0; shift -= 4) {
    *p++ = "0123456789abcdef"[(a >> shift) & 0xf];
  }
  *p++ = '\n';
  (void)!write(2, buf, static_cast<size_t>(p - buf));
}

}  // namespace

void FaultHandler::SignalEntry(int signo, void* info_raw, void* ucontext) {
  FaultHandler& fh = Instance();
  // clock_gettime is on the vDSO fast path and the histogram updates are
  // relaxed atomics, so timing at signal depth is safe; when metrics are off
  // the handler pays one load and a branch.
  const bool timed = MetricsEnabled() && fh.service_ns_ != nullptr;
  const uint64_t t0 = timed ? MonotonicNowNs() : 0;
  auto* info = static_cast<siginfo_t*>(info_raw);
  void* addr = info->si_addr;
  const bool is_write = FaultWasWrite(ucontext);
  if (timed) {
    fh.decode_ns_->RecordAlways(MonotonicNowNs() - t0);
  }
  if (tls_fault_depth >= 1) {
    // The handler (or protocol code it called) faulted while already
    // servicing a fault on this thread. Dispatching again could recurse
    // forever; reject it and die with a diagnostic instead.
    ReportFatalFault("nested fault in handler (", addr, is_write);
    signal(signo, SIG_DFL);
    raise(signo);
    return;
  }
  tls_fault_depth++;
  const bool handled = fh.Dispatch(addr, is_write);
  tls_fault_depth--;
  if (handled) {
    if (timed) {
      fh.service_ns_->RecordAlways(MonotonicNowNs() - t0);
    }
    return;  // protection was upgraded; the faulting instruction retries
  }
  // Not ours: restore the default disposition and re-raise so the process
  // dies with the usual SIGSEGV semantics (core dump, correct si_addr).
  ReportFatalFault("unhandled fault (", addr, is_write);
  signal(signo, SIG_DFL);
  raise(signo);
}

bool FaultHandler::Dispatch(void* fault_addr, bool is_write) {
  faults_dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (dispatched_metric_ != nullptr) {
    dispatched_metric_->Inc();
  }
  for (Slot& slot : slots_) {
    FaultCallback cb = slot.cb.load(std::memory_order_acquire);
    if (cb == nullptr) {
      continue;
    }
    void* ctx = slot.ctx.load(std::memory_order_acquire);
    if (cb(ctx, fault_addr, is_write)) {
      return true;
    }
  }
  return false;
}

}  // namespace millipage
