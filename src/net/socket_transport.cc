#include "src/net/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/time_util.h"

namespace millipage {

namespace {

constexpr int kSocketBufBytes = 1 << 20;

// Uniform kernel-entry counter shared with the uring backend so
// bench_transport can compare syscalls-per-message across backends.
Counter* SyscallCounter() {
  static Counter* c = MetricsRegistry::Global().GetCounter("net.syscalls");
  return c;
}

Status SetBufferSizes(int fd) {
  const int sz = kSocketBufBytes;
  if (setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz)) != 0) {
    return Status::Errno("setsockopt(SO_SNDBUF/SO_RCVBUF)");
  }
  return Status::Ok();
}

// Receives exactly one datagram of `len` bytes into `buf`. MSG_TRUNC makes
// recv report the datagram's *real* size even when it exceeds `len` —
// without it the kernel silently truncates oversized SEQPACKET datagrams to
// the buffer size, recv returns `len`, and a corrupt/mismatched sender goes
// undetected (the excess bytes simply vanish).
Status RecvDatagram(int fd, void* buf, size_t len) {
  for (;;) {
    SyscallCounter()->Inc();
    const ssize_t n = ::recv(fd, buf, len, MSG_TRUNC);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == ECONNRESET) {
        // A reset mid-stream is the same liveness event as EOF: the peer is
        // gone. Surface it on the same path so the connection is retired.
        return Status::Unavailable("recv: peer host reset the connection");
      }
      return Status::Errno("recv");
    }
    if (n == 0) {
      // SEQPACKET EOF: the peer process died or closed its end. Surface it
      // so surviving hosts fail fast instead of hanging at the next barrier.
      return Status::Unavailable("peer host closed its connection");
    }
    if (static_cast<size_t>(n) > len) {
      return Status::Internal("recv: oversized datagram truncated (" + std::to_string(n) +
                              " vs expected " + std::to_string(len) + ")");
    }
    if (static_cast<size_t>(n) != len) {
      return Status::Internal("recv: short datagram (" + std::to_string(n) +
                              " vs expected " + std::to_string(len) + ")");
    }
    return Status::Ok();
  }
}

// MSG_NOSIGNAL: a send to a dead peer must return EPIPE, not kill the whole
// process with SIGPIPE — the caller turns it into a peer-down event.
Status SendDatagram(int fd, const void* buf, size_t len) {
  for (;;) {
    SyscallCounter()->Inc();
    const ssize_t n = ::send(fd, buf, len, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("send: peer host closed its connection");
      }
      return Status::Errno("send");
    }
    if (static_cast<size_t>(n) != len) {
      return Status::Internal("send: partial datagram");
    }
    return Status::Ok();
  }
}

}  // namespace

Result<SocketMesh> SocketMesh::Create(uint16_t num_hosts) {
  SocketMesh mesh;
  mesh.fds.assign(num_hosts, std::vector<int>(num_hosts, -1));
  for (uint16_t i = 0; i < num_hosts; ++i) {
    for (uint16_t j = static_cast<uint16_t>(i + 1); j < num_hosts; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) != 0) {
        Status st = Status::Errno("socketpair");
        mesh.CloseAll();
        return st;
      }
      Status st = SetBufferSizes(sv[0]);
      if (st.ok()) {
        st = SetBufferSizes(sv[1]);
      }
      if (!st.ok()) {
        ::close(sv[0]);
        ::close(sv[1]);
        mesh.CloseAll();
        return st;
      }
      mesh.fds[i][j] = sv[0];
      mesh.fds[j][i] = sv[1];
    }
  }
  return mesh;
}

std::vector<int> SocketMesh::TakeRow(uint16_t host) {
  std::vector<int> row;
  if (host < fds.size()) {
    row = std::move(fds[host]);
    fds[host].clear();
  }
  CloseAll();
  return row;
}

void SocketMesh::CloseAll() {
  for (auto& row : fds) {
    for (int& fd : row) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
  fds.clear();
}

SocketTransport::SocketTransport(HostId me, std::vector<int> fds_by_peer)
    : me_(me), fds_(std::move(fds_by_peer)) {
  if (me_ >= fds_.size()) {
    fds_.resize(me_ + 1, -1);
  }
  // Self-loop so a host's application threads can message their own server.
  int sv[2];
  MP_CHECK(::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) == 0);
  MP_CHECK_OK(SetBufferSizes(sv[0]));
  MP_CHECK_OK(SetBufferSizes(sv[1]));
  fds_[me_] = sv[0];
  self_recv_fd_ = sv[1];
  send_mu_.reserve(fds_.size());
  for (size_t i = 0; i < fds_.size(); ++i) {
    send_mu_.push_back(std::make_unique<std::mutex>());
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  msgs_sent_ = reg.GetCounter("net.msgs_sent");
  msgs_recv_ = reg.GetCounter("net.msgs_recv");
  send_ns_ = reg.GetHistogram("net.send_ns");
  send_bytes_ = reg.GetHistogram("net.send_bytes");
  recv_bytes_ = reg.GetHistogram("net.recv_bytes");
}

int SocketTransport::ClosePeer(int fd) {
  for (size_t j = 0; j < fds_.size(); ++j) {
    if (fds_[j] == fd) {
      // Take the peer's send lock so an application thread mid-Send never
      // races the close and writes into a recycled descriptor.
      std::lock_guard<std::mutex> lock(*send_mu_[j]);
      ::close(fd);
      fds_[j] = -1;
      return static_cast<int>(j);
    }
  }
  if (self_recv_fd_ == fd) {
    ::close(fd);
    self_recv_fd_ = -1;
  }
  return -1;
}

SocketTransport::~SocketTransport() {
  for (int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (self_recv_fd_ >= 0) {
    ::close(self_recv_fd_);
  }
}

Status SocketTransport::Send(HostId to, MsgHeader h, const void* payload, size_t len) {
  if (to >= fds_.size()) {
    return Status::Invalid("SocketTransport::Send: bad destination host");
  }
  if (payload != nullptr && len > 0) {
    h.flags |= kFlagHasPayload;
    h.pgsize = static_cast<uint32_t>(len);
  }
  ScopedTimer timer(send_ns_);
  std::lock_guard<std::mutex> lock(*send_mu_[to]);
  const int fd = fds_[to];
  if (fd < 0) {
    return Status::Unavailable("SocketTransport::Send: connection to host " +
                               std::to_string(to) + " is gone");
  }
  MP_RETURN_IF_ERROR(SendDatagram(fd, &h, sizeof(h)));
  if (h.has_payload()) {
    const Status payload_st =
        FailpointRegistry::Instance().Fire("socket.send.payload_err").has_value()
            ? Status::Unavailable("injected payload send failure")
            : SendDatagram(fd, payload, len);
    if (!payload_st.ok()) {
      // The header datagram went out without its payload, so the stream is
      // desynchronized: the peer would misparse the next header as payload.
      // Shut the connection down so the peer sees EOF (a clean peer-down
      // event) instead of garbage. The poller retires the fd on our side.
      ::shutdown(fd, SHUT_RDWR);
      return payload_st;
    }
  }
  msgs_sent_->Inc();
  send_bytes_->Record(sizeof(h) + (h.has_payload() ? len : 0));
  return Status::Ok();
}

Result<bool> SocketTransport::Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                                   uint64_t timeout_us) {
  if (me != me_) {
    return Status::Invalid("SocketTransport::Poll: not this host's transport");
  }
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds_.size());
  for (size_t i = 0; i < fds_.size(); ++i) {
    // Rotate the scan order so no peer is starved.
    const size_t j = (i + rotation_) % fds_.size();
    // The self-loop is received on self_recv_fd_, not on the send end.
    const int fd = j == me_ ? self_recv_fd_ : fds_[j];
    if (fd >= 0) {
      pfds.push_back({fd, POLLIN, 0});
    }
  }
  rotation_++;
  if (pfds.empty()) {
    return false;
  }
  // Interrupted waits resume with the *remaining* budget, not the full one:
  // restarting from scratch would let a signal storm extend the wait without
  // bound (and with it every caller-side liveness deadline).
  const uint64_t deadline_ns =
      timeout_us == 0 ? 0 : MonotonicNowNs() + timeout_us * 1000;
  int ready;
  for (;;) {
    int timeout_ms = 0;
    if (timeout_us != 0) {
      const uint64_t now = MonotonicNowNs();
      const uint64_t remaining_ns = deadline_ns > now ? deadline_ns - now : 0;
      timeout_ms = static_cast<int>((remaining_ns + 999999) / 1000000);
    }
    const bool fake_eintr =
        FailpointRegistry::Instance().Fire("socket.poll.eintr").has_value();
    if (!fake_eintr) {
      SyscallCounter()->Inc();
    }
    ready = fake_eintr ? -1 : ::poll(pfds.data(), pfds.size(), timeout_ms);
    if (ready >= 0) {
      break;
    }
    if (!fake_eintr && errno != EINTR) {
      return Status::Errno("poll");
    }
    if (timeout_us != 0 && MonotonicNowNs() >= deadline_ns) {
      ready = 0;
      break;
    }
  }
  if (ready == 0) {
    return false;
  }
  for (size_t i = 0; i < pfds.size(); ++i) {
    // POLLHUP/POLLERR without POLLIN still means "read me": the recv returns
    // the EOF/reset that retires the connection.
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) {
      continue;
    }
    const int fd = pfds[i].fd;
    // EOF/reset — at a header boundary or mid-message (a sender that failed
    // between header and payload shuts the stream down) — retires the
    // connection and raises the peer-down event; the DSM layer decides
    // whether this is a normal teardown (final barrier passed) or a mid-run
    // failure.
    const auto retire_peer = [this, fd] {
      const int peer = ClosePeer(fd);
      if (peer >= 0 && peer != static_cast<int>(me_)) {
        NotifyPeerDown(static_cast<HostId>(peer));
      }
    };
    const Status header_st = RecvDatagram(fd, h, sizeof(*h));
    if (header_st.code() == StatusCode::kUnavailable) {
      retire_peer();
      return false;
    }
    MP_RETURN_IF_ERROR(header_st);
    if (h->has_payload()) {
      std::byte* dst = sink(*h);
      std::vector<std::byte> scratch;
      if (dst == nullptr) {
        scratch.resize(h->pgsize);
        dst = scratch.data();
      }
      // FIFO per connection: the payload datagram is next on this fd.
      const Status payload_st = RecvDatagram(fd, dst, h->pgsize);
      if (payload_st.code() == StatusCode::kUnavailable) {
        retire_peer();
        return false;
      }
      MP_RETURN_IF_ERROR(payload_st);
    }
    msgs_recv_->Inc();
    recv_bytes_->Record(sizeof(*h) + (h->has_payload() ? h->pgsize : 0));
    return true;
  }
  return false;
}

}  // namespace millipage
