// Millipage runtime configuration.

#ifndef SRC_DSM_CONFIG_H_
#define SRC_DSM_CONFIG_H_

#include <cstddef>
#include <cstdint>

#include "src/common/host_set.h"
#include "src/multiview/allocator.h"
#include "src/net/message.h"
#include "src/net/transport_factory.h"
#include "src/os/fault_handler.h"

namespace millipage {

class TraceSink;

// Placement of per-id manager state (directory entries, lock queues, the
// barrier). Translation (MPT + allocator) always lives on kManagerHost: a
// faulting host cannot know a minipage id before translation, so requests
// take one extra header hop to the owning shard when the two differ.
enum class ManagerPolicy : uint8_t {
  kCentralized,  // everything on kManagerHost — bit-compatible with the
                 // original single-manager protocol
  kSharded,      // directory/lock/barrier state hashed across all hosts
};

// Reserved id that places the (single, global) barrier under the same
// hash as minipages and locks, so it leaves host 0 in sharded mode.
inline constexpr uint32_t kBarrierShardId = 0xfffffffeu;

// How a host's DSM server thread waits for messages (Section 3.5.1). The
// paper's poller busy-loops at low priority and its sweeper wakes on a 1 ms
// multimedia timer; on a general-purpose kernel a blocking wait with a short
// timeout is both. kPeriodic reproduces the NT-timer ablation: the server
// only looks at the network every `period_us`.
enum class ServiceMode {
  kBlocking,  // block on the transport with a short timeout (default)
  kBusyPoll,  // spin on non-blocking polls
  kPeriodic,  // poll, then sleep period_us (models coarse timers)
};

struct DsmConfig {
  uint16_t num_hosts = 2;
  size_t object_size = 16 << 20;  // shared memory object bytes
  uint32_t num_views = 8;         // application views (max minipages/page)

  uint32_t chunking_level = 1;    // Section 4.4 aggregation switch
  bool page_based = false;        // Ivy-style full-page baseline

  ManagerPolicy manager_policy = ManagerPolicy::kCentralized;

  // Owning manager shard for a minipage/lock id. Centralized: always host 0.
  // Sharded: static hash, the same placement rule the LRC variant uses for
  // minipage homes (id mod hosts).
  HostId ManagerOf(uint32_t id) const {
    return manager_policy == ManagerPolicy::kCentralized
               ? kManagerHost
               : static_cast<HostId>(id % num_hosts);
  }
  HostId BarrierManager() const { return ManagerOf(kBarrierShardId); }

  // Owning shard under a degraded membership: if the id's home hash lands on
  // a dead host, probe linearly to the next live one. Linear probing keeps
  // the reassignment minimal (only ids homed on dead hosts move) and every
  // host with the same live mask agrees on the answer — the property shard
  // failover relies on. Centralized deployments never rehash: losing host 0
  // loses the only directory (and the MPT), which is unrecoverable.
  HostId ManagerOfLive(uint32_t id, const HostSet& live) const {
    if (manager_policy == ManagerPolicy::kCentralized) {
      return kManagerHost;
    }
    HostId h = static_cast<HostId>(id % num_hosts);
    for (uint32_t probe = 0; probe < num_hosts; ++probe) {
      const HostId c = static_cast<HostId>((h + probe) % num_hosts);
      if (live.Contains(c)) {
        return c;
      }
    }
    return h;  // unreachable while at least one host lives
  }

  ServiceMode service_mode = ServiceMode::kBlocking;
  uint64_t service_period_us = 1000;  // used by kPeriodic

  // Coalesce coherence traffic (invalidations, invalidate replies, post-
  // service ACKs, group-fetch requests) into batched frames: one datagram
  // carries up to kMaxBatchRecords per-minipage records for the same
  // destination (see BatchRecord in src/net/message.h). Off reproduces the
  // one-datagram-per-minipage paper protocol exactly; single-record batches
  // are emitted unbatched either way, so the wire format only changes when
  // a frame actually carries more than one record.
  bool batch_coherence = true;

  // Coalescer linger (threaded mode only): when the mailbox drains, a batch
  // younger than this that holds fewer than batch_linger_min_records keeps
  // accumulating instead of flushing — per-shard bursts otherwise drain one
  // or two records at a time and never stack. Bounded: the server flushes
  // any batch at its deadline even with no further traffic, so the worst
  // case is one linger of added latency on a round's last record. 0 restores
  // flush-on-every-drain. The deterministic sim ignores the linger (its
  // kFlushHint flushes are forced), so checker-verified results are
  // unchanged by construction.
  uint64_t batch_linger_us = 100;
  uint32_t batch_linger_min_records = 8;

  // Mesh transport backend for the multi-process mode
  // (src/net/transport_factory.h). kUring drives the same SEQPACKET mesh
  // through io_uring — multishot receive plus batched send submission — and
  // silently falls back to kSocket when the kernel lacks support. The
  // in-process and sim modes ignore it.
  TransportBackend transport_backend = TransportBackend::kSocket;
  // io_uring only: kernel-side SQ polling so bursts submit with zero
  // syscalls. Opt-in — it burns a core per host process.
  bool uring_sqpoll = false;

  // Fault-delivery backend for the application views (src/os/fault_handler.h).
  // kUserfaultfd removes the signal frame + ucontext decode from every miss
  // and the mprotect from every protection change; it silently falls back to
  // kSigsegv when the kernel lacks UFFD minor+WP shmem support.
  FaultBackend fault_backend = FaultBackend::kSigsegv;

  // The paper's post-service ACK (Section 3.3) serializes every request per
  // minipage at the manager, which is what keeps the non-manager protocol
  // buffer- and state-free. Setting this to false elides the ACK for *read*
  // transactions (writes stay serialized): reads then race with writes, and
  // the runtime needs exactly the machinery the paper avoids — bounced
  // requests re-routed by the manager and in-flight fetches poisoned by
  // crossing invalidations and retried. Ablation knob; default on.
  bool enable_ack = true;

  uint32_t max_app_threads_per_host = 8;

  // ---- Liveness / failure-detection policy -------------------------------
  // The paper assumes FastMessages never loses a message and no host dies;
  // these knobs bound every wait so a lost reply or dead peer turns into a
  // prompt error instead of an indefinite hang.
  //
  // Per-attempt reply deadline for an idempotent fetch (fault service,
  // composed-view group fetch). 0 = no deadline (paper-faithful optimism).
  uint64_t request_timeout_ms = 2000;
  // Resends of an idempotent fetch after a timeout before the operation
  // fails. Retries are safe for fetches: the manager re-routes them against
  // current directory state and stale replies are discarded by generation.
  uint32_t max_request_retries = 3;
  // Reply deadline for non-retryable operations (alloc, barrier enter, lock
  // acquire — none is idempotent, so they fail rather than resend). 0 = no
  // deadline. The default matches the process-cluster watchdog sweep.
  uint64_t sync_timeout_ms = 120000;

  // Retry pacing: attempt k of an idempotent fetch waits
  //   request_timeout_ms * retry_backoff_base^k
  // (capped at retry_backoff_max_ms) before re-sending, with a seeded
  // uniform jitter of ±retry_jitter_pct percent so a cluster of hosts that
  // timed out together does not re-fire in lockstep against the same
  // recovering shard. base = 1.0 with jitter 0 reproduces the historical
  // fixed-interval policy. The jitter stream is seeded from
  // retry_jitter_seed ^ host id, so a run's retry schedule is reproducible.
  double retry_backoff_base = 2.0;
  uint64_t retry_backoff_max_ms = 30000;
  uint32_t retry_jitter_pct = 20;
  uint64_t retry_jitter_seed = 0x9e3779b97f4a7c15ULL;

  // ---- Membership / recovery policy --------------------------------------
  // When true (and the directory is sharded), a peer-down verdict on a
  // non-zero host is answered with recovery — membership epoch bump, shard
  // failover, copyset repair — instead of the sticky whole-cluster abort.
  // Host 0's death is always unrecoverable: it owns the MPT and allocator.
  bool recover_on_host_death = true;

  // History recorder (src/common/trace.h). When non-null, the node and its
  // ViewSet append protocol events to this sink for the offline checker.
  // nullptr (default) disables recording entirely.
  TraceSink* trace = nullptr;

  AllocatorOptions MakeAllocatorOptions() const {
    AllocatorOptions o;
    o.chunking_level = chunking_level;
    o.page_based = page_based;
    return o;
  }
};

}  // namespace millipage

#endif  // SRC_DSM_CONFIG_H_
