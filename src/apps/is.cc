#include "src/apps/is.h"

#include <cstring>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace millipage {

std::string IsApp::input_desc() const {
  std::ostringstream os;
  os << "2^" << (31 - __builtin_clz(config_.num_keys)) << " keys, 2^" << config_.key_log2
     << " values, " << config_.iterations << " iterations";
  return os.str();
}

std::string IsApp::granularity_desc() const {
  std::ostringstream os;
  os << buckets_per_region_ * sizeof(uint32_t) << " bytes";
  return os.str();
}

void IsApp::Setup(DsmNode& manager) {
  num_regions_ = manager.num_hosts();
  MP_CHECK(num_buckets() % num_regions_ == 0);
  buckets_per_region_ = num_buckets() / num_regions_;
  regions_.clear();
  for (uint16_t r = 0; r < num_regions_; ++r) {
    regions_.push_back(SharedAlloc<uint32_t>(buckets_per_region_));
    std::memset(regions_.back().get(), 0, buckets_per_region_ * sizeof(uint32_t));
  }
}

void IsApp::Worker(DsmNode& node, HostId host) {
  const uint16_t hosts = node.num_hosts();
  const uint32_t keys_per_host = config_.num_keys / hosts;
  // Private keys, deterministic per host.
  Rng rng(config_.seed * 1000003 + host);
  std::vector<uint32_t> keys(keys_per_host);
  for (uint32_t& k : keys) {
    k = static_cast<uint32_t>(rng.Below(num_buckets()));
  }
  // Private histogram, reused each iteration.
  std::vector<uint32_t> local(num_buckets());

  // Distribution pass (excluded warmup epoch): each host takes the region it
  // will write first.
  {
    volatile uint32_t* region = regions_[host % num_regions_].get();
    region[0] = region[0];
  }
  node.Barrier();
  for (uint32_t it = 0; it < config_.iterations; ++it) {
    std::fill(local.begin(), local.end(), 0);
    for (uint32_t k : keys) {
      local[k]++;
    }
    node.AddWorkUnits(keys_per_host);
    node.Barrier();
    // Rotate over the shared regions so each step has disjoint writers:
    // at step s, host h updates region (h + s) mod H.
    for (uint16_t s = 0; s < hosts; ++s) {
      const uint16_t r = static_cast<uint16_t>((host + s) % hosts);
      uint32_t* shared = regions_[r].get();
      const uint32_t base = r * buckets_per_region_;
      for (uint32_t b = 0; b < buckets_per_region_; ++b) {
        shared[b] += local[base + b];
      }
      node.AddWorkUnits(buckets_per_region_);
      node.Barrier();
    }
    // Everybody ranks its keys against the completed global counts.
    uint64_t rank_sum = 0;
    for (uint16_t r = 0; r < hosts; ++r) {
      const uint32_t* shared = regions_[r].get();
      for (uint32_t b = 0; b < buckets_per_region_; ++b) {
        rank_sum += shared[b];
      }
    }
    MP_CHECK(rank_sum == static_cast<uint64_t>(keys_per_host) * hosts * (it + 1))
        << "IS: global counts incomplete";
    node.AddWorkUnits(num_buckets());
    node.Barrier();
  }
}

Status IsApp::Validate(DsmNode& manager) {
  // The global histogram accumulated `iterations` copies of every host's
  // keys; check the totals and recompute the expected histogram.
  const uint16_t hosts = manager.num_hosts();
  const uint32_t keys_per_host = config_.num_keys / hosts;
  std::vector<uint32_t> expected(num_buckets(), 0);
  for (uint16_t h = 0; h < hosts; ++h) {
    Rng rng(config_.seed * 1000003 + h);
    for (uint32_t i = 0; i < keys_per_host; ++i) {
      expected[rng.Below(num_buckets())] += config_.iterations;
    }
  }
  for (uint16_t r = 0; r < num_regions_; ++r) {
    const uint32_t* shared = regions_[r].get();
    for (uint32_t b = 0; b < buckets_per_region_; ++b) {
      if (shared[b] != expected[r * buckets_per_region_ + b]) {
        return Status::Internal("IS histogram mismatch at bucket " +
                                std::to_string(r * buckets_per_region_ + b));
      }
    }
  }
  return Status::Ok();
}

}  // namespace millipage
