// Ablation: DSM server responsiveness vs service discipline (Section
// 3.5.1). The paper's sweeper wakes on a 1 ms NT multimedia timer whose
// jitter pushed average request delay to ~750 us, dominating fault service;
// they predict the prefetches and chunking compromises would relax once
// polling is responsive. Sweeping the service period reproduces that
// effect: fault latency tracks the server's wake-up period.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

double MeasureReadFaultUs(int rounds, ServiceMode mode, uint64_t period_us,
                          uint64_t* faults_out) {
  DsmConfig cfg;
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  cfg.service_mode = mode;
  cfg.service_period_us = period_us;
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(8);
    *p = 1;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    for (int r = 0; r < rounds; ++r) {
      if (host == 0) {
        p[0] = r;
      }
      node.Barrier();
      if (host == 1) {
        volatile int v = p[0];
        (void)v;
      }
      node.Barrier();
    }
  });
  const HistogramSnapshot rd = (*cluster)->node(1).read_fault_latency();
  *faults_out = rd.count;
  return rd.mean() / 1000.0;
}

void Report(BenchReporter& reporter, int rounds, const char* label, ServiceMode mode,
            uint64_t period_us) {
  uint64_t faults = 0;
  const double us = MeasureReadFaultUs(rounds, mode, period_us, &faults);
  std::printf("  %-28s %16.1f\n", label, us);
  reporter.AddUs("read fault service", std::string("discipline=") + label, us, faults);
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_ablation_service", env);
  const int rounds = env.Scaled(120, 15);
  PrintHeader("Ablation: server wake-up period vs fault latency (Section 3.5.1)");
  std::printf("  %-28s %16s\n", "service discipline", "read fault (us)");
  Report(reporter, rounds, "blocking (event-driven)", ServiceMode::kBlocking, 0);
  const std::vector<uint64_t> periods = env.smoke()
                                            ? std::vector<uint64_t>{100, 1000}
                                            : std::vector<uint64_t>{100, 500, 1000, 2000, 5000};
  for (uint64_t period : periods) {
    char label[48];
    std::snprintf(label, sizeof(label), "periodic, %lu us sweeper",
                  static_cast<unsigned long>(period));
    Report(reporter, rounds, label, ServiceMode::kPeriodic, period);
  }
  PrintNote("paper: the 1 ms NT timer (std-dev ~955 us) caused ~500 us average server");
  PrintNote("response delay on top of ~250 us protocol time. Expected shape: latency");
  PrintNote("grows roughly with period/2 once the sweeper period dominates the protocol.");
  return reporter.Finish();
}
