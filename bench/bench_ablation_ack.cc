// Ablation: the post-service ACK (Section 3.3). The paper credits the extra
// ACK message with (a) eliminating a livelock caused by request races and
// (b) eliminating queueing at non-manager hosts. This bench tests both
// claims empirically:
//
//   * with the ACK: every configuration completes, zero bounced requests --
//     the non-manager layer needs no request state at all;
//   * without it (read ACKs elided; writes stay serialized): 2 hosts limp
//     through with bounce re-routing and poisoned-fetch retries; at 4+ hosts
//     a write eventually selects a not-yet-installed replica as its data
//     source and invalidates the real holder -- the run livelocks. The
//     no-ACK configurations therefore run in forked child processes under a
//     watchdog, and a kill is reported as the livelock the paper predicts.

#include <cstdio>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/dsm/process_cluster.h"

namespace millipage {
namespace {

DsmConfig Cfg(uint16_t hosts, bool enable_ack) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  cfg.enable_ack = enable_ack;
  return cfg;
}

// Rounds in the contended workload. Mutable (set from --smoke) but fixed
// before any cluster spawns; the forked no-ACK children inherit it.
int g_rounds = 200;

// The contended workload: a rotating writer plus readers on one minipage.
void Workload(DsmNode& node, HostId host, GlobalPtr<int> p) {
  for (int r = 0; r < g_rounds; ++r) {
    if (host == static_cast<HostId>(r % node.num_hosts())) {
      p[0] = r;
    }
    volatile int v = p[0];
    (void)v;
    node.Barrier();
  }
}

void RunInProcess(BenchReporter& reporter, uint16_t hosts, bool ack) {
  auto cluster = DsmCluster::Create(Cfg(hosts, ack));
  MP_CHECK(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(8);
    *p = 0;
  });
  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) { Workload(node, host, p); });
  const double wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  uint64_t messages = 0;
  uint64_t bounces = 0;
  uint64_t retries = 0;
  HistogramSnapshot rd;
  for (uint16_t h = 0; h < hosts; ++h) {
    messages += (*cluster)->node(h).counters().messages_sent;
    bounces += (*cluster)->node(h).bounced_requests();
    retries += (*cluster)->node(h).fault_retries();
    rd.Merge((*cluster)->node(h).read_fault_latency());
  }
  std::printf("  %-8u %-6s %-10s %10lu %8lu %8lu %10.1f %9.0f\n", hosts, ack ? "on" : "off",
              "completed", static_cast<unsigned long>(messages),
              static_cast<unsigned long>(bounces), static_cast<unsigned long>(retries),
              rd.mean() / 1000.0, wall_ms);
  BenchResult row;
  row.name = "contended_rotation";
  row.params = "hosts=" + std::to_string(hosts) + " ack=" + (ack ? "on" : "off");
  row.iterations = static_cast<uint64_t>(g_rounds);
  row.ns_per_op = wall_ms * 1e6 / g_rounds;
  row.values["messages"] = static_cast<double>(messages);
  row.values["bounces"] = static_cast<double>(bounces);
  row.values["retries"] = static_cast<double>(retries);
  row.values["read_fault_us"] = rd.mean() / 1000.0;
  reporter.Add(std::move(row));
}

void RunForkedNoAck(uint16_t hosts) {
  const uint64_t t0 = MonotonicNowNs();
  const Status st = RunForkedCluster(
      Cfg(hosts, /*enable_ack=*/false),
      [](DsmNode& node, HostId host) {
        GlobalPtr<int> p(GlobalAddr{0, 0});
        if (host == 0) {
          GlobalPtr<int> alloc = SharedAlloc<int>(8);
          MP_CHECK(alloc.addr().offset == 0);
          *alloc = 0;
        }
        node.Barrier();
        Workload(node, host, p);
      },
      /*timeout_ms=*/10000);
  const double wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  std::printf("  %-8u %-6s %-10s %10s %8s %8s %10s %9.0f\n", hosts, "off",
              st.ok() ? "completed" : "LIVELOCK", "-", "-", "-", "-", wall_ms);
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_ablation_ack", env);
  g_rounds = env.Scaled(200, 30);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Ablation: post-service ACK on/off (Section 3.3)");
  std::printf("  %-8s %-6s %-10s %10s %8s %8s %10s %9s\n", "hosts", "ack", "outcome",
              "messages", "bounces", "retries", "rd flt us", "wall ms");
  const std::vector<uint16_t> ack_hosts =
      env.smoke() ? std::vector<uint16_t>{2, 4} : std::vector<uint16_t>{2, 4, 8};
  for (uint16_t hosts : ack_hosts) {
    RunInProcess(reporter, hosts, /*ack=*/true);
  }
  // Read-ACK elision: 2 hosts complete (with retries under contention);
  // larger clusters livelock, so they run sandboxed in child processes.
  RunInProcess(reporter, 2, /*ack=*/false);
  if (!env.smoke()) {
    // Each forked no-ACK run burns its 10 s watchdog before being declared a
    // livelock — too slow for the CI smoke loop, so full runs only.
    for (uint16_t hosts : {4, 8}) {
      RunForkedNoAck(hosts);
    }
  }
  PrintNote("with the ACK every request serializes per minipage at the manager: zero");
  PrintNote("bounces, no request state outside the manager. Eliding read ACKs saves one");
  PrintNote("header per read fault but needs bounce re-routing and poisoned-fetch retries,");
  PrintNote("and at higher host counts races can livelock the run (a write can pick a not-yet-");
  PrintNote("replica and invalidate the real holder) -- the race the paper's ACK prevents.");
  return reporter.Finish();
}
