file(REMOVE_RECURSE
  "CMakeFiles/mp_dsm.dir/cluster.cc.o"
  "CMakeFiles/mp_dsm.dir/cluster.cc.o.d"
  "CMakeFiles/mp_dsm.dir/node.cc.o"
  "CMakeFiles/mp_dsm.dir/node.cc.o.d"
  "CMakeFiles/mp_dsm.dir/process_cluster.cc.o"
  "CMakeFiles/mp_dsm.dir/process_cluster.cc.o.d"
  "libmp_dsm.a"
  "libmp_dsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_dsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
