file(REMOVE_RECURSE
  "CMakeFiles/mp_diff.dir/diff.cc.o"
  "CMakeFiles/mp_diff.dir/diff.cc.o.d"
  "libmp_diff.a"
  "libmp_diff.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_diff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
