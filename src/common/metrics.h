// Lock-cheap observability substrate: named relaxed-atomic counters and
// fixed-bucket latency histograms grouped in registries, RAII scoped timers,
// snapshot/merge types, and a JSON emitter. Designed for the protocol hot
// paths (SIGSEGV service, request/reply, transport syscalls, mprotect):
//   * every update is a handful of relaxed atomic ops — no locks, no
//     allocation, safe from signal handlers;
//   * when metrics are disabled the whole layer collapses to one relaxed
//     load and a predicted branch per call site, and scoped timers skip
//     their clock reads entirely;
//   * registration (name lookup) takes a mutex, so call sites register once
//     up front and keep the returned pointer, which stays valid for the
//     registry's lifetime.

#ifndef SRC_COMMON_METRICS_H_
#define SRC_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "src/common/time_util.h"

namespace millipage {

namespace metrics_internal {
extern std::atomic<bool> g_enabled;
}  // namespace metrics_internal

// Process-wide switch, default on (MILLIPAGE_METRICS=0 in the environment
// starts the process disabled).
inline bool MetricsEnabled() {
  return metrics_internal::g_enabled.load(std::memory_order_relaxed);
}
void SetMetricsEnabled(bool enabled);

// Always-on relaxed atomic counter, drop-in usable as a field of the
// counter-block structs (HostCounters/ManagerCounters): copyable — a copy is
// a relaxed load, so copying a live block yields a tear-free-per-field
// snapshot — and arithmetic-compatible with plain uint64_t. For protocol
// statistics that must count regardless of the metrics switch.
class RelaxedCounter {
 public:
  constexpr RelaxedCounter(uint64_t v = 0) : v_(v) {}  // NOLINT: implicit
  RelaxedCounter(const RelaxedCounter& o) : v_(o.value()) {}
  RelaxedCounter& operator=(const RelaxedCounter& o) {
    v_.store(o.value(), std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator=(uint64_t v) {
    v_.store(v, std::memory_order_relaxed);
    return *this;
  }

  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  operator uint64_t() const { return value(); }  // NOLINT: implicit

  RelaxedCounter& operator+=(uint64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator-=(uint64_t d) {
    v_.fetch_sub(d, std::memory_order_relaxed);
    return *this;
  }
  RelaxedCounter& operator++() { return *this += 1; }
  uint64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_;
};

// Named counter owned by a MetricsRegistry. Gated: increments are dropped
// while metrics are disabled.
class Counter {
 public:
  void Inc(uint64_t d = 1) {
    if (MetricsEnabled()) {
      v_.fetch_add(d, std::memory_order_relaxed);
    }
  }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void Reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

// Value-independent snapshot of a histogram (nanoseconds for timers, bytes
// for size distributions). Plain data: merge freely, serialize, compare.
struct HistogramSnapshot {
  static constexpr int kBuckets = 64;

  uint64_t buckets[kBuckets] = {};
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when empty
  uint64_t max = 0;

  double mean() const { return count == 0 ? 0.0 : static_cast<double>(sum) / count; }
  // Approximate quantile (bucket upper bound), q in [0,1].
  uint64_t Quantile(double q) const;
  void Merge(const HistogramSnapshot& o);
};

// Fixed-bucket latency/size histogram: 64 power-of-two buckets (bucket i
// covers (2^(i-1), 2^i]), all state in relaxed atomics so recording is safe
// from any thread and from signal handlers. Record is gated on the metrics
// switch; RecordAlways skips the gate for callers that checked it already
// (and, with it, already paid for the value being recorded — e.g. a clock
// read).
class Histogram {
 public:
  void Record(uint64_t v) {
    if (MetricsEnabled()) {
      RecordAlways(v);
    }
  }
  void RecordAlways(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  HistogramSnapshot Snapshot() const;
  void Reset();

 private:
  static int BucketFor(uint64_t v) {
    if (v <= 1) {
      return 0;
    }
    const int b = 64 - __builtin_clzll(v - 1);
    return b >= HistogramSnapshot::kBuckets ? HistogramSnapshot::kBuckets - 1 : b;
  }

  std::atomic<uint64_t> buckets_[HistogramSnapshot::kBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{~0ULL};
  std::atomic<uint64_t> max_{0};
};

// RAII latency probe: records the scope's wall time into `h` on destruction.
// When metrics are disabled at construction the timer is inert — no clock
// reads at either end.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* h)
      : h_(MetricsEnabled() ? h : nullptr), t0_(h_ != nullptr ? MonotonicNowNs() : 0) {}
  ~ScopedTimer() {
    if (h_ != nullptr) {
      h_->RecordAlways(MonotonicNowNs() - t0_);
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Histogram* const h_;
  const uint64_t t0_;
};

// Flat, name-keyed snapshot of a registry (or a merge of several): the unit
// of aggregation — per node, per cluster, per bench run.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> counters;
  std::map<std::string, HistogramSnapshot> histograms;

  void Merge(const MetricsSnapshot& o);
  // {"counters":{name:value,...},"histograms":{name:{count,sum,min,max,
  //  mean,p50,p95,p99},...}} — sorted by name, no trailing newline.
  std::string DumpJson() const;
};

// Owns named metrics. GetCounter/GetHistogram create on first use and return
// a stable pointer (registration locks; updates through the pointer never
// do). One registry per DsmNode for per-host attribution, plus a process
// Global() for singletons — the fault handler, standalone transports and
// view sets.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;
  // Zeroes every registered metric (pointers stay valid). Test/bench helper.
  void Reset();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace millipage

#endif  // SRC_COMMON_METRICS_H_
