// GlobalPtr<T>: a typed handle to shared memory, valid on every host.
//
// The paper configures the views at the same virtual addresses in every
// process so raw pointers travel as-is. Our canonical (view, offset) pairs
// achieve the same portability in both deployment modes; GlobalPtr resolves
// to the current host's application-view address on use, so `*p` and `p[i]`
// are plain loads/stores that hit the vpage protection exactly like raw
// pointers would.
//
// Pointer arithmetic stays inside one allocation (one minipage run); like
// the paper's malloc-like API, crossing into a different allocation's
// minipage through arithmetic is undefined.

#ifndef SRC_DSM_GLOBAL_PTR_H_
#define SRC_DSM_GLOBAL_PTR_H_

#include <cstddef>

#include "src/dsm/node.h"
#include "src/net/message.h"

namespace millipage {

// Thread-bound current host; set by the cluster/process runtime before
// application code runs.
void SetCurrentNode(DsmNode* node);
DsmNode* CurrentNode();

template <typename T>
class GlobalPtr {
 public:
  GlobalPtr() = default;
  explicit GlobalPtr(GlobalAddr a) : addr_(a) {}

  GlobalAddr addr() const { return addr_; }

  T* get() const { return reinterpret_cast<T*>(CurrentNode()->AppPtr(addr_)); }
  T& operator*() const { return *get(); }
  T* operator->() const { return get(); }
  T& operator[](size_t i) const { return get()[i]; }

  GlobalPtr<T> operator+(ptrdiff_t n) const {
    GlobalAddr a = addr_;
    a.offset += static_cast<uint64_t>(n * static_cast<ptrdiff_t>(sizeof(T)));
    GlobalPtr<T> p(a);
    return p;
  }

  template <typename U>
  GlobalPtr<U> cast() const {
    return GlobalPtr<U>(addr_);
  }

 private:
  GlobalAddr addr_{};
};

// Allocates `count` objects of type T on the current host's DSM.
template <typename T>
GlobalPtr<T> SharedAlloc(size_t count = 1) {
  Result<GlobalAddr> a = CurrentNode()->SharedMalloc(count * sizeof(T));
  MP_CHECK(a.ok()) << a.status().ToString();
  return GlobalPtr<T>(*a);
}

}  // namespace millipage

#endif  // SRC_DSM_GLOBAL_PTR_H_
