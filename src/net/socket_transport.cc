#include "src/net/socket_transport.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "src/common/logging.h"

namespace millipage {

namespace {

constexpr int kSocketBufBytes = 1 << 20;

Status SetBufferSizes(int fd) {
  const int sz = kSocketBufBytes;
  if (setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz)) != 0) {
    return Status::Errno("setsockopt(SO_SNDBUF/SO_RCVBUF)");
  }
  return Status::Ok();
}

// Receives exactly one datagram of `len` bytes into `buf`.
Status RecvDatagram(int fd, void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Errno("recv");
    }
    if (n == 0) {
      // SEQPACKET EOF: the peer process died or closed its end. Surface it
      // so surviving hosts fail fast instead of hanging at the next barrier.
      return Status(StatusCode::kUnavailable, "peer host closed its connection");
    }
    if (static_cast<size_t>(n) != len) {
      return Status::Internal("recv: short/oversized datagram (" + std::to_string(n) +
                              " vs expected " + std::to_string(len) + ")");
    }
    return Status::Ok();
  }
}

Status SendDatagram(int fd, const void* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::send(fd, buf, len, 0);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return Status::Errno("send");
    }
    if (static_cast<size_t>(n) != len) {
      return Status::Internal("send: partial datagram");
    }
    return Status::Ok();
  }
}

}  // namespace

Result<SocketMesh> SocketMesh::Create(uint16_t num_hosts) {
  SocketMesh mesh;
  mesh.fds.assign(num_hosts, std::vector<int>(num_hosts, -1));
  for (uint16_t i = 0; i < num_hosts; ++i) {
    for (uint16_t j = static_cast<uint16_t>(i + 1); j < num_hosts; ++j) {
      int sv[2];
      if (::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) != 0) {
        Status st = Status::Errno("socketpair");
        mesh.CloseAll();
        return st;
      }
      Status st = SetBufferSizes(sv[0]);
      if (st.ok()) {
        st = SetBufferSizes(sv[1]);
      }
      if (!st.ok()) {
        ::close(sv[0]);
        ::close(sv[1]);
        mesh.CloseAll();
        return st;
      }
      mesh.fds[i][j] = sv[0];
      mesh.fds[j][i] = sv[1];
    }
  }
  return mesh;
}

std::vector<int> SocketMesh::TakeRow(uint16_t host) {
  std::vector<int> row;
  if (host < fds.size()) {
    row = std::move(fds[host]);
    fds[host].clear();
  }
  CloseAll();
  return row;
}

void SocketMesh::CloseAll() {
  for (auto& row : fds) {
    for (int& fd : row) {
      if (fd >= 0) {
        ::close(fd);
        fd = -1;
      }
    }
  }
  fds.clear();
}

SocketTransport::SocketTransport(HostId me, std::vector<int> fds_by_peer)
    : me_(me), fds_(std::move(fds_by_peer)) {
  if (me_ >= fds_.size()) {
    fds_.resize(me_ + 1, -1);
  }
  // Self-loop so a host's application threads can message their own server.
  int sv[2];
  MP_CHECK(::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) == 0);
  MP_CHECK_OK(SetBufferSizes(sv[0]));
  MP_CHECK_OK(SetBufferSizes(sv[1]));
  fds_[me_] = sv[0];
  self_recv_fd_ = sv[1];
  send_mu_.reserve(fds_.size());
  for (size_t i = 0; i < fds_.size(); ++i) {
    send_mu_.push_back(std::make_unique<std::mutex>());
  }
}

void SocketTransport::ClosePeer(int fd) {
  for (size_t j = 0; j < fds_.size(); ++j) {
    if (fds_[j] == fd) {
      ::close(fd);
      fds_[j] = -1;
      return;
    }
  }
  if (self_recv_fd_ == fd) {
    ::close(fd);
    self_recv_fd_ = -1;
  }
}

SocketTransport::~SocketTransport() {
  for (int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (self_recv_fd_ >= 0) {
    ::close(self_recv_fd_);
  }
}

Status SocketTransport::Send(HostId to, MsgHeader h, const void* payload, size_t len) {
  if (to >= fds_.size() || fds_[to] < 0) {
    return Status::Invalid("SocketTransport::Send: bad destination host");
  }
  if (payload != nullptr && len > 0) {
    h.flags |= kFlagHasPayload;
    h.pgsize = static_cast<uint32_t>(len);
  }
  std::lock_guard<std::mutex> lock(*send_mu_[to]);
  MP_RETURN_IF_ERROR(SendDatagram(fds_[to], &h, sizeof(h)));
  if (h.has_payload()) {
    MP_RETURN_IF_ERROR(SendDatagram(fds_[to], payload, len));
  }
  CountSend(h.has_payload() ? len : 0);
  return Status::Ok();
}

Result<bool> SocketTransport::Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                                   uint64_t timeout_us) {
  if (me != me_) {
    return Status::Invalid("SocketTransport::Poll: not this host's transport");
  }
  std::vector<struct pollfd> pfds;
  pfds.reserve(fds_.size());
  for (size_t i = 0; i < fds_.size(); ++i) {
    // Rotate the scan order so no peer is starved.
    const size_t j = (i + rotation_) % fds_.size();
    // The self-loop is received on self_recv_fd_, not on the send end.
    const int fd = j == me_ ? self_recv_fd_ : fds_[j];
    if (fd >= 0) {
      pfds.push_back({fd, POLLIN, 0});
    }
  }
  rotation_++;
  const int timeout_ms =
      timeout_us == 0 ? 0 : static_cast<int>((timeout_us + 999) / 1000);
  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready < 0) {
    if (errno == EINTR) {
      return false;
    }
    return Status::Errno("poll");
  }
  if (ready == 0) {
    return false;
  }
  for (size_t i = 0; i < pfds.size(); ++i) {
    if ((pfds[i].revents & POLLIN) == 0) {
      continue;
    }
    const int fd = pfds[i].fd;
    const Status header_st = RecvDatagram(fd, h, sizeof(*h));
    if (header_st.code() == StatusCode::kUnavailable) {
      // Peer exited and closed its end (normal at teardown: hosts leave the
      // final barrier at different times). Retire the connection; if the
      // peer died prematurely, the deployment's watchdog reports it.
      ClosePeer(fd);
      return false;
    }
    MP_RETURN_IF_ERROR(header_st);
    if (h->has_payload()) {
      std::byte* dst = sink(*h);
      if (dst != nullptr) {
        // FIFO per connection: the payload datagram is next on this fd.
        MP_RETURN_IF_ERROR(RecvDatagram(fd, dst, h->pgsize));
      } else {
        std::vector<std::byte> scratch(h->pgsize);
        MP_RETURN_IF_ERROR(RecvDatagram(fd, scratch.data(), scratch.size()));
      }
    }
    return true;
  }
  return false;
}

}  // namespace millipage
