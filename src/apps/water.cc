#include "src/apps/water.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstring>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace millipage {

namespace {

void InitMolecule(Molecule* m, Rng* rng) {
  std::memset(m, 0, sizeof(*m));
  for (int a = 0; a < 3; ++a) {
    for (int d = 0; d < 3; ++d) {
      m->pos[a][d] = rng->NextDouble() * 10.0;
      m->vel[a][d] = (rng->NextDouble() - 0.5) * 0.1;
    }
  }
}

// Smooth bounded pair interaction on the oxygen (atom 0) positions.
void PairForce(const Molecule& a, const Molecule& b, double out[3]) {
  double d[3];
  double r2 = 1.0;
  for (int k = 0; k < 3; ++k) {
    d[k] = a.pos[0][k] - b.pos[0][k];
    r2 += d[k] * d[k];
  }
  for (int k = 0; k < 3; ++k) {
    out[k] = d[k] / r2;
  }
}

void Integrate(Molecule* m, double dt) {
  for (int a = 0; a < 3; ++a) {
    for (int d = 0; d < 3; ++d) {
      m->vel[a][d] += m->force[0][d] * dt;  // all atoms driven by net force
      m->pos[a][d] += m->vel[a][d] * dt;
    }
  }
  std::memset(m->force, 0, sizeof(m->force));
}

}  // namespace

std::string WaterApp::input_desc() const {
  std::ostringstream os;
  os << config_.num_molecules << " molecules, " << config_.iterations << " iterations";
  return os.str();
}

void WaterApp::Setup(DsmNode& manager) {
  (void)manager;
  const uint32_t m = config_.num_molecules;
  mols_.clear();
  mols_.reserve(m);
  Rng rng(config_.seed);
  for (uint32_t i = 0; i < m; ++i) {
    mols_.push_back(SharedAlloc<Molecule>(1));
    InitMolecule(mols_.back().get(), &rng);
  }

  // Serial reference: same algorithm, one host, deterministic order.
  std::vector<Molecule> ref(m);
  {
    Rng rng2(config_.seed);
    for (uint32_t i = 0; i < m; ++i) {
      InitMolecule(&ref[i], &rng2);
    }
  }
  for (uint32_t it = 0; it < config_.iterations; ++it) {
    for (uint32_t i = 0; i < m; ++i) {
      for (uint32_t k = 1; k <= m / 2; ++k) {
        const uint32_t j = (i + k) % m;
        if (2 * k == m && i >= j) {
          continue;  // antipodal pair: count once
        }
        double f[3];
        PairForce(ref[i], ref[j], f);
        for (int d = 0; d < 3; ++d) {
          ref[i].force[0][d] += f[d];
          ref[j].force[0][d] -= f[d];
        }
      }
    }
    for (uint32_t i = 0; i < m; ++i) {
      Integrate(&ref[i], 1e-3);
    }
  }
  expected_checksum_ = 0;
  for (uint32_t i = 0; i < m; ++i) {
    for (int d = 0; d < 3; ++d) {
      expected_checksum_ += ref[i].pos[0][d];
    }
  }
}

void WaterApp::Worker(DsmNode& node, HostId host) {
  const uint32_t m = config_.num_molecules;
  const uint16_t hosts = node.num_hosts();
  const uint32_t lo = m * host / hosts;
  const uint32_t hi = m * (host + 1) / hosts;
  const uint32_t num_locks = std::min<uint32_t>(m, 64);

  // Private force accumulation buffer for all molecules.
  std::vector<std::array<double, 3>> partial(m);

  // Distribution pass (excluded warmup epoch): owners take their molecules.
  for (uint32_t i = lo; i < hi; ++i) {
    volatile double* m0 = &mols_[i].get()->pos[0][0];
    m0[0] = m0[0];
  }
  node.Barrier();
  for (uint32_t it = 0; it < config_.iterations; ++it) {
    for (auto& p : partial) {
      p = {0, 0, 0};
    }
    // Read + force phase: the classic circular half-range decomposition —
    // each host pairs its molecules with the next m/2 molecules (mod m), so
    // work is balanced and every host's read phase pulls in the whole
    // structure (the paper's read phase).
    uint64_t pairs = 0;
    for (uint32_t i = lo; i < hi; ++i) {
      const Molecule* mi = mols_[i].get();
      for (uint32_t k = 1; k <= m / 2; ++k) {
        const uint32_t j = (i + k) % m;
        if (2 * k == m && i >= j) {
          continue;  // antipodal pair: count once
        }
        const Molecule* mj = mols_[j].get();
        double f[3];
        PairForce(*mi, *mj, f);
        for (int d = 0; d < 3; ++d) {
          partial[i][d] += f[d];
          partial[j][d] -= f[d];
        }
        pairs++;
      }
    }
    node.AddWorkUnits(pairs);
    node.Barrier();
    // Scatter phase: add contributions into the shared molecules under
    // per-molecule locks (lock + write-fault traffic; owners contend with
    // remote contributors too).
    for (uint32_t j = 0; j < m; ++j) {
      const auto& p = partial[j];
      if (p[0] == 0 && p[1] == 0 && p[2] == 0) {
        continue;
      }
      Molecule* mj = mols_[j].get();
      node.Lock(kMolLockBase + j % num_locks);
      for (int d = 0; d < 3; ++d) {
        mj->force[0][d] += p[d];
      }
      node.Unlock(kMolLockBase + j % num_locks);
    }
    node.Barrier();
    // Update phase: owners integrate their molecules.
    for (uint32_t i = lo; i < hi; ++i) {
      Integrate(mols_[i].get(), 1e-3);
    }
    node.AddWorkUnits(hi - lo);
    node.Barrier();
  }
}

Status WaterApp::Validate(DsmNode& manager) {
  (void)manager;
  double sum = 0;
  for (uint32_t i = 0; i < config_.num_molecules; ++i) {
    const Molecule* mi = mols_[i].get();
    for (int d = 0; d < 3; ++d) {
      sum += mi->pos[0][d];
    }
  }
  const double tol = 1e-6 * (std::abs(expected_checksum_) + 1.0);
  if (std::abs(sum - expected_checksum_) > tol) {
    return Status::Internal("WATER checksum mismatch: got " + std::to_string(sum) + " want " +
                            std::to_string(expected_checksum_));
  }
  return Status::Ok();
}

}  // namespace millipage
