# CMake generated Testfile for 
# Source directory: /root/repo/src/multiview
# Build directory: /root/repo/build/src/multiview
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
