#include "src/os/memory_object.h"

#include <sys/mman.h>
#include <unistd.h>

#include <utility>

#include "src/os/page.h"

namespace millipage {

Result<MemoryObject> MemoryObject::Create(size_t size, const std::string& name) {
  if (size == 0) {
    return Status::Invalid("MemoryObject size must be > 0");
  }
  const size_t rounded = RoundUpToPage(size);
  int fd = ::memfd_create(name.c_str(), MFD_CLOEXEC);
  if (fd < 0) {
    return Status::Errno("memfd_create");
  }
  if (::ftruncate(fd, static_cast<off_t>(rounded)) != 0) {
    Status st = Status::Errno("ftruncate");
    ::close(fd);
    return st;
  }
  return MemoryObject(fd, rounded);
}

MemoryObject::~MemoryObject() {
  if (fd_ >= 0) {
    ::close(fd_);
  }
}

MemoryObject::MemoryObject(MemoryObject&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), size_(std::exchange(other.size_, 0)) {}

MemoryObject& MemoryObject::operator=(MemoryObject&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::close(fd_);
    }
    fd_ = std::exchange(other.fd_, -1);
    size_ = std::exchange(other.size_, 0);
  }
  return *this;
}

}  // namespace millipage
