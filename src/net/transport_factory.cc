#include "src/net/transport_factory.h"

#include <cstdlib>
#include <cstring>

#include "src/common/logging.h"
#include "src/net/socket_transport.h"
#include "src/net/uring_transport.h"

namespace millipage {

const char* TransportBackendName(TransportBackend backend) {
  switch (backend) {
    case TransportBackend::kSocket:
      return "socket";
    case TransportBackend::kUring:
      return "uring";
  }
  return "unknown";
}

TransportBackend TransportBackendFromEnv() {
  const char* env = std::getenv("MILLIPAGE_TRANSPORT");
  if (env != nullptr && (std::strcmp(env, "uring") == 0 || std::strcmp(env, "io_uring") == 0)) {
    return TransportBackend::kUring;
  }
  return TransportBackend::kSocket;
}

MeshTransport MakeMeshTransport(TransportBackend requested, HostId me,
                                std::vector<int> fds_by_peer, bool sqpoll) {
  MeshTransport out;
  if (requested == TransportBackend::kUring) {
    if (UringTransportSupported()) {
      UringOptions opts;
      opts.sqpoll = sqpoll;
      Result<std::unique_ptr<UringTransport>> t =
          UringTransport::Create(me, std::move(fds_by_peer), opts);
      if (t.ok()) {
        out.transport = std::move(*t);
        out.active = TransportBackend::kUring;
        return out;
      }
      // Create consumed the fds; this is a hard error, not a fallback case
      // (the probe said the kernel is fine). Surface loudly.
      MP_LOG(Error) << "uring transport init failed after positive probe: "
                    << t.status().ToString();
      out.transport = nullptr;
      return out;
    }
    static bool warned = false;
    if (!warned) {
      warned = true;
      MP_LOG(Warning) << "MILLIPAGE_TRANSPORT=uring requested but kernel lacks io_uring "
                      "multishot receive / buffer rings; falling back to socket transport";
    }
  }
  out.transport = std::make_unique<SocketTransport>(me, std::move(fds_by_peer));
  out.active = TransportBackend::kSocket;
  return out;
}

}  // namespace millipage
