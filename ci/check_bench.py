#!/usr/bin/env python3
"""Validate a merged BENCH.json and compare it against the checked-in baseline.

Hard failures (exit 1) are reserved for a broken harness: missing file,
unparseable JSON, wrong schema, a bench document without the required
fields — or a >10x ns/op regression versus ci/bench_baseline.json, which no
amount of runner noise explains. Smaller swings are *soft*: CI runners are
noisy shared VMs, so a >3x change only prints a warning (and a ::warning::
annotation when running under GitHub Actions) and still exits 0.

Rows with ns_per_op <= 0 are structural (e.g. the Table 2 application
characterization rows) and are skipped by the comparison.

Usage:
  check_bench.py --bench build/BENCH.json --baseline ci/bench_baseline.json
  check_bench.py --bench build/BENCH.json --baseline ci/bench_baseline.json --update
"""

import argparse
import json
import sys

SCHEMA = "millipage-bench-v1"
# Ratio beyond which a row is flagged. Generous on purpose: smoke runs are
# short and CI machines are heterogeneous.
SWING = 3.0
# Ratio beyond which a *regression* fails the job: an order of magnitude is a
# broken code path (an accidental O(n^2), a backend silently falling back),
# not scheduler noise. Only slowdowns hard-fail; a 10x speedup is suspicious
# but legitimate (warned, and absorbed at the next --update).
HARD_SWING = 10.0


def fail(msg):
    print(f"check_bench: ERROR: {msg}", file=sys.stderr)
    sys.exit(1)


def warn(msg):
    print(f"check_bench: warning: {msg}", file=sys.stderr)
    # GitHub Actions annotation; harmless noise when run locally.
    print(f"::warning::{msg}")


def load_bench(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"cannot read {path}: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path} is not valid JSON: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    benches = doc.get("benches")
    if not isinstance(benches, list) or not benches:
        fail(f"{path}: 'benches' must be a non-empty list")
    for b in benches:
        if not isinstance(b.get("bench"), str):
            fail(f"{path}: bench document missing 'bench' name: {b!r}")
        if not isinstance(b.get("results"), list):
            fail(f"{path}: bench {b['bench']!r} missing 'results' list")
        for r in b["results"]:
            for key in ("name", "params", "iterations", "ns_per_op"):
                if key not in r:
                    fail(f"{path}: bench {b['bench']!r} result missing {key!r}: {r!r}")
    return doc


def flatten(doc):
    """Map (bench, name, params) -> ns_per_op for comparable rows."""
    rows = {}
    for b in doc["benches"]:
        for r in b["results"]:
            ns = r["ns_per_op"]
            if not isinstance(ns, (int, float)) or ns <= 0:
                continue  # structural row: opted out of perf comparison
            rows[(b["bench"], r["name"], r["params"])] = float(ns)
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bench", required=True, help="merged BENCH.json from bench_smoke")
    ap.add_argument("--baseline", required=True, help="checked-in baseline JSON")
    ap.add_argument(
        "--update",
        action="store_true",
        help="rewrite the baseline from --bench instead of comparing",
    )
    args = ap.parse_args()

    doc = load_bench(args.bench)
    rows = flatten(doc)
    print(
        f"check_bench: {args.bench} OK "
        f"({len(doc['benches'])} benches, {len(rows)} comparable rows)"
    )

    if args.update:
        baseline = {
            "schema": SCHEMA,
            "note": "Regenerate with: ci/check_bench.py --bench build/BENCH.json "
            "--baseline ci/bench_baseline.json --update",
            "rows": [
                {"bench": b, "name": n, "params": p, "ns_per_op": ns}
                for (b, n, p), ns in sorted(rows.items())
            ],
        }
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=1)
            f.write("\n")
        print(f"check_bench: wrote {len(rows)} baseline rows to {args.baseline}")
        return

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except OSError:
        warn(f"no baseline at {args.baseline}; skipping comparison")
        return
    except json.JSONDecodeError as e:
        fail(f"{args.baseline} is not valid JSON: {e}")

    base_rows = {
        (r["bench"], r["name"], r["params"]): float(r["ns_per_op"])
        for r in baseline.get("rows", [])
        if r.get("ns_per_op", 0) > 0
    }

    swings = 0
    regressions = []
    for key, ns in sorted(rows.items()):
        base = base_rows.get(key)
        if base is None:
            continue  # new row: becomes part of the baseline on next --update
        ratio = ns / base
        bench, name, params = key
        if ratio > HARD_SWING:
            regressions.append(
                f"{bench} / {name} [{params}]: {ns:.1f} ns/op vs baseline "
                f"{base:.1f} ns/op ({ratio:.2f}x, hard limit {HARD_SWING}x)"
            )
        elif ratio > SWING or ratio < 1.0 / SWING:
            swings += 1
            warn(
                f"{bench} / {name} [{params}]: {ns:.1f} ns/op vs baseline "
                f"{base:.1f} ns/op ({ratio:.2f}x)"
            )
    missing = sorted(set(base_rows) - set(rows))
    for bench, name, params in missing:
        warn(f"baseline row disappeared: {bench} / {name} [{params}]")

    if swings or missing:
        print(
            f"check_bench: {swings} swing(s) beyond {SWING}x and "
            f"{len(missing)} missing row(s) — soft warning only (CI noise is real); "
            "refresh with --update if the change is intentional"
        )
    elif not regressions:
        print(f"check_bench: all {len(rows)} rows within {SWING}x of baseline")
    if regressions:
        for msg in regressions:
            print(f"::error::{msg}")
        fail(
            f"{len(regressions)} regression(s) beyond {HARD_SWING}x — this is a "
            "broken code path, not runner noise; fix it or regenerate the "
            "baseline with ci/update_baseline.py if the slowdown is intentional"
        )


if __name__ == "__main__":
    main()
