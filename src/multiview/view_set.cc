#include "src/multiview/view_set.h"

namespace millipage {

Result<std::unique_ptr<ViewSet>> ViewSet::Create(size_t object_size, uint32_t num_app_views) {
  if (num_app_views == 0) {
    return Status::Invalid("ViewSet needs at least one application view");
  }
  auto vs = std::unique_ptr<ViewSet>(new ViewSet());
  MP_ASSIGN_OR_RETURN(vs->object_, MemoryObject::Create(object_size));
  const size_t len = vs->object_.size();
  vs->app_views_.reserve(num_app_views);
  for (uint32_t v = 0; v < num_app_views; ++v) {
    MP_ASSIGN_OR_RETURN(Mapping m,
                        Mapping::MapObject(vs->object_, 0, len, Protection::kNoAccess));
    vs->app_views_.push_back(std::move(m));
  }
  MP_ASSIGN_OR_RETURN(vs->priv_view_,
                      Mapping::MapObject(vs->object_, 0, len, Protection::kReadWrite));
  const size_t vpages = len / PageSize();
  vs->shadow_.reserve(num_app_views);
  for (uint32_t v = 0; v < num_app_views; ++v) {
    auto arr = std::make_unique<std::atomic<uint8_t>[]>(vpages);
    for (size_t i = 0; i < vpages; ++i) {
      arr[i].store(static_cast<uint8_t>(Protection::kNoAccess), std::memory_order_relaxed);
    }
    vs->shadow_.push_back(std::move(arr));
  }
  vs->SetMetrics(&MetricsRegistry::Global());
  return vs;
}

bool ViewSet::Resolve(const void* addr, uint32_t* view, uint64_t* offset) const {
  const auto a = reinterpret_cast<uintptr_t>(addr);
  for (uint32_t v = 0; v < app_views_.size(); ++v) {
    const Mapping& m = app_views_[v];
    if (a >= m.base_addr() && a < m.base_addr() + m.length()) {
      *view = v;
      *offset = a - m.base_addr();
      return true;
    }
  }
  return false;
}

Status ViewSet::SetProtection(const Minipage& mp, Protection prot) {
  if (mp.view >= app_views_.size()) {
    return Status::Invalid("SetProtection: view out of range");
  }
  const uint64_t first = mp.first_vpage();
  const uint64_t last = mp.last_vpage();
  const size_t off = first * PageSize();
  const size_t len = (last - first + 1) * PageSize();
  MP_RETURN_IF_ERROR(app_views_[mp.view].Protect(off, len, prot));
  for (uint64_t vp = first; vp <= last; ++vp) {
    shadow_[mp.view][vp].store(static_cast<uint8_t>(prot), std::memory_order_release);
  }
  prot_sets_->Inc();
  prot_set_pages_->Inc(last - first + 1);
  if (trace_ != nullptr) {
    // addr uses the GlobalAddr packing (view << 48 | offset) without pulling
    // in the net layer.
    trace_->Emit(TraceEventKind::kProtSet, trace_host_, mp.id,
                 (static_cast<uint64_t>(mp.view) << 48) | mp.offset,
                 static_cast<uint64_t>(prot));
  }
  return Status::Ok();
}

Protection ViewSet::GetProtection(const Minipage& mp) const {
  return static_cast<Protection>(
      shadow_[mp.view][mp.first_vpage()].load(std::memory_order_acquire));
}

Status ViewSet::ProtectAllAppViews(Protection prot) {
  for (uint32_t v = 0; v < app_views_.size(); ++v) {
    MP_RETURN_IF_ERROR(app_views_[v].ProtectAll(prot));
    const size_t vpages = vpages_per_view();
    for (size_t i = 0; i < vpages; ++i) {
      shadow_[v][i].store(static_cast<uint8_t>(prot), std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

}  // namespace millipage
