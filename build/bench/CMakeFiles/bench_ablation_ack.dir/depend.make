# Empty dependencies file for bench_ablation_ack.
# This may be replaced when dependencies are built.
