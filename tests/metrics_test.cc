// Unit tests for the metrics substrate: counters, histograms (quantiles on
// known distributions), scoped timers, registries, snapshot merging, the
// JSON emitter, and the disabled mode's zero-side-effect guarantee.

#include "src/common/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "src/common/stats.h"

namespace millipage {
namespace {

// Metrics are a process-global switch; every test leaves them enabled.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetMetricsEnabled(true); }
  void TearDown() override { SetMetricsEnabled(true); }
};

TEST_F(MetricsTest, CounterCountsAndResets) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST_F(MetricsTest, RelaxedCounterBehavesLikeUint64) {
  RelaxedCounter c;
  c = 5;
  c += 10;
  c++;
  ++c;
  c -= 2;
  EXPECT_EQ(uint64_t{c}, 15u);
  RelaxedCounter copy = c;  // copies are relaxed-load snapshots
  c += 100;
  EXPECT_EQ(copy.value(), 15u);
  EXPECT_EQ(c.value(), 115u);
}

TEST_F(MetricsTest, HostCountersArithmeticStaysIntact) {
  // The counter blocks went atomic; the epoch-delta arithmetic the cost
  // model depends on must be unchanged.
  HostCounters a;
  a.read_faults = 7;
  a.bytes_sent = 100;
  HostCounters b;
  b.read_faults = 3;
  b.bytes_sent = 40;
  a += b;
  EXPECT_EQ(a.read_faults, 10u);
  EXPECT_EQ(a.bytes_sent, 140u);
  const HostCounters d = a - b;
  EXPECT_EQ(d.read_faults, 7u);
  EXPECT_EQ(d.bytes_sent, 100u);
}

TEST_F(MetricsTest, HistogramStatsOnKnownDistribution) {
  Histogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.Record(v);
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1000u);
  EXPECT_EQ(s.sum, 500500u);
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 1000u);
  EXPECT_DOUBLE_EQ(s.mean(), 500.5);
  // Power-of-two buckets: a quantile answer is the bucket's upper bound, so
  // it may overshoot the exact order statistic by at most 2x (and never
  // undershoot it).
  const uint64_t p50 = s.Quantile(0.5);
  EXPECT_GE(p50, 500u);
  EXPECT_LE(p50, 1000u);
  const uint64_t p99 = s.Quantile(0.99);
  EXPECT_GE(p99, 990u);
  EXPECT_LE(p99, 1000u);  // capped at the observed max
  EXPECT_EQ(s.Quantile(1.0), 1000u);
  EXPECT_LE(s.Quantile(0.0), 2u);
}

TEST_F(MetricsTest, HistogramQuantileOnPointMass) {
  Histogram h;
  for (int i = 0; i < 100; ++i) {
    h.Record(4096);
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.Quantile(0.5), 4096u);
  EXPECT_EQ(s.Quantile(0.99), 4096u);
  EXPECT_EQ(s.min, 4096u);
  EXPECT_EQ(s.max, 4096u);
}

TEST_F(MetricsTest, HistogramSnapshotMerge) {
  Histogram a;
  Histogram b;
  a.Record(10);
  a.Record(20);
  b.Record(5);
  b.Record(40000);
  HistogramSnapshot s = a.Snapshot();
  s.Merge(b.Snapshot());
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.sum, 40035u);
  EXPECT_EQ(s.min, 5u);
  EXPECT_EQ(s.max, 40000u);
  // Merging an empty snapshot changes nothing (empty min must not poison).
  s.Merge(HistogramSnapshot{});
  EXPECT_EQ(s.count, 4u);
  EXPECT_EQ(s.min, 5u);
}

TEST_F(MetricsTest, ScopedTimerRecordsElapsed) {
  Histogram h;
  {
    ScopedTimer t(&h);
    volatile int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sink = sink + i;
    }
  }
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_GT(s.sum, 0u);
}

TEST_F(MetricsTest, DisabledModeHasZeroSideEffects) {
  Counter c;
  Histogram h;
  SetMetricsEnabled(false);
  c.Inc();
  c.Inc(100);
  h.Record(42);
  { ScopedTimer t(&h); }
  SetMetricsEnabled(true);
  EXPECT_EQ(c.value(), 0u);
  const HistogramSnapshot s = h.Snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0u);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 0u);
  EXPECT_EQ(s.Quantile(0.99), 0u);
}

TEST_F(MetricsTest, RegistryReturnsStablePointers) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("x.count");
  Counter* c2 = reg.GetCounter("x.count");
  EXPECT_EQ(c1, c2);
  Histogram* h1 = reg.GetHistogram("x.lat_ns");
  EXPECT_EQ(h1, reg.GetHistogram("x.lat_ns"));
  c1->Inc(3);
  h1->Record(100);
  const MetricsSnapshot s = reg.Snapshot();
  EXPECT_EQ(s.counters.at("x.count"), 3u);
  EXPECT_EQ(s.histograms.at("x.lat_ns").count, 1u);
  reg.Reset();
  EXPECT_EQ(c1->value(), 0u);  // pointer still valid, value zeroed
  EXPECT_EQ(reg.Snapshot().counters.at("x.count"), 0u);
}

TEST_F(MetricsTest, ConcurrentUpdatesAreNotLost) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("c");
  Histogram* h = reg.GetHistogram("h");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Record(64);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(c->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(h->Snapshot().count, uint64_t{kThreads} * kPerThread);
}

TEST_F(MetricsTest, SnapshotMergeAcrossRegistries) {
  // The cluster-level aggregation path: one registry per node, merged into
  // one flat snapshot.
  MetricsRegistry node_a;
  MetricsRegistry node_b;
  node_a.GetCounter("dsm.faults")->Inc(2);
  node_b.GetCounter("dsm.faults")->Inc(5);
  node_b.GetCounter("dsm.retries")->Inc(1);
  node_a.GetHistogram("dsm.lat_ns")->Record(100);
  node_b.GetHistogram("dsm.lat_ns")->Record(1000);
  MetricsSnapshot total = node_a.Snapshot();
  total.Merge(node_b.Snapshot());
  EXPECT_EQ(total.counters.at("dsm.faults"), 7u);
  EXPECT_EQ(total.counters.at("dsm.retries"), 1u);
  EXPECT_EQ(total.histograms.at("dsm.lat_ns").count, 2u);
  EXPECT_EQ(total.histograms.at("dsm.lat_ns").min, 100u);
  EXPECT_EQ(total.histograms.at("dsm.lat_ns").max, 1000u);
}

TEST_F(MetricsTest, DumpJsonShape) {
  MetricsRegistry reg;
  reg.GetCounter("a.count")->Inc(3);
  reg.GetHistogram("a.lat_ns")->Record(250);
  const std::string json = reg.Snapshot().DumpJson();
  EXPECT_EQ(json.find("{\"counters\":{"), 0u);
  EXPECT_NE(json.find("\"a.count\":3"), std::string::npos);
  EXPECT_NE(json.find("\"a.lat_ns\":{\"count\":1,\"sum\":250"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  EXPECT_EQ(json.back(), '}');
  // Balanced braces (cheap well-formedness check; CI parses it for real).
  int depth = 0;
  for (char ch : json) {
    depth += ch == '{' ? 1 : ch == '}' ? -1 : 0;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST_F(MetricsTest, EmptySnapshotDumpsValidJson) {
  EXPECT_EQ(MetricsSnapshot{}.DumpJson(), "{\"counters\":{},\"histograms\":{}}");
}

}  // namespace
}  // namespace millipage
