// Unit tests for the messaging layer: header format, in-process transport,
// and the SEQPACKET mesh transports (socket and io_uring) with their
// two-stage (header, payload) receive. The mesh edge cases run parameterized
// over both backends — the uring leg self-skips on kernels without multishot
// receive support, which is also what CI's probe step keys off.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <string>
#include <thread>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/time_util.h"
#include "src/net/faulty_transport.h"
#include "src/net/inproc_transport.h"
#include "src/net/message.h"
#include "src/net/socket_transport.h"
#include "src/net/transport_factory.h"
#include "src/net/uring_transport.h"

namespace millipage {
namespace {

TEST(Message, HeaderIs32Bytes) { EXPECT_EQ(sizeof(MsgHeader), 32u); }

TEST(Message, GlobalAddrPackUnpack) {
  const GlobalAddr a{13, (1ULL << 40) + 12345};
  const GlobalAddr b = GlobalAddr::Unpack(a.Pack());
  EXPECT_EQ(a, b);
  EXPECT_EQ(GlobalAddr::Unpack(0), (GlobalAddr{0, 0}));
}

TEST(Message, TypeNames) {
  EXPECT_STREQ(MsgTypeName(MsgType::kReadRequest), "READ_REQUEST");
  EXPECT_STREQ(MsgTypeName(MsgType::kShutdown), "SHUTDOWN");
}

template <typename MakeTransport>
void ExerciseTransport(MakeTransport make) {
  auto transports = make(2);
  Transport& t0 = *transports[0];
  Transport& t1 = *transports[1];

  // Header-only message.
  MsgHeader h;
  h.set_type(MsgType::kAck);
  h.from = 0;
  h.seq = 7;
  const Status send_st = t0.Send(1, h, nullptr, 0);
  ASSERT_TRUE(send_st.ok()) << send_st.ToString();
  MsgHeader got;
  auto polled = t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; },
                        1000000);
  ASSERT_TRUE(polled.ok());
  ASSERT_TRUE(*polled);
  EXPECT_EQ(got.msg_type(), MsgType::kAck);
  EXPECT_EQ(got.seq, 7u);
  EXPECT_FALSE(got.has_payload());

  // Payload message delivered to the sink's destination.
  char payload[256];
  std::memset(payload, 0xab, sizeof(payload));
  h.set_type(MsgType::kReadReply);
  ASSERT_TRUE(t0.Send(1, h, payload, sizeof(payload)).ok());
  char dest[256] = {0};
  polled = t1.Poll(1, &got,
                   [&dest](const MsgHeader& hdr) -> std::byte* {
                     EXPECT_EQ(hdr.pgsize, 256u);
                     return reinterpret_cast<std::byte*>(dest);
                   },
                   1000000);
  ASSERT_TRUE(polled.ok());
  ASSERT_TRUE(*polled);
  EXPECT_TRUE(got.has_payload());
  EXPECT_EQ(std::memcmp(dest, payload, sizeof(payload)), 0);

  // Non-blocking poll on an empty queue returns false.
  polled = t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 0);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(*polled);

  // FIFO order per sender.
  for (uint32_t i = 0; i < 10; ++i) {
    MsgHeader m;
    m.set_type(MsgType::kAck);
    m.seq = i;
    ASSERT_TRUE(t1.Send(0, m, nullptr, 0).ok());
  }
  for (uint32_t i = 0; i < 10; ++i) {
    polled = t0.Poll(0, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 1000000);
    ASSERT_TRUE(polled.ok() && *polled);
    EXPECT_EQ(got.seq, i);
  }
}

TEST(InProcTransportTest, BasicSendReceive) {
  ExerciseTransport([](uint16_t n) {
    auto shared = std::make_shared<InProcTransport>(n);
    std::vector<std::shared_ptr<Transport>> out;
    for (uint16_t i = 0; i < n; ++i) {
      out.push_back(shared);
    }
    return out;
  });
}

TEST(InProcTransportTest, BlockingPollWakesOnSend) {
  InProcTransport t(2);
  std::thread sender([&t] {
    MsgHeader h;
    h.set_type(MsgType::kAck);
    h.seq = 99;
    ASSERT_TRUE(t.Send(1, h, nullptr, 0).ok());
  });
  MsgHeader got;
  auto polled =
      t.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 2000000);
  sender.join();
  ASSERT_TRUE(polled.ok());
  ASSERT_TRUE(*polled);
  EXPECT_EQ(got.seq, 99u);
}

TEST(InProcTransportTest, RejectsBadHost) {
  InProcTransport t(2);
  MsgHeader h;
  EXPECT_FALSE(t.Send(5, h, nullptr, 0).ok());
  EXPECT_FALSE(t.Poll(5, &h, [](const MsgHeader&) -> std::byte* { return nullptr; }, 0).ok());
}

// ---------------------------------------------------------------------------
// Mesh transports, parameterized over backend. Every test here runs once on
// the socket backend and once on io_uring; the shared mesh semantics —
// two-datagram framing, truncation detection, EOF-as-peer-down, FIFO under
// backpressure — must hold identically.
// ---------------------------------------------------------------------------

class MeshTransportTest : public ::testing::TestWithParam<TransportBackend> {
 protected:
  void SetUp() override {
    if (GetParam() == TransportBackend::kUring && !UringTransportSupported()) {
      GTEST_SKIP() << "kernel lacks io_uring multishot receive / buffer rings";
    }
  }

  std::unique_ptr<Transport> MakeOne(HostId me, std::vector<int> row) {
    MeshTransport mt = MakeMeshTransport(GetParam(), me, std::move(row));
    MP_CHECK(mt.transport != nullptr);
    // SetUp skipped unsupported kernels, so the request is always honoured.
    EXPECT_EQ(mt.active, GetParam());
    return std::move(mt.transport);
  }

  std::vector<std::unique_ptr<Transport>> MakeCluster(uint16_t n) {
    auto mesh = SocketMesh::Create(n);
    MP_CHECK(mesh.ok());
    std::vector<std::vector<int>> rows(n);
    for (uint16_t i = 0; i < n; ++i) {
      rows[i] = std::move(mesh->fds[i]);
      mesh->fds[i].clear();
    }
    mesh->fds.clear();
    std::vector<std::unique_ptr<Transport>> out;
    for (uint16_t i = 0; i < n; ++i) {
      out.push_back(MakeOne(i, std::move(rows[i])));
    }
    return out;
  }
};

INSTANTIATE_TEST_SUITE_P(Backends, MeshTransportTest,
                         ::testing::Values(TransportBackend::kSocket,
                                           TransportBackend::kUring),
                         [](const ::testing::TestParamInfo<TransportBackend>& info) {
                           return std::string(TransportBackendName(info.param));
                         });

TEST_P(MeshTransportTest, BasicSendReceive) {
  ExerciseTransport([this](uint16_t n) {
    auto owned = MakeCluster(n);
    std::vector<std::shared_ptr<Transport>> out;
    for (auto& t : owned) {
      out.emplace_back(std::move(t));
    }
    return out;
  });
}

TEST_P(MeshTransportTest, LargePayloadRoundTrip) {
  auto cluster = MakeCluster(2);
  Transport& t0 = *cluster[0];
  Transport& t1 = *cluster[1];

  std::vector<char> payload(64 * 1024);
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  MsgHeader h;
  h.set_type(MsgType::kWriteReply);
  ASSERT_TRUE(t0.Send(1, h, payload.data(), payload.size()).ok());
  std::vector<char> dest(payload.size());
  MsgHeader got;
  auto polled = t1.Poll(1, &got,
                        [&dest](const MsgHeader&) -> std::byte* {
                          return reinterpret_cast<std::byte*>(dest.data());
                        },
                        2000000);
  ASSERT_TRUE(polled.ok() && *polled);
  EXPECT_EQ(dest, payload);
}

TEST_P(MeshTransportTest, DroppedPayloadIsDrained) {
  auto cluster = MakeCluster(2);
  Transport& t0 = *cluster[0];
  Transport& t1 = *cluster[1];

  char payload[64] = {1, 2, 3};
  MsgHeader h;
  h.set_type(MsgType::kWriteReply);
  h.seq = 1;
  ASSERT_TRUE(t0.Send(1, h, payload, sizeof(payload)).ok());
  h.seq = 2;
  ASSERT_TRUE(t0.Send(1, h, nullptr, 0).ok());
  MsgHeader got;
  // First message's payload is dropped (nullptr sink) but must be consumed
  // so the next header is not misparsed.
  auto polled =
      t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 1000000);
  ASSERT_TRUE(polled.ok() && *polled);
  EXPECT_EQ(got.seq, 1u);
  polled = t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 1000000);
  ASSERT_TRUE(polled.ok() && *polled);
  EXPECT_EQ(got.seq, 2u);
  EXPECT_FALSE(got.has_payload());
}

// Without MSG_TRUNC the kernel silently truncates an oversized SEQPACKET
// datagram to the receive buffer: recv returns sizeof(MsgHeader), the excess
// bytes vanish, and a corrupt/mismatched sender goes undetected. The
// receiver must surface the oversize as an error instead — on both backends
// (the uring side reads the real size out of io_uring_recvmsg_out).
TEST_P(MeshTransportTest, OversizedDatagramIsDetected) {
  auto mesh = SocketMesh::Create(2);
  ASSERT_TRUE(mesh.ok());
  std::vector<int> row0 = std::move(mesh->fds[0]);
  std::vector<int> row1 = std::move(mesh->fds[1]);
  mesh->fds.clear();
  // Host 0 stays a raw fd so the test can send a malformed datagram that
  // Transport::Send would never produce.
  auto t1 = MakeOne(1, std::move(row1));

  char oversized[sizeof(MsgHeader) + 16] = {};
  ASSERT_EQ(::send(row0[1], oversized, sizeof(oversized), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(oversized)));

  MsgHeader got;
  const auto polled = t1->Poll(
      1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 2000000);
  ASSERT_FALSE(polled.ok()) << "oversized header datagram was silently truncated";
  EXPECT_NE(polled.status().ToString().find("oversized"), std::string::npos)
      << polled.status().ToString();

  for (int fd : row0) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

// The mirror case: a datagram shorter than a header is reported, not padded.
TEST_P(MeshTransportTest, ShortDatagramIsDetected) {
  auto mesh = SocketMesh::Create(2);
  ASSERT_TRUE(mesh.ok());
  std::vector<int> row0 = std::move(mesh->fds[0]);
  std::vector<int> row1 = std::move(mesh->fds[1]);
  mesh->fds.clear();
  auto t1 = MakeOne(1, std::move(row1));

  char runt[8] = {};
  ASSERT_EQ(::send(row0[1], runt, sizeof(runt), MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof(runt)));

  MsgHeader got;
  const auto polled = t1->Poll(
      1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 2000000);
  ASSERT_FALSE(polled.ok());
  EXPECT_NE(polled.status().ToString().find("short"), std::string::npos)
      << polled.status().ToString();

  for (int fd : row0) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
}

// A header that goes out without its payload would desynchronize the
// SEQPACKET stream (the peer would parse the next header as payload). The
// sender must instead shut the connection down so the peer sees a clean EOF
// — a peer-down event, not garbage.
TEST_P(MeshTransportTest, PayloadSendFailureClosesConnection) {
  auto cluster = MakeCluster(2);
  Transport& t0 = *cluster[0];
  Transport& t1 = *cluster[1];

  std::atomic<int> peer_down{-1};
  t1.SetPeerDownHandler([&peer_down](HostId peer) { peer_down.store(peer); });

  char payload[128] = {5, 6, 7};
  MsgHeader h;
  h.set_type(MsgType::kReadReply);
  {
    FailpointAction inject;
    inject.kind = FailpointAction::Kind::kReturn;
    inject.max_hits = 1;
    FailpointScope scope("socket.send.payload_err", inject);
    const Status st = t0.Send(1, h, payload, sizeof(payload));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  }
  // The receiver drains any orphaned header, hits EOF, and reports host 0
  // down instead of misparsing the stream.
  MsgHeader got;
  for (int i = 0; i < 10 && peer_down.load() < 0; ++i) {
    auto polled =
        t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 100000);
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  }
  EXPECT_EQ(peer_down.load(), 0);
  // The sender's side is shut down too: further sends fail, not hang.
  EXPECT_FALSE(t0.Send(1, h, payload, sizeof(payload)).ok());
}

// A peer whose process dies (transport destroyed) must surface as an EOF-
// driven peer-down event on every surviving host.
TEST_P(MeshTransportTest, PeerDeathDeliversEof) {
  auto cluster = MakeCluster(2);
  Transport& t1 = *cluster[1];

  std::atomic<int> peer_down{-1};
  t1.SetPeerDownHandler([&peer_down](HostId peer) { peer_down.store(peer); });

  cluster[0].reset();  // host 0 "dies"

  MsgHeader got;
  for (int i = 0; i < 20 && peer_down.load() < 0; ++i) {
    auto polled =
        t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 100000);
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    EXPECT_FALSE(*polled);
  }
  EXPECT_EQ(peer_down.load(), 0);
}

// An EINTR storm must not restart the poll budget from scratch each time:
// the wait resumes with the remaining time, so the caller's deadline holds.
TEST_P(MeshTransportTest, PollEintrStormKeepsDeadline) {
  auto cluster = MakeCluster(2);
  Transport& t1 = *cluster[1];

  FailpointAction inject;
  inject.kind = FailpointAction::Kind::kReturn;
  inject.max_hits = 50;  // 50 consecutive interrupted waits
  FailpointScope scope("socket.poll.eintr", inject);
  MsgHeader got;
  const uint64_t t_start = MonotonicNowNs();
  auto polled =
      t1.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 100000);
  const uint64_t elapsed_ms = (MonotonicNowNs() - t_start) / 1000000;
  ASSERT_TRUE(polled.ok()) << polled.status().ToString();
  EXPECT_FALSE(*polled);
  // 100 ms budget; a restart-per-EINTR bug would take ~50x that.
  EXPECT_LT(elapsed_ms, 2000u);
}

// Backpressure: flood far more data than the 1 MiB socket buffer holds while
// the receiver drains concurrently. The socket backend blocks in send(2)
// until space frees (no partial datagrams under EAGAIN); the uring backend
// queues chains in user space and its parked SQEs complete as space frees.
// Either way: nothing lost, nothing reordered, nothing truncated.
TEST_P(MeshTransportTest, BackpressureFloodPreservesFifo) {
  auto cluster = MakeCluster(2);
  Transport& t0 = *cluster[0];
  Transport& t1 = *cluster[1];

  constexpr uint32_t kMessages = 2000;
  constexpr size_t kPayload = 2048;  // ~4 MiB total, 4x the socket buffer
  std::atomic<bool> all_received{false};
  std::thread sender([&] {
    std::vector<char> payload(kPayload);
    MsgHeader h;
    h.set_type(MsgType::kWriteReply);
    MsgHeader scratch;
    const auto drop = [](const MsgHeader&) -> std::byte* { return nullptr; };
    for (uint32_t i = 0; i < kMessages; ++i) {
      h.seq = i;
      std::memcpy(payload.data(), &i, sizeof(i));
      ASSERT_TRUE(t0.Send(1, h, payload.data(), payload.size()).ok());
    }
    // Deferred-submission transports need their owner to keep polling for
    // queued chains to finish (in the DSM the server thread does this).
    while (!all_received.load()) {
      (void)t0.Poll(0, &scratch, drop, 1000);
    }
  });

  std::vector<char> dest(kPayload);
  MsgHeader got;
  for (uint32_t i = 0; i < kMessages; ++i) {
    auto polled = t1.Poll(1, &got,
                          [&dest](const MsgHeader&) -> std::byte* {
                            return reinterpret_cast<std::byte*>(dest.data());
                          },
                          5000000);
    ASSERT_TRUE(polled.ok()) << polled.status().ToString();
    ASSERT_TRUE(*polled) << "flood stalled at message " << i;
    ASSERT_EQ(got.seq, i) << "reordered under backpressure";
    uint32_t tag = 0;
    std::memcpy(&tag, dest.data(), sizeof(tag));
    ASSERT_EQ(tag, i) << "payload mismatched its header";
  }
  all_received.store(true);
  sender.join();
}

// A burst window delivers everything exactly once, in order, regardless of
// backend (socket treats Begin/EndBurst as no-ops; uring defers submission
// and releases the whole burst with one enter).
TEST_P(MeshTransportTest, BurstWindowDeliversInOrder) {
  auto cluster = MakeCluster(3);
  Transport& t0 = *cluster[0];

  t0.BeginBurst();
  t0.BeginBurst();  // nested: only the outermost end releases
  for (uint32_t i = 0; i < 32; ++i) {
    MsgHeader h;
    h.set_type(MsgType::kAck);
    h.seq = i;
    ASSERT_TRUE(t0.Send(1 + (i % 2), h, nullptr, 0).ok());
  }
  t0.EndBurst();
  t0.EndBurst();

  for (HostId dst = 1; dst <= 2; ++dst) {
    uint32_t expect = dst - 1;
    MsgHeader got;
    for (int i = 0; i < 16; ++i) {
      auto polled = cluster[dst]->Poll(
          dst, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 2000000);
      ASSERT_TRUE(polled.ok() && *polled);
      EXPECT_EQ(got.seq, expect);
      expect += 2;
    }
  }
}

TEST(UringTransportTest, ProbeReportsSupport) {
  // Informational: always passes, but prints the verdict CI's probe greps.
  MP_LOG(Info) << "io_uring transport supported: "
               << (UringTransportSupported() ? "yes" : "no");
  SUCCEED();
}

TEST(UringTransportTest, FallsBackToSocketWhenUnsupported) {
  // The factory must produce a working transport no matter what was asked
  // for; on kernels with uring support this verifies the request is
  // honoured, elsewhere that the socket fallback engages.
  auto mesh = SocketMesh::Create(2);
  ASSERT_TRUE(mesh.ok());
  std::vector<int> row0 = std::move(mesh->fds[0]);
  std::vector<int> row1 = std::move(mesh->fds[1]);
  mesh->fds.clear();
  MeshTransport mt0 = MakeMeshTransport(TransportBackend::kUring, 0, std::move(row0));
  MeshTransport mt1 = MakeMeshTransport(TransportBackend::kUring, 1, std::move(row1));
  ASSERT_NE(mt0.transport, nullptr);
  ASSERT_NE(mt1.transport, nullptr);
  const TransportBackend expect = UringTransportSupported() ? TransportBackend::kUring
                                                            : TransportBackend::kSocket;
  EXPECT_EQ(mt0.active, expect);
  EXPECT_EQ(mt1.active, expect);

  MsgHeader h;
  h.set_type(MsgType::kAck);
  h.seq = 41;
  ASSERT_TRUE(mt0.transport->Send(1, h, nullptr, 0).ok());
  MsgHeader got;
  auto polled = mt1.transport->Poll(
      1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 1000000);
  ASSERT_TRUE(polled.ok() && *polled);
  EXPECT_EQ(got.seq, 41u);
}

TEST(FaultyTransportTest, DropAndDelayFilters) {
  InProcTransport inner(2);
  FaultyTransport faulty(&inner);

  MsgHeader h;
  h.set_type(MsgType::kAck);
  // First matching send is dropped silently; the second goes through.
  faulty.DropSends(1, MsgType::kAck, 1);
  ASSERT_TRUE(faulty.Send(1, h, nullptr, 0).ok());
  ASSERT_TRUE(faulty.Send(1, h, nullptr, 0).ok());
  EXPECT_EQ(faulty.sends_dropped(), 1u);
  MsgHeader got;
  auto polled =
      inner.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 100000);
  ASSERT_TRUE(polled.ok() && *polled);
  polled = inner.Poll(1, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 0);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(*polled) << "dropped message leaked through";

  // Inbound drop: the message vanishes between the wire and the caller.
  faulty.DropReceives(kAnyHost, MsgType::kAck, 1);
  ASSERT_TRUE(inner.Send(0, h, nullptr, 0).ok());
  polled = faulty.Poll(0, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 0);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(*polled);
  EXPECT_EQ(faulty.receives_dropped(), 1u);
}

TEST(FaultyTransportTest, KilledPeerFailsSendsAndRaisesPeerDown) {
  InProcTransport inner(2);
  FaultyTransport faulty(&inner);
  std::atomic<int> peer_down{-1};
  faulty.SetPeerDownHandler([&peer_down](HostId peer) { peer_down.store(peer); });

  faulty.KillPeer(1);
  EXPECT_TRUE(faulty.peer_dead(1));
  EXPECT_EQ(peer_down.load(), 1);
  MsgHeader h;
  h.set_type(MsgType::kAck);
  const Status st = faulty.Send(1, h, nullptr, 0);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kUnavailable);
  // In-flight traffic from the dead peer is discarded on receive.
  h.from = 1;
  ASSERT_TRUE(inner.Send(0, h, nullptr, 0).ok());
  MsgHeader got;
  auto polled =
      faulty.Poll(0, &got, [](const MsgHeader&) -> std::byte* { return nullptr; }, 0);
  ASSERT_TRUE(polled.ok());
  EXPECT_FALSE(*polled) << "dead peer's message leaked through";
  EXPECT_EQ(faulty.receives_dropped(), 1u);
}

}  // namespace
}  // namespace millipage
