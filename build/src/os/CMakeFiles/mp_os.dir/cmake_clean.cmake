file(REMOVE_RECURSE
  "CMakeFiles/mp_os.dir/fault_handler.cc.o"
  "CMakeFiles/mp_os.dir/fault_handler.cc.o.d"
  "CMakeFiles/mp_os.dir/mapping.cc.o"
  "CMakeFiles/mp_os.dir/mapping.cc.o.d"
  "CMakeFiles/mp_os.dir/memory_object.cc.o"
  "CMakeFiles/mp_os.dir/memory_object.cc.o.d"
  "libmp_os.a"
  "libmp_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
