// In-process transport: one mailbox (mutex + condvar + deque) per host.
// Payload bytes are staged once on send and copied to the sink's destination
// on receive, modeling the NIC DMA in/out of the paper's Myrinet path while
// keeping the DSM layer itself copy-free.

#ifndef SRC_NET_INPROC_TRANSPORT_H_
#define SRC_NET_INPROC_TRANSPORT_H_

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/net/transport.h"

namespace millipage {

class Histogram;

class InProcTransport : public Transport {
 public:
  explicit InProcTransport(uint16_t num_hosts);

  Status Send(HostId to, MsgHeader h, const void* payload, size_t len) override;
  Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                    uint64_t timeout_us) override;
  uint16_t num_hosts() const override { return static_cast<uint16_t>(boxes_.size()); }

 private:
  struct Item {
    MsgHeader h;
    std::vector<std::byte> payload;
  };
  struct Mailbox {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<Item> q;
  };

  std::vector<std::unique_ptr<Mailbox>> boxes_;
  // Datagram-size distribution ("net.send_bytes", global registry): header +
  // payload per Send, the figure batching compresses.
  Histogram* send_bytes_ = nullptr;
};

}  // namespace millipage

#endif  // SRC_NET_INPROC_TRANSPORT_H_
