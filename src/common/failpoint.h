// Named-failpoint registry: the fault-injection backbone of the chaos
// harness. A failpoint is a named site in the code that, when armed, makes
// the caller take an injected-failure branch (or sleep, log, or abort).
// Points are armed either programmatically (tests) or from the environment:
//
//   MILLIPAGE_FAILPOINTS="<name>=<rule>[;<name>=<rule>...]"
//   rule := action[(arg)][,prob=P][,times=N][,skip=S]
//   action := off | return | delay | print | panic
//
//   return(arg)  caller takes its failure branch; arg is the rule's operand
//                (e.g. a peer id or an error class), default 0
//   delay(us)    caller sleeps `us` microseconds, then proceeds normally
//   print        log one line when hit, proceed normally (tracing aid)
//   panic        abort the process at the site
//   prob=P       fire with probability P in [0,1] (default 1.0)
//   times=N      stop firing after N hits (default unlimited)
//   skip=S       let the first S matching evaluations pass (default 0)
//
// Example: kill peer 2 at the 40th transport send, and drop 10% of sends:
//   MILLIPAGE_FAILPOINTS="net.peer.die=return(2),skip=40,times=1;net.send.drop=return,prob=0.1"
//
// Probabilistic rules draw from a per-point xoshiro PRNG seeded from the
// registry seed (MILLIPAGE_FAILPOINT_SEED, default 0) and the point's name,
// so a given spec + seed reproduces the same injected-failure schedule.
//
// Evaluation cost when no point is armed is a single relaxed atomic load, so
// shipping failpoints in hot paths is free in production builds.

#ifndef SRC_COMMON_FAILPOINT_H_
#define SRC_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace millipage {

struct FailpointAction {
  enum class Kind : uint8_t {
    kOff,      // never fires
    kReturn,   // caller takes its injected-failure branch
    kDelayUs,  // caller sleeps `arg` microseconds, then proceeds
    kPrint,    // log the hit, proceed
    kPanic,    // abort the process
  };
  Kind kind = Kind::kOff;
  int64_t arg = 0;
  double probability = 1.0;
  uint64_t max_hits = 0;  // 0 = unlimited
  uint64_t skip = 0;      // pass through the first `skip` evaluations
};

struct FailpointHit {
  FailpointAction::Kind kind = FailpointAction::Kind::kOff;
  int64_t arg = 0;
};

class FailpointRegistry {
 public:
  // Process-wide instance. The first call arms points from
  // MILLIPAGE_FAILPOINTS / MILLIPAGE_FAILPOINT_SEED if set.
  static FailpointRegistry& Instance();

  // Parses the spec grammar above and arms the named points (points not
  // mentioned keep their current state).
  Status Configure(const std::string& spec);

  void Set(const std::string& name, const FailpointAction& action);
  void Clear(const std::string& name);
  void ClearAll();

  // Seed for probabilistic rules; affects points armed after the call.
  void SetSeed(uint64_t seed);

  // Evaluates `name`; returns the action to take when the point fires.
  // Side-effect kinds (delay/print/panic) are NOT applied — use Fire() for
  // that. Cheap no-op when nothing is armed.
  std::optional<FailpointHit> Eval(std::string_view name);

  // Evaluates `name` and applies delay/print/panic in place. Returns the
  // operand only for kReturn — the one kind the caller must branch on.
  std::optional<int64_t> Fire(std::string_view name);

  // Introspection (tests): evaluations of / hits on a point so far.
  uint64_t evals(const std::string& name) const;
  uint64_t hits(const std::string& name) const;

  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

 private:
  FailpointRegistry() = default;

  struct Point {
    FailpointAction action;
    Rng rng{0};
    uint64_t evals = 0;
    uint64_t hits = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Point, std::less<>> points_;
  std::atomic<size_t> armed_{0};  // fast-path gate: points with kind != kOff
  uint64_t seed_ = 0;
};

// RAII helper for tests: arms a point on construction, clears it on exit.
class FailpointScope {
 public:
  FailpointScope(std::string name, const FailpointAction& action)
      : name_(std::move(name)) {
    FailpointRegistry::Instance().Set(name_, action);
  }
  ~FailpointScope() { FailpointRegistry::Instance().Clear(name_); }

  FailpointScope(const FailpointScope&) = delete;
  FailpointScope& operator=(const FailpointScope&) = delete;

 private:
  std::string name_;
};

}  // namespace millipage

#endif  // SRC_COMMON_FAILPOINT_H_
