#include "src/multiview/minipage.h"

namespace millipage {

Result<MinipageId> MinipageTable::Define(uint32_t view, uint64_t offset, uint64_t length) {
  if (length == 0) {
    return Status::Invalid("minipage length must be > 0");
  }
  if (view >= by_view_.size()) {
    by_view_.resize(view + 1);
  }
  auto& index = by_view_[view];
  // Overlap check against neighbors in this view.
  auto next = index.lower_bound(offset);
  if (next != index.end() && next->first < offset + length) {
    return Status::Precondition("minipage overlaps successor in view");
  }
  if (next != index.begin()) {
    auto prev = std::prev(next);
    if (pages_[prev->second].end() > offset) {
      return Status::Precondition("minipage overlaps predecessor in view");
    }
  }
  Minipage mp;
  mp.id = static_cast<MinipageId>(pages_.size());
  mp.view = view;
  mp.offset = offset;
  mp.length = length;
  pages_.push_back(mp);
  index.emplace(offset, mp.id);
  return mp.id;
}

Status MinipageTable::ExtendLast(MinipageId id, uint64_t new_length) {
  if (id >= pages_.size()) {
    return Status::Invalid("ExtendLast: bad minipage id");
  }
  Minipage& mp = pages_[id];
  if (new_length < mp.length) {
    return Status::Invalid("ExtendLast: cannot shrink");
  }
  // Safe only if this is the last minipage in its view's address order.
  const auto& index = by_view_[mp.view];
  if (index.rbegin()->second != id) {
    return Status::Precondition("ExtendLast: minipage is not the last in its view");
  }
  mp.length = new_length;
  return Status::Ok();
}

const Minipage* MinipageTable::Lookup(uint32_t view, uint64_t offset) const {
  lookup_count_++;
  if (view >= by_view_.size()) {
    return nullptr;
  }
  const auto& index = by_view_[view];
  auto it = index.upper_bound(offset);
  if (it == index.begin()) {
    return nullptr;
  }
  --it;
  const Minipage& mp = pages_[it->second];
  if (offset >= mp.offset && offset < mp.end()) {
    return &mp;
  }
  return nullptr;
}

const Minipage* MinipageTable::LookupVpage(uint32_t view, uint64_t offset) const {
  lookup_count_++;
  if (view >= by_view_.size()) {
    return nullptr;
  }
  const uint64_t vp_start = (offset / PageSize()) * PageSize();
  const uint64_t vp_end = vp_start + PageSize();
  const auto& index = by_view_[view];
  // Last minipage starting before the end of the vpage; it is the only
  // candidate that can intersect [vp_start, vp_end).
  auto it = index.upper_bound(vp_end - 1);
  if (it == index.begin()) {
    return nullptr;
  }
  --it;
  const Minipage& mp = pages_[it->second];
  if (mp.end() > vp_start) {
    return &mp;
  }
  return nullptr;
}

}  // namespace millipage
