// FaultyTransport: a Transport decorator that injects every failure the DSM
// protocol must survive — send delays, send errors, dropped messages,
// one-shot peer death, and spurious poll wakeups (EINTR storms). It is the
// bridge between the failpoint registry (src/common/failpoint.h) and the
// messaging layer: chaos tests wrap a node's real transport in one of these
// and script failures either programmatically (the filter API below) or via
// MILLIPAGE_FAILPOINTS.
//
// Failpoint names consulted on every call:
//   net.send.delay  delay(us): sleep before forwarding a send
//   net.send.err    return:    fail the send with UNAVAILABLE, nothing sent
//   net.send.drop   return:    discard the message, report success (lost msg)
//   net.peer.die    return(p): declare peer p dead (one-shot with times=1;
//                              combine with skip=N for "dies at message N")
//   net.poll.eintr  return:    Poll reports a spurious empty wakeup
//
// A dead peer behaves like a crashed process: sends to it fail with
// UNAVAILABLE, everything it sends is discarded on receive, and the
// peer-down handler fires once.

#ifndef SRC_NET_FAULTY_TRANSPORT_H_
#define SRC_NET_FAULTY_TRANSPORT_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "src/common/host_set.h"
#include "src/net/transport.h"

namespace millipage {

inline constexpr HostId kAnyHost = 0xffff;

class FaultyTransport : public Transport {
 public:
  // Wildcard for the filter API below: matches every message type.
  static constexpr uint8_t kAnyType = 0;

  // `inner` must outlive this object. The decorator is installed per node:
  // it intercepts that node's sends and receives only.
  explicit FaultyTransport(Transport* inner);

  Status Send(HostId to, MsgHeader h, const void* payload, size_t len) override;
  Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                    uint64_t timeout_us) override;
  uint16_t num_hosts() const override { return inner_->num_hosts(); }

  // Burst windows pass straight through: batching is the inner transport's
  // business and injected faults apply per message either way.
  void BeginBurst() override { inner_->BeginBurst(); }
  void EndBurst() override { inner_->EndBurst(); }

  // Peer-down events from the inner transport (e.g. SEQPACKET EOF) are
  // forwarded, and injected deaths are raised on the same handler.
  void SetPeerDownHandler(PeerDownHandler handler) override;

  // ---- Programmatic fault script (deterministic, no RNG involved) --------

  // Declares `peer` dead: raises peer-down once, fails future sends to it,
  // discards everything already in flight from it.
  void KillPeer(HostId peer);
  bool peer_dead(HostId peer) const;

  // Discards the next `count` outgoing messages matching (to, type).
  // kAnyHost / kAnyType are wildcards.
  void DropSends(HostId to, MsgType type, uint32_t count);
  // Discards the next `count` inbound messages matching (from, type). A
  // dropped data message's payload is consumed into scratch so the stream
  // stays framed — the loss is invisible to the transport underneath.
  void DropReceives(HostId from, MsgType type, uint32_t count);

  // Delays every subsequent matching send by `us` microseconds (us = 0
  // clears the rule). `count` > 0 limits the rule to the next `count`
  // matching sends, after which it expires; 0 means until cleared.
  void DelaySends(HostId to, MsgType type, uint64_t us, uint32_t count = 0);

  // Delivers the next `count` inbound messages matching (from, type) twice:
  // once normally, then again on a later Poll — the shape of a retransmit
  // whose original was not lost. Header-only messages only (a duplicated
  // data message would need its payload stashed; the protocol's coherence
  // control traffic is all header-only).
  void DuplicateReceives(HostId from, MsgType type, uint32_t count);

  uint64_t sends_dropped() const;
  uint64_t receives_dropped() const;
  uint64_t receives_duplicated() const;

 private:
  struct Filter {
    HostId host = kAnyHost;   // destination (sends) / origin (receives)
    uint8_t type = kAnyType;  // MsgType, kAnyType = all
    uint32_t remaining = 0;   // messages left to affect
    uint64_t delay_us = 0;    // DelaySends only
  };

  static bool Matches(const Filter& f, HostId host, uint8_t type) {
    return (f.host == kAnyHost || f.host == host) &&
           (f.type == kAnyType || f.type == type);
  }

  // Consumes one drop credit for an inbound message; true = discard it.
  bool ConsumeReceiveDrop(const MsgHeader& h);

  Transport* const inner_;
  mutable std::mutex mu_;
  HostSet dead_;
  std::vector<Filter> send_drops_;
  std::vector<Filter> recv_drops_;
  std::vector<Filter> send_delays_;
  std::vector<Filter> recv_dups_;
  // Stashed copies (raw wire headers, epoch tag intact) awaiting re-delivery.
  std::vector<MsgHeader> dup_queue_;
  uint64_t sends_dropped_ = 0;
  uint64_t receives_dropped_ = 0;
  uint64_t receives_duplicated_ = 0;
};

}  // namespace millipage

#endif  // SRC_NET_FAULTY_TRANSPORT_H_
