# Empty compiler generated dependencies file for false_sharing_demo.
# This may be replaced when dependencies are built.
