// Unit tests for WaitSlots: seq encoding, per-slot FIFO reply queues (split
// transactions), the WaitFor deadline path, and AbortAll's sticky peer-down
// semantics.

#include <gtest/gtest.h>

#include <unistd.h>

#include <thread>

#include "src/common/time_util.h"
#include "src/dsm/wait_slots.h"

namespace millipage {
namespace {

MsgHeader Reply(uint32_t seq) {
  MsgHeader h;
  h.set_type(MsgType::kReadReply);
  h.seq = seq;
  return h;
}

TEST(WaitSlots, SeqEncodingRoundTrips) {
  const uint32_t seq = WaitSlots::MakeSeq(17, 0x00abcdefu);
  EXPECT_EQ(WaitSlots::SeqSlot(seq), 17u);
  EXPECT_EQ(WaitSlots::SeqGen(seq), 0x00abcdefu);
  // Generation 0 encodes as the raw slot value — the legacy wire format.
  EXPECT_EQ(WaitSlots::MakeSeq(5, 0), 5u);
  // The generation wraps at 24 bits without touching the slot byte.
  EXPECT_EQ(WaitSlots::SeqSlot(WaitSlots::MakeSeq(9, 0xffffffffu)), 9u);
}

TEST(WaitSlots, RepliesAreFifoPerSlot) {
  WaitSlots slots;
  const uint32_t slot = slots.Acquire();
  // Split transaction: several replies queued on one slot deliver in order.
  slots.Post(slot, Reply(100));
  slots.Post(slot, Reply(101));
  slots.Post(slot, Reply(102));
  EXPECT_EQ(slots.Wait(slot).seq, 100u);
  EXPECT_EQ(slots.Wait(slot).seq, 101u);
  EXPECT_EQ(slots.Wait(slot).seq, 102u);
}

TEST(WaitSlots, SlotsAreIndependent) {
  WaitSlots slots;
  const uint32_t a = slots.Acquire();
  const uint32_t b = slots.Acquire();
  slots.Post(b, Reply(2));
  slots.Post(a, Reply(1));
  EXPECT_EQ(slots.Wait(a).seq, 1u);
  EXPECT_EQ(slots.Wait(b).seq, 2u);
}

TEST(WaitSlots, WaitForTimesOut) {
  WaitSlots slots;
  const uint32_t slot = slots.Acquire();
  const uint64_t t0 = MonotonicNowNs();
  const Result<MsgHeader> r = slots.WaitFor(slot, 50);
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_GE(elapsed_ms, 40u);
  EXPECT_LT(elapsed_ms, 5000u);
}

TEST(WaitSlots, WaitForWakesOnPost) {
  WaitSlots slots;
  const uint32_t slot = slots.Acquire();
  std::thread poster([&slots, slot] {
    ::usleep(10 * 1000);
    slots.Post(slot, Reply(7));
  });
  const Result<MsgHeader> r = slots.WaitFor(slot, 5000);
  poster.join();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->seq, 7u);
}

TEST(WaitSlots, AbortWakesWaiterAndSticks) {
  WaitSlots slots;
  const uint32_t slot = slots.Acquire();
  std::thread aborter([&slots] {
    ::usleep(10 * 1000);
    slots.AbortAll(Status::Unavailable("peer host 1 is down"));
  });
  const Result<MsgHeader> r = slots.WaitFor(slot, 0);  // unbounded wait
  aborter.join();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
  EXPECT_TRUE(slots.aborted());
  // Sticky: every later wait fails immediately with the same reason.
  const Result<MsgHeader> again = slots.WaitFor(slot, 5000);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status(), r.status());
  // First reason wins.
  slots.AbortAll(Status::Internal("second reason"));
  EXPECT_EQ(slots.abort_status().code(), StatusCode::kUnavailable);
}

TEST(WaitSlots, QueuedRepliesDrainBeforeAbort) {
  WaitSlots slots;
  const uint32_t slot = slots.Acquire();
  slots.Post(slot, Reply(55));
  slots.AbortAll(Status::Unavailable("down"));
  // The already-delivered reply is not lost to the abort.
  const Result<MsgHeader> r = slots.WaitFor(slot, 1000);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->seq, 55u);
  EXPECT_FALSE(slots.WaitFor(slot, 1000).ok());
}

}  // namespace
}  // namespace millipage
