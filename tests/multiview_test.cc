// Unit tests for the MultiView substrate: minipage table, view sets,
// protection control, and the dynamic-layout allocator (with chunking and
// the page-based baseline).

#include <gtest/gtest.h>

#include <algorithm>
#include <csetjmp>
#include <csignal>
#include <map>
#include <utility>
#include <vector>

#include "src/common/metrics.h"

#include "src/multiview/allocator.h"
#include "src/multiview/minipage.h"
#include "src/multiview/static_layout.h"
#include "src/multiview/view_set.h"
#include "src/os/page.h"

namespace millipage {
namespace {

TEST(MinipageTable, DefineAndLookup) {
  MinipageTable mpt;
  auto id = mpt.Define(0, 0, 100);
  ASSERT_TRUE(id.ok());
  auto id2 = mpt.Define(1, 100, 100);
  ASSERT_TRUE(id2.ok());
  EXPECT_EQ(mpt.Lookup(0, 0)->id, *id);
  EXPECT_EQ(mpt.Lookup(0, 99)->id, *id);
  EXPECT_EQ(mpt.Lookup(0, 100), nullptr);
  EXPECT_EQ(mpt.Lookup(1, 150)->id, *id2);
  EXPECT_EQ(mpt.Lookup(2, 0), nullptr);
}

TEST(MinipageTable, RejectsOverlapInSameView) {
  MinipageTable mpt;
  ASSERT_TRUE(mpt.Define(0, 0, 100).ok());
  EXPECT_FALSE(mpt.Define(0, 50, 100).ok());
  EXPECT_FALSE(mpt.Define(0, 0, 10).ok());
  // Same range in a different view is the whole point of MultiView.
  EXPECT_TRUE(mpt.Define(1, 0, 100).ok());
}

TEST(MinipageTable, ExtendLastGrowsOnlyTail) {
  MinipageTable mpt;
  auto a = mpt.Define(0, 0, 100);
  ASSERT_TRUE(a.ok());
  EXPECT_TRUE(mpt.ExtendLast(*a, 200).ok());
  EXPECT_EQ(mpt.Get(*a).length, 200u);
  EXPECT_FALSE(mpt.ExtendLast(*a, 100).ok());  // cannot shrink
  auto b = mpt.Define(0, 300, 50);
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(mpt.ExtendLast(*a, 250).ok());  // no longer the tail
}

TEST(MinipageGeometry, VpageSpans) {
  Minipage mp;
  mp.offset = PageSize() - 16;
  mp.length = 32;
  EXPECT_EQ(mp.first_vpage(), 0u);
  EXPECT_EQ(mp.last_vpage(), 1u);
  EXPECT_EQ(mp.offset_in_vpage(), PageSize() - 16);
}

TEST(Allocator, RotatesViewsWithinPage) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 4);
  // Four 1 KB allocations fill one 4 KB page across four views (Figure 2).
  for (uint32_t i = 0; i < 4; ++i) {
    auto a = alloc.Allocate(1024);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->offset, i * 1024u);
    EXPECT_EQ(a->view, i);
  }
  // Fifth allocation starts the next page, back at view 0.
  auto a5 = alloc.Allocate(1024);
  ASSERT_TRUE(a5.ok());
  EXPECT_EQ(a5->offset, 4096u);
}

TEST(Allocator, SkipsToNextPageWhenViewsExhausted) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 2);  // only two views
  ASSERT_TRUE(alloc.Allocate(100).ok());
  ASSERT_TRUE(alloc.Allocate(100).ok());
  auto third = alloc.Allocate(100);
  ASSERT_TRUE(third.ok());
  // Page 0 is saturated (2 views); third allocation must move to page 1.
  EXPECT_EQ(third->offset, PageSize());
}

TEST(Allocator, LargeAllocationsArePageAligned) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 8);
  ASSERT_TRUE(alloc.Allocate(100).ok());
  auto big = alloc.Allocate(4096);
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(big->offset % PageSize(), 0u);
  EXPECT_EQ(mpt.Get(big->minipages[0]).length, 4096u);
}

TEST(Allocator, ChunkingAggregatesAllocations) {
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.chunking_level = 3;
  MinipageAllocator alloc(&mpt, 1 << 20, 8, opts);
  auto a = alloc.Allocate(100);
  auto b = alloc.Allocate(100);
  auto c = alloc.Allocate(100);
  auto d = alloc.Allocate(100);  // starts a new chunk
  ASSERT_TRUE(a.ok() && b.ok() && c.ok() && d.ok());
  EXPECT_EQ(a->minipages[0], b->minipages[0]);
  EXPECT_EQ(b->minipages[0], c->minipages[0]);
  EXPECT_NE(c->minipages[0], d->minipages[0]);
  EXPECT_EQ(a->view, c->view);
  // The chunk minipage covers all three members.
  const Minipage& mp = mpt.Get(a->minipages[0]);
  EXPECT_EQ(mp.offset, a->offset);
  EXPECT_GE(mp.end(), c->offset + 100);
}

TEST(Allocator, ChunkExtensionAcrossPageBoundary) {
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.chunking_level = 8;
  MinipageAllocator alloc(&mpt, 1 << 20, 8, opts);
  // 8 x 672-byte molecules = 5376 bytes: the chunk spans two vpages.
  MinipageId chunk = kInvalidMinipage;
  for (int i = 0; i < 8; ++i) {
    auto a = alloc.Allocate(672);
    ASSERT_TRUE(a.ok());
    if (chunk == kInvalidMinipage) {
      chunk = a->minipages[0];
    }
    EXPECT_EQ(a->minipages[0], chunk);
  }
  // Copy: the next Allocate's Define can reallocate the table's backing
  // store, which would dangle a reference.
  const Minipage mp = mpt.Get(chunk);
  EXPECT_GT(mp.last_vpage(), mp.first_vpage());
  // Next chunk must avoid the extended chunk's view on the shared vpage.
  auto next = alloc.Allocate(672);
  ASSERT_TRUE(next.ok());
  EXPECT_NE(next->view, mp.view);
}

TEST(Allocator, ChunkExtensionSurvivesTableGrowth) {
  // Chunk extension reads the chunk's geometry around mpt_->ExtendLast while
  // the table keeps growing (each new chunk is a Define, and Define's
  // push_back can reallocate the backing store). Enough allocations to force
  // several reallocations must still yield disjoint, in-bounds extents with
  // exact chunk geometry.
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.chunking_level = 4;
  MinipageAllocator alloc(&mpt, 1 << 20, 8, opts);
  constexpr int kAllocs = 256;  // 64 chunks -> multiple vector regrowths
  constexpr uint64_t kSize = 96;
  std::map<MinipageId, std::pair<uint64_t, uint64_t>> extent;  // id -> [min, max)
  uint64_t prev_end = 0;
  for (int i = 0; i < kAllocs; ++i) {
    auto a = alloc.Allocate(kSize);
    ASSERT_TRUE(a.ok()) << "allocation " << i << ": " << a.status().ToString();
    EXPECT_GE(a->offset, prev_end) << "allocation " << i << " overlaps its predecessor";
    prev_end = a->offset + a->size;
    ASSERT_EQ(a->minipages.size(), 1u);
    auto [it, fresh] = extent.emplace(a->minipages[0],
                                      std::make_pair(a->offset, a->offset + a->size));
    if (!fresh) {
      it->second.first = std::min(it->second.first, a->offset);
      it->second.second = std::max(it->second.second, a->offset + a->size);
    }
  }
  EXPECT_EQ(extent.size(), kAllocs / 4u);
  for (const auto& [id, span] : extent) {
    const Minipage& mp = mpt.Get(id);
    // The chunk minipage covers exactly its members' span.
    EXPECT_EQ(mp.offset, span.first) << "minipage " << id;
    EXPECT_EQ(mp.offset + mp.length, span.second) << "minipage " << id;
  }
}

TEST(Allocator, CloseChunkStartsNewMinipage) {
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.chunking_level = 4;
  MinipageAllocator alloc(&mpt, 1 << 20, 8, opts);
  auto a = alloc.Allocate(64);
  alloc.CloseChunk();
  auto b = alloc.Allocate(64);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a->minipages[0], b->minipages[0]);
}

TEST(Allocator, PageBasedModeSharesPages) {
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.page_based = true;
  MinipageAllocator alloc(&mpt, 1 << 20, 8, opts);
  auto a = alloc.Allocate(100);
  auto b = alloc.Allocate(100);
  ASSERT_TRUE(a.ok() && b.ok());
  // Both live on the same full-page minipage in view 0: false sharing.
  EXPECT_EQ(a->minipages[0], b->minipages[0]);
  EXPECT_EQ(mpt.Get(a->minipages[0]).length, PageSize());
  EXPECT_EQ(a->view, 0u);
  // A page-spanning allocation touches two page minipages.
  auto big = alloc.Allocate(2 * PageSize());
  ASSERT_TRUE(big.ok());
  EXPECT_GE(big->minipages.size(), 2u);
}

TEST(Allocator, ExactPageFillIsPageAlignedSingleMinipage) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 4);
  ASSERT_TRUE(alloc.Allocate(100).ok());  // dirty the first page
  auto a = alloc.Allocate(PageSize());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->offset % PageSize(), 0u);
  ASSERT_EQ(a->minipages.size(), 1u);
  const Minipage& mp = mpt.Get(a->minipages[0]);
  EXPECT_EQ(mp.length, PageSize());
  EXPECT_EQ(mp.first_vpage(), mp.last_vpage());  // exactly one vpage
  // A page-exact minipage ends exactly on the boundary; the next sub-page
  // allocation lands on a fresh page and may reuse view 0.
  auto next = alloc.Allocate(64);
  ASSERT_TRUE(next.ok());
  EXPECT_EQ(next->offset, a->offset + PageSize());
  EXPECT_EQ(next->view, 0u);
}

TEST(Allocator, RequestExactlyFillingPageRemainder) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 4);
  auto head = alloc.Allocate(1024);
  ASSERT_TRUE(head.ok());
  // Exactly fills the rest of page 0: must stay on page 0 (no spill) in the
  // next free view, ending flush on the boundary.
  auto tail = alloc.Allocate(PageSize() - 1024);
  ASSERT_TRUE(tail.ok());
  EXPECT_EQ(tail->offset, 1024u);
  EXPECT_EQ(tail->view, 1u);
  const Minipage& mp = mpt.Get(tail->minipages[0]);
  EXPECT_EQ(mp.end(), PageSize());
  EXPECT_EQ(mp.first_vpage(), 0u);
  EXPECT_EQ(mp.last_vpage(), 0u);
}

TEST(Allocator, SubPageRequestThatWouldSpanMovesToNextPage) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 4);
  ASSERT_TRUE(alloc.Allocate(104).ok());
  // From offset 104 this would straddle the page boundary; sub-page
  // minipages keep their <offset,length> inside one vpage, so the allocator
  // must restart it on page 1.
  auto a = alloc.Allocate(PageSize() - 50);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->offset, PageSize());
  const Minipage& mp = mpt.Get(a->minipages[0]);
  EXPECT_EQ(mp.first_vpage(), mp.last_vpage());
}

TEST(Allocator, MultiPageSpanIsOneMinipageAcrossVpages) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 4);
  const uint64_t size = 2 * PageSize() + 512;
  auto big = alloc.Allocate(size);
  ASSERT_TRUE(big.ok());
  ASSERT_EQ(big->minipages.size(), 1u);
  // Copy, not a reference: the follow-up Allocate below can grow the table.
  const Minipage mp = mpt.Get(big->minipages[0]);
  EXPECT_EQ(mp.length, size);
  EXPECT_EQ(mp.last_vpage() - mp.first_vpage(), 2u);  // spans three vpages
  EXPECT_EQ(big->view, 0u);
  // The tail vpage is only partially used; a small follow-up allocation may
  // share it but must take a different view.
  auto small = alloc.Allocate(64);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->offset / PageSize(), mp.last_vpage());
  EXPECT_NE(small->view, big->view);
}

TEST(Allocator, PageBasedSpanningRequestListsEveryMinipage) {
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.page_based = true;
  MinipageAllocator alloc(&mpt, 1 << 20, 4, opts);
  auto a = alloc.Allocate(3000);
  ASSERT_TRUE(a.ok());
  // Starts mid-page-0 and crosses into page 1: two page minipages, the first
  // shared with the earlier allocation (false sharing by construction).
  auto b = alloc.Allocate(3000);
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(b->minipages.size(), 2u);
  EXPECT_EQ(b->minipages[0], a->minipages[0]);
  EXPECT_EQ(mpt.Get(b->minipages[1]).offset, PageSize());
}

TEST(Allocator, DefaultAlignmentIsEightBytes) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 8);
  uint64_t prev_end = 0;
  for (uint64_t size : {3ull, 5ull, 7ull, 1ull, 9ull}) {
    auto a = alloc.Allocate(size);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->offset % 8, 0u) << "size " << size;
    EXPECT_GE(a->offset, prev_end);  // no overlap with the previous object
    prev_end = a->offset + size;
  }
}

TEST(Allocator, HonorsCustomAlignment) {
  MinipageTable mpt;
  AllocatorOptions opts;
  opts.alignment = 64;
  MinipageAllocator alloc(&mpt, 1 << 20, 8, opts);
  for (int i = 0; i < 4; ++i) {
    auto a = alloc.Allocate(10);
    ASSERT_TRUE(a.ok());
    EXPECT_EQ(a->offset % 64, 0u);
    EXPECT_EQ(a->offset, static_cast<uint64_t>(i) * 64);
  }
}

TEST(Allocator, ExhaustsObject) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 8192, 4);
  ASSERT_TRUE(alloc.Allocate(8000).ok());
  EXPECT_FALSE(alloc.Allocate(8000).ok());
}

TEST(Allocator, NoTwoMinipagesShareVpageAndView) {
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, 1 << 20, 6);
  // Mixed sizes, many allocations; verify the core MultiView invariant.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(alloc.Allocate(100 + (i * 37) % 900).ok());
  }
  // For each (view, vpage) pair count occupants.
  std::map<std::pair<uint32_t, uint64_t>, int> occupancy;
  for (size_t id = 0; id < mpt.size(); ++id) {
    const Minipage& mp = mpt.Get(static_cast<MinipageId>(id));
    for (uint64_t vp = mp.first_vpage(); vp <= mp.last_vpage(); ++vp) {
      occupancy[{mp.view, vp}]++;
    }
  }
  for (const auto& [key, count] : occupancy) {
    EXPECT_EQ(count, 1) << "view " << key.first << " vpage " << key.second;
  }
}

TEST(StaticLayoutTest, GeometryAndPopulate) {
  auto layout = StaticLayout::Create(4 * PageSize(), 8);
  ASSERT_TRUE(layout.ok());
  EXPECT_EQ(layout->minipage_size(), PageSize() / 8);
  EXPECT_EQ(layout->total_minipages(), 32u);
  const Minipage mp = layout->MinipageOf(PageSize() + 3 * layout->minipage_size() + 5);
  EXPECT_EQ(mp.view, 3u);
  EXPECT_EQ(mp.offset % layout->minipage_size(), 0u);
  MinipageTable mpt;
  ASSERT_TRUE(layout->Populate(&mpt).ok());
  EXPECT_EQ(mpt.size(), 32u);

  EXPECT_FALSE(StaticLayout::Create(PageSize(), 3).ok());  // 3 doesn't divide 4096
}

TEST(ViewSetTest, IndependentProtectionPerView) {
  auto vs = ViewSet::Create(PageSize() * 4, 3);
  ASSERT_TRUE(vs.ok());
  Minipage mp0;
  mp0.view = 0;
  mp0.offset = 0;
  mp0.length = 64;
  Minipage mp1 = mp0;
  mp1.view = 1;
  ASSERT_TRUE((*vs)->SetProtection(mp0, Protection::kReadWrite).ok());
  ASSERT_TRUE((*vs)->SetProtection(mp1, Protection::kReadOnly).ok());
  EXPECT_EQ((*vs)->GetProtection(mp0), Protection::kReadWrite);
  EXPECT_EQ((*vs)->GetProtection(mp1), Protection::kReadOnly);
  // Writing via view 0 is allowed and visible through the privileged view.
  *reinterpret_cast<int*>((*vs)->AppAddr(0, 0)) = 1234;
  EXPECT_EQ(*reinterpret_cast<const int*>((*vs)->PrivAddr(0)), 1234);
  // And through view 1 (read-only) the same physical bytes appear.
  EXPECT_EQ(*reinterpret_cast<const int*>((*vs)->AppAddr(1, 0)), 1234);
}

TEST(ViewSetTest, ResolveFindsViewAndOffset) {
  auto vs = ViewSet::Create(PageSize() * 2, 4);
  ASSERT_TRUE(vs.ok());
  uint32_t view = 99;
  uint64_t offset = 99;
  EXPECT_TRUE((*vs)->Resolve((*vs)->AppAddr(2, 100), &view, &offset));
  EXPECT_EQ(view, 2u);
  EXPECT_EQ(offset, 100u);
  int local = 0;
  EXPECT_FALSE((*vs)->Resolve(&local, &view, &offset));
  // The privileged view is not an application view.
  EXPECT_FALSE((*vs)->Resolve((*vs)->PrivAddr(0), &view, &offset));
}

// A grant round over N contiguous vpages must collapse into ONE ranged
// protection call — mv.prot_sets is the syscall counter, so the delta is the
// proof (N pages, 1 call instead of N).
TEST(ViewSetTest, ContiguousBatchCoalescesToOneRangedCall) {
  constexpr uint64_t kPages = 16;
  auto vs = ViewSet::Create(PageSize() * kPages, 1);
  ASSERT_TRUE(vs.ok());
  MetricsRegistry local;
  (*vs)->SetMetrics(&local);

  std::vector<Minipage> mps(kPages);
  for (uint64_t i = 0; i < kPages; ++i) {
    mps[i].view = 0;
    mps[i].offset = i * PageSize();
    mps[i].length = PageSize();
  }
  ASSERT_TRUE((*vs)->SetProtectionBatch(mps.data(), mps.size(), Protection::kReadWrite).ok());

  const MetricsSnapshot snap = local.Snapshot();
  EXPECT_EQ(snap.counters.at("mv.prot_sets"), 1u)
      << "a contiguous " << kPages << "-vpage round must cost one ranged call";
  EXPECT_EQ(snap.counters.at("mv.prot_set_pages"), kPages);
  for (const Minipage& mp : mps) {
    EXPECT_EQ((*vs)->GetProtection(mp), Protection::kReadWrite);
  }

  // Re-applying the same protection is a shadow-table no-op: no extra call.
  ASSERT_TRUE((*vs)->SetProtectionBatch(mps.data(), mps.size(), Protection::kReadWrite).ok());
  EXPECT_EQ(local.Snapshot().counters.at("mv.prot_sets"), 1u);

  // A gap splits the run: dropping every other vpage back to NoAccess must
  // cost one call per disjoint single-page run, not one giant call.
  std::vector<Minipage> odd;
  for (uint64_t i = 1; i < kPages; i += 2) {
    odd.push_back(mps[i]);
  }
  ASSERT_TRUE((*vs)->SetProtectionBatch(odd.data(), odd.size(), Protection::kNoAccess).ok());
  EXPECT_EQ(local.Snapshot().counters.at("mv.prot_sets"), 1u + odd.size());
  for (uint64_t i = 0; i < kPages; ++i) {
    EXPECT_EQ((*vs)->GetProtection(mps[i]),
              i % 2 == 1 ? Protection::kNoAccess : Protection::kReadWrite);
  }
}

}  // namespace
}  // namespace millipage
