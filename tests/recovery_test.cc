// Host-death recovery on the threaded stack: three hand-assembled nodes over
// one InProcTransport, each behind its own FaultyTransport so a test can
// declare a peer dead exactly when the cluster is quiescent. Each scenario
// kills one non-zero host and asserts the recovery subsystem's contract:
// survivors bump the membership epoch (never abort), an adopting shard
// rebuilds and serves the dead shard's minipages, and a minipage whose sole
// copy died surfaces as a per-access kNotFound — not a cluster failure.
//
// Kills are injected only at quiescent points (no request in flight touching
// the victim), mirroring the fail-stop model the recovery layer assumes; the
// deterministic simulator (sim_test) covers deaths at arbitrary points in
// the schedule.

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <thread>

#include "src/common/time_util.h"
#include "src/dsm/node.h"
#include "src/net/faulty_transport.h"
#include "src/net/inproc_transport.h"

namespace millipage {
namespace {

// Epoch bumps propagate through the server threads; every wait below must
// resolve well inside this budget or the recovery path has stalled.
constexpr uint64_t kRecoverBudgetMs = 5000;

DsmConfig RecoveryConfig() {
  DsmConfig cfg;
  cfg.num_hosts = 3;
  cfg.object_size = 1 << 20;
  cfg.manager_policy = ManagerPolicy::kSharded;  // recovery requires shards
  cfg.request_timeout_ms = 200;
  cfg.max_request_retries = 3;
  cfg.sync_timeout_ms = 5000;
  return cfg;
}

// Three nodes, each behind its own FaultyTransport. Killing host V means
// calling KillPeer(V) on every survivor's decorator: each raises peer-down
// locally, and the epoch-bump broadcast reconciles whoever learns second.
struct FaultyTrio {
  InProcTransport inner{3};
  FaultyTransport t0{&inner};
  FaultyTransport t1{&inner};
  FaultyTransport t2{&inner};
  std::unique_ptr<DsmNode> nodes[3];

  explicit FaultyTrio(const DsmConfig& cfg) {
    FaultyTransport* ts[3] = {&t0, &t1, &t2};
    for (HostId h = 0; h < 3; ++h) {
      Result<std::unique_ptr<DsmNode>> r = DsmNode::Create(cfg, h, ts[h]);
      MP_CHECK(r.ok()) << r.status().ToString();
      nodes[h] = std::move(*r);
    }
    for (auto& n : nodes) {
      n->Start();
    }
  }
  ~FaultyTrio() {
    for (auto& n : nodes) {
      n->BeginShutdown();
    }
    for (int h = 2; h >= 0; --h) {
      nodes[h]->Stop();
    }
  }

  DsmNode& node(HostId h) { return *nodes[h]; }

  // Declares `victim` dead on every survivor's transport.
  void Kill(HostId victim) {
    FaultyTransport* ts[3] = {&t0, &t1, &t2};
    for (HostId h = 0; h < 3; ++h) {
      if (h != victim) {
        ts[h]->KillPeer(victim);
      }
    }
  }

  // Waits until `host`'s membership epoch reaches `epoch`.
  [[nodiscard]] bool AwaitEpoch(HostId host, uint32_t epoch) {
    const uint64_t start = MonotonicNowNs();
    while (node(host).member_epoch() < epoch) {
      if ((MonotonicNowNs() - start) / 1000000 > kRecoverBudgetMs) {
        return false;
      }
      ::usleep(1000);
    }
    return true;
  }
};

// ---- Epoch bump: death is recovery, not abort ------------------------------

TEST(Recovery, PeerDeathBumpsEpochAndSurvivorsStayLive) {
  FaultyTrio trio(RecoveryConfig());
  trio.Kill(2);
  ASSERT_TRUE(trio.AwaitEpoch(0, 1)) << "host 0 never bumped";
  ASSERT_TRUE(trio.AwaitEpoch(1, 1)) << "host 1 never bumped";
  for (const HostId h : {HostId{0}, HostId{1}}) {
    EXPECT_EQ(trio.node(h).dead_mask(), 0b100u) << "host " << h;
    EXPECT_GE(trio.node(h).epoch_bumps(), 1u) << "host " << h;
    // Recovery, not the sticky abort: the node is still fully operational.
    EXPECT_TRUE(trio.node(h).health().ok()) << trio.node(h).health().ToString();
  }
  // Survivors can still synchronize. With three hosts the barrier shard
  // (kBarrierShardId mod 3) is host 2 — the victim — so this barrier only
  // completes if a survivor adopted the barrier queue and releases on the
  // two-host live quorum.
  Status st0, st1;
  std::thread b0([&] { st0 = trio.node(0).TryBarrier(); });
  std::thread b1([&] { st1 = trio.node(1).TryBarrier(); });
  b0.join();
  b1.join();
  EXPECT_TRUE(st0.ok()) << st0.ToString();
  EXPECT_TRUE(st1.ok()) << st1.ToString();
}

// ---- Shard failover: an adopter serves the dead shard's minipages ----------

TEST(Recovery, AdoptedShardRebuildsAndServesDeadShardsMinipage) {
  FaultyTrio trio(RecoveryConfig());
  DsmNode& n0 = trio.node(0);
  DsmNode& n2 = trio.node(2);

  // Two single-minipage allocations: id 0 hashes to shard 0, id 1 to shard 1.
  Result<GlobalAddr> a = n0.SharedMalloc(16 * sizeof(int));
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  n0.CloseChunk();
  Result<GlobalAddr> b = n0.SharedMalloc(16 * sizeof(int));
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  n0.CloseChunk();

  // Host 0 takes write access to shard 1's minipage and fills it, so when
  // shard 1 dies the *directory* is gone but a live copy survives on host 0.
  ASSERT_TRUE(n0.FaultService(b->view, b->offset, /*is_write=*/true).ok());
  int* data0 = reinterpret_cast<int*>(n0.AppPtr(*b));
  for (int i = 0; i < 16; ++i) {
    data0[i] = 9100 + i;
  }
  ::usleep(100 * 1000);  // quiesce: no transaction in flight at the kill

  trio.Kill(1);
  ASSERT_TRUE(trio.AwaitEpoch(0, 1));
  ASSERT_TRUE(trio.AwaitEpoch(2, 1));

  // Host 2 reads the adopted minipage: the surviving shard that now owns id 1
  // has no directory entry for it, rebuilds one by querying the live hosts
  // (finding host 0's copy), and forwards the fetch.
  const Status fetch = n2.FaultService(b->view, b->offset, /*is_write=*/false);
  ASSERT_TRUE(fetch.ok()) << fetch.ToString();
  const int* data2 = reinterpret_cast<const int*>(n2.AppPtr(*b));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(data2[i], 9100 + i) << "index " << i;
  }
  EXPECT_GE(n0.shards_adopted() + n2.shards_adopted(), 1u)
      << "no survivor recorded adopting the dead shard's id";
}

// ---- Copyset repair: sole-copy loss is a per-minipage error ----------------

TEST(Recovery, SoleCopyLossIsPerMinipageNotFound) {
  FaultyTrio trio(RecoveryConfig());
  DsmNode& n0 = trio.node(0);
  DsmNode& n1 = trio.node(1);
  DsmNode& n2 = trio.node(2);

  Result<GlobalAddr> a = n0.SharedMalloc(16 * sizeof(int));  // id 0, shard 0
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  n0.CloseChunk();
  Result<GlobalAddr> b = n0.SharedMalloc(16 * sizeof(int));  // id 1, shard 1
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  n0.CloseChunk();

  // Host 2 write-faults id 1: the write invalidates host 0's copy, leaving
  // host 2 the minipage's only replica. Its shard (host 1) survives the kill,
  // so what dies with host 2 is purely the data.
  ASSERT_TRUE(n2.FaultService(b->view, b->offset, /*is_write=*/true).ok());
  ::usleep(100 * 1000);  // let the invalidation round fully retire

  trio.Kill(2);
  ASSERT_TRUE(trio.AwaitEpoch(0, 1));
  ASSERT_TRUE(trio.AwaitEpoch(1, 1));

  // The shard declared the minipage lost during copyset repair...
  EXPECT_GE(n1.minipages_lost(), 1u);
  // ...and a survivor touching it gets a per-access error, not a hang or a
  // cluster abort.
  const Status lost = n0.FaultService(b->view, b->offset, /*is_write=*/false);
  ASSERT_FALSE(lost.ok());
  EXPECT_EQ(lost.code(), StatusCode::kNotFound) << lost.ToString();
  EXPECT_TRUE(n0.IsLost(1));

  // The loss is scoped to that one minipage: id 0 still reads and writes.
  EXPECT_TRUE(n0.FaultService(a->view, a->offset, /*is_write=*/true).ok());
  EXPECT_TRUE(n1.FaultService(a->view, a->offset, /*is_write=*/false).ok());
  EXPECT_TRUE(n0.health().ok());
  EXPECT_TRUE(n1.health().ok());
}

// ---- Metrics: the recovery counters are exported --------------------------

TEST(Recovery, RecoveryCountersAppearInMetricsSnapshot) {
  FaultyTrio trio(RecoveryConfig());
  trio.Kill(2);
  ASSERT_TRUE(trio.AwaitEpoch(0, 1));

  MetricsSnapshot snap = trio.node(0).SnapshotMetrics();
  const std::string json = snap.DumpJson();
  for (const char* key : {"dsm.epoch_bumps", "dsm.shards_adopted",
                          "dsm.copyset_repairs", "dsm.minipages_lost"}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
  EXPECT_GE(snap.counters.at("dsm.epoch_bumps"), 1u);
  // The detect-to-done recovery latency histogram recorded the repair.
  EXPECT_NE(json.find("dsm.recovery_ns"), std::string::npos);
}

}  // namespace
}  // namespace millipage
