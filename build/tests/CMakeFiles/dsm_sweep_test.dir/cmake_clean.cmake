file(REMOVE_RECURSE
  "CMakeFiles/dsm_sweep_test.dir/dsm_sweep_test.cc.o"
  "CMakeFiles/dsm_sweep_test.dir/dsm_sweep_test.cc.o.d"
  "dsm_sweep_test"
  "dsm_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsm_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
