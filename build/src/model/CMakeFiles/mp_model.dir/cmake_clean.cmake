file(REMOVE_RECURSE
  "CMakeFiles/mp_model.dir/cost_model.cc.o"
  "CMakeFiles/mp_model.dir/cost_model.cc.o.d"
  "libmp_model.a"
  "libmp_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
