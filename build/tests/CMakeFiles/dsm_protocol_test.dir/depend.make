# Empty dependencies file for dsm_protocol_test.
# This may be replaced when dependencies are built.
