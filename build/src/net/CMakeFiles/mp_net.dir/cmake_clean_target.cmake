file(REMOVE_RECURSE
  "libmp_net.a"
)
