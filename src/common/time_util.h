// Clock helpers. MonotonicNowNs is the benchmark timebase; ThreadCpuNs is
// used when a per-thread compute measurement is wanted on a loaded machine.

#ifndef SRC_COMMON_TIME_UTIL_H_
#define SRC_COMMON_TIME_UTIL_H_

#include <time.h>

#include <cstdint>

namespace millipage {

inline uint64_t MonotonicNowNs() {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL + static_cast<uint64_t>(ts.tv_nsec);
}

inline uint64_t ThreadCpuNs() {
  struct timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<uint64_t>(ts.tv_sec) * 1000000000ULL + static_cast<uint64_t>(ts.tv_nsec);
}

class StopWatch {
 public:
  StopWatch() : start_ns_(MonotonicNowNs()) {}
  void Reset() { start_ns_ = MonotonicNowNs(); }
  uint64_t ElapsedNs() const { return MonotonicNowNs() - start_ns_; }
  double ElapsedUs() const { return static_cast<double>(ElapsedNs()) / 1000.0; }
  double ElapsedMs() const { return static_cast<double>(ElapsedNs()) / 1e6; }

 private:
  uint64_t start_ns_;
};

}  // namespace millipage

#endif  // SRC_COMMON_TIME_UTIL_H_
