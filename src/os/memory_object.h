// MemoryObject: the POSIX analog of the Windows NT "memory section" the
// paper creates with CreateFileMapping. One anonymous, page-backed kernel
// object that any number of views can map (MapViewOfFile ≙ mmap(MAP_SHARED)).

#ifndef SRC_OS_MEMORY_OBJECT_H_
#define SRC_OS_MEMORY_OBJECT_H_

#include <cstddef>
#include <string>

#include "src/common/status.h"

namespace millipage {

class MemoryObject {
 public:
  // Creates an anonymous shared memory object of `size` bytes (rounded up to
  // a page multiple). `name` is a debugging label only.
  static Result<MemoryObject> Create(size_t size, const std::string& name = "millipage");

  MemoryObject() = default;
  ~MemoryObject();

  MemoryObject(MemoryObject&& other) noexcept;
  MemoryObject& operator=(MemoryObject&& other) noexcept;
  MemoryObject(const MemoryObject&) = delete;
  MemoryObject& operator=(const MemoryObject&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  size_t size() const { return size_; }

 private:
  MemoryObject(int fd, size_t size) : fd_(fd), size_(size) {}

  int fd_ = -1;
  size_t size_ = 0;
};

}  // namespace millipage

#endif  // SRC_OS_MEMORY_OBJECT_H_
