// Twin/diff machinery in the style of Munin/TreadMarks, referenced by the
// paper as the cost it avoids: "a run-length diff operation for a 4KB page
// takes 250 us ... this time is not negligible, and would have dominated the
// overhead if it were required in the dsm protocol" (Section 4.2).
//
// A twin is a pristine copy taken before writes; a diff is a run-length
// encoding of the words that changed relative to the twin; ApplyDiff patches
// a remote copy.

#ifndef SRC_DIFF_DIFF_H_
#define SRC_DIFF_DIFF_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/common/status.h"

namespace millipage {

// Pristine pre-write copy of a memory region.
class Twin {
 public:
  Twin(const void* src, size_t len);

  const std::byte* data() const { return copy_.data(); }
  size_t size() const { return copy_.size(); }

 private:
  std::vector<std::byte> copy_;
};

// Run-length diff record stream. Wire format: repeated
//   { uint32 offset; uint32 length; length bytes }
// with offsets strictly increasing.
struct Diff {
  std::vector<std::byte> encoded;

  size_t size_bytes() const { return encoded.size(); }
  bool empty() const { return encoded.empty(); }
};

// Encodes the run-length diff of `current` against `twin` (same length).
// Comparison granularity is one byte; adjacent changed bytes coalesce into
// runs, and runs separated by fewer than `merge_gap` unchanged bytes are
// merged (classic diff compaction trade-off).
Diff CreateDiff(const Twin& twin, const void* current, size_t len, size_t merge_gap = 4);

// Applies `diff` onto `target` (length `len`). Fails on malformed input or
// out-of-range records.
Status ApplyDiff(const Diff& diff, void* target, size_t len);

// Number of distinct runs in a diff (diagnostics).
size_t DiffRunCount(const Diff& diff);

}  // namespace millipage

#endif  // SRC_DIFF_DIFF_H_
