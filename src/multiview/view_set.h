// ViewSet: one memory object mapped n+1 times — n application views whose
// vpage protections are manipulated independently, plus the privileged view,
// permanently ReadWrite, used by DSM server threads for atomic in-place
// updates and zero-copy sends/receives (Section 2.3.1 of the paper).

#ifndef SRC_MULTIVIEW_VIEW_SET_H_
#define SRC_MULTIVIEW_VIEW_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/multiview/minipage.h"
#include "src/os/mapping.h"
#include "src/os/memory_object.h"
#include "src/os/page.h"
#include "src/os/protection.h"

namespace millipage {

class ViewSet {
 public:
  // Creates the memory object (object_size bytes, page-rounded) and maps
  // num_app_views application views (initially NoAccess) plus the privileged
  // view (ReadWrite).
  static Result<std::unique_ptr<ViewSet>> Create(size_t object_size, uint32_t num_app_views);

  uint32_t num_app_views() const { return static_cast<uint32_t>(app_views_.size()); }
  size_t object_size() const { return object_.size(); }
  size_t vpages_per_view() const { return object_.size() / PageSize(); }

  std::byte* app_base(uint32_t view) const { return app_views_[view].base(); }
  std::byte* priv_base() const { return priv_view_.base(); }

  // Application-view address of (view, object offset), and the privileged
  // address of an object offset — the paper's addr2priv translation.
  std::byte* AppAddr(uint32_t view, uint64_t offset) const {
    return app_views_[view].base() + offset;
  }
  std::byte* PrivAddr(uint64_t offset) const { return priv_view_.base() + offset; }

  // Resolves a pointer that may lie in any application view of this set.
  // Returns false if the address is outside every application view.
  bool Resolve(const void* addr, uint32_t* view, uint64_t* offset) const;

  // True if addr lies in any application view.
  bool ContainsAppAddr(const void* addr) const {
    uint32_t v;
    uint64_t o;
    return Resolve(addr, &v, &o);
  }

  // Sets the protection of every vpage the minipage occupies, in its
  // associated view, and records it in the shadow table.
  Status SetProtection(const Minipage& mp, Protection prot);

  // Shadow-table read (the Table 1 "get protection" operation).
  Protection GetProtection(const Minipage& mp) const;

  // Shadow protection of one vpage in one view (used by prefetch, which has
  // no minipage descriptor on non-manager hosts).
  Protection GetVpageProtection(uint32_t view, uint64_t vpage) const {
    return static_cast<Protection>(shadow_[view][vpage].load(std::memory_order_acquire));
  }

  // Protects every vpage of every application view (bulk setup).
  Status ProtectAllAppViews(Protection prot);

  // Attaches a history recorder: every successful SetProtection emits a
  // kProtSet event stamped with this host id. nullptr detaches.
  void SetTrace(TraceSink* trace, uint16_t host) {
    trace_ = trace;
    trace_host_ = host;
  }

  // Re-homes the mv.* metrics into `registry` (DsmNode points them at its
  // per-host registry; standalone view sets default to the process-global
  // one). Counters only on this path — a scoped timer would be a measurable
  // fraction of a single-page mprotect; the mprotect latency curve lives in
  // bench_micro_primitives instead.
  void SetMetrics(MetricsRegistry* registry) {
    prot_sets_ = registry->GetCounter("mv.prot_sets");
    prot_set_pages_ = registry->GetCounter("mv.prot_set_pages");
  }

 private:
  ViewSet() = default;

  MemoryObject object_;
  std::vector<Mapping> app_views_;
  Mapping priv_view_;
  // Shadow protection, one byte per (view, vpage). Concurrent readers and
  // the per-minipage-serialized writers use relaxed atomics.
  std::vector<std::unique_ptr<std::atomic<uint8_t>[]>> shadow_;

  TraceSink* trace_ = nullptr;
  uint16_t trace_host_ = 0;
  Counter* prot_sets_ = nullptr;       // SetProtection calls (mprotect syscalls)
  Counter* prot_set_pages_ = nullptr;  // vpages those calls re-protected
};

}  // namespace millipage

#endif  // SRC_MULTIVIEW_VIEW_SET_H_
