#include "src/check/history_checker.h"

#include <cstdio>
#include <map>
#include <unordered_map>

#include "src/common/host_set.h"
#include "src/os/protection.h"

namespace millipage {

namespace {

CheckReport Violation(size_t index, std::string message) {
  CheckReport r;
  r.ok = false;
  r.violating_index = index;
  r.message = std::move(message);
  return r;
}

std::string HostList(const HostSet& set) {
  std::string s;
  set.ForEach([&](uint32_t h) {
    if (!s.empty()) {
      s += ",";
    }
    s += "h" + std::to_string(h);
  });
  return s;
}

// Decodes one kEpochBump trace event into the newly-dead host it announces.
// arg2 == 0 means the epoch advanced with no new death (a membership merge);
// otherwise arg2 is the dead host id + 1. Returns true when a host id was
// written to *host.
bool BumpDeadHost(const TraceEvent& e, uint32_t* host) {
  if (e.arg2 == 0) {
    return false;
  }
  *host = static_cast<uint32_t>(e.arg2 - 1);
  return true;
}

}  // namespace

std::string CheckReport::FormatViolation(const std::vector<TraceEvent>& history) const {
  if (ok) {
    return "";
  }
  std::string out = "invariant violation: " + message + "\n";
  out += "minimal violating history (" + std::to_string(violating_index + 1) +
         " events):\n";
  const std::vector<TraceEvent> prefix(history.begin(),
                                       history.begin() + violating_index + 1);
  out += FormatTraceHistory(prefix);
  return out;
}

CheckReport CheckSwmr(const std::vector<TraceEvent>& history, uint16_t num_hosts) {
  // Per minipage: set of hosts holding ReadOnly / ReadWrite copies, replayed
  // from the kProtSet stream.
  std::unordered_map<uint32_t, HostSet> readers;
  std::unordered_map<uint32_t, HostSet> writers;
  HostSet dead;
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind == TraceEventKind::kEpochBump) {
      // A dead host's copies cease to exist with it: no invalidation will
      // ever reach them, and they can never again be read. Drop them from
      // the model so post-recovery grants are not flagged against ghosts.
      uint32_t d = 0;
      if (BumpDeadHost(e, &d) && !dead.Contains(d)) {
        dead.Add(d);
        for (auto& [id, set] : readers) {
          set.Remove(d);
        }
        for (auto& [id, set] : writers) {
          set.Remove(d);
        }
      }
      continue;
    }
    if (e.kind != TraceEventKind::kProtSet) {
      continue;
    }
    if (e.host >= num_hosts) {
      return Violation(i, "kProtSet from out-of-range host " + std::to_string(e.host));
    }
    HostSet& rd = readers[e.minipage];
    HostSet& wr = writers[e.minipage];
    rd.Remove(e.host);
    wr.Remove(e.host);
    switch (static_cast<Protection>(e.arg1)) {
      case Protection::kNoAccess:
        break;
      case Protection::kReadOnly:
        rd.Add(e.host);
        break;
      case Protection::kReadWrite:
        wr.Add(e.host);
        break;
      default:
        return Violation(i, "kProtSet with unknown protection value " +
                                std::to_string(e.arg1));
    }
    if (wr.Count() > 1) {
      return Violation(i, "SWMR: minipage " + std::to_string(e.minipage) +
                              " writable on multiple hosts {" + HostList(wr) + "}");
    }
    if (!wr.Empty() && !rd.Empty()) {
      return Violation(i, "SWMR: minipage " + std::to_string(e.minipage) +
                              " writable on {" + HostList(wr) +
                              "} while read copies survive on {" + HostList(rd) +
                              "} (reader not invalidated before write grant)");
    }
  }
  return CheckReport{};
}

CheckReport CheckBarrierEpochs(const std::vector<TraceEvent>& history,
                               uint16_t num_hosts) {
  std::vector<uint64_t> next_gen(num_hosts, 0);
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind != TraceEventKind::kBarrierRelease) {
      continue;
    }
    if (e.host >= num_hosts) {
      return Violation(i, "barrier release on out-of-range host " +
                              std::to_string(e.host));
    }
    if (e.arg1 != next_gen[e.host]) {
      return Violation(i, "barrier epoch not monotonic on host " +
                              std::to_string(e.host) + ": observed generation " +
                              std::to_string(e.arg1) + ", expected " +
                              std::to_string(next_gen[e.host]));
    }
    next_gen[e.host]++;
  }
  return CheckReport{};
}

CheckReport CheckLockExclusivity(const std::vector<TraceEvent>& history) {
  // A grant is attributed to the shard that issued it: when that shard later
  // dies, its grant becomes unverifiable offline — the grant message may
  // have been purged in flight (the requester re-acquires at the adopter),
  // or the holder's release may have died with the shard (releases are
  // fire-and-forget, so a release sent before the sender learned of the
  // death leaves no trace). Either way the adopter's holder probe, not this
  // stale entry, is the ground truth, so a conflicting grant after the
  // issuing shard's death is an implicit release. Grants issued by live
  // shards stay strictly exclusive.
  struct Grant {
    uint64_t holder = 0;
    uint16_t shard = 0;
  };
  std::map<uint32_t, Grant> held;  // lock id -> current grant (no entry = free)
  // Death also implicitly releases by holder: a dead holder can never
  // unlock, and when the holder was the lock's shard no survivor even knows
  // it held the lock (the adopter's probe only finds LIVE holders).
  HostSet dead;
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind == TraceEventKind::kEpochBump) {
      uint32_t d = 0;
      if (BumpDeadHost(e, &d)) {
        dead.Add(d);
      }
      continue;
    }
    if (e.kind == TraceEventKind::kLockGrant) {
      auto it = held.find(e.minipage);
      if (it != held.end() && (dead.Contains(static_cast<uint32_t>(it->second.holder)) ||
                               dead.Contains(it->second.shard))) {
        held.erase(it);  // implicit release: dead holder or unverifiable grant
        it = held.end();
      }
      if (it != held.end()) {
        return Violation(i, "lock " + std::to_string(e.minipage) +
                                " granted to host " + std::to_string(e.arg1) +
                                " while held by host " +
                                std::to_string(it->second.holder));
      }
      held[e.minipage] = Grant{e.arg1, e.host};
    } else if (e.kind == TraceEventKind::kLockRelease) {
      auto it = held.find(e.minipage);
      if (it == held.end()) {
        // Repair releases a dead holder's lock idempotently; anything else
        // releasing a free lock is a protocol bug.
        if (dead.Contains(static_cast<uint32_t>(e.arg1))) {
          continue;
        }
        return Violation(i, "lock " + std::to_string(e.minipage) +
                                " released while free");
      }
      if (it->second.holder != e.arg1) {
        return Violation(i, "lock " + std::to_string(e.minipage) +
                                " released by host " + std::to_string(e.arg1) +
                                " but held by host " +
                                std::to_string(it->second.holder));
      }
      held.erase(it);
    }
  }
  return CheckReport{};
}

CheckReport CheckCoherenceOracle(const std::vector<TraceEvent>& history) {
  std::unordered_map<uint64_t, uint64_t> memory;  // packed addr -> last written value
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind == TraceEventKind::kAppWrite) {
      memory[e.addr] = e.arg1;
    } else if (e.kind == TraceEventKind::kAppRead) {
      const auto it = memory.find(e.addr);
      const uint64_t expected = it == memory.end() ? 0 : it->second;
      if (e.arg1 != expected) {
        char buf[160];
        snprintf(buf, sizeof(buf),
                 "coherence: host %u read %llx at addr %llx, but the latest write "
                 "there was %llx (stale copy served)",
                 e.host, (unsigned long long)e.arg1, (unsigned long long)e.addr,
                 (unsigned long long)expected);
        return Violation(i, buf);
      }
    }
  }
  return CheckReport{};
}

CheckReport CheckShardAffinity(const std::vector<TraceEvent>& history,
                               uint16_t num_hosts) {
  // The owning shard depends on membership: home slot id % num_hosts,
  // linear-probed past dead hosts. Replay the kEpochBump stream to track the
  // cumulative dead set in force at each point (the bump is traced before
  // any repair or adopted-id service on the same host, so trace order is
  // sufficient).
  HostSet dead;
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.kind == TraceEventKind::kEpochBump) {
      uint32_t d = 0;
      if (BumpDeadHost(e, &d)) {
        dead.Add(d);
      }
      continue;
    }
    switch (e.kind) {
      case TraceEventKind::kMgrSvcStart:
      case TraceEventKind::kMgrSvcEnd:
      case TraceEventKind::kMgrReadGrant:
      case TraceEventKind::kMgrWriteGrant:
      case TraceEventKind::kMgrInvalidate:
      case TraceEventKind::kLockGrant:
      case TraceEventKind::kLockRelease:
        break;
      default:
        continue;
    }
    uint16_t owner = static_cast<uint16_t>(e.minipage % num_hosts);
    for (uint16_t probe = 0; probe < num_hosts; ++probe) {
      const uint16_t c = static_cast<uint16_t>((owner + probe) % num_hosts);
      if (!dead.Contains(c)) {
        owner = c;
        break;
      }
    }
    if (e.host != owner) {
      return Violation(i, "shard affinity: " +
                              std::string(TraceEventKindName(e.kind)) + " for id " +
                              std::to_string(e.minipage) + " served by host " +
                              std::to_string(e.host) + ", but the id's shard is host " +
                              std::to_string(owner) + " (dead {" + HostList(dead) +
                              "})");
    }
  }
  return CheckReport{};
}

CheckReport CheckEpochMonotonicity(const std::vector<TraceEvent>& history,
                                   uint16_t num_hosts) {
  std::vector<uint32_t> epoch(num_hosts, 0);
  std::vector<HostSet> dead(num_hosts);
  // Trace index (plus one; zero = never) of each host's latest kEpochBump.
  // Epochs propagate asynchronously, so the granting shard's local epoch at
  // grant time says nothing about what the requester had observed — the
  // enforceable invariant is ordered per requester: once a host traces a
  // bump, its kicked retry must produce a FRESH grant, so any fault it
  // completes afterwards is backed by a grant traced after its own bump.
  std::vector<size_t> last_bump(num_hosts, 0);
  // (minipage, grantee) -> trace index of the latest grant.
  std::map<std::pair<uint32_t, uint64_t>, size_t> grant_index;
  for (size_t i = 0; i < history.size(); ++i) {
    const TraceEvent& e = history[i];
    if (e.host >= num_hosts) {
      continue;  // out-of-range hosts are CheckSwmr's complaint
    }
    switch (e.kind) {
      case TraceEventKind::kEpochBump: {
        const uint32_t new_epoch = static_cast<uint32_t>(e.arg1);
        if (new_epoch < epoch[e.host]) {
          return Violation(i, "membership epoch moved backwards on host " +
                                  std::to_string(e.host) + ": " +
                                  std::to_string(epoch[e.host]) + " -> " +
                                  std::to_string(new_epoch));
        }
        uint32_t d = 0;
        if (BumpDeadHost(e, &d)) {
          // One event per newly-dead host: a host a bump re-announces was
          // either resurrected (the dead set shrank in between, which this
          // encoding cannot even express) or double-counted by a buggy
          // newly-dead computation. Either way the per-host trace announces
          // each death exactly once.
          if (dead[e.host].Contains(d)) {
            return Violation(i, "host " + std::to_string(e.host) +
                                    " announced host " + std::to_string(d) +
                                    " dead twice (dead set must only grow)");
          }
          if (d == e.host) {
            return Violation(i, "host " + std::to_string(e.host) +
                                    " declared itself dead");
          }
          dead[e.host].Add(d);
        }
        epoch[e.host] = new_epoch;
        last_bump[e.host] = i + 1;
        break;
      }
      case TraceEventKind::kMgrReadGrant:
      case TraceEventKind::kMgrWriteGrant:
        grant_index[{e.minipage, e.arg1}] = i;
        break;
      case TraceEventKind::kFaultEnd: {
        const auto it = grant_index.find({e.minipage, e.host});
        if (it != grant_index.end() && last_bump[e.host] != 0 &&
            it->second < last_bump[e.host] - 1) {
          return Violation(i, "host " + std::to_string(e.host) +
                                  " completed a fault on minipage " +
                                  std::to_string(e.minipage) +
                                  " against a grant traced before its own "
                                  "epoch-" +
                                  std::to_string(epoch[e.host]) +
                                  " membership bump (pre-death grant honored "
                                  "after the bump)");
        }
        break;
      }
      default:
        break;
    }
  }
  return CheckReport{};
}

CheckReport CheckHistory(const std::vector<TraceEvent>& history, uint16_t num_hosts,
                         bool sharded_managers) {
  CheckReport r = CheckSwmr(history, num_hosts);
  if (!r.ok) {
    return r;
  }
  r = CheckBarrierEpochs(history, num_hosts);
  if (!r.ok) {
    return r;
  }
  r = CheckLockExclusivity(history);
  if (!r.ok) {
    return r;
  }
  if (sharded_managers) {
    r = CheckShardAffinity(history, num_hosts);
    if (!r.ok) {
      return r;
    }
  }
  r = CheckEpochMonotonicity(history, num_hosts);
  if (!r.ok) {
    return r;
  }
  return CheckCoherenceOracle(history);
}

}  // namespace millipage
