// Coherence-batching sweeps (`ctest -L batching`): the batched protocol
// (DsmConfig::batch_coherence, multi-record frames behind kFlagBatched) must
// be invisible to the application and to the consistency checker.
//
// Three claims, each swept over many seeds:
//   * equivalence — a phased script (disjoint writes, barrier, global reads,
//     barrier) produces a per-host application-event projection that is
//     byte-identical with batching on and off, under both manager policies;
//   * invariants — generated contended workloads stay checker-clean with
//     batching on, at 8 hosts (both policies) and at 128/256 hosts where
//     invalidation fan-out genuinely exceeds the old 64-host mask;
//   * crash-safety — kill-one-host schedules complete checker-clean with
//     batching on (batched frames to a dead destination are dropped whole,
//     copyset repair retires the round).
//
// Replay: MILLIPAGE_SIM_SEED=<seed> ./sim_test --gtest_filter='*ReplayEnvSeed*'

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/check/history_checker.h"
#include "src/check/sim_harness.h"

namespace millipage {
namespace {

// One round = every host writes its contiguous block of cells (host h owns
// cells [h·k, h·k+k) for k = cells/hosts), barrier, every host reads every
// cell, barrier. Within each phase the touched cells are disjoint (writes)
// or read-only (reads), so each host's sequence of application events — and
// every read's value — is fixed by the script, not by the message schedule.
// That is what makes the projection comparable across protocol variants
// that message differently.
//
// The block assignment (not residue classes) matters for sharding: shard s
// serves cells ≡ s mod hosts, so with k = 2 its two cells, s and s+hosts,
// are written by two *different* hosts (s/2 and s/2 + hosts/2). A worker
// blocks inside each write fault, so one writer never has two rounds in
// flight — only distinct concurrent writers can put two same-shard
// invalidation rounds in the air, the shape multi-record frames need.
std::vector<std::vector<SimOp>> PhasedScript(const SimWorkload& w) {
  const uint32_t k = w.cells / w.hosts;
  std::vector<std::vector<SimOp>> script(w.hosts);
  script[0].push_back({SimOpKind::kAlloc, 0});
  for (uint16_t h = 0; h < w.hosts; ++h) {
    script[h].push_back({SimOpKind::kBarrier, 0});
  }
  for (uint32_t round = 0; round < w.rounds; ++round) {
    for (uint16_t h = 0; h < w.hosts; ++h) {
      for (uint32_t c = h * k; c < (h + 1u) * k; ++c) {
        script[h].push_back({SimOpKind::kWrite, c});
      }
      script[h].push_back({SimOpKind::kBarrier, 0});
      for (uint32_t c = 0; c < w.cells; ++c) {
        script[h].push_back({SimOpKind::kRead, c});
      }
      script[h].push_back({SimOpKind::kBarrier, 0});
    }
  }
  return script;
}

// Per-host application-event projection: the ordered (op, cell, value)
// stream each host observed. Cross-host interleaving is schedule-dependent
// and deliberately excluded.
std::vector<std::string> AppProjection(const SimResult& r, uint16_t hosts) {
  std::vector<std::string> per_host(hosts);
  for (const TraceEvent& e : r.history) {
    if (e.kind != TraceEventKind::kAppRead && e.kind != TraceEventKind::kAppWrite) {
      continue;
    }
    per_host[e.host] += e.kind == TraceEventKind::kAppRead ? "R " : "W ";
    per_host[e.host] += std::to_string(e.minipage) + " = " + std::to_string(e.arg1) + "\n";
  }
  return per_host;
}

void CheckClean(uint64_t seed, const SimWorkload& w, const SimResult& r) {
  ASSERT_TRUE(r.status.ok()) << "seed " << seed << ": " << r.status.ToString() << "\n"
                             << r.FormattedHistory();
  ASSERT_GT(r.history.size(), 0u) << "seed " << seed << " recorded no events";
  const CheckReport report =
      CheckHistory(r.history, w.hosts, w.policy == ManagerPolicy::kSharded);
  ASSERT_TRUE(report.ok) << "seed " << seed << ":\n" << report.FormatViolation(r.history);
}

// ---- Equivalence: batching must not change what the application sees -------

void SweepEquivalence(ManagerPolicy policy) {
  SimWorkload w;
  w.hosts = 8;
  w.cells = 16;  // two cells per shard, so sharded runs can coalesce too
  w.rounds = 2;
  w.policy = policy;
  // MILLIPAGE_FAULT_BACKEND=uffd re-runs the sweep with the views wired to
  // the userfaultfd backend (the CI backend matrix sets it).
  w.backend = FaultBackendFromEnv();
  const std::vector<std::vector<SimOp>> script = PhasedScript(w);

  uint64_t batched_frames = 0;
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    SimWorkload on = w;
    on.batch_coherence = true;
    SimWorkload off = w;
    off.batch_coherence = false;
    const SimResult a = RunScript(seed, on, script);
    const SimResult b = RunScript(seed, off, script);
    CheckClean(seed, on, a);
    CheckClean(seed, off, b);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    EXPECT_EQ(b.batch_frames, 0u) << "unbatched run sent a batched frame";
    batched_frames += a.batch_frames;
    const std::vector<std::string> pa = AppProjection(a, w.hosts);
    const std::vector<std::string> pb = AppProjection(b, w.hosts);
    for (uint16_t h = 0; h < w.hosts; ++h) {
      ASSERT_EQ(pa[h], pb[h])
          << "seed " << seed << ", host " << h
          << ": batching changed the application-visible history";
    }
  }
  // The sweep must actually exercise multi-record frames, or the equivalence
  // claim is vacuous.
  EXPECT_GT(batched_frames, 0u) << "no schedule ever coalesced a frame";
}

TEST(SimBatching, BatchedMatchesUnbatchedCentralized) {
  SweepEquivalence(ManagerPolicy::kCentralized);
}

TEST(SimBatching, BatchedMatchesUnbatchedSharded) {
  SweepEquivalence(ManagerPolicy::kSharded);
}

// Determinism is preserved with batching on: same seed, same history.
TEST(SimBatching, SameSeedSameHistoryWithBatching) {
  SimWorkload w;
  w.hosts = 8;
  w.cells = 4;
  w.rounds = 2;
  w.ops_per_round = 4;
  w.backend = FaultBackendFromEnv();
  for (uint64_t seed : {3ull, 17ull}) {
    const SimResult a = RunSim(seed, w);
    const SimResult b = RunSim(seed, w);
    ASSERT_TRUE(a.status.ok()) << a.status.ToString();
    ASSERT_TRUE(b.status.ok()) << b.status.ToString();
    ASSERT_GT(a.history.size(), 0u);
    EXPECT_EQ(a.FormattedHistory(), b.FormattedHistory()) << "seed " << seed;
  }
}

// ---- Invariants: generated contended workloads, batching on ----------------

// `expect_frames`: whether the sweep's shape can plausibly coalesce at all.
// A wide sharded run with one cell per shard never puts two same-destination
// records in flight, so asserting frames there would only test the workload.
void SweepGenerated(uint16_t hosts, ManagerPolicy policy, uint64_t first_seed,
                    int seeds, bool expect_frames) {
  SimWorkload w;
  w.hosts = hosts;
  w.cells = hosts >= 128 ? 8 : 16;
  w.rounds = hosts >= 128 ? 1 : 2;
  w.ops_per_round = hosts >= 128 ? 2 : 4;
  w.use_locks = true;
  w.policy = policy;
  w.backend = FaultBackendFromEnv();
  uint64_t batched_frames = 0;
  for (uint64_t seed = first_seed; seed < first_seed + static_cast<uint64_t>(seeds);
       ++seed) {
    const SimResult r = RunSim(seed, w);
    CheckClean(seed, w, r);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
    batched_frames += r.batch_frames;
  }
  if (expect_frames) {
    EXPECT_GT(batched_frames, 0u) << "no schedule ever coalesced a frame";
  }
}

TEST(SimBatching, TwentySeedsEightHostsCentralized) {
  SweepGenerated(8, ManagerPolicy::kCentralized, 1, 20, /*expect_frames=*/true);
}

// Random scripts rarely line up two concurrent writers on the same shard,
// so frame coverage for the sharded policy is pinned by the phased
// equivalence sweep above, not here.
TEST(SimBatching, TwentySeedsEightHostsSharded) {
  SweepGenerated(8, ManagerPolicy::kSharded, 1, 20, /*expect_frames=*/false);
}

// Wide clusters: invalidation fan-out past the old 64-host mask ceiling with
// the batched dispatch path live. (Kept to a few seeds — each run spins up
// one worker thread per host.)
TEST(SimBatchingWide, Sharded128Hosts) {
  SweepGenerated(128, ManagerPolicy::kSharded, 1, 5, /*expect_frames=*/false);
}

TEST(SimBatchingWide, Sharded256Hosts) {
  SweepGenerated(256, ManagerPolicy::kSharded, 1, 3, /*expect_frames=*/false);
}

// ---- Crash-safety: kill one host mid-run, batching on ----------------------

void SweepKill(uint16_t hosts, uint64_t first_seed, int seeds) {
  SimWorkload w;
  w.hosts = hosts;
  w.cells = hosts >= 128 ? 8 : 4;
  w.rounds = hosts >= 128 ? 1 : 2;
  w.ops_per_round = hosts >= 128 ? 2 : 3;
  w.use_locks = true;
  w.policy = ManagerPolicy::kSharded;  // failover needs a sharded directory
  w.kill_one_host = true;
  w.backend = FaultBackendFromEnv();
  for (uint64_t seed = first_seed; seed < first_seed + static_cast<uint64_t>(seeds);
       ++seed) {
    const SimResult r = RunSim(seed, w);
    ASSERT_TRUE(r.status.ok()) << "seed " << seed << ": " << r.status.ToString() << "\n"
                               << r.FormattedHistory();
    ASSERT_TRUE(r.killed) << "seed " << seed << ": the kill never fired";
    ASSERT_NE(r.killed_host, 0) << "seed " << seed << " killed the allocator host";
    const CheckReport report = CheckHistory(r.history, w.hosts, /*sharded=*/true);
    ASSERT_TRUE(report.ok) << "seed " << seed << " (killed host " << r.killed_host
                           << "):\n"
                           << report.FormatViolation(r.history);
    if (::testing::Test::HasFatalFailure()) {
      return;
    }
  }
}

TEST(SimBatchingKill, TwentySeedsEightHosts) { SweepKill(8, 1, 20); }

TEST(SimBatchingKill, Sharded128Hosts) { SweepKill(128, 1, 3); }

}  // namespace
}  // namespace millipage
