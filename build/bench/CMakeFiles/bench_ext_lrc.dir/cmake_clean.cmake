file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_lrc.dir/bench_ext_lrc.cc.o"
  "CMakeFiles/bench_ext_lrc.dir/bench_ext_lrc.cc.o.d"
  "bench_ext_lrc"
  "bench_ext_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
