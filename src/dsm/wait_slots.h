// Wait slots: the per-thread events faulting threads block on while their
// request is serviced (the paper's pmsg->event). POSIX semaphores are used
// because sem_wait/sem_post are async-signal-safe, and the faulting thread
// waits from inside the SIGSEGV handler.

#ifndef SRC_DSM_WAIT_SLOTS_H_
#define SRC_DSM_WAIT_SLOTS_H_

#include <semaphore.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>

#include "src/common/logging.h"
#include "src/net/message.h"

namespace millipage {

class WaitSlots {
 public:
  static constexpr uint32_t kMaxSlots = 64;

  WaitSlots() {
    for (auto& s : slots_) {
      MP_CHECK(sem_init(&s.sem, 0, 0) == 0);
    }
  }
  ~WaitSlots() {
    for (auto& s : slots_) {
      sem_destroy(&s.sem);
    }
  }

  WaitSlots(const WaitSlots&) = delete;
  WaitSlots& operator=(const WaitSlots&) = delete;

  // Reserves a slot for a thread's lifetime.
  uint32_t Acquire() {
    const uint32_t id = next_.fetch_add(1, std::memory_order_relaxed);
    MP_CHECK(id < kMaxSlots) << "too many threads per host";
    return id;
  }

  // Blocks until a reply for `slot` arrives; returns the oldest undelivered
  // reply. Replies queue per slot, so split transactions (several requests
  // outstanding on one slot, e.g. a composed-view group fetch) deliver every
  // reply exactly once, in arrival order.
  MsgHeader Wait(uint32_t slot) {
    Slot& s = slots_[slot];
    while (sem_wait(&s.sem) != 0) {
      // Interrupted by a signal; retry.
    }
    std::lock_guard<std::mutex> lock(s.mu);
    MP_CHECK(!s.replies.empty()) << "semaphore/queue mismatch";
    const MsgHeader reply = s.replies.front();
    s.replies.pop_front();
    return reply;
  }

  // Deposits a reply and wakes the waiter.
  void Post(uint32_t slot, const MsgHeader& reply) {
    MP_CHECK(slot < kMaxSlots);
    Slot& s = slots_[slot];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.replies.push_back(reply);
    }
    sem_post(&s.sem);
  }

 private:
  struct Slot {
    sem_t sem;
    std::mutex mu;
    std::deque<MsgHeader> replies;
  };

  Slot slots_[kMaxSlots];
  std::atomic<uint32_t> next_{0};
};

}  // namespace millipage

#endif  // SRC_DSM_WAIT_SLOTS_H_
