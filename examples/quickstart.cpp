// Quickstart: the millipage DSM in ~60 lines.
//
// Creates an in-process cluster of 4 hosts (each with its own memory object,
// views, and protections — the same protocol a multi-machine deployment
// runs), allocates a shared counter and a shared array in fine-grain
// minipages, and lets every host work on them with plain loads and stores.
// First access to remote data takes a genuine SIGSEGV, the millipage
// protocol fetches the minipage, and the instruction retries — exactly the
// mechanism of Itzkovitz & Schuster's OSDI '99 paper.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

using namespace millipage;

int main() {
  DsmConfig config;
  config.num_hosts = 4;
  config.object_size = 1 << 20;  // 1 MiB of shared memory
  config.num_views = 8;          // up to 8 minipages per physical page

  auto cluster = DsmCluster::Create(config);
  if (!cluster.ok()) {
    std::fprintf(stderr, "cluster: %s\n", cluster.status().ToString().c_str());
    return 1;
  }

  // The manager host allocates shared data; the returned handles are valid
  // on every host.
  GlobalPtr<long> counter;
  GlobalPtr<long> partials;
  (*cluster)->RunOnManager([&](DsmNode&) {
    counter = SharedAlloc<long>(1);   // its own minipage: no false sharing
    partials = SharedAlloc<long>(4);  // one slot per host, one minipage
    *counter = 0;
    for (int i = 0; i < 4; ++i) {
      partials[i] = 0;
    }
  });

  // One application thread per host. Plain memory accesses drive the DSM.
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    long local = 0;
    for (long i = 1 + host; i <= 1000; i += 4) {
      local += i;  // private compute
    }
    partials[host] = local;  // write fault: this host takes the minipage

    node.Lock(0);  // cluster-wide lock, served by the manager
    *counter = *counter + local;
    node.Unlock(0);

    node.Barrier();  // cluster-wide barrier
    // After the barrier everyone observes everyone's writes (sequential
    // consistency): re-reads fault in fresh copies as needed.
    long sum = 0;
    for (int h = 0; h < 4; ++h) {
      sum += partials[h];
    }
    if (sum != *counter) {
      std::fprintf(stderr, "host %u: inconsistency!\n", host);
    }
    node.Barrier();
  });

  (*cluster)->RunOnManager([&](DsmNode& node) {
    std::printf("sum(1..1000) computed by 4 DSM hosts = %ld (expected 500500)\n", *counter);
    const HostCounters totals = (*cluster)->TotalCounters();
    std::printf("protocol activity: %lu read faults, %lu write faults, %lu messages\n",
                static_cast<unsigned long>(totals.read_faults),
                static_cast<unsigned long>(totals.write_faults),
                static_cast<unsigned long>(totals.messages_sent));
    (void)node;
  });
  return 0;
}
