// End-to-end smoke tests for the millipage DSM: genuine SIGSEGV faults,
// manager protocol, sequential consistency on an in-process cluster.

#include <gtest/gtest.h>

#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

DsmConfig SmallConfig(uint16_t hosts) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  return cfg;
}

TEST(DsmSmoke, SingleHostAllocateAndWrite) {
  auto cluster = DsmCluster::Create(SmallConfig(1));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  (*cluster)->RunOnManager([](DsmNode& node) {
    Result<GlobalAddr> a = node.SharedMalloc(64);
    ASSERT_TRUE(a.ok());
    auto* p = reinterpret_cast<int*>(node.AppPtr(*a));
    p[0] = 42;  // manager holds the initial writable copy: no fault
    EXPECT_EQ(p[0], 42);
  });
  EXPECT_EQ((*cluster)->manager().counters().read_faults, 0u);
  EXPECT_EQ((*cluster)->manager().counters().write_faults, 0u);
}

TEST(DsmSmoke, TwoHostsReadFault) {
  auto cluster = DsmCluster::Create(SmallConfig(2));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> shared;
  (*cluster)->RunOnManager([&shared](DsmNode&) {
    shared = SharedAlloc<int>(16);
    for (int i = 0; i < 16; ++i) {
      shared[i] = i * i;
    }
  });
  (*cluster)->RunParallel([&shared](DsmNode& node, HostId host) {
    if (host == 1) {
      for (int i = 0; i < 16; ++i) {
        EXPECT_EQ(shared[i], i * i);  // first access read-faults
      }
    }
    node.Barrier();
  });
  EXPECT_EQ((*cluster)->node(1).counters().read_faults, 1u);
  EXPECT_EQ((*cluster)->node(1).counters().read_fault_bytes, 64u);
}

TEST(DsmSmoke, WriteInvalidatesReaders) {
  auto cluster = DsmCluster::Create(SmallConfig(3));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> shared;
  (*cluster)->RunOnManager([&shared](DsmNode&) {
    shared = SharedAlloc<int>(1);
    *shared = 7;
  });
  (*cluster)->RunParallel([&shared](DsmNode& node, HostId host) {
    // Everyone reads the initial value.
    EXPECT_EQ(*shared, 7);
    node.Barrier();
    // Host 2 writes; all other copies must be invalidated.
    if (host == 2) {
      *shared = 99;
    }
    node.Barrier();
    // Everyone observes the new value (re-faulting as needed).
    EXPECT_EQ(*shared, 99);
    node.Barrier();
  });
  EXPECT_GE((*cluster)->node(2).counters().write_faults, 1u);
}

TEST(DsmSmoke, PingPongCounter) {
  auto cluster = DsmCluster::Create(SmallConfig(2));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> counter;
  (*cluster)->RunOnManager([&counter](DsmNode&) {
    counter = SharedAlloc<int>(1);
    *counter = 0;
  });
  constexpr int kRounds = 50;
  (*cluster)->RunParallel([&counter](DsmNode& node, HostId host) {
    for (int r = 0; r < kRounds; ++r) {
      node.Lock(0);
      *counter = *counter + 1;
      node.Unlock(0);
    }
    node.Barrier();
    EXPECT_EQ(*counter, 2 * kRounds);
    node.Barrier();
  });
}

TEST(DsmSmoke, FalseSharingIsAvoided) {
  // Two ints in the same physical page but different minipages: concurrent
  // writers never steal each other's minipage.
  auto cluster = DsmCluster::Create(SmallConfig(2));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> a, b;
  (*cluster)->RunOnManager([&](DsmNode&) {
    a = SharedAlloc<int>(1);
    b = SharedAlloc<int>(1);
    *a = 0;
    *b = 0;
  });
  // The two allocations share a page but live in different views.
  EXPECT_EQ(a.addr().offset / 4096, b.addr().offset / 4096);
  EXPECT_NE(a.addr().view, b.addr().view);

  constexpr int kIters = 200;
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    if (host == 0) {
      for (int i = 0; i < kIters; ++i) {
        *a = *a + 1;
      }
    } else {
      for (int i = 0; i < kIters; ++i) {
        *b = *b + 1;
      }
    }
    node.Barrier();
    EXPECT_EQ(*a, kIters);
    EXPECT_EQ(*b, kIters);
    node.Barrier();
  });
  // After the first write fault each host owns its own minipage: at most a
  // handful of faults, not one per iteration.
  EXPECT_LE((*cluster)->node(0).counters().write_faults, 3u);
  EXPECT_LE((*cluster)->node(1).counters().write_faults, 3u);
}

}  // namespace
}  // namespace millipage
