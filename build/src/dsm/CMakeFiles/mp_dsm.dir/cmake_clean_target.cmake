file(REMOVE_RECURSE
  "libmp_dsm.a"
)
