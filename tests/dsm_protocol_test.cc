// Protocol-level DSM tests: directory state, competing requests, prefetch,
// push updates, locks, barriers, epochs, allocation failure, service modes,
// and a sequential-consistency stress.

#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <thread>

#include "src/common/failpoint.h"
#include "src/common/time_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/dsm/node.h"
#include "src/net/faulty_transport.h"
#include "src/net/inproc_transport.h"
#include "src/os/fault_handler.h"

namespace millipage {
namespace {

DsmConfig Cfg(uint16_t hosts) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  // MILLIPAGE_MANAGER_POLICY=sharded re-runs the whole suite with the
  // directory sharded across hosts (the CI matrix sets it).
  const char* policy = std::getenv("MILLIPAGE_MANAGER_POLICY");
  if (policy != nullptr && std::string(policy) == "sharded") {
    cfg.manager_policy = ManagerPolicy::kSharded;
  }
  // MILLIPAGE_FAULT_BACKEND=uffd likewise re-runs the suite with views wired
  // to the userfaultfd backend (falls back to sigsegv on old kernels).
  cfg.fault_backend = FaultBackendFromEnv();
  return cfg;
}

TEST(Protocol, UpgradeWriteAfterRead) {
  // A host holding the sole read copy upgrades in place: the write grant
  // carries no payload.
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(1);
    *p = 5;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      EXPECT_EQ(*p, 5);   // read fault: copy arrives
      *p = 6;             // manager still has a copy -> invalidation round
      EXPECT_EQ(*p, 6);
    }
    node.Barrier();
  });
  const HostCounters c1 = (*cluster)->node(1).counters();
  EXPECT_EQ(c1.read_faults, 1u);
  EXPECT_EQ(c1.write_faults, 1u);
  // The write was an upgrade (requester already held a copy): no data moved.
  EXPECT_EQ(c1.write_fault_bytes, 0u);
  // The manager's copy was invalidated.
  EXPECT_EQ((*cluster)->node(0).counters().invalidations_received, 1u);
}

TEST(Protocol, WriteMovesDataWhenRequesterHasNoCopy) {
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(16);
    p[3] = 33;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      p[0] = 1;  // write fault without prior copy: data must travel
      EXPECT_EQ(p[3], 33) << "rest of the minipage must arrive with the grant";
    }
    node.Barrier();
  });
  const HostCounters c1 = (*cluster)->node(1).counters();
  EXPECT_EQ(c1.write_faults, 1u);
  EXPECT_EQ(c1.write_fault_bytes, 64u);
}

TEST(Protocol, CompetingRequestsAreCountedAndServed) {
  // Many hosts read-fault the same minipage at once; the manager serves them
  // one at a time (ACK-serialized) and counts the queued ones.
  auto cluster = DsmCluster::Create(Cfg(6));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(1);
    *p = 1234;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId) {
    node.Barrier();  // line everyone up
    EXPECT_EQ(*p, 1234);
    node.Barrier();
  });
  const ManagerCounters mc = (*cluster)->TotalManagerCounters();
  EXPECT_GE(mc.requests_served, 5u);
  // At least some of the simultaneous faults must have queued. Under the
  // userfaultfd backend the in-process cluster funnels every host's faults
  // through one poller thread, so requests are serialized before they reach
  // the manager and nothing can queue — the counter stays 0 by construction.
  if (FaultBackendFromEnv() != FaultBackend::kUserfaultfd) {
    EXPECT_GE(uint64_t{(*cluster)->TotalCounters().competing_requests}, 1u);
  }
}

TEST(Protocol, PrefetchAvoidsBlockingFault) {
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(64);
    p[7] = 77;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      node.Prefetch(p.addr());
      // Give the asynchronous fetch time to land, then the access must not
      // fault (the vpage is already readable).
      for (int spin = 0; spin < 2000; ++spin) {
        std::this_thread::yield();
        const uint64_t vpage = p.addr().offset / 4096;
        if (node.views().GetVpageProtection(p.addr().view, vpage) != Protection::kNoAccess) {
          break;
        }
      }
      EXPECT_EQ(p[7], 77);
    }
    node.Barrier();
  });
  const HostCounters c1 = (*cluster)->node(1).counters();
  EXPECT_EQ(c1.prefetches, 1u);
  EXPECT_GE(c1.prefetch_bytes, 256u);
  EXPECT_EQ(c1.read_faults, 0u);
}

TEST(Protocol, FetchGroupBatchesReads) {
  // Composed-view coarse read (Section 5): one split-transaction call pulls
  // a group of minipages; subsequent reads take no faults.
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  std::vector<GlobalPtr<int>> cells;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < 12; ++i) {
      cells.push_back(SharedAlloc<int>(8));
      cells.back()[0] = 10 * i;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      std::vector<GlobalAddr> addrs;
      for (const auto& c : cells) {
        addrs.push_back(c.addr());
      }
      const size_t fetched = node.FetchGroup(addrs.data(), addrs.size());
      EXPECT_EQ(fetched, 12u);
      for (int i = 0; i < 12; ++i) {
        EXPECT_EQ(cells[static_cast<size_t>(i)][0], 10 * i);  // no faults now
      }
      EXPECT_EQ(node.counters().read_faults, 0u);
      EXPECT_EQ(node.counters().prefetches, 12u);
      // Idempotent: a second group fetch finds everything present.
      EXPECT_EQ(node.FetchGroup(addrs.data(), addrs.size()), 0u);
    }
    node.Barrier();
  });
}

TEST(Protocol, FetchGroupWithDuplicatesAndWriterInterference) {
  auto cluster = DsmCluster::Create(Cfg(3));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> a;
  GlobalPtr<int> b;
  (*cluster)->RunOnManager([&](DsmNode&) {
    a = SharedAlloc<int>(4);
    b = SharedAlloc<int>(4);
    a[0] = 1;
    b[0] = 2;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    if (host == 1) {
      // Duplicate addresses into the same minipage are tolerated.
      GlobalAddr addrs[4] = {a.addr(), (a + 1).addr(), b.addr(), (b + 2).addr()};
      (void)node.FetchGroup(addrs, 4);
      EXPECT_EQ(a[0], 1);
      EXPECT_EQ(b[0], 2);
    }
    if (host == 2) {
      a[1] = 99;  // concurrent writer on the same minipage group
    }
    node.Barrier();
    EXPECT_EQ(a[1], 99);
    node.Barrier();
  });
}

TEST(Protocol, PushUpdateDistributesReadCopies) {
  auto cluster = DsmCluster::Create(Cfg(4));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(1);
    *p = 0;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    if (host == 2) {
      *p = 42;
      node.PushToAll(p.addr());
    }
    node.Barrier();
    // A fresh value must be readable; with the push the copy is already
    // local on every host.
    EXPECT_EQ(*p, 42);
    node.Barrier();
  });
  // After the push, reads hit local read-only copies. A host racing past the
  // barrier before its pushed copy lands may still fault once, so allow a
  // small number — without the push every host would fault.
  uint64_t read_faults_after = 0;
  for (uint16_t h = 0; h < 4; ++h) {
    read_faults_after += (*cluster)->node(h).counters().read_faults;
  }
  EXPECT_LE(read_faults_after, 3u) << "push must have installed copies everywhere";
}

TEST(Protocol, LocksAreExclusiveAndFifo) {
  auto cluster = DsmCluster::Create(Cfg(4));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(2);
    p[0] = 0;
    p[1] = 0;  // max-in-section marker
  });
  constexpr int kPerHost = 25;
  (*cluster)->RunParallel([&](DsmNode& node, HostId) {
    for (int i = 0; i < kPerHost; ++i) {
      node.Lock(3);
      const int in_section = p[1] + 1;
      p[1] = in_section;
      EXPECT_EQ(in_section, 1) << "two holders inside the critical section";
      p[0] = p[0] + 1;
      p[1] = in_section - 1;
      node.Unlock(3);
    }
    node.Barrier();
  });
  (*cluster)->RunOnManager([&](DsmNode&) { EXPECT_EQ(p[0], 4 * kPerHost); });
}

TEST(Protocol, BarriersReusableAcrossGenerations) {
  auto cluster = DsmCluster::Create(Cfg(3));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(1);
    *p = 0;
  });
  constexpr int kGenerations = 30;
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    for (int g = 0; g < kGenerations; ++g) {
      if (host == static_cast<HostId>(g % 3)) {
        *p = g;
      }
      node.Barrier();
      EXPECT_EQ(*p, g);
      node.Barrier();
    }
  });
  for (uint16_t h = 0; h < 3; ++h) {
    EXPECT_EQ((*cluster)->node(h).counters().barriers, 2u * kGenerations);
  }
}

TEST(Protocol, EpochRecordsTrackPerBarrierDeltas) {
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(1);
    *p = 0;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.AddWorkUnits(100);
    node.Barrier();  // epoch 0 closes
    if (host == 1) {
      EXPECT_EQ(*p, 0);  // one read fault in epoch 1
    }
    node.AddWorkUnits(50);
    node.Barrier();  // epoch 1 closes
  });
  const auto epochs1 = (*cluster)->node(1).epochs();
  ASSERT_EQ(epochs1.size(), 2u);
  EXPECT_EQ(epochs1[0].delta.work_units, 100u);
  EXPECT_EQ(epochs1[0].delta.read_faults, 0u);
  EXPECT_EQ(epochs1[1].delta.work_units, 50u);
  EXPECT_EQ(epochs1[1].delta.read_faults, 1u);
}

TEST(Protocol, AllocationFailureIsReported) {
  DsmConfig cfg = Cfg(1);
  cfg.object_size = 64 << 10;
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  (*cluster)->RunOnManager([](DsmNode& node) {
    auto ok = node.SharedMalloc(32 << 10);
    EXPECT_TRUE(ok.ok());
    auto too_big = node.SharedMalloc(1 << 20);
    EXPECT_FALSE(too_big.ok());
    EXPECT_EQ(too_big.status().code(), StatusCode::kResourceExhausted);
    // The DSM stays usable after a failed allocation.
    auto again = node.SharedMalloc(1 << 10);
    EXPECT_TRUE(again.ok());
  });
}

class ServiceModes : public ::testing::TestWithParam<ServiceMode> {};

TEST_P(ServiceModes, ProtocolWorksUnderEachServiceDiscipline) {
  DsmConfig cfg = Cfg(2);
  cfg.service_mode = GetParam();
  cfg.service_period_us = 200;
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(1);
    *p = 9;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      EXPECT_EQ(*p, 9);
      *p = 10;
    }
    node.Barrier();
    EXPECT_EQ(*p, 10);
    node.Barrier();
  });
}

INSTANTIATE_TEST_SUITE_P(AllModes, ServiceModes,
                         ::testing::Values(ServiceMode::kBlocking, ServiceMode::kBusyPoll,
                                           ServiceMode::kPeriodic),
                         [](const auto& info) {
                           switch (info.param) {
                             case ServiceMode::kBlocking:
                               return "blocking";
                             case ServiceMode::kBusyPoll:
                               return "busypoll";
                             case ServiceMode::kPeriodic:
                               return "periodic";
                           }
                           return "unknown";
                         });

// Regression: a reply that arrives after the requester has timed out and
// retried carries a stale generation. The requester must (a) discard it —
// not complete the fault with it — and (b) still ACK it, because in ACK mode
// the manager keeps the minipage in service until the outstanding reply is
// acknowledged; swallowing the ACK would wedge that minipage forever.
TEST(Protocol, StaleReplyAfterRetryIsDiscardedAndAcked) {
  DsmConfig cfg = Cfg(2);
  cfg.request_timeout_ms = 300;
  cfg.max_request_retries = 2;
  cfg.sync_timeout_ms = 5000;
  ASSERT_TRUE(cfg.enable_ack) << "the regression targets ACK-mode serialization";

  // Hand-assembled pair so the manager's reply can be delayed in flight.
  InProcTransport inner{2};
  FaultyTransport t0{&inner};
  FaultyTransport t1{&inner};
  Result<std::unique_ptr<DsmNode>> r0 = DsmNode::Create(cfg, 0, &t0);
  Result<std::unique_ptr<DsmNode>> r1 = DsmNode::Create(cfg, 1, &t1);
  ASSERT_TRUE(r0.ok() && r1.ok());
  std::unique_ptr<DsmNode> n0 = std::move(*r0);
  std::unique_ptr<DsmNode> n1 = std::move(*r1);
  n0->Start();
  n1->Start();

  Result<GlobalAddr> addr = n0->SharedMalloc(16 * sizeof(int));
  ASSERT_TRUE(addr.ok()) << addr.status().ToString();
  int* data0 = reinterpret_cast<int*>(n0->AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    data0[i] = 900 + i;
  }

  // The manager's FIRST read reply to host 1 limps for 450 ms — past the
  // 300 ms request timeout (so host 1 abandons the attempt and re-sends with
  // a fresh generation before the original reply lands) but well inside the
  // retry's own 300 ms window (so the retry itself does not time out while
  // the manager's send thread is parked in the delay). One-shot: the
  // re-served reply travels at full speed.
  t0.DelaySends(1, MsgType::kReadReply, 450 * 1000, /*count=*/1);
  ASSERT_TRUE(n1->OnFault(addr->view, addr->offset, /*is_write=*/false));

  EXPECT_EQ(n1->timeout_retries(), 1u);
  EXPECT_EQ(n1->stale_replies(), 1u) << "the late reply must be discarded by generation";
  const int* data1 = reinterpret_cast<const int*>(n1->AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(data1[i], 900 + i) << "index " << i;
  }

  // The discarded reply was still ACKed: the manager's per-minipage
  // transaction is closed, so a fresh operation on the SAME minipage
  // completes promptly instead of queueing behind a wedged service.
  const uint64_t t_write = MonotonicNowNs();
  ASSERT_TRUE(n1->OnFault(addr->view, addr->offset, /*is_write=*/true));
  const uint64_t write_ms = (MonotonicNowNs() - t_write) / 1000000;
  EXPECT_LT(write_ms, cfg.request_timeout_ms) << "minipage service left open";
  EXPECT_EQ(n1->timeout_retries(), 1u) << "the follow-up write must not retry";
  EXPECT_TRUE(n1->health().ok());
  EXPECT_TRUE(n0->health().ok());

  n0->BeginShutdown();
  n1->BeginShutdown();
  n1->Stop();
  n0->Stop();
}

// Regression (fault-path degradation): a protection change failing INSIDE
// fault service — on the grant install, the one protect whose failure is
// recoverable — must degrade that single access to kNotFound, the same
// policy as sole-copy host death, instead of aborting the cluster. The
// requester renounces the grant (abort-flagged ACK) so the directory drops
// it from the copyset and the minipage stays serveable from the old holder.
TEST(Protocol, GrantInstallFailureDegradesAccessNotCluster) {
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> ctl;
  GlobalPtr<int> victim;
  (*cluster)->RunOnManager([&](DsmNode&) {
    ctl = SharedAlloc<int>(4);
    victim = SharedAlloc<int>(4);
    ctl[0] = 1;
    victim[0] = 2;
  });
  DsmNode& n1 = (*cluster)->node(1);
  const GlobalAddr va = victim.addr();

  {
    // skip=1 lets the holder's serve-side downgrade of its own copy pass;
    // times=1 then fails exactly one protect — the requester's install.
    FailpointAction fail;
    fail.kind = FailpointAction::Kind::kReturn;
    fail.skip = 1;
    fail.max_hits = 1;
    FailpointScope scope("os.mapping.protect", fail);
    const Status st = n1.FaultService(va.view, va.offset, /*is_write=*/false);
    ASSERT_FALSE(st.ok()) << "injected install failure must fail the access";
    EXPECT_EQ(st.code(), StatusCode::kNotFound) << st.ToString();
    EXPECT_EQ(FailpointRegistry::Instance().hits("os.mapping.protect"), 1u)
        << "the injection was meant to hit the grant install exactly once";
  }

  // The old holder kept its copy, so the directory never emptied: nothing
  // was declared lost cluster-wide, and the SAME access succeeds once the
  // (transient, one-shot) failure clears.
  EXPECT_EQ((*cluster)->node(0).minipages_lost(), 0u);
  const Status again = n1.FaultService(va.view, va.offset, /*is_write=*/false);
  ASSERT_TRUE(again.ok()) << again.ToString();
  EXPECT_EQ(*reinterpret_cast<const int*>(n1.AppPtr(va)), 2);

  // The degradation was per-access: other minipages were never affected,
  // and both hosts remain healthy — no cluster abort, no wedged service.
  const Status ctl_read = n1.FaultService(ctl.addr().view, ctl.addr().offset,
                                          /*is_write=*/false);
  ASSERT_TRUE(ctl_read.ok()) << ctl_read.ToString();
  EXPECT_EQ(*reinterpret_cast<const int*>(n1.AppPtr(ctl.addr())), 1);
  EXPECT_TRUE(n1.health().ok());
  EXPECT_TRUE((*cluster)->node(0).health().ok());
}

TEST(Protocol, SequentialConsistencyStress) {
  // Dekker-style litmus: two hosts set their flag then read the other's.
  // Under sequential consistency at least one host must observe the other's
  // flag in every round.
  auto cluster = DsmCluster::Create(Cfg(2));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> flag0;
  GlobalPtr<int> flag1;
  (*cluster)->RunOnManager([&](DsmNode&) {
    flag0 = SharedAlloc<int>(1);
    flag1 = SharedAlloc<int>(1);
  });
  constexpr int kRounds = 30;
  std::atomic<int> both_zero{0};
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    for (int r = 0; r < kRounds; ++r) {
      (host == 0 ? flag0 : flag1)[0] = 0;
      node.Barrier();
      if (host == 0) {
        *flag0 = 1;
        if (*flag1 == 0 && *flag0 == 0) {
          both_zero.fetch_add(1);
        }
      } else {
        *flag1 = 1;
        if (*flag0 == 0 && *flag1 == 0) {
          both_zero.fetch_add(1);
        }
      }
      node.Barrier();
      EXPECT_EQ(*flag0, 1);
      EXPECT_EQ(*flag1, 1);
      node.Barrier();
    }
  });
  EXPECT_EQ(both_zero.load(), 0) << "a host failed to observe its own write";
}

TEST(Protocol, ManyMinipagesManyHosts) {
  // Broad sweep: 4 hosts hammering 64 independent counters.
  auto cluster = DsmCluster::Create(Cfg(4));
  ASSERT_TRUE(cluster.ok());
  std::vector<GlobalPtr<int>> counters;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < 64; ++i) {
      counters.push_back(SharedAlloc<int>(1));
      *counters.back() = 0;
    }
  });
  constexpr int kRounds = 8;
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      // Each round, each host owns a rotating disjoint quarter.
      for (int i = 0; i < 16; ++i) {
        const int idx = ((host + r) % 4) * 16 + i;
        *counters[idx] = *counters[idx] + 1;
      }
      node.Barrier();
    }
  });
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < 64; ++i) {
      EXPECT_EQ(*counters[i], kRounds) << "counter " << i;
    }
  });
}

TEST(Protocol, MetricsMoveAsProtocolRuns) {
  // The fault -> fetch -> grant pipeline must leave tracks in the metric
  // snapshot: host fault counters, per-node fault-latency histograms, the
  // manager's service counters, and the SIGSEGV dispatcher itself.
  SetMetricsEnabled(true);
  const uint64_t dispatched_before = FaultHandler::Instance().faults_dispatched();
  auto cluster = DsmCluster::Create(Cfg(3));
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> p;
  (*cluster)->RunOnManager([&](DsmNode&) {
    p = SharedAlloc<int>(16);
    p[0] = 7;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    EXPECT_EQ(p[0], 7);   // read fault on hosts 1 and 2
    if (host == 1) {
      p[1] = 11;          // write fault: invalidation round + data grant
    }
    node.Barrier();
  });

  const MetricsSnapshot s = (*cluster)->SnapshotMetrics();
  EXPECT_GE(s.counters.at("host.read_faults"), 2u);
  EXPECT_GE(s.counters.at("host.write_faults"), 1u);
  EXPECT_GE(s.counters.at("mgr.requests_served"), 3u);
  EXPECT_GE(s.counters.at("mgr.mpt_lookups"), 3u);
  EXPECT_GE(s.counters.at("mgr.invalidation_rounds"), 1u);
  EXPECT_GE(s.counters.at("host.barriers"), 6u);
  // Every recorded fault latency corresponds to a counted fault.
  const HistogramSnapshot& rf = s.histograms.at("dsm.read_fault_ns");
  EXPECT_GE(rf.count, 2u);
  EXPECT_GT(rf.min, 0u);
  EXPECT_GE(s.histograms.at("dsm.write_fault_ns").count, 1u);
  EXPECT_GE(s.histograms.at("dsm.barrier_ns").count, 6u);
  // SIGSEGV entry instrumentation (process-global registry).
  EXPECT_GT(FaultHandler::Instance().faults_dispatched(), dispatched_before);
  EXPECT_GE(s.histograms.at("fault.service_ns").count, 3u);
  // The per-host counter blocks agree with the flat snapshot.
  EXPECT_EQ(s.counters.at("host.read_faults"),
            uint64_t{(*cluster)->TotalCounters().read_faults});
  // And the emitter produces something a JSON consumer will accept.
  const std::string json = (*cluster)->SnapshotMetrics().DumpJson();
  EXPECT_NE(json.find("\"host.read_faults\""), std::string::npos);
  EXPECT_NE(json.find("\"dsm.read_fault_ns\""), std::string::npos);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
}

}  // namespace
}  // namespace millipage
