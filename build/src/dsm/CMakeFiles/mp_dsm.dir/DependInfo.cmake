
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsm/cluster.cc" "src/dsm/CMakeFiles/mp_dsm.dir/cluster.cc.o" "gcc" "src/dsm/CMakeFiles/mp_dsm.dir/cluster.cc.o.d"
  "/root/repo/src/dsm/node.cc" "src/dsm/CMakeFiles/mp_dsm.dir/node.cc.o" "gcc" "src/dsm/CMakeFiles/mp_dsm.dir/node.cc.o.d"
  "/root/repo/src/dsm/process_cluster.cc" "src/dsm/CMakeFiles/mp_dsm.dir/process_cluster.cc.o" "gcc" "src/dsm/CMakeFiles/mp_dsm.dir/process_cluster.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/multiview/CMakeFiles/mp_multiview.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
