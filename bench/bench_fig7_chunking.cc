// Figure 7 reproduction: the effect of chunking in WATER. Sweeping the
// chunking level from 1 to 6 plus "none" (page-based, no false-sharing
// control) at 4 and 8 hosts, reporting the paper's three series:
//   * competing requests (rise with chunking: coarser minipages collide);
//   * read/write faults (fall with chunking: fewer minipages to fetch);
//   * efficiency relative to the best level (the tradeoff's sweet spot —
//     the paper finds it at level 4-5).

#include <cstdio>
#include <string>
#include <vector>

#include "bench/app_bench_util.h"
#include "bench/bench_util.h"
#include "src/apps/water.h"
#include "src/model/cost_model.h"

namespace millipage {
namespace {

struct Sample {
  std::string level;
  uint64_t competing = 0;
  uint64_t faults = 0;
  double modeled_us = 0;
};

Sample RunWater(const BenchEnv& env, uint16_t hosts, uint32_t chunking, bool page_based) {
  WaterConfig cfg;
  cfg.num_molecules = env.Scaled(96, 32);
  cfg.iterations = env.Scaled(3, 1);
  WaterApp app(cfg);
  const AppRunResult r = RunAppOnCluster(AppBenchConfig(hosts, chunking, page_based), app);
  const CostModel model;
  Sample s;
  s.level = page_based ? "none" : std::to_string(chunking);
  s.competing = r.competing_requests;
  s.faults = r.read_faults + r.write_faults;
  s.modeled_us = ModelRun(model, r.timing).total_us;
  return s;
}

void Sweep(const BenchEnv& env, BenchReporter& reporter, uint16_t hosts) {
  std::printf("\n  -- %u hosts --\n", hosts);
  std::printf("  %-6s %12s %14s %12s\n", "level", "compete req", "rd/wr faults", "efficiency");
  std::vector<Sample> samples;
  const uint32_t max_level = static_cast<uint32_t>(env.Scaled(6, 3));
  for (uint32_t level = 1; level <= max_level; ++level) {
    samples.push_back(RunWater(env, hosts, level, false));
  }
  samples.push_back(RunWater(env, hosts, 1, true));
  double best_us = 1e100;
  for (const Sample& s : samples) {
    best_us = std::min(best_us, s.modeled_us);
  }
  for (const Sample& s : samples) {
    const double efficiency = best_us / s.modeled_us;
    std::printf("  %-6s %12lu %14lu %11.2f\n", s.level.c_str(),
                static_cast<unsigned long>(s.competing), static_cast<unsigned long>(s.faults),
                efficiency);
    BenchResult row;
    row.name = "water_chunking";
    row.params = "hosts=" + std::to_string(hosts) + " level=" + s.level;
    row.iterations = 1;
    row.ns_per_op = s.modeled_us * 1000.0;
    row.values["competing_requests"] = static_cast<double>(s.competing);
    row.values["faults"] = static_cast<double>(s.faults);
    row.values["efficiency"] = efficiency;
    reporter.Add(std::move(row));
  }
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_fig7_chunking", env);
  PrintHeader("Figure 7: chunking in WATER");
  Sweep(env, reporter, 4);
  if (!env.smoke()) {
    Sweep(env, reporter, 8);
  }
  PrintNote("paper shape: competing requests rise with the chunking level (up to 601 with");
  PrintNote("no false-sharing control, 21 at level 1 due to WATER's Write-Read race);");
  PrintNote("faults fall; efficiency peaks at level 4 (4 hosts) / 5 (8 hosts).");
  return reporter.Finish();
}
