// DsmCluster: the in-process deployment. Every host gets its own memory
// object, views, protections, and server thread inside one process; hosts
// exchange minipage copies over the in-process transport. Application code
// runs one thread per host and takes genuine SIGSEGV faults on protected
// vpages — the protocol is exactly the one a multi-machine deployment runs.

#ifndef SRC_DSM_CLUSTER_H_
#define SRC_DSM_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/stats.h"
#include "src/dsm/node.h"
#include "src/net/inproc_transport.h"

namespace millipage {

class DsmCluster {
 public:
  static Result<std::unique_ptr<DsmCluster>> Create(const DsmConfig& config);
  ~DsmCluster();

  DsmCluster(const DsmCluster&) = delete;
  DsmCluster& operator=(const DsmCluster&) = delete;

  uint16_t num_hosts() const { return config_.num_hosts; }
  DsmNode& node(HostId h) { return *nodes_[h]; }
  DsmNode& manager() { return *nodes_[kManagerHost]; }
  const DsmConfig& config() const { return config_; }

  // Runs `fn(node, host)` on one application thread per host and joins them.
  // The thread's current node is bound so GlobalPtr resolves correctly.
  void RunParallel(const std::function<void(DsmNode&, HostId)>& fn);

  // Convenience for setup code on the manager host (binds/unbinds TLS).
  void RunOnManager(const std::function<void(DsmNode&)>& fn);

  HostCounters TotalCounters() const;

  // Sum of every host's manager-shard counters. With the centralized policy
  // this equals host 0's shard; with the sharded policy it aggregates the
  // whole directory.
  ManagerCounters TotalManagerCounters() const;

  // Cluster-wide metric aggregation: every node's SnapshotMetrics merged
  // with the process-global registry (fault handler, standalone transports).
  MetricsSnapshot SnapshotMetrics() const;

 private:
  explicit DsmCluster(const DsmConfig& config) : config_(config) {}

  static bool FaultTrampoline(void* ctx, void* addr, bool is_write);
  bool DispatchFault(void* addr, bool is_write);

  struct Region {
    uintptr_t base = 0;
    size_t len = 0;
    DsmNode* node = nullptr;
    uint32_t view = 0;
  };

  DsmConfig config_;
  std::unique_ptr<InProcTransport> transport_;
  std::vector<std::unique_ptr<DsmNode>> nodes_;
  std::vector<Region> regions_;  // sorted by base; immutable after Create
  int fault_slot_ = -1;
};

}  // namespace millipage

#endif  // SRC_DSM_CLUSTER_H_
