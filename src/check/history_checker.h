// Offline invariant checker for recorded protocol histories (src/common/
// trace.h). Given the totally-ordered event stream of a run, it verifies:
//
//   * SWMR — at every point, each minipage has at most one host holding a
//     ReadWrite copy, and a ReadWrite holder excludes every ReadOnly holder
//     (readers must be invalidated before a write is granted);
//   * barrier epochs — every host observes barrier generations 0, 1, 2, ...
//     with no skip, repeat, or reordering;
//   * lock exclusivity — a lock is granted only when free, and released only
//     by its holder;
//   * strict coherence — replayed against a memory oracle: because the
//     deterministic harness serializes application accesses globally, every
//     kAppRead must return the value of the latest kAppWrite to that address
//     in history order (0 before any write). For an invalidation-based SWMR
//     protocol this is the sequential-consistency witness for the run.
//
// On violation the report carries the index of the offending event, so the
// caller can print the minimal violating prefix of the history.

#ifndef SRC_CHECK_HISTORY_CHECKER_H_
#define SRC_CHECK_HISTORY_CHECKER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/trace.h"

namespace millipage {

struct CheckReport {
  bool ok = true;
  size_t violating_index = 0;  // index into the history when !ok
  std::string message;

  // The minimal violating prefix, formatted for humans (empty when ok).
  std::string FormatViolation(const std::vector<TraceEvent>& history) const;
};

// Runs every invariant over `history`; returns the first violation found.
// When `sharded_managers` is true the run used ManagerPolicy::kSharded and
// shard affinity is additionally verified.
CheckReport CheckHistory(const std::vector<TraceEvent>& history, uint16_t num_hosts,
                         bool sharded_managers = false);

// Individual invariants (exposed for targeted tests).
CheckReport CheckSwmr(const std::vector<TraceEvent>& history, uint16_t num_hosts);
CheckReport CheckBarrierEpochs(const std::vector<TraceEvent>& history, uint16_t num_hosts);
CheckReport CheckLockExclusivity(const std::vector<TraceEvent>& history);
CheckReport CheckCoherenceOracle(const std::vector<TraceEvent>& history);
// Sharded deployments only: every manager-side event (service open/close,
// grants, invalidation sends, lock hand-offs) must have been emitted by the
// shard that owns the id under the membership in force at that point: the
// home slot id % num_hosts, linear-probed past hosts the kEpochBump stream
// has declared dead. A violation means a request was serviced by (or
// directory state mutated on) the wrong host.
CheckReport CheckShardAffinity(const std::vector<TraceEvent>& history, uint16_t num_hosts);
// Membership-epoch invariants for runs with host-death recovery. The trace
// encodes one kEpochBump event per newly-dead host (arg1 = new epoch, arg2 =
// dead host id + 1; arg2 == 0 when the epoch advanced with no new deaths),
// so the checker reconstructs each observer's cumulative dead set:
//   * per host, kEpochBump epochs never decrease (several events at the same
//     epoch are one multi-death bump; concurrent detectors may also merge
//     the same death at equal epochs), and no host is declared dead twice —
//     the per-death trace of a dead set that only grows;
//   * a host never declares itself dead;
//   * no pre-death grant is honored after the bump — for every kFaultEnd,
//     the granting shard's epoch at the latest matching grant must not be
//     older than the requester's epoch when the fault completes.
CheckReport CheckEpochMonotonicity(const std::vector<TraceEvent>& history,
                                   uint16_t num_hosts);

}  // namespace millipage

#endif  // SRC_CHECK_HISTORY_CHECKER_H_
