// Parallel branch-and-bound TSP on the DSM (the paper's TSP workload as an
// interactive example): partial tours live in 148-byte minipages, hosts draw
// work from a lock-protected shared queue index, and improvements to the
// shared best tour are pushed to all hosts (the paper's single-line change
// that resolves TSP's read-mostly data race).
//
// Build & run:  ./build/examples/tsp_search [cities] [hosts]

#include <cstdio>
#include <cstdlib>

#include "src/apps/tsp.h"
#include "src/common/time_util.h"
#include "src/dsm/cluster.h"

using namespace millipage;

int main(int argc, char** argv) {
  const uint32_t cities = argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 11;
  const uint16_t hosts = argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2])) : 4;

  DsmConfig config;
  config.num_hosts = hosts;
  config.object_size = 8 << 20;
  config.num_views = 32;
  auto cluster = DsmCluster::Create(config);
  MP_CHECK(cluster.ok()) << cluster.status().ToString();

  TspConfig tsp_config;
  tsp_config.num_cities = cities;
  tsp_config.prefix_depth = cities >= 12 ? 4 : 3;
  TspApp app(tsp_config);

  std::printf("solving %u-city TSP with %u DSM hosts (prefix depth %u)...\n", cities, hosts,
              tsp_config.prefix_depth);
  const uint64_t t0 = MonotonicNowNs();
  const AppRunResult result = RunApp(**cluster, app);
  const double ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;

  if (!result.validation.ok()) {
    std::fprintf(stderr, "validation FAILED: %s\n", result.validation.ToString().c_str());
    return 1;
  }
  std::printf("optimal tour length: %d (matches serial branch-and-bound)\n",
              app.best_length());
  std::printf("wall time: %.1f ms on one core running all %u hosts\n", ms, hosts);
  std::printf("shared tours: %lu minipages of 148 bytes across %u views\n",
              static_cast<unsigned long>(result.num_minipages - 2), result.num_views);
  std::printf("DSM traffic: %lu read faults, %lu write faults, %lu lock acquires\n",
              static_cast<unsigned long>(result.read_faults),
              static_cast<unsigned long>(result.write_faults),
              static_cast<unsigned long>(result.locks));
  return 0;
}
