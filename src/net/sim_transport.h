// SimNet: a deterministic discrete-event network for protocol simulation.
//
// Unlike InProcTransport (real threads racing on mailboxes), SimNet gives a
// single external scheduler ownership of every message delivery: sends only
// enqueue, stamped with a virtual-clock arrival time drawn from a seeded RNG,
// and nothing is delivered until the driver calls ScheduleNext(), which picks
// the globally earliest arrival (seeded tie-break), advances the virtual
// clock, and stages exactly one message for its destination. The destination
// node then consumes it with DsmNode::PumpOne(). Two runs with the same seed
// and the same driver decisions therefore produce byte-for-byte identical
// delivery orders — the reproducibility contract `ctest -L sim` checks.
//
// Per-(sender, receiver) FIFO is preserved: a message's arrival time is
// clamped to be no earlier than the previous message on the same pair, and
// ScheduleNext only ever considers pair-queue heads. Each host talks to the
// fabric through its own SimEndpoint (a Transport), which is how the fabric
// learns the sender — the base Transport::Send has no "from" parameter.

#ifndef SRC_NET_SIM_TRANSPORT_H_
#define SRC_NET_SIM_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

#include "src/common/host_set.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/message.h"
#include "src/net/transport.h"

namespace millipage {

struct SimOptions {
  // Uniform per-message latency jitter, in virtual microseconds. The spread
  // is what lets different seeds explore different interleavings.
  uint64_t min_delay_us = 1;
  uint64_t max_delay_us = 100;
};

class Histogram;
class SimEndpoint;

class SimNet {
 public:
  SimNet(uint16_t num_hosts, uint64_t seed, SimOptions options = SimOptions{});
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // The per-host Transport to hand to DsmNode::Create.
  Transport* endpoint(HostId h) const;

  uint16_t num_hosts() const { return num_hosts_; }

  // Virtual clock, microseconds. Advances only inside ScheduleNext.
  uint64_t now_us() const;

  // Messages enqueued or staged but not yet consumed by a Poll.
  size_t pending() const;

  // Picks the earliest-arrival queued message (seeded tie-break), advances
  // the virtual clock to its arrival, and stages it for its destination.
  // Returns false when no message is pending; otherwise *dst names the host
  // whose PumpOne() will consume it.
  bool ScheduleNext(HostId* dst);

  // Deterministic targeted loss: the next `count` sends of `type` addressed
  // to `dst` are swallowed at enqueue time.
  void Drop(HostId dst, MsgType type, uint32_t count);

  // Kills host `v` at the current virtual time: every queued or staged
  // message from or to it vanishes (in-flight datagrams die with the host),
  // and all future sends to or from it are silently swallowed. Sends to a
  // dead host still return Ok — a datagram fabric reports no delivery
  // failure — so the failure is only observable as missing replies, exactly
  // the signal the node-side failure detector works from.
  void KillHost(HostId v);
  HostSet dead_set() const;

  // Messages scheduled + dropped so far (diagnostics).
  uint64_t delivered() const;
  uint64_t dropped() const;

 private:
  friend class SimEndpoint;

  struct SimMsg {
    MsgHeader h;
    std::vector<std::byte> payload;
    uint64_t arrival_us = 0;
  };

  struct DropRule {
    HostId dst = 0;
    MsgType type = MsgType::kReadRequest;
    uint32_t remaining = 0;
  };

  // All live state of one (sender, receiver) channel, created lazily on the
  // pair's first send. A 1024-host fabric has ~1M pairs, almost all of them
  // forever idle — preallocating queues and RNGs for each (the original
  // design) costs hundreds of megabytes; the map holds only pairs that have
  // ever carried traffic.
  struct PairState {
    std::deque<SimMsg> q;
    // Latency jitter draws come from a per-pair stream, so a message's
    // arrival time depends only on its position in its own channel — not on
    // how concurrent senders on other pairs interleave their enqueues.
    // Without this, the membership-recovery kick (which wakes several hosts'
    // workers at once) would make delivery schedules race-dependent. The
    // lazy seed formula matches the old eager preallocation, so schedules
    // are byte-identical to the fixed-size fabric.
    Rng rng;
    uint64_t tail_us = 0;  // last arrival (FIFO clamp)

    explicit PairState(uint64_t seed) : rng(seed) {}
  };

  Status SendFrom(HostId from, HostId to, const MsgHeader& h, const void* payload,
                  size_t len);
  Result<bool> PollStaged(HostId me, MsgHeader* h, const PayloadSink& sink);

  size_t PairIndex(HostId from, HostId to) const {
    return static_cast<size_t>(from) * num_hosts_ + to;
  }
  PairState& Pair(size_t pair);
  // Removes `pair` from the heads index, dropping the (arrival) bucket when
  // it empties.
  void UnindexHead(size_t pair, uint64_t arrival);

  const uint16_t num_hosts_;
  const SimOptions options_;
  const uint64_t seed_;
  // Datagram-size distribution ("net.send_bytes", global registry): one
  // sample per SendFrom, so a batched frame counts as a single datagram.
  Histogram* send_bytes_ = nullptr;

  mutable std::mutex mu_;
  Rng rng_;  // scheduler-side draws (tie-breaks) — driver thread only
  uint64_t now_us_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  size_t queued_ = 0;  // messages in pair queues (not yet staged)
  HostSet dead_;
  std::unordered_map<size_t, PairState> pairs_;  // keyed by PairIndex
  // Scheduling index: head-of-queue arrival time -> pair ids whose head
  // arrives then. begin() is the globally earliest arrival; the inner set
  // iterates pairs in ascending id order, which is exactly the candidate
  // order the original linear scan produced — so the seeded tie-break sees
  // the same candidate list and schedules stay byte-identical.
  std::map<uint64_t, std::set<size_t>> heads_;
  std::vector<std::deque<SimMsg>> staged_;  // per destination
  std::vector<DropRule> drop_rules_;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints_;
};

}  // namespace millipage

#endif  // SRC_NET_SIM_TRANSPORT_H_
