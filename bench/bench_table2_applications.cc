// Table 2 reproduction: the application suite's shared-memory footprint,
// view count, sharing granularity, and synchronization behaviour, measured
// from real runs on an 8-host in-process cluster.
//
// Inputs are scaled down from the paper's (which targeted 8 physical
// machines); the structural quantities — granularity, views, and the
// *relative* barrier/lock profile — are the reproduction target.

#include <cstdio>

#include "bench/app_bench_util.h"
#include "bench/bench_util.h"
#include "src/apps/is.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"

namespace millipage {
namespace {

void ReportApp(BenchReporter& reporter, uint16_t hosts, const AppRunResult& r,
               const char* paper_row) {
  std::printf("  %-6s | %-38s | %8.1f KB | %5u | %-22s | %6lu | %6lu\n", r.name.c_str(),
              r.input_desc.c_str(), static_cast<double>(r.shared_bytes) / 1024.0, r.num_views,
              r.granularity_desc.c_str(), static_cast<unsigned long>(r.barriers),
              static_cast<unsigned long>(r.locks));
  std::printf("  %-6s | paper: %s\n", "", paper_row);
  // Structural row: no per-op time (ns_per_op=0 opts it out of the perf
  // comparison in ci/check_bench.py); the shape lives in `values`.
  BenchResult row;
  row.name = r.name;
  row.params = "hosts=" + std::to_string(hosts) + " input=" + r.input_desc;
  row.iterations = 1;
  row.values["shared_kb"] = static_cast<double>(r.shared_bytes) / 1024.0;
  row.values["views"] = r.num_views;
  row.values["barriers"] = static_cast<double>(r.barriers);
  row.values["locks"] = static_cast<double>(r.locks);
  row.values["read_faults"] = static_cast<double>(r.read_faults);
  row.values["write_faults"] = static_cast<double>(r.write_faults);
  reporter.Add(std::move(row));
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_table2_applications", env);
  const uint16_t hosts = static_cast<uint16_t>(env.Scaled(8, 4));
  PrintHeader("Table 2: application suite (" + std::to_string(hosts) + " hosts)");
  std::printf("  %-6s | %-38s | %11s | %5s | %-22s | %6s | %6s\n", "app", "input (scaled)",
              "shared mem", "views", "granularity", "barr", "locks");

  {
    SorConfig cfg;
    cfg.rows = env.Scaled(512, 128);
    cfg.cols = 64;
    cfg.iterations = env.Scaled(10, 2);
    SorApp app(cfg);
    ReportApp(reporter, hosts, RunAppOnCluster(AppBenchConfig(hosts), app),
              "32768x64, 8 MB shared, 16 views, a row (256 B), 21 barriers, no locks");
  }
  {
    IsConfig cfg;
    cfg.num_keys = 1 << env.Scaled(15, 12);
    cfg.iterations = env.Scaled(10, 2);
    IsApp app(cfg);
    ReportApp(reporter, hosts, RunAppOnCluster(AppBenchConfig(hosts), app),
              "2^23 keys / 2^9 values, 2 KB shared, 8 views, 256 B, 90 barriers, no locks");
  }
  {
    WaterConfig cfg;
    cfg.num_molecules = env.Scaled(512, 64);  // paper size: lock volume is the comparison
    cfg.iterations = env.Scaled(3, 1);
    WaterApp app(cfg);
    ReportApp(reporter, hosts, RunAppOnCluster(AppBenchConfig(hosts), app),
              "512 molecules, 336 KB shared, 6 views, a molecule (672 B), 29 barr, 6720 locks");
  }
  {
    LuConfig cfg;
    cfg.n = env.Scaled(256, 128);
    cfg.block = 32;
    LuApp app(cfg);
    ReportApp(reporter, hosts, RunAppOnCluster(AppBenchConfig(hosts), app),
              "1024x1024 / 32x32 blocks, 8 MB shared, 1 view, a block (4 KB), 577 barriers");
  }
  {
    TspConfig cfg;
    cfg.num_cities = env.Scaled(11, 9);
    cfg.prefix_depth = env.Scaled(4, 3);
    TspApp app(cfg);
    ReportApp(reporter, hosts, RunAppOnCluster(AppBenchConfig(hosts), app),
              "19 cities depth 12, 785 KB shared, 27 views, a tour (148 B), 3 barr, 681 locks");
  }

  PrintNote("shape check: SOR/IS/LU barrier-only; WATER/TSP lock-heavy; LU single view;");
  PrintNote("granularities match the paper exactly (256 B rows, 672 B molecules, 4 KB blocks,");
  PrintNote("148 B tours); shared sizes scale with the reduced inputs.");
  return reporter.Finish();
}
