// WATER — n-squared molecular dynamics in the sharing pattern of SPLASH-2
// Water-nsquared. Each molecule is a separate 672-byte allocation (the
// paper's granularity), so with the default layout six minipages share each
// page through six views. Every iteration has the paper's phases:
//   read phase    — every host reads every molecule's positions;
//   force phase   — pairwise interactions; contributions to molecules owned
//                   by other hosts are accumulated into the shared molecule
//                   under per-molecule locks (the source of WATER's lock
//                   traffic and of its Write-Read data race);
//   update phase  — owners integrate their own molecules.
// The chunking level of the enclosing DSM (Section 4.4 / Figure 7) decides
// how many molecules share a minipage.

#ifndef SRC_APPS_WATER_H_
#define SRC_APPS_WATER_H_

#include <vector>

#include "src/apps/app.h"
#include "src/dsm/global_ptr.h"

namespace millipage {

struct Molecule {
  double pos[3][3];   // 3 atoms x xyz
  double vel[3][3];
  double force[3][3];
  double acc[3][3];
  double derivs[3][3][4];
  double energy;
  uint8_t pad[88];
};
static_assert(sizeof(Molecule) == 672, "paper's molecule is 672 bytes");

struct WaterConfig {
  uint32_t num_molecules = 64;  // paper: 512
  uint32_t iterations = 3;
  uint64_t seed = 11;
};

class WaterApp : public App {
 public:
  explicit WaterApp(const WaterConfig& config) : config_(config) {}

  std::string name() const override { return "WATER"; }
  std::string input_desc() const override;
  std::string granularity_desc() const override { return "a molecule, 672 bytes"; }
  // One molecule-pair interaction. Real Water-nsquared pairs evaluate nine
  // site-site distances with sqrt plus exponential terms — thousands of
  // cycles on the paper's 300 MHz Pentium II.
  double ns_per_work_unit() const override { return 8000.0; }

  uint32_t warmup_epochs() const override { return 1; }

  void Setup(DsmNode& manager) override;
  void Worker(DsmNode& node, HostId host) override;
  Status Validate(DsmNode& manager) override;

 private:
  static constexpr uint32_t kMolLockBase = 8;  // lock ids below are reserved

  WaterConfig config_;
  std::vector<GlobalPtr<Molecule>> mols_;
  double expected_checksum_ = 0;
};

}  // namespace millipage

#endif  // SRC_APPS_WATER_H_
