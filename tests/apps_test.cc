// Integration tests: the five paper applications run correctly on the DSM
// at several host counts (parameterized), validated against serial
// references.

#include <gtest/gtest.h>

#include "src/apps/is.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"

namespace millipage {
namespace {

DsmConfig AppConfig(uint16_t hosts, uint32_t chunking = 1, bool page_based = false) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 8 << 20;
  cfg.num_views = 16;
  cfg.chunking_level = chunking;
  cfg.page_based = page_based;
  return cfg;
}

class AppsAtHostCount : public ::testing::TestWithParam<uint16_t> {};

TEST_P(AppsAtHostCount, SorConverges) {
  auto cluster = DsmCluster::Create(AppConfig(GetParam()));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  SorConfig cfg;
  cfg.rows = 64;
  cfg.cols = 64;
  cfg.iterations = 4;
  SorApp app(cfg);
  AppRunResult result = RunApp(**cluster, app);
  EXPECT_TRUE(result.validation.ok()) << result.validation.ToString();
  EXPECT_EQ(result.granularity_desc, "a row, 256 bytes");
}

TEST_P(AppsAtHostCount, LuFactorsCorrectly) {
  auto cluster = DsmCluster::Create(AppConfig(GetParam()));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  LuConfig cfg;
  cfg.n = 128;
  cfg.block = 32;
  LuApp app(cfg);
  AppRunResult result = RunApp(**cluster, app);
  EXPECT_TRUE(result.validation.ok()) << result.validation.ToString();
  // 4 KB blocks are full-page minipages: a single view suffices (Table 2).
  EXPECT_EQ(result.num_views, 1u);
}

TEST_P(AppsAtHostCount, IsCountsAllKeys) {
  auto cluster = DsmCluster::Create(AppConfig(GetParam()));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  IsConfig cfg;
  cfg.num_keys = 1 << 12;
  cfg.iterations = 3;
  IsApp app(cfg);
  AppRunResult result = RunApp(**cluster, app);
  EXPECT_TRUE(result.validation.ok()) << result.validation.ToString();
}

TEST_P(AppsAtHostCount, TspFindsOptimum) {
  auto cluster = DsmCluster::Create(AppConfig(GetParam()));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  TspConfig cfg;
  cfg.num_cities = 9;
  cfg.prefix_depth = 3;
  TspApp app(cfg);
  AppRunResult result = RunApp(**cluster, app);
  EXPECT_TRUE(result.validation.ok()) << result.validation.ToString();
  EXPECT_GT(app.best_length(), 0);
}

TEST_P(AppsAtHostCount, WaterConservesChecksum) {
  auto cluster = DsmCluster::Create(AppConfig(GetParam()));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  WaterConfig cfg;
  cfg.num_molecules = 24;
  cfg.iterations = 2;
  WaterApp app(cfg);
  AppRunResult result = RunApp(**cluster, app);
  EXPECT_TRUE(result.validation.ok()) << result.validation.ToString();
}

INSTANTIATE_TEST_SUITE_P(HostCounts, AppsAtHostCount, ::testing::Values(1, 2, 4),
                         [](const auto& info) {
                           return "hosts" + std::to_string(info.param);
                         });

TEST(AppsChunking, WaterRunsAtEveryChunkingLevel) {
  for (uint32_t level : {1u, 2u, 4u, 6u}) {
    auto cluster = DsmCluster::Create(AppConfig(2, level));
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    WaterConfig cfg;
    cfg.num_molecules = 18;
    cfg.iterations = 2;
    WaterApp app(cfg);
    AppRunResult result = RunApp(**cluster, app);
    EXPECT_TRUE(result.validation.ok())
        << "chunking level " << level << ": " << result.validation.ToString();
    // Higher chunking -> fewer, larger minipages.
    if (level > 1) {
      EXPECT_LT(result.num_minipages, cfg.num_molecules + 2u);
    }
  }
}

TEST(AppsPageBased, IsStillCorrectWithFullPageSharing) {
  // The Ivy-style baseline false-shares the 2 KB histogram page; results
  // must still be correct, just coarser.
  auto fine = DsmCluster::Create(AppConfig(2));
  auto coarse = DsmCluster::Create(AppConfig(2, 1, /*page_based=*/true));
  ASSERT_TRUE(fine.ok() && coarse.ok());
  IsConfig cfg;
  cfg.num_keys = 1 << 10;
  cfg.iterations = 3;
  IsApp app_fine(cfg);
  IsApp app_coarse(cfg);
  AppRunResult fine_result = RunApp(**fine, app_fine);
  AppRunResult coarse_result = RunApp(**coarse, app_coarse);
  EXPECT_TRUE(fine_result.validation.ok()) << fine_result.validation.ToString();
  EXPECT_TRUE(coarse_result.validation.ok()) << coarse_result.validation.ToString();
  // Structure: fine-grain gives each region its own sub-page minipage;
  // page-based collapses both regions onto one full-page sharing unit.
  EXPECT_GT(fine_result.num_minipages, coarse_result.num_minipages);
}

TEST(AppsPageBased, AlternatingWritersPayForFalseSharing) {
  // Deterministic false-sharing cost: two hosts alternately (barrier-forced)
  // write two different variables on the same physical page. Page-based:
  // the page bounces on every round. Fine-grain: one fault each, ever.
  constexpr int kRounds = 20;
  auto run = [](bool page_based) {
    auto cluster = DsmCluster::Create(AppConfig(2, 1, page_based));
    MP_CHECK(cluster.ok());
    GlobalPtr<int> a;
    GlobalPtr<int> b;
    (*cluster)->RunOnManager([&](DsmNode&) {
      a = SharedAlloc<int>(1);
      b = SharedAlloc<int>(1);
      *a = 0;
      *b = 0;
    });
    (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
      node.Barrier();
      for (int r = 0; r < kRounds; ++r) {
        if (host == 0) {
          *a = *a + 1;
        } else {
          *b = *b + 1;
        }
        node.Barrier();
      }
    });
    return (*cluster)->TotalCounters().write_faults;
  };
  const uint64_t fine_faults = run(false);
  const uint64_t coarse_faults = run(true);
  EXPECT_LE(fine_faults, 4u);
  // Every round forces a page steal in the Ivy-style baseline.
  EXPECT_GE(coarse_faults, static_cast<uint64_t>(kRounds));
}

}  // namespace
}  // namespace millipage
