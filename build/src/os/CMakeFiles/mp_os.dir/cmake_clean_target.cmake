file(REMOVE_RECURSE
  "libmp_os.a"
)
