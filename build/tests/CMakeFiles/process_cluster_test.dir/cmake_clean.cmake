file(REMOVE_RECURSE
  "CMakeFiles/process_cluster_test.dir/process_cluster_test.cc.o"
  "CMakeFiles/process_cluster_test.dir/process_cluster_test.cc.o.d"
  "process_cluster_test"
  "process_cluster_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/process_cluster_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
