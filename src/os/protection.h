// Access protection levels for vpages, matching the three states the paper's
// SW/MR protocol uses.

#ifndef SRC_OS_PROTECTION_H_
#define SRC_OS_PROTECTION_H_

#include <sys/mman.h>

namespace millipage {

enum class Protection {
  kNoAccess = 0,   // minipage not present on this host
  kReadOnly = 1,   // read copy
  kReadWrite = 2,  // exclusive writable copy
};

inline int ProtFlags(Protection p) {
  switch (p) {
    case Protection::kNoAccess:
      return PROT_NONE;
    case Protection::kReadOnly:
      return PROT_READ;
    case Protection::kReadWrite:
      return PROT_READ | PROT_WRITE;
  }
  return PROT_NONE;
}

inline const char* ProtectionName(Protection p) {
  switch (p) {
    case Protection::kNoAccess:
      return "NoAccess";
    case Protection::kReadOnly:
      return "ReadOnly";
    case Protection::kReadWrite:
      return "ReadWrite";
  }
  return "?";
}

// True if `have` already permits an access of kind `want` (read needs
// >= ReadOnly, write needs ReadWrite).
inline bool ProtectionAllows(Protection have, bool is_write) {
  if (is_write) {
    return have == Protection::kReadWrite;
  }
  return have != Protection::kNoAccess;
}

}  // namespace millipage

#endif  // SRC_OS_PROTECTION_H_
