file(REMOVE_RECURSE
  "CMakeFiles/mp_common.dir/logging.cc.o"
  "CMakeFiles/mp_common.dir/logging.cc.o.d"
  "CMakeFiles/mp_common.dir/stats.cc.o"
  "CMakeFiles/mp_common.dir/stats.cc.o.d"
  "CMakeFiles/mp_common.dir/status.cc.o"
  "CMakeFiles/mp_common.dir/status.cc.o.d"
  "libmp_common.a"
  "libmp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
