// ViewSet: one memory object mapped n+1 times — n application views whose
// vpage protections are manipulated independently, plus the privileged view,
// permanently ReadWrite, used by DSM server threads for atomic in-place
// updates and zero-copy sends/receives (Section 2.3.1 of the paper).
//
// Protection changes route through the fault backend that was active when
// the set was created: mprotect under kSigsegv, or userfaultfd pte
// operations (zap / continue / write-protect) under kUserfaultfd, where the
// views stay PROT_READ|PROT_WRITE and the shadow table remains the single
// source of truth either way.

#ifndef SRC_MULTIVIEW_VIEW_SET_H_
#define SRC_MULTIVIEW_VIEW_SET_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/multiview/minipage.h"
#include "src/os/fault_handler.h"
#include "src/os/mapping.h"
#include "src/os/memory_object.h"
#include "src/os/page.h"
#include "src/os/protection.h"

namespace millipage {

class ViewSet {
 public:
  // Creates the memory object (object_size bytes, page-rounded) and maps
  // num_app_views application views (initially NoAccess) plus the privileged
  // view (ReadWrite). The views are wired to whichever fault backend
  // FaultHandler::active_backend() reports at creation time.
  static Result<std::unique_ptr<ViewSet>> Create(size_t object_size, uint32_t num_app_views);

  ~ViewSet();

  uint32_t num_app_views() const { return static_cast<uint32_t>(app_views_.size()); }
  size_t object_size() const { return object_.size(); }
  size_t vpages_per_view() const { return object_.size() / PageSize(); }

  std::byte* app_base(uint32_t view) const { return app_views_[view].base(); }
  std::byte* priv_base() const { return priv_view_.base(); }

  // Application-view address of (view, object offset), and the privileged
  // address of an object offset — the paper's addr2priv translation.
  std::byte* AppAddr(uint32_t view, uint64_t offset) const {
    return app_views_[view].base() + offset;
  }
  std::byte* PrivAddr(uint64_t offset) const { return priv_view_.base() + offset; }

  // Resolves a pointer that may lie in any application view of this set.
  // Returns false if the address is outside every application view.
  bool Resolve(const void* addr, uint32_t* view, uint64_t* offset) const;

  // True if addr lies in any application view.
  bool ContainsAppAddr(const void* addr) const {
    uint32_t v;
    uint64_t o;
    return Resolve(addr, &v, &o);
  }

  // Sets the protection of every vpage the minipage occupies, in its
  // associated view, and records it in the shadow table. No-op (no syscall,
  // no counter, no trace) when the shadow already shows the target
  // protection for the whole range.
  Status SetProtection(const Minipage& mp, Protection prot);

  // Applies one protection change to `count` minipages, collapsing
  // contiguous (or overlapping) same-view vpage runs into a single ranged
  // protection call each — a grant or invalidation round touching N adjacent
  // vpages costs one mprotect/uffd ioctl instead of N. `prot_sets_` counts
  // once per ranged call, so the counter is the proof of the coalescing.
  Status SetProtectionBatch(const Minipage* mps, size_t count, Protection prot);

  // Shadow-table read (the Table 1 "get protection" operation).
  Protection GetProtection(const Minipage& mp) const;

  // Shadow protection of one vpage in one view (used by prefetch, which has
  // no minipage descriptor on non-manager hosts).
  Protection GetVpageProtection(uint32_t view, uint64_t vpage) const {
    return static_cast<Protection>(shadow_[view][vpage].load(std::memory_order_acquire));
  }

  // Fault backend this set was created under.
  FaultBackend fault_backend() const {
    return uffd_ ? FaultBackend::kUserfaultfd : FaultBackend::kSigsegv;
  }

  // Protects every vpage of every application view (bulk setup).
  Status ProtectAllAppViews(Protection prot);

  // Attaches a history recorder: every successful SetProtection emits a
  // kProtSet event stamped with this host id. nullptr detaches.
  void SetTrace(TraceSink* trace, uint16_t host) {
    trace_ = trace;
    trace_host_ = host;
  }

  // Re-homes the mv.* metrics into `registry` (DsmNode points them at its
  // per-host registry; standalone view sets default to the process-global
  // one). Counters only on this path — a scoped timer would be a measurable
  // fraction of a single-page mprotect; the mprotect latency curve lives in
  // bench_micro_primitives instead.
  void SetMetrics(MetricsRegistry* registry) {
    prot_sets_ = registry->GetCounter("mv.prot_sets");
    prot_set_pages_ = registry->GetCounter("mv.prot_set_pages");
  }

 private:
  ViewSet() = default;

  // One ranged protection change over [first_vpage, last_vpage] of `view`,
  // routed to mprotect or the uffd pte operations by backend mode.
  Status ApplyProtection(uint32_t view, uint64_t first_vpage, uint64_t last_vpage,
                         Protection prot);

  // True if every vpage of the minipage already shows `prot` in the shadow.
  bool RangeAlreadyAt(const Minipage& mp, Protection prot) const;

  void TraceProtSet(const Minipage& mp, Protection prot) {
    if (trace_ != nullptr) {
      // addr uses the GlobalAddr packing (view << 48 | offset) without
      // pulling in the net layer.
      trace_->Emit(TraceEventKind::kProtSet, trace_host_, mp.id,
                   (static_cast<uint64_t>(mp.view) << 48) | mp.offset,
                   static_cast<uint64_t>(prot));
    }
  }

  MemoryObject object_;
  std::vector<Mapping> app_views_;
  Mapping priv_view_;
  bool uffd_ = false;
  // Shadow protection, one byte per (view, vpage). Concurrent readers and
  // the per-minipage-serialized writers use relaxed atomics.
  std::vector<std::unique_ptr<std::atomic<uint8_t>[]>> shadow_;

  TraceSink* trace_ = nullptr;
  uint16_t trace_host_ = 0;
  Counter* prot_sets_ = nullptr;       // ranged protection calls (syscalls)
  Counter* prot_set_pages_ = nullptr;  // vpages those calls re-protected
};

}  // namespace millipage

#endif  // SRC_MULTIVIEW_VIEW_SET_H_
