# Empty dependencies file for mp_model.
# This may be replaced when dependencies are built.
