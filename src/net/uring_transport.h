// io_uring transport: the same AF_UNIX SOCK_SEQPACKET mesh as
// SocketTransport, but driven through two io_uring rings so the hot paths
// shed their per-datagram syscall tax (ROADMAP item 2(c)):
//
//   * Receive — one multishot IORING_OP_RECVMSG per connection, armed once,
//     delivering every incoming datagram into a registered buffer ring
//     (IORING_REGISTER_PBUF_RING). Draining a burst of N datagrams costs
//     zero syscalls when completions are already posted, and one
//     io_uring_enter(GETEVENTS) when the poller has to block.
//   * Send — SQEs are prepped under the send lock and released with a single
//     io_uring_enter. Inside a BeginBurst/EndBurst window (the coalescer's
//     flush path) the enter is deferred so N frames submit as one syscall —
//     or zero with SQPOLL (off by default, see UringOptions).
//
// FIFO per (sender, receiver) is preserved by construction: each message is
// one SQE (header) or two IOSQE_IO_LINK-chained SQEs (header then payload),
// and at most one chain per destination is in flight at a time; everything
// else waits in a per-destination user-space queue. io_uring makes no
// cross-SQE ordering promise otherwise — two unlinked sends to the same
// socket can complete in either order — so the queue, not the ring, is the
// ordering authority.
//
// Not every kernel has multishot RECVMSG + buffer rings (6.0+). Create()
// probes at runtime; callers go through MakeMeshTransport (transport
// factory) which falls back to SocketTransport, mirroring the
// userfaultfd-to-SIGSEGV fault-backend fallback.

#ifndef SRC_NET_URING_TRANSPORT_H_
#define SRC_NET_URING_TRANSPORT_H_

#include <linux/io_uring.h>
#include <sys/socket.h>
#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/metrics.h"
#include "src/net/transport.h"

namespace millipage {

struct UringOptions {
  // Kernel-side SQ polling on the send ring: submissions become visible to a
  // kernel thread without io_uring_enter at all. Needs privileges on some
  // kernels and burns a core, so it is opt-in (MILLIPAGE_URING_SQPOLL=1).
  bool sqpoll = false;
};

class UringTransport : public Transport {
 public:
  // `fds_by_peer[j]` is the SEQPACKET socket to host j (-1 at index `me`);
  // takes ownership of the fds (also on probe failure). Fails with
  // kUnavailable when the kernel lacks multishot RECVMSG or buffer rings.
  static Result<std::unique_ptr<UringTransport>> Create(HostId me,
                                                        std::vector<int> fds_by_peer,
                                                        const UringOptions& opts = {});
  ~UringTransport() override;

  Status Send(HostId to, MsgHeader h, const void* payload, size_t len) override;
  Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                    uint64_t timeout_us) override;
  uint16_t num_hosts() const override { return static_cast<uint16_t>(fds_.size()); }

  void BeginBurst() override;
  void EndBurst() override;

  bool sqpoll_active() const { return sqpoll_active_; }

  // One datagram must fit one ring buffer; larger sends are rejected rather
  // than silently truncated on the receive side. Far above the protocol's
  // ≤4 KiB minipage payloads.
  static constexpr size_t kMaxDatagramBytes = 64 * 1024;

  // Runtime capability probe against a scratch ring (no fds at risk); used
  // by UringTransportSupported(), which caches the answer.
  static bool ProbeSupport();

 private:
  // A raw-syscall io_uring instance (the container has no liburing; the ring
  // ABI is stable and small enough to drive directly).
  struct Ring {
    int fd = -1;
    uint32_t features = 0;
    bool sqpoll = false;
    // SQ (mmap'd).
    unsigned* sq_head = nullptr;
    unsigned* sq_tail = nullptr;
    unsigned* sq_flags = nullptr;
    unsigned* sq_array = nullptr;
    unsigned sq_mask = 0;
    unsigned sq_entries = 0;
    struct io_uring_sqe* sqes = nullptr;
    unsigned sq_local_tail = 0;  // our tail shadow; published to *sq_tail on submit
    // CQ (mmap'd).
    unsigned* cq_head = nullptr;
    unsigned* cq_tail = nullptr;
    unsigned cq_mask = 0;
    unsigned cq_entries = 0;
    struct io_uring_cqe* cqes = nullptr;
    // Mmap bookkeeping.
    void* ring_mem = nullptr;
    size_t ring_mem_len = 0;
    void* sqe_mem = nullptr;
    size_t sqe_mem_len = 0;

    Status Init(unsigned entries, unsigned cq_size, bool want_sqpoll);
    void Close();
    // Next free SQE, or nullptr when the SQ is full (submit first).
    struct io_uring_sqe* GetSqe();
    // Publishes prepped SQEs and enters the kernel. With SQPOLL the enter is
    // skipped unless the poller thread needs a wakeup.
    Status Submit(Counter* syscalls, Counter* submits, Histogram* batch);
    // Blocks for ≥1 completion (GETEVENTS), with an EXT_ARG timeout when
    // timeout_ns > 0. Returns false on timeout, true when CQEs may be ready.
    Result<bool> WaitCqe(uint64_t timeout_ns, Counter* syscalls);
    struct io_uring_cqe* PeekCqe();
    void AdvanceCqe();
  };

  // Shared pool of receive buffers, registered as one provided-buffer group
  // that every connection's multishot recv selects from.
  struct BufRing {
    struct io_uring_buf_ring* ring = nullptr;
    size_t ring_len = 0;
    std::byte* pool = nullptr;
    size_t pool_len = 0;
    unsigned entries = 0;
    unsigned buf_len = 0;
    unsigned short tail = 0;
    int free_bufs = 0;

    Status Init(Ring& r, unsigned entries, unsigned buf_len);
    void Recycle(unsigned short bid);
    std::byte* Buf(unsigned short bid) { return pool + static_cast<size_t>(bid) * buf_len; }
    void Destroy(Ring& r);
  };

  // One datagram owned by the transport until its CQE is reaped; user_data
  // on the send ring is a pointer to this.
  struct SendOp {
    uint16_t peer = 0;
    struct msghdr mh {};
    struct iovec iov {};
    std::vector<std::byte> data;
  };

  // Per-destination send state: the FIFO queue plus the in-flight chain.
  // Move-only so vector relocation never tries to copy the op queue.
  struct SendPeer {
    SendPeer() = default;
    SendPeer(SendPeer&&) = default;
    SendPeer& operator=(SendPeer&&) = default;
    std::deque<std::unique_ptr<SendOp>> queue;
    unsigned inflight = 0;  // CQEs outstanding for the submitted chain
    bool gone = false;
  };

  // Per-connection receive state for the two-datagram reassembly.
  struct RecvConn {
    int fd = -1;
    struct msghdr mh {};  // multishot recvmsg template (no iov; ring buffers)
    bool armed = false;
    bool open = false;
    bool have_header = false;
    MsgHeader header{};
  };

  UringTransport(HostId me, std::vector<int> fds_by_peer);
  Status InitRings(const UringOptions& opts);

  // --- send side (any thread, under send_mu_) ---
  Status EnqueueSend(uint16_t to, const MsgHeader& h, const void* payload, size_t len);
  // Submits the next chain for every peer with queued work and no chain in
  // flight. Returns the submit status (queue state is always consistent).
  Status PumpSendsLocked(bool allow_defer);
  void ReapSendCqesLocked(std::vector<HostId>* newly_dead);
  // Non-blocking progress from the poller so queued chains drain even when
  // no new Send arrives.
  void DrainSendsFromPoller();

  // --- recv side (poller thread only) ---
  Status ArmRecv(uint16_t conn_idx);
  void ArmAllIdleRecvs();
  // Handles one recv CQE; sets *delivered when a full message reached `h`.
  Status ConsumeRecvCqe(struct io_uring_cqe* cqe, MsgHeader* h, const PayloadSink& sink,
                        bool* delivered, std::vector<HostId>* newly_dead);
  void RetireConn(uint16_t conn_idx, std::vector<HostId>* newly_dead);

  HostId me_;
  std::vector<int> fds_;   // fds_[me_] is the send end of the self-loop
  int self_recv_fd_ = -1;  // receive end of the self-loop
  bool sqpoll_active_ = false;

  // Send ring + all send state, shared by app and server threads.
  std::mutex send_mu_;
  Ring send_ring_;
  std::vector<SendPeer> send_peers_;
  unsigned burst_depth_ = 0;  // BeginBurst nesting (under send_mu_)
  size_t inflight_ops_ = 0;   // total outstanding send CQEs

  // Recv ring + buffer ring, owned exclusively by the poller thread.
  Ring recv_ring_;
  BufRing buf_ring_;
  // recv_conns_[j] is the connection to host j; recv_conns_[me_] is the
  // self-loop's receive end. CQE user_data on the recv ring is the index.
  std::vector<RecvConn> recv_conns_;
  uint32_t rotation_ = 0;  // fairness cursor (poller thread only)

  // Process-global wire metrics (same names as SocketTransport) plus the
  // uring-specific submission counters the bench reads.
  Counter* msgs_sent_ = nullptr;
  Counter* msgs_recv_ = nullptr;
  Histogram* send_ns_ = nullptr;
  Histogram* send_bytes_ = nullptr;
  Histogram* recv_bytes_ = nullptr;
  Counter* syscalls_ = nullptr;        // net.syscalls — every kernel entry
  Counter* submits_ = nullptr;         // net.uring.submits
  Histogram* sqe_batch_ = nullptr;     // net.uring.sqe_batch — SQEs/enter
  Counter* recv_cqes_ = nullptr;       // net.uring.recv_cqes
};

}  // namespace millipage

#endif  // SRC_NET_URING_TRANSPORT_H_
