// Cost model pricing real protocol event counts into modeled execution
// times, used to reproduce the *shape* of the paper's Figure 6 (speedups and
// breakdown) and Figure 7 (chunking) on a machine that cannot run eight
// hosts in parallel.
//
// Default parameters are taken from the paper's own measurements:
//   * Table 1 basic costs (fault 26 us, set/get protection 12/7 us, header
//     message 12 us, data messages 22/34/90 us for 0.5/1/4 KB, MPT 7 us);
//   * Section 4.2 fault service times (read 204-314 us, write 212-480 us,
//     barrier 59-153 us, lock+unlock 67-80 us);
//   * Section 4.3.1's ~500 us average server-thread response delay caused by
//     the FM polling / NT timer-resolution problem (tunable: set it to zero
//     to model the "polling problem solved" environment the paper
//     anticipates).
//
// Applications report deterministic work units; each app calibrates
// ns-per-unit once so that single-host modeled time matches the scale of
// real execution. Event counts come from real protocol runs, so who faults,
// how often, and how much data moves are measured, not simulated.

#ifndef SRC_MODEL_COST_MODEL_H_
#define SRC_MODEL_COST_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace millipage {

struct CostModel {
  // Table 1.
  double fault_trap_us = 26.0;
  double get_prot_us = 7.0;
  double set_prot_us = 12.0;
  double header_us = 12.0;
  double mpt_lookup_us = 7.0;
  // Linear fit of Table 1's data-message rows (22/34/90 us at 0.5/1/4 KB).
  double data_base_us = 12.3;
  double data_per_byte_us = 0.0190;
  // Faulting-thread wakeup + scheduling, calibrated so a 128-byte read
  // fault costs the paper's 204 us.
  double wakeup_us = 96.0;
  // Average extra server-thread response delay (Section 4.3.1: ~500 us due
  // to FM polling + NT timer resolution).
  double server_response_us = 500.0;
  // Section 4.2: barrier 59-153 us for 1-8 hosts (linear), lock ~70 us.
  double barrier_base_us = 59.0;
  double barrier_per_host_us = 13.4;
  double lock_us = 70.0;
  // Extra write-fault cost per invalidated read copy (write fault spans
  // 212-366 us at 128 B depending on copyset size).
  double per_invalidation_us = 22.0;
  double prefetch_issue_us = 5.0;
  // A request that queues behind an in-service one waits, on average, half
  // of the in-flight request's remaining service time.
  double competing_wait_factor = 0.5;

  double DataMsgUs(double bytes) const { return data_base_us + data_per_byte_us * bytes; }
  double ReadFaultUs(double avg_bytes) const;
  double WriteFaultUs(double avg_bytes, double avg_invalidations) const;
  double BarrierUs(uint16_t hosts) const;
  double PrefetchUs(double avg_bytes) const;

  // Returns the model with the service-delay problem "solved".
  CostModel WithFastService() const {
    CostModel m = *this;
    m.server_response_us = 0.0;
    return m;
  }
};

// Per-category modeled time, matching the right-hand chart of Figure 6.
struct Breakdown {
  double comp_us = 0;
  double prefetch_us = 0;
  double read_fault_us = 0;
  double write_fault_us = 0;
  double synch_us = 0;

  double total() const {
    return comp_us + prefetch_us + read_fault_us + write_fault_us + synch_us;
  }
  std::string ToString() const;
};

struct AppTimingInput {
  double ns_per_work_unit = 1.0;  // application calibration constant
  uint16_t num_hosts = 1;
  // Initial epochs excluded from pricing (cold-start data distribution, per
  // the SPLASH-2 measurement methodology the paper's suite follows).
  uint32_t skip_epochs = 0;
  // Epoch records from every host of the run (any order).
  std::vector<EpochRecord> epochs;
};

struct ModeledRun {
  double total_us = 0;
  Breakdown breakdown;  // averaged over hosts, summed over epochs
  uint32_t num_epochs = 0;
};

// Prices a run: per barrier epoch, the critical path is the slowest host's
// compute + fault service time; barrier cost and wait (imbalance) land in
// the synch category.
ModeledRun ModelRun(const CostModel& model, const AppTimingInput& input);

inline double Speedup(const ModeledRun& serial, const ModeledRun& parallel) {
  return parallel.total_us > 0 ? serial.total_us / parallel.total_us : 0.0;
}

}  // namespace millipage

#endif  // SRC_MODEL_COST_MODEL_H_
