// Unit tests for src/common: Status/Result, RNG determinism, statistics.

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"

namespace millipage {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::Ok().ok());
  const Status e = Status::Invalid("bad");
  EXPECT_FALSE(e.ok());
  EXPECT_EQ(e.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(e.ToString(), "INVALID_ARGUMENT: bad");
  EXPECT_EQ(Status::Ok().ToString(), "OK");
}

TEST(StatusTest, ErrnoCapturesStrerror) {
  errno = ENOENT;
  const Status e = Status::Errno("open");
  EXPECT_FALSE(e.ok());
  EXPECT_NE(e.message().find("open"), std::string::npos);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) {
    return Status::Invalid("not positive");
  }
  return v;
}

Status UseValue(int v, int* out) {
  MP_ASSIGN_OR_RETURN(int parsed, ParsePositive(v));
  *out = parsed * 2;
  return Status::Ok();
}

TEST(ResultTest, ValueAndErrorPaths) {
  auto ok = ParsePositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 21);
  auto err = ParsePositive(-1);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);

  int out = 0;
  EXPECT_TRUE(UseValue(5, &out).ok());
  EXPECT_EQ(out, 10);
  EXPECT_FALSE(UseValue(-5, &out).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).Next(), c.Next());
}

TEST(RngTest, BoundsRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(17), 17u);
    const int64_t v = rng.Range(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(HostCountersTest, AddAndSubtract) {
  HostCounters a;
  a.read_faults = 10;
  a.bytes_sent = 100;
  HostCounters b;
  b.read_faults = 3;
  b.bytes_sent = 40;
  HostCounters sum = a;
  sum += b;
  EXPECT_EQ(sum.read_faults, 13u);
  EXPECT_EQ(sum.bytes_sent, 140u);
  const HostCounters diff = sum - a;
  EXPECT_EQ(diff.read_faults, 3u);
  EXPECT_EQ(diff.bytes_sent, 40u);
}

// Latency histogram coverage lives in metrics_test.cc (Histogram /
// HistogramSnapshot superseded the old stats.h LatencyHistogram).

TEST(SampleStatsTest, Describes) {
  const SampleStats s = SampleStats::FromSamples({1, 2, 3, 4, 100});
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 100);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_DOUBLE_EQ(s.mean, 22);
  EXPECT_GT(s.stddev, 0);
  const SampleStats empty = SampleStats::FromSamples({});
  EXPECT_DOUBLE_EQ(empty.mean, 0);
}

}  // namespace
}  // namespace millipage
