#include "src/net/sim_transport.h"

#include <cstring>

#include "src/common/logging.h"
#include "src/common/metrics.h"

namespace millipage {

// The fabric-facing Transport of one simulated host. Its only job is to
// attach the sender's identity to Send and to drain staged deliveries.
class SimEndpoint : public Transport {
 public:
  SimEndpoint(SimNet* net, HostId me) : net_(net), me_(me) {}

  Status Send(HostId to, MsgHeader h, const void* payload, size_t len) override {
    return net_->SendFrom(me_, to, h, payload, len);
  }

  Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                    uint64_t timeout_us) override {
    // The scheduler owns time: there is nothing to wait for that ScheduleNext
    // has not already staged, so the timeout is irrelevant.
    (void)timeout_us;
    return net_->PollStaged(me, h, sink);
  }

  uint16_t num_hosts() const override { return net_->num_hosts(); }

 private:
  SimNet* const net_;
  const HostId me_;
};

SimNet::SimNet(uint16_t num_hosts, uint64_t seed, SimOptions options)
    : num_hosts_(num_hosts), options_(options), seed_(seed), rng_(seed), staged_(num_hosts) {
  MP_CHECK(num_hosts > 0);
  MP_CHECK(options_.min_delay_us <= options_.max_delay_us);
  send_bytes_ = MetricsRegistry::Global().GetHistogram("net.send_bytes");
  endpoints_.reserve(num_hosts);
  for (uint16_t h = 0; h < num_hosts; ++h) {
    endpoints_.push_back(std::make_unique<SimEndpoint>(this, h));
  }
}

SimNet::PairState& SimNet::Pair(size_t pair) {
  auto it = pairs_.find(pair);
  if (it == pairs_.end()) {
    // Same seed formula the eagerly-preallocated fabric used, so a pair's
    // jitter stream is identical whether it is created up-front or on its
    // first send.
    it = pairs_.emplace(pair, PairState(seed_ ^ (0x9e3779b97f4a7c15ULL * (pair + 1)))).first;
  }
  return it->second;
}

void SimNet::UnindexHead(size_t pair, uint64_t arrival) {
  const auto it = heads_.find(arrival);
  MP_CHECK(it != heads_.end());
  it->second.erase(pair);
  if (it->second.empty()) {
    heads_.erase(it);
  }
}

SimNet::~SimNet() = default;

Transport* SimNet::endpoint(HostId h) const {
  MP_CHECK(h < num_hosts_);
  return endpoints_[h].get();
}

uint64_t SimNet::now_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_us_;
}

size_t SimNet::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = queued_;
  for (const auto& q : staged_) {
    n += q.size();
  }
  return n;
}

uint64_t SimNet::delivered() const {
  std::lock_guard<std::mutex> lock(mu_);
  return delivered_;
}

uint64_t SimNet::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void SimNet::Drop(HostId dst, MsgType type, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  drop_rules_.push_back(DropRule{dst, type, count});
}

void SimNet::KillHost(HostId v) {
  MP_CHECK(v < num_hosts_);
  std::lock_guard<std::mutex> lock(mu_);
  dead_.Add(v);
  // In-flight datagrams die with the host: purge every pair it sends on or
  // receives on, unhooking their heads from the scheduling index.
  for (auto it = pairs_.begin(); it != pairs_.end();) {
    const size_t pair = it->first;
    const HostId from = static_cast<HostId>(pair / num_hosts_);
    const HostId to = static_cast<HostId>(pair % num_hosts_);
    if (from != v && to != v) {
      ++it;
      continue;
    }
    if (!it->second.q.empty()) {
      UnindexHead(pair, it->second.q.front().arrival_us);
      dropped_ += it->second.q.size();
      queued_ -= it->second.q.size();
    }
    // Erase the whole pair state: a dead host's channels carry no further
    // traffic (SendFrom swallows), so the jitter stream is never consulted
    // again and the tail clamp is moot.
    it = pairs_.erase(it);
  }
  dropped_ += staged_[v].size();
  staged_[v].clear();
}

HostSet SimNet::dead_set() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

Status SimNet::SendFrom(HostId from, HostId to, const MsgHeader& h, const void* payload,
                        size_t len) {
  if (to >= num_hosts_) {
    return Status::Invalid("SimNet: bad destination host");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_.Contains(from) || dead_.Contains(to)) {
    dropped_++;
    return Status::Ok();  // dead hosts neither send nor receive
  }
  for (DropRule& r : drop_rules_) {
    if (r.remaining > 0 && r.dst == to && r.type == h.msg_type()) {
      r.remaining--;
      dropped_++;
      return Status::Ok();
    }
  }
  send_bytes_->Record(sizeof(MsgHeader) + len);
  SimMsg m;
  m.h = h;
  if (payload != nullptr && len > 0) {
    m.h.flags |= kFlagHasPayload;
    m.h.pgsize = static_cast<uint32_t>(len);
    m.payload.resize(len);
    std::memcpy(m.payload.data(), payload, len);
  }
  // Jitter explores interleavings; the pair-tail clamp keeps each (sender,
  // receiver) channel FIFO regardless of the draws.
  const size_t pair = PairIndex(from, to);
  PairState& ps = Pair(pair);
  const uint64_t jitter =
      options_.min_delay_us == options_.max_delay_us
          ? options_.min_delay_us
          : ps.rng.Range(options_.min_delay_us, options_.max_delay_us);
  const uint64_t arrival = std::max(now_us_ + jitter, ps.tail_us);
  ps.tail_us = arrival;
  m.arrival_us = arrival;
  if (ps.q.empty()) {
    heads_[arrival].insert(pair);  // this message becomes the pair's head
  }
  ps.q.push_back(std::move(m));
  queued_++;
  return Status::Ok();
}

bool SimNet::ScheduleNext(HostId* dst) {
  std::lock_guard<std::mutex> lock(mu_);
  // The heads index keeps pair-queue heads bucketed by arrival time, so the
  // globally minimal bucket is begin() — no scan over every pair. The bucket
  // iterates pairs in ascending id order (std::set), the same candidate
  // order the original linear scan produced, so the seeded tie-break draws
  // match and schedules stay byte-identical.
  if (heads_.empty()) {
    return false;
  }
  const auto bucket = heads_.begin();
  const std::set<size_t>& candidates = bucket->second;
  size_t pair;
  if (candidates.size() == 1) {
    pair = *candidates.begin();
  } else {
    size_t skip = rng_.Below(candidates.size());
    auto it = candidates.begin();
    std::advance(it, skip);
    pair = *it;
  }
  PairState& ps = pairs_.at(pair);
  SimMsg m = std::move(ps.q.front());
  ps.q.pop_front();
  queued_--;
  UnindexHead(pair, m.arrival_us);
  if (!ps.q.empty()) {
    heads_[ps.q.front().arrival_us].insert(pair);
  }
  now_us_ = std::max(now_us_, m.arrival_us);
  const HostId to = static_cast<HostId>(pair % num_hosts_);
  staged_[to].push_back(std::move(m));
  delivered_++;
  if (dst != nullptr) {
    *dst = to;
  }
  return true;
}

Result<bool> SimNet::PollStaged(HostId me, MsgHeader* h, const PayloadSink& sink) {
  std::unique_lock<std::mutex> lock(mu_);
  MP_CHECK(me < num_hosts_);
  if (staged_[me].empty()) {
    return false;
  }
  SimMsg m = std::move(staged_[me].front());
  staged_[me].pop_front();
  lock.unlock();  // the sink may re-enter the node; keep the fabric unlocked
  *h = m.h;
  if (!m.payload.empty()) {
    std::byte* dst_ptr = sink(m.h);
    if (dst_ptr != nullptr) {
      std::memcpy(dst_ptr, m.payload.data(), m.payload.size());
    } else {
      h->flags &= static_cast<uint8_t>(~kFlagHasPayload);
    }
  }
  return true;
}

}  // namespace millipage
