// Multi-process deployment test: one process per host over the SEQPACKET
// mesh — the paper's deployment shape. Shared state set up by the manager
// process is fetched by the others through genuine cross-process faults.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/common/time_util.h"
#include "src/dsm/global_ptr.h"
#include "src/dsm/process_cluster.h"

namespace millipage {
namespace {

// After RunForkedCluster returns, every child must be reaped: a further wait
// on any child must come back ECHILD (no zombies left behind).
void ExpectNoZombies() {
  int wstatus = 0;
  errno = 0;
  const pid_t r = ::waitpid(-1, &wstatus, WNOHANG);
  EXPECT_EQ(r, -1);
  EXPECT_EQ(errno, ECHILD);
}

TEST(ProcessCluster, CrossProcessReadAndWrite) {
  DsmConfig cfg;
  cfg.transport_backend = TransportBackendFromEnv();
  // MILLIPAGE_TRANSPORT=uring re-runs the forked suite over the io_uring
  // transport (falls back to sockets on old kernels); the CI matrix sets it.
  cfg.transport_backend = TransportBackendFromEnv();
  cfg.num_hosts = 3;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  const Status st = RunForkedCluster(cfg, [](DsmNode& node, HostId host) {
    GlobalPtr<int> data;
    GlobalPtr<GlobalAddr> mailbox;
    if (host == 0) {
      // The manager allocates a mailbox at a deterministic address (first
      // allocation) plus a payload, and publishes the payload's address
      // through the mailbox.
      mailbox = SharedAlloc<GlobalAddr>(1);
      data = SharedAlloc<int>(8);
      for (int i = 0; i < 8; ++i) {
        data[i] = 100 + i;
      }
      *mailbox = data.addr();
    }
    node.Barrier();
    if (host != 0) {
      // Non-managers learn the first allocation's address by allocating
      // nothing: the mailbox is by construction the first minipage, at the
      // offset/view the manager's allocator assigned. Hosts reconstruct it
      // via a second barrier-published convention: view 0, offset 0.
      GlobalPtr<GlobalAddr> mb(GlobalAddr{0, 0});
      const GlobalAddr payload = *mb;  // read fault across processes
      GlobalPtr<int> remote(payload);
      // Hosts 1 and 2 run concurrently and write slots 1 and 2; only the
      // untouched tail is guaranteed to hold the initial values here.
      for (int i = 3; i < 8; ++i) {
        if (remote[i] != 100 + i) {
          MP_LOG(Error) << "host " << host << " saw wrong value at " << i;
          _exit(3);
        }
      }
      // Write back host-specific values (exclusive-write protocol).
      remote[host] = 1000 + host;
    }
    node.Barrier();
    if (host == 0) {
      for (int h = 1; h < 3; ++h) {
        if (data[h] != 1000 + h) {
          MP_LOG(Error) << "manager saw wrong write-back from host " << h;
          _exit(4);
        }
      }
    }
    node.Barrier();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ProcessCluster, LocksAndBarriersAcrossProcesses) {
  DsmConfig cfg;
  cfg.transport_backend = TransportBackendFromEnv();
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  const Status st = RunForkedCluster(cfg, [](DsmNode& node, HostId host) {
    GlobalPtr<int> counter(GlobalAddr{0, 0});
    if (host == 0) {
      GlobalPtr<int> c = SharedAlloc<int>(1);
      *c = 0;
      MP_CHECK(c.addr().offset == 0 && c.addr().view == 0);
    }
    node.Barrier();
    for (int i = 0; i < 10; ++i) {
      node.Lock(0);
      *counter = *counter + 1;
      node.Unlock(0);
    }
    node.Barrier();
    if (*counter != 20) {
      MP_LOG(Error) << "counter=" << *counter;
      _exit(5);
    }
    node.Barrier();
  });
  EXPECT_TRUE(st.ok()) << st.ToString();
}

TEST(ProcessCluster, ChildFailureIsReported) {
  DsmConfig cfg;
  cfg.transport_backend = TransportBackendFromEnv();
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  const Status st = RunForkedCluster(cfg, [](DsmNode& node, HostId host) {
    node.Barrier();
    if (host == 1) {
      _exit(7);  // simulated application failure
    }
    node.Barrier();  // host 0 would block forever without the runtime's
                     // final-barrier convention; host 1's exit breaks it
  });
  EXPECT_FALSE(st.ok());
  ExpectNoZombies();
}

TEST(ProcessCluster, NonZeroExitIsRecordedInOutcomes) {
  DsmConfig cfg;
  cfg.transport_backend = TransportBackendFromEnv();
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  cfg.sync_timeout_ms = 3000;  // host 0's doomed final barrier fails promptly
  const uint64_t t0 = MonotonicNowNs();
  std::vector<HostOutcome> outcomes;
  const Status st = RunForkedCluster(
      cfg,
      [](DsmNode&, HostId host) {
        if (host == 1) {
          _exit(7);
        }
      },
      /*timeout_ms=*/60000, &outcomes);
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[1].exited);
  EXPECT_FALSE(outcomes[1].signaled);
  EXPECT_EQ(outcomes[1].exit_code, 7);
  // Host 0 noticed the dead peer at the final barrier and exited on its own.
  EXPECT_TRUE(outcomes[0].exited);
  EXPECT_FALSE(outcomes[0].swept);
  EXPECT_EQ(outcomes[0].exit_code, kLivenessExitCode);
  EXPECT_LT(elapsed_ms, 10000u);
  ExpectNoZombies();
}

TEST(ProcessCluster, ChildKilledBySignalIsRecorded) {
  DsmConfig cfg;
  cfg.transport_backend = TransportBackendFromEnv();
  cfg.num_hosts = 3;
  cfg.object_size = 1 << 20;
  cfg.sync_timeout_ms = 3000;
  const uint64_t t0 = MonotonicNowNs();
  std::vector<HostOutcome> outcomes;
  const Status st = RunForkedCluster(
      cfg,
      [](DsmNode&, HostId host) {
        if (host == 2) {
          ::raise(SIGKILL);  // hard crash, no cleanup of any kind
        }
      },
      /*timeout_ms=*/60000, &outcomes);
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  EXPECT_FALSE(st.ok());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[2].signaled);
  EXPECT_EQ(outcomes[2].term_signal, SIGKILL);
  for (int h = 0; h < 2; ++h) {
    EXPECT_TRUE(outcomes[h].exited) << "host " << h;
    EXPECT_FALSE(outcomes[h].signaled) << "host " << h;
    EXPECT_EQ(outcomes[h].exit_code, kLivenessExitCode) << "host " << h;
  }
  EXPECT_LT(elapsed_ms, 10000u);
  ExpectNoZombies();
}

}  // namespace
}  // namespace millipage
