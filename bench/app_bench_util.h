// Helpers shared by the application-level benches (Table 2, Figures 6, 7):
// construct an in-process cluster, run one of the paper's applications on
// it, and return the collected statistics.

#ifndef BENCH_APP_BENCH_UTIL_H_
#define BENCH_APP_BENCH_UTIL_H_

#include <memory>

#include "src/apps/app.h"
#include "src/common/logging.h"
#include "src/dsm/cluster.h"

namespace millipage {

inline DsmConfig AppBenchConfig(uint16_t hosts, uint32_t chunking = 1,
                                bool page_based = false) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 32 << 20;
  cfg.num_views = 32;
  cfg.chunking_level = chunking;
  cfg.page_based = page_based;
  return cfg;
}

inline AppRunResult RunAppOnCluster(const DsmConfig& cfg, App& app) {
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok()) << cluster.status().ToString();
  AppRunResult result = RunApp(**cluster, app);
  MP_CHECK(result.validation.ok()) << app.name() << ": " << result.validation.ToString();
  return result;
}

}  // namespace millipage

#endif  // BENCH_APP_BENCH_UTIL_H_
