#include "src/net/inproc_transport.h"

#include <chrono>
#include <cstring>

#include "src/common/metrics.h"

namespace millipage {

InProcTransport::InProcTransport(uint16_t num_hosts) {
  boxes_.reserve(num_hosts);
  for (uint16_t i = 0; i < num_hosts; ++i) {
    boxes_.push_back(std::make_unique<Mailbox>());
  }
  send_bytes_ = MetricsRegistry::Global().GetHistogram("net.send_bytes");
}

Status InProcTransport::Send(HostId to, MsgHeader h, const void* payload, size_t len) {
  if (to >= boxes_.size()) {
    return Status::Invalid("InProcTransport::Send: bad destination host");
  }
  // One Send = one datagram, whatever it carries — a batched frame's N
  // records land in a single sample, which is the point of batching.
  send_bytes_->Record(sizeof(MsgHeader) + len);
  Item item;
  if (payload != nullptr && len > 0) {
    h.flags |= kFlagHasPayload;
    h.pgsize = static_cast<uint32_t>(len);
    item.payload.resize(len);
    std::memcpy(item.payload.data(), payload, len);
  }
  item.h = h;
  Mailbox& box = *boxes_[to];
  {
    std::lock_guard<std::mutex> lock(box.mu);
    box.q.push_back(std::move(item));
  }
  box.cv.notify_one();
  return Status::Ok();
}

Result<bool> InProcTransport::Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                                   uint64_t timeout_us) {
  if (me >= boxes_.size()) {
    return Status::Invalid("InProcTransport::Poll: bad host");
  }
  Mailbox& box = *boxes_[me];
  Item item;
  {
    std::unique_lock<std::mutex> lock(box.mu);
    if (box.q.empty()) {
      if (timeout_us == 0) {
        return false;
      }
      if (!box.cv.wait_for(lock, std::chrono::microseconds(timeout_us),
                           [&box] { return !box.q.empty(); })) {
        return false;
      }
    }
    item = std::move(box.q.front());
    box.q.pop_front();
  }
  *h = item.h;
  if (item.h.has_payload()) {
    std::byte* dst = sink(item.h);
    if (dst != nullptr) {
      std::memcpy(dst, item.payload.data(), item.payload.size());
    }
  }
  return true;
}

}  // namespace millipage
