# Empty dependencies file for bench_ext_composed_views.
# This may be replaced when dependencies are built.
