# Empty dependencies file for tsp_search.
# This may be replaced when dependencies are built.
