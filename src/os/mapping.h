// Mapping: RAII wrapper over one mmap'ed view of a MemoryObject (or an
// anonymous region). This is the MapViewOfFile analog; a View in the
// multiview library is a Mapping plus per-vpage protection bookkeeping.

#ifndef SRC_OS_MAPPING_H_
#define SRC_OS_MAPPING_H_

#include <cstddef>
#include <cstdint>

#include "src/common/status.h"
#include "src/os/memory_object.h"
#include "src/os/protection.h"

namespace millipage {

class Mapping {
 public:
  // Maps `length` bytes of `object` starting at `offset` with initial
  // protection `prot`. The kernel chooses the address.
  static Result<Mapping> MapObject(const MemoryObject& object, size_t offset, size_t length,
                                   Protection prot);

  // Maps anonymous private memory (used by twins, buffers, tests).
  static Result<Mapping> MapAnonymous(size_t length, Protection prot);

  Mapping() = default;
  ~Mapping();

  Mapping(Mapping&& other) noexcept;
  Mapping& operator=(Mapping&& other) noexcept;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;

  bool valid() const { return base_ != nullptr; }
  std::byte* base() const { return base_; }
  size_t length() const { return length_; }
  uintptr_t base_addr() const { return reinterpret_cast<uintptr_t>(base_); }

  // True if `addr` falls inside this mapping.
  bool Contains(const void* addr) const {
    const auto a = reinterpret_cast<uintptr_t>(addr);
    return a >= base_addr() && a < base_addr() + length_;
  }

  // Changes protection of [offset, offset+len); both must be page-aligned.
  Status Protect(size_t offset, size_t len, Protection prot) const;

  // Changes protection of the whole mapping.
  Status ProtectAll(Protection prot) const { return Protect(0, length_, prot); }

 private:
  Mapping(std::byte* base, size_t length) : base_(base), length_(length) {}

  std::byte* base_ = nullptr;
  size_t length_ = 0;
};

}  // namespace millipage

#endif  // SRC_OS_MAPPING_H_
