#include "src/diff/diff.h"

#include <cstring>

namespace millipage {

namespace {

void PutU32(std::vector<std::byte>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

bool GetU32(const std::vector<std::byte>& in, size_t* pos, uint32_t* v) {
  if (*pos + sizeof(*v) > in.size()) {
    return false;
  }
  std::memcpy(v, in.data() + *pos, sizeof(*v));
  *pos += sizeof(*v);
  return true;
}

}  // namespace

Twin::Twin(const void* src, size_t len) : copy_(len) {
  std::memcpy(copy_.data(), src, len);
}

Diff CreateDiff(const Twin& twin, const void* current, size_t len, size_t merge_gap) {
  Diff diff;
  const auto* cur = static_cast<const std::byte*>(current);
  const std::byte* old = twin.data();
  const size_t n = len < twin.size() ? len : twin.size();

  size_t i = 0;
  while (i < n) {
    if (cur[i] == old[i]) {
      ++i;
      continue;
    }
    // Start of a run; extend while changed, bridging gaps < merge_gap.
    const size_t start = i;
    size_t last_changed = i;
    ++i;
    while (i < n) {
      if (cur[i] != old[i]) {
        last_changed = i;
        ++i;
      } else if (i - last_changed < merge_gap) {
        ++i;
      } else {
        break;
      }
    }
    const size_t run_len = last_changed - start + 1;
    PutU32(&diff.encoded, static_cast<uint32_t>(start));
    PutU32(&diff.encoded, static_cast<uint32_t>(run_len));
    const size_t at = diff.encoded.size();
    diff.encoded.resize(at + run_len);
    std::memcpy(diff.encoded.data() + at, cur + start, run_len);
  }
  return diff;
}

Status ApplyDiff(const Diff& diff, void* target, size_t len) {
  auto* dst = static_cast<std::byte*>(target);
  size_t pos = 0;
  uint64_t prev_end = 0;
  while (pos < diff.encoded.size()) {
    uint32_t offset = 0;
    uint32_t run_len = 0;
    if (!GetU32(diff.encoded, &pos, &offset) || !GetU32(diff.encoded, &pos, &run_len)) {
      return Status::Invalid("ApplyDiff: truncated record header");
    }
    if (run_len == 0) {
      return Status::Invalid("ApplyDiff: zero-length run");
    }
    if (offset < prev_end) {
      return Status::Invalid("ApplyDiff: offsets not strictly increasing");
    }
    if (static_cast<uint64_t>(offset) + run_len > len) {
      return Status::OutOfRange("ApplyDiff: run exceeds target");
    }
    if (pos + run_len > diff.encoded.size()) {
      return Status::Invalid("ApplyDiff: truncated run payload");
    }
    std::memcpy(dst + offset, diff.encoded.data() + pos, run_len);
    pos += run_len;
    prev_end = offset + run_len;
  }
  return Status::Ok();
}

size_t DiffRunCount(const Diff& diff) {
  size_t pos = 0;
  size_t runs = 0;
  while (pos < diff.encoded.size()) {
    uint32_t offset = 0;
    uint32_t run_len = 0;
    if (!GetU32(diff.encoded, &pos, &offset) || !GetU32(diff.encoded, &pos, &run_len)) {
      break;
    }
    pos += run_len;
    ++runs;
  }
  return runs;
}

}  // namespace millipage
