// Figure 5 reproduction: overhead of MultiView as a function of the number
// of views. A byte array of size N is laid out in equal minipages, n per
// page (static layout); the traversal reads every element once per
// iteration through its minipage's view. The paper measures slowdown
// relative to n = 1 and finds breaking points where the PTE working set
// falls out of the L2 cache (at n * N ~ 512 MB*views on a 512 KB L2),
// beyond which the slowdown grows linearly in n.
//
// Modern CPUs have far larger caches and TLBs, so the breaking points land
// later; the shape — flat, then a knee, then linear growth — is the claim
// under test. The traversal itself is identical work for every n; only the
// address-translation footprint changes.

#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/multiview/static_layout.h"
#include "src/multiview/view_set.h"
#include "src/os/page.h"

namespace millipage {
namespace {

// Traverses the array once, reading each element via the view that owns its
// minipage, and returns a checksum so the reads cannot be elided. The
// per-element work (view computation + indexed load) is identical for every
// view count, so measured slowdown isolates the address-translation
// footprint — exactly what Figure 5 attributes the breaking points to.
uint64_t Traverse(const ViewSet& vs, const StaticLayout& layout, size_t n_bytes) {
  const uint32_t views = layout.minipages_per_page();
  const size_t page_mask = PageSize() - 1;
  const size_t page_shift = 12;  // 4 KB pages
  std::vector<const std::byte*> base(views);
  for (uint32_t v = 0; v < views; ++v) {
    base[v] = vs.app_base(v);
  }
  uint64_t sum = 0;
  for (size_t off = 0; off < n_bytes; off += 8) {
    // view = ((off % page) * views) / page, computed branch-free the same
    // way for every n.
    const size_t view = ((off & page_mask) * views) >> page_shift;
    sum += *reinterpret_cast<const uint64_t*>(base[view] + off);
  }
  return sum;
}

double MeasureTraversalMs(size_t n_bytes, uint32_t views, int iters) {
  auto vs = ViewSet::Create(n_bytes, views);
  MP_CHECK(vs.ok());
  MP_CHECK_OK((*vs)->ProtectAllAppViews(Protection::kReadWrite));
  auto layout = StaticLayout::Create(n_bytes, views);
  MP_CHECK(layout.ok());
  // Touch the backing once through the privileged view.
  std::memset((*vs)->PrivAddr(0), 1, n_bytes);
  // Warmup populates every view's PTEs.
  uint64_t sink = Traverse(**vs, *layout, n_bytes);
  double best = 1e100;
  for (int r = 0; r < iters; ++r) {
    const uint64_t t0 = MonotonicNowNs();
    sink += Traverse(**vs, *layout, n_bytes);
    const double ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
    if (ms < best) {
      best = ms;
    }
  }
  if (sink == 42) {
    std::printf("#");  // defeat dead-code elimination
  }
  return best;
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_fig5_multiview_overhead", env);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--full") {
      full = true;
    }
  }

  std::vector<size_t> sizes = {512 << 10, 2 << 20, 8 << 20, 16 << 20};
  std::vector<uint32_t> view_counts = {1, 2, 4, 8, 16, 32, 64, 128, 256, 512};
  if (!full) {
    sizes = {512 << 10, 4 << 20, 16 << 20};
    view_counts = {1, 4, 16, 64, 256, 512};
  }
  if (env.smoke()) {
    sizes = {256 << 10, 1 << 20};
    view_counts = {1, 4, 16};
  }

  PrintHeader("Figure 5: MultiView overhead (slowdown vs number of views)");
  std::printf("  %-10s", "views");
  for (size_t n : sizes) {
    const std::string label =
        n >= (1 << 20) ? std::to_string(n >> 20) + "MB" : std::to_string(n >> 10) + "KB";
    std::printf("%10s", label.c_str());
  }
  std::printf("\n");

  std::vector<double> base(sizes.size(), 0);
  for (uint32_t views : view_counts) {
    std::printf("  %-10u", views);
    for (size_t si = 0; si < sizes.size(); ++si) {
      const int iters = env.smoke() ? 2 : (sizes[si] > (4 << 20) ? 3 : 5);
      const double ms = MeasureTraversalMs(sizes[si], views, iters);
      double slowdown = 1.0;
      if (views == 1) {
        base[si] = ms;
      } else {
        slowdown = ms / base[si];
      }
      std::printf("%9.2fx", slowdown);
      const size_t elements = sizes[si] / 8;
      BenchResult r;
      r.name = "traversal";
      r.params = "views=" + std::to_string(views) + " bytes=" + std::to_string(sizes[si]);
      r.iterations = elements;
      r.ns_per_op = ms * 1e6 / static_cast<double>(elements);  // per element read
      r.values["slowdown"] = slowdown;
      reporter.Add(std::move(r));
    }
    std::printf("\n");
  }
  PrintNote("paper: <4% overhead for n <= 32; breaking points where n*N exceeds the");
  PrintNote("PTE capacity of the L2 cache (1998: n*N ~ 512 MB*views), then linear growth.");
  return reporter.Finish();
}
