// Extension bench (paper Section 5, "Reduced-Consistency Protocols"): the
// paper proposes combining chunked minipages with a reduced-consistency
// protocol — chunking cuts fine-grain overhead, the relaxed model absorbs
// the false sharing chunking reintroduces. This bench compares three
// protocol/granularity points on two canonical sharing patterns:
//
//   SC + fine-grain minipages   (millipage's main configuration)
//   SC + full pages             (Ivy-style baseline: false sharing hurts)
//   LRC + full pages            (this repo's home-based RC extension)
//
// Patterns: (a) alternating writers on one page — pure false sharing;
// (b) a WATER-like epoch: bulk read phase over many minipages, then
// scattered writes. Costs are modeled with the paper's Table 1 / Section 4.2
// parameters (a 4 KB run-length diff priced at the paper's 250 us).

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/lrc/lrc_cluster.h"
#include "src/model/cost_model.h"

namespace millipage {
namespace {

struct Row {
  const char* name;
  uint64_t faults = 0;
  uint64_t messages = 0;
  uint64_t data_bytes = 0;
  uint64_t diffs = 0;
  double modeled_us = 0;
};

// Round/epoch counts, reduced by --smoke before any cluster spawns.
int g_rounds = 30;
int g_epochs = 6;
constexpr int kVarsPerHost = 8;

DsmConfig Base(uint16_t hosts, bool page_based) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 4 << 20;
  cfg.num_views = 16;
  cfg.page_based = page_based;
  return cfg;
}

const CostModel kModel;

double DiffUs(uint64_t bytes) {
  // Section 4.2: 250 us per 4 KB run-length diff, linear in size; creation
  // at the writer plus application at the home.
  return 2.0 * 250.0 * static_cast<double>(bytes) / 4096.0;
}

// --- pattern (a): alternating writers, variables interleaved on pages ------

Row RunScAlternating(bool page_based) {
  auto cluster = DsmCluster::Create(Base(2, page_based));
  MP_CHECK(cluster.ok());
  std::vector<GlobalPtr<int>> vars;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < 2 * kVarsPerHost; ++i) {
      vars.push_back(SharedAlloc<int>(1));
      *vars.back() = 0;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < g_rounds; ++r) {
      for (int i = 0; i < kVarsPerHost; ++i) {
        GlobalPtr<int>& v = vars[static_cast<size_t>(2 * i + host)];
        *v = *v + 1;
      }
      node.Barrier();
    }
  });
  Row row{page_based ? "SC  + full pages" : "SC  + minipages "};
  for (uint16_t h = 0; h < 2; ++h) {
    const HostCounters c = (*cluster)->node(h).counters();
    row.faults += c.read_faults + c.write_faults;
    row.messages += c.messages_sent;
    row.data_bytes += c.read_fault_bytes + c.write_fault_bytes;
    row.modeled_us += static_cast<double>(c.read_faults) * kModel.ReadFaultUs(256) +
                      static_cast<double>(c.write_faults) * kModel.WriteFaultUs(256, 1);
  }
  row.modeled_us += g_rounds * kModel.BarrierUs(2);
  return row;
}

Row RunLrcAlternating() {
  auto cluster = LrcCluster::Create(Base(2, /*page_based=*/true));
  MP_CHECK(cluster.ok());
  std::vector<LrcPtr<int>> vars;
  (*cluster)->RunOnManager([&](LrcNode&) {
    for (int i = 0; i < 2 * kVarsPerHost; ++i) {
      vars.push_back(LrcAlloc<int>(1));
    }
    for (auto& v : vars) {
      *v = 0;
    }
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < g_rounds; ++r) {
      for (int i = 0; i < kVarsPerHost; ++i) {
        LrcPtr<int>& v = vars[static_cast<size_t>(2 * i + host)];
        *v = *v + 1;
      }
      node.Barrier();
    }
  });
  const LrcCounters c = (*cluster)->TotalCounters();
  Row row{"LRC + full pages"};
  row.faults = c.read_faults + c.write_faults;
  row.messages = c.messages_sent;
  row.data_bytes = c.fetch_bytes + c.diff_bytes;
  row.diffs = c.diffs_flushed;
  row.modeled_us = static_cast<double>(c.fetches) * kModel.ReadFaultUs(4096) +
                   static_cast<double>(c.local_upgrades) * kModel.fault_trap_us +
                   DiffUs(c.diff_bytes) +
                   static_cast<double>(c.diffs_flushed) * kModel.header_us +
                   g_rounds * kModel.BarrierUs(2);
  return row;
}

// --- pattern (b): WATER-like bulk-read epoch over chunked records -----------

constexpr int kRecords = 64;
constexpr int kRecordInts = 64;  // 256-byte records

Row RunScWaterish(uint32_t chunking) {
  DsmConfig cfg = Base(4, false);
  cfg.chunking_level = chunking;
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok());
  std::vector<GlobalPtr<int>> recs;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < kRecords; ++i) {
      recs.push_back(SharedAlloc<int>(kRecordInts));
    }
    for (auto& r : recs) {
      r[0] = 1;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    const int lo = kRecords * host / 4;
    const int hi = kRecords * (host + 1) / 4;
    node.Barrier();
    for (int e = 0; e < g_epochs; ++e) {
      long sum = 0;
      for (int i = 0; i < kRecords; ++i) {
        sum += recs[static_cast<size_t>(i)][0];  // bulk read phase
      }
      node.Barrier();
      for (int i = lo; i < hi; ++i) {
        recs[static_cast<size_t>(i)][1] = static_cast<int>(sum & 0xff);  // own updates
      }
      node.Barrier();
    }
  });
  Row row{chunking > 1 ? "SC  + chunked(4) " : "SC  + minipages  "};
  for (uint16_t h = 0; h < 4; ++h) {
    const HostCounters c = (*cluster)->node(h).counters();
    row.faults += c.read_faults + c.write_faults;
    row.messages += c.messages_sent;
    row.data_bytes += c.read_fault_bytes + c.write_fault_bytes;
    const double avg = chunking > 1 ? 1024.0 : 256.0;
    row.modeled_us += static_cast<double>(c.read_faults) * kModel.ReadFaultUs(avg) +
                      static_cast<double>(c.write_faults) * kModel.WriteFaultUs(avg, 1);
  }
  row.modeled_us += 2.0 * g_epochs * kModel.BarrierUs(4);
  return row;
}

Row RunLrcWaterish() {
  DsmConfig cfg = Base(4, false);
  cfg.chunking_level = 4;  // the paper's proposal: chunking + RC together
  auto cluster = LrcCluster::Create(cfg);
  MP_CHECK(cluster.ok());
  std::vector<LrcPtr<int>> recs;
  (*cluster)->RunOnManager([&](LrcNode&) {
    for (int i = 0; i < kRecords; ++i) {
      recs.push_back(LrcAlloc<int>(kRecordInts));
    }
    for (auto& r : recs) {
      r[0] = 1;
    }
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    const int lo = kRecords * host / 4;
    const int hi = kRecords * (host + 1) / 4;
    node.Barrier();
    for (int e = 0; e < g_epochs; ++e) {
      long sum = 0;
      for (int i = 0; i < kRecords; ++i) {
        sum += recs[static_cast<size_t>(i)][0];
      }
      node.Barrier();
      for (int i = lo; i < hi; ++i) {
        recs[static_cast<size_t>(i)][1] = static_cast<int>(sum & 0xff);
      }
      node.Barrier();
    }
  });
  const LrcCounters c = (*cluster)->TotalCounters();
  Row row{"LRC + chunked(4) "};
  row.faults = c.read_faults + c.write_faults;
  row.messages = c.messages_sent;
  row.data_bytes = c.fetch_bytes + c.diff_bytes;
  row.diffs = c.diffs_flushed;
  row.modeled_us = static_cast<double>(c.fetches) * kModel.ReadFaultUs(1024) +
                   static_cast<double>(c.local_upgrades) * kModel.fault_trap_us +
                   DiffUs(c.diff_bytes) +
                   static_cast<double>(c.diffs_flushed) * kModel.header_us +
                   2.0 * g_epochs * kModel.BarrierUs(4);
  return row;
}

void Print(BenchReporter& reporter, const char* pattern, const Row& r) {
  std::printf("  %-18s %8lu %10lu %12lu %7lu %12.0f\n", r.name,
              static_cast<unsigned long>(r.faults), static_cast<unsigned long>(r.messages),
              static_cast<unsigned long>(r.data_bytes), static_cast<unsigned long>(r.diffs),
              r.modeled_us);
  BenchResult row;
  row.name = r.name;
  row.params = std::string("pattern=") + pattern;
  row.iterations = 1;
  row.ns_per_op = r.modeled_us * 1000.0;
  row.values["faults"] = static_cast<double>(r.faults);
  row.values["messages"] = static_cast<double>(r.messages);
  row.values["data_bytes"] = static_cast<double>(r.data_bytes);
  row.values["diffs"] = static_cast<double>(r.diffs);
  reporter.Add(std::move(row));
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_ext_lrc", env);
  g_rounds = env.Scaled(30, 6);
  g_epochs = env.Scaled(6, 2);
  PrintHeader("Extension: SC/minipages vs SC/pages vs home-based LRC (Section 5)");

  std::printf("\n  pattern (a): two hosts alternately write interleaved variables\n");
  std::printf("  %-18s %8s %10s %12s %7s %12s\n", "protocol", "faults", "messages",
              "data bytes", "diffs", "modeled us");
  Print(reporter, "alternating", RunScAlternating(false));
  Print(reporter, "alternating", RunScAlternating(true));
  Print(reporter, "alternating", RunLrcAlternating());

  std::printf("\n  pattern (b): WATER-like bulk read phase + owner updates, 4 hosts\n");
  std::printf("  %-18s %8s %10s %12s %7s %12s\n", "protocol", "faults", "messages",
              "data bytes", "diffs", "modeled us");
  Print(reporter, "waterish", RunScWaterish(1));
  Print(reporter, "waterish", RunScWaterish(4));
  Print(reporter, "waterish", RunLrcWaterish());

  PrintNote("expected: (a) SC/minipages and LRC both dodge the page ping-pong that hits");
  PrintNote("SC/pages; (b) chunking cuts fault counts for both models, and LRC tolerates");
  PrintNote("the false sharing chunking reintroduces at the price of diff traffic --");
  PrintNote("the hybrid the paper's Section 5 proposes.");
  return reporter.Finish();
}
