// Minipage descriptor and the minipage table (MPT).
//
// A minipage is the paper's unit of sharing: a sub-page (or multi-page)
// region of the shared memory object, *associated with* exactly one
// application view. Protection for the minipage is controlled by protecting
// the vpages it occupies in its associated view; because no two minipages
// that overlap the same physical vpage share a view, their protections are
// independent even though they share physical memory.

#ifndef SRC_MULTIVIEW_MINIPAGE_H_
#define SRC_MULTIVIEW_MINIPAGE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/common/status.h"
#include "src/os/page.h"

namespace millipage {

using MinipageId = uint32_t;
inline constexpr MinipageId kInvalidMinipage = ~0u;

struct Minipage {
  MinipageId id = kInvalidMinipage;
  uint32_t view = 0;       // associated application view
  uint64_t offset = 0;     // byte offset within the memory object
  uint64_t length = 0;     // bytes

  uint64_t end() const { return offset + length; }
  uint64_t first_vpage() const { return offset / PageSize(); }
  uint64_t last_vpage() const { return (end() - 1) / PageSize(); }
  // <offset, length> pair within the first vpage, as the paper identifies a
  // minipage (generalized when it spans several vpages).
  uint64_t offset_in_vpage() const { return offset % PageSize(); }
};

// The MPT: minipage geometry plus (view, offset) -> minipage lookup.
// The manager host owns the authoritative MPT; lookups there are the
// "minipage translation" the paper prices at 7 us in Table 1.
class MinipageTable {
 public:
  MinipageTable() = default;

  // Defines a new minipage. Fails if it overlaps an existing minipage in the
  // same view.
  Result<MinipageId> Define(uint32_t view, uint64_t offset, uint64_t length);

  // Grows the most recently defined minipage in `view` to `new_length`
  // (used by the chunking allocator while a chunk is open).
  Status ExtendLast(MinipageId id, uint64_t new_length);

  // Translates an (application view, object offset) pair to the minipage
  // containing it, or nullptr.
  const Minipage* Lookup(uint32_t view, uint64_t offset) const;

  // Translates to the unique minipage intersecting the vpage that contains
  // `offset`, or nullptr. Unambiguous because the allocator never places two
  // minipages of one view on the same vpage. Needed for fault sources that
  // only report page-granular addresses (userfaultfd masks the low bits), so
  // a fault on a vpage whose minipage starts mid-page still translates.
  const Minipage* LookupVpage(uint32_t view, uint64_t offset) const;

  const Minipage& Get(MinipageId id) const { return pages_[id]; }
  size_t size() const { return pages_.size(); }
  bool empty() const { return pages_.empty(); }

  uint64_t lookup_count() const { return lookup_count_; }

 private:
  std::vector<Minipage> pages_;
  // Per view: start offset -> minipage id, for binary-search translation.
  std::vector<std::map<uint64_t, MinipageId>> by_view_;
  mutable uint64_t lookup_count_ = 0;
};

}  // namespace millipage

#endif  // SRC_MULTIVIEW_MINIPAGE_H_
