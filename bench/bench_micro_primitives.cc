// Google-benchmark micro-suite over the substrate primitives: protection
// control, MPT translation scaling, allocator throughput, diff costs by
// size and dirtiness, address packing, and the metrics layer's own overhead
// (enabled vs disabled — the acceptance budget is <2% on fast paths).
// Complements the paper-table benches with statistically robust per-op
// numbers.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/diff/diff.h"
#include "src/multiview/allocator.h"
#include "src/multiview/minipage.h"
#include "src/multiview/view_set.h"
#include "src/net/message.h"
#include "src/os/page.h"

namespace millipage {
namespace {

void BM_SetProtection(benchmark::State& state) {
  auto vs = ViewSet::Create(64 * PageSize(), 8);
  MP_CHECK(vs.ok());
  Minipage mp;
  mp.view = 1;
  mp.offset = 3 * PageSize();
  mp.length = static_cast<uint64_t>(state.range(0));
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    MP_CHECK_OK(
        (*vs)->SetProtection(mp, flip ? Protection::kReadOnly : Protection::kReadWrite));
  }
}
BENCHMARK(BM_SetProtection)->Arg(128)->Arg(4096)->Arg(16384);

void BM_GetProtection(benchmark::State& state) {
  auto vs = ViewSet::Create(64 * PageSize(), 8);
  MP_CHECK(vs.ok());
  Minipage mp;
  mp.view = 2;
  mp.offset = 5 * PageSize();
  mp.length = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*vs)->GetProtection(mp));
  }
}
BENCHMARK(BM_GetProtection);

void BM_MptLookup(benchmark::State& state) {
  const size_t entries = static_cast<size_t>(state.range(0));
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, entries * 512, 16);
  for (size_t i = 0; i < entries; ++i) {
    MP_CHECK(alloc.Allocate(256).ok());
  }
  uint64_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpt.Lookup(static_cast<uint32_t>(probe % 16), (probe * 7919) % (entries * 256)));
    probe++;
  }
}
BENCHMARK(BM_MptLookup)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_AllocatorThroughput(benchmark::State& state) {
  const uint32_t chunking = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    MinipageTable mpt;
    AllocatorOptions opts;
    opts.chunking_level = chunking;
    MinipageAllocator alloc(&mpt, 64 << 20, 16, opts);
    state.ResumeTiming();
    for (int i = 0; i < 4096; ++i) {
      MP_CHECK(alloc.Allocate(160).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AllocatorThroughput)->Arg(1)->Arg(4);

void BM_DiffCreate(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const int dirty_permille = static_cast<int>(state.range(1));
  std::vector<char> page(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    page[i] = static_cast<char>(i);
  }
  Twin twin(page.data(), bytes);
  for (size_t i = 0; i < bytes; ++i) {
    if (static_cast<int>((i * 997) % 1000) < dirty_permille) {
      page[i] = static_cast<char>(page[i] + 1);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CreateDiff(twin, page.data(), bytes));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_DiffCreate)
    ->Args({4096, 0})
    ->Args({4096, 100})
    ->Args({4096, 500})
    ->Args({16384, 100});

void BM_DiffApply(benchmark::State& state) {
  const size_t bytes = 4096;
  std::vector<char> page(bytes, 0);
  Twin twin(page.data(), bytes);
  for (size_t i = 0; i < bytes; i += 8) {
    page[i] = 1;
  }
  const Diff d = CreateDiff(twin, page.data(), bytes);
  std::vector<char> target(bytes, 0);
  for (auto _ : state) {
    MP_CHECK_OK(ApplyDiff(d, target.data(), bytes));
  }
}
BENCHMARK(BM_DiffApply);

void BM_TwinCreate(benchmark::State& state) {
  std::vector<char> page(4096, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Twin(page.data(), page.size()));
  }
}
BENCHMARK(BM_TwinCreate);

void BM_GlobalAddrPack(benchmark::State& state) {
  uint64_t x = 0;
  for (auto _ : state) {
    const GlobalAddr a{static_cast<uint32_t>(x % 16), x % (1ULL << 40)};
    benchmark::DoNotOptimize(GlobalAddr::Unpack(a.Pack()));
    x += 1234577;
  }
}
BENCHMARK(BM_GlobalAddrPack);

// --- metrics layer overhead ------------------------------------------------
// BM_SetProtection above runs with the ViewSet's counters live (the Global
// registry is wired in ViewSet::Create), so comparing it against
// BM_SetProtectionMetricsOff bounds the instrumentation tax on the hottest
// instrumented syscall path.

void BM_SetProtectionMetricsOff(benchmark::State& state) {
  SetMetricsEnabled(false);
  auto vs = ViewSet::Create(64 * PageSize(), 8);
  MP_CHECK(vs.ok());
  Minipage mp;
  mp.view = 1;
  mp.offset = 3 * PageSize();
  mp.length = static_cast<uint64_t>(state.range(0));
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    MP_CHECK_OK(
        (*vs)->SetProtection(mp, flip ? Protection::kReadOnly : Protection::kReadWrite));
  }
  SetMetricsEnabled(true);
}
BENCHMARK(BM_SetProtectionMetricsOff)->Arg(128)->Arg(4096);

void BM_MetricsCounterInc(benchmark::State& state) {
  Counter c;
  for (auto _ : state) {
    c.Inc();
  }
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_MetricsCounterInc);

void BM_MetricsCounterIncDisabled(benchmark::State& state) {
  SetMetricsEnabled(false);
  Counter c;
  for (auto _ : state) {
    c.Inc();
  }
  SetMetricsEnabled(true);
  benchmark::DoNotOptimize(c.value());
}
BENCHMARK(BM_MetricsCounterIncDisabled);

void BM_MetricsHistogramRecord(benchmark::State& state) {
  Histogram h;
  uint64_t v = 1;
  for (auto _ : state) {
    h.Record(v);
    v = (v * 2621 + 37) & 0xffff;
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_MetricsHistogramRecord);

void BM_MetricsScopedTimer(benchmark::State& state) {
  Histogram h;
  for (auto _ : state) {
    ScopedTimer t(&h);
    benchmark::ClobberMemory();
  }
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_MetricsScopedTimer);

void BM_MetricsScopedTimerDisabled(benchmark::State& state) {
  SetMetricsEnabled(false);
  Histogram h;
  for (auto _ : state) {
    ScopedTimer t(&h);
    benchmark::ClobberMemory();
  }
  SetMetricsEnabled(true);
  benchmark::DoNotOptimize(h.count());
}
BENCHMARK(BM_MetricsScopedTimerDisabled);

// Forwards console output unchanged while copying each run into the
// BenchReporter so --bench_json emits the same rows CI consumes.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit CaptureReporter(BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred || run.run_type != Run::RT_Iteration) {
        continue;
      }
      BenchResult r;
      r.name = run.benchmark_name();
      r.iterations = static_cast<uint64_t>(run.iterations);
      r.ns_per_op = run.GetAdjustedRealTime();  // default time unit is ns
      out_->Add(std::move(r));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter* out_;
};

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  // Rebuild argv without our flags (google-benchmark rejects unknown ones)
  // and with a short min_time in smoke mode.
  std::vector<char*> bm_argv;
  bm_argv.push_back(argv[0]);
  char min_time[] = "--benchmark_min_time=0.01";
  if (env.smoke()) {
    bm_argv.push_back(min_time);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") != 0 &&
        std::strncmp(argv[i], "--bench_json=", 13) != 0) {
      bm_argv.push_back(argv[i]);
    }
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bm_argc, bm_argv.data())) {
    return 1;
  }
  BenchReporter reporter("bench_micro_primitives", env);
  CaptureReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  benchmark::Shutdown();
  return reporter.Finish();
}
