// Static minipage layout (Section 2.3): each page of the memory object is
// divided into k equal minipages, minipage j of every page associated with
// view j. Minipage borders are computable from the fault address alone —
// the layout used for general-purpose caching / global-memory subpages and
// by the Figure 5 microbenchmark.

#ifndef SRC_MULTIVIEW_STATIC_LAYOUT_H_
#define SRC_MULTIVIEW_STATIC_LAYOUT_H_

#include <cstdint>

#include "src/common/status.h"
#include "src/multiview/minipage.h"
#include "src/os/page.h"

namespace millipage {

class StaticLayout {
 public:
  // k must divide the page size.
  static Result<StaticLayout> Create(uint64_t object_size, uint32_t k) {
    if (k == 0 || PageSize() % k != 0) {
      return Status::Invalid("static layout: k must divide the page size");
    }
    return StaticLayout(object_size, k);
  }

  uint32_t minipages_per_page() const { return k_; }
  uint64_t minipage_size() const { return PageSize() / k_; }
  uint64_t total_minipages() const { return PagesFor(object_size_) * k_; }

  // View associated with the byte at `offset`.
  uint32_t ViewOf(uint64_t offset) const {
    return static_cast<uint32_t>((offset % PageSize()) / minipage_size());
  }

  // Geometry of the minipage containing `offset` (no table lookup needed).
  Minipage MinipageOf(uint64_t offset) const {
    Minipage mp;
    mp.id = static_cast<MinipageId>(offset / minipage_size());
    mp.view = ViewOf(offset);
    mp.offset = offset / minipage_size() * minipage_size();
    mp.length = minipage_size();
    return mp;
  }

  // Populates an MPT with every minipage of the layout (for code paths that
  // want table-driven translation); ids ascend with offset.
  Status Populate(MinipageTable* mpt) const {
    const uint64_t n = total_minipages();
    for (uint64_t i = 0; i < n; ++i) {
      const uint64_t off = i * minipage_size();
      MP_ASSIGN_OR_RETURN(MinipageId id, mpt->Define(ViewOf(off), off, minipage_size()));
      (void)id;
    }
    return Status::Ok();
  }

 private:
  StaticLayout(uint64_t object_size, uint32_t k) : object_size_(object_size), k_(k) {}

  uint64_t object_size_;
  uint32_t k_;
};

}  // namespace millipage

#endif  // SRC_MULTIVIEW_STATIC_LAYOUT_H_
