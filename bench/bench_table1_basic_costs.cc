// Table 1 reproduction: cost of the basic operations of the millipage DSM
// protocol, measured on the live primitives. Paper numbers are from a
// 300 MHz Pentium II + Myrinet/FastMessages under Windows NT; absolute
// values on modern hardware differ, the *ordering* (header messages and
// protection changes are cheap, data messages scale with size) must hold.

#include <atomic>

#include "bench/bench_util.h"
#include "src/common/logging.h"
#include "src/multiview/allocator.h"
#include "src/multiview/minipage.h"
#include "src/multiview/view_set.h"
#include "src/net/inproc_transport.h"
#include "src/net/socket_transport.h"
#include "src/os/fault_handler.h"
#include "src/os/page.h"

namespace millipage {
namespace {

// Prints the console row and mirrors it into the JSON report.
void Row(BenchReporter& reporter, const std::string& label, double us, int iters,
         const char* paper) {
  PrintRow(label, us, paper);
  reporter.AddUs(label, "", us, static_cast<uint64_t>(iters));
}

// --- access fault: full SIGSEGV round trip with a minimal handler ---------

struct FaultBenchCtx {
  Mapping* mapping = nullptr;
};

bool FlipProtection(void* ctx_raw, void* addr, bool) {
  auto* ctx = static_cast<FaultBenchCtx*>(ctx_raw);
  if (!ctx->mapping->Contains(addr)) {
    return false;
  }
  return ctx->mapping->ProtectAll(Protection::kReadWrite).ok();
}

double MeasureAccessFaultUs(int iters) {
  MP_CHECK_OK(FaultHandler::Instance().Install());
  auto m = Mapping::MapAnonymous(PageSize(), Protection::kNoAccess);
  MP_CHECK(m.ok());
  FaultBenchCtx ctx;
  ctx.mapping = &*m;
  const int slot = FaultHandler::Instance().Register(&FlipProtection, &ctx);
  MP_CHECK(slot >= 0);
  volatile int* p = reinterpret_cast<volatile int*>(m->base());
  const double us = MeasureUs(
      [&] {
        MP_CHECK_OK(m->ProtectAll(Protection::kNoAccess));
        (void)*p;  // faults; handler re-enables access
      },
      iters);
  FaultHandler::Instance().Unregister(slot);
  // Subtract the mprotect the loop body adds on top of the fault itself.
  const double protect_us =
      MeasureUs([&] { MP_CHECK_OK(m->ProtectAll(Protection::kNoAccess)); }, iters);
  return us - protect_us;
}

// --- messaging costs -------------------------------------------------------

template <typename MakePair>
void MeasureMessaging(BenchReporter& reporter, int iters, const char* tag, MakePair make) {
  auto pair = make();
  Transport& a = *pair.first;
  Transport& b = *pair.second;
  std::vector<std::byte> buf(4096);
  const PayloadSink sink = [&buf](const MsgHeader&) { return buf.data(); };

  auto round_trip = [&](size_t payload) {
    MsgHeader h;
    h.set_type(MsgType::kReadReply);
    MP_CHECK_OK(a.Send(1, h, payload > 0 ? buf.data() : nullptr, payload));
    MsgHeader got;
    auto polled = b.Poll(1, &got, sink, 1000000);
    MP_CHECK(polled.ok() && *polled);
  };

  Row(reporter, std::string(tag) + " header message send/recv (32 bytes)",
      MeasureUs([&] { round_trip(0); }, iters), iters, "12");
  Row(reporter, std::string(tag) + " data message send/recv (0.5 KB)",
      MeasureUs([&] { round_trip(512); }, iters), iters, "22");
  Row(reporter, std::string(tag) + " data message send/recv (1 KB)",
      MeasureUs([&] { round_trip(1024); }, iters), iters, "34");
  Row(reporter, std::string(tag) + " data message send/recv (4 KB)",
      MeasureUs([&] { round_trip(4096); }, iters), iters, "90");
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_table1_basic_costs", env);
  PrintHeader("Table 1: cost of basic operations in millipage");

  const int fault_iters = env.Scaled(2000, 100);
  Row(reporter, "access fault (SIGSEGV round trip)", MeasureAccessFaultUs(fault_iters),
      fault_iters, "26");

  // Protection operations on a view set (shadow get, mprotect set).
  auto vs = ViewSet::Create(64 * PageSize(), 8);
  MP_CHECK(vs.ok());
  Minipage mp;
  mp.view = 3;
  mp.offset = 5 * PageSize() + 128;
  mp.length = 256;
  const int get_iters = env.Scaled(100000, 2000);
  Row(reporter, "get protection (shadow table)",
      MeasureUs([&] { (void)(*vs)->GetProtection(mp); }, get_iters), get_iters, "7");
  std::atomic<int> flip{0};
  const int set_iters = env.Scaled(20000, 1000);
  Row(reporter, "set protection (mprotect one vpage)",
      MeasureUs(
          [&] {
            const Protection p = (flip.fetch_add(1) & 1) ? Protection::kReadOnly
                                                         : Protection::kReadWrite;
            MP_CHECK_OK((*vs)->SetProtection(mp, p));
          },
          set_iters),
      set_iters, "12");

  const int msg_iters = env.Scaled(3000, 200);
  {
    auto shared = std::make_shared<InProcTransport>(2);
    MeasureMessaging(reporter, msg_iters, "in-proc:",
                     [&] { return std::make_pair(shared, shared); });
  }
  {
    auto mesh = SocketMesh::Create(2);
    MP_CHECK(mesh.ok());
    std::vector<int> row0 = std::move(mesh->fds[0]);
    std::vector<int> row1 = std::move(mesh->fds[1]);
    mesh->fds.clear();
    auto t0 = std::make_shared<SocketTransport>(0, std::move(row0));
    auto t1 = std::make_shared<SocketTransport>(1, std::move(row1));
    MeasureMessaging(reporter, msg_iters, "socket: ",
                     [&] { return std::make_pair(t0, t1); });
  }

  // MPT lookup at realistic table sizes.
  for (const size_t minipages : {1000UL, env.smoke() ? 10000UL : 100000UL}) {
    MinipageTable mpt;
    MinipageAllocator alloc(&mpt, minipages * 512, 16);
    for (size_t i = 0; i < minipages; ++i) {
      MP_CHECK(alloc.Allocate(256).ok());
    }
    uint64_t probe = 0;
    const int lookup_iters = env.Scaled(100000, 5000);
    const double us = MeasureUs(
        [&] {
          const Minipage* found =
              mpt.Lookup(static_cast<uint32_t>(probe % 16), (probe * 7919) % (minipages * 256));
          (void)found;
          probe++;
        },
        lookup_iters);
    Row(reporter, "minipage translation (MPT, " + std::to_string(minipages) + " entries)", us,
        lookup_iters, "7");
  }

  // The socket rows above ran through the instrumented transport; attach the
  // process-global snapshot so the JSON shows the net.* distributions too.
  reporter.AttachMetrics(MetricsRegistry::Global().Snapshot());

  PrintNote("shape check: header < data(0.5K) < data(1K) < data(4K); get < set protection");
  return reporter.Finish();
}
