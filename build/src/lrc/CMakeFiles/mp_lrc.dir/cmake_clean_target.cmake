file(REMOVE_RECURSE
  "libmp_lrc.a"
)
