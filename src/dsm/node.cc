#include "src/dsm/node.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/time_util.h"
#include "src/os/page.h"

namespace millipage {

namespace {

// Per-thread (node -> wait slot) cache. A thread may talk to several nodes
// in one process (the in-process cluster), so the cache is a tiny map.
// Entries are keyed by a process-unique node id, not the pointer: a node at
// a recycled address must not inherit a dead node's slot. Long-lived service
// threads (the userfaultfd poller) touch every node the process ever
// creates, so a full cache recycles entries round-robin instead of failing;
// returning to an evicted node just acquires a fresh slot there.
struct ThreadSlotCache {
  static constexpr int kMax = 16;
  uint64_t uid[kMax] = {};
  uint32_t slot[kMax] = {};
  int n = 0;
  int next_evict = 0;
};
thread_local ThreadSlotCache tls_slots;

}  // namespace

Result<std::unique_ptr<DsmNode>> DsmNode::Create(const DsmConfig& config, HostId me,
                                                 Transport* transport) {
  if (config.num_hosts == 0 || config.num_hosts > kMaxHosts) {
    return Status::Invalid("DsmNode: num_hosts must be in [1, " + std::to_string(kMaxHosts) +
                           "] (wire host ids are 10 bits)");
  }
  if (me >= config.num_hosts) {
    return Status::Invalid("DsmNode: host id out of range");
  }
  auto node = std::unique_ptr<DsmNode>(new DsmNode(config, me, transport));
  MP_ASSIGN_OR_RETURN(node->views_, ViewSet::Create(config.object_size, config.num_views));
  node->views_->SetTrace(config.trace, me);
  node->views_->SetMetrics(&node->metrics_);  // per-host mv.* attribution
  if (me == kManagerHost) {
    node->mpt_ = std::make_unique<MinipageTable>();
    node->allocator_ = std::make_unique<MinipageAllocator>(
        node->mpt_.get(), node->views_->object_size(), config.num_views,
        config.MakeAllocatorOptions());
  }
  // Directory shard: host 0 holds the single shard when centralized; every
  // host holds one when the manager role is sharded.
  if (me == kManagerHost || config.manager_policy == ManagerPolicy::kSharded) {
    node->directory_ = std::make_unique<Directory>();
  }
  return node;
}

DsmNode::DsmNode(const DsmConfig& config, HostId me, Transport* transport)
    : config_(config),
      codec_(WireCodec::For(config.num_hosts)),
      me_(me),
      uid_([] {
        static std::atomic<uint64_t> next{1};
        return next.fetch_add(1, std::memory_order_relaxed);
      }()),
      transport_(transport) {
  auto init = std::make_unique<Membership>();
  init->live = HostSet::AllBelow(config.num_hosts);
  PublishMembership(std::move(init));
  read_fault_ns_ = metrics_.GetHistogram("dsm.read_fault_ns");
  write_fault_ns_ = metrics_.GetHistogram("dsm.write_fault_ns");
  barrier_ns_ = metrics_.GetHistogram("dsm.barrier_ns");
  lock_ns_ = metrics_.GetHistogram("dsm.lock_ns");
  recovery_ns_ = metrics_.GetHistogram("dsm.recovery_ns");
}

DsmNode::~DsmNode() { Stop(); }

void DsmNode::Start() {
  MP_CHECK(!server_.joinable()) << "server already started";
  stop_.store(false, std::memory_order_release);
  transport_->SetPeerDownHandler([this](HostId peer) { OnPeerDown(peer); });
  server_ = std::thread([this] { ServerLoop(); });
}

void DsmNode::Stop() {
  if (!server_.joinable()) {
    return;
  }
  stop_.store(true, std::memory_order_release);
  server_.join();
  transport_->SetPeerDownHandler(nullptr);
}

uint32_t DsmNode::ThreadSlot() {
  ThreadSlotCache& c = tls_slots;
  for (int i = 0; i < c.n; ++i) {
    if (c.uid[i] == uid_) {
      return c.slot[i];
    }
  }
  const uint32_t slot = slots_.Acquire();
  int i;
  if (c.n < ThreadSlotCache::kMax) {
    i = c.n++;
  } else {
    i = c.next_evict;
    c.next_evict = (c.next_evict + 1) % ThreadSlotCache::kMax;
  }
  c.uid[i] = uid_;
  c.slot[i] = slot;
  return slot;
}

void DsmNode::AddWorkUnits(uint64_t n) { counters_.work_units += n; }

std::vector<EpochRecord> DsmNode::epochs() const {
  std::lock_guard<std::mutex> lock(epoch_mu_);
  return epochs_;
}

uint64_t DsmNode::bounced_requests() const {
  return bounced_.load(std::memory_order_relaxed);
}

MetricsSnapshot DsmNode::SnapshotMetrics() const {
  MetricsSnapshot s = metrics_.Snapshot();
  const HostCounters c = counters_;
  auto& cs = s.counters;
  cs["host.read_faults"] += c.read_faults;
  cs["host.write_faults"] += c.write_faults;
  cs["host.read_fault_bytes"] += c.read_fault_bytes;
  cs["host.write_fault_bytes"] += c.write_fault_bytes;
  cs["host.invalidations_received"] += c.invalidations_received;
  cs["host.messages_sent"] += c.messages_sent;
  cs["host.bytes_sent"] += c.bytes_sent;
  cs["host.barriers"] += c.barriers;
  cs["host.lock_acquires"] += c.lock_acquires;
  cs["host.prefetches"] += c.prefetches;
  cs["host.prefetch_bytes"] += c.prefetch_bytes;
  cs["host.work_units"] += c.work_units;
  cs["host.competing_requests"] += c.competing_requests;
  cs["host.batch_frames_sent"] += c.batch_frames_sent;
  cs["host.batch_records_sent"] += c.batch_records_sent;
  cs["host.dup_invalidate_replies"] += c.dup_invalidate_replies;
  cs["dsm.fault_retries"] += fault_retries();
  cs["dsm.timeout_retries"] += timeout_retries();
  cs["dsm.stale_replies"] += stale_replies();
  cs["dsm.bounced_requests"] += bounced_requests();
  cs["dsm.epoch_bumps"] += epoch_bumps();
  cs["dsm.shards_adopted"] += shards_adopted();
  cs["dsm.copyset_repairs"] += copyset_repairs();
  cs["dsm.minipages_lost"] += minipages_lost();
  if (directory_ != nullptr) {
    const ManagerCounters m = directory_->counters();
    cs["mgr.requests_served"] += m.requests_served;
    cs["mgr.invalidation_rounds"] += m.invalidation_rounds;
    cs["mgr.mpt_lookups"] += m.mpt_lookups;
    cs["mgr.remote_routed"] += m.remote_routed;
  }
  return s;
}

Status DsmNode::TrySendMsg(HostId to, const MsgHeader& h, const void* payload, size_t len) {
  counters_.messages_sent++;
  counters_.bytes_sent += sizeof(MsgHeader) + len;
  // Stamp the wire copy with the sender's membership epoch (high bits of
  // `from`); HandleMessage strips it on receive, so all internal logic sees
  // pure host ids. At epoch 0 the stamped field is bit-identical to the id.
  MsgHeader wire = h;
  wire.from = codec_.Pack(codec_.Host(h.from), member_epoch());
  Status st = transport_->Send(to, wire, payload, len);
  if (!st.ok() && st.code() == StatusCode::kUnavailable) {
    OnPeerDown(to);
  }
  return st;
}

void DsmNode::SendMsg(HostId to, const MsgHeader& h, const void* payload, size_t len) {
  const Status st = TrySendMsg(to, h, payload, len);
  if (!st.ok() && !draining_.load(std::memory_order_acquire)) {
    MP_LOG(Error) << "host " << me_ << ": send " << MsgTypeName(h.msg_type()) << " to host "
                  << to << " failed: " << st.ToString();
  }
}

Minipage DsmNode::MinipageFromHeader(const MsgHeader& h) const {
  // Non-manager hosts never consult an MPT (the "thin layer" property):
  // everything needed to adjust protection travels in the header.
  Minipage mp;
  mp.id = h.minipage;
  mp.view = h.global_addr().view;
  mp.offset = h.privbase;
  mp.length = h.pgsize;
  return mp;
}

// ---- Application API -----------------------------------------------------

Result<GlobalAddr> DsmNode::SharedMalloc(uint64_t size) {
  if (size == 0 || size > ~0u) {
    return Status::Invalid("SharedMalloc: size must be in (0, 4GiB)");
  }
  const uint32_t slot = ThreadSlot();
  const uint32_t gen = NextGen(slot);
  MsgHeader h;
  h.set_type(MsgType::kAllocRequest);
  h.from = me_;
  h.seq = WaitSlots::MakeSeq(slot, gen);
  h.pgsize = static_cast<uint32_t>(size);
  if (Status st = TrySendMsg(kManagerHost, h); !st.ok()) {
    return LivenessFailure("SharedMalloc", st);
  }
  // Allocation mutates manager state per request, so it is not idempotent:
  // bounded by the sync deadline, never re-sent. A membership kick
  // (kFailedPrecondition) is the one interruption that does not invalidate
  // the attempt: the allocator is host 0, whose death is fatal, so after a
  // third host's death the original request/reply pair is still in flight on
  // an intact path — keep waiting on the same generation instead of
  // re-sending (which would allocate twice).
  Result<MsgHeader> reply = AwaitReply(slot, gen, config_.sync_timeout_ms, "SharedMalloc");
  while (!reply.ok() && reply.status().code() == StatusCode::kFailedPrecondition) {
    reply = AwaitReply(slot, gen, config_.sync_timeout_ms, "SharedMalloc");
  }
  if (!reply.ok()) {
    return LivenessFailure("SharedMalloc", reply.status());
  }
  if (reply->msg_type() != MsgType::kAllocReply) {
    return Status::Internal("SharedMalloc: unexpected reply");
  }
  if ((reply->flags & kFlagAbort) != 0) {
    return Status::Exhausted("SharedMalloc: shared memory exhausted");
  }
  return reply->global_addr();
}

void DsmNode::CloseChunk() {
  MsgHeader h;
  h.set_type(MsgType::kAllocRequest);
  h.from = me_;
  h.seq = kNoWaitSlot;
  h.pgsize = 0;  // size 0 means "close the open chunk"
  SendMsg(kManagerHost, h);
}

void DsmNode::Barrier() {
  const Status st = TryBarrier();
  MP_CHECK(st.ok()) << "Barrier: " << st.ToString();
}

Status DsmNode::TryBarrier() {
  ScopedTimer timer(barrier_ns_);
  const uint32_t slot = ThreadSlot();
  // The barrier generation this host expects to be released from (= barriers
  // completed locally). It travels in pgsize so a failed-over barrier shard
  // can release each waiter with its *own* generation, keeping per-host
  // release sequences gap-free across the hand-off.
  uint32_t expected_gen;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    expected_gen = epoch_;
  }
  Trace(TraceEventKind::kBarrierEnter, ~0u, 0);
  MsgHeader reply;
  for (;;) {
    const uint32_t gen = NextGen(slot);
    MsgHeader h;
    h.set_type(MsgType::kBarrierEnter);
    h.from = me_;
    h.seq = WaitSlots::MakeSeq(slot, gen);
    h.minipage = kBarrierShardId;
    h.pgsize = expected_gen;
    const uint32_t epoch_before = member_epoch();
    if (Status st = TrySendMsg(LiveManagerOf(kBarrierShardId), h); !st.ok()) {
      if (AwaitMembershipChange(epoch_before)) {
        continue;  // barrier shard moved: re-enter at its successor
      }
      return LivenessFailure("Barrier", st);
    }
    // Arrival is tracked as a host mask, so a post-failover re-send collapses
    // instead of double-counting; a membership kick (kFailedPrecondition)
    // re-enters, anything else fails within the sync deadline.
    Result<MsgHeader> r = AwaitReply(slot, gen, config_.sync_timeout_ms, "Barrier");
    if (r.ok()) {
      reply = *r;
      break;
    }
    if (r.status().code() == StatusCode::kFailedPrecondition) {
      continue;
    }
    return LivenessFailure("Barrier", r.status());
  }
  // The manager stamps the generation being released into the minipage field.
  Trace(TraceEventKind::kBarrierRelease, ~0u, 0, reply.minipage);
  counters_.barriers++;
  std::lock_guard<std::mutex> lock(epoch_mu_);
  EpochRecord rec;
  rec.epoch = epoch_++;
  rec.host = me_;
  rec.delta = counters_ - epoch_snapshot_;
  epoch_snapshot_ = counters_;
  epochs_.push_back(rec);
  return Status::Ok();
}

void DsmNode::Lock(uint32_t lock_id) {
  const Status st = TryLock(lock_id);
  MP_CHECK(st.ok()) << "Lock(" << lock_id << "): " << st.ToString();
}

Status DsmNode::TryLock(uint32_t lock_id) {
  ScopedTimer timer(lock_ns_);
  const uint32_t slot = ThreadSlot();
  for (;;) {
    const uint32_t gen = NextGen(slot);
    MsgHeader h;
    h.set_type(MsgType::kLockAcquire);
    h.from = me_;
    h.seq = WaitSlots::MakeSeq(slot, gen);
    h.minipage = lock_id;
    const uint32_t epoch_before = member_epoch();
    if (Status st = TrySendMsg(LiveManagerOf(lock_id), h); !st.ok()) {
      if (AwaitMembershipChange(epoch_before)) {
        continue;  // lock shard moved: re-acquire at its successor
      }
      return LivenessFailure("Lock", st);
    }
    // The shard dedupes re-sent acquires (duplicate waiters collapse, the
    // current holder is re-granted), so a membership kick re-sends safely;
    // anything else fails within the sync deadline. (A held lock also
    // legitimately blocks for as long as its holder computes — the generous
    // sync deadline reflects that.)
    Result<MsgHeader> reply = AwaitReply(slot, gen, config_.sync_timeout_ms, "Lock");
    if (reply.ok()) {
      break;
    }
    if (reply.status().code() == StatusCode::kFailedPrecondition) {
      continue;
    }
    return LivenessFailure("Lock", reply.status());
  }
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    held_locks_.insert(lock_id);
  }
  counters_.lock_acquires++;
  return Status::Ok();
}

void DsmNode::Unlock(uint32_t lock_id) {
  // Drop the local held record *before* the release leaves, so a failover
  // probe racing this release never resurrects a lock its holder has already
  // let go of.
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    held_locks_.erase(lock_id);
  }
  MsgHeader h;
  h.set_type(MsgType::kLockRelease);
  h.from = me_;
  h.seq = kNoWaitSlot;
  h.minipage = lock_id;
  SendMsg(LiveManagerOf(lock_id), h);
}

void DsmNode::Prefetch(GlobalAddr a) {
  if (!config_.enable_ack) {
    return;  // without read serialization a prefetched copy could be stale
  }
  const uint64_t vpage = a.offset / PageSize();
  if (views_->GetVpageProtection(a.view, vpage) != Protection::kNoAccess) {
    return;  // copy already present (or being installed)
  }
  MsgHeader h;
  h.set_type(MsgType::kReadRequest);
  h.flags = kFlagPrefetch;
  h.from = me_;
  h.seq = kNoWaitSlot;
  h.addr = a.Pack();
  counters_.prefetches++;
  SendMsg(kManagerHost, h);
}

size_t DsmNode::FetchGroup(const GlobalAddr* addrs, size_t count) {
  const uint32_t slot = ThreadSlot();
  const uint32_t gen = NextGen(slot);  // one generation covers the whole group
  // Build the request list first, deduped by (view, vpage): protection only
  // flips on reply, so the presence check alone cannot filter duplicates
  // within one group. A view holds at most one minipage per page, so the
  // vpage key collapses same-minipage duplicates — except for minipages that
  // span pages, which the ACK-flush below handles.
  std::vector<MsgHeader> reqs;
  std::set<std::pair<uint32_t, uint64_t>> requested;
  for (size_t i = 0; i < count; ++i) {
    const uint64_t vpage = addrs[i].offset / PageSize();
    if (views_->GetVpageProtection(addrs[i].view, vpage) != Protection::kNoAccess) {
      continue;  // already readable
    }
    if (!requested.insert({addrs[i].view, vpage}).second) {
      continue;  // duplicate within this group
    }
    MsgHeader h;
    h.set_type(MsgType::kReadRequest);
    h.from = me_;
    h.seq = WaitSlots::MakeSeq(slot, gen);
    h.addr = addrs[i].Pack();
    reqs.push_back(h);
  }
  // Issue the whole group. With batching on, frames of up to kMaxBatchRecords
  // untranslated requests share one datagram (all bound for the MPT host, all
  // carrying the same slot/generation); a single request goes out unbatched,
  // bit-identical to the historical wire format.
  size_t issued = 0;
  while (issued < reqs.size()) {
    const size_t n = config_.batch_coherence
                         ? std::min<size_t>(reqs.size() - issued, kMaxBatchRecords)
                         : 1;
    Status st;
    if (n == 1) {
      st = TrySendMsg(kManagerHost, reqs[issued]);
    } else {
      std::vector<BatchRecord> recs;
      recs.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        recs.push_back(BatchRecord::From(reqs[issued + i]));
      }
      MsgHeader frame = reqs[issued];
      frame.flags |= kFlagBatched;
      counters_.batch_frames_sent++;
      counters_.batch_records_sent += n;
      st = TrySendMsg(kManagerHost, frame, recs.data(), recs.size() * sizeof(BatchRecord));
    }
    if (!st.ok()) {
      (void)LivenessFailure("FetchGroup", st);
      break;
    }
    issued += n;
  }
  counters_.prefetches += issued;
  // Split transaction: collect the replies (any order) and ACK each one so
  // the manager releases the minipages. ACKs accumulate per owning shard and
  // flush as batched frames — but a reply for a page-spanning minipage
  // flushes immediately: its other pages' requests were not deduped above and
  // are queued at the manager behind this very ACK. Each reply gets its own
  // deadline; on failure the group is abandoned (outstanding replies become
  // stale by generation and are discarded + ACKed by the next wait on this
  // slot), with any accumulated ACKs flushed on the way out.
  std::vector<std::pair<HostId, std::vector<MsgHeader>>> acks;
  const auto flush_acks = [&] {
    for (auto& [to, items] : acks) {
      if (items.empty()) {
        continue;
      }
      if (items.size() == 1) {
        SendMsg(to, items[0]);
      } else {
        std::vector<BatchRecord> recs;
        recs.reserve(items.size());
        for (const MsgHeader& m : items) {
          recs.push_back(BatchRecord::From(m));
        }
        MsgHeader frame = items[0];
        frame.flags |= kFlagBatched;
        counters_.batch_frames_sent++;
        counters_.batch_records_sent += items.size();
        SendMsg(to, frame, recs.data(), recs.size() * sizeof(BatchRecord));
      }
      items.clear();
    }
  };
  size_t collected = 0;
  for (size_t i = 0; i < issued; ++i) {
    Result<MsgHeader> reply = AwaitReply(slot, gen, config_.request_timeout_ms, "FetchGroup");
    if (!reply.ok()) {
      flush_acks();
      (void)LivenessFailure("FetchGroup", reply.status());
      return collected;
    }
    if ((reply->flags & kFlagAbort) != 0) {
      // Lost minipage (sole copy died): per-id error, no service to ACK.
      std::lock_guard<std::mutex> lock(lost_mu_);
      lost_minipages_.insert(reply->minipage);
      continue;
    }
    collected++;
    counters_.prefetch_bytes += reply->has_payload() ? reply->pgsize : 0;
    if (config_.enable_ack) {
      MsgHeader ack;
      ack.set_type(MsgType::kAck);
      ack.from = me_;
      ack.seq = kNoWaitSlot;
      ack.addr = reply->addr;
      ack.minipage = reply->minipage;
      const HostId to = LiveManagerOf(ack.minipage);
      if (!config_.batch_coherence) {
        SendMsg(to, ack);
        continue;
      }
      auto it = std::find_if(acks.begin(), acks.end(),
                             [&](const auto& p) { return p.first == to; });
      if (it == acks.end()) {
        acks.emplace_back(to, std::vector<MsgHeader>{});
        it = acks.end() - 1;
      }
      it->second.push_back(ack);
      const bool spans_pages =
          reply->privbase / PageSize() != (reply->privbase + reply->pgsize - 1) / PageSize();
      if (spans_pages || it->second.size() >= kMaxBatchRecords) {
        flush_acks();
      }
    }
  }
  flush_acks();
  return collected;
}

void DsmNode::PushToAll(GlobalAddr a) {
  if (config_.num_hosts == 1) {
    return;
  }
  MsgHeader h;
  h.set_type(MsgType::kPushUpdate);
  h.from = me_;
  h.seq = kNoWaitSlot;
  h.addr = a.Pack();
  SendMsg(kManagerHost, h);
}

// ---- Fault path ------------------------------------------------------------

bool DsmNode::OnFault(uint32_t view, uint64_t offset, bool is_write) {
  return FaultService(view, offset, is_write).ok();
}

Status DsmNode::FaultService(uint32_t view, uint64_t offset, bool is_write) {
  const bool timed = MetricsEnabled();
  const uint64_t t0 = timed ? MonotonicNowNs() : 0;
  const char* const what = is_write ? "write fault" : "read fault";
  if (is_write) {
    counters_.write_faults++;
  } else {
    counters_.read_faults++;
  }
  const uint32_t slot = ThreadSlot();
  const uint64_t addr = GlobalAddr{view, offset}.Pack();
  Trace(TraceEventKind::kFaultStart, ~0u, addr, is_write ? 1 : 0);
  // Fault service is idempotent — the manager re-routes every (re)send
  // against current directory state, and a late reply to an abandoned
  // attempt is discarded by its stale generation — so a lost message is
  // retried up to max_request_retries before the fault fails. Retries pace
  // out with seeded exponential backoff (RetryTimeoutMs); a membership kick
  // re-sends immediately without consuming an attempt.
  MsgHeader reply;
  uint32_t timeouts = 0;
  for (;;) {
    const uint32_t gen = NextGen(slot);
    MsgHeader h;
    h.set_type(is_write ? MsgType::kWriteRequest : MsgType::kReadRequest);
    h.from = me_;
    h.seq = WaitSlots::MakeSeq(slot, gen);
    h.addr = addr;
    if (!config_.enable_ack) {
      inflight_[slot].poisoned.store(false, std::memory_order_relaxed);
      inflight_[slot].addr.store(h.addr, std::memory_order_release);
    }
    if (Status st = TrySendMsg(kManagerHost, h); !st.ok()) {
      return LivenessFailure(what, st);
    }
    const uint64_t attempt_timeout_ms = RetryTimeoutMs(config_, me_, timeouts);
    Result<MsgHeader> r = AwaitReply(slot, gen, attempt_timeout_ms, what);
    if (r.ok()) {
      if ((r->flags & kFlagAbort) != 0) {
        // The owning shard degraded this minipage: its sole copy died with
        // its host. Per-minipage error — the rest of the cluster keeps going.
        {
          std::lock_guard<std::mutex> lock(lost_mu_);
          lost_minipages_.insert(r->minipage);
        }
        return LivenessFailure(
            what, Status::NotFound("minipage " + std::to_string(r->minipage) +
                                   " lost: its only copy died with its host"));
      }
      reply = *r;
      break;
    }
    if (r.status().code() == StatusCode::kFailedPrecondition) {
      continue;  // membership changed: re-route against the new live set
    }
    if (r.status().code() != StatusCode::kDeadlineExceeded ||
        timeouts >= config_.max_request_retries) {
      return LivenessFailure(what, r.status());
    }
    timeouts++;
    timeout_retries_.fetch_add(1, std::memory_order_relaxed);
    MP_LOG(Error) << "host " << me_ << ": " << what << " timed out after "
                  << attempt_timeout_ms << " ms (attempt " << timeouts << "/"
                  << config_.max_request_retries + 1 << "); re-sending";
  }

  if (config_.enable_ack || is_write) {
    MsgHeader ack;
    ack.set_type(MsgType::kAck);
    ack.from = me_;
    ack.seq = kNoWaitSlot;
    ack.addr = reply.addr;
    ack.minipage = reply.minipage;
    SendMsg(LiveManagerOf(ack.minipage), ack);
  }

  const uint64_t data_bytes = reply.has_payload() ? reply.pgsize : 0;
  if (is_write) {
    counters_.write_fault_bytes += data_bytes;
  } else {
    counters_.read_fault_bytes += data_bytes;
  }
  if (timed) {
    (is_write ? write_fault_ns_ : read_fault_ns_)->RecordAlways(MonotonicNowNs() - t0);
  }
  Trace(TraceEventKind::kFaultEnd, reply.minipage, addr, is_write ? 1 : 0);
  return Status::Ok();
}

uint64_t DsmNode::RetryTimeoutMs(const DsmConfig& cfg, HostId host, uint32_t attempt) {
  const uint64_t base = cfg.request_timeout_ms;
  if (base == 0) {
    return 0;  // no deadline configured: wait forever, no pacing
  }
  double scaled = static_cast<double>(base);
  const double cap = static_cast<double>(cfg.retry_backoff_max_ms);
  for (uint32_t k = 0; k < attempt && scaled < cap; ++k) {
    scaled *= cfg.retry_backoff_base;
  }
  if (scaled > cap) {
    scaled = cap;
  }
  uint64_t ms = static_cast<uint64_t>(scaled);
  if (attempt == 0) {
    // The first wait is the configured timeout exactly: jitter exists to
    // decorrelate *retries*, and a deterministic base keeps the common
    // no-retry path at its configured latency budget.
    return ms < 1 ? 1 : ms;
  }
  if (cfg.retry_jitter_pct > 0) {
    // A fresh, deterministically seeded stream per (host, attempt): the
    // schedule is reproducible yet decorrelated across hosts, so a cluster
    // that timed out together does not re-fire in lockstep.
    Rng rng(cfg.retry_jitter_seed ^ (static_cast<uint64_t>(host) << 32) ^ attempt);
    const uint64_t span = ms * cfg.retry_jitter_pct / 100;
    if (span > 0) {
      ms = ms - span + rng.Below(2 * span + 1);
    }
  }
  return ms < 1 ? 1 : ms;
}

// ---- Server thread ---------------------------------------------------------

namespace {
// A frame whose payload is BatchRecords rather than minipage data. Restricted
// to the four types the coalescer emits so the 0x40 bit's other meaning
// (kFlagWriteFetch, LRC-only) can never be misread as a batch.
bool IsBatchedFrame(const MsgHeader& h) {
  if ((h.flags & kFlagBatched) == 0) {
    return false;
  }
  const MsgType t = h.msg_type();
  return t == MsgType::kInvalidateRequest || t == MsgType::kInvalidateReply ||
         t == MsgType::kAck || t == MsgType::kReadRequest;
}
}  // namespace

PayloadSink DsmNode::MakeServerSink() {
  return [this](const MsgHeader& h) -> std::byte* {
    if (IsBatchedFrame(h)) {
      // Record payload, not minipage data: land it in the batch scratch
      // buffer instead of the privileged view.
      batch_rx_.resize(h.pgsize);
      return batch_rx_.data();
    }
    if (h.privbase + h.pgsize > views_->object_size()) {
      return nullptr;
    }
    return views_->PrivAddr(h.privbase);
  };
}

bool DsmNode::PumpOne() {
  MP_CHECK(!server_.joinable()) << "PumpOne on a node with a live server thread";
  ProcessPendingDeaths();
  MsgHeader h;
  Result<bool> got = transport_->Poll(me_, &h, MakeServerSink(), /*timeout_us=*/0);
  MP_CHECK_OK(got.status());
  if (!*got) {
    return false;
  }
  HandleMessage(h);
  return true;
}

void DsmNode::ServerLoop() {
  const PayloadSink sink = MakeServerSink();
  uint32_t poll_errors = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    // Host-death recovery runs here — directory state belongs to this
    // thread, so the detector (any thread) only posts a pending mask.
    ProcessPendingDeaths();
    MsgHeader h;
    uint64_t timeout_us = 0;
    switch (config_.service_mode) {
      case ServiceMode::kBlocking:
        timeout_us = 2000;
        break;
      case ServiceMode::kBusyPoll:
      case ServiceMode::kPeriodic:
        timeout_us = 0;
        break;
    }
    if (HasOpenBatch()) {
      // A batch is open: cap the wait at the earliest open batch's linger
      // deadline, so coalescing collects bursts without ever holding a
      // record past batch_linger_us (0 — a ripe batch — restores the old
      // drain-and-flush). This must test for queued records, not
      // coalesce_.empty(): flushed batches keep their (to, type) slot in
      // the vector for reuse, and polling with no timeout on an *idle* node
      // would turn the server into a busy-spinner and starve every other
      // thread on the box.
      const uint64_t delay_us = NextFlushDelayUs(MonotonicNowNs());
      if (delay_us < timeout_us) {
        timeout_us = delay_us;
      }
    }
    Result<bool> got = transport_->Poll(me_, &h, sink, timeout_us);
    if (!got.ok()) {
      // A transient receive error (e.g. a reset from a dying peer) must not
      // take the server thread down with it — the thread is what delivers
      // the peer-down abort to the waiting application threads. Log, back
      // off, and keep serving; give up only if the transport errors forever.
      poll_errors++;
      if (poll_errors <= 3 || poll_errors % 100 == 0) {
        MP_LOG(Error) << "host " << me_ << ": transport poll error ("
                      << got.status().ToString() << "), count=" << poll_errors;
      }
      MP_CHECK(poll_errors < 1000) << "host " << me_ << ": transport broken: "
                                   << got.status().ToString();
      ::usleep(1000);
      continue;
    }
    poll_errors = 0;
    if (*got) {
      HandleMessage(h);
      continue;
    }
    // Mailbox drained: release the batches past the linger policy. Young,
    // small batches keep accumulating — per-shard bursts otherwise flush one
    // or two records at a time and never stack — bounded by the poll-timeout
    // cap above, so the worst case is batch_linger_us of added latency on a
    // round's final record.
    FlushRipeCoalesced(MonotonicNowNs());
    if (config_.service_mode == ServiceMode::kPeriodic) {
      ::usleep(static_cast<useconds_t>(config_.service_period_us));
    }
  }
  FlushCoalesced();  // don't strand fire-and-forget ACKs at teardown
}

namespace {
// Protocol tracing: set MP_TRACE=<n> in the environment to dump the first n
// messages each server thread handles (type, sender, translation fields) to
// stderr — invaluable when diagnosing protocol interleavings.
std::atomic<int> g_trace_budget{-1};
bool TraceOn() {
  int b = g_trace_budget.load(std::memory_order_relaxed);
  if (b == -1) {
    b = getenv("MP_TRACE") != nullptr ? atoi(getenv("MP_TRACE")) : 0;
    g_trace_budget.store(b);
  }
  return b > 0 && g_trace_budget.fetch_sub(1) > 0;
}
}  // namespace

void DsmNode::HandleMessage(const MsgHeader& raw) {
  // Strip the membership-epoch tag off the wire `from` field, then gate on
  // it (the tag is the epoch mod the codec's modulus, compared circularly):
  //   * anything from a host now known dead is pre-death traffic — discarded
  //     like a stale generation, so no obsolete grant or arrival from the
  //     dead host can corrupt post-recovery state;
  //   * a message tagged with a *newer* epoch than ours is deferred until
  //     the in-flight kEpochBump lands (per-pair FIFO guarantees it is
  //     coming), so dispatch only ever sees messages that agree with local
  //     membership — older tags from live senders are ordinary in-flight
  //     traffic and are served normally, their replies staled by generation;
  //   * kEpochBump itself is always processed: it is how epochs advance.
  MsgHeader h = raw;
  h.from = codec_.Host(raw.from);
  if (h.msg_type() != MsgType::kEpochBump) {
    if (dead_set().Contains(h.from)) {
      stale_replies_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    const uint32_t tag = codec_.EpochTag(raw.from);
    const uint32_t my_tag = member_epoch() & codec_.epoch_mask;
    if (tag != my_tag && !codec_.TagStale(tag, my_tag)) {
      // A deferred batched frame keeps a private copy of its records:
      // batch_rx_ is shared scratch and the next poll overwrites it.
      DeferredMsg d;
      d.raw = raw;
      if (IsBatchedFrame(h)) {
        d.payload.assign(batch_rx_.begin(), batch_rx_.end());
      }
      deferred_.push_back(std::move(d));
      return;
    }
  }
  if (TraceOn()) {
    fprintf(stderr, "[h%u] %s from=%u seq=%x mp=%u flags=%x priv=%lu len=%u\n", me_,
            MsgTypeName(h.msg_type()), h.from, h.seq, h.minipage, h.flags,
            (unsigned long)h.privbase, h.pgsize);
  }
  if (IsBatchedFrame(h)) {
    DispatchBatch(h);
    return;
  }
  DispatchOne(h);
}

void DsmNode::DispatchBatch(const MsgHeader& h) {
  // Copy the records out of the shared scratch first: dispatching a record
  // can re-enter the protocol arbitrarily deep (inline serves, coalesced
  // sends), and a defensive copy keeps the loop immune to anything that
  // might touch batch_rx_ along the way.
  MP_CHECK(h.pgsize % sizeof(BatchRecord) == 0 && h.pgsize >= 2 * sizeof(BatchRecord) &&
           h.pgsize / sizeof(BatchRecord) <= kMaxBatchRecords && batch_rx_.size() >= h.pgsize)
      << "malformed batched " << MsgTypeName(h.msg_type()) << " frame: payload " << h.pgsize
      << " bytes";
  const size_t n = h.pgsize / sizeof(BatchRecord);
  std::vector<BatchRecord> recs(n);
  std::memcpy(recs.data(), batch_rx_.data(), n * sizeof(BatchRecord));
  MsgHeader one = h;
  one.flags &= static_cast<uint8_t>(~(kFlagBatched | kFlagHasPayload));
  if (h.msg_type() == MsgType::kInvalidateRequest) {
    // Apply the whole frame's protection drops as ONE ranged call before
    // dispatching the records: invalidations covering contiguous vpages
    // collapse into a single mprotect (or uffd ioctl) instead of one per
    // minipage. Revoking earlier than the per-record handler would is
    // strictly safe under SWMR — access is only ever removed — and the
    // checker replays per-minipage kProtSet events, which the batch emits
    // in full. Each record's own SetProtection then hits the shadow-table
    // fast-path and costs no syscall.
    std::vector<Minipage> drops;
    drops.reserve(n);
    MsgHeader probe = one;
    for (const BatchRecord& r : recs) {
      r.ApplyTo(&probe);
      drops.push_back(MinipageFromHeader(probe));
    }
    MP_CHECK_OK(views_->SetProtectionBatch(drops.data(), drops.size(),
                                           Protection::kNoAccess));
  }
  // In-order dispatch: each record runs the full per-message handler, so the
  // trace events it emits land in record order and the offline checker sees
  // the same per-record event sequence an unbatched run would have produced.
  for (const BatchRecord& r : recs) {
    r.ApplyTo(&one);
    DispatchOne(one);
  }
}

void DsmNode::DispatchOne(const MsgHeader& h) {
  switch (h.msg_type()) {
    case MsgType::kReadRequest:
    case MsgType::kWriteRequest:
      if ((h.flags & kFlagBounced) != 0) {
        // A serving host returned the request unserved; re-route it. This
        // check must precede the forwarded-flag check: bounced requests
        // still carry it.
        MP_CHECK(OwnsShard(h.minipage)) << "bounced request received by non-owning shard";
        MsgHeader copy = h;
        copy.flags &= static_cast<uint8_t>(~(kFlagForwarded | kFlagBounced));
        MgrHandleBounced(copy);
      } else if ((h.flags & kFlagForwarded) != 0) {
        if (h.msg_type() == MsgType::kReadRequest) {
          ServeReadRequest(h);
        } else {
          ServeWriteRequest(h);
        }
      } else if (!h.translated()) {
        MgrTranslateAndRoute(h);
      } else {
        // Translated but not forwarded: a request host 0 routed to this
        // host's shard (or a bounce-free retry hitting the same shard).
        MP_CHECK(OwnsShard(h.minipage)) << "routed request received by non-owning shard";
        MgrStartService(h);
      }
      break;
    case MsgType::kReadReply:
    case MsgType::kWriteReply:
      HandleReply(h);
      break;
    case MsgType::kInvalidateRequest:
      HandleInvalidateRequest(h);
      break;
    case MsgType::kInvalidateReply:
      MP_CHECK(OwnsShard(h.minipage));
      MgrHandleInvalidateReply(h);
      break;
    case MsgType::kAck:
      MP_CHECK(OwnsShard(h.minipage));
      MgrHandleAck(h);
      break;
    case MsgType::kAllocRequest:
      MP_CHECK(is_manager());
      MgrHandleAlloc(h);
      break;
    case MsgType::kAllocReply:
    case MsgType::kBarrierRelease:
    case MsgType::kLockGrant:
      if (h.seq != kNoWaitSlot) {
        slots_.Post(WaitSlots::SeqSlot(h.seq), h);
      }
      break;
    case MsgType::kBarrierEnter:
      MP_CHECK(OwnsShard(kBarrierShardId)) << "barrier entry at non-barrier shard";
      if (allocator_ != nullptr) {
        allocator_->CloseChunk();
      }
      MgrHandleBarrierEnter(h);
      break;
    case MsgType::kLockAcquire:
      MP_CHECK(OwnsShard(h.minipage)) << "lock acquire at non-owning shard";
      if (allocator_ != nullptr) {
        allocator_->CloseChunk();
      }
      MgrHandleLockAcquire(h);
      break;
    case MsgType::kLockRelease:
      MP_CHECK(OwnsShard(h.minipage)) << "lock release at non-owning shard";
      MgrHandleLockRelease(h);
      break;
    case MsgType::kPushUpdate:
      if (h.has_payload()) {
        ApplyPush(h);
      } else if ((h.flags & kFlagForwarded) != 0) {
        PusherBroadcast(h);
      } else if (!h.translated()) {
        MgrTranslateAndRoute(h);
      } else {
        MP_CHECK(OwnsShard(h.minipage)) << "routed push received by non-owning shard";
        MgrStartService(h);
      }
      break;
    case MsgType::kShutdown:
      break;
    case MsgType::kEpochBump:
      // minipage = new epoch; privbase = cumulative dead-host mask (≤64-host
      // clusters) or one dead host id per datagram (>64-host clusters).
      ApplyMembership(h.minipage,
                      config_.num_hosts <= 64
                          ? HostSet::FromWord(h.privbase)
                          : HostSet::Single(static_cast<uint32_t>(h.privbase)),
                      /*broadcast=*/false);
      break;
    case MsgType::kCopysetQuery:
      HandleCopysetQuery(h);
      break;
    case MsgType::kCopysetReply:
      MP_CHECK(OwnsShard(h.minipage)) << "copyset reply at non-owning shard";
      MgrHandleCopysetReply(h);
      break;
    case MsgType::kLockProbe:
      HandleLockProbe(h);
      break;
    case MsgType::kLockProbeReply:
      MP_CHECK(OwnsShard(h.minipage)) << "lock probe reply at non-owning shard";
      MgrHandleLockProbeReply(h);
      break;
    case MsgType::kFlushHint:
      // Self-addressed wakeup from SendCoalesced: drain the open batches.
      MP_CHECK(h.from == me_) << "flush hint from another host";
      flush_hint_inflight_ = false;
      FlushCoalesced();
      break;
    case MsgType::kBarrierProbe:
      HandleBarrierProbe(h);
      break;
    case MsgType::kBarrierProbeReply:
      MP_CHECK(OwnsShard(kBarrierShardId)) << "barrier probe reply at non-barrier shard";
      MgrHandleBarrierProbeReply(h);
      break;
  }
}

// ---- Coherence-traffic coalescer -------------------------------------------

void DsmNode::SendCoalesced(HostId to, const MsgHeader& h) {
  counters_.coalesced_records++;
  if (!config_.batch_coherence) {
    counters_.coalesced_msgs_sent++;
    SendMsg(to, h);
    return;
  }
  PendingBatch* batch = nullptr;
  bool any_open = false;
  for (PendingBatch& b : coalesce_) {
    any_open = any_open || !b.items.empty();
    if (b.to == to && b.type == h.msg_type()) {
      batch = &b;
    }
  }
  if (batch == nullptr) {
    coalesce_.push_back(PendingBatch{to, h.msg_type(), 0, {}});
    batch = &coalesce_.back();
  }
  if (batch->items.size() >= kMaxBatchRecords) {
    SendBatch(*batch);
  }
  if (batch->items.empty()) {
    // First record since the last flush: start this batch's linger clock.
    // (Unused on externally-pumped nodes — their kFlushHint flushes are
    // forced — so the wall-clock read never influences a simulated run.)
    batch->opened_ns = MonotonicNowNs();
  }
  batch->items.push_back(h);
  // Externally-pumped node (no server loop): make sure a flush is coming.
  // The hint rides the fabric to ourselves, so the simulator's pending-
  // message count stays nonzero while a batch is open — no false deadlock —
  // and its delivery is the deterministic flush point.
  if (!any_open && !flush_hint_inflight_ && !server_.joinable()) {
    MsgHeader hint;
    hint.set_type(MsgType::kFlushHint);
    hint.from = me_;
    hint.seq = kNoWaitSlot;
    SendMsg(me_, hint);
    flush_hint_inflight_ = true;
  }
}

bool DsmNode::HasOpenBatch() const {
  for (const PendingBatch& b : coalesce_) {
    if (!b.items.empty()) {
      return true;
    }
  }
  return false;
}

void DsmNode::FlushCoalesced() {
  // Burst window: a flush that emits frames for several destinations hands
  // them to the kernel in one submission on transports that batch (io_uring);
  // a no-op elsewhere.
  transport_->BeginBurst();
  for (PendingBatch& b : coalesce_) {
    SendBatch(b);
  }
  transport_->EndBurst();
}

void DsmNode::FlushRipeCoalesced(uint64_t now_ns) {
  const uint64_t linger_ns = config_.batch_linger_us * 1000;
  transport_->BeginBurst();
  for (PendingBatch& b : coalesce_) {
    if (b.items.empty()) {
      continue;
    }
    if (linger_ns == 0 || b.items.size() >= config_.batch_linger_min_records ||
        now_ns - b.opened_ns >= linger_ns) {
      SendBatch(b);
    }
  }
  transport_->EndBurst();
}

uint64_t DsmNode::NextFlushDelayUs(uint64_t now_ns) const {
  const uint64_t linger_ns = config_.batch_linger_us * 1000;
  uint64_t best_ns = ~0ull;
  for (const PendingBatch& b : coalesce_) {
    if (b.items.empty()) {
      continue;
    }
    if (linger_ns == 0 || b.items.size() >= config_.batch_linger_min_records) {
      return 0;  // already ripe: drain without blocking, flush immediately
    }
    const uint64_t age = now_ns - b.opened_ns;
    if (age >= linger_ns) {
      return 0;
    }
    best_ns = std::min(best_ns, linger_ns - age);
  }
  return best_ns == ~0ull ? 0 : (best_ns + 999) / 1000;
}

void DsmNode::SendBatch(PendingBatch& b) {
  if (b.items.empty()) {
    return;
  }
  if (!live_set().Contains(b.to)) {
    // Destination died while the batch was open. Drop it: repair has already
    // retired (or will retire) everything these messages would have done.
    b.items.clear();
    return;
  }
  if (b.items.size() == 1) {
    // Single record: send the plain header, bit-identical to an unbatched
    // protocol run (the v0 golden-bytes contract).
    counters_.coalesced_msgs_sent++;
    SendMsg(b.to, b.items[0]);
    b.items.clear();
    return;
  }
  std::vector<BatchRecord> recs;
  recs.reserve(b.items.size());
  for (const MsgHeader& m : b.items) {
    recs.push_back(BatchRecord::From(m));
  }
  MsgHeader frame = b.items[0];
  frame.flags |= kFlagBatched;
  counters_.batch_frames_sent++;
  counters_.batch_records_sent += recs.size();
  counters_.coalesced_msgs_sent++;
  SendMsg(b.to, frame, recs.data(), recs.size() * sizeof(BatchRecord));
  b.items.clear();
}

// ---- Manager role ----------------------------------------------------------

bool DsmNode::MgrTranslate(MsgHeader* h) {
  const GlobalAddr a = h->global_addr();
  const Minipage* mp = mpt_->Lookup(a.view, a.offset);
  directory_->counters().mpt_lookups++;
  if (mp == nullptr && a.offset % PageSize() == 0) {
    // The userfaultfd backend reports fault addresses page-masked, so a
    // fault on a vpage whose minipage starts mid-page misses the byte-exact
    // lookup. The vpage holds at most one minipage, so this is unambiguous.
    mp = mpt_->LookupVpage(a.view, a.offset);
  }
  if (mp == nullptr) {
    MP_LOG(Fatal) << "fault at unmapped shared address view=" << a.view
                  << " offset=" << a.offset << " (wild pointer into a layout gap?)";
    return false;
  }
  h->minipage = mp->id;
  h->pgsize = static_cast<uint32_t>(mp->length);
  h->privbase = mp->offset;
  if (mp->id >= mp_routed_.size()) {
    mp_routed_.resize(mp->id + 1, false);
  }
  mp_routed_[mp->id] = true;
  return true;
}

void DsmNode::MgrTranslateAndRoute(const MsgHeader& h) {
  MP_CHECK(is_manager()) << "untranslated request received by non-MPT host";
  // Any protocol traffic means sharing has begun: stop aggregating
  // allocations so open chunks can no longer grow (see MgrHandleAlloc).
  allocator_->CloseChunk();
  MsgHeader copy = h;
  if (!MgrTranslate(&copy)) {
    return;
  }
  const HostId owner = LiveManagerOf(copy.minipage);
  if (owner == me_) {
    MgrStartService(copy);
    return;
  }
  // Hand the translated (but still unforwarded) header to the owning shard;
  // service, ACKs, and replies then bypass this host entirely.
  directory_->counters().remote_routed++;
  SendMsg(owner, copy);
}

void DsmNode::ForwardToReplica(HostId target, const MsgHeader& fwd) {
  if (directory_ != nullptr && fwd.minipage != kInvalidMinipage) {
    DirEntry& e = directory_->Entry(fwd.minipage);
    e.fetch_pending = true;
    e.fetch_from = target;
  }
  if (target == me_ && config_.manager_policy == ManagerPolicy::kSharded) {
    // The owning shard holds the serving replica itself. Serve inline from
    // the privileged view instead of a self round trip through the
    // transport — the zero-copy send stays zero-copy and saves two local
    // messages. (Centralized mode keeps the historical self-send so its
    // message traces stay bit-compatible.)
    if (fwd.msg_type() == MsgType::kReadRequest) {
      ServeReadRequest(fwd);
      return;
    }
    if (fwd.msg_type() == MsgType::kWriteRequest) {
      ServeWriteRequest(fwd);
      return;
    }
  }
  SendMsg(target, fwd);
}

void DsmNode::MgrStartService(MsgHeader h) {
  DirEntry& e = directory_->Entry(h.minipage);
  if (e.lost) {
    ReplyLost(h);
    return;
  }
  if (e.rebuilding) {
    e.pending.push_back(h);  // adopted id, copyset still being reassembled
    return;
  }
  if (e.copyset.Empty()) {
    // First request this shard sees for the id. If the id's original home
    // shard is dead, this shard adopted it and cannot know whether the id
    // was ever serviced: rebuild the copyset by querying every live host
    // (the request waits in `pending` meanwhile). Otherwise the initial
    // holder is always host 0: allocation opened the minipage ReadWrite
    // there, and every first-touch request passes host 0's translation
    // before arriving here (closing the growth chunk), so "never serviced"
    // ⇒ "still manager-held". Centralized shards never hit either path
    // (MgrHandleAlloc seeds the entry, and they never rehash).
    const HostId home = config_.ManagerOf(h.minipage);
    if (home != me_ && dead_set().Contains(home)) {
      e.pending.push_back(h);
      StartCopysetRebuild(h);
      return;
    }
    e.copyset = HostSet::Single(kManagerHost);
    e.writable = true;
  }
  directory_->counters().requests_served++;
  if (e.in_service) {
    // A request queued behind another HOST's transaction is contention (the
    // paper's "competing requests"). Queued behind the same host's own
    // in-flight prefetch it is just a pipelined duplicate, and a queued
    // PREFETCH blocks nobody (its issuer is not waiting) — neither is
    // priced as contention.
    if (h.from != e.in_service_for && (h.flags & kFlagPrefetch) == 0) {
      counters_.competing_requests++;
    }
    e.pending.push_back(h);
    return;
  }
  e.in_service = true;
  e.in_service_for = h.from;
  e.in_service_req = h;
  Trace(TraceEventKind::kMgrSvcStart, h.minipage, h.addr, h.from, e.copyset.LowWord());
  MgrProcess(h);
}

void DsmNode::MgrProcess(const MsgHeader& h) {
  DirEntry& e = directory_->Entry(h.minipage);
  switch (h.msg_type()) {
    case MsgType::kReadRequest:
      MgrProcessRead(h, e);
      break;
    case MsgType::kWriteRequest:
      MgrProcessWrite(h, e);
      break;
    case MsgType::kPushUpdate:
      MgrProcessPush(h, e);
      break;
    default:
      MP_LOG(Fatal) << "MgrProcess: unexpected type " << MsgTypeName(h.msg_type());
  }
}

void DsmNode::MgrProcessRead(const MsgHeader& h, DirEntry& e) {
  MP_CHECK(!e.copyset.Empty()) << "minipage with empty copyset";
  if (e.CopyCount() == 1 && e.HasCopy(h.from)) {
    // Requester already holds the only copy (prefetch/fault race): grant
    // access without data.
    Trace(TraceEventKind::kMgrReadGrant, h.minipage, h.addr, h.from, e.copyset.LowWord());
    MsgHeader reply = h;
    reply.set_type(MsgType::kReadReply);
    reply.flags = static_cast<uint8_t>((h.flags & kFlagPrefetch) | kFlagUpgrade);
    SendMsg(h.from, reply);
    if (!config_.enable_ack) {
      MgrFinishService(h.minipage);
    }
    return;
  }
  const HostId replica = e.PickReplica(h.from, replica_rotation_++);
  e.AddCopy(h.from);
  e.writable = false;  // the serving host downgrades itself to ReadOnly
  Trace(TraceEventKind::kMgrReadGrant, h.minipage, h.addr, h.from, e.copyset.LowWord());
  MsgHeader fwd = h;
  fwd.flags |= kFlagForwarded;
  ForwardToReplica(replica, fwd);
  if (!config_.enable_ack) {
    MgrFinishService(h.minipage);
  }
}

void DsmNode::MgrProcessWrite(const MsgHeader& h, DirEntry& e) {
  MP_CHECK(!e.copyset.Empty()) << "minipage with empty copyset";
  if (e.CopyCount() == 1 && e.HasCopy(h.from)) {
    // Sole holder asks for exclusivity: upgrade in place.
    e.writable = true;
    Trace(TraceEventKind::kMgrWriteGrant, h.minipage, h.addr, h.from,
          static_cast<uint64_t>(h.from) + 1);
    MsgHeader reply = h;
    reply.set_type(MsgType::kWriteReply);
    reply.flags = kFlagUpgrade;
    SendMsg(h.from, reply);
    if (!config_.enable_ack) {
      MgrFinishService(h.minipage);
    }
    return;
  }
  const HostId remaining =
      e.HasCopy(h.from) ? h.from : e.PickReplica(h.from, replica_rotation_++);
  HostSet others = e.copyset;
  others.Remove(remaining);
  others.Remove(h.from);
  e.copyset = HostSet::Single(h.from);
  e.writable = true;
  if (others.Empty()) {
    MP_CHECK(remaining != h.from);
    Trace(TraceEventKind::kMgrWriteGrant, h.minipage, h.addr, h.from,
          static_cast<uint64_t>(remaining) + 1);
    MsgHeader fwd = h;
    fwd.flags |= kFlagForwarded;
    ForwardToReplica(remaining, fwd);
    if (!config_.enable_ack) {
      MgrFinishService(h.minipage);
    }
    return;
  }
  // Invalidate every other replica; the write is forwarded (or upgraded)
  // once all invalidation replies are in (Figure 3, Manager paths). The
  // outstanding set is a host set so copyset repair can retire the
  // invalidations a host that dies mid-round will never answer.
  e.write_pending = true;
  e.pending_write = h;
  e.write_remaining = remaining;
  e.invalidates_pending.Clear();
  directory_->counters().invalidation_rounds++;
  const HostSet& live = live_set();
  // Burst window: with coalescing off (or single-record batches) this
  // fan-out is one datagram per copyset member; a batching transport submits
  // them to the kernel in one go.
  transport_->BeginBurst();
  others.ForEach([&](uint32_t host) {
    if (!live.Contains(host)) {
      return;
    }
    // Protocol-bug injection for the simulator: silently skip one
    // invalidation, leaving a stale readable replica behind — exactly the
    // class of bug the offline SWMR checker exists to catch.
    if (FailpointRegistry::Instance().Fire("dsm.mgr.skip_invalidate").has_value()) {
      return;
    }
    e.invalidates_pending.Add(host);
    Trace(TraceEventKind::kMgrInvalidate, h.minipage, h.addr, host);
    MsgHeader inv = h;
    inv.set_type(MsgType::kInvalidateRequest);
    inv.flags = kFlagForwarded;
    SendCoalesced(static_cast<HostId>(host), inv);
  });
  transport_->EndBurst();
  if (e.invalidates_pending.Empty()) {
    MgrFinishWriteRound(h.minipage);
  }
}

void DsmNode::MgrHandleInvalidateReply(const MsgHeader& h) {
  DirEntry& e = directory_->Entry(h.minipage);
  // A reply for a round that already closed (no write pending) or a second
  // reply from the same host is a duplicate delivery — a retransmitting
  // transport, or a reply that raced with copyset repair retiring the round.
  // Invalidation is idempotent at the replica, so the extra reply carries no
  // information; drop it instead of taking the whole cluster down.
  if (!e.write_pending || !e.invalidates_pending.Contains(h.from)) {
    counters_.dup_invalidate_replies++;
    return;
  }
  e.invalidates_pending.Remove(h.from);
  if (!e.invalidates_pending.Empty()) {
    return;
  }
  MgrFinishWriteRound(h.minipage);
}

void DsmNode::MgrFinishWriteRound(MinipageId id) {
  DirEntry& e = directory_->Entry(id);
  e.write_pending = false;
  const MsgHeader& w = e.pending_write;
  Trace(TraceEventKind::kMgrWriteGrant, id, w.addr, w.from,
        static_cast<uint64_t>(e.write_remaining) + 1);
  if (e.write_remaining == w.from) {
    MsgHeader reply = w;
    reply.set_type(MsgType::kWriteReply);
    reply.flags = kFlagUpgrade;
    SendMsg(w.from, reply);
  } else {
    MsgHeader fwd = w;
    fwd.flags |= kFlagForwarded;
    ForwardToReplica(e.write_remaining, fwd);
  }
  if (!config_.enable_ack) {
    MgrFinishService(id);
  }
}

void DsmNode::MgrProcessPush(const MsgHeader& h, DirEntry& e) {
  // The pusher must still hold the writable copy; it broadcasts and every
  // live host (pusher included) confirms with an ACK before the minipage
  // leaves service and the copyset becomes all-live-hosts.
  e.push_outstanding = static_cast<uint32_t>(live_set().Count());
  MsgHeader fwd = h;
  fwd.flags |= kFlagForwarded;
  SendMsg(h.from, fwd);
}

void DsmNode::MgrHandleAck(const MsgHeader& h) {
  DirEntry& e = directory_->Entry(h.minipage);
  if ((h.flags & kFlagAbort) != 0 && e.push_outstanding == 0) {
    // Renounced grant: the grantee's protection install failed, so the copy
    // the directory just granted does not exist. Drop the grantee from the
    // copyset; when that empties it, the data now lives nowhere reachable —
    // degrade the id with the same lost-minipage machinery as sole-copy
    // host death (per-access kNotFound for future requesters) instead of
    // wedging or aborting the cluster.
    e.copyset.Remove(h.from);
    if (e.copyset.Empty() && !e.lost) {
      e.lost = true;
      e.writable = false;
      minipages_lost_.fetch_add(1, std::memory_order_relaxed);
      MP_LOG(Error) << "host " << me_ << ": minipage " << h.minipage
                    << " lost: host " << h.from << " renounced the only copy";
      while (!e.pending.empty()) {
        ReplyLost(e.pending.front());
        e.pending.pop_front();
      }
    }
    if (e.in_service) {
      MgrFinishService(h.minipage);
    }
    return;
  }
  if (!e.in_service) {
    // Repair already closed this transaction (its data source died and the
    // service was restarted or the id declared lost): the ACK answers a
    // grant that no longer exists.
    return;
  }
  if (e.push_outstanding > 0) {
    if ((h.flags & kFlagAbort) != 0) {
      e.push_outstanding = 0;  // pusher lost the copy; leave copyset alone
      MgrFinishService(h.minipage);
      return;
    }
    if (--e.push_outstanding > 0) {
      return;
    }
    e.copyset = live_set();
    e.writable = false;
    MgrFinishService(h.minipage);
    return;
  }
  MgrFinishService(h.minipage);
}

void DsmNode::MgrHandleBounced(const MsgHeader& h) {
  DirEntry& e = directory_->Entry(h.minipage);
  if (h.msg_type() == MsgType::kWriteRequest) {
    // Writes are still ACK-serialized, so the transaction that chose the
    // bounced target is the one in service; retry the same target — its
    // inbound copy is on the wire.
    MsgHeader fwd = h;
    fwd.flags |= kFlagForwarded;
    ForwardToReplica(e.write_remaining, fwd);
    return;
  }
  // Reads: re-route from the current copyset. When the bounce came from a
  // serve-side protection failure the transaction is still in service (its
  // ACK is pending) — re-dispatch it directly; funneling it through
  // MgrStartService would queue the request behind itself and wedge the
  // minipage forever.
  if (e.in_service && e.in_service_for == h.from) {
    MgrProcess(h);
    return;
  }
  MgrStartService(h);
}

void DsmNode::MgrFinishService(MinipageId id) {
  DirEntry& e = directory_->Entry(id);
  e.in_service = false;
  e.fetch_pending = false;
  Trace(TraceEventKind::kMgrSvcEnd, id, 0, 0, e.copyset.LowWord());
  if (e.pending.empty()) {
    return;
  }
  MsgHeader next = e.pending.front();
  e.pending.pop_front();
  e.in_service = true;
  e.in_service_for = next.from;
  e.in_service_req = next;
  Trace(TraceEventKind::kMgrSvcStart, next.minipage, next.addr, next.from,
        e.copyset.LowWord());
  MgrProcess(next);
}

void DsmNode::MgrHandleAlloc(const MsgHeader& h) {
  if (h.pgsize == 0) {
    allocator_->CloseChunk();
    return;
  }
  Result<Allocation> alloc = allocator_->Allocate(h.pgsize);
  MsgHeader reply = h;
  reply.set_type(MsgType::kAllocReply);
  if (!alloc.ok()) {
    MP_LOG(Error) << "SharedMalloc failed: " << alloc.status().ToString();
    reply.flags = kFlagAbort;
    SendMsg(h.from, reply);
    return;
  }
  std::vector<Minipage> grants;
  grants.reserve(alloc->minipages.size());
  for (MinipageId id : alloc->minipages) {
    if (!OwnsShard(id)) {
      // Sharded: the id's directory entry lives on another host and
      // bootstraps lazily when that shard first services it. Locally we only
      // keep the growing chunk's pages writable — unless the id has already
      // been translated into sharing, in which case re-opening ReadWrite
      // would undo a downgrade the owning shard ordered.
      const bool routed = id < mp_routed_.size() && mp_routed_[id];
      if (!routed) {
        grants.push_back(mpt_->Get(id));
      }
      continue;
    }
    DirEntry& e = directory_->Entry(id);
    if (e.copyset.Empty()) {
      e.copyset = HostSet::Single(kManagerHost);
      e.writable = true;
    }
    // Cover newly added vpages of a growing chunk; safe because chunks close
    // on any non-alloc traffic, so a growing minipage is still manager-held.
    if (e.CopyCount() == 1 && e.HasCopy(kManagerHost) && e.writable) {
      grants.push_back(mpt_->Get(id));
    }
  }
  // One ranged protection call opens the whole round: an allocation's
  // minipages pack vpage-contiguously, so an N-minipage grant costs one
  // mprotect (or uffd ioctl) instead of N.
  MP_CHECK_OK(
      views_->SetProtectionBatch(grants.data(), grants.size(), Protection::kReadWrite));
  reply.addr = GlobalAddr{alloc->view, alloc->offset}.Pack();
  reply.pgsize = static_cast<uint32_t>(alloc->size);
  reply.privbase = alloc->offset;
  SendMsg(h.from, reply);
}

void DsmNode::MgrHandleBarrierEnter(const MsgHeader& h) {
  BarrierState& b = directory_->barrier();
  if (BarrierNeedsProbe()) {
    StartBarrierProbe();
  }
  if (h.pgsize < b.generation) {
    // Entry for a round this shard already released: the host's original
    // release crossed a membership kick and was staled, so it re-sent. The
    // round's quorum was met once — re-releasing it is idempotent, and
    // queueing the entry instead would strand the host waiting on peers that
    // have already moved past the round.
    MsgHeader release = h;
    release.set_type(MsgType::kBarrierRelease);
    release.minipage = h.pgsize;
    SendMsg(h.from, release);
    return;
  }
  if (!b.arrived_set.Contains(h.from)) {
    b.arrived_set.Add(h.from);
    b.waiters.push_back(h);
  } else {
    // Post-failover re-send from an already-arrived host: collapse the
    // duplicate, but keep the freshest header so the release answers the
    // newest attempt's (slot, generation).
    for (MsgHeader& w : b.waiters) {
      if (w.from == h.from) {
        w = h;
        break;
      }
    }
  }
  b.arrived = static_cast<uint32_t>(b.arrived_set.Count());
  MaybeReleaseBarrier();
}

void DsmNode::MaybeReleaseBarrier() {
  if (directory_ == nullptr) {
    return;
  }
  BarrierState& b = directory_->barrier();
  if (b.waiters.empty()) {
    return;
  }
  if (!b.arrived_set.ContainsAll(live_set())) {
    return;  // a live host is still computing (dead hosts no longer count)
  }
  // Release the *oldest* round only, and each waiter with its own expected
  // generation (carried in pgsize). Across a failover the new shard can see
  // mixed generations — a host the dead shard released mid-round is already
  // at round k+1 while a straggler re-sends round k; the straggler's arrival
  // at k implies everyone reached k, but the k+1 entrant must stay queued.
  uint32_t min_gen = ~0u;
  for (const MsgHeader& w : b.waiters) {
    min_gen = std::min(min_gen, w.pgsize);
  }
  std::vector<MsgHeader> keep;
  HostSet kept;
  for (const MsgHeader& w : b.waiters) {
    if (w.pgsize == min_gen) {
      MsgHeader release = w;
      release.set_type(MsgType::kBarrierRelease);
      release.minipage = min_gen;
      SendMsg(w.from, release);
    } else {
      keep.push_back(w);
      kept.Add(w.from);
    }
  }
  b.waiters.assign(keep.begin(), keep.end());
  b.arrived_set = kept;
  b.arrived = static_cast<uint32_t>(kept.Count());
  b.generation = min_gen + 1;
}

// ---- Adopted-barrier generation probe ---------------------------------------
//
// When the barrier shard dies mid-release — some hosts of round k released,
// others' releases lost with the shard — the released hosts may be past their
// final barrier and will never enter again, so the adopting shard's
// wait-for-all-live release rule deadlocks the stragglers. The probe asks
// every live host for its completed-round count: any host past round k proves
// round k's quorum was met at the dead shard, and the stragglers re-sending
// round k can be released without a fresh quorum.

bool DsmNode::BarrierNeedsProbe() const {
  const BarrierState& b = static_cast<const Directory*>(directory_.get())->barrier();
  if (b.probed || b.probing || !RecoveryEnabled()) {
    return false;
  }
  const HostSet& dead = dead_set();
  if (dead.Empty()) {
    return false;
  }
  const HostId home = config_.BarrierManager();
  // Only an adopted barrier is probed: the original home's state is
  // authoritative.
  return home != me_ && dead.Contains(home);
}

void DsmNode::StartBarrierProbe() {
  BarrierState& b = directory_->barrier();
  b.probing = true;
  b.probed = true;
  b.probe_pending = live_set();
  b.probe_pending.Remove(me_);
  // Our own completed-round count seeds the generation (we are not probed).
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    b.generation = std::max(b.generation, epoch_);
  }
  MsgHeader probe;
  probe.set_type(MsgType::kBarrierProbe);
  probe.from = me_;
  probe.seq = kNoWaitSlot;
  probe.minipage = kBarrierShardId;
  b.probe_pending.ForEach([&](uint32_t host) { SendMsg(static_cast<HostId>(host), probe); });
  if (b.probe_pending.Empty()) {
    FinishBarrierProbe();
  }
}

void DsmNode::FinishBarrierProbe() {
  BarrierState& b = directory_->barrier();
  b.probing = false;
  b.probe_pending.Clear();
  // Rounds below the probed generation met quorum at the dead shard: release
  // their stragglers now — the hosts released back then may never re-enter.
  std::vector<MsgHeader> keep;
  HostSet kept;
  for (const MsgHeader& w : b.waiters) {
    if (w.pgsize < b.generation) {
      MsgHeader release = w;
      release.set_type(MsgType::kBarrierRelease);
      release.minipage = w.pgsize;
      SendMsg(w.from, release);
    } else {
      keep.push_back(w);
      kept.Add(w.from);
    }
  }
  b.waiters.assign(keep.begin(), keep.end());
  b.arrived_set = kept;
  b.arrived = static_cast<uint32_t>(kept.Count());
  MaybeReleaseBarrier();
}

void DsmNode::HandleBarrierProbe(const MsgHeader& h) {
  MsgHeader reply = h;
  reply.set_type(MsgType::kBarrierProbeReply);
  reply.from = me_;
  {
    std::lock_guard<std::mutex> lock(epoch_mu_);
    reply.pgsize = epoch_;
  }
  SendMsg(h.from, reply);
}

void DsmNode::MgrHandleBarrierProbeReply(const MsgHeader& h) {
  BarrierState& b = directory_->barrier();
  if (!b.probing) {
    return;  // stale (probe already resolved)
  }
  b.probe_pending.Remove(h.from);
  b.generation = std::max(b.generation, h.pgsize);
  if (!b.probe_pending.Intersects(live_set())) {
    FinishBarrierProbe();
  }
}

void DsmNode::MgrHandleLockAcquire(const MsgHeader& h) {
  LockEntry& l = directory_->Lock(h.minipage);
  if (LockNeedsProbe(h.minipage, l)) {
    StartLockProbe(h.minipage);
  }
  if (l.probing) {
    // Adoption in progress: queue until every live host has answered the
    // holder probe (a grant issued by the dead shard must be honored, not
    // doubled).
    if (!l.RefreshWaiter(h)) {
      l.waiters.push_back(h);
    }
    return;
  }
  if (l.held) {
    if (l.holder == h.from) {
      // The current holder re-sent its acquire (its original grant was
      // dropped across an epoch bump): re-grant idempotently. No kLockGrant
      // trace — this is not a new hand-off.
      MsgHeader grant = h;
      grant.set_type(MsgType::kLockGrant);
      SendMsg(h.from, grant);
      return;
    }
    if (!l.RefreshWaiter(h)) {
      l.waiters.push_back(h);
    }
    return;
  }
  l.held = true;
  l.holder = h.from;
  Trace(TraceEventKind::kLockGrant, h.minipage, 0, h.from);
  MsgHeader grant = h;
  grant.set_type(MsgType::kLockGrant);
  SendMsg(h.from, grant);
}

void DsmNode::MgrHandleLockRelease(const MsgHeader& h) {
  LockEntry& l = directory_->Lock(h.minipage);
  if (!l.held || l.holder != h.from) {
    if (!dead_set().Empty()) {
      // Post-failover: the release raced the adoption (duplicate release, or
      // the holder's release reached the dead shard first and repair already
      // freed the lock). Stale — ignore, don't crash the shard.
      return;
    }
    MP_CHECK(l.held && l.holder == h.from) << "unlock by non-holder";
  }
  Trace(TraceEventKind::kLockRelease, h.minipage, 0, h.from);
  if (l.probing) {
    l.held = false;  // grant deferred until the probe finishes
    return;
  }
  if (l.waiters.empty()) {
    l.held = false;
    return;
  }
  MsgHeader next = l.waiters.front();
  l.waiters.pop_front();
  l.holder = next.from;
  Trace(TraceEventKind::kLockGrant, next.minipage, 0, next.from);
  next.set_type(MsgType::kLockGrant);
  SendMsg(next.from, next);
}

// ---- Adopted-lock holder probe ---------------------------------------------

bool DsmNode::LockNeedsProbe(uint32_t lock_id, const LockEntry& l) const {
  if (l.probed || l.probing || !RecoveryEnabled()) {
    return false;
  }
  const HostSet& dead = dead_set();
  if (dead.Empty()) {
    return false;
  }
  const HostId home = config_.ManagerOf(lock_id);
  // Only adopted locks are probed: if this shard is the original home, its
  // own state is authoritative.
  return home != me_ && dead.Contains(home);
}

void DsmNode::StartLockProbe(uint32_t lock_id) {
  LockEntry& l = directory_->Lock(lock_id);
  l.probing = true;
  l.probed = true;
  l.probe_pending = live_set();
  l.probe_pending.Remove(me_);
  MsgHeader probe;
  probe.set_type(MsgType::kLockProbe);
  probe.from = me_;
  probe.seq = kNoWaitSlot;
  probe.minipage = lock_id;
  l.probe_pending.ForEach([&](uint32_t host) { SendMsg(static_cast<HostId>(host), probe); });
  // Check our own held set inline (we are not in the probed set).
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    if (held_locks_.count(lock_id) != 0) {
      l.held = true;
      l.holder = me_;
    }
  }
  if (l.probe_pending.Empty()) {
    FinishLockProbe(lock_id);
  }
}

void DsmNode::FinishLockProbe(uint32_t lock_id) {
  LockEntry& l = directory_->Lock(lock_id);
  l.probing = false;
  l.probe_pending.Clear();
  if (l.held) {
    return;  // a surviving holder claimed the lock; waiters queue behind it
  }
  if (!l.waiters.empty()) {
    MsgHeader next = l.waiters.front();
    l.waiters.pop_front();
    l.held = true;
    l.holder = next.from;
    Trace(TraceEventKind::kLockGrant, lock_id, 0, next.from);
    next.set_type(MsgType::kLockGrant);
    SendMsg(next.from, next);
  }
}

void DsmNode::HandleLockProbe(const MsgHeader& h) {
  bool held;
  {
    std::lock_guard<std::mutex> lock(held_mu_);
    held = held_locks_.count(h.minipage) != 0;
  }
  MsgHeader reply = h;
  reply.set_type(MsgType::kLockProbeReply);
  reply.from = me_;
  reply.flags = held ? kFlagUpgrade : 0;
  SendMsg(h.from, reply);
}

void DsmNode::MgrHandleLockProbeReply(const MsgHeader& h) {
  LockEntry& l = directory_->Lock(h.minipage);
  if (!l.probing) {
    return;  // stale (probe already resolved)
  }
  l.probe_pending.Remove(h.from);
  if ((h.flags & kFlagUpgrade) != 0) {
    MP_CHECK(!l.held || l.holder == h.from)
        << "two hosts claim lock " << h.minipage << " during adoption probe";
    l.held = true;
    l.holder = h.from;
  }
  if (!l.probe_pending.Intersects(live_set())) {
    FinishLockProbe(h.minipage);
  }
}

// ---- Serving side ------------------------------------------------------------

void DsmNode::ServeReadRequest(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  const Protection have = views_->GetProtection(mp);
  if (have == Protection::kNoAccess) {
    Bounce(h);
    return;
  }
  if (have == Protection::kReadWrite) {
    if (Status st = views_->SetProtection(mp, Protection::kReadOnly); !st.ok()) {
      // Self-downgrade failed: serving anyway could let a local writer tear
      // the outbound copy. Bounce for re-routing (the shard re-dispatches an
      // in-service bounce, so this never wedges the minipage) instead of
      // taking the cluster down over one failed protection change.
      MP_LOG(Error) << "host " << me_ << ": read-serve downgrade of minipage "
                    << h.minipage << " failed: " << st.ToString() << "; bouncing";
      Bounce(h);
      return;
    }
  }
  MsgHeader reply = h;
  reply.set_type(MsgType::kReadReply);
  reply.flags = static_cast<uint8_t>(h.flags & kFlagPrefetch);
  SendMsg(h.from, reply, views_->PrivAddr(mp.offset), mp.length);
}

void DsmNode::ServeWriteRequest(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  if (views_->GetProtection(mp) == Protection::kNoAccess) {
    Bounce(h);
    return;
  }
  if (Status st = views_->SetProtection(mp, Protection::kNoAccess); !st.ok()) {
    // Relinquish failed: sending the copy while it is still locally writable
    // would break SWMR. Bounce — the shard re-forwards a bounced write to
    // this same host, so a transient failure resolves on the retry.
    MP_LOG(Error) << "host " << me_ << ": write-serve relinquish of minipage "
                  << h.minipage << " failed: " << st.ToString() << "; bouncing";
    Bounce(h);
    return;
  }
  MsgHeader reply = h;
  reply.set_type(MsgType::kWriteReply);
  reply.flags = 0;
  SendMsg(h.from, reply, views_->PrivAddr(mp.offset), mp.length);
}

void DsmNode::HandleInvalidateRequest(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  MP_CHECK_OK(views_->SetProtection(mp, Protection::kNoAccess));
  if (!config_.enable_ack) {
    // Any fetch of this minipage still in flight will deliver pre-write
    // data: poison it so the reply is retried instead of installed.
    const GlobalAddr ga = h.global_addr();
    for (auto& f : inflight_) {
      const uint64_t packed = f.addr.load(std::memory_order_acquire);
      if (packed == ~0ULL) {
        continue;
      }
      const GlobalAddr in = GlobalAddr::Unpack(packed);
      if (in.view == ga.view && in.offset >= h.privbase &&
          in.offset < h.privbase + h.pgsize) {
        f.poisoned.store(true, std::memory_order_release);
      }
    }
  }
  counters_.invalidations_received++;
  MsgHeader reply = h;
  reply.set_type(MsgType::kInvalidateReply);
  // The manager retires invalidations by *replier* bit, so the reply must
  // carry this host's id, not the writer's that the request was stamped with.
  reply.from = me_;
  reply.flags = 0;
  // A batched invalidate request dispatches N of these back-to-back; the
  // coalescer folds the replies for one shard into one batched frame.
  SendCoalesced(LiveManagerOf(h.minipage), reply);
}

void DsmNode::HandleReply(const MsgHeader& h) {
  if ((h.flags & kFlagAbort) != 0) {
    // Lost-minipage error reply: no data, no protection change, no ACK —
    // just deliver the verdict to the waiting thread (if any).
    {
      std::lock_guard<std::mutex> lock(lost_mu_);
      lost_minipages_.insert(h.minipage);
    }
    if (h.seq != kNoWaitSlot) {
      slots_.Post(WaitSlots::SeqSlot(h.seq), h);
    }
    return;
  }
  if (!config_.enable_ack && h.seq != kNoWaitSlot) {
    const uint32_t slot = WaitSlots::SeqSlot(h.seq);
    // Only a reply to the slot's *current* attempt owns the in-flight entry;
    // a stale-generation reply (abandoned attempt) must not clear or retry
    // the tracking the newer attempt installed.
    if (WaitSlots::SeqGen(h.seq) ==
        (slot_gen_[slot].load(std::memory_order_acquire) & 0xffffffu)) {
      InflightFetch& f = inflight_[slot];
      if (f.poisoned.exchange(false, std::memory_order_acq_rel)) {
        // The fetched copy was invalidated in flight; leave the vpage
        // inaccessible and re-issue the request for fresh data.
        fault_retries_.fetch_add(1, std::memory_order_relaxed);
        MsgHeader retry;
        retry.set_type(h.msg_type() == MsgType::kReadReply ? MsgType::kReadRequest
                                                           : MsgType::kWriteRequest);
        retry.from = me_;
        retry.seq = h.seq;
        retry.addr = f.addr.load(std::memory_order_acquire);
        SendMsg(kManagerHost, retry);
        return;
      }
      f.addr.store(~0ULL, std::memory_order_release);
    }
  }
  const Minipage mp = MinipageFromHeader(h);
  const Protection prot = h.msg_type() == MsgType::kReadReply ? Protection::kReadOnly
                                                              : Protection::kReadWrite;
  if (Status st = views_->SetProtection(mp, prot); !st.ok()) {
    // The grant arrived but raising local protection failed (ENOMEM from a
    // VMA split, an injected fault-path failure). A protection change on the
    // fault path is a per-access problem, not a cluster-fatal one: renounce
    // the grant with an abort-flagged ACK so the owning shard drops this
    // host from the copyset (and degrades the id to lost when ours would
    // have been the only copy — the same policy as sole-copy host death),
    // then deliver an abort verdict so the waiting access fails kNotFound
    // while every other minipage keeps working.
    MP_LOG(Error) << "host " << me_ << ": installing minipage " << h.minipage
                  << " grant failed: " << st.ToString() << "; degrading this access";
    MsgHeader ack = h;
    ack.set_type(MsgType::kAck);
    ack.from = me_;
    ack.flags = kFlagAbort;
    SendMsg(LiveManagerOf(ack.minipage), ack);
    if (h.seq != kNoWaitSlot) {
      MsgHeader verdict = h;
      verdict.flags |= kFlagAbort;
      slots_.Post(WaitSlots::SeqSlot(h.seq), verdict);
    }
    return;
  }
  if (h.seq == kNoWaitSlot) {
    // Prefetch completion: account and ACK on behalf of the (absent) waiter.
    counters_.prefetch_bytes += h.has_payload() ? h.pgsize : 0;
    if (config_.enable_ack) {
      MsgHeader ack = h;
      ack.set_type(MsgType::kAck);
      ack.from = me_;
      ack.flags = 0;
      SendCoalesced(LiveManagerOf(ack.minipage), ack);
    }
    return;
  }
  slots_.Post(WaitSlots::SeqSlot(h.seq), h);
}

void DsmNode::ApplyPush(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  MP_CHECK_OK(views_->SetProtection(mp, Protection::kReadOnly));
  MsgHeader ack = h;
  ack.set_type(MsgType::kAck);
  ack.from = me_;
  ack.flags = 0;
  SendCoalesced(LiveManagerOf(ack.minipage), ack);
}

void DsmNode::PusherBroadcast(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  MsgHeader ack = h;
  ack.set_type(MsgType::kAck);
  ack.from = me_;
  if (views_->GetProtection(mp) != Protection::kReadWrite) {
    // Lost the writable copy since the push was issued; abort.
    ack.flags = kFlagAbort;
    SendMsg(LiveManagerOf(ack.minipage), ack);
    return;
  }
  // Downgrade first so no local writer can tear the broadcast contents.
  MP_CHECK_OK(views_->SetProtection(mp, Protection::kReadOnly));
  MsgHeader push = h;
  push.set_type(MsgType::kPushUpdate);
  push.flags = kFlagForwarded;
  live_set().ForEach([&](uint32_t host) {
    if (host != me_) {
      SendMsg(static_cast<HostId>(host), push, views_->PrivAddr(mp.offset), mp.length);
    }
  });
  ack.flags = 0;
  SendMsg(LiveManagerOf(ack.minipage), ack);
}

void DsmNode::Bounce(MsgHeader h) {
  // This host cannot serve the forwarded request (its copy is gone or has
  // not arrived) — a window that only opens when read ACKs are elided.
  // Return it to the owning shard for re-routing against current directory
  // state.
  bounced_.fetch_add(1, std::memory_order_relaxed);
  h.flags |= kFlagBounced;
  SendMsg(LiveManagerOf(h.minipage), h);
}

// ---- Liveness --------------------------------------------------------------

Result<MsgHeader> DsmNode::AwaitReply(uint32_t slot, uint32_t gen, uint64_t timeout_ms,
                                      const char* what) {
  const uint64_t deadline_ns =
      timeout_ms > 0 ? MonotonicNowNs() + timeout_ms * 1000000ull : 0;
  for (;;) {
    uint64_t remaining_ms = 0;
    if (timeout_ms > 0) {
      const uint64_t now = MonotonicNowNs();
      if (now >= deadline_ns) {
        return Status::DeadlineExceeded(std::string(what) + ": no reply within " +
                                        std::to_string(timeout_ms) + " ms");
      }
      remaining_ms = (deadline_ns - now + 999999) / 1000000;
    }
    Result<MsgHeader> r = slots_.WaitFor(slot, remaining_ms);
    if (!r.ok()) {
      if (r.status().code() == StatusCode::kDeadlineExceeded) {
        return Status::DeadlineExceeded(std::string(what) + ": no reply within " +
                                        std::to_string(timeout_ms) + " ms");
      }
      return r.status();
    }
    if (WaitSlots::SeqGen(r->seq) == (gen & 0xffffffu)) {
      return *r;
    }
    // Late reply to an abandoned attempt. Discard it — but a discarded data
    // reply must still be ACKed (when the protocol serializes on ACKs),
    // otherwise the manager would hold the minipage in service forever.
    stale_replies_.fetch_add(1, std::memory_order_relaxed);
    const MsgType t = r->msg_type();
    // Lost-minipage error replies never opened a service transaction: no ACK.
    const bool is_data = (t == MsgType::kReadReply || t == MsgType::kWriteReply) &&
                         (r->flags & kFlagAbort) == 0;
    if (is_data && (config_.enable_ack || t == MsgType::kWriteReply)) {
      MsgHeader ack;
      ack.set_type(MsgType::kAck);
      ack.from = me_;
      ack.seq = kNoWaitSlot;
      ack.addr = r->addr;
      ack.minipage = r->minipage;
      SendMsg(LiveManagerOf(ack.minipage), ack);
    }
  }
}

void DsmNode::OnPeerDown(HostId peer) {
  if (draining_.load(std::memory_order_acquire) ||
      stop_.load(std::memory_order_acquire)) {
    return;  // teardown: peers exiting is expected
  }
  {
    std::lock_guard<std::mutex> lock(peer_down_mu_);
    if (peer_down_.Contains(peer)) {
      return;  // already known
    }
    peer_down_.Add(peer);
  }
  if (RecoveryEnabled() && peer != kManagerHost) {
    // Recoverable death: schedule membership recovery on the server thread
    // (the directory is server-thread state). App threads keep their waits —
    // recovery kicks them once the new membership is in place.
    MP_LOG(Error) << "host " << me_ << ": peer host " << peer
                  << " is down; scheduling membership recovery. " << LivenessReport();
    InjectPeerDeath(peer);
    return;
  }
  MP_LOG(Error) << "host " << me_ << ": peer host " << peer
                << " is down; aborting outstanding waits. " << LivenessReport();
  slots_.AbortAll(Status::Unavailable("peer host " + std::to_string(peer) + " is down"));
  // Wake any thread parked in AwaitMembershipChange: no epoch is coming.
  {
    std::lock_guard<std::mutex> lock(member_mu_);
  }
  member_cv_.notify_all();
}

// ---- Membership / recovery -------------------------------------------------

bool DsmNode::ProcessPendingDeaths() {
  if (!has_pending_deaths_.load(std::memory_order_acquire)) {
    return false;
  }
  HostSet pend;
  {
    std::lock_guard<std::mutex> lock(pending_death_mu_);
    pend = pending_deaths_;
    pending_deaths_.Clear();
    has_pending_deaths_.store(false, std::memory_order_release);
  }
  const Membership& m = membership();
  pend.SubtractAll(m.dead);
  pend.IntersectWith(m.live);
  if (pend.Empty()) {
    return false;
  }
  ScopedTimer timer(recovery_ns_);
  HostSet dead = m.dead;
  dead.UnionWith(pend);
  ApplyMembership(m.epoch + 1, dead, /*broadcast=*/true);
  return true;
}

void DsmNode::PublishMembership(std::unique_ptr<Membership> next) {
  membership_.store(next.get(), std::memory_order_release);
  membership_history_.push_back(std::move(next));
}

void DsmNode::ApplyMembership(uint32_t epoch, const HostSet& dead, bool broadcast) {
  const Membership& cur = membership();
  const uint32_t new_epoch = std::max(cur.epoch, epoch);
  HostSet new_dead = cur.dead;
  new_dead.UnionWith(dead);
  if (new_epoch == cur.epoch && new_dead == cur.dead) {
    return;  // idempotent merge: nothing new
  }
  // Drain open batches before publishing the new membership: a queued frame
  // was routed (and its shard chosen) under the old live set, so it must
  // leave stamped with the old epoch and behave exactly like traffic that
  // was already in flight when the bump landed.
  FlushCoalesced();
  HostSet newly_dead = new_dead;
  newly_dead.SubtractAll(cur.dead);
  // Publish first so every message sent below (bump broadcast, rebuild
  // queries, probes) carries the new epoch and routes by the new live set.
  auto next = std::make_unique<Membership>();
  next->epoch = new_epoch;
  next->dead = new_dead;
  next->live = HostSet::AllBelow(config_.num_hosts);
  next->live.SubtractAll(new_dead);
  PublishMembership(std::move(next));
  epoch_bumps_.fetch_add(1, std::memory_order_relaxed);
  // Trace contract: one kEpochBump event per newly-dead host, arg2 = the
  // dead host id + 1 (0 means the epoch advanced with no new deaths — a
  // merge of already-known membership). The checker reconstructs each
  // observer's cumulative dead set from these, at any cluster size.
  if (newly_dead.Empty()) {
    Trace(TraceEventKind::kEpochBump, ~0u, 0, new_epoch, 0);
  } else {
    newly_dead.ForEach([&](uint32_t d) {
      Trace(TraceEventKind::kEpochBump, ~0u, 0, new_epoch, static_cast<uint64_t>(d) + 1);
    });
  }
  MP_LOG(Error) << "host " << me_ << ": membership epoch " << new_epoch << ", "
                << new_dead.Count() << " dead (low mask 0x" << std::hex
                << new_dead.LowWord() << std::dec << ")";
  if (broadcast) {
    // Tell every live peer before repairing, so per-pair FIFO delivers the
    // bump ahead of any repair traffic (queries, probes) we send them. Small
    // clusters broadcast the cumulative dead set as one mask (the original
    // wire format, bit-identical); large clusters send one bump per dead
    // host — cumulative, so a receiver that missed an earlier epoch still
    // converges on the full dead set.
    MsgHeader bump;
    bump.set_type(MsgType::kEpochBump);
    bump.from = me_;
    bump.seq = kNoWaitSlot;
    bump.minipage = new_epoch;
    if (config_.num_hosts <= 64) {
      bump.privbase = new_dead.LowWord();
      live_set().ForEach([&](uint32_t host) {
        if (host != me_) {
          SendMsg(static_cast<HostId>(host), bump);
        }
      });
    } else {
      live_set().ForEach([&](uint32_t host) {
        if (host == me_) {
          return;
        }
        new_dead.ForEach([&](uint32_t d) {
          bump.privbase = d;
          SendMsg(static_cast<HostId>(host), bump);
        });
      });
    }
  }
  newly_dead.ForEach([&](uint32_t d) { RepairAfterDeath(static_cast<HostId>(d)); });
  // Wake app threads: parked waiters re-send against the new membership
  // (their operations are all failover-idempotent), senders blocked in
  // AwaitMembershipChange re-route.
  {
    std::lock_guard<std::mutex> lock(member_mu_);
  }
  member_cv_.notify_all();
  slots_.KickAll(Status::Precondition("membership changed (epoch " +
                                      std::to_string(new_epoch) + ")"));
  DrainDeferred();
}

void DsmNode::RepairAfterDeath(HostId dead) {
  if (directory_ == nullptr) {
    return;
  }
  // Shard adoption accounting: the dead host's directory slots rehash to the
  // first live host after it in probe order.
  if (config_.manager_policy == ManagerPolicy::kSharded) {
    const HostSet& live = live_set();
    for (uint32_t probe = 1; probe < config_.num_hosts; ++probe) {
      const HostId c = static_cast<HostId>((dead + probe) % config_.num_hosts);
      if (live.Contains(c)) {
        if (c == me_) {
          shards_adopted_.fetch_add(1, std::memory_order_relaxed);
        }
        break;
      }
    }
  }
  for (MinipageId id = 0; id < directory_->num_entries(); ++id) {
    DirEntry& e = directory_->Entry(id);
    if (e.lost) {
      continue;
    }
    // Requests the dead host queued will never be consumed: purge them.
    for (auto it = e.pending.begin(); it != e.pending.end();) {
      it = (it->from == dead) ? e.pending.erase(it) : std::next(it);
    }
    const bool had_copy = e.HasCopy(dead);
    if (had_copy) {
      e.RemoveCopy(dead);
      copyset_repairs_.fetch_add(1, std::memory_order_relaxed);
    }
    if (e.rebuilding) {
      e.rebuild_pending.Remove(dead);
      if (!e.rebuild_pending.Intersects(live_set())) {
        FinishCopysetRebuild(id);
      }
      continue;
    }
    // A data forward the dead host will never serve. The requester joined
    // the copyset at grant time, but that copy is provisional — the bytes
    // never left the dead source.
    if (e.in_service && !e.write_pending && e.fetch_pending &&
        e.fetch_from == dead) {
      e.fetch_pending = false;
      HostSet stable = e.copyset;
      stable.Remove(e.in_service_for);
      if (stable.Empty()) {
        // No surviving stable copy: the contents are gone. The requester's
        // retry (fresh generation after its membership kick or timeout)
        // finds e.lost and gets the per-minipage error reply.
        e.RemoveCopy(e.in_service_for);
        e.lost = true;
      } else if (e.in_service_for == dead) {
        MgrFinishService(id);  // requester died with the source: serve the queue
      } else {
        // Re-issue the same transaction against a surviving replica instead
        // of closing the service: the requester's wait — or its
        // stale-discard ACK, if a membership kick already re-generationed
        // the fault — still pairs 1:1 with this open service.
        MsgHeader fwd = e.in_service_req;
        fwd.flags |= kFlagForwarded;
        ForwardToReplica(e.PickReplica(e.in_service_for, replica_rotation_++), fwd);
      }
    }
    // A write round whose data source died loses the minipage contents: the
    // requester held no copy (else it would have been the source) and every
    // other replica was ordered invalid.
    if (e.write_pending && e.write_remaining == dead) {
      e.lost = true;
    }
    if (had_copy && e.copyset.Empty()) {
      // The dead host held the only copy: permanently degraded.
      e.lost = true;
    }
    if (e.lost) {
      minipages_lost_.fetch_add(1, std::memory_order_relaxed);
      Trace(TraceEventKind::kMinipageLost, id, 0, dead);
      if (e.write_pending) {
        ReplyLost(e.pending_write);
        e.write_pending = false;
        e.invalidates_pending.Clear();
      }
      e.in_service = false;
      e.push_outstanding = 0;
      while (!e.pending.empty()) {
        ReplyLost(e.pending.front());
        e.pending.pop_front();
      }
      continue;
    }
    // Retire the invalidation the dead host will never answer.
    if (e.write_pending && e.invalidates_pending.Contains(dead)) {
      e.invalidates_pending.Remove(dead);
      if (e.invalidates_pending.Empty()) {
        MgrFinishWriteRound(id);
      }
    }
    // A push ACK the dead host will never send (best-effort: at most one
    // outstanding per round).
    if (e.push_outstanding > 0) {
      if (--e.push_outstanding == 0) {
        e.copyset = live_set();
        e.writable = false;
        MgrFinishService(id);
        continue;
      }
    }
    // A transaction in service for the dead host will never be ACKed: close
    // it so queued competitors proceed.
    if (e.in_service && e.in_service_for == dead && !e.write_pending) {
      MgrFinishService(id);
    }
  }
  // Locks: free anything the dead host held or queued for.
  for (uint32_t lock_id = 0; lock_id < directory_->num_locks(); ++lock_id) {
    LockEntry& l = directory_->Lock(lock_id);
    for (auto it = l.waiters.begin(); it != l.waiters.end();) {
      it = (it->from == dead) ? l.waiters.erase(it) : std::next(it);
    }
    if (l.probing) {
      l.probe_pending.Remove(dead);
      if (!l.probe_pending.Intersects(live_set())) {
        FinishLockProbe(lock_id);
      }
    }
    if (l.held && l.holder == dead) {
      Trace(TraceEventKind::kLockRelease, lock_id, 0, dead);
      if (l.waiters.empty() || l.probing) {
        l.held = false;
      } else {
        MsgHeader next = l.waiters.front();
        l.waiters.pop_front();
        l.holder = next.from;
        Trace(TraceEventKind::kLockGrant, lock_id, 0, next.from);
        next.set_type(MsgType::kLockGrant);
        SendMsg(next.from, next);
      }
    }
  }
  // Barrier: the dead host no longer counts toward (or blocks) release.
  BarrierState& b = directory_->barrier();
  if (b.probing) {
    b.probe_pending.Remove(dead);
    if (!b.probe_pending.Intersects(live_set())) {
      FinishBarrierProbe();
    }
  }
  if (b.arrived_set.Contains(dead)) {
    b.arrived_set.Remove(dead);
    for (auto it = b.waiters.begin(); it != b.waiters.end();) {
      it = (it->from == dead) ? b.waiters.erase(it) : std::next(it);
    }
    b.arrived = static_cast<uint32_t>(b.arrived_set.Count());
  }
  MaybeReleaseBarrier();
}

void DsmNode::DrainDeferred() {
  if (deferred_.empty()) {
    return;
  }
  std::deque<DeferredMsg> q;
  q.swap(deferred_);
  for (const DeferredMsg& d : q) {
    // A batched frame's records were stashed alongside the header; restore
    // the receive buffer HandleMessage reads them from before replaying.
    if (!d.payload.empty()) {
      batch_rx_.assign(d.payload.begin(), d.payload.end());
    }
    HandleMessage(d.raw);  // re-gates: still-newer messages re-defer
  }
}

bool DsmNode::AwaitMembershipChange(uint32_t epoch_before) {
  if (!RecoveryEnabled()) {
    return false;
  }
  std::unique_lock<std::mutex> lock(member_mu_);
  const auto changed = [&] {
    return member_epoch() > epoch_before || slots_.aborted();
  };
  if (config_.sync_timeout_ms == 0) {
    member_cv_.wait(lock, changed);
  } else {
    member_cv_.wait_for(lock, std::chrono::milliseconds(config_.sync_timeout_ms), changed);
  }
  return member_epoch() > epoch_before;
}

void DsmNode::ReplyLost(const MsgHeader& h) {
  if (h.msg_type() == MsgType::kInvalidateRequest) {
    return;  // nothing useful to answer
  }
  MsgHeader reply = h;
  reply.set_type(h.msg_type() == MsgType::kWriteRequest ? MsgType::kWriteReply
                                                        : MsgType::kReadReply);
  reply.flags = kFlagAbort;
  if (h.from == me_) {
    HandleReply(reply);  // our own queued request: deliver locally
    return;
  }
  SendMsg(h.from, reply);
}

// ---- Adopted-minipage copyset rebuild --------------------------------------

void DsmNode::StartCopysetRebuild(const MsgHeader& h) {
  DirEntry& e = directory_->Entry(h.minipage);
  e.rebuilding = true;
  e.rebuild_pending = live_set();
  e.rebuild_pending.Remove(me_);
  // Ask every live host whether it holds a copy; the translated geometry
  // travels in the header exactly like a forward, so responders can check
  // their own view protection without an MPT.
  MsgHeader query = h;
  query.set_type(MsgType::kCopysetQuery);
  query.from = me_;
  query.seq = kNoWaitSlot;
  query.flags = 0;
  e.rebuild_pending.ForEach(
      [&](uint32_t host) { SendMsg(static_cast<HostId>(host), query); });
  // Count our own copy inline.
  const Minipage mp = MinipageFromHeader(h);
  const Protection mine = views_->GetProtection(mp);
  if (mine != Protection::kNoAccess) {
    e.AddCopy(me_);
    e.writable = mine == Protection::kReadWrite;
  }
  if (e.rebuild_pending.Empty()) {
    FinishCopysetRebuild(h.minipage);
  }
}

void DsmNode::HandleCopysetQuery(const MsgHeader& h) {
  const Minipage mp = MinipageFromHeader(h);
  MsgHeader reply = h;
  reply.set_type(MsgType::kCopysetReply);
  reply.from = me_;
  reply.pgsize = static_cast<uint32_t>(views_->GetProtection(mp));
  SendMsg(h.from, reply);
}

void DsmNode::MgrHandleCopysetReply(const MsgHeader& h) {
  DirEntry& e = directory_->Entry(h.minipage);
  if (!e.rebuilding) {
    return;  // stale (rebuild already resolved)
  }
  e.rebuild_pending.Remove(h.from);
  const auto prot = static_cast<Protection>(h.pgsize);
  if (prot != Protection::kNoAccess) {
    e.AddCopy(h.from);
    if (prot == Protection::kReadWrite) {
      e.writable = true;
    }
  }
  if (!e.rebuild_pending.Intersects(live_set())) {
    FinishCopysetRebuild(h.minipage);
  }
}

void DsmNode::FinishCopysetRebuild(MinipageId id) {
  DirEntry& e = directory_->Entry(id);
  e.rebuilding = false;
  e.rebuild_pending.Clear();
  if (e.copyset.Empty()) {
    // No live host holds a copy: the id died with its owner.
    e.lost = true;
    minipages_lost_.fetch_add(1, std::memory_order_relaxed);
    Trace(TraceEventKind::kMinipageLost, id, 0, 0);
    while (!e.pending.empty()) {
      ReplyLost(e.pending.front());
      e.pending.pop_front();
    }
    return;
  }
  MP_LOG(Error) << "host " << me_ << ": adopted minipage " << id
                << ", rebuilt copyset of " << e.copyset.Count()
                << " (low mask 0x" << std::hex << e.copyset.LowWord() << std::dec << ")";
  if (!e.pending.empty() && !e.in_service) {
    MsgHeader next = e.pending.front();
    e.pending.pop_front();
    MgrStartService(next);
  }
}

Status DsmNode::LivenessFailure(const char* op, const Status& cause) {
  if (!draining_.load(std::memory_order_acquire)) {
    MP_LOG(Error) << "host " << me_ << ": " << op << " failed: " << cause.ToString()
                  << ". " << LivenessReport();
  }
  return Status(cause.code(), std::string(op) + ": " + cause.message());
}

std::string DsmNode::LivenessReport() const {
  char buf[256];
  snprintf(buf, sizeof(buf),
           "liveness{host=%u peers_down=0x%llx timeout_retries=%llu stale_replies=%llu "
           "fault_retries=%llu",
           me_, (unsigned long long)peers_down(),
           (unsigned long long)timeout_retries_.load(std::memory_order_relaxed),
           (unsigned long long)stale_replies_.load(std::memory_order_relaxed),
           (unsigned long long)fault_retries_.load(std::memory_order_relaxed));
  std::string s = buf;
  if (directory_ != nullptr) {
    // Manager-side view: how much protocol state is wedged mid-transaction.
    // Racy snapshot (the directory belongs to the server thread), diagnostics
    // only.
    snprintf(buf, sizeof(buf), " dir{minipages=%zu in_service=%zu barrier_arrived=%u}",
             directory_->num_entries(), directory_->InServiceCount(),
             static_cast<const Directory*>(directory_.get())->barrier().arrived);
    s += buf;
  }
  s += "}";
  return s;
}

}  // namespace millipage
