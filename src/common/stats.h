// Statistics primitives: per-host counter blocks, latency histograms, and
// per-epoch snapshots. Epochs are closed at barriers; the model library
// prices epoch deltas to produce the Figure 6 / Figure 7 series.

#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace millipage {

// Event counters for a single DSM host. Fields mirror the quantities the
// paper reports: fault counts by kind, message/byte volume, synchronization
// activity, and application work units (the deterministic compute proxy).
struct HostCounters {
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t read_fault_bytes = 0;   // minipage bytes fetched by read faults
  uint64_t write_fault_bytes = 0;  // minipage bytes fetched by write faults
  uint64_t invalidations_received = 0;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t barriers = 0;
  uint64_t lock_acquires = 0;
  uint64_t prefetches = 0;
  uint64_t prefetch_bytes = 0;
  uint64_t work_units = 0;  // app-reported deterministic compute units
  // Requests that queued behind an in-service minipage (manager host only).
  uint64_t competing_requests = 0;

  HostCounters& operator+=(const HostCounters& o) {
    read_faults += o.read_faults;
    write_faults += o.write_faults;
    read_fault_bytes += o.read_fault_bytes;
    write_fault_bytes += o.write_fault_bytes;
    invalidations_received += o.invalidations_received;
    messages_sent += o.messages_sent;
    bytes_sent += o.bytes_sent;
    barriers += o.barriers;
    lock_acquires += o.lock_acquires;
    prefetches += o.prefetches;
    prefetch_bytes += o.prefetch_bytes;
    work_units += o.work_units;
    competing_requests += o.competing_requests;
    return *this;
  }

  HostCounters operator-(const HostCounters& o) const {
    HostCounters r = *this;
    r.read_faults -= o.read_faults;
    r.write_faults -= o.write_faults;
    r.read_fault_bytes -= o.read_fault_bytes;
    r.write_fault_bytes -= o.write_fault_bytes;
    r.invalidations_received -= o.invalidations_received;
    r.messages_sent -= o.messages_sent;
    r.bytes_sent -= o.bytes_sent;
    r.barriers -= o.barriers;
    r.lock_acquires -= o.lock_acquires;
    r.prefetches -= o.prefetches;
    r.prefetch_bytes -= o.prefetch_bytes;
    r.work_units -= o.work_units;
    r.competing_requests -= o.competing_requests;
    return r;
  }
};

// Counters kept per manager shard (one shard on host 0 when centralized,
// one per host when the directory is sharded).
struct ManagerCounters {
  uint64_t requests_served = 0;
  uint64_t competing_requests = 0;  // requests queued behind an in-flight one
  uint64_t invalidation_rounds = 0;
  uint64_t mpt_lookups = 0;
  // Translated requests handed off to another host's shard (only the MPT
  // host routes, so this is nonzero only on host 0, only when sharded).
  uint64_t remote_routed = 0;

  ManagerCounters& operator+=(const ManagerCounters& o) {
    requests_served += o.requests_served;
    competing_requests += o.competing_requests;
    invalidation_rounds += o.invalidation_rounds;
    mpt_lookups += o.mpt_lookups;
    remote_routed += o.remote_routed;
    return *this;
  }
};

// One closed epoch (barrier-to-barrier interval) for one host.
struct EpochRecord {
  uint32_t epoch = 0;
  uint32_t host = 0;
  HostCounters delta;
};

// Fixed-boundary latency histogram (nanoseconds). Cheap enough to update on
// the fault path.
class LatencyHistogram {
 public:
  LatencyHistogram();

  void Record(uint64_t ns);
  uint64_t count() const { return count_; }
  uint64_t sum_ns() const { return sum_ns_; }
  uint64_t min_ns() const { return count_ == 0 ? 0 : min_ns_; }
  uint64_t max_ns() const { return max_ns_; }
  double mean_ns() const { return count_ == 0 ? 0.0 : static_cast<double>(sum_ns_) / count_; }
  // Approximate quantile from bucket boundaries, q in [0,1].
  uint64_t QuantileNs(double q) const;

  void Merge(const LatencyHistogram& other);
  std::string ToString() const;

 private:
  static constexpr int kBuckets = 64;
  static uint64_t BucketUpperBound(int i);
  static int BucketFor(uint64_t ns);

  uint64_t buckets_[kBuckets];
  uint64_t count_ = 0;
  uint64_t sum_ns_ = 0;
  uint64_t min_ns_ = ~0ULL;
  uint64_t max_ns_ = 0;
};

// Simple descriptive statistics over a sample vector.
struct SampleStats {
  double mean = 0;
  double median = 0;
  double min = 0;
  double max = 0;
  double stddev = 0;

  static SampleStats FromSamples(std::vector<double> samples);
};

}  // namespace millipage

#endif  // SRC_COMMON_STATS_H_
