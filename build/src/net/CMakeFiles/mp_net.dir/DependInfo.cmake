
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/inproc_transport.cc" "src/net/CMakeFiles/mp_net.dir/inproc_transport.cc.o" "gcc" "src/net/CMakeFiles/mp_net.dir/inproc_transport.cc.o.d"
  "/root/repo/src/net/message.cc" "src/net/CMakeFiles/mp_net.dir/message.cc.o" "gcc" "src/net/CMakeFiles/mp_net.dir/message.cc.o.d"
  "/root/repo/src/net/socket_transport.cc" "src/net/CMakeFiles/mp_net.dir/socket_transport.cc.o" "gcc" "src/net/CMakeFiles/mp_net.dir/socket_transport.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
