// Parameterized property sweeps over the DSM: data integrity under random
// cross-host access patterns for many (hosts, views, allocation-size,
// chunking, layout) combinations. Each sweep validates the end state against
// a serially computed reference, so any lost update, stale copy, or
// mis-routed minipage shows up as a value mismatch.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "src/common/rng.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

struct SweepParam {
  uint16_t hosts;
  uint32_t views;
  uint32_t alloc_bytes;  // size of each shared allocation
  uint32_t chunking;
  bool page_based;
};

std::string ParamName(const ::testing::TestParamInfo<SweepParam>& info) {
  const SweepParam& p = info.param;
  std::string s = "h" + std::to_string(p.hosts) + "_v" + std::to_string(p.views) + "_a" +
                  std::to_string(p.alloc_bytes) + "_c" + std::to_string(p.chunking);
  if (p.page_based) {
    s += "_pagebased";
  }
  return s;
}

class DsmSweep : public ::testing::TestWithParam<SweepParam> {};

// Ownership-rotation integrity: an array of shared cells is updated by a
// rotating owner per round; every round every host verifies every cell.
TEST_P(DsmSweep, RotatingOwnershipIntegrity) {
  const SweepParam& p = GetParam();
  DsmConfig cfg;
  cfg.num_hosts = p.hosts;
  cfg.object_size = 4 << 20;
  cfg.num_views = p.views;
  cfg.chunking_level = p.chunking;
  cfg.page_based = p.page_based;
  // MILLIPAGE_FAULT_BACKEND=uffd re-runs the sweep grid with the views wired
  // to the userfaultfd backend (the CI backend matrix sets it).
  cfg.fault_backend = FaultBackendFromEnv();
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();

  constexpr int kCells = 12;
  constexpr int kRounds = 6;
  std::vector<GlobalPtr<uint32_t>> cells;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < kCells; ++i) {
      cells.push_back(SharedAlloc<uint32_t>(p.alloc_bytes / sizeof(uint32_t)));
      cells.back()[0] = 0;
      // Also stamp the last word, to catch partial minipage transfers.
      cells.back()[p.alloc_bytes / sizeof(uint32_t) - 1] = 1000;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < kCells; ++i) {
        if ((i + r) % node.num_hosts() == host) {
          cells[i][0] = cells[i][0] + (i + 1);
          const uint32_t last = p.alloc_bytes / sizeof(uint32_t) - 1;
          cells[i][last] = cells[i][last] + 1;
        }
      }
      node.Barrier();
      for (int i = 0; i < kCells; ++i) {
        EXPECT_EQ(cells[i][0], static_cast<uint32_t>((i + 1) * (r + 1)))
            << "cell " << i << " round " << r << " host " << host;
      }
      node.Barrier();
    }
  });
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < kCells; ++i) {
      const uint32_t last = p.alloc_bytes / sizeof(uint32_t) - 1;
      EXPECT_EQ(cells[i][last], 1000u + kRounds);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    Grid, DsmSweep,
    ::testing::Values(SweepParam{1, 4, 64, 1, false},    //
                      SweepParam{2, 4, 64, 1, false},    //
                      SweepParam{2, 16, 16, 1, false},   //
                      SweepParam{3, 8, 256, 1, false},   //
                      SweepParam{4, 8, 64, 1, false},    //
                      SweepParam{4, 8, 64, 3, false},    //
                      SweepParam{4, 8, 4096, 1, false},  // full-page minipages
                      SweepParam{4, 8, 8192, 1, false},  // multi-page minipages
                      SweepParam{2, 8, 64, 1, true},     // Ivy baseline
                      SweepParam{4, 8, 64, 1, true},     //
                      SweepParam{6, 32, 96, 2, false},   //
                      SweepParam{8, 8, 64, 1, false}),
    ParamName);

// Randomized reader/writer soup validated against a serial replay. The
// schedule is deterministic per seed; hosts touch disjoint cells per round
// (SC needs no tie-breaking), readers roam freely.
class RandomSoup : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSoup, MatchesSerialReplay) {
  const uint64_t seed = GetParam();
  DsmConfig cfg;
  cfg.num_hosts = 4;
  cfg.object_size = 2 << 20;
  cfg.num_views = 8;
  cfg.fault_backend = FaultBackendFromEnv();
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());

  constexpr int kCells = 32;
  constexpr int kRounds = 12;
  std::vector<GlobalPtr<int>> cells;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < kCells; ++i) {
      cells.push_back(SharedAlloc<int>(1));
      *cells.back() = 0;
    }
  });
  // Precompute the schedule: per round, a random permutation chunk per host.
  // writes[r][h] = list of (cell, delta).
  std::vector<std::vector<std::vector<std::pair<int, int>>>> writes(kRounds);
  std::vector<int> expected(kCells, 0);
  Rng rng(seed);
  for (int r = 0; r < kRounds; ++r) {
    writes[r].resize(4);
    std::vector<int> perm(kCells);
    for (int i = 0; i < kCells; ++i) {
      perm[i] = i;
    }
    for (int i = kCells - 1; i > 0; --i) {
      std::swap(perm[i], perm[rng.Below(static_cast<uint64_t>(i + 1))]);
    }
    for (int h = 0; h < 4; ++h) {
      for (int k = 0; k < kCells / 4; ++k) {
        const int cell = perm[h * (kCells / 4) + k];
        const int delta = static_cast<int>(rng.Range(-5, 5));
        writes[r][h].push_back({cell, delta});
        expected[cell] += delta;
      }
    }
  }
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    Rng reader_rng(seed ^ (0xabc000 + host));
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      for (const auto& [cell, delta] : writes[r][host]) {
        *cells[cell] = *cells[cell] + delta;
      }
      // Random reads from cells this host does not own this round exercise
      // concurrent read/write traffic (values are racy; only liveness and
      // crash-freedom are asserted here).
      for (int k = 0; k < 8; ++k) {
        volatile int v = *cells[reader_rng.Below(kCells)];
        (void)v;
      }
      node.Barrier();
    }
  });
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < kCells; ++i) {
      EXPECT_EQ(*cells[i], expected[i]) << "cell " << i << " seed " << seed;
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSoup, ::testing::Values(1, 7, 42, 1234, 99999));

// Lock-protected random increments: full serializability expected.
class LockedSoup : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LockedSoup, TotalsAddUp) {
  const uint64_t seed = GetParam();
  DsmConfig cfg;
  cfg.num_hosts = 3;
  cfg.object_size = 1 << 20;
  cfg.fault_backend = FaultBackendFromEnv();
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  constexpr int kCells = 8;
  constexpr int kOpsPerHost = 60;
  std::vector<GlobalPtr<long>> cells;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < kCells; ++i) {
      cells.push_back(SharedAlloc<long>(1));
      *cells.back() = 0;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    Rng rng(seed * 31 + host);
    for (int op = 0; op < kOpsPerHost; ++op) {
      const uint32_t cell = static_cast<uint32_t>(rng.Below(kCells));
      node.Lock(cell);
      *cells[cell] = *cells[cell] + 1;
      node.Unlock(cell);
    }
    node.Barrier();
  });
  (*cluster)->RunOnManager([&](DsmNode&) {
    long total = 0;
    for (int i = 0; i < kCells; ++i) {
      total += *cells[i];
    }
    EXPECT_EQ(total, 3L * kOpsPerHost);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, LockedSoup, ::testing::Values(3, 17, 2026));

// Many small allocations across many views: every byte written through one
// host is read back intact by another.
TEST(DsmSweepExtra, ManySmallAllocationsRoundTrip) {
  DsmConfig cfg;
  cfg.num_hosts = 2;
  cfg.object_size = 8 << 20;
  cfg.num_views = 32;
  cfg.fault_backend = FaultBackendFromEnv();
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  constexpr int kAllocs = 300;
  std::vector<GlobalPtr<uint8_t>> blobs;
  std::vector<uint32_t> sizes;
  (*cluster)->RunOnManager([&](DsmNode&) {
    Rng rng(555);
    for (int i = 0; i < kAllocs; ++i) {
      const uint32_t size = 8 + static_cast<uint32_t>(rng.Below(300));
      sizes.push_back(size);
      blobs.push_back(SharedAlloc<uint8_t>(size));
      uint8_t* p = blobs.back().get();
      for (uint32_t b = 0; b < size; ++b) {
        p[b] = static_cast<uint8_t>((i * 131 + b) & 0xff);
      }
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      for (int i = 0; i < kAllocs; ++i) {
        const uint8_t* p = blobs[static_cast<size_t>(i)].get();
        for (uint32_t b = 0; b < sizes[static_cast<size_t>(i)]; ++b) {
          ASSERT_EQ(p[b], static_cast<uint8_t>((i * 131 + b) & 0xff))
              << "blob " << i << " byte " << b;
        }
      }
    }
    node.Barrier();
  });
}

TEST(DsmSweepExtra, ConfigValidation) {
  DsmConfig cfg;
  cfg.num_hosts = static_cast<uint16_t>(kMaxHosts + 1);  // 10-bit wire-host-id limit
  InProcTransport t(kMaxHosts + 1);
  EXPECT_FALSE(DsmNode::Create(cfg, 0, &t).ok());
  cfg.num_hosts = 0;
  EXPECT_FALSE(DsmNode::Create(cfg, 0, &t).ok());
  cfg.num_hosts = 2;
  EXPECT_FALSE(DsmNode::Create(cfg, 7, &t).ok());  // id out of range
}

TEST(DsmSweepExtra, MultipleAppThreadsPerHost) {
  // The paper supports SMP hosts: several application threads on one host
  // share its views and fault independently (distinct wait slots).
  DsmConfig cfg;
  cfg.num_hosts = 2;
  cfg.object_size = 1 << 20;
  cfg.fault_backend = FaultBackendFromEnv();
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_TRUE(cluster.ok());
  GlobalPtr<int> a;
  GlobalPtr<int> b;
  (*cluster)->RunOnManager([&](DsmNode&) {
    a = SharedAlloc<int>(1);
    b = SharedAlloc<int>(1);
    *a = 0;
    *b = 0;
  });
  // Two extra threads on host 1, each hammering its own minipage.
  DsmNode& node1 = (*cluster)->node(1);
  std::thread t1([&] {
    SetCurrentNode(&node1);
    for (int i = 0; i < 50; ++i) {
      node1.Lock(1);
      *a = *a + 1;
      node1.Unlock(1);
    }
    SetCurrentNode(nullptr);
  });
  std::thread t2([&] {
    SetCurrentNode(&node1);
    for (int i = 0; i < 50; ++i) {
      node1.Lock(2);
      *b = *b + 1;
      node1.Unlock(2);
    }
    SetCurrentNode(nullptr);
  });
  t1.join();
  t2.join();
  (*cluster)->RunOnManager([&](DsmNode&) {
    EXPECT_EQ(*a, 50);
    EXPECT_EQ(*b, 50);
  });
}

}  // namespace
}  // namespace millipage
