
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/app.cc" "src/apps/CMakeFiles/mp_apps.dir/app.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/app.cc.o.d"
  "/root/repo/src/apps/is.cc" "src/apps/CMakeFiles/mp_apps.dir/is.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/is.cc.o.d"
  "/root/repo/src/apps/lu.cc" "src/apps/CMakeFiles/mp_apps.dir/lu.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/lu.cc.o.d"
  "/root/repo/src/apps/sor.cc" "src/apps/CMakeFiles/mp_apps.dir/sor.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/sor.cc.o.d"
  "/root/repo/src/apps/tsp.cc" "src/apps/CMakeFiles/mp_apps.dir/tsp.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/tsp.cc.o.d"
  "/root/repo/src/apps/water.cc" "src/apps/CMakeFiles/mp_apps.dir/water.cc.o" "gcc" "src/apps/CMakeFiles/mp_apps.dir/water.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsm/CMakeFiles/mp_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/multiview/CMakeFiles/mp_multiview.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
