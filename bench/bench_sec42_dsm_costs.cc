// Section 4.2 reproduction: end-to-end DSM operation costs measured on the
// live protocol — read/write fault service for 128 B and 4 KB minipages,
// write faults vs number of read copies to invalidate, barrier cost vs host
// count, lock+unlock, and the run-length diff cost the thin-layer design
// avoids (250 us per 4 KB page on the paper's hardware, linear in size).

#include <cstdio>
#include <cstring>
#include <vector>

#include "bench/bench_util.h"
#include "src/diff/diff.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

DsmConfig Cfg(uint16_t hosts) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 4 << 20;
  cfg.num_views = 8;
  return cfg;
}

// Ping-pong: host 0 writes (invalidating host 1's copy), host 1 re-reads.
// Host 1's read-fault latency histogram gives the service time.
void MeasureFaults(BenchReporter& reporter, int rounds, size_t minipage_bytes,
                   const char* paper_read, const char* paper_write) {
  auto cluster = DsmCluster::Create(Cfg(2));
  MP_CHECK(cluster.ok());
  GlobalPtr<char> p;
  (*cluster)->RunOnManager([&](DsmNode& node) {
    auto a = node.SharedMalloc(minipage_bytes);
    MP_CHECK(a.ok());
    p = GlobalPtr<char>(*a);
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    for (int r = 0; r < rounds; ++r) {
      if (host == 0) {
        p[0] = static_cast<char>(r);  // write fault (invalidates reader)
      }
      node.Barrier();
      if (host == 1) {
        volatile char c = p[0];  // read fault (fetches the minipage)
        (void)c;
      }
      node.Barrier();
    }
  });
  const HistogramSnapshot rd = (*cluster)->node(1).read_fault_latency();
  const HistogramSnapshot wr = (*cluster)->node(0).write_fault_latency();
  char label[96];
  std::snprintf(label, sizeof(label), "read fault, %zu-byte minipage", minipage_bytes);
  PrintRow(label, rd.mean() / 1000.0, paper_read);
  reporter.AddUs(label, "minipage_bytes=" + std::to_string(minipage_bytes), rd.mean() / 1000.0,
                 rd.count);
  std::snprintf(label, sizeof(label), "write fault, %zu-byte minipage (1 reader)",
                minipage_bytes);
  PrintRow(label, wr.mean() / 1000.0, paper_write);
  reporter.AddUs(label, "minipage_bytes=" + std::to_string(minipage_bytes), wr.mean() / 1000.0,
                 wr.count);
  if (minipage_bytes == 4096) {
    // One representative cluster-wide snapshot in the JSON: the full metric
    // surface as EXPERIMENTS.md documents it.
    reporter.AttachMetrics((*cluster)->SnapshotMetrics());
  }
}

// Write-fault cost as a function of the number of read copies invalidated.
void MeasureInvalidationScaling(BenchReporter& reporter, int rounds,
                                const std::vector<uint16_t>& host_counts) {
  for (uint16_t hosts : host_counts) {
    auto cluster = DsmCluster::Create(Cfg(hosts));
    MP_CHECK(cluster.ok());
    GlobalPtr<int> p;
    (*cluster)->RunOnManager([&](DsmNode& node) {
      (void)node;
      p = SharedAlloc<int>(32);
    });
    (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
      for (int r = 0; r < rounds; ++r) {
        volatile int v = p[0];  // every host takes a read copy
        (void)v;
        node.Barrier();
        if (host == 1 % node.num_hosts()) {
          p[0] = r;  // invalidates hosts-1 read copies
        }
        node.Barrier();
      }
    });
    const HistogramSnapshot wr = (*cluster)->node(1 % hosts).write_fault_latency();
    char label[96];
    std::snprintf(label, sizeof(label), "write fault invalidating %u read copies", hosts - 1);
    PrintRow(label, wr.mean() / 1000.0, "212-366 (more copies = slower)");
    reporter.AddUs(label, "hosts=" + std::to_string(hosts), wr.mean() / 1000.0, wr.count);
  }
}

void MeasureBarriers(BenchReporter& reporter, int rounds,
                     const std::vector<uint16_t>& host_counts) {
  for (uint16_t hosts : host_counts) {
    auto cluster = DsmCluster::Create(Cfg(hosts));
    MP_CHECK(cluster.ok());
    std::vector<double> per_host_us(hosts, 0);
    (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
      node.Barrier();  // align
      const uint64_t t0 = MonotonicNowNs();
      for (int r = 0; r < rounds; ++r) {
        node.Barrier();
      }
      per_host_us[host] = static_cast<double>(MonotonicNowNs() - t0) / 1000.0 / rounds;
    });
    char label[64];
    std::snprintf(label, sizeof(label), "barrier, %u hosts", hosts);
    PrintRow(label, per_host_us[0], "59-153 (linear in hosts)");
    reporter.AddUs(label, "hosts=" + std::to_string(hosts), per_host_us[0],
                   static_cast<uint64_t>(rounds));
  }
}

void MeasureLocks(BenchReporter& reporter, int iters) {
  auto cluster = DsmCluster::Create(Cfg(2));
  MP_CHECK(cluster.ok());
  double us = 0;
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    if (host == 1) {
      us = MeasureUs(
          [&] {
            node.Lock(1);
            node.Unlock(1);
          },
          iters);
    }
    node.Barrier();
  });
  PrintRow("lock + unlock (uncontended, remote manager)", us, "67-80");
  reporter.AddUs("lock + unlock (uncontended, remote manager)", "", us,
                 static_cast<uint64_t>(iters));
}

void MeasureDiffs(BenchReporter& reporter, int iters) {
  for (size_t bytes : {1024UL, 4096UL, 16384UL}) {
    std::vector<char> page(bytes);
    for (size_t i = 0; i < bytes; ++i) {
      page[i] = static_cast<char>(i * 13);
    }
    Twin twin(page.data(), bytes);
    // Dirty ~25% of the page in scattered words (typical write pattern).
    for (size_t i = 0; i < bytes; i += 16) {
      page[i] = static_cast<char>(page[i] + 1);
    }
    const double create_us =
        MeasureUs([&] { (void)CreateDiff(twin, page.data(), bytes); }, iters);
    char label[64];
    std::snprintf(label, sizeof(label), "run-length diff creation, %zu-byte page", bytes);
    PrintRow(label, create_us, bytes == 4096 ? "250 (linear in size)" : "linear in size");
    reporter.AddUs(label, "bytes=" + std::to_string(bytes), create_us,
                   static_cast<uint64_t>(iters));
  }
  PrintNote("the thin-layer protocol never pays this cost: no twins, no diffs.");
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_sec42_dsm_costs", env);
  PrintHeader("Section 4.2: DSM operation costs (live protocol)");
  const int fault_rounds = env.Scaled(300, 20);
  MeasureFaults(reporter, fault_rounds, 128, "204", "212-366");
  MeasureFaults(reporter, fault_rounds, 4096, "314", "327-480");
  const std::vector<uint16_t> inval_hosts =
      env.smoke() ? std::vector<uint16_t>{2, 4} : std::vector<uint16_t>{2, 4, 8};
  MeasureInvalidationScaling(reporter, env.Scaled(150, 10), inval_hosts);
  const std::vector<uint16_t> barrier_hosts =
      env.smoke() ? std::vector<uint16_t>{1, 2, 4} : std::vector<uint16_t>{1, 2, 4, 8};
  MeasureBarriers(reporter, env.Scaled(400, 30), barrier_hosts);
  MeasureLocks(reporter, env.Scaled(500, 50));
  MeasureDiffs(reporter, env.Scaled(2000, 100));
  PrintNote("paper values include Myrinet latency + the NT timer/polling delay; shapes to");
  PrintNote("check: 4 KB faults cost more than 128 B; write cost grows with copyset size;");
  PrintNote("barriers grow linearly with hosts; diff cost grows linearly with page size.");
  return reporter.Finish();
}
