// HostSet property and unit tests: the scalable copyset/membership set that
// replaced the fixed uint64_t host masks. The inline (≤64-host) fast path,
// the spill bitmap, and the ascending iteration/selection order PickReplica
// rotation depends on are all pinned here, against a std::set reference
// model and with deterministic pseudo-random operation streams.

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "src/common/host_set.h"
#include "src/common/rng.h"
#include "src/dsm/directory.h"
#include "src/dsm/node.h"
#include "src/net/inproc_transport.h"

namespace millipage {
namespace {

std::vector<uint32_t> Members(const HostSet& s) {
  std::vector<uint32_t> v;
  s.ForEach([&](uint32_t h) { v.push_back(h); });
  return v;
}

// Insert/erase/contains round-trips against a std::set reference, across the
// inline word, the spill boundary, and the full id range.
TEST(HostSet, RandomOpsMatchReferenceModel) {
  for (const uint32_t universe : {5u, 64u, 65u, 100u, 1000u, kMaxHosts}) {
    Rng rng(0x5e7 + universe);
    HostSet s;
    std::set<uint32_t> ref;
    for (int op = 0; op < 4000; ++op) {
      const uint32_t h = static_cast<uint32_t>(rng.Below(universe));
      switch (rng.Below(3)) {
        case 0:
          s.Add(h);
          ref.insert(h);
          break;
        case 1:
          s.Remove(h);
          ref.erase(h);
          break;
        default:
          ASSERT_EQ(s.Contains(h), ref.count(h) != 0)
              << "universe " << universe << " host " << h;
          break;
      }
    }
    EXPECT_EQ(s.Count(), static_cast<int>(ref.size())) << "universe " << universe;
    EXPECT_EQ(s.Empty(), ref.empty());
    // Iteration is ascending and complete.
    const std::vector<uint32_t> got = Members(s);
    const std::vector<uint32_t> want(ref.begin(), ref.end());
    EXPECT_EQ(got, want) << "universe " << universe;
    // SelectNth agrees with iteration order.
    for (int n = 0; n < s.Count(); ++n) {
      EXPECT_EQ(s.SelectNth(n), want[static_cast<size_t>(n)]);
    }
    // First() is the minimum.
    EXPECT_EQ(s.First(), ref.empty() ? -1 : static_cast<int>(*ref.begin()));
  }
}

TEST(HostSet, SetAlgebraMatchesReferenceModel) {
  Rng rng(42);
  for (int round = 0; round < 200; ++round) {
    HostSet a, b;
    std::set<uint32_t> ra, rb;
    // Mixed small/large ids so one side may spill while the other stays
    // inline — the absent-spill-words-are-zero case.
    const uint32_t limit_a = round % 2 == 0 ? 64 : kMaxHosts;
    const uint32_t limit_b = round % 3 == 0 ? 64 : kMaxHosts;
    for (int i = 0; i < 40; ++i) {
      uint32_t h = static_cast<uint32_t>(rng.Below(limit_a));
      a.Add(h);
      ra.insert(h);
      h = static_cast<uint32_t>(rng.Below(limit_b));
      b.Add(h);
      rb.insert(h);
    }
    HostSet u = a;
    u.UnionWith(b);
    HostSet i = a;
    i.IntersectWith(b);
    HostSet d = a;
    d.SubtractAll(b);
    std::set<uint32_t> ru = ra, ri, rd = ra;
    ru.insert(rb.begin(), rb.end());
    for (uint32_t h : ra) {
      if (rb.count(h)) {
        ri.insert(h);
      }
    }
    for (uint32_t h : rb) {
      rd.erase(h);
    }
    EXPECT_EQ(Members(u), std::vector<uint32_t>(ru.begin(), ru.end()));
    EXPECT_EQ(Members(i), std::vector<uint32_t>(ri.begin(), ri.end()));
    EXPECT_EQ(Members(d), std::vector<uint32_t>(rd.begin(), rd.end()));
    EXPECT_EQ(a.Intersects(b), !ri.empty());
    EXPECT_EQ(a.ContainsAll(i), true);
    EXPECT_EQ(u.ContainsAll(a) && u.ContainsAll(b), true);
    EXPECT_EQ(a.ContainsAll(u), Members(u) == Members(a));
  }
}

// Sets that grew past 64 and shrank back must equal sets that never spilled:
// trailing zero spill words are not part of the value.
TEST(HostSet, InlineAndSpilledRepresentationsCompareEqual) {
  HostSet spilled;
  spilled.Add(3);
  spilled.Add(900);
  spilled.Remove(900);
  HostSet inline_only;
  inline_only.Add(3);
  EXPECT_EQ(spilled, inline_only);
  EXPECT_EQ(inline_only, spilled);
  EXPECT_TRUE(spilled.ContainsAll(inline_only));
  EXPECT_TRUE(inline_only.ContainsAll(spilled));
  EXPECT_EQ(spilled.Count(), 1);
  spilled.Clear();
  EXPECT_EQ(spilled, HostSet());
  EXPECT_TRUE(spilled.Empty());
}

TEST(HostSet, AllBelowAndFromWord) {
  for (const uint32_t n : {0u, 1u, 5u, 63u, 64u, 65u, 100u, 128u, 1000u, kMaxHosts}) {
    const HostSet s = HostSet::AllBelow(n);
    EXPECT_EQ(s.Count(), static_cast<int>(n));
    if (n > 0) {
      EXPECT_TRUE(s.Contains(0));
      EXPECT_TRUE(s.Contains(n - 1));
    }
    if (n < kMaxHosts) {
      EXPECT_FALSE(s.Contains(n));
    }
  }
  EXPECT_EQ(HostSet::FromWord(0b1011).LowWord(), 0b1011u);
  EXPECT_EQ(HostSet::FromWord(0b1011), [] {
    HostSet s;
    s.Add(0);
    s.Add(1);
    s.Add(3);
    return s;
  }());
  EXPECT_EQ(HostSet::Single(700).First(), 700);
  EXPECT_EQ(HostSet::Single(700).Count(), 1);
}

// PickReplica rotation fairness: with a hint that rotates, every copyset
// member (minus the avoided host) is picked, and picks are near-uniform —
// the re-route-until-stable-copy loop relies on full coverage.
TEST(HostSet, PickReplicaRotatesFairlyAcrossThousandHosts) {
  DirEntry e;
  constexpr uint32_t kHosts = 1000;
  for (uint32_t h = 0; h < kHosts; ++h) {
    e.AddCopy(static_cast<HostId>(h));
  }
  const HostId avoid = 123;
  std::vector<uint32_t> picks(kHosts, 0);
  for (uint32_t hint = 0; hint < 3 * kHosts; ++hint) {
    picks[e.PickReplica(avoid, hint)]++;
  }
  EXPECT_EQ(picks[avoid], 0u) << "avoided host was picked";
  for (uint32_t h = 0; h < kHosts; ++h) {
    if (h == avoid) {
      continue;
    }
    // 3 * kHosts rotating hints over (kHosts - 1) candidates: each member is
    // hit 3 or 4 times.
    EXPECT_GE(picks[h], 3u) << "host " << h << " never picked (rotation hole)";
    EXPECT_LE(picks[h], 4u) << "host " << h << " over-picked";
  }
  // When the only member is the avoided host, it is still returned.
  DirEntry sole;
  sole.AddCopy(avoid);
  EXPECT_EQ(sole.PickReplica(avoid, 7), avoid);
}

TEST(HostSetDeathTest, CorruptIdsFailLoudly) {
  HostSet s;
  EXPECT_DEATH(s.Add(kMaxHosts), "out of range");
  EXPECT_DEATH(s.Add(0xffffu), "out of range");
  EXPECT_DEATH((void)s.Contains(kMaxHosts), "out of range");
  EXPECT_DEATH(s.Remove(kMaxHosts + 5), "out of range");
  EXPECT_DEATH((void)HostSet::AllBelow(kMaxHosts + 1), "above kMaxHosts");
}

// Node construction accepts any size up to kMaxHosts and rejects beyond —
// the old num_hosts > 64 ceiling is gone.
TEST(HostSet, NodeCreateHonorsMaxHosts) {
  DsmConfig cfg;
  cfg.object_size = 1 << 20;
  cfg.num_views = 1;
  cfg.num_hosts = 128;  // above the old 64-host ceiling
  {
    InProcTransport t(128);
    auto node = DsmNode::Create(cfg, 5, &t);
    EXPECT_TRUE(node.ok()) << node.status().ToString();
    if (node.ok()) {
      (*node)->BeginShutdown();
      (*node)->Stop();
    }
  }
  InProcTransport t1(2);
  cfg.num_hosts = static_cast<uint16_t>(kMaxHosts + 1);
  EXPECT_FALSE(DsmNode::Create(cfg, 0, &t1).ok());
  cfg.num_hosts = 0;
  EXPECT_FALSE(DsmNode::Create(cfg, 0, &t1).ok());
}

}  // namespace
}  // namespace millipage
