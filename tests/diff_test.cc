// Unit + property tests for the twin/run-length-diff machinery.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "src/common/rng.h"
#include "src/diff/diff.h"

namespace millipage {
namespace {

TEST(DiffTest, EmptyWhenUnchanged) {
  std::vector<char> page(4096, 'x');
  Twin twin(page.data(), page.size());
  Diff d = CreateDiff(twin, page.data(), page.size());
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(DiffRunCount(d), 0u);
}

TEST(DiffTest, SingleRun) {
  std::vector<char> page(4096, 'x');
  Twin twin(page.data(), page.size());
  std::memcpy(page.data() + 100, "hello", 5);
  Diff d = CreateDiff(twin, page.data(), page.size());
  EXPECT_EQ(DiffRunCount(d), 1u);
  // 8 bytes header + 5 payload.
  EXPECT_EQ(d.size_bytes(), 13u);
}

TEST(DiffTest, ApplyReconstructs) {
  std::vector<char> before(4096);
  for (size_t i = 0; i < before.size(); ++i) {
    before[i] = static_cast<char>(i % 251);
  }
  std::vector<char> after = before;
  after[0] = 'A';
  after[999] = 'B';
  std::memset(after.data() + 2000, 'C', 300);
  after[4095] = 'D';

  Twin twin(before.data(), before.size());
  Diff d = CreateDiff(twin, after.data(), after.size());
  std::vector<char> target = before;  // remote pristine copy
  ASSERT_TRUE(ApplyDiff(d, target.data(), target.size()).ok());
  EXPECT_EQ(target, after);
}

TEST(DiffTest, MergeGapCoalescesNearbyRuns) {
  std::vector<char> page(256, 0);
  Twin twin(page.data(), page.size());
  page[10] = 1;
  page[12] = 1;  // gap of 1 unchanged byte
  Diff merged = CreateDiff(twin, page.data(), page.size(), /*merge_gap=*/4);
  EXPECT_EQ(DiffRunCount(merged), 1u);
  Diff split = CreateDiff(twin, page.data(), page.size(), /*merge_gap=*/1);
  EXPECT_EQ(DiffRunCount(split), 2u);
  // Both decode to the same content.
  std::vector<char> t1(256, 0);
  std::vector<char> t2(256, 0);
  ASSERT_TRUE(ApplyDiff(merged, t1.data(), t1.size()).ok());
  ASSERT_TRUE(ApplyDiff(split, t2.data(), t2.size()).ok());
  EXPECT_EQ(t1, t2);
}

TEST(DiffTest, RejectsMalformedInput) {
  std::vector<char> target(64, 0);
  Diff truncated;
  truncated.encoded.resize(5);  // not even a header
  EXPECT_FALSE(ApplyDiff(truncated, target.data(), target.size()).ok());

  Diff out_of_range;
  const uint32_t offset = 60;
  const uint32_t len = 10;  // 60 + 10 > 64
  out_of_range.encoded.resize(8 + len);
  std::memcpy(out_of_range.encoded.data(), &offset, 4);
  std::memcpy(out_of_range.encoded.data() + 4, &len, 4);
  EXPECT_FALSE(ApplyDiff(out_of_range, target.data(), target.size()).ok());

  Diff zero_len;
  const uint32_t zero = 0;
  zero_len.encoded.resize(8);
  std::memcpy(zero_len.encoded.data(), &offset, 4);
  std::memcpy(zero_len.encoded.data() + 4, &zero, 4);
  EXPECT_FALSE(ApplyDiff(zero_len, target.data(), target.size()).ok());
}

// Property test: random mutations always round-trip, across densities.
class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RandomMutationsRoundTrip) {
  const int mutation_permille = GetParam();
  Rng rng(0xd1ff ^ static_cast<uint64_t>(mutation_permille));
  for (int trial = 0; trial < 20; ++trial) {
    const size_t len = 512 + rng.Below(4096);
    std::vector<char> before(len);
    for (auto& c : before) {
      c = static_cast<char>(rng.Next());
    }
    std::vector<char> after = before;
    for (size_t i = 0; i < len; ++i) {
      if (rng.Below(1000) < static_cast<uint64_t>(mutation_permille)) {
        after[i] = static_cast<char>(rng.Next());
      }
    }
    Twin twin(before.data(), len);
    Diff d = CreateDiff(twin, after.data(), len);
    std::vector<char> target = before;
    ASSERT_TRUE(ApplyDiff(d, target.data(), len).ok());
    EXPECT_EQ(target, after) << "len=" << len << " permille=" << mutation_permille;
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, DiffProperty,
                         ::testing::Values(0, 5, 50, 200, 500, 1000));

}  // namespace
}  // namespace millipage
