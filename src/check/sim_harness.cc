#include "src/check/sim_harness.h"

#include <unistd.h>

#include <algorithm>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/dsm/node.h"
#include "src/net/sim_transport.h"
#include "src/os/fault_handler.h"
#include "src/os/protection.h"

namespace millipage {

namespace {

class SimRun {
 public:
  SimRun(uint64_t seed, const SimWorkload& w, std::vector<std::vector<SimOp>> script)
      : seed_(seed), workload_(w), script_(std::move(script)) {}

  SimResult Run();

 private:
  struct Worker {
    enum class State { kStartup, kIdle, kRunning, kDone, kFailed };

    std::thread thread;
    uint32_t next_op = 0;  // worker-thread only

    std::mutex mu;
    std::condition_variable cv;
    State state = State::kStartup;
    bool launch = false;
    bool exit_now = false;
    uint32_t slot = 0;  // wait slot, fixed once state leaves kStartup
    Status failure;
  };

  struct Region {
    uintptr_t base = 0;
    size_t len = 0;
    DsmNode* node = nullptr;
    uint32_t view = 0;
  };

  static bool FaultTrampoline(void* ctx, void* addr, bool is_write) {
    return static_cast<SimRun*>(ctx)->DispatchFault(addr, is_write);
  }

  bool DispatchFault(void* addr, bool is_write) {
    const auto a = reinterpret_cast<uintptr_t>(addr);
    for (const Region& r : regions_) {
      if (a >= r.base && a < r.base + r.len) {
        return r.node->OnFault(r.view, a - r.base, is_write);
      }
    }
    return false;  // not ours: fall through to the default handler
  }

  Status Setup();
  void WorkerMain(uint16_t h);
  bool ExecuteOp(uint16_t h, const SimOp& op, Status* failure);
  // Performs the cell access, pre-faulting through FaultService when host
  // death is enabled so a lost minipage surfaces as a skipped op instead of
  // an unservable SIGSEGV. Returns false (with *failure set) on a protocol
  // error other than loss.
  bool AccessCell(uint16_t h, uint32_t cell, bool is_write, Status* failure);
  // Blocks until worker h is in a stable state: idle/done/failed, or running
  // but provably parked in a wait slot. Returns the observed state.
  Worker::State AwaitStable(uint16_t h);
  void Teardown();

  const uint64_t seed_;
  const SimWorkload workload_;
  const std::vector<std::vector<SimOp>> script_;

  TraceSink trace_;
  std::unique_ptr<SimNet> net_;
  std::vector<std::unique_ptr<DsmNode>> nodes_;
  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<Region> regions_;
  int fault_slot_ = -1;
  bool uffd_mode_ = false;  // views actually bound to the uffd backend

  // Written by the host-0 worker during kAlloc, read by every worker after
  // the first barrier (the barrier's semaphores order the accesses).
  std::vector<GlobalAddr> cell_addr_;
  std::vector<uint64_t> write_seq_;  // per host, worker-thread only
};

Status SimRun::Setup() {
  MP_CHECK(script_.size() == workload_.hosts) << "one script per host required";
  DsmConfig config;
  config.num_hosts = workload_.hosts;
  config.object_size = 1 << 20;
  config.num_views = std::max<uint32_t>(8, workload_.cells);
  // Wall-clock deadlines are the one nondeterministic input the harness
  // cannot schedule; disable them. Deadlocks are caught by the driver
  // instead (no deliverable message, every worker parked).
  config.request_timeout_ms = 0;
  config.sync_timeout_ms = 0;
  config.trace = &trace_;
  config.manager_policy = workload_.policy;
  config.batch_coherence = workload_.batch_coherence;
  config.fault_backend = workload_.backend;

  // Install the backend before any node exists: each ViewSet binds to the
  // backend active at creation (with runtime fallback to sigsegv).
  MP_RETURN_IF_ERROR(FaultHandler::Instance().Install(config.fault_backend));

  net_ = std::make_unique<SimNet>(workload_.hosts, seed_);
  nodes_.reserve(workload_.hosts);
  for (uint16_t h = 0; h < workload_.hosts; ++h) {
    MP_ASSIGN_OR_RETURN(std::unique_ptr<DsmNode> node,
                        DsmNode::Create(config, h, net_->endpoint(h)));
    nodes_.push_back(std::move(node));
  }
  for (auto& node : nodes_) {
    ViewSet& vs = node->views();
    for (uint32_t v = 0; v < vs.num_app_views(); ++v) {
      regions_.push_back(Region{reinterpret_cast<uintptr_t>(vs.app_base(v)),
                                vs.object_size(), node.get(), v});
    }
  }
  uffd_mode_ = !nodes_.empty() &&
               nodes_[0]->views().fault_backend() == FaultBackend::kUserfaultfd;
  fault_slot_ = FaultHandler::Instance().Register(&FaultTrampoline, this);
  if (fault_slot_ < 0) {
    return Status::Exhausted("no free fault-handler slots");
  }

  cell_addr_.resize(workload_.cells);
  write_seq_.assign(workload_.hosts, 0);
  workers_.reserve(workload_.hosts);
  for (uint16_t h = 0; h < workload_.hosts; ++h) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (uint16_t h = 0; h < workload_.hosts; ++h) {
    workers_[h]->thread = std::thread([this, h] { WorkerMain(h); });
  }
  return Status::Ok();
}

void SimRun::WorkerMain(uint16_t h) {
  Worker& w = *workers_[h];
  const uint32_t slot = nodes_[h]->ThreadSlot();
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.slot = slot;
    w.state = script_[h].empty() ? Worker::State::kDone : Worker::State::kIdle;
    w.cv.notify_all();
  }
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(w.mu);
      w.cv.wait(lock, [&w] { return w.launch || w.exit_now; });
      if (w.exit_now) {
        return;
      }
      // The driver already moved state to kRunning when it issued the
      // launch, so it can never see a stale kIdle and double-launch.
      w.launch = false;
    }
    const SimOp& op = script_[h][w.next_op];
    Status failure;
    const bool ok = ExecuteOp(h, op, &failure);
    w.next_op++;
    std::lock_guard<std::mutex> lock(w.mu);
    if (!ok) {
      w.failure = failure;
      w.state = Worker::State::kFailed;
      w.cv.notify_all();
      return;
    }
    w.state = w.next_op == script_[h].size() ? Worker::State::kDone : Worker::State::kIdle;
    w.cv.notify_all();
    if (w.state == Worker::State::kDone) {
      return;
    }
  }
}

bool SimRun::ExecuteOp(uint16_t h, const SimOp& op, Status* failure) {
  DsmNode& node = *nodes_[h];
  switch (op.kind) {
    case SimOpKind::kAlloc:
      for (uint32_t c = 0; c < workload_.cells; ++c) {
        Result<GlobalAddr> a = node.SharedMalloc(sizeof(uint64_t));
        if (!a.ok()) {
          *failure = a.status();
          return false;
        }
        cell_addr_[c] = *a;
        // One minipage per cell: close the aggregation chunk between cells.
        node.CloseChunk();
      }
      return true;
    case SimOpKind::kBarrier:
      if (Status st = node.TryBarrier(); !st.ok()) {
        *failure = st;
        return false;
      }
      return true;
    case SimOpKind::kRead:
      return AccessCell(h, op.cell, /*is_write=*/false, failure);
    case SimOpKind::kWrite:
      return AccessCell(h, op.cell, /*is_write=*/true, failure);
    case SimOpKind::kLockedRmw:
      if (Status st = node.TryLock(op.cell); !st.ok()) {
        *failure = st;
        return false;
      }
      if (!AccessCell(h, op.cell, /*is_write=*/false, failure) ||
          !AccessCell(h, op.cell, /*is_write=*/true, failure)) {
        node.Unlock(op.cell);
        return false;
      }
      node.Unlock(op.cell);
      return true;
  }
  return true;
}

bool SimRun::AccessCell(uint16_t h, uint32_t cell, bool is_write, Status* failure) {
  const GlobalAddr a = cell_addr_[cell];
  DsmNode& node = *nodes_[h];
  if (workload_.kill_one_host || uffd_mode_) {
    // With host death in play a fault can end in "minipage lost" — an error
    // the SIGSEGV path cannot absorb (the access itself is unservable). Call
    // the fault service explicitly first: on loss, skip the op without
    // recording an application event, so the coherence oracle never sees a
    // read of vanished data.
    //
    // Under the uffd backend the pre-fault is a determinism requirement: a
    // worker blocked inside a kernel minor/WP fault never reaches a wait
    // slot, so the driver could not tell "parked" from "wedged", and the
    // poller thread would race the seeded scheduler. Pre-faulting keeps
    // every pte present before the access, so no uffd event ever fires.
    const Protection p =
        node.views().GetVpageProtection(a.view, a.offset / PageSize());
    const bool sufficient =
        is_write ? p == Protection::kReadWrite : p != Protection::kNoAccess;
    if (!sufficient) {
      const Status st = node.FaultService(a.view, a.offset, is_write);
      if (st.code() == StatusCode::kNotFound) {
        return true;  // the cell died with its host: per-cell skip
      }
      if (!st.ok()) {
        *failure = st;
        return false;
      }
    }
  }
  auto* p = reinterpret_cast<volatile uint64_t*>(node.AppPtr(a));
  if (is_write) {
    // Unique nonzero values (host tag + per-host sequence) make the
    // coherence oracle's "which write did this read observe" unambiguous.
    const uint64_t v = (static_cast<uint64_t>(h + 1) << 32) | ++write_seq_[h];
    *p = v;  // may fault into the protocol
    trace_.Emit(TraceEventKind::kAppWrite, h, ~0u, a.Pack(), v, cell);
  } else {
    const uint64_t v = *p;  // may fault into the protocol
    trace_.Emit(TraceEventKind::kAppRead, h, ~0u, a.Pack(), v, cell);
  }
  return true;
}

SimRun::Worker::State SimRun::AwaitStable(uint16_t h) {
  Worker& w = *workers_[h];
  for (;;) {
    Worker::State st;
    uint32_t slot;
    {
      std::lock_guard<std::mutex> lock(w.mu);
      st = w.state;
      slot = w.slot;
    }
    if (st != Worker::State::kRunning && st != Worker::State::kStartup) {
      return st;
    }
    if (st == Worker::State::kRunning && nodes_[h]->WaiterBlocked(slot)) {
      return Worker::State::kRunning;  // parked in a wait slot: stable
    }
    ::usleep(20);
  }
}

SimResult SimRun::Run() {
  SimResult res;
  if (Status st = Setup(); !st.ok()) {
    res.status = st;
    Teardown();
    return res;
  }
  // The driver's own choices (launch vs deliver, which host) draw from a
  // stream independent of the fabric's latency draws.
  Rng drv(seed_ * 0x9e3779b97f4a7c15ULL + 1);
  // Host-death injection: seeded victim and step, fired once the victim's
  // worker is between ops (a worker parked mid-op would be stranded on an
  // access that can never complete).
  const bool kill_enabled = workload_.kill_one_host && workload_.hosts > 1;
  HostId victim = 0;
  uint64_t kill_step = 0;
  bool killed = false;
  if (kill_enabled) {
    MP_CHECK(workload_.policy == ManagerPolicy::kSharded)
        << "kill_one_host needs sharded managers (centralized death is sticky)";
    victim = static_cast<HostId>(1 + seed_ % (workload_.hosts - 1));
    Rng kill_rng(seed_ ^ 0x6b696c6cULL);
    kill_step = kill_rng.Below(300);
  }
  constexpr uint64_t kMaxSteps = 2'000'000;
  for (;;) {
    std::vector<uint16_t> launchable;
    size_t done = 0;
    size_t parked = 0;
    bool victim_between_ops = false;
    Status failure;
    for (uint16_t h = 0; h < workload_.hosts; ++h) {
      switch (AwaitStable(h)) {
        case Worker::State::kIdle:
          if (killed && h == victim) {
            done++;  // dead host: the rest of its script never runs
          } else {
            launchable.push_back(h);
          }
          if (h == victim) {
            victim_between_ops = true;
          }
          break;
        case Worker::State::kDone:
          done++;
          if (h == victim) {
            victim_between_ops = true;
          }
          break;
        case Worker::State::kRunning:
          parked++;
          break;
        case Worker::State::kFailed:
          if (failure.ok()) {
            std::lock_guard<std::mutex> lock(workers_[h]->mu);
            failure = workers_[h]->failure;
          }
          break;
        case Worker::State::kStartup:
          MP_LOG(Fatal) << "worker still starting after AwaitStable";
          break;
      }
    }
    if (!failure.ok()) {
      res.status = failure;
      // Other workers may still be parked in wait slots mid-op; without an
      // abort they would never return to their launch loop and Teardown's
      // join would hang the whole process.
      for (auto& node : nodes_) {
        node->AbortWaiters(Status::Unavailable("sim run aborted: a worker failed"));
      }
      break;
    }
    // The seeded step picks the kill point; a run too short to reach it
    // still kills at the end, so every kill_one_host run exercises recovery.
    const bool run_finishing =
        launchable.empty() && parked == 0 && net_->pending() == 0;
    if (kill_enabled && !killed && victim_between_ops &&
        (res.steps >= kill_step || run_finishing)) {
      // The kill: the fabric silences the victim (in-flight datagrams die
      // with it), then each survivor's detector verdict is injected and its
      // recovery run synchronously, in host order — one deterministic
      // recovery schedule per seed. Survivor workers parked on requests to
      // the dead host are kicked by the epoch bump and re-send.
      net_->KillHost(victim);
      for (uint16_t s = 0; s < workload_.hosts; ++s) {
        if (s == victim) {
          continue;
        }
        nodes_[s]->InjectPeerDeath(victim);
        nodes_[s]->ProcessPendingDeaths();
      }
      killed = true;
      res.killed = true;
      res.killed_host = victim;
      res.kill_virtual_us = net_->now_us();
      res.steps++;
      continue;  // re-evaluate worker stability under the new membership
    }
    const bool deliverable = net_->pending() > 0;
    const size_t n_candidates = launchable.size() + (deliverable ? 1 : 0);
    if (n_candidates == 0) {
      if (parked > 0) {
        fprintf(stderr,
                "[sim] DEADLOCK seed=%llu step=%llu: %zu worker(s) parked, no "
                "deliverable message\n",
                (unsigned long long)seed_, (unsigned long long)res.steps, parked);
        for (auto& node : nodes_) {
          fprintf(stderr, "[sim]   %s\n", node->LivenessReport().c_str());
          node->AbortWaiters(Status::Unavailable("simulated schedule deadlocked"));
        }
        res.status = Status::Unavailable("deadlock: workers parked with no message");
      }
      break;  // done == hosts: success
    }
    if (res.steps >= kMaxSteps) {
      res.status = Status::Exhausted("livelock: driver step budget exhausted");
      for (auto& node : nodes_) {
        node->AbortWaiters(Status::Exhausted("simulated schedule livelocked"));
      }
      break;
    }
    const size_t pick = n_candidates == 1 ? 0 : drv.Below(n_candidates);
    if (pick < launchable.size()) {
      Worker& w = *workers_[launchable[pick]];
      std::lock_guard<std::mutex> lock(w.mu);
      w.launch = true;
      w.state = Worker::State::kRunning;
      w.cv.notify_all();
    } else {
      HostId dst = 0;
      MP_CHECK(net_->ScheduleNext(&dst));
      nodes_[dst]->PumpOne();
    }
    res.steps++;
  }
  res.virtual_us = net_->now_us();
  if (killed) {
    for (uint16_t h = 0; h < workload_.hosts; ++h) {
      if (h != victim) {
        res.minipages_lost += nodes_[h]->minipages_lost();
      }
    }
  }
  for (auto& node : nodes_) {
    const HostCounters c = node->counters();
    res.batch_frames += c.batch_frames_sent.value();
    res.batch_records += c.batch_records_sent.value();
  }
  Teardown();
  res.history = trace_.Snapshot();
  return res;
}

void SimRun::Teardown() {
  for (auto& w : workers_) {
    {
      std::lock_guard<std::mutex> lock(w->mu);
      w->exit_now = true;
      w->cv.notify_all();
    }
    if (w->thread.joinable()) {
      w->thread.join();
    }
  }
  workers_.clear();
  if (fault_slot_ >= 0) {
    FaultHandler::Instance().Unregister(fault_slot_);
    fault_slot_ = -1;
  }
  nodes_.clear();
  net_.reset();
}

}  // namespace

std::vector<std::vector<SimOp>> GenerateScript(uint64_t seed, const SimWorkload& w) {
  Rng rng(seed);
  std::vector<std::vector<SimOp>> script(w.hosts);
  // Allocation runs alone on host 0, then a barrier publishes the layout
  // before any host touches shared memory.
  script[0].push_back(SimOp{SimOpKind::kAlloc, 0});
  for (uint16_t h = 0; h < w.hosts; ++h) {
    script[h].push_back(SimOp{SimOpKind::kBarrier, 0});
  }
  for (uint32_t round = 0; round < w.rounds; ++round) {
    for (uint16_t h = 0; h < w.hosts; ++h) {
      for (uint32_t i = 0; i < w.ops_per_round; ++i) {
        SimOp op;
        op.cell = static_cast<uint32_t>(rng.Below(w.cells));
        const uint64_t die = rng.Below(10);
        if (w.use_locks && die == 0) {
          op.kind = SimOpKind::kLockedRmw;
        } else if (die < 5) {
          op.kind = SimOpKind::kRead;
        } else {
          op.kind = SimOpKind::kWrite;
        }
        script[h].push_back(op);
      }
    }
    for (uint16_t h = 0; h < w.hosts; ++h) {
      script[h].push_back(SimOp{SimOpKind::kBarrier, 0});
    }
  }
  return script;
}

SimResult RunScript(uint64_t seed, const SimWorkload& workload,
                    const std::vector<std::vector<SimOp>>& script) {
  SimRun run(seed, workload, script);
  return run.Run();
}

SimResult RunSim(uint64_t seed, const SimWorkload& workload) {
  return RunScript(seed, workload, GenerateScript(seed, workload));
}

}  // namespace millipage
