// Transport backend comparison: the syscall bill and round-trip latency of
// the SEQPACKET mesh under the classic socket transport vs the io_uring
// transport (ROADMAP item 2(c)).
//
// Two workloads over a 2-host in-process mesh (one sender thread, one
// receiver thread, real socketpairs):
//
//   * rtt — header-only ping/pong, one message in flight: p50/p99/mean
//     round-trip. Measures the per-message floor where batching cannot help;
//     the uring backend should roughly match sockets here.
//   * burst — the coalescer's shape: BeginBurst + N header-only sends (an
//     invalidation fan-out round) + EndBurst, acked by the receiver. The
//     figure of merit is kernel entries per message (net.syscalls delta /
//     messages): sockets pay one send() each, the uring backend submits the
//     whole window as one linked chain with a single io_uring_enter.
//
// The uring section is skipped (with a note) on kernels without multishot
// RECVMSG + provided buffer rings.

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/net/socket_transport.h"
#include "src/net/transport_factory.h"

namespace millipage {
namespace {

int g_rtt_iters = 2000;
int g_burst_rounds = 200;
constexpr int kBurstMsgs = 32;  // one invalidation round's worth of frames

uint64_t GlobalCounterValue(const char* name) {
  const MetricsSnapshot s = MetricsRegistry::Global().Snapshot();
  const auto it = s.counters.find(name);
  return it != s.counters.end() ? it->second : 0;
}

struct MeshPair {
  std::unique_ptr<Transport> t0;
  std::unique_ptr<Transport> t1;
};

MeshPair MakePair(TransportBackend backend) {
  auto mesh = SocketMesh::Create(2);
  MP_CHECK(mesh.ok()) << mesh.status().ToString();
  std::vector<int> row0 = std::move(mesh->fds[0]);
  std::vector<int> row1 = std::move(mesh->fds[1]);
  mesh->fds.clear();
  MeshPair out;
  MeshTransport m0 = MakeMeshTransport(backend, 0, std::move(row0));
  MeshTransport m1 = MakeMeshTransport(backend, 1, std::move(row1));
  MP_CHECK(m0.transport != nullptr && m1.transport != nullptr);
  MP_CHECK(m0.active == backend && m1.active == backend);
  out.t0 = std::move(m0.transport);
  out.t1 = std::move(m1.transport);
  return out;
}

MsgHeader Header(uint64_t seq) {
  MsgHeader h;
  h.set_type(MsgType::kAck);
  h.seq = static_cast<uint32_t>(seq);
  return h;
}

const PayloadSink kNoSink = [](const MsgHeader&) -> std::byte* { return nullptr; };

struct TransportFigures {
  HistogramSnapshot rtt;        // ns per round trip
  double burst_ns_per_msg = 0;  // wall time per message across burst rounds
  double syscalls_per_msg = 0;  // net.syscalls delta per message, burst phase
};

TransportFigures RunBackend(TransportBackend backend) {
  MeshPair mesh = MakePair(backend);
  TransportFigures out;
  Histogram rtt_hist;

  // --- rtt: strict ping/pong, echo thread on t1 -----------------------------
  const int pings = g_rtt_iters;
  std::thread echo([&] {
    MsgHeader h;
    for (int i = 0; i < pings; ++i) {
      for (;;) {
        auto polled = mesh.t1->Poll(1, &h, kNoSink, 100000);
        MP_CHECK(polled.ok()) << polled.status().ToString();
        if (*polled) {
          break;
        }
      }
      MP_CHECK(mesh.t1->Send(0, Header(h.seq), nullptr, 0).ok());
    }
  });
  for (int i = 0; i < pings; ++i) {
    const uint64_t t0 = MonotonicNowNs();
    MP_CHECK(mesh.t0->Send(1, Header(i), nullptr, 0).ok());
    MsgHeader h;
    for (;;) {
      auto polled = mesh.t0->Poll(0, &h, kNoSink, 100000);
      MP_CHECK(polled.ok()) << polled.status().ToString();
      if (*polled) {
        break;
      }
    }
    rtt_hist.Record(MonotonicNowNs() - t0);
  }
  echo.join();
  out.rtt = rtt_hist.Snapshot();

  // --- burst: batched invalidation-round shape ------------------------------
  const int rounds = g_burst_rounds;
  std::thread drain([&] {
    MsgHeader h;
    for (int r = 0; r < rounds; ++r) {
      for (int m = 0; m < kBurstMsgs; ++m) {
        for (;;) {
          auto polled = mesh.t1->Poll(1, &h, kNoSink, 100000);
          MP_CHECK(polled.ok()) << polled.status().ToString();
          if (*polled) {
            break;
          }
        }
      }
      // One ack per round keeps exactly one burst in flight, so the syscall
      // count divides cleanly by rounds * kBurstMsgs.
      MP_CHECK(mesh.t1->Send(0, Header(r), nullptr, 0).ok());
    }
  });
  const uint64_t syscalls_before = GlobalCounterValue("net.syscalls");
  const uint64_t wall0 = MonotonicNowNs();
  for (int r = 0; r < rounds; ++r) {
    mesh.t0->BeginBurst();
    for (int m = 0; m < kBurstMsgs; ++m) {
      MP_CHECK(mesh.t0->Send(1, Header(r * kBurstMsgs + m), nullptr, 0).ok());
    }
    mesh.t0->EndBurst();
    MsgHeader h;
    for (;;) {
      auto polled = mesh.t0->Poll(0, &h, kNoSink, 100000);
      MP_CHECK(polled.ok()) << polled.status().ToString();
      if (*polled) {
        break;
      }
    }
  }
  drain.join();
  const double total_msgs = static_cast<double>(rounds) * kBurstMsgs;
  out.burst_ns_per_msg = static_cast<double>(MonotonicNowNs() - wall0) / total_msgs;
  // Both endpoints share the process-global counter; the quotient is the
  // whole mesh's kernel entries per delivered message, comparable across
  // backends because both phases are measured identically.
  out.syscalls_per_msg =
      static_cast<double>(GlobalCounterValue("net.syscalls") - syscalls_before) / total_msgs;
  return out;
}

void Report(BenchReporter& reporter, TransportBackend backend) {
  const TransportFigures f = RunBackend(backend);
  const char* name = TransportBackendName(backend);
  std::printf("  %-8s %-6s %8lu %9.1f %9.1f %9.1f %12s\n", name, "rtt",
              static_cast<unsigned long>(f.rtt.count),
              static_cast<double>(f.rtt.Quantile(0.5)) / 1e3,
              static_cast<double>(f.rtt.Quantile(0.99)) / 1e3, f.rtt.mean() / 1e3, "");
  std::printf("  %-8s %-6s %8d %9s %9s %9.1f %12.2f\n", name, "burst",
              g_burst_rounds * kBurstMsgs, "", "", f.burst_ns_per_msg / 1e3,
              f.syscalls_per_msg);

  BenchResult rtt_row;
  rtt_row.name = "transport";
  rtt_row.params = std::string("backend=") + name + " kind=rtt";
  rtt_row.iterations = f.rtt.count;
  rtt_row.ns_per_op = f.rtt.mean();
  rtt_row.values["p50_ns"] = static_cast<double>(f.rtt.Quantile(0.5));
  rtt_row.values["p99_ns"] = static_cast<double>(f.rtt.Quantile(0.99));
  reporter.Add(std::move(rtt_row));

  BenchResult burst_row;
  burst_row.name = "transport";
  burst_row.params = std::string("backend=") + name + " kind=burst";
  burst_row.iterations = static_cast<uint64_t>(g_burst_rounds) * kBurstMsgs;
  burst_row.ns_per_op = f.burst_ns_per_msg;
  burst_row.values["syscalls_per_msg"] = f.syscalls_per_msg;
  reporter.Add(std::move(burst_row));
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_transport", env);
  g_rtt_iters = env.Scaled(2000, 100);
  g_burst_rounds = env.Scaled(200, 10);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Transport backends: round-trip + syscalls per message");
  std::printf("  %-8s %-6s %8s %9s %9s %9s %12s\n", "backend", "kind", "msgs", "p50 us",
              "p99 us", "mean us", "syscalls/msg");
  Report(reporter, TransportBackend::kSocket);
  if (UringTransportSupported()) {
    Report(reporter, TransportBackend::kUring);
  } else {
    std::printf("  uring: kernel lacks multishot recvmsg/buffer rings; section skipped\n");
  }
  reporter.Finish();
  return 0;
}
