// Multi-process deployment: one OS process per DSM host — the paper's
// deployment shape — connected by a pre-forked AF_UNIX SOCK_SEQPACKET mesh.
// Each child creates its own DsmNode (memory object, views, SIGSEGV
// handler), runs the application function, joins a final barrier, and exits.

#ifndef SRC_DSM_PROCESS_CLUSTER_H_
#define SRC_DSM_PROCESS_CLUSTER_H_

#include <functional>

#include "src/common/status.h"
#include "src/dsm/node.h"

namespace millipage {

// Forks config.num_hosts children and runs `fn(node, host)` in each. The
// runtime adds a final barrier after `fn` so no host tears down the protocol
// while others still need it. Returns once every child exited; any child
// that crashed or exited non-zero turns into an error.
// `timeout_ms` bounds the whole run (0 = default 120 s); on expiry (or after
// any child fails) surviving children are killed and an error is returned.
Status RunForkedCluster(const DsmConfig& config,
                        const std::function<void(DsmNode&, HostId)>& fn,
                        uint64_t timeout_ms = 0);

}  // namespace millipage

#endif  // SRC_DSM_PROCESS_CLUSTER_H_
