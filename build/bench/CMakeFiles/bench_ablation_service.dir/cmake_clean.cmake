file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_service.dir/bench_ablation_service.cc.o"
  "CMakeFiles/bench_ablation_service.dir/bench_ablation_service.cc.o.d"
  "bench_ablation_service"
  "bench_ablation_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
