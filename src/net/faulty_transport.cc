#include "src/net/faulty_transport.h"

#include <unistd.h>

#include <cstddef>

#include "src/common/failpoint.h"
#include "src/common/logging.h"

namespace millipage {

FaultyTransport::FaultyTransport(Transport* inner) : inner_(inner) {}

void FaultyTransport::SetPeerDownHandler(PeerDownHandler handler) {
  Transport::SetPeerDownHandler(std::move(handler));
  // Chain: deaths the real transport detects surface on our handler too.
  inner_->SetPeerDownHandler([this](HostId peer) { NotifyPeerDown(peer); });
}

void FaultyTransport::KillPeer(HostId peer) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_.Contains(peer)) {
      return;
    }
    dead_.Add(peer);
  }
  MP_LOG(Info) << "FaultyTransport: peer " << peer << " declared dead";
  NotifyPeerDown(peer);
}

bool FaultyTransport::peer_dead(HostId peer) const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_.Contains(peer);
}

void FaultyTransport::DropSends(HostId to, MsgType type, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  send_drops_.push_back({to, static_cast<uint8_t>(type), count, 0});
}

void FaultyTransport::DropReceives(HostId from, MsgType type, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  recv_drops_.push_back({from, static_cast<uint8_t>(type), count, 0});
}

void FaultyTransport::DelaySends(HostId to, MsgType type, uint64_t us, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = send_delays_.begin(); it != send_delays_.end();) {
    if (it->host == to && it->type == static_cast<uint8_t>(type)) {
      it = send_delays_.erase(it);
    } else {
      ++it;
    }
  }
  if (us > 0) {
    // remaining == 0 encodes "until cleared" (matching drop filters, where 0
    // would be a no-op rule anyway).
    send_delays_.push_back({to, static_cast<uint8_t>(type), count, us});
  }
}

void FaultyTransport::DuplicateReceives(HostId from, MsgType type, uint32_t count) {
  std::lock_guard<std::mutex> lock(mu_);
  recv_dups_.push_back({from, static_cast<uint8_t>(type), count, 0});
}

uint64_t FaultyTransport::receives_duplicated() const {
  std::lock_guard<std::mutex> lock(mu_);
  return receives_duplicated_;
}

uint64_t FaultyTransport::sends_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sends_dropped_;
}

uint64_t FaultyTransport::receives_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return receives_dropped_;
}

Status FaultyTransport::Send(HostId to, MsgHeader h, const void* payload, size_t len) {
  FailpointRegistry& fp = FailpointRegistry::Instance();
  if (const auto dead = fp.Fire("net.peer.die"); dead.has_value()) {
    KillPeer(static_cast<HostId>(*dead));
  }
  if (fp.Fire("net.send.err").has_value()) {
    return Status::Unavailable("injected send error to host " + std::to_string(to));
  }
  uint64_t delay_us = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_.Contains(to)) {
      return Status::Unavailable("host " + std::to_string(to) + " is down (injected)");
    }
    for (Filter& f : send_drops_) {
      if (f.remaining > 0 && Matches(f, to, h.type)) {
        f.remaining--;
        sends_dropped_++;
        return Status::Ok();  // the message is "on the wire" — and lost
      }
    }
    for (auto it = send_delays_.begin(); it != send_delays_.end(); ++it) {
      if (Matches(*it, to, h.type)) {
        delay_us = it->delay_us;
        if (it->remaining > 0 && --it->remaining == 0) {
          send_delays_.erase(it);  // one-shot (counted) rule exhausted
        }
        break;
      }
    }
  }
  if (fp.Fire("net.send.drop").has_value()) {
    std::lock_guard<std::mutex> lock(mu_);
    sends_dropped_++;
    return Status::Ok();
  }
  fp.Fire("net.send.delay");  // delay(us) applied in place by the registry
  if (delay_us > 0) {
    ::usleep(static_cast<useconds_t>(delay_us));
  }
  return inner_->Send(to, h, payload, len);
}

bool FaultyTransport::ConsumeReceiveDrop(const MsgHeader& h) {
  // The header is raw off the wire: `from` still carries the sender's
  // membership-epoch tag in its high bits, so decode the host id with the
  // cluster's codec before consulting the dead set (a tagged id fed to
  // HostSet directly would alias — or fatal past kMaxHosts).
  const HostId from = WireCodec::For(inner_->num_hosts()).Host(h.from);
  std::lock_guard<std::mutex> lock(mu_);
  if (dead_.Contains(from)) {
    receives_dropped_++;
    return true;  // a dead peer's in-flight traffic never arrives
  }
  for (Filter& f : recv_drops_) {
    if (f.remaining > 0 && Matches(f, h.from, h.type)) {
      f.remaining--;
      receives_dropped_++;
      return true;
    }
  }
  return false;
}

Result<bool> FaultyTransport::Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                                   uint64_t timeout_us) {
  if (FailpointRegistry::Instance().Fire("net.poll.eintr").has_value()) {
    return false;  // spurious wakeup: the caller's poll loop retries
  }
  // Re-deliver a stashed duplicate ahead of fresh traffic: the original was
  // already handed to the node, so this Poll replays a retransmit.
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!dup_queue_.empty()) {
      *h = dup_queue_.front();
      dup_queue_.erase(dup_queue_.begin());
      receives_duplicated_++;
      return true;
    }
  }
  // Drop decisions must be made where the payload destination is chosen: a
  // discarded data message is received into scratch so (a) the inner stream
  // stays framed and (b) the real sink's memory is never touched.
  bool dropped = false;
  std::vector<std::byte> scratch;
  const PayloadSink wrapped = [&](const MsgHeader& hdr) -> std::byte* {
    if (ConsumeReceiveDrop(hdr)) {
      dropped = true;
      scratch.resize(hdr.pgsize);
      return scratch.data();
    }
    return sink(hdr);
  };
  Result<bool> got = inner_->Poll(me, h, wrapped, timeout_us);
  if (!got.ok() || !*got) {
    return got;
  }
  // Header-only messages never reach the sink; apply the filter here. The
  // two call sites are exclusive, so each message is charged exactly once.
  if (!dropped && !h->has_payload() && ConsumeReceiveDrop(*h)) {
    dropped = true;
  }
  if (dropped) {
    return false;  // as if nothing arrived; the caller polls again
  }
  if (!h->has_payload()) {
    // Stash a copy for re-delivery if a duplication rule matches. Match on
    // the decoded host id: the raw header still carries the epoch tag.
    const HostId from = WireCodec::For(inner_->num_hosts()).Host(h->from);
    std::lock_guard<std::mutex> lock(mu_);
    for (Filter& f : recv_dups_) {
      if (f.remaining > 0 && Matches(f, from, h->type)) {
        f.remaining--;
        dup_queue_.push_back(*h);
        break;
      }
    }
  }
  return true;
}

}  // namespace millipage
