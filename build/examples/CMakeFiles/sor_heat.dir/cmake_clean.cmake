file(REMOVE_RECURSE
  "CMakeFiles/sor_heat.dir/sor_heat.cpp.o"
  "CMakeFiles/sor_heat.dir/sor_heat.cpp.o.d"
  "sor_heat"
  "sor_heat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sor_heat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
