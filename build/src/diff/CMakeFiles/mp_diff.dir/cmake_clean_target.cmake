file(REMOVE_RECURSE
  "libmp_diff.a"
)
