// Google-benchmark micro-suite over the substrate primitives: protection
// control, MPT translation scaling, allocator throughput, diff costs by
// size and dirtiness, address packing. Complements the paper-table benches
// with statistically robust per-op numbers.

#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "src/common/logging.h"
#include "src/diff/diff.h"
#include "src/multiview/allocator.h"
#include "src/multiview/minipage.h"
#include "src/multiview/view_set.h"
#include "src/net/message.h"
#include "src/os/page.h"

namespace millipage {
namespace {

void BM_SetProtection(benchmark::State& state) {
  auto vs = ViewSet::Create(64 * PageSize(), 8);
  MP_CHECK(vs.ok());
  Minipage mp;
  mp.view = 1;
  mp.offset = 3 * PageSize();
  mp.length = static_cast<uint64_t>(state.range(0));
  bool flip = false;
  for (auto _ : state) {
    flip = !flip;
    MP_CHECK_OK(
        (*vs)->SetProtection(mp, flip ? Protection::kReadOnly : Protection::kReadWrite));
  }
}
BENCHMARK(BM_SetProtection)->Arg(128)->Arg(4096)->Arg(16384);

void BM_GetProtection(benchmark::State& state) {
  auto vs = ViewSet::Create(64 * PageSize(), 8);
  MP_CHECK(vs.ok());
  Minipage mp;
  mp.view = 2;
  mp.offset = 5 * PageSize();
  mp.length = 64;
  for (auto _ : state) {
    benchmark::DoNotOptimize((*vs)->GetProtection(mp));
  }
}
BENCHMARK(BM_GetProtection);

void BM_MptLookup(benchmark::State& state) {
  const size_t entries = static_cast<size_t>(state.range(0));
  MinipageTable mpt;
  MinipageAllocator alloc(&mpt, entries * 512, 16);
  for (size_t i = 0; i < entries; ++i) {
    MP_CHECK(alloc.Allocate(256).ok());
  }
  uint64_t probe = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mpt.Lookup(static_cast<uint32_t>(probe % 16), (probe * 7919) % (entries * 256)));
    probe++;
  }
}
BENCHMARK(BM_MptLookup)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_AllocatorThroughput(benchmark::State& state) {
  const uint32_t chunking = static_cast<uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    MinipageTable mpt;
    AllocatorOptions opts;
    opts.chunking_level = chunking;
    MinipageAllocator alloc(&mpt, 64 << 20, 16, opts);
    state.ResumeTiming();
    for (int i = 0; i < 4096; ++i) {
      MP_CHECK(alloc.Allocate(160).ok());
    }
  }
  state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_AllocatorThroughput)->Arg(1)->Arg(4);

void BM_DiffCreate(benchmark::State& state) {
  const size_t bytes = static_cast<size_t>(state.range(0));
  const int dirty_permille = static_cast<int>(state.range(1));
  std::vector<char> page(bytes);
  for (size_t i = 0; i < bytes; ++i) {
    page[i] = static_cast<char>(i);
  }
  Twin twin(page.data(), bytes);
  for (size_t i = 0; i < bytes; ++i) {
    if (static_cast<int>((i * 997) % 1000) < dirty_permille) {
      page[i] = static_cast<char>(page[i] + 1);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(CreateDiff(twin, page.data(), bytes));
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(bytes));
}
BENCHMARK(BM_DiffCreate)
    ->Args({4096, 0})
    ->Args({4096, 100})
    ->Args({4096, 500})
    ->Args({16384, 100});

void BM_DiffApply(benchmark::State& state) {
  const size_t bytes = 4096;
  std::vector<char> page(bytes, 0);
  Twin twin(page.data(), bytes);
  for (size_t i = 0; i < bytes; i += 8) {
    page[i] = 1;
  }
  const Diff d = CreateDiff(twin, page.data(), bytes);
  std::vector<char> target(bytes, 0);
  for (auto _ : state) {
    MP_CHECK_OK(ApplyDiff(d, target.data(), bytes));
  }
}
BENCHMARK(BM_DiffApply);

void BM_TwinCreate(benchmark::State& state) {
  std::vector<char> page(4096, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Twin(page.data(), page.size()));
  }
}
BENCHMARK(BM_TwinCreate);

void BM_GlobalAddrPack(benchmark::State& state) {
  uint64_t x = 0;
  for (auto _ : state) {
    const GlobalAddr a{static_cast<uint32_t>(x % 16), x % (1ULL << 40)};
    benchmark::DoNotOptimize(GlobalAddr::Unpack(a.Pack()));
    x += 1234577;
  }
}
BENCHMARK(BM_GlobalAddrPack);

}  // namespace
}  // namespace millipage

BENCHMARK_MAIN();
