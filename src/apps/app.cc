#include "src/apps/app.h"

#include <set>

namespace millipage {

AppRunResult RunApp(DsmCluster& cluster, App& app) {
  cluster.RunOnManager([&app](DsmNode& manager) { app.Setup(manager); });
  cluster.RunParallel([&app](DsmNode& node, HostId host) { app.Worker(node, host); });

  AppRunResult result;
  result.name = app.name();
  result.input_desc = app.input_desc();
  result.granularity_desc = app.granularity_desc();
  cluster.RunOnManager([&](DsmNode& manager) {
    result.validation = app.Validate(manager);
    result.shared_bytes = manager.allocator()->bytes_allocated();
    result.num_minipages = manager.mpt()->size();
    std::set<uint32_t> views;
    for (size_t i = 0; i < manager.mpt()->size(); ++i) {
      views.insert(manager.mpt()->Get(static_cast<MinipageId>(i)).view);
    }
    result.num_views = static_cast<uint32_t>(views.size());
  });
  // Each shard attributes the competing requests it queues to its own host
  // counters, so the cluster total aggregates the whole directory.
  result.competing_requests = cluster.TotalCounters().competing_requests;
  result.barriers = cluster.node(cluster.num_hosts() > 1 ? 1 : 0).counters().barriers;

  result.timing.ns_per_work_unit = app.ns_per_work_unit();
  result.timing.num_hosts = cluster.num_hosts();
  result.timing.skip_epochs = app.warmup_epochs();
  for (uint16_t h = 0; h < cluster.num_hosts(); ++h) {
    const HostCounters c = cluster.node(h).counters();
    result.locks += c.lock_acquires;
    result.read_faults += c.read_faults;
    result.write_faults += c.write_faults;
    for (const EpochRecord& r : cluster.node(h).epochs()) {
      result.timing.epochs.push_back(r);
    }
  }
  return result;
}

}  // namespace millipage
