// Shared helpers for the paper-reproduction benchmark binaries: simple
// best-of-k timing and aligned table printing with paper-vs-measured
// columns.

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "src/common/time_util.h"

namespace millipage {

// Runs `fn` `iters` times and returns the average time per call in
// microseconds, taking the best of `repeats` batches to suppress scheduler
// noise.
inline double MeasureUs(const std::function<void()>& fn, int iters = 1000, int repeats = 3) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const uint64_t t0 = MonotonicNowNs();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const double us = static_cast<double>(MonotonicNowNs() - t0) / 1000.0 / iters;
    if (us < best) {
      best = us;
    }
  }
  return best;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, double measured_us, const char* paper) {
  std::printf("  %-44s %10.2f us   (paper: %s)\n", label.c_str(), measured_us, paper);
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

}  // namespace millipage

#endif  // BENCH_BENCH_UTIL_H_
