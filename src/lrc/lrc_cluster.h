// In-process cluster for the LRC protocol, mirroring DsmCluster: every host
// has its own memory object/views/protections; application threads take real
// SIGSEGV faults; minipage masters live at their home hosts and diffs flow
// at synchronization points.

#ifndef SRC_LRC_LRC_CLUSTER_H_
#define SRC_LRC_LRC_CLUSTER_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/lrc/lrc_node.h"
#include "src/net/inproc_transport.h"

namespace millipage {

// Thread-bound current LRC host (independent of the millipage TLS).
void SetCurrentLrcNode(LrcNode* node);
LrcNode* CurrentLrcNode();

// Typed shared pointer resolving through the current LRC host.
template <typename T>
class LrcPtr {
 public:
  LrcPtr() = default;
  explicit LrcPtr(GlobalAddr a) : addr_(a) {}

  GlobalAddr addr() const { return addr_; }
  T* get() const { return reinterpret_cast<T*>(CurrentLrcNode()->AppPtr(addr_)); }
  T& operator*() const { return *get(); }
  T* operator->() const { return get(); }
  T& operator[](size_t i) const { return get()[i]; }

 private:
  GlobalAddr addr_{};
};

template <typename T>
LrcPtr<T> LrcAlloc(size_t count = 1) {
  Result<GlobalAddr> a = CurrentLrcNode()->SharedMalloc(count * sizeof(T));
  MP_CHECK(a.ok()) << a.status().ToString();
  return LrcPtr<T>(*a);
}

class LrcCluster {
 public:
  static Result<std::unique_ptr<LrcCluster>> Create(const DsmConfig& config);
  ~LrcCluster();

  LrcCluster(const LrcCluster&) = delete;
  LrcCluster& operator=(const LrcCluster&) = delete;

  uint16_t num_hosts() const { return config_.num_hosts; }
  LrcNode& node(HostId h) { return *nodes_[h]; }

  void RunParallel(const std::function<void(LrcNode&, HostId)>& fn);
  void RunOnManager(const std::function<void(LrcNode&)>& fn);

  LrcCounters TotalCounters() const;

 private:
  explicit LrcCluster(const DsmConfig& config) : config_(config) {}

  static bool FaultTrampoline(void* ctx, void* addr, bool is_write);
  bool DispatchFault(void* addr, bool is_write);

  struct Region {
    uintptr_t base = 0;
    size_t len = 0;
    LrcNode* node = nullptr;
    uint32_t view = 0;
  };

  DsmConfig config_;
  std::unique_ptr<InProcTransport> transport_;
  std::vector<std::unique_ptr<LrcNode>> nodes_;
  std::vector<Region> regions_;
  int fault_slot_ = -1;
};

}  // namespace millipage

#endif  // SRC_LRC_LRC_CLUSTER_H_
