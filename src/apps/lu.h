// LU — blocked dense LU factorization without pivoting (SPLASH-2
// LU-contiguous). The matrix is built from contiguously allocated BxB
// blocks; with B=32 and 4-byte elements a block is exactly one 4 KB page,
// so the sharing unit equals the page and a single view suffices (paper
// Table 2). Two prefetch calls overlap the fetch of the pivot row/column
// blocks with computation (Section 4.3.1).

#ifndef SRC_APPS_LU_H_
#define SRC_APPS_LU_H_

#include <vector>

#include "src/apps/app.h"
#include "src/dsm/global_ptr.h"

namespace millipage {

struct LuConfig {
  uint32_t n = 256;        // matrix dimension
  uint32_t block = 32;     // 32x32 floats = 4 KB
  bool use_prefetch = true;
};

class LuApp : public App {
 public:
  explicit LuApp(const LuConfig& config) : config_(config) {}

  std::string name() const override { return "LU"; }
  std::string input_desc() const override;
  std::string granularity_desc() const override;
  // One inner-loop multiply-add of the blocked kernel on a 300 MHz P-II.
  double ns_per_work_unit() const override { return 13.0; }

  uint32_t warmup_epochs() const override { return 1; }

  void Setup(DsmNode& manager) override;
  void Worker(DsmNode& node, HostId host) override;
  Status Validate(DsmNode& manager) override;

 private:
  uint32_t nb() const { return config_.n / config_.block; }
  // Round-robin block ownership over anti-diagonals.
  HostId Owner(uint32_t bi, uint32_t bj, uint16_t hosts) const {
    return static_cast<HostId>((bi + bj * nb()) % hosts);
  }
  float* Block(uint32_t bi, uint32_t bj) const { return blocks_[bi * nb() + bj].get(); }

  LuConfig config_;
  std::vector<GlobalPtr<float>> blocks_;
  std::vector<float> original_;  // copy of the input for validation
};

}  // namespace millipage

#endif  // SRC_APPS_LU_H_
