// Process-wide SIGSEGV dispatcher — the POSIX analog of the structured
// exception handler millipage installs on Windows NT.
//
// The DSM runtime registers a callback; when an application thread touches a
// protected vpage, the callback runs the full request/reply protocol on the
// faulting thread, upgrades the protection, and returns true so the faulting
// instruction is retried. Unhandled faults fall through to the default
// disposition (crash with a core), so genuine wild accesses still fail fast.

#ifndef SRC_OS_FAULT_HANDLER_H_
#define SRC_OS_FAULT_HANDLER_H_

#include <atomic>
#include <cstdint>

#include "src/common/metrics.h"
#include "src/common/status.h"

namespace millipage {

// Returns true if the fault was resolved and the access should be retried.
using FaultCallback = bool (*)(void* ctx, void* fault_addr, bool is_write);

class FaultHandler {
 public:
  static constexpr int kMaxSlots = 8;

  static FaultHandler& Instance();

  // Installs the SIGSEGV/SIGBUS sigaction. Idempotent and thread-safe.
  Status Install();

  // Registers a callback; returns a slot id (>= 0), or -1 if full.
  int Register(FaultCallback cb, void* ctx);
  void Unregister(int slot);

  uint64_t faults_dispatched() const {
    return faults_dispatched_.load(std::memory_order_relaxed);
  }

  FaultHandler(const FaultHandler&) = delete;
  FaultHandler& operator=(const FaultHandler&) = delete;

 private:
  FaultHandler() = default;

  static void SignalEntry(int signo, void* info, void* ucontext);
  bool Dispatch(void* fault_addr, bool is_write);

  struct Slot {
    std::atomic<FaultCallback> cb{nullptr};
    std::atomic<void*> ctx{nullptr};
  };

  Slot slots_[kMaxSlots];
  std::atomic<bool> installed_{false};
  std::atomic<uint64_t> faults_dispatched_{0};

  // Registered in Install() (before the sigaction goes live) so SignalEntry
  // only ever touches stable pointers — no registry locking in the handler.
  // Histogram updates are relaxed atomics, safe at signal depth.
  Counter* dispatched_metric_ = nullptr;   // fault.dispatched
  Histogram* decode_ns_ = nullptr;         // SIGSEGV entry -> addr/W decode
  Histogram* service_ns_ = nullptr;        // SIGSEGV entry -> fault resolved
};

}  // namespace millipage

#endif  // SRC_OS_FAULT_HANDLER_H_
