// Figure 6 reproduction: speedups of the five applications on 1-8 hosts
// (left chart) and the execution-time breakdown at 8 hosts (right chart).
//
// Protocol events (faults, bytes, invalidations, barriers, locks) are
// measured from real executions on the in-process cluster; times are
// modeled with the paper-calibrated cost model (Table 1 / Section 4.2
// parameters, including the ~500 us polling-delay the paper describes in
// Section 3.5.1). Expected shape: IS and SOR near-linear; LU good (thin
// protocol + prefetch); WATER decent with chunking; TSP good.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/app_bench_util.h"
#include "bench/bench_util.h"
#include "src/apps/is.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/model/cost_model.h"

namespace millipage {
namespace {

struct AppSpec {
  const char* name;
  uint32_t chunking;
  std::function<std::unique_ptr<App>()> make;
  const char* paper_shape;
};

std::vector<AppSpec> Suite(const BenchEnv& env) {
  return {
      {"SOR", 1,
       [&env] {
         SorConfig cfg;  // the paper's input: 32768x64 floats, 256 B rows
         cfg.rows = env.Scaled(32768, 512);
         cfg.cols = 64;
         cfg.iterations = env.Scaled(10, 2);
         return std::make_unique<SorApp>(cfg);
       },
       "close to linear"},
      {"LU", 1,
       [&env] {
         LuConfig cfg;  // paper: 1024x1024; 768 keeps the same block grain
         cfg.n = env.Scaled(768, 128);
         cfg.block = 32;
         return std::make_unique<LuApp>(cfg);
       },
       "good (thin layer + prefetch)"},
      {"WATER", 4,
       [&env] {
         WaterConfig cfg;  // the paper's input: 512 molecules
         cfg.num_molecules = env.Scaled(512, 64);
         cfg.iterations = env.Scaled(3, 1);
         return std::make_unique<WaterApp>(cfg);
       },
       "comparable to relaxed-consistency systems (chunked)"},
      {"IS", 1,
       [&env] {
         IsConfig cfg;  // the paper's input: 2^23 keys, 2^9 values
         cfg.num_keys = 1 << env.Scaled(23, 13);
         cfg.iterations = env.Scaled(5, 2);
         return std::make_unique<IsApp>(cfg);
       },
       "close to linear"},
      {"TSP", 1,
       [&env] {
         TspConfig cfg;  // paper: 19 cities, depth 12; same tasks-per-host
         cfg.num_cities = env.Scaled(13, 9);  // shape with a tractable search space
         cfg.prefix_depth = 3;  // ~130 coarse tasks: compute-dominated, as
                                // the paper's depth-12/19-city input is
         return std::make_unique<TspApp>(cfg);
       },
       "good"},
  };
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_fig6_speedups", env);
  const CostModel model;
  const std::vector<uint16_t> host_counts =
      env.smoke() ? std::vector<uint16_t>{1, 2} : std::vector<uint16_t>{1, 2, 4, 8};
  const uint16_t max_hosts = host_counts.back();

  PrintHeader("Figure 6 (left): speedups on 1-8 hosts (modeled from measured events)");
  std::printf("  %-7s", "app");
  for (uint16_t h : host_counts) {
    std::printf("   p=%-5u", h);
  }
  std::printf("  paper shape\n");

  std::vector<std::pair<std::string, Breakdown>> breakdowns;
  std::vector<std::pair<std::string, std::pair<double, double>>> fast_predictions;
  const CostModel fast = model.WithFastService();
  for (const AppSpec& spec : Suite(env)) {
    std::printf("  %-7s", spec.name);
    double serial_us = 0;
    double serial_fast_us = 0;
    for (uint16_t hosts : host_counts) {
      auto app = spec.make();
      const AppRunResult r = RunAppOnCluster(AppBenchConfig(hosts, spec.chunking), *app);
      const ModeledRun run = ModelRun(model, r.timing);
      const ModeledRun run_fast = ModelRun(fast, r.timing);
      double speedup = 1.0;
      if (hosts == 1) {
        serial_us = run.total_us;
        serial_fast_us = run_fast.total_us;
      } else {
        speedup = serial_us / run.total_us;
      }
      std::printf("   %6.2f", speedup);
      BenchResult row;
      row.name = spec.name;
      row.params = "hosts=" + std::to_string(hosts) +
                   " chunking=" + std::to_string(spec.chunking);
      row.iterations = 1;
      row.ns_per_op = run.total_us * 1000.0;  // modeled run time
      row.values["speedup"] = speedup;
      row.values["speedup_fast_service"] = serial_fast_us / run_fast.total_us;
      reporter.Add(std::move(row));
      if (hosts == max_hosts) {
        breakdowns.emplace_back(spec.name, run.breakdown);
        fast_predictions.emplace_back(
            spec.name,
            std::make_pair(serial_us / run.total_us, serial_fast_us / run_fast.total_us));
      }
    }
    std::printf("  %s\n", spec.paper_shape);
  }

  PrintHeader("Figure 6 (right): breakdown at " + std::to_string(max_hosts) +
              " hosts (% of modeled time)");
  for (const auto& [name, b] : breakdowns) {
    std::printf("  %-7s %s\n", name.c_str(), b.ToString().c_str());
  }
  PrintNote("paper: computation dominates SOR/IS/TSP; LU shows a visible prefetch slice;");
  PrintNote("WATER carries the largest fault+synch share.");

  PrintHeader("Section 3.5 prediction: speedups once the polling problem is solved");
  std::printf("  %-7s %18s %22s\n", "app", "p=N (as measured)", "p=N (fast service)");
  for (const auto& [name, pair] : fast_predictions) {
    std::printf("  %-7s %18.2f %22.2f\n", name.c_str(), pair.first, pair.second);
  }
  PrintNote("the paper expects the fault-service delay (timer/polling) to shrink once");
  PrintNote("resolved; same measured events priced without the ~500 us response delay.");
  return reporter.Finish();
}
