# Empty compiler generated dependencies file for dsm_sweep_test.
# This may be replaced when dependencies are built.
