# Empty dependencies file for bench_fig5_multiview_overhead.
# This may be replaced when dependencies are built.
