file(REMOVE_RECURSE
  "libmp_model.a"
)
