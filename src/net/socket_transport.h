// Socket transport: AF_UNIX SOCK_SEQPACKET full mesh. SEQPACKET gives
// exactly the FastMessages contract the paper's DSM relies on — reliable,
// connection-oriented, FIFO, message boundaries preserved. Data messages use
// the two-datagram scheme of Section 3.5: the 32-byte header first, then the
// minipage contents, received directly at the privileged-view address the
// header designates.

#ifndef SRC_NET_SOCKET_TRANSPORT_H_
#define SRC_NET_SOCKET_TRANSPORT_H_

#include <memory>
#include <mutex>
#include <vector>

#include "src/common/metrics.h"
#include "src/net/transport.h"

namespace millipage {

// Pre-created connections for an n-host mesh. In multi-process mode the
// parent creates the mesh, forks, and each child keeps row `host` only.
struct SocketMesh {
  // fds[i][j]: endpoint owned by host i, connected to host j; -1 when i==j.
  std::vector<std::vector<int>> fds;

  static Result<SocketMesh> Create(uint16_t num_hosts);

  SocketMesh() = default;
  SocketMesh(SocketMesh&& other) noexcept : fds(std::move(other.fds)) { other.fds.clear(); }
  SocketMesh& operator=(SocketMesh&& other) noexcept {
    if (this != &other) {
      CloseAll();
      fds = std::move(other.fds);
      other.fds.clear();
    }
    return *this;
  }
  SocketMesh(const SocketMesh&) = delete;
  SocketMesh& operator=(const SocketMesh&) = delete;

  // Releases row `host` for a SocketTransport and closes every other fd
  // (call in the child after fork). The struct is empty afterwards.
  std::vector<int> TakeRow(uint16_t host);

  void CloseAll();
  ~SocketMesh() { CloseAll(); }
};

class SocketTransport : public Transport {
 public:
  // `fds_by_peer[j]` is the socket to host j (-1 at index `me`); takes
  // ownership of the fds.
  SocketTransport(HostId me, std::vector<int> fds_by_peer);
  ~SocketTransport() override;

  Status Send(HostId to, MsgHeader h, const void* payload, size_t len) override;
  Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                    uint64_t timeout_us) override;
  uint16_t num_hosts() const override { return static_cast<uint16_t>(fds_.size()); }

 private:
  // Retires a connection whose peer has gone away. Returns the peer index
  // the fd belonged to, or -1 for the self-loop.
  int ClosePeer(int fd);

  HostId me_;
  std::vector<int> fds_;  // fds_[me_] is the send end of the self-loop
  // A host's own application threads talk to its server thread through the
  // same transport (the manager sends itself requests); this is the receive
  // end of that loop.
  int self_recv_fd_ = -1;
  // Serializes the header+payload datagram pair per destination (app thread
  // and server thread may send concurrently).
  std::vector<std::unique_ptr<std::mutex>> send_mu_;
  uint32_t rotation_ = 0;  // fairness cursor over peers (poller thread only)

  // Wire metrics (process-global registry: one socket transport per process
  // in the forked deployment). Datagram sizes include the 32-byte header.
  Counter* msgs_sent_ = nullptr;
  Counter* msgs_recv_ = nullptr;
  Histogram* send_ns_ = nullptr;     // header(+payload) syscall pair
  Histogram* send_bytes_ = nullptr;
  Histogram* recv_bytes_ = nullptr;
};

}  // namespace millipage

#endif  // SRC_NET_SOCKET_TRANSPORT_H_
