#include "src/os/fault_handler.h"

#include <errno.h>
#include <fcntl.h>
#include <linux/userfaultfd.h>
#include <stdlib.h>
#include <poll.h>
#include <signal.h>
#include <string.h>
#include <sys/ioctl.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <ucontext.h>
#include <unistd.h>

#include <mutex>
#include <thread>

#include "src/os/page.h"

namespace millipage {

namespace {

// Decodes whether the faulting access was a write. On x86-64 the page-fault
// error code is in REG_ERR; bit 1 is the W bit.
bool FaultWasWrite(void* ucontext_raw) {
#if defined(__x86_64__)
  const auto* uc = static_cast<ucontext_t*>(ucontext_raw);
  return (uc->uc_mcontext.gregs[REG_ERR] & 0x2) != 0;
#else
  (void)ucontext_raw;
  // Conservative fallback: treat every fault as a write (requests an
  // exclusive copy; correct but may over-invalidate).
  return true;
#endif
}

// The userfaultfd features the DSM backend needs: minor faults on shmem (our
// "NoAccess" is a zapped pte over a live page-cache page), write-protect
// fault delivery, and WP support on shmem-backed VMAs.
constexpr uint64_t kRequiredUffdFeatures = UFFD_FEATURE_MINOR_SHMEM |
                                           UFFD_FEATURE_PAGEFAULT_FLAG_WP |
                                           UFFD_FEATURE_WP_HUGETLBFS_SHMEM;

}  // namespace

const char* FaultBackendName(FaultBackend backend) {
  return backend == FaultBackend::kUserfaultfd ? "userfaultfd" : "sigsegv";
}

FaultBackend FaultBackendFromEnv() {
  const char* env = getenv("MILLIPAGE_FAULT_BACKEND");
  if (env != nullptr && (strcmp(env, "uffd") == 0 || strcmp(env, "userfaultfd") == 0)) {
    return FaultBackend::kUserfaultfd;
  }
  return FaultBackend::kSigsegv;
}

FaultHandler& FaultHandler::Instance() {
  static FaultHandler* instance = new FaultHandler();
  return *instance;
}

Status FaultHandler::InstallSigaction() {
  static std::once_flag once;
  Status result = Status::Ok();
  std::call_once(once, [&result, this] {
    MetricsRegistry& reg = MetricsRegistry::Global();
    dispatched_metric_ = reg.GetCounter("fault.dispatched");
    decode_ns_ = reg.GetHistogram("fault.decode_ns");
    service_ns_ = reg.GetHistogram("fault.service_ns");
    struct sigaction sa;
    memset(&sa, 0, sizeof(sa));
    sa.sa_sigaction = reinterpret_cast<void (*)(int, siginfo_t*, void*)>(&SignalEntry);
    // SA_NODEFER: a fault raised while the handler runs is delivered to the
    // handler again (instead of the kernel force-killing the process with
    // the signal blocked), which lets the depth guard in SignalEntry report
    // nested faults before dying.
    sa.sa_flags = SA_SIGINFO | SA_RESTART | SA_NODEFER;
    sigemptyset(&sa.sa_mask);
    if (sigaction(SIGSEGV, &sa, nullptr) != 0 || sigaction(SIGBUS, &sa, nullptr) != 0) {
      result = Status::Errno("sigaction");
      return;
    }
    installed_.store(true, std::memory_order_release);
  });
  if (!result.ok()) {
    return result;
  }
  if (!installed_.load(std::memory_order_acquire)) {
    return Status::Internal("fault handler failed to install earlier");
  }
  return Status::Ok();
}

Status FaultHandler::Install(FaultBackend requested) {
  // The SIGSEGV handler is installed in both modes: it covers mprotect'd
  // anonymous mappings, wild accesses, and every view created while the
  // sigsegv backend was (or becomes) active.
  MP_RETURN_IF_ERROR(InstallSigaction());
  if (requested == FaultBackend::kUserfaultfd && EnsureUffd().ok()) {
    active_backend_.store(FaultBackend::kUserfaultfd, std::memory_order_release);
  } else {
    // Runtime fallback: the caller asked for uffd but this kernel can't do
    // minor+WP on shmem (or the caller asked for sigsegv). Either way the
    // sigsegv backend serves every subsequent view registration.
    active_backend_.store(FaultBackend::kSigsegv, std::memory_order_release);
  }
  return Status::Ok();
}

bool FaultHandler::UffdSupported() { return EnsureUffd().ok(); }

Status FaultHandler::EnsureUffd() {
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  const int state = uffd_state_.load(std::memory_order_acquire);
  if (state > 0) {
    return Status::Ok();
  }
  if (state < 0) {
    return Status::Unavailable("userfaultfd backend unavailable on this kernel");
  }
  // UFFD_USER_MODE_ONLY first (works unprivileged when
  // vm.unprivileged_userfaultfd=0); kernel-fault delivery is not needed.
  int fd = static_cast<int>(
      syscall(SYS_userfaultfd, O_CLOEXEC | O_NONBLOCK | UFFD_USER_MODE_ONLY));
  if (fd < 0) {
    fd = static_cast<int>(syscall(SYS_userfaultfd, O_CLOEXEC | O_NONBLOCK));
  }
  Status failed = Status::Ok();
  if (fd < 0) {
    failed = Status::Errno("userfaultfd");
  } else {
    struct uffdio_api api;
    memset(&api, 0, sizeof(api));
    api.api = UFFD_API;
    api.features = kRequiredUffdFeatures;
#ifdef UFFD_FEATURE_WP_UNPOPULATED
    api.features |= UFFD_FEATURE_WP_UNPOPULATED;
#endif
    if (ioctl(fd, UFFDIO_API, &api) != 0) {
      failed = Status::Errno("UFFDIO_API");
    } else if ((api.features & kRequiredUffdFeatures) != kRequiredUffdFeatures) {
      failed = Status::Unavailable("kernel lacks UFFD minor+WP shmem features");
    }
  }
  if (!failed.ok()) {
    if (fd >= 0) {
      close(fd);
    }
    uffd_state_.store(-1, std::memory_order_release);
    return failed;
  }
  uffd_fd_ = fd;
  // The poller owns fault delivery for every uffd-registered view for the
  // rest of the process lifetime; detach it like the signal handler is
  // "detached" — there is no orderly teardown for fault dispatch.
  std::thread([this] { PollerLoop(); }).detach();
  uffd_state_.store(1, std::memory_order_release);
  return Status::Ok();
}

int FaultHandler::Register(FaultCallback cb, void* ctx) {
  for (int i = 0; i < kMaxSlots; ++i) {
    FaultCallback expected = nullptr;
    if (slots_[i].cb.compare_exchange_strong(expected, cb, std::memory_order_acq_rel)) {
      slots_[i].ctx.store(ctx, std::memory_order_release);
      return i;
    }
  }
  return -1;
}

void FaultHandler::Unregister(int slot) {
  if (slot >= 0 && slot < kMaxSlots) {
    slots_[slot].cb.store(nullptr, std::memory_order_release);
    slots_[slot].ctx.store(nullptr, std::memory_order_release);
  }
}

// ---- userfaultfd range operations ------------------------------------------

Status FaultHandler::UffdRegisterRange(void* base, size_t len) {
  if (uffd_state_.load(std::memory_order_acquire) <= 0) {
    return Status::Internal("uffd backend not installed");
  }
  struct uffdio_register reg;
  memset(&reg, 0, sizeof(reg));
  reg.range.start = reinterpret_cast<unsigned long>(base);
  reg.range.len = len;
  reg.mode = UFFDIO_REGISTER_MODE_MINOR | UFFDIO_REGISTER_MODE_WP;
  if (ioctl(uffd_fd_, UFFDIO_REGISTER, &reg) != 0) {
    return Status::Errno("UFFDIO_REGISTER");
  }
  return Status::Ok();
}

Status FaultHandler::UffdUnregisterRange(void* base, size_t len) {
  if (uffd_state_.load(std::memory_order_acquire) <= 0) {
    return Status::Internal("uffd backend not installed");
  }
  struct uffdio_range range;
  range.start = reinterpret_cast<unsigned long>(base);
  range.len = len;
  if (ioctl(uffd_fd_, UFFDIO_UNREGISTER, &range) != 0) {
    return Status::Errno("UFFDIO_UNREGISTER");
  }
  return Status::Ok();
}

Status FaultHandler::UffdZapRange(void* base, size_t len) {
  if (uffd_state_.load(std::memory_order_acquire) <= 0) {
    return Status::Internal("uffd backend not installed");
  }
  // MADV_DONTNEED on a MAP_SHARED view drops only this mapping's ptes; the
  // shmem pages (and the privileged view) are untouched. The next access
  // from this view raises a minor fault.
  if (madvise(base, len, MADV_DONTNEED) != 0) {
    return Status::Errno("madvise(MADV_DONTNEED)");
  }
  return Status::Ok();
}

Status FaultHandler::UffdEnsureRange(void* base, size_t len, bool write_protect) {
  if (uffd_state_.load(std::memory_order_acquire) <= 0) {
    return Status::Internal("uffd backend not installed");
  }
  // Materialize ptes from the page cache over the whole range in one ioctl
  // per contiguous absent run; EEXIST marks an already-present page, which
  // the trailing UFFDIO_WRITEPROTECT fixes up along with everything else.
  //
  // MODE_DONTWAKE is load-bearing: CONTINUE installs a *writable* pte, and
  // waking the faulting thread here lets its store land before the WP pass
  // below — a silent write on what the protocol believes is a read-only
  // copy, i.e. a lost update. The thread must stay parked until the final
  // protection is in place; UFFDIO_WRITEPROTECT wakes the range by default.
  const size_t page = PageSize();
  uintptr_t start = reinterpret_cast<uintptr_t>(base);
  const uintptr_t end = start + len;
  while (start < end) {
    struct uffdio_continue cont;
    memset(&cont, 0, sizeof(cont));
    cont.range.start = start;
    cont.range.len = end - start;
    cont.mode = UFFDIO_CONTINUE_MODE_DONTWAKE;
    if (ioctl(uffd_fd_, UFFDIO_CONTINUE, &cont) == 0) {
      break;
    }
    if (cont.mapped > 0) {
      start += static_cast<uintptr_t>(cont.mapped);
    }
    if (errno == EEXIST) {
      start += page;  // pte already present; WP pass below covers it
      continue;
    }
    if (errno == EAGAIN) {
      continue;
    }
    return Status::Errno("UFFDIO_CONTINUE");
  }
  // One WP ioctl over the full range sets the final read-only/read-write
  // state — it covers pages that were already present (EEXIST above) and
  // the ones CONTINUE just installed writable — and only then wakes any
  // threads parked on the range.
  struct uffdio_writeprotect wp;
  memset(&wp, 0, sizeof(wp));
  wp.range.start = reinterpret_cast<unsigned long>(base);
  wp.range.len = len;
  wp.mode = write_protect ? UFFDIO_WRITEPROTECT_MODE_WP : 0;
  if (ioctl(uffd_fd_, UFFDIO_WRITEPROTECT, &wp) != 0) {
    return Status::Errno("UFFDIO_WRITEPROTECT");
  }
  return Status::Ok();
}

namespace {

// Recursion depth of fault service on this thread. With the sigsegv backend
// the whole protocol legitimately runs at depth 1 (inside the SIGSEGV
// handler); a fault raised at depth >= 1 means the handler itself faulted
// and must not be dispatched again.
thread_local int tls_fault_depth = 0;

// Set for the lifetime of the userfaultfd poller thread. A SIGSEGV-class
// fault on that thread can never be serviced (the protocol it would need is
// already running — or blocked — on this very thread), and a uffd-class
// fault would deadlock silently against the event queue it is supposed to
// drain; reject it loudly instead.
thread_local bool tls_uffd_poller = false;

// Async-signal-safe report before the process dies. `msg` names the class
// of failure ("unhandled fault" / "nested fault").
void ReportFatalFault(const char* msg, void* addr, bool is_write) {
  char buf[96];
  char* p = buf;
  const char* prefix = "[millipage] ";
  while (*prefix != '\0') {
    *p++ = *prefix++;
  }
  while (*msg != '\0') {
    *p++ = *msg++;
  }
  *p++ = is_write ? 'W' : 'R';
  const char* at = ") at 0x";
  while (*at != '\0') {
    *p++ = *at++;
  }
  const auto a = reinterpret_cast<uintptr_t>(addr);
  for (int shift = 60; shift >= 0; shift -= 4) {
    *p++ = "0123456789abcdef"[(a >> shift) & 0xf];
  }
  *p++ = '\n';
  (void)!write(2, buf, static_cast<size_t>(p - buf));
}

}  // namespace

void FaultHandler::SignalEntry(int signo, void* info_raw, void* ucontext) {
  FaultHandler& fh = Instance();
  // clock_gettime is on the vDSO fast path and the histogram updates are
  // relaxed atomics, so timing at signal depth is safe; when metrics are off
  // the handler pays one load and a branch.
  const bool timed = MetricsEnabled() && fh.service_ns_ != nullptr;
  const uint64_t t0 = timed ? MonotonicNowNs() : 0;
  auto* info = static_cast<siginfo_t*>(info_raw);
  void* addr = info->si_addr;
  const bool is_write = FaultWasWrite(ucontext);
  if (timed) {
    fh.decode_ns_->RecordAlways(MonotonicNowNs() - t0);
  }
  if (tls_uffd_poller) {
    // The uffd poller thread faulted — either inside a callback it was
    // dispatching or in its own loop. Servicing would re-enter the protocol
    // that is already live on this thread; reject and die.
    ReportFatalFault("nested fault on uffd poller (", addr, is_write);
    signal(signo, SIG_DFL);
    raise(signo);
    return;
  }
  if (tls_fault_depth >= 1) {
    // The handler (or protocol code it called) faulted while already
    // servicing a fault on this thread. Dispatching again could recurse
    // forever; reject it and die with a diagnostic instead.
    ReportFatalFault("nested fault in handler (", addr, is_write);
    signal(signo, SIG_DFL);
    raise(signo);
    return;
  }
  tls_fault_depth++;
  const bool handled = fh.Dispatch(addr, is_write);
  tls_fault_depth--;
  if (handled) {
    if (timed) {
      fh.service_ns_->RecordAlways(MonotonicNowNs() - t0);
    }
    return;  // protection was upgraded; the faulting instruction retries
  }
  // Not ours: restore the default disposition and re-raise so the process
  // dies with the usual SIGSEGV semantics (core dump, correct si_addr).
  ReportFatalFault("unhandled fault (", addr, is_write);
  signal(signo, SIG_DFL);
  raise(signo);
}

void FaultHandler::PollerLoop() {
  tls_uffd_poller = true;
  const size_t page = PageSize();
  for (;;) {
    struct pollfd pfd;
    pfd.fd = uffd_fd_;
    pfd.events = POLLIN;
    const int prc = poll(&pfd, 1, -1);
    if (prc <= 0) {
      if (prc < 0 && errno == EINTR) {
        continue;
      }
      ReportFatalFault("uffd poll failed (", nullptr, false);
      abort();
    }
    struct uffd_msg msg;
    const ssize_t n = read(uffd_fd_, &msg, sizeof(msg));
    if (n != static_cast<ssize_t>(sizeof(msg))) {
      if (n < 0 && (errno == EAGAIN || errno == EINTR)) {
        continue;
      }
      ReportFatalFault("uffd read failed (", nullptr, false);
      abort();
    }
    if (msg.event != UFFD_EVENT_PAGEFAULT) {
      continue;  // fork/remap/unmap events are not subscribed
    }
    const bool timed = MetricsEnabled() && service_ns_ != nullptr;
    const uint64_t t0 = timed ? MonotonicNowNs() : 0;
    void* addr = reinterpret_cast<void*>(msg.arg.pagefault.address & ~(page - 1));
    const bool is_write = (msg.arg.pagefault.flags & UFFD_PAGEFAULT_FLAG_WRITE) != 0;
    if (timed) {
      decode_ns_->RecordAlways(MonotonicNowNs() - t0);
    }
    // The callback runs the full protocol on this thread. tls_fault_depth
    // keeps the sigsegv-side guard armed: if the protocol SIGSEGVs here, the
    // signal path above reports a nested fault instead of re-dispatching.
    tls_fault_depth++;
    const bool handled = Dispatch(addr, is_write);
    tls_fault_depth--;
    if (!handled) {
      ReportFatalFault("unhandled fault (", addr, is_write);
      signal(SIGSEGV, SIG_DFL);
      raise(SIGSEGV);
      return;
    }
    if (timed) {
      service_ns_->RecordAlways(MonotonicNowNs() - t0);
    }
    // The protection upgrade itself (UFFDIO_CONTINUE / WRITEPROTECT) wakes
    // waiters in the range; the explicit wake covers callbacks that resolved
    // the fault without touching this page's ptes (e.g. a racing fault that
    // another thread already serviced).
    struct uffdio_range wake;
    wake.start = reinterpret_cast<unsigned long>(addr);
    wake.len = page;
    (void)ioctl(uffd_fd_, UFFDIO_WAKE, &wake);
  }
}

bool FaultHandler::Dispatch(void* fault_addr, bool is_write) {
  faults_dispatched_.fetch_add(1, std::memory_order_relaxed);
  if (dispatched_metric_ != nullptr) {
    dispatched_metric_->Inc();
  }
  for (Slot& slot : slots_) {
    FaultCallback cb = slot.cb.load(std::memory_order_acquire);
    if (cb == nullptr) {
      continue;
    }
    void* ctx = slot.ctx.load(std::memory_order_acquire);
    if (cb(ctx, fault_addr, is_write)) {
      return true;
    }
  }
  return false;
}

}  // namespace millipage
