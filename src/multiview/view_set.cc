#include "src/multiview/view_set.h"

#include <algorithm>
#include <cstring>

#include "src/common/failpoint.h"

namespace millipage {

Result<std::unique_ptr<ViewSet>> ViewSet::Create(size_t object_size, uint32_t num_app_views) {
  if (num_app_views == 0) {
    return Status::Invalid("ViewSet needs at least one application view");
  }
  auto vs = std::unique_ptr<ViewSet>(new ViewSet());
  MP_ASSIGN_OR_RETURN(vs->object_, MemoryObject::Create(object_size));
  const size_t len = vs->object_.size();
  FaultHandler& fh = FaultHandler::Instance();
  vs->uffd_ = fh.active_backend() == FaultBackend::kUserfaultfd;
  MP_ASSIGN_OR_RETURN(vs->priv_view_,
                      Mapping::MapObject(vs->object_, 0, len, Protection::kReadWrite));
  if (vs->uffd_) {
    // Instantiate every object page in the page cache up front:
    // UFFDIO_CONTINUE can only install ptes for pages that already exist
    // there, and a fresh memfd is fully hole. The store is through the
    // privileged view, so the zero-fill semantics are unchanged.
    std::memset(vs->priv_view_.base(), 0, len);
  }
  vs->app_views_.reserve(num_app_views);
  for (uint32_t v = 0; v < num_app_views; ++v) {
    // uffd mode keeps the VMA PROT_READ|PROT_WRITE forever; "NoAccess" is a
    // zapped pte (minor fault on touch) and "ReadOnly" a write-protect bit.
    MP_ASSIGN_OR_RETURN(
        Mapping m, Mapping::MapObject(vs->object_, 0, len,
                                      vs->uffd_ ? Protection::kReadWrite
                                                : Protection::kNoAccess));
    if (vs->uffd_) {
      MP_RETURN_IF_ERROR(fh.UffdRegisterRange(m.base(), len));
      MP_RETURN_IF_ERROR(fh.UffdZapRange(m.base(), len));  // start NoAccess
    }
    vs->app_views_.push_back(std::move(m));
  }
  const size_t vpages = len / PageSize();
  vs->shadow_.reserve(num_app_views);
  for (uint32_t v = 0; v < num_app_views; ++v) {
    auto arr = std::make_unique<std::atomic<uint8_t>[]>(vpages);
    for (size_t i = 0; i < vpages; ++i) {
      arr[i].store(static_cast<uint8_t>(Protection::kNoAccess), std::memory_order_relaxed);
    }
    vs->shadow_.push_back(std::move(arr));
  }
  vs->SetMetrics(&MetricsRegistry::Global());
  return vs;
}

ViewSet::~ViewSet() {
  if (uffd_) {
    FaultHandler& fh = FaultHandler::Instance();
    for (Mapping& m : app_views_) {
      if (m.valid()) {
        // Unregister before munmap so no fault event can arrive for a range
        // the resolver no longer claims. Best-effort: the munmap below
        // removes the registration anyway.
        (void)fh.UffdUnregisterRange(m.base(), m.length());
      }
    }
  }
}

bool ViewSet::Resolve(const void* addr, uint32_t* view, uint64_t* offset) const {
  const auto a = reinterpret_cast<uintptr_t>(addr);
  for (uint32_t v = 0; v < app_views_.size(); ++v) {
    const Mapping& m = app_views_[v];
    if (a >= m.base_addr() && a < m.base_addr() + m.length()) {
      *view = v;
      *offset = a - m.base_addr();
      return true;
    }
  }
  return false;
}

Status ViewSet::ApplyProtection(uint32_t view, uint64_t first_vpage, uint64_t last_vpage,
                                Protection prot) {
  const size_t off = first_vpage * PageSize();
  const size_t len = (last_vpage - first_vpage + 1) * PageSize();
  if (!uffd_) {
    return app_views_[view].Protect(off, len, prot);
  }
  // Chaos-hook parity with Mapping::Protect: the injected-failure site fires
  // at the same points in the SetProtection call sequence in both modes.
  if (FailpointRegistry::Instance().Fire("os.mapping.protect")) {
    return Status::Exhausted("uffd protect: injected failure (os.mapping.protect)");
  }
  FaultHandler& fh = FaultHandler::Instance();
  std::byte* base = app_views_[view].base() + off;
  switch (prot) {
    case Protection::kNoAccess:
      return fh.UffdZapRange(base, len);
    case Protection::kReadOnly:
      return fh.UffdEnsureRange(base, len, /*write_protect=*/true);
    case Protection::kReadWrite:
      return fh.UffdEnsureRange(base, len, /*write_protect=*/false);
  }
  return Status::Invalid("ApplyProtection: bad protection value");
}

bool ViewSet::RangeAlreadyAt(const Minipage& mp, Protection prot) const {
  for (uint64_t vp = mp.first_vpage(); vp <= mp.last_vpage(); ++vp) {
    if (static_cast<Protection>(shadow_[mp.view][vp].load(std::memory_order_acquire)) !=
        prot) {
      return false;
    }
  }
  return true;
}

Status ViewSet::SetProtection(const Minipage& mp, Protection prot) {
  if (mp.view >= app_views_.size()) {
    return Status::Invalid("SetProtection: view out of range");
  }
  // Idempotence fast-path: the shadow is the source of truth for pte state
  // (every change funnels through ApplyProtection), so a same-protection
  // call — a racing double fault, or a record a batched ranged call already
  // applied — costs no syscall.
  if (RangeAlreadyAt(mp, prot)) {
    return Status::Ok();
  }
  const uint64_t first = mp.first_vpage();
  const uint64_t last = mp.last_vpage();
  MP_RETURN_IF_ERROR(ApplyProtection(mp.view, first, last, prot));
  for (uint64_t vp = first; vp <= last; ++vp) {
    shadow_[mp.view][vp].store(static_cast<uint8_t>(prot), std::memory_order_release);
  }
  prot_sets_->Inc();
  prot_set_pages_->Inc(last - first + 1);
  TraceProtSet(mp, prot);
  return Status::Ok();
}

Status ViewSet::SetProtectionBatch(const Minipage* mps, size_t count, Protection prot) {
  if (count == 0) {
    return Status::Ok();
  }
  if (count == 1) {
    return SetProtection(mps[0], prot);
  }
  // Collect the minipages whose protection actually changes, sorted by
  // (view, first vpage) so contiguous runs are adjacent.
  std::vector<const Minipage*> todo;
  todo.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    if (mps[i].view >= app_views_.size()) {
      return Status::Invalid("SetProtectionBatch: view out of range");
    }
    if (!RangeAlreadyAt(mps[i], prot)) {
      todo.push_back(&mps[i]);
    }
  }
  if (todo.empty()) {
    return Status::Ok();
  }
  std::sort(todo.begin(), todo.end(), [](const Minipage* a, const Minipage* b) {
    if (a->view != b->view) {
      return a->view < b->view;
    }
    return a->first_vpage() < b->first_vpage();
  });
  // Merge touching/overlapping vpage ranges within a view and apply each
  // merged run with ONE ranged protection call.
  auto apply_run = [&](uint32_t view, uint64_t first, uint64_t last) -> Status {
    MP_RETURN_IF_ERROR(ApplyProtection(view, first, last, prot));
    for (uint64_t vp = first; vp <= last; ++vp) {
      shadow_[view][vp].store(static_cast<uint8_t>(prot), std::memory_order_release);
    }
    prot_sets_->Inc();
    prot_set_pages_->Inc(last - first + 1);
    return Status::Ok();
  };
  uint32_t run_view = todo[0]->view;
  uint64_t run_first = todo[0]->first_vpage();
  uint64_t run_last = todo[0]->last_vpage();
  for (size_t i = 1; i < todo.size(); ++i) {
    const Minipage& mp = *todo[i];
    if (mp.view == run_view && mp.first_vpage() <= run_last + 1) {
      run_last = std::max(run_last, mp.last_vpage());
      continue;
    }
    MP_RETURN_IF_ERROR(apply_run(run_view, run_first, run_last));
    run_view = mp.view;
    run_first = mp.first_vpage();
    run_last = mp.last_vpage();
  }
  MP_RETURN_IF_ERROR(apply_run(run_view, run_first, run_last));
  // Per-minipage trace events are preserved — the checker reasons about
  // minipages, not syscalls — in the deterministic sorted order.
  for (const Minipage* mp : todo) {
    TraceProtSet(*mp, prot);
  }
  return Status::Ok();
}

Protection ViewSet::GetProtection(const Minipage& mp) const {
  return static_cast<Protection>(
      shadow_[mp.view][mp.first_vpage()].load(std::memory_order_acquire));
}

Status ViewSet::ProtectAllAppViews(Protection prot) {
  const size_t vpages = vpages_per_view();
  for (uint32_t v = 0; v < app_views_.size(); ++v) {
    MP_RETURN_IF_ERROR(ApplyProtection(v, 0, vpages - 1, prot));
    for (size_t i = 0; i < vpages; ++i) {
      shadow_[v][i].store(static_cast<uint8_t>(prot), std::memory_order_relaxed);
    }
  }
  return Status::Ok();
}

}  // namespace millipage
