// Coherence-protocol batching: datagrams and bytes per write-invalidation
// round, batched (DsmConfig::batch_coherence, multi-record frames behind
// kFlagBatched) vs the paper's one-datagram-per-minipage protocol.
//
// Workload: `hosts` hosts share hosts·hosts single-minipage arrays. Each
// round, every host reads every array (building an all-host copyset per
// array, fan-out = hosts - 1 ≥ 5), then every host write-faults its own
// block of `hosts` arrays simultaneously. The concurrent write bursts put
// many invalidation rounds in flight at the same manager, so the coalescer
// can fold same-destination invalidate requests — and their replies, and
// the completion ACKs — into multi-record frames. The block size equals the
// host count on purpose: array a is written by host a/hosts but served by
// shard a mod hosts, so at write step k every writer is in a round at shard
// k mod hosts — the full writer population stacks at one shard at a time,
// the burst depth the linger window (DsmConfig::batch_linger_us) exists to
// fold. (A worker blocks inside each fault, so one writer alone can never
// put two rounds in the air; depth comes only from distinct writers.)
//
// Reported per (policy, batching) cell: wall time, write-segment datagrams
// and bytes per write op (one host's write of one array — i.e., one
// invalidation round), multi-record frames and the records they carried, and
// records/frame — the per-datagram compression of the invalidation path.
// The msgs/op ratio of the off/on cells is the end-to-end datagram saving.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

int g_rounds = 30;

// Arrays written per host per burst. Equal to the host count so lockstep
// writers converge on one shard per step (see the header comment): the
// concurrent-round depth available for folding is then `hosts` under both
// manager policies, instead of gcd(block, hosts) writers per shard.
int ArraysPerHost(uint16_t hosts) { return hosts; }

DsmConfig Cfg(uint16_t hosts, ManagerPolicy policy, bool batch) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  cfg.manager_policy = policy;
  cfg.batch_coherence = batch;
  return cfg;
}

struct BatchingResult {
  double wall_ms = 0;
  uint64_t write_ops = 0;      // write faults measured (rounds × arrays)
  uint64_t write_msgs = 0;     // datagrams sent during the write segments
  uint64_t write_bytes = 0;
  uint64_t batch_frames = 0;   // multi-record frames among them
  uint64_t batch_records = 0;  // records those frames carried
  uint64_t inv_msgs = 0;       // datagrams on the invalidation round paths
  uint64_t inv_records = 0;    // protocol records those datagrams carried
};

BatchingResult RunBatching(uint16_t hosts, ManagerPolicy policy, bool batch) {
  auto cluster = DsmCluster::Create(Cfg(hosts, policy, batch));
  MP_CHECK(cluster.ok()) << cluster.status().ToString();
  const int arrays = ArraysPerHost(hosts) * hosts;
  std::vector<GlobalPtr<int>> ptrs(arrays);
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int a = 0; a < arrays; ++a) {
      ptrs[a] = SharedAlloc<int>(16);
      ptrs[a][0] = 0;
    }
  });

  // Per-host counter snapshots bracketing the write segments, taken by each
  // host on its own node between barriers.
  std::vector<uint64_t> msgs0(hosts), msgs1(hosts), bytes0(hosts), bytes1(hosts);
  std::vector<uint64_t> frames0(hosts), frames1(hosts), recs0(hosts), recs1(hosts);
  std::vector<uint64_t> cmsgs0(hosts), cmsgs1(hosts), crecs0(hosts), crecs1(hosts);

  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < g_rounds; ++r) {
      // Read phase: every array's copyset grows to all hosts.
      for (int a = 0; a < arrays; ++a) {
        volatile int sink = ptrs[a][0];
        (void)sink;
      }
      node.Barrier();
      {
        const HostCounters c = node.counters();
        msgs0[host] = c.messages_sent;
        bytes0[host] = c.bytes_sent;
        frames0[host] = c.batch_frames_sent;
        recs0[host] = c.batch_records_sent;
        cmsgs0[host] = c.coalesced_msgs_sent;
        crecs0[host] = c.coalesced_records;
        if (r == 0) {
          msgs1[host] = bytes1[host] = frames1[host] = recs1[host] = 0;
          cmsgs1[host] = crecs1[host] = 0;
        }
      }
      node.Barrier();
      // Write burst: every host invalidates the full copyset of its two
      // arrays, concurrently with every other host's burst.
      for (int a = ArraysPerHost(hosts) * host; a < ArraysPerHost(hosts) * (host + 1); ++a) {
        ptrs[a][0] = ptrs[a][0] + r + 1;
      }
      node.Barrier();
      {
        const HostCounters c = node.counters();
        msgs1[host] += c.messages_sent - msgs0[host];
        bytes1[host] += c.bytes_sent - bytes0[host];
        frames1[host] += c.batch_frames_sent - frames0[host];
        recs1[host] += c.batch_records_sent - recs0[host];
        cmsgs1[host] += c.coalesced_msgs_sent - cmsgs0[host];
        crecs1[host] += c.coalesced_records - crecs0[host];
      }
      node.Barrier();
    }
  });

  BatchingResult out;
  out.wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  out.write_ops = static_cast<uint64_t>(g_rounds) * static_cast<uint64_t>(arrays);
  for (uint16_t h = 0; h < hosts; ++h) {
    out.write_msgs += msgs1[h];
    out.write_bytes += bytes1[h];
    out.batch_frames += frames1[h];
    out.batch_records += recs1[h];
    out.inv_msgs += cmsgs1[h];
    out.inv_records += crecs1[h];
  }
  return out;
}

void Report(BenchReporter& reporter, uint16_t hosts, ManagerPolicy policy, bool batch,
            double* msgs_per_op_out, double* inv_msgs_per_op_out) {
  const BatchingResult r = RunBatching(hosts, policy, batch);
  const char* policy_name = policy == ManagerPolicy::kSharded ? "sharded" : "centralized";
  const double msgs_per_op =
      static_cast<double>(r.write_msgs) / static_cast<double>(r.write_ops);
  const double bytes_per_op =
      static_cast<double>(r.write_bytes) / static_cast<double>(r.write_ops);
  const double inv_msgs_per_op =
      static_cast<double>(r.inv_msgs) / static_cast<double>(r.write_ops);
  const double recs_per_frame =
      r.batch_frames > 0
          ? static_cast<double>(r.batch_records) / static_cast<double>(r.batch_frames)
          : 0.0;
  std::printf("  %-8u %-12s %-8s %9.1f %10.2f %11.0f %11.2f %8lu %9lu %11.2f\n", hosts,
              policy_name, batch ? "on" : "off", r.wall_ms, msgs_per_op, bytes_per_op,
              inv_msgs_per_op, static_cast<unsigned long>(r.batch_frames),
              static_cast<unsigned long>(r.batch_records), recs_per_frame);
  BenchResult row;
  row.name = "write_invalidation_round";
  row.params = "hosts=" + std::to_string(hosts) + " policy=" + policy_name +
               " batch=" + (batch ? std::string("on") : std::string("off"));
  row.iterations = r.write_ops;
  row.ns_per_op = r.wall_ms * 1e6 / static_cast<double>(r.write_ops);
  row.values["msgs_per_op"] = msgs_per_op;
  row.values["bytes_per_op"] = bytes_per_op;
  row.values["batch_frames"] = static_cast<double>(r.batch_frames);
  row.values["batch_records"] = static_cast<double>(r.batch_records);
  row.values["records_per_frame"] = recs_per_frame;
  row.values["inv_msgs_per_op"] = inv_msgs_per_op;
  row.values["inv_records_per_op"] =
      static_cast<double>(r.inv_records) / static_cast<double>(r.write_ops);
  row.values["fanout"] = hosts - 1;
  reporter.Add(std::move(row));
  if (msgs_per_op_out != nullptr) {
    *msgs_per_op_out = msgs_per_op;
  }
  if (inv_msgs_per_op_out != nullptr) {
    *inv_msgs_per_op_out = inv_msgs_per_op;
  }
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_protocol_batching", env);
  g_rounds = env.Scaled(30, 5);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Coherence batching: datagrams per write-invalidation round");
  std::printf("  %-8s %-12s %-8s %9s %10s %11s %11s %8s %9s %11s\n", "hosts",
              "policy", "batch", "wall ms", "msgs/op", "bytes/op", "inv msgs/op",
              "frames", "records", "recs/frame");
  const uint16_t hosts = env.smoke() ? 6 : 10;  // fan-out 5 (smoke) / 9 (full)
  for (const ManagerPolicy policy :
       {ManagerPolicy::kCentralized, ManagerPolicy::kSharded}) {
    double on = 0, off = 0, inv_on = 0, inv_off = 0;
    Report(reporter, hosts, policy, /*batch=*/true, &on, &inv_on);
    Report(reporter, hosts, policy, /*batch=*/false, &off, &inv_off);
    if (on > 0 && inv_on > 0) {
      std::printf(
          "  %-8s %-12s datagram reduction: %.2fx fewer msgs/op end-to-end, "
          "%.2fx on the invalidation round\n",
          "", policy == ManagerPolicy::kSharded ? "sharded" : "centralized",
          off / on, inv_off / inv_on);
    }
  }
  return reporter.Finish();
}
