// CI perf-smoke driver: runs every bench binary at tiny sizes (--smoke),
// collects each one's --bench_json output, and merges them into one
// BENCH.json document:
//   {"schema":"millipage-bench-v1","smoke":true,"benches":[<per-binary docs>]}
// Exits nonzero if any binary is missing, fails, or emits malformed output —
// this is the gate that keeps the bench harness itself from rotting.
// Deeper validation (real JSON parse, baseline comparison) happens in
// ci/check_bench.py.

#include <limits.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

// Every bench target. bench_smoke refuses to pass if one is absent, so a new
// bench that forgets to register here (or a renamed one) fails CI loudly
// instead of silently dropping out of the report.
const char* const kBenchBinaries[] = {
    "bench_table1_basic_costs",
    "bench_sec42_dsm_costs",
    "bench_fig5_multiview_overhead",
    "bench_table2_applications",
    "bench_fig6_speedups",
    "bench_fig7_chunking",
    "bench_ablation_ack",
    "bench_contention_sharding",
    "bench_ablation_service",
    "bench_ablation_granularity",
    "bench_ext_lrc",
    "bench_ext_composed_views",
    "bench_epoch",
    "bench_protocol_batching",
    "bench_fault_service",
    "bench_transport",
    "bench_micro_primitives",
};

std::string SelfDir() {
  char buf[PATH_MAX];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) {
    return ".";
  }
  buf[n] = '\0';
  char* slash = std::strrchr(buf, '/');
  if (slash == nullptr) {
    return ".";
  }
  *slash = '\0';
  return buf;
}

bool ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char buf[4096];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, n);
  }
  std::fclose(f);
  return true;
}

void TrimTrailingWhitespace(std::string* s) {
  while (!s->empty() && (s->back() == '\n' || s->back() == '\r' || s->back() == ' ')) {
    s->pop_back();
  }
}

// Cheap structural check: the per-binary document must be a single brace-
// balanced object carrying the expected top-level keys. (check_bench.py
// re-parses the merged file with a real JSON parser.)
bool LooksLikeBenchDoc(const std::string& doc) {
  if (doc.empty() || doc.front() != '{' || doc.back() != '}') {
    return false;
  }
  if (doc.find("\"bench\":") == std::string::npos ||
      doc.find("\"results\":") == std::string::npos) {
    return false;
  }
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : doc) {
    if (escaped) {
      escaped = false;
    } else if (c == '\\') {
      escaped = true;
    } else if (c == '"') {
      in_string = !in_string;
    } else if (!in_string) {
      depth += c == '{' ? 1 : c == '}' ? -1 : 0;
      if (depth < 0) {
        return false;
      }
    }
  }
  return depth == 0 && !in_string;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path = "BENCH.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bench_json=", 13) == 0) {
      out_path = argv[i] + 13;
    }
  }
  const std::string dir = SelfDir();
  const std::string tmp = out_path + ".part";

  std::string merged = "{\"schema\":\"millipage-bench-v1\",\"smoke\":true,\"benches\":[";
  int failures = 0;
  bool first = true;
  for (const char* name : kBenchBinaries) {
    const std::string bin = dir + "/" + name;
    if (::access(bin.c_str(), X_OK) != 0) {
      std::fprintf(stderr, "bench_smoke: missing binary %s\n", bin.c_str());
      failures++;
      continue;
    }
    std::fprintf(stderr, "bench_smoke: running %s\n", name);
    std::remove(tmp.c_str());
    const std::string cmd = bin + " --smoke --bench_json=" + tmp;
    const int rc = std::system(cmd.c_str());
    if (rc != 0) {
      std::fprintf(stderr, "bench_smoke: %s exited with status %d\n", name, rc);
      failures++;
      continue;
    }
    std::string doc;
    if (!ReadFile(tmp, &doc)) {
      std::fprintf(stderr, "bench_smoke: %s wrote no JSON output\n", name);
      failures++;
      continue;
    }
    TrimTrailingWhitespace(&doc);
    if (!LooksLikeBenchDoc(doc)) {
      std::fprintf(stderr, "bench_smoke: %s emitted malformed JSON\n", name);
      failures++;
      continue;
    }
    if (!first) {
      merged.push_back(',');
    }
    first = false;
    merged += doc;
  }
  std::remove(tmp.c_str());
  merged += "]}";

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_smoke: cannot open %s\n", out_path.c_str());
    return 1;
  }
  const bool wrote = std::fwrite(merged.data(), 1, merged.size(), f) == merged.size() &&
                     std::fputc('\n', f) != EOF;
  if (std::fclose(f) != 0 || !wrote) {
    std::fprintf(stderr, "bench_smoke: short write to %s\n", out_path.c_str());
    return 1;
  }
  if (failures > 0) {
    std::fprintf(stderr, "bench_smoke: %d of %zu benches failed\n", failures,
                 sizeof(kBenchBinaries) / sizeof(kBenchBinaries[0]));
    return 1;
  }
  std::fprintf(stderr, "bench_smoke: all %zu benches OK -> %s\n",
               sizeof(kBenchBinaries) / sizeof(kBenchBinaries[0]), out_path.c_str());
  return 0;
}
