// Unit tests for the named-failpoint registry: spec grammar, hit semantics
// (skip/times/prob), determinism of probabilistic schedules, and the RAII
// scope helper.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "src/common/failpoint.h"

namespace millipage {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().ClearAll(); }
  void TearDown() override { FailpointRegistry::Instance().ClearAll(); }
};

TEST_F(FailpointTest, UnarmedPointNeverFires) {
  auto& fp = FailpointRegistry::Instance();
  EXPECT_FALSE(fp.Eval("nobody.armed.this").has_value());
  EXPECT_FALSE(fp.Fire("nobody.armed.this").has_value());
}

TEST_F(FailpointTest, ReturnCarriesArg) {
  auto& fp = FailpointRegistry::Instance();
  FailpointAction a;
  a.kind = FailpointAction::Kind::kReturn;
  a.arg = 42;
  fp.Set("t.ret", a);
  const auto hit = fp.Fire("t.ret");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, 42);
  fp.Clear("t.ret");
  EXPECT_FALSE(fp.Fire("t.ret").has_value());
}

TEST_F(FailpointTest, ConfigureSpecGrammar) {
  auto& fp = FailpointRegistry::Instance();
  ASSERT_TRUE(fp.Configure("a=return(7),times=2;b=delay(5);c=print;d=off").ok());
  const auto a1 = fp.Fire("a");
  ASSERT_TRUE(a1.has_value());
  EXPECT_EQ(*a1, 7);
  ASSERT_TRUE(fp.Fire("a").has_value());
  EXPECT_FALSE(fp.Fire("a").has_value());  // times=2 exhausted
  // delay fires (Fire applies the sleep in place, returns nothing to branch on).
  EXPECT_FALSE(fp.Fire("b").has_value());
  EXPECT_EQ(fp.hits("b"), 1u);
  EXPECT_FALSE(fp.Fire("d").has_value());  // off never fires
  EXPECT_FALSE(fp.Configure("broken spec without equals").ok());
  EXPECT_FALSE(fp.Configure("x=explode").ok());            // unknown action
  EXPECT_FALSE(fp.Configure("x=return,prob=2.0").ok());    // prob out of range
  EXPECT_FALSE(fp.Configure("x=return,wibble=1").ok());    // unknown modifier
}

TEST_F(FailpointTest, SkipPassesFirstEvaluations) {
  auto& fp = FailpointRegistry::Instance();
  ASSERT_TRUE(fp.Configure("t.skip=return(1),skip=3,times=1").ok());
  EXPECT_FALSE(fp.Fire("t.skip").has_value());
  EXPECT_FALSE(fp.Fire("t.skip").has_value());
  EXPECT_FALSE(fp.Fire("t.skip").has_value());
  EXPECT_TRUE(fp.Fire("t.skip").has_value());   // 4th evaluation fires
  EXPECT_FALSE(fp.Fire("t.skip").has_value());  // one-shot
  EXPECT_EQ(fp.evals("t.skip"), 5u);
  EXPECT_EQ(fp.hits("t.skip"), 1u);
}

TEST_F(FailpointTest, ProbabilisticScheduleIsDeterministic) {
  auto& fp = FailpointRegistry::Instance();
  const auto run_schedule = [&fp](uint64_t seed) {
    fp.ClearAll();
    fp.SetSeed(seed);
    EXPECT_TRUE(fp.Configure("t.prob=return,prob=0.5").ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(fp.Eval("t.prob").has_value());
    }
    return fired;
  };
  const std::vector<bool> a = run_schedule(1234);
  const std::vector<bool> b = run_schedule(1234);
  EXPECT_EQ(a, b) << "same spec + seed must reproduce the same schedule";
  // Sanity: with prob=0.5 over 200 draws, both branches must appear.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

TEST_F(FailpointTest, ScopeArmsAndClears) {
  auto& fp = FailpointRegistry::Instance();
  FailpointAction a;
  a.kind = FailpointAction::Kind::kReturn;
  {
    FailpointScope scope("t.scoped", a);
    EXPECT_TRUE(fp.Fire("t.scoped").has_value());
  }
  EXPECT_FALSE(fp.Fire("t.scoped").has_value());
}

}  // namespace
}  // namespace millipage
