// Dynamic minipage layout (Section 2.3): every shared allocation defines its
// own minipage and is associated with an application view such that no two
// minipages overlapping the same vpage share a view. Supports:
//
//  * chunking (Section 4.4): aggregate `chunking_level` consecutive
//    allocations into one larger minipage, trading false sharing for fewer
//    protocol invocations;
//  * page-based baseline mode ("none" in Figure 7 / Ivy-style): allocations
//    are packed disregarding minipage boundaries and the sharing unit is the
//    full page, reproducing classic false sharing.

#ifndef SRC_MULTIVIEW_ALLOCATOR_H_
#define SRC_MULTIVIEW_ALLOCATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/multiview/minipage.h"

namespace millipage {

struct AllocatorOptions {
  uint32_t chunking_level = 1;  // allocations aggregated per minipage
  bool page_based = false;      // baseline: full-page sharing units
  uint64_t alignment = 8;       // byte alignment of returned offsets
};

struct Allocation {
  uint64_t offset = 0;  // byte offset within the memory object
  uint64_t size = 0;    // requested size
  uint32_t view = 0;    // associated view of the first minipage
  std::vector<MinipageId> minipages;  // minipages the allocation occupies
};

class MinipageAllocator {
 public:
  // `num_views` bounds the number of minipages that may overlap one vpage.
  MinipageAllocator(MinipageTable* mpt, uint64_t object_size, uint32_t num_views,
                    AllocatorOptions options = {});

  Result<Allocation> Allocate(uint64_t size);

  // Ends the currently open chunk so the next allocation starts a fresh
  // minipage (callers group logically-related allocations).
  void CloseChunk();

  uint64_t bytes_allocated() const { return cursor_; }
  uint64_t object_size() const { return object_size_; }

 private:
  Result<Allocation> AllocateFineGrain(uint64_t size);
  Result<Allocation> AllocatePageBased(uint64_t size);

  // Marks view `v` used on vpages [first, last]; grows the mask table.
  void MarkVpages(uint64_t first, uint64_t last, uint32_t v);
  // Returns a view free on all of [first, last], or -1.
  int FindFreeView(uint64_t first, uint64_t last);

  MinipageTable* mpt_;
  const uint64_t object_size_;
  const uint32_t num_views_;
  const AllocatorOptions options_;

  uint64_t cursor_ = 0;

  // Open chunk state (fine-grain mode, chunking_level > 1).
  MinipageId chunk_minipage_ = kInvalidMinipage;
  uint32_t chunk_members_ = 0;
  uint32_t chunk_view_ = 0;

  // Per-vpage bitmask of views already hosting a minipage (<= 64 views).
  std::vector<uint64_t> vpage_views_;

  // Page-based mode: id of the page-sized minipage for each vpage, created
  // lazily as allocations touch pages.
  std::vector<MinipageId> page_minipage_;
};

}  // namespace millipage

#endif  // SRC_MULTIVIEW_ALLOCATOR_H_
