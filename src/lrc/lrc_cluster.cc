#include "src/lrc/lrc_cluster.h"

#include <algorithm>
#include <thread>

#include "src/common/logging.h"
#include "src/os/fault_handler.h"

namespace millipage {

namespace {
thread_local LrcNode* tls_current_lrc = nullptr;
}  // namespace

void SetCurrentLrcNode(LrcNode* node) { tls_current_lrc = node; }

LrcNode* CurrentLrcNode() {
  MP_CHECK(tls_current_lrc != nullptr) << "no LRC host bound to this thread";
  return tls_current_lrc;
}

Result<std::unique_ptr<LrcCluster>> LrcCluster::Create(const DsmConfig& config) {
  auto cluster = std::unique_ptr<LrcCluster>(new LrcCluster(config));
  cluster->transport_ = std::make_unique<InProcTransport>(config.num_hosts);
  for (uint16_t h = 0; h < config.num_hosts; ++h) {
    MP_ASSIGN_OR_RETURN(std::unique_ptr<LrcNode> node,
                        LrcNode::Create(config, h, cluster->transport_.get()));
    cluster->nodes_.push_back(std::move(node));
  }
  for (auto& node : cluster->nodes_) {
    ViewSet& vs = node->views();
    for (uint32_t v = 0; v < vs.num_app_views(); ++v) {
      cluster->regions_.push_back(Region{reinterpret_cast<uintptr_t>(vs.app_base(v)),
                                         vs.object_size(), node.get(), v});
    }
  }
  std::sort(cluster->regions_.begin(), cluster->regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });
  MP_RETURN_IF_ERROR(FaultHandler::Instance().Install());
  cluster->fault_slot_ = FaultHandler::Instance().Register(&FaultTrampoline, cluster.get());
  if (cluster->fault_slot_ < 0) {
    return Status::Exhausted("no free fault-handler slots");
  }
  for (auto& node : cluster->nodes_) {
    node->Start();
  }
  return cluster;
}

LrcCluster::~LrcCluster() {
  for (auto& node : nodes_) {
    node->Stop();
  }
  if (fault_slot_ >= 0) {
    FaultHandler::Instance().Unregister(fault_slot_);
  }
}

bool LrcCluster::FaultTrampoline(void* ctx, void* addr, bool is_write) {
  return static_cast<LrcCluster*>(ctx)->DispatchFault(addr, is_write);
}

bool LrcCluster::DispatchFault(void* addr, bool is_write) {
  const auto a = reinterpret_cast<uintptr_t>(addr);
  size_t lo = 0;
  size_t hi = regions_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (regions_[mid].base <= a) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    return false;
  }
  const Region& r = regions_[lo - 1];
  if (a >= r.base + r.len) {
    return false;
  }
  return r.node->OnFault(r.view, a - r.base, is_write);
}

void LrcCluster::RunParallel(const std::function<void(LrcNode&, HostId)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(config_.num_hosts);
  for (uint16_t h = 0; h < config_.num_hosts; ++h) {
    threads.emplace_back([this, &fn, h] {
      SetCurrentLrcNode(nodes_[h].get());
      fn(*nodes_[h], h);
      SetCurrentLrcNode(nullptr);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

void LrcCluster::RunOnManager(const std::function<void(LrcNode&)>& fn) {
  LrcNode* prev = tls_current_lrc;
  SetCurrentLrcNode(nodes_[kManagerHost].get());
  fn(*nodes_[kManagerHost]);
  SetCurrentLrcNode(prev);
}

LrcCounters LrcCluster::TotalCounters() const {
  LrcCounters total;
  for (const auto& node : nodes_) {
    const LrcCounters c = node->counters();
    total.read_faults += c.read_faults;
    total.write_faults += c.write_faults;
    total.fetches += c.fetches;
    total.fetch_bytes += c.fetch_bytes;
    total.local_upgrades += c.local_upgrades;
    total.twins_created += c.twins_created;
    total.diffs_flushed += c.diffs_flushed;
    total.diff_bytes += c.diff_bytes;
    total.diffs_applied += c.diffs_applied;
    total.invalidation_sweeps += c.invalidation_sweeps;
    total.messages_sent += c.messages_sent;
    total.barriers += c.barriers;
    total.lock_acquires += c.lock_acquires;
  }
  return total;
}

}  // namespace millipage
