#include "src/dsm/cluster.h"

#include <algorithm>
#include <thread>

#include "src/common/logging.h"
#include "src/os/fault_handler.h"

namespace millipage {

namespace {
thread_local DsmNode* tls_current_node = nullptr;
}  // namespace

void SetCurrentNode(DsmNode* node) { tls_current_node = node; }

DsmNode* CurrentNode() {
  MP_CHECK(tls_current_node != nullptr)
      << "no DSM host bound to this thread (use RunParallel/RunOnManager)";
  return tls_current_node;
}

Result<std::unique_ptr<DsmCluster>> DsmCluster::Create(const DsmConfig& config) {
  auto cluster = std::unique_ptr<DsmCluster>(new DsmCluster(config));
  // Install the fault backend BEFORE creating any node: each node's ViewSet
  // wires its views to whichever backend is active at creation time (and
  // Install falls back to sigsegv when userfaultfd is unsupported).
  MP_RETURN_IF_ERROR(FaultHandler::Instance().Install(config.fault_backend));
  if (config.fault_backend == FaultBackend::kUserfaultfd &&
      FaultHandler::Instance().active_backend() != FaultBackend::kUserfaultfd) {
    MP_LOG(Error) << "userfaultfd backend unavailable; falling back to sigsegv";
  }
  cluster->transport_ = std::make_unique<InProcTransport>(config.num_hosts);
  cluster->nodes_.reserve(config.num_hosts);
  for (uint16_t h = 0; h < config.num_hosts; ++h) {
    MP_ASSIGN_OR_RETURN(std::unique_ptr<DsmNode> node,
                        DsmNode::Create(config, h, cluster->transport_.get()));
    cluster->nodes_.push_back(std::move(node));
  }
  // Build the immutable fault-region index over every application view of
  // every host.
  for (auto& node : cluster->nodes_) {
    ViewSet& vs = node->views();
    for (uint32_t v = 0; v < vs.num_app_views(); ++v) {
      Region r;
      r.base = reinterpret_cast<uintptr_t>(vs.app_base(v));
      r.len = vs.object_size();
      r.node = node.get();
      r.view = v;
      cluster->regions_.push_back(r);
    }
  }
  std::sort(cluster->regions_.begin(), cluster->regions_.end(),
            [](const Region& a, const Region& b) { return a.base < b.base; });

  cluster->fault_slot_ = FaultHandler::Instance().Register(&FaultTrampoline, cluster.get());
  if (cluster->fault_slot_ < 0) {
    return Status::Exhausted("no free fault-handler slots");
  }
  for (auto& node : cluster->nodes_) {
    node->Start();
  }
  return cluster;
}

DsmCluster::~DsmCluster() {
  for (auto& node : nodes_) {
    node->Stop();
  }
  if (fault_slot_ >= 0) {
    FaultHandler::Instance().Unregister(fault_slot_);
  }
}

bool DsmCluster::FaultTrampoline(void* ctx, void* addr, bool is_write) {
  return static_cast<DsmCluster*>(ctx)->DispatchFault(addr, is_write);
}

bool DsmCluster::DispatchFault(void* addr, bool is_write) {
  const auto a = reinterpret_cast<uintptr_t>(addr);
  // Binary search over sorted, non-overlapping regions.
  size_t lo = 0;
  size_t hi = regions_.size();
  while (lo < hi) {
    const size_t mid = (lo + hi) / 2;
    if (regions_[mid].base <= a) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo == 0) {
    fprintf(stderr, "[millipage] fault %p below all %zu regions (first base %p)\n", addr,
            regions_.size(), reinterpret_cast<void*>(regions_.empty() ? 0 : regions_[0].base));
    return false;
  }
  const Region& r = regions_[lo - 1];
  if (a >= r.base + r.len) {
    fprintf(stderr,
            "[millipage] fault %p in gap after region base %p len %zx (host %u view %u)\n",
            addr, reinterpret_cast<void*>(r.base), r.len, r.node->id(), r.view);
    return false;
  }
  return r.node->OnFault(r.view, a - r.base, is_write);
}

void DsmCluster::RunParallel(const std::function<void(DsmNode&, HostId)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(config_.num_hosts);
  for (uint16_t h = 0; h < config_.num_hosts; ++h) {
    threads.emplace_back([this, &fn, h] {
      SetCurrentNode(nodes_[h].get());
      fn(*nodes_[h], h);
      SetCurrentNode(nullptr);
    });
  }
  for (auto& t : threads) {
    t.join();
  }
}

void DsmCluster::RunOnManager(const std::function<void(DsmNode&)>& fn) {
  DsmNode* prev = tls_current_node;
  SetCurrentNode(nodes_[kManagerHost].get());
  fn(*nodes_[kManagerHost]);
  SetCurrentNode(prev);
}

HostCounters DsmCluster::TotalCounters() const {
  HostCounters total;
  for (const auto& node : nodes_) {
    total += node->counters();
  }
  return total;
}

ManagerCounters DsmCluster::TotalManagerCounters() const {
  ManagerCounters total;
  for (const auto& node : nodes_) {
    if (node->directory() != nullptr) {
      total += node->directory()->counters();
    }
  }
  return total;
}

MetricsSnapshot DsmCluster::SnapshotMetrics() const {
  MetricsSnapshot total;
  for (const auto& node : nodes_) {
    total.Merge(node->SnapshotMetrics());
  }
  total.Merge(MetricsRegistry::Global().Snapshot());
  return total;
}

}  // namespace millipage
