file(REMOVE_RECURSE
  "CMakeFiles/mp_apps.dir/app.cc.o"
  "CMakeFiles/mp_apps.dir/app.cc.o.d"
  "CMakeFiles/mp_apps.dir/is.cc.o"
  "CMakeFiles/mp_apps.dir/is.cc.o.d"
  "CMakeFiles/mp_apps.dir/lu.cc.o"
  "CMakeFiles/mp_apps.dir/lu.cc.o.d"
  "CMakeFiles/mp_apps.dir/sor.cc.o"
  "CMakeFiles/mp_apps.dir/sor.cc.o.d"
  "CMakeFiles/mp_apps.dir/tsp.cc.o"
  "CMakeFiles/mp_apps.dir/tsp.cc.o.d"
  "CMakeFiles/mp_apps.dir/water.cc.o"
  "CMakeFiles/mp_apps.dir/water.cc.o.d"
  "libmp_apps.a"
  "libmp_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
