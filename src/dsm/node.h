// DsmNode: one millipage host. Owns the host's memory object and views, the
// SW/MR sequential-consistency protocol endpoint, the DSM server thread, and
// the manager role. The manager role is really two roles:
//   * translation (MPT + allocator) — always on host 0 (kManagerHost), the
//     only host that can map a faulting address to a minipage id;
//   * per-id service (directory entry, lock queue, barrier) — on host 0 when
//     ManagerPolicy::kCentralized, or on ManagerOf(id) when kSharded, in
//     which case every host runs a directory shard and untranslated requests
//     take one extra header hop: host 0 translates, then routes the request
//     to the owning shard, which serves it (from its own privileged view,
//     zero-copy, when it also holds a replica).
//
// The protocol is the paper's Figure 3, message for message:
//   * faults send a 32-byte request to the manager and block on an event;
//   * the manager translates (MPT lookup), updates the copyset, and forwards;
//   * serving hosts adjust their own vpage protection and send the minipage
//     contents directly from the privileged view (no buffering, no lookup);
//   * the requester's server thread receives the data straight into the
//     privileged view, raises protection, and wakes the faulting thread;
//   * the faulting thread posts an ACK to the manager, which serializes
//     per-minipage service and makes non-manager queueing unnecessary.

#ifndef SRC_DSM_NODE_H_
#define SRC_DSM_NODE_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "src/common/host_set.h"
#include "src/common/logging.h"
#include "src/common/metrics.h"
#include "src/common/stats.h"
#include "src/common/trace.h"
#include "src/dsm/config.h"
#include "src/dsm/directory.h"
#include "src/dsm/wait_slots.h"
#include "src/multiview/allocator.h"
#include "src/multiview/minipage.h"
#include "src/multiview/view_set.h"
#include "src/net/transport.h"

namespace millipage {

class DsmNode {
 public:
  // `transport` must outlive the node and already know all hosts.
  static Result<std::unique_ptr<DsmNode>> Create(const DsmConfig& config, HostId me,
                                                 Transport* transport);
  ~DsmNode();

  DsmNode(const DsmNode&) = delete;
  DsmNode& operator=(const DsmNode&) = delete;

  void Start();  // launches the DSM server thread
  void Stop();   // stops and joins it

  // ---- Deterministic-simulation surface ---------------------------------
  // An externally-driven alternative to Start(): the simulator delivers
  // exactly one pending message (non-blocking poll + dispatch) per call, so
  // a scheduler owns the complete delivery order. Never mix with Start().
  // Returns true if a message was handled.
  bool PumpOne();

  // True while the thread owning `slot` is parked inside WaitFor with no
  // reply available — i.e. it cannot make progress until a message is
  // delivered. The simulator's quiescence test.
  bool WaiterBlocked(uint32_t slot) const { return slots_.WaiterBlocked(slot); }

  // Fails every blocked waiter with `why` (deadlock diagnosis path).
  void AbortWaiters(const Status& why) { slots_.AbortAll(why); }

  HostId id() const { return me_; }
  uint16_t num_hosts() const { return config_.num_hosts; }
  // True for the MPT/allocator host (host 0), which also translates and
  // routes every untranslated request.
  bool is_manager() const { return me_ == kManagerHost; }
  // True when this host's shard serves directory/lock state for `id` under
  // the current membership (live-aware: adopted ids count after a failover).
  bool OwnsShard(uint32_t id) const {
    return config_.ManagerOfLive(id, live_set()) == me_;
  }
  const DsmConfig& config() const { return config_; }
  ViewSet& views() { return *views_; }

  // ---- Application API -------------------------------------------------

  // Allocates `size` bytes of shared memory (manager-coordinated). The
  // returned canonical address is valid on every host.
  Result<GlobalAddr> SharedMalloc(uint64_t size);

  // Ends the open aggregation chunk (Section 4.4) so the next allocation
  // starts a new minipage.
  void CloseChunk();

  // Local pointer for a canonical address on this host.
  std::byte* AppPtr(GlobalAddr a) const {
    MP_CHECK(a.view < views_->num_app_views() && a.offset < views_->object_size())
        << "bad canonical address view=" << a.view << " offset=" << a.offset;
    return views_->AppAddr(a.view, a.offset);
  }

  void Barrier();
  void Lock(uint32_t lock_id);
  void Unlock(uint32_t lock_id);

  // Liveness-aware variants: bounded by config().sync_timeout_ms, they
  // return a diagnostic Status (kDeadlineExceeded / kUnavailable) instead of
  // hanging when a reply is lost or a peer is down. The void wrappers above
  // fail fatally on the same conditions — loud, never wedged.
  Status TryBarrier();
  Status TryLock(uint32_t lock_id);

  // Cooperative teardown: once the application has passed its final barrier,
  // peers exiting (connection EOFs) is expected — suppress the peer-down
  // abort so normal shutdown is quiet.
  void BeginShutdown() { draining_.store(true, std::memory_order_release); }

  // Non-OK once a peer died or liveness gave up; all subsequent blocking
  // operations on this node fail fast with this status.
  Status health() const { return slots_.aborted() ? slots_.abort_status() : Status::Ok(); }

  // Asynchronous read prefetch of the minipage containing `a` (Section 4.3.1,
  // the LU prefetch calls). No-op if a copy is already present.
  void Prefetch(GlobalAddr a);

  // Composed-view coarse read (Section 5, "Composed-Views"): fetches read
  // copies of every minipage containing one of `addrs` as one batched,
  // split-transaction operation — all requests are issued before any reply
  // is awaited, so the fetch latencies pipeline instead of serializing as
  // they would through individual faults. After the call the group is
  // readable at fine granularity; writes still operate per minipage.
  // Returns the number of minipages actually fetched.
  size_t FetchGroup(const GlobalAddr* addrs, size_t count);

  // Pushes readable copies of the minipage containing `a` to all hosts (the
  // TSP best-tour update). Fire-and-forget; serialized at the manager.
  void PushToAll(GlobalAddr a);

  // Deterministic compute proxy reported by applications (priced by the
  // cost model when reproducing Figure 6/7).
  void AddWorkUnits(uint64_t n);

  // ---- Fault path --------------------------------------------------------

  // Full fault service; called from the SIGSEGV handler on the faulting
  // thread. Returns true when the access may be retried.
  bool OnFault(uint32_t view, uint64_t offset, bool is_write);

  // Status-returning core of OnFault. The deterministic simulator calls it
  // directly so a permanently lost minipage (sole copy died with its host)
  // surfaces as a per-access kNotFound error instead of a SIGSEGV.
  Status FaultService(uint32_t view, uint64_t offset, bool is_write);

  // ---- Membership / recovery ---------------------------------------------

  // Monotonically increasing membership epoch. Every datagram is stamped
  // with it (high bits of the wire `from` field); pre-death traffic from a
  // host later declared dead is discarded like a stale generation.
  uint32_t member_epoch() const { return membership().epoch; }
  // Hosts this node has declared dead (cumulative) / their complement. The
  // returned references point into an immutable membership snapshot retained
  // for the node's lifetime, so they stay valid across concurrent bumps
  // (readers may just observe a superseded snapshot).
  const HostSet& dead_set() const { return membership().dead; }
  const HostSet& live_set() const { return membership().live; }
  // Legacy mask accessors (hosts 0..63 only) for diagnostics and tests.
  uint64_t dead_mask() const { return dead_set().LowWord(); }
  uint64_t live_mask() const { return live_set().LowWord(); }
  // True when a peer death is answered with epoch-bump recovery instead of
  // the sticky whole-cluster abort: sharded directory, recovery enabled. A
  // dead host 0 is always unrecoverable (it owns the MPT and allocator).
  bool RecoveryEnabled() const {
    return config_.recover_on_host_death &&
           config_.manager_policy == ManagerPolicy::kSharded;
  }
  // Marks `peer` for recovery processing (the simulator's injection point;
  // the threaded path arrives through the transport's peer-down callback).
  void InjectPeerDeath(HostId peer) {
    std::lock_guard<std::mutex> lock(pending_death_mu_);
    pending_deaths_.Add(peer);
    has_pending_deaths_.store(true, std::memory_order_release);
  }
  // Executes any pending host-death recovery: bumps the membership epoch,
  // broadcasts it, repairs the directory shard (copyset repair, shard
  // adoption, lock/barrier cleanup), and kicks parked waiters so they re-send
  // against the new membership. Runs on the server thread each loop
  // iteration; the simulator calls it directly between steps so recovery is
  // deterministic. Returns true if a death was processed.
  bool ProcessPendingDeaths();

  // Per-attempt reply deadline for idempotent-fetch attempt `attempt`
  // (0-based): request_timeout_ms * retry_backoff_base^attempt, capped at
  // retry_backoff_max_ms, with seeded ±retry_jitter_pct% jitter. Pure
  // function of (cfg, host, attempt) so a run's retry schedule is
  // reproducible; exposed for tests.
  static uint64_t RetryTimeoutMs(const DsmConfig& cfg, HostId host, uint32_t attempt);

  // Recovery counters (also exported as dsm.* in SnapshotMetrics).
  uint64_t epoch_bumps() const { return epoch_bumps_.load(std::memory_order_relaxed); }
  uint64_t shards_adopted() const { return shards_adopted_.load(std::memory_order_relaxed); }
  uint64_t copyset_repairs() const { return copyset_repairs_.load(std::memory_order_relaxed); }
  uint64_t minipages_lost() const { return minipages_lost_.load(std::memory_order_relaxed); }
  // True once this host has learned minipage `id` is permanently lost.
  bool IsLost(uint32_t id) const {
    std::lock_guard<std::mutex> lock(lost_mu_);
    return lost_minipages_.count(id) != 0;
  }

  // Registers the calling thread (assigns its wait slot). Implicit on first
  // use; exposed for tests.
  uint32_t ThreadSlot();

  // ---- Introspection -----------------------------------------------------

  HostCounters counters() const { return counters_; }
  std::vector<EpochRecord> epochs() const;
  HistogramSnapshot read_fault_latency() const { return read_fault_ns_->Snapshot(); }
  HistogramSnapshot write_fault_latency() const { return write_fault_ns_->Snapshot(); }
  uint64_t bounced_requests() const;
  uint64_t fault_retries() const { return fault_retries_.load(std::memory_order_relaxed); }
  // Idempotent requests re-sent after a reply deadline expired.
  uint64_t timeout_retries() const { return timeout_retries_.load(std::memory_order_relaxed); }
  // Late replies to abandoned attempts, discarded by generation check.
  uint64_t stale_replies() const { return stale_replies_.load(std::memory_order_relaxed); }
  // Bitmask of peers this node has observed down (hosts 0..63 only — use
  // peers_down_set() for the full set on large clusters).
  uint64_t peers_down() const {
    std::lock_guard<std::mutex> lock(peer_down_mu_);
    return peer_down_.LowWord();
  }
  HostSet peers_down_set() const {
    std::lock_guard<std::mutex> lock(peer_down_mu_);
    return peer_down_;
  }

  // One-line snapshot of liveness state (peers down, retry counts, manager
  // directory/barrier occupancy). Best-effort racy read, for diagnostics.
  std::string LivenessReport() const;

  // This node's metric registry (fault/sync latency histograms plus whatever
  // the node's ViewSet records). Register bench- or app-specific metrics
  // here for per-host attribution.
  MetricsRegistry& metrics() { return metrics_; }

  // Everything observable about this host under flat names: the registry's
  // histograms, HostCounters as host.*, liveness counters and manager-shard
  // counters as dsm.* / mgr.*. Merge snapshots across nodes (or feed
  // DumpJson) for cluster-wide views.
  MetricsSnapshot SnapshotMetrics() const;

  // This host's manager shard (null on non-manager hosts when centralized);
  // mpt/allocator are null everywhere but host 0.
  Directory* directory() { return directory_.get(); }
  const MinipageTable* mpt() const { return mpt_.get(); }
  const MinipageAllocator* allocator() const { return allocator_.get(); }

 private:
  DsmNode(const DsmConfig& config, HostId me, Transport* transport);

  // Server thread.
  void ServerLoop();
  PayloadSink MakeServerSink();
  void HandleMessage(const MsgHeader& h);
  // Post-epoch-gate dispatch: DispatchOne runs the per-type switch on a
  // single logical message; DispatchBatch unpacks a kFlagBatched frame from
  // batch_rx_ and dispatches its records in order.
  void DispatchOne(const MsgHeader& h);
  void DispatchBatch(const MsgHeader& h);

  // ---- Coherence-traffic coalescer (server thread only) ------------------
  // Queues `h` for `to` in a per-(destination, type) batch instead of sending
  // immediately; falls back to SendMsg when batching is disabled. Batches
  // drain via FlushCoalesced() — called whenever the server runs out of
  // immediately-deliverable messages, so coalescing never delays traffic
  // behind idle waiting.
  void SendCoalesced(HostId to, const MsgHeader& h);
  void FlushCoalesced();
  // Linger-policy flush (threaded server only): sends the batches that are
  // ripe — older than batch_linger_us or holding at least
  // batch_linger_min_records — and leaves young, small ones accumulating.
  // NextFlushDelayUs bounds the server's poll timeout so a lingering batch
  // is never left waiting past its deadline.
  void FlushRipeCoalesced(uint64_t now_ns);
  uint64_t NextFlushDelayUs(uint64_t now_ns) const;

  // Manager role.
  bool MgrTranslate(MsgHeader* h);
  // Host 0 only: translate an untranslated request and either serve it (own
  // shard) or hand the translated header to the owning shard.
  void MgrTranslateAndRoute(const MsgHeader& h);
  // Forwards a translated request to the serving replica. When this shard is
  // itself the replica (sharded mode), serves inline from the privileged
  // view instead of bouncing the header through the transport.
  void ForwardToReplica(HostId target, const MsgHeader& fwd);
  void MgrStartService(MsgHeader h);
  void MgrProcess(const MsgHeader& h);
  void MgrProcessRead(const MsgHeader& h, DirEntry& e);
  void MgrProcessWrite(const MsgHeader& h, DirEntry& e);
  void MgrProcessPush(const MsgHeader& h, DirEntry& e);
  void MgrHandleBounced(const MsgHeader& h);
  void MgrFinishService(MinipageId id);
  void MgrHandleInvalidateReply(const MsgHeader& h);
  // Completes an invalidation round: forwards (or upgrades) the pending
  // write once every outstanding invalidation has been accounted for.
  void MgrFinishWriteRound(MinipageId id);
  void MgrHandleAck(const MsgHeader& h);
  void MgrHandleAlloc(const MsgHeader& h);
  void MgrHandleBarrierEnter(const MsgHeader& h);
  void MgrHandleLockAcquire(const MsgHeader& h);
  void MgrHandleLockRelease(const MsgHeader& h);

  // Serving side (any host).
  void ServeReadRequest(const MsgHeader& h);
  void ServeWriteRequest(const MsgHeader& h);
  void HandleInvalidateRequest(const MsgHeader& h);
  void HandleReply(const MsgHeader& h);
  void ApplyPush(const MsgHeader& h);
  void PusherBroadcast(const MsgHeader& h);
  // Returns the request to the manager when this host cannot serve it
  // (reachable only with the ACK disabled — the race the ACK prevents).
  void Bounce(MsgHeader h);

  Minipage MinipageFromHeader(const MsgHeader& h) const;
  // Server-side send: failures are logged and, for unreachable peers, turned
  // into a peer-down event; the server keeps serving the rest of the mesh.
  void SendMsg(HostId to, const MsgHeader& h, const void* payload = nullptr, size_t len = 0);
  // Application-side send: same handling, but the Status is propagated so
  // the blocking operation can fail instead of waiting for a reply that was
  // never sent.
  Status TrySendMsg(HostId to, const MsgHeader& h, const void* payload = nullptr,
                    size_t len = 0);

  // ---- Liveness machinery ------------------------------------------------

  // Starts a fresh attempt on `slot`: bumps the slot's generation so replies
  // to earlier attempts are recognizably stale.
  uint32_t NextGen(uint32_t slot) {
    return (slot_gen_[slot].fetch_add(1, std::memory_order_relaxed) + 1) & 0xffffffu;
  }

  // Waits for the reply tagged (slot, gen), discarding stale replies from
  // abandoned attempts (and ACKing discarded data replies so the manager
  // releases the minipage). timeout_ms = 0 waits forever.
  Result<MsgHeader> AwaitReply(uint32_t slot, uint32_t gen, uint64_t timeout_ms,
                               const char* what);

  // Peer-down event (from the transport or a send failure): schedules
  // recovery when the death is recoverable, otherwise aborts every
  // outstanding wait — unless the node is already draining at teardown.
  void OnPeerDown(HostId peer);

  // ---- Membership / recovery machinery (server thread unless noted) ------

  // Owning shard for `id` under the current live set.
  HostId LiveManagerOf(uint32_t id) const {
    return config_.ManagerOfLive(id, live_set());
  }
  // Merges (epoch, dead set) into local membership; on change, repairs the
  // directory for each newly dead host, kicks waiters, and drains deferred
  // messages. `broadcast` additionally announces the new membership to every
  // live peer (the detector path).
  void ApplyMembership(uint32_t epoch, const HostSet& dead, bool broadcast);
  void RepairAfterDeath(HostId dead);
  void DrainDeferred();
  // App-thread side of recovery: blocks (bounded by sync_timeout_ms) until
  // the membership epoch advances past `epoch_before`, so an operation whose
  // send failed against a dying peer can retry under the new membership.
  bool AwaitMembershipChange(uint32_t epoch_before);
  // Answers a request for a lost minipage with a kFlagAbort data reply.
  void ReplyLost(const MsgHeader& h);
  // Copyset rebuild for an adopted id (geometry travels in `h`).
  void StartCopysetRebuild(const MsgHeader& h);
  void FinishCopysetRebuild(MinipageId id);
  void HandleCopysetQuery(const MsgHeader& h);
  void MgrHandleCopysetReply(const MsgHeader& h);
  // Adopted-lock holder probe.
  bool LockNeedsProbe(uint32_t lock_id, const LockEntry& l) const;
  void StartLockProbe(uint32_t lock_id);
  void FinishLockProbe(uint32_t lock_id);
  void HandleLockProbe(const MsgHeader& h);
  void MgrHandleLockProbeReply(const MsgHeader& h);
  // Adopted-barrier generation probe: a shard that inherits the barrier asks
  // every live host how many rounds it has completed. Any host past round k
  // proves round k's quorum was met at the dead shard, so a straggler
  // re-sending round k can be released even if the released hosts have
  // finished their scripts and will never enter the barrier again.
  bool BarrierNeedsProbe() const;
  void StartBarrierProbe();
  void FinishBarrierProbe();
  void HandleBarrierProbe(const MsgHeader& h);
  void MgrHandleBarrierProbeReply(const MsgHeader& h);
  // Releases the barrier's oldest round once every live host has arrived.
  void MaybeReleaseBarrier();

  // Logs the liveness report and returns `cause` annotated with `op`.
  Status LivenessFailure(const char* op, const Status& cause);

  // History recorder hook; no-op when config_.trace is null.
  void Trace(TraceEventKind kind, uint32_t minipage, uint64_t addr, uint64_t arg1 = 0,
             uint64_t arg2 = 0) const {
    if (config_.trace != nullptr) {
      config_.trace->Emit(kind, me_, minipage, addr, arg1, arg2);
    }
  }

  const DsmConfig config_;
  // Wire host/epoch split for this cluster size (v0 ≤64 hosts, v1 above);
  // every datagram is stamped/stripped through it.
  const WireCodec codec_;
  const HostId me_;
  // Process-unique id keying per-thread wait-slot caches (never reused, so
  // a node allocated at a dead node's address cannot inherit its slots).
  const uint64_t uid_;
  Transport* const transport_;
  std::unique_ptr<ViewSet> views_;
  WaitSlots slots_;

  // mpt_/allocator_ exist only on host 0. directory_ is this host's manager
  // shard: host 0 only when centralized, every host when sharded.
  std::unique_ptr<MinipageTable> mpt_;
  std::unique_ptr<MinipageAllocator> allocator_;
  std::unique_ptr<Directory> directory_;

  // Host 0, server thread only: minipage ids whose first request has been
  // translated (= routed into service somewhere). A growing page-based chunk
  // can re-present an already-shared id at allocation time; when sharded,
  // host 0 cannot consult the remote shard's copyset, so this bit keeps
  // MgrHandleAlloc from re-opening local RW protection over shared data.
  std::vector<bool> mp_routed_;

  std::thread server_;
  std::atomic<bool> stop_{false};

  // In-flight fetch tracking, used only when read ACKs are elided: a fetch
  // whose minipage is invalidated mid-flight is poisoned and retried instead
  // of installing stale data. Indexed by wait slot.
  struct InflightFetch {
    std::atomic<uint64_t> addr{~0ULL};  // packed GlobalAddr, ~0 = none
    std::atomic<bool> poisoned{false};
  };
  InflightFetch inflight_[WaitSlots::kMaxSlots];
  std::atomic<uint64_t> fault_retries_{0};
  uint32_t replica_rotation_ = 0;  // manager server thread only

  // Liveness state. slot_gen_ is written by the slot-owning app thread and
  // read elsewhere only for diagnostics.
  std::atomic<uint32_t> slot_gen_[WaitSlots::kMaxSlots] = {};
  std::atomic<bool> draining_{false};
  mutable std::mutex peer_down_mu_;
  HostSet peer_down_;  // peers observed down (guarded by peer_down_mu_)
  std::atomic<uint64_t> timeout_retries_{0};
  std::atomic<uint64_t> stale_replies_{0};

  // Membership: (epoch, dead set, live set) published as an immutable
  // snapshot behind one atomic pointer, so app threads routing by membership
  // never see a torn epoch/mask pair and never take a lock. All mutation
  // happens on the server thread (or the sim driver); superseded snapshots
  // are retained until node destruction — membership changes at most
  // num_hosts times, so the history is tiny.
  struct Membership {
    uint32_t epoch = 0;
    HostSet dead;
    HostSet live;
  };
  const Membership& membership() const {
    return *membership_.load(std::memory_order_acquire);
  }
  void PublishMembership(std::unique_ptr<Membership> next);

  std::atomic<const Membership*> membership_{nullptr};
  std::vector<std::unique_ptr<Membership>> membership_history_;  // server thread only
  std::mutex pending_death_mu_;
  HostSet pending_deaths_;  // guarded by pending_death_mu_
  std::atomic<bool> has_pending_deaths_{false};
  // Server thread only: messages from a newer epoch, held until the bump
  // lands. A deferred batched frame keeps a copy of its record payload —
  // batch_rx_ is shared scratch and will be overwritten before the replay.
  struct DeferredMsg {
    MsgHeader raw;
    std::vector<std::byte> payload;
  };
  std::deque<DeferredMsg> deferred_;

  // ---- Coalescer state (server thread only) ------------------------------
  struct PendingBatch {
    HostId to = 0;
    MsgType type = MsgType::kAck;
    uint64_t opened_ns = 0;  // MonotonicNowNs when the first record landed
    std::vector<MsgHeader> items;
  };
  void SendBatch(PendingBatch& b);
  bool HasOpenBatch() const;
  std::vector<PendingBatch> coalesce_;
  // Receive scratch for a batched frame's record payload.
  std::vector<std::byte> batch_rx_;
  // Externally-pumped (sim) nodes have no poll loop to notice an open batch,
  // so the first enqueue sends a self-addressed kFlushHint through the fabric
  // — it keeps the network non-quiescent and triggers the flush on delivery.
  bool flush_hint_inflight_ = false;
  mutable std::mutex member_mu_;
  std::condition_variable member_cv_;
  mutable std::mutex held_mu_;
  std::set<uint32_t> held_locks_;  // locks this host currently holds (probe answers)
  mutable std::mutex lost_mu_;
  std::set<uint32_t> lost_minipages_;  // ids learned permanently lost
  std::atomic<uint64_t> epoch_bumps_{0};
  std::atomic<uint64_t> shards_adopted_{0};
  std::atomic<uint64_t> copyset_repairs_{0};
  std::atomic<uint64_t> minipages_lost_{0};

  // Lock-free event counters (relaxed-atomic fields; see stats.h). The mutex
  // guards only the epoch bookkeeping closed at barriers.
  HostCounters counters_;
  mutable std::mutex epoch_mu_;
  HostCounters epoch_snapshot_;
  std::vector<EpochRecord> epochs_;
  uint32_t epoch_ = 0;

  // Per-node metric registry; the named pointers are registered once in the
  // constructor and updated lock-free on the hot paths.
  MetricsRegistry metrics_;
  Histogram* read_fault_ns_ = nullptr;   // full fault service, entry to retry
  Histogram* write_fault_ns_ = nullptr;
  Histogram* barrier_ns_ = nullptr;      // barrier entry to release
  Histogram* lock_ns_ = nullptr;         // lock request to grant
  Histogram* recovery_ns_ = nullptr;     // host-death recovery, detect to done

  std::atomic<uint64_t> bounced_{0};
};

}  // namespace millipage

#endif  // SRC_DSM_NODE_H_
