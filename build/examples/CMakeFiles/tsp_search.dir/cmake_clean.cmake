file(REMOVE_RECURSE
  "CMakeFiles/tsp_search.dir/tsp_search.cpp.o"
  "CMakeFiles/tsp_search.dir/tsp_search.cpp.o.d"
  "tsp_search"
  "tsp_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tsp_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
