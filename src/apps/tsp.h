// TSP — branch-and-bound traveling salesperson (TreadMarks suite). Partial
// tours are expanded to a fixed depth into a shared tour array; each
// TourElement is 148 bytes and is manipulated exclusively by one task, so
// each tour gets its own minipage (paper Table 2: 148-byte granularity, 27
// views). Workers draw tour indices from a lock-protected shared counter,
// solve the remainder by exhaustive DFS, and update the shared minimum; the
// minimum's update pushes readable copies to all hosts (Section 4.3.1's
// single-line change), because it is read far more often than written.

#ifndef SRC_APPS_TSP_H_
#define SRC_APPS_TSP_H_

#include <vector>

#include "src/apps/app.h"
#include "src/dsm/global_ptr.h"

namespace millipage {

// 148 bytes, as in the paper.
struct TourElement {
  int32_t city[32];    // prefix path
  int32_t count;       // cities in the prefix
  int32_t length;      // prefix length
  uint8_t pad[148 - 34 * sizeof(int32_t)];
};
static_assert(sizeof(TourElement) == 148);

struct TspConfig {
  uint32_t num_cities = 11;  // paper: 19 (exponential: keep modest by default)
  uint32_t prefix_depth = 4; // tours are expanded to this depth up front
  uint64_t seed = 7;
};

class TspApp : public App {
 public:
  explicit TspApp(const TspConfig& config) : config_(config) {}

  std::string name() const override { return "TSP"; }
  std::string input_desc() const override;
  std::string granularity_desc() const override { return "a tour, 148 bytes"; }
  // One branch-and-bound node expansion on a 300 MHz P-II.
  double ns_per_work_unit() const override { return 300.0; }

  void Setup(DsmNode& manager) override;
  void Worker(DsmNode& node, HostId host) override;
  Status Validate(DsmNode& manager) override;

  int32_t best_length() const { return best_len_result_; }

 private:
  void Dfs(const int32_t* dist, uint32_t n, int32_t* path, uint32_t depth, int32_t len,
           uint32_t visited_mask, int32_t* local_best, DsmNode& node, uint64_t* expanded);

  TspConfig config_;
  std::vector<int32_t> dist_;            // private, replicated distance matrix
  std::vector<GlobalPtr<TourElement>> tours_;
  GlobalPtr<int32_t> next_tour_;         // shared work-queue index
  GlobalPtr<int32_t> min_len_;           // shared best-so-far (pushed on update)
  int32_t serial_best_ = 0;              // reference from exhaustive search
  int32_t best_len_result_ = 0;
};

}  // namespace millipage

#endif  // SRC_APPS_TSP_H_
