// Page-size constants and alignment helpers.
//
// The paper's minipage machinery manipulates protection in units of virtual
// pages (vpages); everything here is expressed in terms of the system page
// size, queried once at startup.

#ifndef SRC_OS_PAGE_H_
#define SRC_OS_PAGE_H_

#include <unistd.h>

#include <cstddef>
#include <cstdint>

namespace millipage {

// System page size in bytes (4096 on x86-64 Linux).
inline size_t PageSize() {
  static const size_t kPageSize = static_cast<size_t>(::sysconf(_SC_PAGESIZE));
  return kPageSize;
}

inline size_t RoundUpToPage(size_t n) {
  const size_t p = PageSize();
  return (n + p - 1) / p * p;
}

inline size_t RoundDownToPage(size_t n) { return n / PageSize() * PageSize(); }

inline bool IsPageAligned(size_t n) { return n % PageSize() == 0; }

inline bool IsPageAligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % PageSize() == 0;
}

// Number of vpages needed to cover n bytes.
inline size_t PagesFor(size_t n) { return RoundUpToPage(n) / PageSize(); }

}  // namespace millipage

#endif  // SRC_OS_PAGE_H_
