#include "src/model/cost_model.h"

#include <algorithm>
#include <map>
#include <sstream>

namespace millipage {

double CostModel::ReadFaultUs(double avg_bytes) const {
  // trap -> request header to manager -> MPT lookup -> forwarded header ->
  // data message -> set protection at server and requester -> wakeup -> ACK.
  return fault_trap_us + header_us + mpt_lookup_us + header_us + DataMsgUs(avg_bytes) +
         2 * set_prot_us + wakeup_us + header_us + server_response_us;
}

double CostModel::WriteFaultUs(double avg_bytes, double avg_invalidations) const {
  return ReadFaultUs(avg_bytes) + set_prot_us + avg_invalidations * per_invalidation_us;
}

double CostModel::BarrierUs(uint16_t hosts) const {
  return barrier_base_us + barrier_per_host_us * (hosts > 0 ? hosts - 1 : 0);
}

double CostModel::PrefetchUs(double avg_bytes) const {
  // Issue cost plus the transfer itself; unlike a fault there is no trap,
  // no blocked thread, and no wakeup — that is why LU inserts them.
  return prefetch_issue_us + header_us + mpt_lookup_us + header_us + DataMsgUs(avg_bytes) +
         set_prot_us;
}

std::string Breakdown::ToString() const {
  std::ostringstream os;
  const double t = total();
  auto pct = [t](double v) { return t > 0 ? 100.0 * v / t : 0.0; };
  os.precision(1);
  os << std::fixed;
  os << "comp " << pct(comp_us) << "% | prefetch " << pct(prefetch_us) << "% | read-fault "
     << pct(read_fault_us) << "% | write-fault " << pct(write_fault_us) << "% | synch "
     << pct(synch_us) << "%";
  return os.str();
}

ModeledRun ModelRun(const CostModel& model, const AppTimingInput& input) {
  ModeledRun run;
  // Group records by epoch.
  std::map<uint32_t, std::vector<const EpochRecord*>> by_epoch;
  for (const EpochRecord& r : input.epochs) {
    if (r.epoch < input.skip_epochs) {
      continue;  // cold-start distribution epochs are not measured
    }
    by_epoch[r.epoch].push_back(&r);
  }
  run.num_epochs = static_cast<uint32_t>(by_epoch.size());
  const double barrier_us = model.BarrierUs(input.num_hosts);

  for (const auto& [epoch, records] : by_epoch) {
    // Cluster-wide average invalidations per write fault this epoch.
    uint64_t total_inval = 0;
    uint64_t total_writes = 0;
    for (const EpochRecord* r : records) {
      total_inval += r->delta.invalidations_received;
      total_writes += r->delta.write_faults;
    }
    const double avg_inval =
        total_writes > 0 ? static_cast<double>(total_inval) / static_cast<double>(total_writes)
                         : 0.0;

    // Average fault service time this epoch, for pricing queueing delay.
    uint64_t total_reads = 0;
    uint64_t total_competing = 0;
    double total_fault_us = 0;
    for (const EpochRecord* r : records) {
      total_reads += r->delta.read_faults;
      total_competing += r->delta.competing_requests;
    }

    double epoch_max_us = 0;
    std::vector<Breakdown> host_parts;
    host_parts.reserve(records.size());
    for (const EpochRecord* r : records) {
      const HostCounters& d = r->delta;
      Breakdown b;
      b.comp_us = static_cast<double>(d.work_units) * input.ns_per_work_unit / 1000.0;
      const double avg_rd =
          d.read_faults > 0 ? static_cast<double>(d.read_fault_bytes) / d.read_faults : 0.0;
      const double avg_wr =
          d.write_faults > 0 ? static_cast<double>(d.write_fault_bytes) / d.write_faults : 0.0;
      const double avg_pf =
          d.prefetches > 0 ? static_cast<double>(d.prefetch_bytes) / d.prefetches : 0.0;
      b.read_fault_us = static_cast<double>(d.read_faults) * model.ReadFaultUs(avg_rd);
      b.write_fault_us =
          static_cast<double>(d.write_faults) * model.WriteFaultUs(avg_wr, avg_inval);
      b.prefetch_us = static_cast<double>(d.prefetches) * model.PrefetchUs(avg_pf);
      b.synch_us = static_cast<double>(d.lock_acquires) * model.lock_us;
      total_fault_us += b.read_fault_us + b.write_fault_us;
      host_parts.push_back(b);
      epoch_max_us = std::max(epoch_max_us, b.total());
    }
    // Competing requests serialize at the manager: each queued request adds
    // a fraction of an average fault-service time to the epoch.
    const uint64_t total_faults = total_reads + total_writes;
    if (total_competing > 0 && total_faults > 0) {
      const double avg_fault_us = total_fault_us / static_cast<double>(total_faults);
      const double queue_us = model.competing_wait_factor * avg_fault_us *
                              static_cast<double>(total_competing);
      epoch_max_us += queue_us;
      run.breakdown.synch_us += queue_us;
    }
    // Average the per-host categories; barrier wait (imbalance) plus the
    // barrier operation itself are synchronization time.
    const double inv_n = 1.0 / static_cast<double>(host_parts.size());
    for (const Breakdown& b : host_parts) {
      run.breakdown.comp_us += b.comp_us * inv_n;
      run.breakdown.prefetch_us += b.prefetch_us * inv_n;
      run.breakdown.read_fault_us += b.read_fault_us * inv_n;
      run.breakdown.write_fault_us += b.write_fault_us * inv_n;
      run.breakdown.synch_us += (b.synch_us + (epoch_max_us - b.total())) * inv_n;
    }
    run.breakdown.synch_us += barrier_us;
    run.total_us += epoch_max_us + barrier_us;
  }
  return run;
}

}  // namespace millipage
