# Empty dependencies file for bench_fig6_speedups.
# This may be replaced when dependencies are built.
