// HostSet — a set of host ids with a small-set-inline representation.
//
// The protocol's copysets, invalidation-round accounting, membership masks,
// and probe/arrival sets were all `uint64_t` bitmasks, which capped clusters
// at 64 hosts. HostSet keeps the ≤64-host case exactly as cheap (one inline
// word, no allocation, the same bit operations) and spills to a dynamic
// bitmap — `vector<uint64_t>` of words 1..k — only when a host id ≥ 64 is
// inserted. All operations treat absent spill words as zero, so sets that
// grew and shrank across the 64-host boundary compare equal to ones that
// never spilled.
//
// Iteration order is ascending host id (lowest set bit first), matching the
// order the old mask code produced with ctz/drop-lowest-bit loops; replica
// rotation (DirEntry::PickReplica) depends on this.

#ifndef SRC_COMMON_HOST_SET_H_
#define SRC_COMMON_HOST_SET_H_

#include <cstdint>
#include <vector>

#include "src/common/logging.h"

namespace millipage {

// Hard ceiling on host ids, cluster-wide. The wire format's widened (v1)
// host field is 10 bits (src/net/message.h), so ids are [0, 1024). Any id at
// or past this bound is corrupt — HostSet operations fail loudly on it.
inline constexpr uint32_t kMaxHosts = 1024;

class HostSet {
 public:
  HostSet() = default;

  // The set {0..n-1}: every host of an n-host cluster.
  static HostSet AllBelow(uint32_t n) {
    MP_CHECK(n <= kMaxHosts) << "host count " << n << " above kMaxHosts";
    HostSet s;
    if (n == 0) {
      return s;
    }
    const uint32_t words = (n + 63) / 64;
    if (words > 1) {
      s.hi_.assign(words - 1, ~0ULL);
    }
    s.w0_ = ~0ULL;
    const uint32_t rem = n % 64;
    if (rem != 0) {
      uint64_t& last = words == 1 ? s.w0_ : s.hi_[words - 2];
      last = (1ULL << rem) - 1;
    }
    return s;
  }

  static HostSet Single(uint32_t h) {
    HostSet s;
    s.Add(h);
    return s;
  }

  // The set whose hosts 0..63 are the bits of `w` (legacy-mask interop).
  static HostSet FromWord(uint64_t w) {
    HostSet s;
    s.w0_ = w;
    return s;
  }

  bool Contains(uint32_t h) const {
    CheckId(h);
    if (h < 64) {
      return (w0_ >> h) & 1u;
    }
    const uint32_t word = h / 64 - 1;
    return word < hi_.size() && ((hi_[word] >> (h % 64)) & 1u);
  }

  void Add(uint32_t h) {
    CheckId(h);
    if (h < 64) {
      w0_ |= 1ULL << h;
      return;
    }
    const uint32_t word = h / 64 - 1;
    if (word >= hi_.size()) {
      hi_.resize(word + 1, 0);
    }
    hi_[word] |= 1ULL << (h % 64);
  }

  void Remove(uint32_t h) {
    CheckId(h);
    if (h < 64) {
      w0_ &= ~(1ULL << h);
      return;
    }
    const uint32_t word = h / 64 - 1;
    if (word < hi_.size()) {
      hi_[word] &= ~(1ULL << (h % 64));
    }
  }

  void Clear() {
    w0_ = 0;
    hi_.clear();
  }

  bool Empty() const {
    if (w0_ != 0) {
      return false;
    }
    for (uint64_t w : hi_) {
      if (w != 0) {
        return false;
      }
    }
    return true;
  }

  int Count() const {
    int n = __builtin_popcountll(w0_);
    for (uint64_t w : hi_) {
      n += __builtin_popcountll(w);
    }
    return n;
  }

  // Hosts 0..63 as a plain mask — legacy accessors and trace/log diagnostics.
  uint64_t LowWord() const { return w0_; }

  // Lowest host id in the set; -1 when empty.
  int First() const {
    if (w0_ != 0) {
      return __builtin_ctzll(w0_);
    }
    for (size_t i = 0; i < hi_.size(); ++i) {
      if (hi_[i] != 0) {
        return static_cast<int>((i + 1) * 64) + __builtin_ctzll(hi_[i]);
      }
    }
    return -1;
  }

  void UnionWith(const HostSet& o) {
    w0_ |= o.w0_;
    if (o.hi_.size() > hi_.size()) {
      hi_.resize(o.hi_.size(), 0);
    }
    for (size_t i = 0; i < o.hi_.size(); ++i) {
      hi_[i] |= o.hi_[i];
    }
  }

  void IntersectWith(const HostSet& o) {
    w0_ &= o.w0_;
    if (hi_.size() > o.hi_.size()) {
      hi_.resize(o.hi_.size());
    }
    for (size_t i = 0; i < hi_.size(); ++i) {
      hi_[i] &= o.hi_[i];
    }
  }

  void SubtractAll(const HostSet& o) {
    w0_ &= ~o.w0_;
    const size_t n = hi_.size() < o.hi_.size() ? hi_.size() : o.hi_.size();
    for (size_t i = 0; i < n; ++i) {
      hi_[i] &= ~o.hi_[i];
    }
  }

  bool Intersects(const HostSet& o) const {
    if ((w0_ & o.w0_) != 0) {
      return true;
    }
    const size_t n = hi_.size() < o.hi_.size() ? hi_.size() : o.hi_.size();
    for (size_t i = 0; i < n; ++i) {
      if ((hi_[i] & o.hi_[i]) != 0) {
        return true;
      }
    }
    return false;
  }

  // Superset test: every host of `o` is in *this.
  bool ContainsAll(const HostSet& o) const {
    if ((o.w0_ & ~w0_) != 0) {
      return false;
    }
    for (size_t i = 0; i < o.hi_.size(); ++i) {
      const uint64_t mine = i < hi_.size() ? hi_[i] : 0;
      if ((o.hi_[i] & ~mine) != 0) {
        return false;
      }
    }
    return true;
  }

  bool operator==(const HostSet& o) const {
    if (w0_ != o.w0_) {
      return false;
    }
    const size_t n = hi_.size() > o.hi_.size() ? hi_.size() : o.hi_.size();
    for (size_t i = 0; i < n; ++i) {
      const uint64_t a = i < hi_.size() ? hi_[i] : 0;
      const uint64_t b = i < o.hi_.size() ? o.hi_[i] : 0;
      if (a != b) {
        return false;
      }
    }
    return true;
  }
  bool operator!=(const HostSet& o) const { return !(*this == o); }

  // The n-th member in ascending host-id order (n in [0, Count())). This is
  // the old mask code's "drop n lowest set bits, take ctz" — PickReplica's
  // rotation order is defined by it.
  uint32_t SelectNth(int n) const {
    MP_CHECK(n >= 0) << "SelectNth with negative index";
    uint64_t w = w0_;
    uint32_t base = 0;
    size_t next = 0;
    for (;;) {
      const int pc = __builtin_popcountll(w);
      if (n < pc) {
        while (n-- > 0) {
          w &= w - 1;  // drop lowest set bit
        }
        return base + static_cast<uint32_t>(__builtin_ctzll(w));
      }
      n -= pc;
      MP_CHECK(next < hi_.size()) << "SelectNth index past set population";
      w = hi_[next++];
      base += 64;
    }
  }

  // Visit members in ascending host-id order.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (uint64_t w = w0_; w != 0; w &= w - 1) {
      fn(static_cast<uint32_t>(__builtin_ctzll(w)));
    }
    for (size_t i = 0; i < hi_.size(); ++i) {
      const uint32_t base = static_cast<uint32_t>((i + 1) * 64);
      for (uint64_t w = hi_[i]; w != 0; w &= w - 1) {
        fn(base + static_cast<uint32_t>(__builtin_ctzll(w)));
      }
    }
  }

 private:
  static void CheckId(uint32_t h) {
    MP_CHECK(h < kMaxHosts) << "host id " << h << " out of range (kMaxHosts = " << kMaxHosts
                            << ", the wire format's 10-bit host field)";
  }

  uint64_t w0_ = 0;                // hosts 0..63 — never allocates
  std::vector<uint64_t> hi_;       // hosts 64.. in words 1..k (spill)
};

}  // namespace millipage

#endif  // SRC_COMMON_HOST_SET_H_
