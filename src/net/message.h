// Wire format of the millipage protocol.
//
// Every message starts with a fixed 32-byte header (the paper notes all
// manager traffic fits in 32 bytes). Data-bearing messages (minipage
// contents) send the payload as a second stage; the receiver reads the
// header, derives the destination address in its privileged view from the
// translation fields the manager filled in, and receives the payload
// directly there — no DSM-layer buffering.

#ifndef SRC_NET_MESSAGE_H_
#define SRC_NET_MESSAGE_H_

#include <cstdint>
#include <cstring>

namespace millipage {

using HostId = uint16_t;
// Host 0 owns the MPT and the allocator: every *untranslated* request goes
// here first for minipage translation. Directory/lock/barrier shards may
// live elsewhere (DsmConfig::ManagerOf) once the header is translated.
inline constexpr HostId kManagerHost = 0;
// seq value meaning "no thread is waiting for the reply" (prefetch).
inline constexpr uint32_t kNoWaitSlot = 0xffffffffu;
// minipage value meaning "not yet translated by the MPT host". Requests are
// born with it; MgrTranslate replaces it with the real minipage id, and from
// then on every hop (forward, reply, ACK, invalidate, bounce) can be routed
// to the id's owning manager shard. Same value as kInvalidMinipage.
inline constexpr uint32_t kNoMinipage = 0xffffffffu;

enum class MsgType : uint8_t {
  kReadRequest = 1,
  kWriteRequest,
  kReadReply,
  kWriteReply,
  kInvalidateRequest,
  kInvalidateReply,
  kAck,
  kAllocRequest,
  kAllocReply,
  kBarrierEnter,
  kBarrierRelease,
  kLockAcquire,
  kLockGrant,
  kLockRelease,
  kPushUpdate,     // unsolicited read-copy push (TSP best-tour broadcast)
  kDiffUpdate,     // LRC: run-length diff flushed to a minipage's home
  kDiffAck,        // LRC: home applied the diff
  kShutdown,
  // Membership / recovery protocol (host-death survival).
  kEpochBump,       // membership epoch advanced: minipage = new epoch,
                    // privbase = cumulative dead-host mask
  kCopysetQuery,    // adopting shard asks "do you hold a copy?" (translated
                    // geometry travels in the header, like a forward)
  kCopysetReply,    // answer: pgsize = local Protection value for the id
  kLockProbe,       // adopting shard asks "do you hold lock <minipage>?"
  kLockProbeReply,  // answer: kFlagUpgrade set when the lock is held locally
};

const char* MsgTypeName(MsgType t);

// Header flags.
inline constexpr uint8_t kFlagHasPayload = 0x1;
inline constexpr uint8_t kFlagPrefetch = 0x2;
inline constexpr uint8_t kFlagUpgrade = 0x4;    // access grant without data
inline constexpr uint8_t kFlagForwarded = 0x8;  // already translated by manager
inline constexpr uint8_t kFlagBounced = 0x10;   // returned unserved to manager
inline constexpr uint8_t kFlagAbort = 0x20;     // push aborted by the pusher
inline constexpr uint8_t kFlagWriteFetch = 0x40;  // LRC: fetch opens for writing
inline constexpr uint8_t kFlagHomeGrant = 0x80;   // LRC: requester is the home

// Membership-epoch tag, packed into the high bits of MsgHeader::from. Host
// ids are capped at 64 (the copyset is a 64-bit mask), so a HostId needs only
// the low 6 bits of the uint16 field; the remaining 10 carry the sender's
// membership epoch mod 1024. The tag is stamped on the wire copy at send time
// and stripped before dispatch, so protocol logic only ever sees pure host
// ids — and the header stays at 32 bytes.
inline constexpr uint16_t kHostIdMask = 0x3f;
inline constexpr uint32_t kEpochTagShift = 6;
inline constexpr uint32_t kEpochTagMask = 0x3ff;

inline uint16_t PackFromEpoch(HostId from, uint32_t epoch) {
  return static_cast<uint16_t>((from & kHostIdMask) |
                               ((epoch & kEpochTagMask) << kEpochTagShift));
}
inline HostId FromHost(uint16_t from) { return from & kHostIdMask; }
inline uint32_t FromEpochTag(uint16_t from) { return from >> kEpochTagShift; }

// True when tag `t` is older than tag `now` under mod-1024 wraparound: the
// signed circular distance (now - t) lands in (0, 512). Equal tags and tags
// ahead of `now` (a peer that bumped first) are not stale.
inline bool EpochTagStale(uint32_t t, uint32_t now) {
  const uint32_t d = (now - t) & kEpochTagMask;
  return d != 0 && d < (kEpochTagMask + 1) / 2;
}

// Canonical shared address: (application view, offset within the memory
// object). Identical on every host, so no pointer translation is needed
// between hosts in either deployment mode.
struct GlobalAddr {
  uint32_t view = 0;
  uint64_t offset = 0;

  uint64_t Pack() const { return (static_cast<uint64_t>(view) << 48) | offset; }
  static GlobalAddr Unpack(uint64_t packed) {
    return GlobalAddr{static_cast<uint32_t>(packed >> 48), packed & ((1ULL << 48) - 1)};
  }
  bool operator==(const GlobalAddr&) const = default;
};

struct MsgHeader {
  uint8_t type = 0;
  uint8_t flags = 0;
  HostId from = 0;       // original requester
  uint32_t seq = 0;      // requester's wait-slot (the paper's event handle)
  uint64_t addr = 0;     // packed GlobalAddr of the faulting access
  // Translation info, filled by the MPT host (MgrTranslate). kNoMinipage
  // until then — all 8 flag bits are taken, so "has this request been
  // translated" is discriminated by this field, not a flag.
  uint32_t minipage = kNoMinipage;  // minipage id (doubles as lock/barrier id)
  uint32_t pgsize = 0;    // minipage length; also payload length when
                          // kFlagHasPayload is set
  uint64_t privbase = 0;  // object offset of the minipage base (addr2priv)

  MsgType msg_type() const { return static_cast<MsgType>(type); }
  void set_type(MsgType t) { type = static_cast<uint8_t>(t); }
  GlobalAddr global_addr() const { return GlobalAddr::Unpack(addr); }
  bool has_payload() const { return (flags & kFlagHasPayload) != 0; }
  bool translated() const { return minipage != kNoMinipage; }
};

static_assert(sizeof(MsgHeader) == 32, "header must stay at 32 bytes, as in the paper");

}  // namespace millipage

#endif  // SRC_NET_MESSAGE_H_
