file(REMOVE_RECURSE
  "libmp_multiview.a"
)
