// Manager contention: centralized vs sharded minipage management.
//
// With a single manager (the paper's deployment) every fault in the cluster
// funnels through host 0, so the manager host is the scalability bottleneck
// the moment many hosts fault on many *different* minipages — requests that
// have no data conflict still queue behind one server thread. Sharding the
// directory (ManagerPolicy::kSharded) hashes minipage/lock ids across hosts:
// translation stays on host 0 (it owns the MPT), but per-id service —
// directory state, invalidation rounds, ACK serialization — runs on the
// owning shard.
//
// Workload: N writers on disjoint minipages, rotating ownership every round
// so each round is a fresh write fault per (host, minipage) pair. Reported
// per policy: wall time, how manager service spread over hosts (max/mean of
// per-shard requests served; 1.0 = perfectly even), and how many translated
// requests host 0 routed away. An uncontended single-writer pass checks that
// sharding does not tax the no-contention fast path.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

namespace millipage {
namespace {

DsmConfig Cfg(uint16_t hosts, ManagerPolicy policy) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  cfg.manager_policy = policy;
  return cfg;
}

// Mutable round count (reduced by --smoke), fixed before clusters spawn.
int g_rounds = 100;

struct ContentionResult {
  double wall_ms = 0;
  uint64_t requests_served = 0;
  uint64_t remote_routed = 0;
  double shard_spread = 0;  // max/mean of per-shard requests served
  int active_shards = 0;
};

// `writers_per_round` hosts write disjoint minipages each round; rotation
// makes every (host, minipage) pair fault eventually.
ContentionResult RunContention(uint16_t hosts, ManagerPolicy policy, bool contended) {
  auto cluster = DsmCluster::Create(Cfg(hosts, policy));
  MP_CHECK(cluster.ok()) << cluster.status().ToString();
  const int arrays = contended ? 4 * hosts : 1;
  std::vector<GlobalPtr<int>> ptrs(arrays);
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int a = 0; a < arrays; ++a) {
      ptrs[a] = SharedAlloc<int>(16);
      ptrs[a][0] = 0;
    }
  });
  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < g_rounds; ++r) {
      if (contended) {
        for (int a = 0; a < arrays; ++a) {
          // Disjoint writers: exactly one host writes each minipage per
          // round, and the assignment rotates.
          if ((a + r) % hosts == host) {
            ptrs[a][0] = ptrs[a][0] + 1;
          }
        }
        node.Barrier();
      } else if (host == 0) {
        // Uncontended fast path: a single writer, no other host touches the
        // minipage, no barrier chatter inside the loop.
        ptrs[0][0] = ptrs[0][0] + 1;
      }
    }
    node.Barrier();
  });
  ContentionResult out;
  out.wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  std::vector<uint64_t> per_shard;
  for (uint16_t h = 0; h < hosts; ++h) {
    Directory* dir = (*cluster)->node(h).directory();
    if (dir == nullptr) {
      continue;
    }
    per_shard.push_back(dir->counters().requests_served);
    out.requests_served += dir->counters().requests_served;
    out.remote_routed += dir->counters().remote_routed;
  }
  out.active_shards = static_cast<int>(per_shard.size());
  const double mean =
      static_cast<double>(out.requests_served) / static_cast<double>(per_shard.size());
  const uint64_t peak = *std::max_element(per_shard.begin(), per_shard.end());
  out.shard_spread = mean > 0 ? static_cast<double>(peak) / mean : 0.0;
  return out;
}

// Copyset fan-out: every host reads one shared minipage (building an N-host
// read copyset), then a single writer faults it — paying one invalidation
// round that must reach all N-1 readers and collect their replies before the
// write is granted. Scaling hosts scales the copyset, so the per-write cost
// curve is the price of wide sharing that HostSet-backed copysets must keep
// linear (the old fixed-mask ceiling capped this curve at 64).
ContentionResult RunFanout(uint16_t hosts, ManagerPolicy policy) {
  auto cluster = DsmCluster::Create(Cfg(hosts, policy));
  MP_CHECK(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> shared;
  (*cluster)->RunOnManager([&](DsmNode&) {
    shared = SharedAlloc<int>(16);
    shared[0] = 0;
  });
  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < g_rounds; ++r) {
      // Everyone reads: the minipage's copyset grows to all N hosts.
      volatile int sink = shared[0];
      (void)sink;
      node.Barrier();
      // One (rotating) writer invalidates the whole copyset.
      if (r % hosts == host) {
        shared[0] = shared[0] + 1;
      }
      node.Barrier();
    }
  });
  ContentionResult out;
  out.wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  for (uint16_t h = 0; h < hosts; ++h) {
    Directory* dir = (*cluster)->node(h).directory();
    if (dir == nullptr) {
      continue;
    }
    out.active_shards++;
    out.requests_served += dir->counters().requests_served;
    out.remote_routed += dir->counters().remote_routed;
  }
  return out;
}

void ReportFanout(BenchReporter& reporter, uint16_t hosts, ManagerPolicy policy) {
  const ContentionResult r = RunFanout(hosts, policy);
  const char* policy_name = policy == ManagerPolicy::kSharded ? "sharded" : "centralized";
  std::printf("  %-8u %-12s %-12s %9.1f %10lu %8lu %7d %11s\n", hosts, "fanout",
              policy_name, r.wall_ms, static_cast<unsigned long>(r.requests_served),
              static_cast<unsigned long>(r.remote_routed), r.active_shards, "-");
  BenchResult row;
  row.name = "fanout";
  row.params = "hosts=" + std::to_string(hosts) + " policy=" + policy_name;
  row.iterations = static_cast<uint64_t>(g_rounds);
  row.ns_per_op = r.wall_ms * 1e6 / g_rounds;
  row.values["requests_served"] = static_cast<double>(r.requests_served);
  row.values["remote_routed"] = static_cast<double>(r.remote_routed);
  row.values["copyset_size"] = hosts;
  reporter.Add(std::move(row));
}

void Report(BenchReporter& reporter, uint16_t hosts, const char* mode, ManagerPolicy policy,
            bool contended) {
  const ContentionResult r = RunContention(hosts, policy, contended);
  const char* policy_name = policy == ManagerPolicy::kSharded ? "sharded" : "centralized";
  std::printf("  %-8u %-12s %-12s %9.1f %10lu %8lu %7d %11.2f\n", hosts, mode, policy_name,
              r.wall_ms, static_cast<unsigned long>(r.requests_served),
              static_cast<unsigned long>(r.remote_routed), r.active_shards,
              r.shard_spread);
  BenchResult row;
  row.name = mode;
  row.params = "hosts=" + std::to_string(hosts) + " policy=" + policy_name;
  row.iterations = static_cast<uint64_t>(g_rounds);
  row.ns_per_op = r.wall_ms * 1e6 / g_rounds;
  row.values["requests_served"] = static_cast<double>(r.requests_served);
  row.values["remote_routed"] = static_cast<double>(r.remote_routed);
  row.values["active_shards"] = r.active_shards;
  row.values["shard_spread"] = r.shard_spread;
  reporter.Add(std::move(row));
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_contention_sharding", env);
  g_rounds = env.Scaled(100, 15);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Manager contention: centralized vs sharded directory");
  std::printf("  %-8s %-12s %-12s %9s %10s %8s %7s %11s\n", "hosts", "workload", "policy",
              "wall ms", "mgr reqs", "routed", "shards", "max/mean");
  const std::vector<uint16_t> contended_hosts =
      env.smoke() ? std::vector<uint16_t>{2, 4} : std::vector<uint16_t>{2, 4, 8};
  for (uint16_t hosts : contended_hosts) {
    Report(reporter, hosts, "contended", ManagerPolicy::kCentralized, /*contended=*/true);
    Report(reporter, hosts, "contended", ManagerPolicy::kSharded, /*contended=*/true);
  }
  const std::vector<uint16_t> uncontended_hosts =
      env.smoke() ? std::vector<uint16_t>{2} : std::vector<uint16_t>{2, 8};
  for (uint16_t hosts : uncontended_hosts) {
    Report(reporter, hosts, "uncontended", ManagerPolicy::kCentralized, /*contended=*/false);
    Report(reporter, hosts, "uncontended", ManagerPolicy::kSharded, /*contended=*/false);
  }
  // Copyset fan-out: per-write invalidation cost as the read copyset widens.
  const std::vector<uint16_t> fanout_hosts =
      env.smoke() ? std::vector<uint16_t>{2, 8} : std::vector<uint16_t>{2, 4, 8, 16, 32};
  for (uint16_t hosts : fanout_hosts) {
    ReportFanout(reporter, hosts, ManagerPolicy::kCentralized);
    ReportFanout(reporter, hosts, ManagerPolicy::kSharded);
  }
  PrintNote("centralized runs one shard (host 0 serves everything: shards=1, max/mean=1);");
  PrintNote("sharded spreads service across every host — max/mean near 1 means no shard is");
  PrintNote("a hotspot (acceptance: <= 2). 'routed' counts translated requests host 0 handed");
  PrintNote("to the owning shard; the uncontended rows check sharding adds no fast-path tax.");
  PrintNote("fanout rows: all N hosts read one minipage, one rotating writer invalidates the");
  PrintNote("N-host copyset per write — the per-op cost curve of wide sharing.");
  return reporter.Finish();
}
