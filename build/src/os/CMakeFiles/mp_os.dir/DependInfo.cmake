
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/fault_handler.cc" "src/os/CMakeFiles/mp_os.dir/fault_handler.cc.o" "gcc" "src/os/CMakeFiles/mp_os.dir/fault_handler.cc.o.d"
  "/root/repo/src/os/mapping.cc" "src/os/CMakeFiles/mp_os.dir/mapping.cc.o" "gcc" "src/os/CMakeFiles/mp_os.dir/mapping.cc.o.d"
  "/root/repo/src/os/memory_object.cc" "src/os/CMakeFiles/mp_os.dir/memory_object.cc.o" "gcc" "src/os/CMakeFiles/mp_os.dir/memory_object.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
