#include "src/common/stats.h"

#include <cmath>
#include <cstring>
#include <sstream>

namespace millipage {

LatencyHistogram::LatencyHistogram() { std::memset(buckets_, 0, sizeof(buckets_)); }

// Buckets are powers of two of nanoseconds: bucket i covers (2^(i-1), 2^i].
uint64_t LatencyHistogram::BucketUpperBound(int i) { return 1ULL << i; }

int LatencyHistogram::BucketFor(uint64_t ns) {
  if (ns <= 1) {
    return 0;
  }
  int b = 64 - __builtin_clzll(ns - 1);
  return b >= kBuckets ? kBuckets - 1 : b;
}

void LatencyHistogram::Record(uint64_t ns) {
  buckets_[BucketFor(ns)]++;
  count_++;
  sum_ns_ += ns;
  min_ns_ = std::min(min_ns_, ns);
  max_ns_ = std::max(max_ns_, ns);
}

uint64_t LatencyHistogram::QuantileNs(double q) const {
  if (count_ == 0) {
    return 0;
  }
  const uint64_t target =
      static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_ - 1)));
  uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen > target) {
      return BucketUpperBound(i);
    }
  }
  return max_ns_;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (int i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
  }
  count_ += other.count_;
  sum_ns_ += other.sum_ns_;
  min_ns_ = std::min(min_ns_, other.min_ns_);
  max_ns_ = std::max(max_ns_, other.max_ns_);
}

std::string LatencyHistogram::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean_ns() / 1000.0 << "us"
     << " p50=" << QuantileNs(0.5) / 1000.0 << "us"
     << " p99=" << QuantileNs(0.99) / 1000.0 << "us"
     << " max=" << max_ns_ / 1000.0 << "us";
  return os.str();
}

SampleStats SampleStats::FromSamples(std::vector<double> samples) {
  SampleStats s;
  if (samples.empty()) {
    return s;
  }
  std::sort(samples.begin(), samples.end());
  s.min = samples.front();
  s.max = samples.back();
  s.median = samples[samples.size() / 2];
  double sum = 0;
  for (double v : samples) {
    sum += v;
  }
  s.mean = sum / static_cast<double>(samples.size());
  double var = 0;
  for (double v : samples) {
    var += (v - s.mean) * (v - s.mean);
  }
  s.stddev = std::sqrt(var / static_cast<double>(samples.size()));
  return s;
}

}  // namespace millipage
