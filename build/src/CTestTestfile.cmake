# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("os")
subdirs("multiview")
subdirs("net")
subdirs("diff")
subdirs("dsm")
subdirs("lrc")
subdirs("model")
subdirs("apps")
