#include "src/net/message.h"

namespace millipage {

const char* MsgTypeName(MsgType t) {
  switch (t) {
    case MsgType::kReadRequest:
      return "READ_REQUEST";
    case MsgType::kWriteRequest:
      return "WRITE_REQUEST";
    case MsgType::kReadReply:
      return "READ_REPLY";
    case MsgType::kWriteReply:
      return "WRITE_REPLY";
    case MsgType::kInvalidateRequest:
      return "INVALIDATE_REQUEST";
    case MsgType::kInvalidateReply:
      return "INVALIDATE_REPLY";
    case MsgType::kAck:
      return "ACK";
    case MsgType::kAllocRequest:
      return "ALLOC_REQUEST";
    case MsgType::kAllocReply:
      return "ALLOC_REPLY";
    case MsgType::kBarrierEnter:
      return "BARRIER_ENTER";
    case MsgType::kBarrierRelease:
      return "BARRIER_RELEASE";
    case MsgType::kLockAcquire:
      return "LOCK_ACQUIRE";
    case MsgType::kLockGrant:
      return "LOCK_GRANT";
    case MsgType::kLockRelease:
      return "LOCK_RELEASE";
    case MsgType::kPushUpdate:
      return "PUSH_UPDATE";
    case MsgType::kDiffUpdate:
      return "DIFF_UPDATE";
    case MsgType::kDiffAck:
      return "DIFF_ACK";
    case MsgType::kShutdown:
      return "SHUTDOWN";
    case MsgType::kEpochBump:
      return "EPOCH_BUMP";
    case MsgType::kCopysetQuery:
      return "COPYSET_QUERY";
    case MsgType::kCopysetReply:
      return "COPYSET_REPLY";
    case MsgType::kLockProbe:
      return "LOCK_PROBE";
    case MsgType::kLockProbeReply:
      return "LOCK_PROBE_REPLY";
    case MsgType::kFlushHint:
      return "FLUSH_HINT";
    case MsgType::kBarrierProbe:
      return "BARRIER_PROBE";
    case MsgType::kBarrierProbeReply:
      return "BARRIER_PROBE_REPLY";
  }
  return "UNKNOWN";
}

}  // namespace millipage
