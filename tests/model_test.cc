// Unit tests for the cost model: parameter sanity against the paper's
// measured numbers and the epoch-pricing logic.

#include <gtest/gtest.h>

#include "src/model/cost_model.h"

namespace millipage {
namespace {

TEST(CostModelTest, DataMessageMatchesTable1) {
  const CostModel m;
  // Table 1: 0.5 KB -> 22 us, 1 KB -> 34 us, 4 KB -> 90 us.
  EXPECT_NEAR(m.DataMsgUs(512), 22.0, 3.0);
  EXPECT_NEAR(m.DataMsgUs(1024), 34.0, 3.0);
  EXPECT_NEAR(m.DataMsgUs(4096), 90.0, 3.0);
}

TEST(CostModelTest, FaultTimesMatchSection42) {
  CostModel m;
  m.server_response_us = 0;  // Section 4.2 times exclude the polling delay
  // Read faults: 204 us at 128 B, 314 us at 4 KB.
  EXPECT_NEAR(m.ReadFaultUs(128), 204.0, 25.0);
  EXPECT_NEAR(m.ReadFaultUs(4096), 314.0, 40.0);
  // Write faults: 212-366 us at 128 B depending on invalidations.
  EXPECT_NEAR(m.WriteFaultUs(128, 0), 216.0, 30.0);
  EXPECT_GE(m.WriteFaultUs(128, 6), 330.0);
  // Barrier: 59-153 us for 1-8 hosts.
  EXPECT_NEAR(m.BarrierUs(1), 59.0, 1.0);
  EXPECT_NEAR(m.BarrierUs(8), 153.0, 5.0);
}

TEST(CostModelTest, WithFastServiceRemovesDelay) {
  const CostModel m;
  const CostModel fast = m.WithFastService();
  EXPECT_GT(m.ReadFaultUs(128), fast.ReadFaultUs(128) + 400.0);
}

AppTimingInput TwoHostInput() {
  AppTimingInput in;
  in.ns_per_work_unit = 10.0;
  in.num_hosts = 2;
  for (uint32_t epoch = 0; epoch < 2; ++epoch) {
    for (uint32_t host = 0; host < 2; ++host) {
      EpochRecord r;
      r.epoch = epoch;
      r.host = host;
      r.delta.work_units = 1000;
      r.delta.read_faults = host == 1 ? 2 : 0;
      r.delta.read_fault_bytes = host == 1 ? 256 : 0;
      in.epochs.push_back(r);
    }
  }
  return in;
}

TEST(ModelRunTest, CriticalPathIsSlowestHost) {
  const CostModel m;
  const ModeledRun run = ModelRun(m, TwoHostInput());
  EXPECT_EQ(run.num_epochs, 2u);
  // Each epoch: host 1 is the critical path (compute + 2 read faults).
  const double host1_epoch_us = 1000 * 10.0 / 1000.0 + 2 * m.ReadFaultUs(128);
  EXPECT_NEAR(run.total_us, 2 * (host1_epoch_us + m.BarrierUs(2)), 1.0);
  // Breakdown splits into compute, read faults, and synch (incl. imbalance).
  EXPECT_GT(run.breakdown.comp_us, 0.0);
  EXPECT_GT(run.breakdown.read_fault_us, 0.0);
  EXPECT_GT(run.breakdown.synch_us, 0.0);
  EXPECT_DOUBLE_EQ(run.breakdown.write_fault_us, 0.0);
  EXPECT_NEAR(run.breakdown.total(), run.total_us, 1e-6);
}

TEST(ModelRunTest, SpeedupOfBalancedComputeApproachesHostCount) {
  const CostModel m;
  // Serial: one host, all the work.
  AppTimingInput serial;
  serial.ns_per_work_unit = 1000.0;
  serial.num_hosts = 1;
  EpochRecord r;
  r.delta.work_units = 800000;
  serial.epochs.push_back(r);
  const ModeledRun s = ModelRun(m, serial);

  // Parallel: eight hosts, work split evenly, a few faults each.
  AppTimingInput par;
  par.ns_per_work_unit = 1000.0;
  par.num_hosts = 8;
  for (uint32_t h = 0; h < 8; ++h) {
    EpochRecord e;
    e.host = h;
    e.delta.work_units = 100000;
    e.delta.read_faults = 4;
    e.delta.read_fault_bytes = 4 * 256;
    par.epochs.push_back(e);
  }
  const ModeledRun p = ModelRun(m, par);
  const double speedup = Speedup(s, p);
  EXPECT_GT(speedup, 7.0);
  EXPECT_LE(speedup, 8.0);
}

TEST(ModelRunTest, FaultBoundAppBenefitsFromFastService) {
  // An app dominated by fault service gains when the polling problem is
  // "solved" (Section 3.5 discussion).
  AppTimingInput in;
  in.ns_per_work_unit = 1.0;
  in.num_hosts = 4;
  for (uint32_t h = 0; h < 4; ++h) {
    EpochRecord e;
    e.host = h;
    e.delta.work_units = 1000;
    e.delta.read_faults = 100;
    e.delta.read_fault_bytes = 100 * 128;
    in.epochs.push_back(e);
  }
  const CostModel slow;
  const ModeledRun a = ModelRun(slow, in);
  const ModeledRun b = ModelRun(slow.WithFastService(), in);
  EXPECT_GT(a.total_us, 2.5 * b.total_us);
}

TEST(ModelRunTest, CompetingRequestsPricedAsQueueing) {
  // Two identical inputs except one epoch saw manager queueing: the queued
  // run must be modeled slower, with the delay in the synch category.
  auto make = [](uint64_t competing) {
    AppTimingInput in;
    in.num_hosts = 2;
    for (uint32_t h = 0; h < 2; ++h) {
      EpochRecord r;
      r.host = h;
      r.delta.work_units = 1000;
      r.delta.read_faults = 10;
      r.delta.read_fault_bytes = 10 * 256;
      if (h == 0) {
        r.delta.competing_requests = competing;
      }
      in.epochs.push_back(r);
    }
    return in;
  };
  const CostModel m;
  const ModeledRun quiet = ModelRun(m, make(0));
  const ModeledRun queued = ModelRun(m, make(20));
  EXPECT_GT(queued.total_us, quiet.total_us);
  EXPECT_GT(queued.breakdown.synch_us, quiet.breakdown.synch_us);
  EXPECT_DOUBLE_EQ(queued.breakdown.comp_us, quiet.breakdown.comp_us);
}

TEST(ModelRunTest, SkipEpochsExcludesColdStart) {
  AppTimingInput in;
  in.num_hosts = 1;
  for (uint32_t e = 0; e < 3; ++e) {
    EpochRecord r;
    r.epoch = e;
    r.delta.work_units = 100;
    r.delta.read_faults = e == 0 ? 1000 : 0;  // huge distribution epoch
    r.delta.read_fault_bytes = e == 0 ? 1000 * 256 : 0;
    in.epochs.push_back(r);
  }
  const CostModel m;
  const ModeledRun all = ModelRun(m, in);
  in.skip_epochs = 1;
  const ModeledRun steady = ModelRun(m, in);
  EXPECT_EQ(steady.num_epochs, 2u);
  EXPECT_LT(steady.total_us, all.total_us / 10);
}

TEST(BreakdownTest, ToStringShowsPercentages) {
  Breakdown b;
  b.comp_us = 50;
  b.synch_us = 50;
  const std::string s = b.ToString();
  EXPECT_NE(s.find("comp 50.0%"), std::string::npos);
  EXPECT_NE(s.find("synch 50.0%"), std::string::npos);
}

}  // namespace
}  // namespace millipage
