// Extension bench (paper Section 5, "Composed-Views"): WATER's read phase
// wants coarse-grain fetches while its write phase wants fine-grain
// minipages. The composed-view group fetch issues all read requests of a
// phase as one split transaction, so their service times pipeline instead
// of serializing fault by fault; writes keep per-minipage granularity.
//
// Measured here on the WATER-style access pattern: a bulk read phase over
// many molecules, then fine-grain owner updates.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/model/cost_model.h"

namespace millipage {
namespace {

// Molecule/epoch counts, reduced by --smoke before any cluster spawns.
int g_molecules = 96;
int g_epochs = 4;
constexpr int kMolInts = 168;  // 672 bytes, the paper's molecule
constexpr uint16_t kHosts = 4;

struct Row {
  const char* name;
  uint64_t blocking_faults = 0;
  uint64_t batched_fetches = 0;
  double modeled_read_phase_us = 0;
  double wall_ms = 0;
};

Row Run(bool use_group_fetch) {
  DsmConfig cfg;
  cfg.num_hosts = kHosts;
  cfg.object_size = 8 << 20;
  cfg.num_views = 8;
  auto cluster = DsmCluster::Create(cfg);
  MP_CHECK(cluster.ok());
  std::vector<GlobalPtr<int>> mols;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int i = 0; i < g_molecules; ++i) {
      mols.push_back(SharedAlloc<int>(kMolInts));
    }
    for (int i = 0; i < g_molecules; ++i) {
      mols[static_cast<size_t>(i)][0] = i;
    }
  });
  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    const int lo = g_molecules * host / kHosts;
    const int hi = g_molecules * (host + 1) / kHosts;
    node.Barrier();
    for (int e = 0; e < g_epochs; ++e) {
      if (use_group_fetch) {
        // Composed view: one coarse fetch for the whole structure.
        std::vector<GlobalAddr> addrs;
        for (const auto& m : mols) {
          addrs.push_back(m.addr());
        }
        (void)node.FetchGroup(addrs.data(), addrs.size());
      }
      long sum = 0;
      for (int i = 0; i < g_molecules; ++i) {
        sum += mols[static_cast<size_t>(i)][0];  // read phase
      }
      node.Barrier();
      for (int i = lo; i < hi; ++i) {
        mols[static_cast<size_t>(i)][1] = static_cast<int>(sum);  // fine-grain writes
      }
      node.Barrier();
    }
  });
  Row row{use_group_fetch ? "composed-view group fetch" : "per-minipage faulting    "};
  row.wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  const CostModel model;
  for (uint16_t h = 0; h < kHosts; ++h) {
    const HostCounters c = (*cluster)->node(h).counters();
    row.blocking_faults += c.read_faults;
    row.batched_fetches += c.prefetches;
    // Blocking faults serialize full service round trips; batched fetches
    // overlap everything but the data transfers themselves.
    row.modeled_read_phase_us += static_cast<double>(c.read_faults) * model.ReadFaultUs(672) +
                                 static_cast<double>(c.prefetches) * model.DataMsgUs(672);
  }
  return row;
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_ext_composed_views", env);
  g_molecules = env.Scaled(96, 24);
  g_epochs = env.Scaled(4, 2);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Extension: composed-view coarse reads (Section 5, WATER read phase)");
  std::printf("  %-27s %10s %10s %16s %9s\n", "mode", "rd faults", "batched",
              "modeled read us", "wall ms");
  for (bool group : {false, true}) {
    const Row r = Run(group);
    std::printf("  %-27s %10lu %10lu %16.0f %9.1f\n", r.name,
                static_cast<unsigned long>(r.blocking_faults),
                static_cast<unsigned long>(r.batched_fetches), r.modeled_read_phase_us,
                r.wall_ms);
    BenchResult row;
    row.name = group ? "group_fetch" : "per_minipage_faulting";
    row.params = "molecules=" + std::to_string(g_molecules) +
                 " epochs=" + std::to_string(g_epochs);
    row.iterations = static_cast<uint64_t>(g_epochs);
    row.ns_per_op = r.wall_ms * 1e6 / g_epochs;
    row.values["blocking_faults"] = static_cast<double>(r.blocking_faults);
    row.values["batched_fetches"] = static_cast<double>(r.batched_fetches);
    row.values["modeled_read_us"] = r.modeled_read_phase_us;
    reporter.Add(std::move(row));
  }
  PrintNote("expected: the group fetch converts every blocking read fault of the read");
  PrintNote("phase into a pipelined transfer (no trap, no per-fault wakeup, overlapped");
  PrintNote("service), while the write phase keeps fine-grain minipages -- the");
  PrintNote("arbitration between coarse and fine views the paper's Section 5 sketches.");
  return reporter.Finish();
}
