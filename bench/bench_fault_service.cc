// Fault-service latency by delivery backend: end-to-end service time (fault
// entry to access retry) for read faults and write faults, under the SIGSEGV
// handler backend vs the userfaultfd poller backend, in one process.
//
// Workload: `hosts` hosts share `arrays` single-minipage int arrays. Each
// round a rotating writer stores to every array (write faults: upgrade or
// fetch-for-write, invalidating all other copies), then every host reads
// every array back (read faults rebuilding the copysets). All faults are
// real kernel faults through the application views — the numbers include
// the delivery path the backend choice changes: signal frame setup + sigret
// vs uffd queue read + ioctl wake.
//
// Reported per backend: p50/p99/mean of the read- and write-fault service
// histograms merged across hosts, plus ranged protection calls per fault
// (mv.prot_sets / faults) — the mprotect-coalescing figure of merit. The
// userfaultfd section is skipped (with a note) on kernels without minor +
// write-protect userfaultfd support.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/common/metrics.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"
#include "src/os/fault_handler.h"

namespace millipage {
namespace {

int g_rounds = 40;
constexpr int kArrays = 32;
constexpr uint16_t kHosts = 4;

DsmConfig Cfg(FaultBackend backend) {
  DsmConfig cfg;
  cfg.num_hosts = kHosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  cfg.fault_backend = backend;
  return cfg;
}

struct FaultServiceResult {
  HistogramSnapshot read;
  HistogramSnapshot write;
  uint64_t prot_sets = 0;
  double wall_ms = 0;
};

FaultServiceResult RunFaultService(FaultBackend backend) {
  auto cluster = DsmCluster::Create(Cfg(backend));
  MP_CHECK(cluster.ok()) << cluster.status().ToString();
  std::vector<GlobalPtr<int>> ptrs(kArrays);
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int a = 0; a < kArrays; ++a) {
      ptrs[a] = SharedAlloc<int>(16);
      ptrs[a][0] = a;
    }
  });

  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < g_rounds; ++r) {
      if (host == static_cast<HostId>(r % kHosts)) {
        for (int a = 0; a < kArrays; ++a) {
          ptrs[a][0] = ptrs[a][0] + 1;
        }
      }
      node.Barrier();
      for (int a = 0; a < kArrays; ++a) {
        volatile int sink = ptrs[a][0];
        (void)sink;
      }
      node.Barrier();
    }
  });

  FaultServiceResult out;
  out.wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  for (uint16_t h = 0; h < kHosts; ++h) {
    out.read.Merge((*cluster)->node(h).read_fault_latency());
    out.write.Merge((*cluster)->node(h).write_fault_latency());
    const MetricsSnapshot s = (*cluster)->node(h).SnapshotMetrics();
    const auto it = s.counters.find("mv.prot_sets");
    if (it != s.counters.end()) {
      out.prot_sets += it->second;
    }
  }
  return out;
}

void Report(BenchReporter& reporter, FaultBackend backend) {
  const FaultServiceResult r = RunFaultService(backend);
  const char* name = FaultBackendName(backend);
  const uint64_t faults = r.read.count + r.write.count;
  const double prot_per_fault =
      faults > 0 ? static_cast<double>(r.prot_sets) / static_cast<double>(faults) : 0.0;
  std::printf("  %-10s %-6s %8lu %9.1f %9.1f %9.1f %9.1f %11.2f\n", name, "read",
              static_cast<unsigned long>(r.read.count),
              static_cast<double>(r.read.Quantile(0.5)) / 1e3,
              static_cast<double>(r.read.Quantile(0.99)) / 1e3, r.read.mean() / 1e3,
              r.wall_ms, prot_per_fault);
  std::printf("  %-10s %-6s %8lu %9.1f %9.1f %9.1f %9s %11s\n", name, "write",
              static_cast<unsigned long>(r.write.count),
              static_cast<double>(r.write.Quantile(0.5)) / 1e3,
              static_cast<double>(r.write.Quantile(0.99)) / 1e3, r.write.mean() / 1e3,
              "", "");
  for (const char* kind : {"read", "write"}) {
    const HistogramSnapshot& h = kind[0] == 'r' ? r.read : r.write;
    BenchResult row;
    row.name = "fault_service";
    row.params = std::string("backend=") + name + " kind=" + kind;
    row.iterations = h.count;
    row.ns_per_op = h.mean();
    row.values["p50_ns"] = static_cast<double>(h.Quantile(0.5));
    row.values["p99_ns"] = static_cast<double>(h.Quantile(0.99));
    row.values["prot_sets_per_fault"] = prot_per_fault;
    reporter.Add(std::move(row));
  }
}

}  // namespace
}  // namespace millipage

int main(int argc, char** argv) {
  using namespace millipage;
  const BenchEnv env = BenchEnv::Parse(argc, argv);
  BenchReporter reporter("bench_fault_service", env);
  g_rounds = env.Scaled(40, 5);
  setvbuf(stdout, nullptr, _IONBF, 0);
  PrintHeader("Fault-service latency by delivery backend (us)");
  std::printf("  %-10s %-6s %8s %9s %9s %9s %9s %11s\n", "backend", "kind", "faults",
              "p50 us", "p99 us", "mean us", "wall ms", "prot/fault");
  Report(reporter, FaultBackend::kSigsegv);
  if (FaultHandler::Instance().UffdSupported()) {
    Report(reporter, FaultBackend::kUserfaultfd);
  } else {
    std::printf("  userfaultfd: kernel lacks minor+wp support; section skipped\n");
  }
  reporter.Finish();
  return 0;
}
