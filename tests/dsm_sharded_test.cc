// Sharded minipage management (ManagerPolicy::kSharded): each host runs a
// directory shard and services the minipage, lock, and barrier ids that hash
// to it; host 0 keeps the MPT and routes translated requests to the owning
// shard. These tests verify the results match the centralized manager, that
// request service genuinely spreads across hosts, and the copyset hardening
// (empty-copyset PickReplica, 64-host mask limit) the sharded paths rely on.

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <thread>
#include <vector>

#include "src/common/time_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/directory.h"
#include "src/dsm/global_ptr.h"
#include "src/dsm/node.h"
#include "src/lrc/lrc_cluster.h"
#include "src/net/faulty_transport.h"
#include "src/net/inproc_transport.h"

namespace millipage {
namespace {

DsmConfig ShardedCfg(uint16_t hosts) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.num_views = 8;
  cfg.manager_policy = ManagerPolicy::kSharded;
  return cfg;
}

// The same deterministic workload — disjoint writers, full cross-reads —
// must produce identical shared-memory contents whether the directory is
// centralized or sharded.
TEST(Sharded, ValuesMatchCentralized) {
  constexpr uint16_t kHosts = 4;
  constexpr int kArrays = 8;
  for (ManagerPolicy policy : {ManagerPolicy::kCentralized, ManagerPolicy::kSharded}) {
    DsmConfig cfg = ShardedCfg(kHosts);
    cfg.manager_policy = policy;
    auto cluster = DsmCluster::Create(cfg);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    std::vector<GlobalPtr<int>> arrays(kArrays);
    (*cluster)->RunOnManager([&](DsmNode&) {
      for (int a = 0; a < kArrays; ++a) {
        arrays[a] = SharedAlloc<int>(16);
        arrays[a][0] = 0;
      }
    });
    (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
      node.Barrier();
      for (int a = 0; a < kArrays; ++a) {
        if (a % kHosts == host) {
          arrays[a][0] = 1000 + a;  // each array has exactly one writer
        }
      }
      node.Barrier();
      for (int a = 0; a < kArrays; ++a) {
        EXPECT_EQ(arrays[a][0], 1000 + a) << "host " << host << " array " << a;
      }
      node.Barrier();
    });
  }
}

// With writers spread over many minipages, every host's shard must service
// requests — and only host 0 (the MPT host) routes translated requests away.
TEST(Sharded, RequestsSpreadAcrossShards) {
  constexpr uint16_t kHosts = 4;
  constexpr int kArrays = 12;
  auto cluster = DsmCluster::Create(ShardedCfg(kHosts));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  std::vector<GlobalPtr<int>> arrays(kArrays);
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int a = 0; a < kArrays; ++a) {
      arrays[a] = SharedAlloc<int>(16);
      arrays[a][0] = a;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int round = 0; round < 3; ++round) {
      for (int a = 0; a < kArrays; ++a) {
        if ((a + round) % kHosts == host) {
          arrays[a][0] = arrays[a][0] + 1;  // rotating exclusive writer
        }
      }
      node.Barrier();
    }
  });
  uint64_t total_served = 0;
  for (uint16_t h = 0; h < kHosts; ++h) {
    Directory* dir = (*cluster)->node(h).directory();
    ASSERT_NE(dir, nullptr) << "sharded node " << h << " has no directory shard";
    const ManagerCounters& mc = dir->counters();
    EXPECT_GT(mc.requests_served, 0u) << "shard " << h << " serviced nothing";
    total_served += mc.requests_served;
    if (h != kManagerHost) {
      EXPECT_EQ(mc.remote_routed, 0u) << "only the MPT host routes";
    }
  }
  EXPECT_GT((*cluster)->node(kManagerHost).directory()->counters().remote_routed, 0u)
      << "host 0 never handed a translated request to another shard";
  EXPECT_EQ((*cluster)->TotalManagerCounters().requests_served, total_served);
}

// A lock-protected counter per lock id, with ids hashing to every shard:
// exclusion and hand-off must hold when lock service is distributed.
TEST(Sharded, LocksHashAcrossShards) {
  constexpr uint16_t kHosts = 3;
  constexpr int kLocks = 6;
  constexpr int kRounds = 4;
  auto cluster = DsmCluster::Create(ShardedCfg(kHosts));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> counters;
  (*cluster)->RunOnManager([&](DsmNode&) {
    counters = SharedAlloc<int>(kLocks);
    for (int i = 0; i < kLocks; ++i) {
      counters[i] = 0;
    }
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId) {
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      for (int l = 0; l < kLocks; ++l) {
        node.Lock(l);
        counters[l] = counters[l] + 1;
        node.Unlock(l);
      }
    }
    node.Barrier();
  });
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (int l = 0; l < kLocks; ++l) {
      EXPECT_EQ(counters[l], kHosts * kRounds) << "lock " << l;
    }
  });
}

// Routing regression for the zero-copy privileged-view path: when the owning
// shard itself holds the serving replica, it serves the request inline from
// its privileged view. Host 1 takes ownership of a minipage on shard 1, then
// host 0 faults it back — the request crosses translate → shard → requester.
TEST(Sharded, OwningShardServesItsOwnReplica) {
  auto cluster = DsmCluster::Create(ShardedCfg(2));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  GlobalPtr<int> a;
  GlobalPtr<int> b;
  (*cluster)->RunOnManager([&](DsmNode&) {
    a = SharedAlloc<int>(16);  // minipage 0 -> shard 0
    b = SharedAlloc<int>(16);  // minipage 1 -> shard 1
    a[0] = 1;
    b[0] = 2;
  });
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    if (host == 1) {
      b[0] = 22;  // host 1 becomes the sole holder of shard 1's minipage
    }
    node.Barrier();
    if (host == 0) {
      // Shard 1 is both manager and replica for b: the read is served inline
      // from its privileged view.
      EXPECT_EQ(b[0], 22);
    }
    node.Barrier();
  });
  Directory* shard1 = (*cluster)->node(1).directory();
  ASSERT_NE(shard1, nullptr);
  EXPECT_GT(shard1->counters().requests_served, 0u);
}

// LRC variant: sharded lock/barrier service under the relaxed protocol.
TEST(Sharded, LrcLocksAndBarriers) {
  constexpr uint16_t kHosts = 3;
  constexpr int kLocks = 5;
  constexpr int kRounds = 3;
  auto cluster = LrcCluster::Create(ShardedCfg(kHosts));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  LrcPtr<int> counters;
  (*cluster)->RunOnManager([&](LrcNode&) {
    counters = LrcAlloc<int>(kLocks);
    for (int i = 0; i < kLocks; ++i) {
      counters[i] = 0;
    }
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId) {
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      for (int l = 0; l < kLocks; ++l) {
        node.Lock(l);
        counters[l] = counters[l] + 1;
        node.Unlock(l);  // release: the diff reaches the home before hand-off
      }
    }
    node.Barrier();
  });
  (*cluster)->RunOnManager([&](LrcNode& node) {
    node.Lock(0);
    for (int l = 0; l < kLocks; ++l) {
      EXPECT_EQ(counters[l], kHosts * kRounds) << "lock " << l;
    }
    node.Unlock(0);
  });
}

// ---- Failover: a survivor adopts the dead shard's lock and barrier queues --

// Host 2 is both lock 2's shard (2 mod 3) and the barrier shard
// (kBarrierShardId mod 3). It dies while host 0 holds the lock and host 1 is
// queued waiting for it; the adopting shard must reconstruct the holder by
// probing the live hosts, adopt the re-sent waiter, and hand the lock over on
// release — then run a full barrier round for the two-host live quorum.
TEST(Sharded, AdoptsDeadShardLockAndBarrierQueues) {
  DsmConfig cfg = ShardedCfg(3);
  cfg.request_timeout_ms = 200;
  cfg.max_request_retries = 3;
  cfg.sync_timeout_ms = 5000;
  InProcTransport inner(3);
  FaultyTransport t0(&inner);
  FaultyTransport t1(&inner);
  FaultyTransport t2(&inner);
  FaultyTransport* ts[3] = {&t0, &t1, &t2};
  std::unique_ptr<DsmNode> nodes[3];
  for (HostId h = 0; h < 3; ++h) {
    Result<std::unique_ptr<DsmNode>> r = DsmNode::Create(cfg, h, ts[h]);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    nodes[h] = std::move(*r);
    nodes[h]->Start();
  }

  constexpr uint32_t kLock = 2;  // 2 mod 3 == 2: serviced by the doomed shard
  ASSERT_TRUE(nodes[0]->TryLock(kLock).ok());

  // Host 1 queues at shard 2 for the held lock, then the shard dies under it.
  // The membership kick re-sends the acquire to the adopter, which probes the
  // live hosts, finds host 0 holding, and re-queues host 1.
  Status waiter_st;
  std::thread waiter([&] { waiter_st = nodes[1]->TryLock(kLock); });
  ::usleep(100 * 1000);  // let the acquire reach shard 2's queue
  t0.KillPeer(2);
  t1.KillPeer(2);
  const uint64_t start = MonotonicNowNs();
  while (nodes[0]->member_epoch() < 1 || nodes[1]->member_epoch() < 1) {
    ASSERT_LT((MonotonicNowNs() - start) / 1000000, 5000u) << "no epoch bump";
    ::usleep(1000);
  }
  ::usleep(50 * 1000);  // give the adopter's holder probe time to resolve
  nodes[0]->Unlock(kLock);  // release routes to the adopter, not the corpse
  waiter.join();
  EXPECT_TRUE(waiter_st.ok()) << waiter_st.ToString();
  nodes[1]->Unlock(kLock);

  // The barrier queue moved too: a full round completes on the live quorum.
  Status b0, b1;
  std::thread h0([&] { b0 = nodes[0]->TryBarrier(); });
  std::thread h1([&] { b1 = nodes[1]->TryBarrier(); });
  h0.join();
  h1.join();
  EXPECT_TRUE(b0.ok()) << b0.ToString();
  EXPECT_TRUE(b1.ok()) << b1.ToString();
  EXPECT_TRUE(nodes[0]->health().ok());
  EXPECT_TRUE(nodes[1]->health().ok());

  for (auto& n : nodes) {
    n->BeginShutdown();
  }
  for (int h = 2; h >= 0; --h) {
    nodes[h]->Stop();
  }
}

// ---- Copyset hardening (the bugs sharding exposed) -------------------------

// PickReplica on an empty copyset used to divide by zero (hint % 0) and feed
// ctzll(0) — both UB returning a garbage host. It must die loudly instead.
TEST(ShardedDeathTest, PickReplicaOnEmptyCopysetDies) {
  DirEntry e;
  ASSERT_TRUE(e.copyset.Empty());
  EXPECT_DEATH((void)e.PickReplica(0), "empty copyset");
}

// Host ids >= kMaxHosts exceed the wire format's 10-bit host field (a corrupt
// id, not a big cluster). The accessors reject them loudly — ids in
// [64, kMaxHosts) are now valid and spill into the HostSet bitmap...
TEST(ShardedDeathTest, CopysetHostIdPastMaxDies) {
  DirEntry e;
  e.AddCopy(64);  // used to be fatal: now a legal large-cluster id
  e.AddCopy(1023);
  EXPECT_TRUE(e.HasCopy(64));
  EXPECT_TRUE(e.HasCopy(1023));
  EXPECT_EQ(e.CopyCount(), 2);
  EXPECT_DEATH(e.AddCopy(kMaxHosts), "out of range");
  EXPECT_DEATH((void)e.HasCopy(2000), "out of range");
  EXPECT_DEATH(e.RemoveCopy(kMaxHosts), "out of range");
}

// ...and cluster construction refuses deployments that could produce them.
TEST(Sharded, RejectsMoreThanMaxHosts) {
  DsmConfig cfg = ShardedCfg(static_cast<uint16_t>(kMaxHosts + 1));
  cfg.num_views = 1;
  auto cluster = DsmCluster::Create(cfg);
  ASSERT_FALSE(cluster.ok());
  EXPECT_EQ(cluster.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace millipage
