file(REMOVE_RECURSE
  "CMakeFiles/mp_net.dir/inproc_transport.cc.o"
  "CMakeFiles/mp_net.dir/inproc_transport.cc.o.d"
  "CMakeFiles/mp_net.dir/message.cc.o"
  "CMakeFiles/mp_net.dir/message.cc.o.d"
  "CMakeFiles/mp_net.dir/socket_transport.cc.o"
  "CMakeFiles/mp_net.dir/socket_transport.cc.o.d"
  "libmp_net.a"
  "libmp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
