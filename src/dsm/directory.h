// Manager-side directory: per-minipage copyset/ownership, in-service
// serialization with request queueing (the source of the paper's "competing
// requests" statistic), pending-write invalidation rounds, plus the lock and
// barrier tables. One Directory instance is one manager *shard*: centralized
// deployments run a single shard on host 0; sharded deployments
// (ManagerPolicy::kSharded) run one per host, holding exactly the ids that
// hash to it. All state in a shard is touched exclusively by its host's
// server thread, so no locking is needed.

#ifndef SRC_DSM_DIRECTORY_H_
#define SRC_DSM_DIRECTORY_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/host_set.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/multiview/minipage.h"
#include "src/net/message.h"

namespace millipage {

// Directory entry for one minipage.
struct DirEntry {
  HostSet copyset;          // hosts holding a copy
  bool writable = false;    // single copyset member holds ReadWrite
  bool in_service = false;  // a request is being serviced (until ACK)
  HostId in_service_for = 0;      // requester of the in-service transaction
  // The in-service request itself, kept so repair can re-issue the
  // transaction against a surviving replica when its data source dies.
  // Closing the service instead would break the 1:1 pairing between open
  // services and the requester ACKs that retire them (ACKs carry no
  // generation, so a stale ACK would close the wrong transaction).
  MsgHeader in_service_req{};
  std::deque<MsgHeader> pending;  // competing requests, FIFO

  // Outstanding invalidation round for a write request. The outstanding set
  // is a host set (not a count) so copyset repair can retire the
  // invalidations a dead host will never answer.
  bool write_pending = false;
  MsgHeader pending_write{};
  HostId write_remaining = 0;  // host that will supply the data
  HostSet invalidates_pending;

  // Outstanding confirmations for an in-service push-update broadcast.
  uint32_t push_outstanding = 0;

  // The replica asked to supply data for the in-service transaction (read
  // fetch or write forward). The requester joins the copyset at grant time,
  // before its copy exists, so when the source dies mid-flight repair must
  // know whom the transaction was waiting on to retract that provisional
  // copy and close or restart the service.
  bool fetch_pending = false;
  HostId fetch_from = 0;

  // ---- Recovery state ------------------------------------------------------
  // An adopted id whose copyset is being rebuilt: the new owning shard has
  // broadcast kCopysetQuery and is waiting for the hosts in
  // rebuild_pending to answer. Requests queue in `pending` meanwhile.
  bool rebuilding = false;
  HostSet rebuild_pending;
  // The minipage's sole copy died with its host: every copy is gone and the
  // id is permanently degraded. Requests are answered with a per-minipage
  // error (kFlagAbort data reply), never served — and never a cluster abort.
  bool lost = false;

  // Host ids come off the wire, so a corrupt id must fail loudly instead of
  // silently aliasing membership. HostSet fatals on ids ≥ kMaxHosts (the
  // wire format's 10-bit ceiling); node/cluster construction rejects
  // num_hosts outside [1, kMaxHosts].
  bool HasCopy(HostId h) const { return copyset.Contains(h); }
  void AddCopy(HostId h) { copyset.Add(h); }
  void RemoveCopy(HostId h) { copyset.Remove(h); }
  int CopyCount() const { return copyset.Count(); }
  // Any copyset member, preferring one different from `avoid`. `hint`
  // rotates the starting position: when read ACKs are elided the copyset can
  // transiently contain members whose copy is still inbound, and a rotating
  // choice guarantees a re-routed request eventually reaches the (always
  // existing) member with stable data.
  HostId PickReplica(HostId avoid, uint32_t hint = 0) const {
    // An empty copyset has no replica to pick: hint % 0 divides by zero, so
    // fail loudly instead of returning garbage.
    MP_CHECK(!copyset.Empty()) << "PickReplica on an empty copyset (minipage has no holder)";
    HostSet others = copyset;
    others.Remove(avoid);
    const HostSet& pool = others.Empty() ? copyset : others;
    const int n = pool.Count();
    const int skip = static_cast<int>(hint % static_cast<uint32_t>(n));
    return static_cast<HostId>(pool.SelectNth(skip));
  }
};

struct LockEntry {
  bool held = false;
  HostId holder = 0;
  std::deque<MsgHeader> waiters;

  // Adopted-lock rebuild: before first grant after a failover, the new
  // owning shard probes every live host for an existing holder (a grant by
  // the dead shard that is still live must be honored, not double-granted).
  // Acquires queue in `waiters` until the hosts in probe_pending answer.
  // `probed` latches so an adopted lock is probed at most once.
  bool probing = false;
  bool probed = false;
  HostSet probe_pending;

  bool HasWaiter(HostId h) const {
    for (const MsgHeader& w : waiters) {
      // Queued waiters were stripped of their epoch tag at receive time, so
      // `from` is a pure host id — no FromHost() re-masking (which would
      // alias ids ≥ 64).
      if (w.from == h) {
        return true;
      }
    }
    return false;
  }

  // Collapses a re-sent acquire into its queued predecessor, keeping the
  // freshest header: a membership kick re-sends with a new (slot, generation)
  // seq, and a grant built from the stale queued header would be discarded by
  // the waiter as an abandoned attempt's reply — wedging the lock. Returns
  // false if `h.from` was not queued (the caller pushes the header instead).
  bool RefreshWaiter(const MsgHeader& h) {
    for (MsgHeader& w : waiters) {
      if (w.from == h.from) {
        w = h;
        return true;
      }
    }
    return false;
  }
};

struct BarrierState {
  uint32_t generation = 0;
  // Arrival count, used by the LRC variant's fixed-membership barrier.
  uint32_t arrived = 0;
  // Arrival set, used by the DSM barrier: duplicate entries (post-failover
  // re-sends) collapse instead of double-counting, and release re-evaluates
  // against the live-host set when membership shrinks.
  HostSet arrived_set;
  std::vector<MsgHeader> waiters;
  // Adopted-barrier generation probe (see DsmNode::StartBarrierProbe): true
  // while live hosts' completed-round counts are being collected to seed
  // `generation` after the original barrier shard died.
  bool probing = false;
  bool probed = false;
  HostSet probe_pending;
};

class Directory {
 public:
  DirEntry& Entry(MinipageId id) {
    MP_CHECK(id != kInvalidMinipage) << "directory access with invalid minipage id";
    if (id >= entries_.size()) {
      entries_.resize(id + 1);
    }
    return entries_[id];
  }

  LockEntry& Lock(uint32_t lock_id) {
    if (lock_id >= locks_.size()) {
      locks_.resize(lock_id + 1);
    }
    return locks_[lock_id];
  }

  BarrierState& barrier() { return barrier_; }
  const BarrierState& barrier() const { return barrier_; }
  ManagerCounters& counters() { return counters_; }
  const ManagerCounters& counters() const { return counters_; }

  size_t num_entries() const { return entries_.size(); }
  // Lock ids with table slots so far (repair iterates [0, num_locks)).
  size_t num_locks() const { return locks_.size(); }

  // Minipages currently in service (their ACK or invalidation round is
  // outstanding). Read from liveness diagnostics off the manager thread, so
  // the count is a best-effort racy snapshot.
  size_t InServiceCount() const {
    size_t n = 0;
    for (const DirEntry& e : entries_) {
      n += e.in_service ? 1 : 0;
    }
    return n;
  }

 private:
  std::vector<DirEntry> entries_;
  std::vector<LockEntry> locks_;
  BarrierState barrier_;
  ManagerCounters counters_;
};

}  // namespace millipage

#endif  // SRC_DSM_DIRECTORY_H_
