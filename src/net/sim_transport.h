// SimNet: a deterministic discrete-event network for protocol simulation.
//
// Unlike InProcTransport (real threads racing on mailboxes), SimNet gives a
// single external scheduler ownership of every message delivery: sends only
// enqueue, stamped with a virtual-clock arrival time drawn from a seeded RNG,
// and nothing is delivered until the driver calls ScheduleNext(), which picks
// the globally earliest arrival (seeded tie-break), advances the virtual
// clock, and stages exactly one message for its destination. The destination
// node then consumes it with DsmNode::PumpOne(). Two runs with the same seed
// and the same driver decisions therefore produce byte-for-byte identical
// delivery orders — the reproducibility contract `ctest -L sim` checks.
//
// Per-(sender, receiver) FIFO is preserved: a message's arrival time is
// clamped to be no earlier than the previous message on the same pair, and
// ScheduleNext only ever considers pair-queue heads. Each host talks to the
// fabric through its own SimEndpoint (a Transport), which is how the fabric
// learns the sender — the base Transport::Send has no "from" parameter.

#ifndef SRC_NET_SIM_TRANSPORT_H_
#define SRC_NET_SIM_TRANSPORT_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/net/message.h"
#include "src/net/transport.h"

namespace millipage {

struct SimOptions {
  // Uniform per-message latency jitter, in virtual microseconds. The spread
  // is what lets different seeds explore different interleavings.
  uint64_t min_delay_us = 1;
  uint64_t max_delay_us = 100;
};

class SimEndpoint;

class SimNet {
 public:
  SimNet(uint16_t num_hosts, uint64_t seed, SimOptions options = SimOptions{});
  ~SimNet();

  SimNet(const SimNet&) = delete;
  SimNet& operator=(const SimNet&) = delete;

  // The per-host Transport to hand to DsmNode::Create.
  Transport* endpoint(HostId h) const;

  uint16_t num_hosts() const { return num_hosts_; }

  // Virtual clock, microseconds. Advances only inside ScheduleNext.
  uint64_t now_us() const;

  // Messages enqueued or staged but not yet consumed by a Poll.
  size_t pending() const;

  // Picks the earliest-arrival queued message (seeded tie-break), advances
  // the virtual clock to its arrival, and stages it for its destination.
  // Returns false when no message is pending; otherwise *dst names the host
  // whose PumpOne() will consume it.
  bool ScheduleNext(HostId* dst);

  // Deterministic targeted loss: the next `count` sends of `type` addressed
  // to `dst` are swallowed at enqueue time.
  void Drop(HostId dst, MsgType type, uint32_t count);

  // Kills host `v` at the current virtual time: every queued or staged
  // message from or to it vanishes (in-flight datagrams die with the host),
  // and all future sends to or from it are silently swallowed. Sends to a
  // dead host still return Ok — a datagram fabric reports no delivery
  // failure — so the failure is only observable as missing replies, exactly
  // the signal the node-side failure detector works from.
  void KillHost(HostId v);
  uint64_t dead_mask() const;

  // Messages scheduled + dropped so far (diagnostics).
  uint64_t delivered() const;
  uint64_t dropped() const;

 private:
  friend class SimEndpoint;

  struct SimMsg {
    MsgHeader h;
    std::vector<std::byte> payload;
    uint64_t arrival_us = 0;
  };

  struct DropRule {
    HostId dst = 0;
    MsgType type = MsgType::kReadRequest;
    uint32_t remaining = 0;
  };

  Status SendFrom(HostId from, HostId to, const MsgHeader& h, const void* payload,
                  size_t len);
  Result<bool> PollStaged(HostId me, MsgHeader* h, const PayloadSink& sink);

  size_t PairIndex(HostId from, HostId to) const {
    return static_cast<size_t>(from) * num_hosts_ + to;
  }

  const uint16_t num_hosts_;
  const SimOptions options_;

  mutable std::mutex mu_;
  Rng rng_;  // scheduler-side draws (tie-breaks) — driver thread only
  // Latency jitter draws come from a per-pair stream, so a message's arrival
  // time depends only on its position in its own (sender, receiver) channel —
  // not on how concurrent senders on other pairs interleave their enqueues.
  // Without this, the membership-recovery kick (which wakes several hosts'
  // workers at once) would make delivery schedules race-dependent.
  std::vector<Rng> pair_rng_;
  uint64_t now_us_ = 0;
  uint64_t delivered_ = 0;
  uint64_t dropped_ = 0;
  uint64_t dead_mask_ = 0;
  std::vector<std::deque<SimMsg>> queues_;      // indexed by PairIndex
  std::vector<uint64_t> pair_tail_us_;          // last arrival per pair (FIFO clamp)
  std::vector<std::deque<SimMsg>> staged_;      // per destination
  std::vector<DropRule> drop_rules_;
  std::vector<std::unique_ptr<SimEndpoint>> endpoints_;
};

}  // namespace millipage

#endif  // SRC_NET_SIM_TRANSPORT_H_
