// Deterministic protocol-simulation harness.
//
// RunSim builds a miniature DSM cluster whose nodes are never Start()ed:
// instead of server threads and wall-clock waits, a single driver thread
// owns every scheduling decision. One worker thread per host executes that
// host's op script one operation at a time; the driver takes an action only
// when the system is quiescent — every worker is idle, finished, or provably
// parked inside a wait slot (WaitSlots::WaiterBlocked) — and then either
// launches one worker op or delivers one message picked by the seeded SimNet
// scheduler (DsmNode::PumpOne). Reply deadlines are disabled, so no retry
// ever fires on wall time.
//
// Under this discipline the entire run — protocol message order, protection
// transitions, application reads and writes — is a deterministic function of
// the seed, and the recorded trace is byte-for-byte reproducible: the
// property the schedule sweep in tests/sim_test.cc relies on to shrink and
// replay failures.

#ifndef SRC_CHECK_SIM_HARNESS_H_
#define SRC_CHECK_SIM_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/common/trace.h"
#include "src/dsm/config.h"

namespace millipage {

enum class SimOpKind : uint8_t {
  kAlloc,      // allocate every cell (host 0 only, once, before any access)
  kRead,       // load the cell, record kAppRead
  kWrite,      // store a unique value, record kAppWrite
  kLockedRmw,  // lock(cell) → read → write → unlock
  kBarrier,    // global barrier (every host's script needs the same count)
};

struct SimOp {
  SimOpKind kind = SimOpKind::kRead;
  uint32_t cell = 0;
};

struct SimWorkload {
  uint16_t hosts = 3;
  uint32_t cells = 4;         // shared uint64 cells, one minipage each
  uint32_t rounds = 3;        // barrier-separated rounds
  uint32_t ops_per_round = 4; // per host per round
  bool use_locks = true;      // mix kLockedRmw into generated scripts
  // Directory placement under test: centralized (host 0 serves everything)
  // or sharded (each host serves the ids hashing to it).
  ManagerPolicy policy = ManagerPolicy::kCentralized;
  // Host-death injection: at a seeded driver step, permanently kill one
  // non-zero host (victim = 1 + seed % (hosts-1)) and drive the survivors'
  // membership recovery. The kill fires only while the victim is between
  // script ops, so the remaining scripts stay executable; survivor accesses
  // to minipages that died with their sole copy are skipped (no kAppRead/
  // kAppWrite is recorded for them). Requires policy == kSharded — with a
  // centralized directory a dead host is unrecoverable by design.
  bool kill_one_host = false;
  // Coherence-traffic batching under test (DsmConfig::batch_coherence).
  // Off reproduces the one-datagram-per-minipage paper protocol; batched and
  // unbatched runs of the same script must agree on every application-level
  // read and write.
  bool batch_coherence = true;
  // Fault backend under test. kUserfaultfd runs the same scripts with the
  // views wired to the uffd backend (falling back to sigsegv when the kernel
  // lacks support); the harness then pre-faults every access through
  // FaultService — a worker blocked inside a kernel fault is invisible to
  // the quiescence detector, so the uffd event path must never be the one
  // driving protocol progress in the deterministic sim.
  FaultBackend backend = FaultBackend::kSigsegv;
};

struct SimResult {
  Status status = Status::Ok();   // driver outcome (deadlock, op failure, ...)
  std::vector<TraceEvent> history;
  uint64_t steps = 0;             // driver actions taken
  uint64_t virtual_us = 0;        // final virtual-clock reading

  // Host-death injection outcome (kill_one_host runs only).
  bool killed = false;            // the kill actually fired
  uint16_t killed_host = 0;
  uint64_t kill_virtual_us = 0;   // virtual clock at the kill
  uint64_t minipages_lost = 0;    // summed over surviving shards

  // Coherence-batching volume, summed over all hosts: multi-record frames
  // sent and the records they carried (0/0 when batching is off or no frame
  // ever coalesced more than one record).
  uint64_t batch_frames = 0;
  uint64_t batch_records = 0;

  std::string FormattedHistory() const { return FormatTraceHistory(history); }
};

// Deterministically derives per-host scripts from `seed` (GenerateScript) and
// runs them under the seed-driven scheduler.
SimResult RunSim(uint64_t seed, const SimWorkload& workload);

// Runs explicit scripts: script[h] is host h's op sequence. Host 0's script
// must begin with kAlloc, every host's first access-phase op should sit
// behind a kBarrier (so allocation completes first), and all hosts must
// execute the same number of barriers.
SimResult RunScript(uint64_t seed, const SimWorkload& workload,
                    const std::vector<std::vector<SimOp>>& script);

// The script generator used by RunSim, exposed so tests can inspect it.
std::vector<std::vector<SimOp>> GenerateScript(uint64_t seed, const SimWorkload& w);

}  // namespace millipage

#endif  // SRC_CHECK_SIM_HARNESS_H_
