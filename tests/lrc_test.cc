// Tests for the home-based release-consistency extension (the paper's
// Section 5 "Reduced-Consistency Protocols" direction): correctness at
// synchronization points, concurrent-writer merging through diffs, and the
// false-sharing tolerance that motivates the protocol.

#include <gtest/gtest.h>

#include "src/lrc/lrc_cluster.h"

namespace millipage {
namespace {

DsmConfig LrcConfig(uint16_t hosts, uint32_t chunking = 1, bool page_based = false) {
  DsmConfig cfg;
  cfg.num_hosts = hosts;
  cfg.object_size = 2 << 20;
  cfg.num_views = 8;
  cfg.chunking_level = chunking;
  cfg.page_based = page_based;
  return cfg;
}

TEST(Lrc, SingleHostReadWrite) {
  auto cluster = LrcCluster::Create(LrcConfig(1));
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  (*cluster)->RunOnManager([](LrcNode& node) {
    LrcPtr<int> p = LrcAlloc<int>(4);
    p[0] = 11;
    p[3] = 44;
    node.Barrier();
    EXPECT_EQ(p[0], 11);
    EXPECT_EQ(p[3], 44);
  });
}

TEST(Lrc, WritesVisibleAfterBarrier) {
  auto cluster = LrcCluster::Create(LrcConfig(3));
  ASSERT_TRUE(cluster.ok());
  LrcPtr<int> p;
  (*cluster)->RunOnManager([&](LrcNode&) {
    p = LrcAlloc<int>(8);
    for (int i = 0; i < 8; ++i) {
      p[i] = 0;
    }
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    node.Barrier();
    p[host] = 100 + host;  // disjoint writers, possibly same minipage
    node.Barrier();        // release: diffs flushed; acquire: caches dropped
    for (int h = 0; h < 3; ++h) {
      EXPECT_EQ(p[h], 100 + h) << "host " << host << " reading slot " << h;
    }
    node.Barrier();
  });
}

TEST(Lrc, ConcurrentWritersOnOneMinipageMerge) {
  // The LRC selling point: multiple hosts write different words of the SAME
  // minipage between barriers; run-length diffs merge at the home.
  auto cluster = LrcCluster::Create(LrcConfig(4, /*chunking=*/1, /*page_based=*/true));
  ASSERT_TRUE(cluster.ok());
  LrcPtr<int> p;
  (*cluster)->RunOnManager([&](LrcNode&) {
    p = LrcAlloc<int>(256);  // one full page, one minipage
    for (int i = 0; i < 256; ++i) {
      p[i] = 0;
    }
  });
  constexpr int kRounds = 5;
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      for (int i = 0; i < 64; ++i) {
        const int idx = host * 64 + i;  // disjoint quarters of the page
        p[idx] = p[idx] + idx;
      }
      node.Barrier();
    }
  });
  (*cluster)->RunOnManager([&](LrcNode&) {
    for (int i = 0; i < 256; ++i) {
      EXPECT_EQ(p[i], kRounds * i) << "slot " << i;
    }
  });
  // No write ever invalidated another host's copy mid-epoch: each host
  // upgraded locally after its first fetch of the round.
  const LrcCounters totals = (*cluster)->TotalCounters();
  EXPECT_GT(totals.diffs_flushed, 0u);
  EXPECT_EQ(totals.diffs_flushed, totals.diffs_applied);
}

TEST(Lrc, LockProtectedCounter) {
  auto cluster = LrcCluster::Create(LrcConfig(3));
  ASSERT_TRUE(cluster.ok());
  LrcPtr<int> counter;
  (*cluster)->RunOnManager([&](LrcNode&) {
    counter = LrcAlloc<int>(1);
    *counter = 0;
  });
  constexpr int kPerHost = 20;
  (*cluster)->RunParallel([&](LrcNode& node, HostId) {
    for (int i = 0; i < kPerHost; ++i) {
      node.Lock(5);  // acquire: drop caches -> reads see the latest master
      *counter = *counter + 1;
      node.Unlock(5);  // release: flush the diff home
    }
    node.Barrier();
  });
  (*cluster)->RunOnManager([&](LrcNode&) { EXPECT_EQ(*counter, 3 * kPerHost); });
}

TEST(Lrc, HomeWritesNeedNoProtocol) {
  // A host writing minipages homed at itself never sends a message after
  // the initial grant.
  auto cluster = LrcCluster::Create(LrcConfig(2));
  ASSERT_TRUE(cluster.ok());
  // Allocate until we find a minipage homed at host 1.
  LrcPtr<int> homed1;
  (*cluster)->RunOnManager([&](LrcNode& node) {
    for (int i = 0; i < 4; ++i) {
      LrcPtr<int> p = LrcAlloc<int>(1);
      // Home is id % hosts; ids ascend with allocation order.
      if (node.HomeOf(static_cast<MinipageId>(i)) == 1) {
        homed1 = p;
      }
    }
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    node.Barrier();
    if (host == 1) {
      const uint64_t before = node.counters().messages_sent;
      for (int i = 0; i < 100; ++i) {
        *homed1 = *homed1 + 1;  // first fault: home grant; then free
      }
      const uint64_t after = node.counters().messages_sent;
      EXPECT_LE(after - before, 2u) << "home writes must be message-free";
    }
    node.Barrier();
    EXPECT_EQ(*homed1, 100);
    node.Barrier();
  });
}

TEST(Lrc, FalseSharingCostGoneWithPageGranularity) {
  // The alternating-writers pattern that costs the SC page-based baseline a
  // steal per round costs LRC one diff per round and zero invalidations.
  constexpr int kRounds = 20;
  auto cluster = LrcCluster::Create(LrcConfig(2, 1, /*page_based=*/true));
  ASSERT_TRUE(cluster.ok());
  LrcPtr<int> a;
  LrcPtr<int> b;
  (*cluster)->RunOnManager([&](LrcNode&) {
    a = LrcAlloc<int>(1);
    b = LrcAlloc<int>(1);  // same page => same minipage
    *a = 0;
    *b = 0;
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < kRounds; ++r) {
      if (host == 0) {
        *a = *a + 1;
      } else {
        *b = *b + 1;
      }
      node.Barrier();
    }
    EXPECT_EQ(*a, kRounds);
    EXPECT_EQ(*b, kRounds);
    node.Barrier();
  });
  const LrcCounters totals = (*cluster)->TotalCounters();
  // Each host refetches the page once per epoch (acquire dropped it), but
  // writes never ping-pong ownership: fetch count ~= rounds per non-home
  // host, and every write after the fetch is local.
  EXPECT_GT(totals.local_upgrades + totals.twins_created, 0u);
  EXPECT_EQ(totals.diffs_flushed, totals.diffs_applied);
}

TEST(Lrc, ChunkedAllocationsShareMinipages) {
  auto cluster = LrcCluster::Create(LrcConfig(2, /*chunking=*/4));
  ASSERT_TRUE(cluster.ok());
  std::vector<LrcPtr<int>> cells;
  (*cluster)->RunOnManager([&](LrcNode&) {
    // Allocate first, initialize second: under LRC the initializing writes
    // fault (data is homed remotely), and any protocol traffic closes the
    // open aggregation chunk — interleaving would defeat chunking.
    for (int i = 0; i < 8; ++i) {
      cells.push_back(LrcAlloc<int>(1));
    }
    for (int i = 0; i < 8; ++i) {
      *cells[static_cast<size_t>(i)] = i;
    }
  });
  (*cluster)->RunParallel([&](LrcNode& node, HostId host) {
    node.Barrier();
    if (host == 1) {
      for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(*cells[static_cast<size_t>(i)], i);
      }
      // 8 allocations at chunking 4 = 2 minipages: reading all 8 cells takes
      // at most one fault per minipage (fetches counts serves at this host
      // in its home role, so only read_faults is the requester-side metric).
      EXPECT_LE(node.counters().read_faults, 2u);
    }
    node.Barrier();
  });
}

}  // namespace
}  // namespace millipage
