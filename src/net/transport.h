// Transport: the reliable, FIFO, message-boundary-preserving service the DSM
// needs from its messaging layer (the role Illinois FastMessages plays in
// the paper). Three implementations:
//   * InProcTransport  — per-host mailboxes inside one process (the
//     in-process cluster mode);
//   * SocketTransport  — AF_UNIX SOCK_SEQPACKET full mesh (one process per
//     host, the paper's deployment shape);
//   * UringTransport   — the same SEQPACKET mesh driven through io_uring:
//     multishot receive with a registered buffer ring and batched send
//     submission, so a burst of messages costs one syscall (or none).

#ifndef SRC_NET_TRANSPORT_H_
#define SRC_NET_TRANSPORT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <utility>

#include "src/common/status.h"
#include "src/net/message.h"

namespace millipage {

// Two-stage receive: after the header is read, the transport asks the sink
// where the payload (h.pgsize bytes) should land — typically an address in
// the privileged view — and receives it directly there. Returning nullptr
// drops the payload.
using PayloadSink = std::function<std::byte*(const MsgHeader& h)>;

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends `h` (plus `len` payload bytes from `payload` when non-null) to
  // host `to`. Reliable and FIFO per (sender, receiver) pair.
  virtual Status Send(HostId to, MsgHeader h, const void* payload, size_t len) = 0;

  // Receives at most one message addressed to `me`. Returns true and fills
  // *h if a message was consumed within `timeout_us` (0 = non-blocking).
  virtual Result<bool> Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                            uint64_t timeout_us) = 0;

  virtual uint16_t num_hosts() const = 0;

  // Send-burst window. Between BeginBurst and EndBurst a transport MAY defer
  // handing queued sends to the kernel; EndBurst releases everything at once
  // (UringTransport turns a coalescer flush of N frames into one
  // io_uring_enter). Nestable — only the outermost EndBurst releases — and a
  // no-op on transports that submit eagerly. Decorators must forward both.
  virtual void BeginBurst() {}
  virtual void EndBurst() {}

  // Liveness: invoked (from whichever thread detects it, typically the
  // poller) when the transport discovers that `peer` is unreachable — its
  // connection saw EOF/reset, or a fault injector declared it dead. One
  // handler per transport object; register before traffic starts. The
  // shared InProcTransport never detects peer death itself (threads in one
  // process don't vanish); only decorators raise the event there.
  using PeerDownHandler = std::function<void(HostId peer)>;
  virtual void SetPeerDownHandler(PeerDownHandler handler) {
    std::lock_guard<std::mutex> lock(peer_down_mu_);
    peer_down_ = std::move(handler);
  }

 protected:
  void NotifyPeerDown(HostId peer) {
    PeerDownHandler handler;
    {
      std::lock_guard<std::mutex> lock(peer_down_mu_);
      handler = peer_down_;
    }
    if (handler) {
      handler(peer);
    }
  }

 private:
  std::mutex peer_down_mu_;
  PeerDownHandler peer_down_;
};

}  // namespace millipage

#endif  // SRC_NET_TRANSPORT_H_
