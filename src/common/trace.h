// Protocol history recorder: the evidence stream the offline consistency
// checker (src/check/) replays. When a TraceSink is attached (DsmConfig::
// trace, ViewSet::SetTrace) the runtime appends one TraceEvent per
// protocol-visible state change — protection transitions, manager service
// and grant decisions, invalidations, barrier epochs, lock hand-offs — each
// stamped with a process-global logical timestamp, so a run's history is a
// single totally-ordered sequence.
//
// The hook is designed to be free when unused: every emission site guards on
// a plain pointer (nullptr = off), and builds can hard-disable recording with
// -DMILLIPAGE_DISABLE_TRACE, which compiles every Emit call out.

#ifndef SRC_COMMON_TRACE_H_
#define SRC_COMMON_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace millipage {

enum class TraceEventKind : uint8_t {
  kProtSet = 1,     // host changed a minipage's protection (arg1 = Protection)
  kFaultStart,      // host entered fault service (arg1 = is_write)
  kFaultEnd,        // host completed fault service (arg1 = is_write)
  kMgrSvcStart,     // manager opened per-minipage service (arg1 = requester,
                    // arg2 = copyset before the transaction)
  kMgrSvcEnd,       // manager closed service (arg2 = copyset after)
  kMgrReadGrant,    // manager routed a read (arg1 = requester, arg2 = copyset)
  kMgrWriteGrant,   // manager granted a write (arg1 = requester, arg2 = the
                    // data-source/retaining host id + 1 — an id, not a mask,
                    // so hosts >= 64 are recorded faithfully)
  kMgrInvalidate,   // manager sent an invalidation (arg1 = target host)
  kBarrierEnter,    // host sent barrier entry
  kBarrierRelease,  // host observed barrier release (arg1 = generation)
  kLockGrant,       // manager granted a lock (arg1 = holder; minipage = lock id)
  kLockRelease,     // manager processed a release (arg1 = holder)
  kAppRead,         // application-level read (addr, arg1 = value)
  kAppWrite,        // application-level write (addr, arg1 = value)
  kEpochBump,       // host adopted a membership epoch (arg1 = epoch,
                    // arg2 = newly-dead host id + 1, one event per death;
                    // arg2 = 0 when the epoch advanced with no new deaths)
  kMinipageLost,    // owning shard degraded a minipage whose sole copy died
                    // (arg1 = dead host)
};

const char* TraceEventKindName(TraceEventKind k);

struct TraceEvent {
  uint64_t lts = 0;       // process-global logical timestamp (total order)
  TraceEventKind kind = TraceEventKind::kProtSet;
  uint16_t host = 0;      // host the event happened on. For manager-side
                          // events (kMgrSvcStart/End, kMgr*Grant,
                          // kMgrInvalidate, kLockGrant/Release) this is the
                          // *serving manager shard* — under a sharded policy
                          // the checker verifies it equals ManagerOf(id).
  uint32_t minipage = 0;  // minipage id (or lock id), ~0u when not applicable
  uint64_t addr = 0;      // packed GlobalAddr when applicable
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
};

// One line per event, stable across runs given identical histories — the
// byte-for-byte reproducibility contract of the deterministic simulator.
std::string FormatTraceEvent(const TraceEvent& e);
std::string FormatTraceHistory(const std::vector<TraceEvent>& history);

class TraceSink {
 public:
  TraceSink() = default;
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  void Emit(TraceEventKind kind, uint16_t host, uint32_t minipage, uint64_t addr,
            uint64_t arg1 = 0, uint64_t arg2 = 0) {
#ifndef MILLIPAGE_DISABLE_TRACE
    std::lock_guard<std::mutex> lock(mu_);
    TraceEvent e;
    e.lts = events_.size();
    e.kind = kind;
    e.host = host;
    e.minipage = minipage;
    e.addr = addr;
    e.arg1 = arg1;
    e.arg2 = arg2;
    events_.push_back(e);
#else
    (void)kind; (void)host; (void)minipage; (void)addr; (void)arg1; (void)arg2;
#endif
  }

  std::vector<TraceEvent> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

}  // namespace millipage

#endif  // SRC_COMMON_TRACE_H_
