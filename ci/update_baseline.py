#!/usr/bin/env python3
"""Regenerate ci/bench_baseline.json from a BENCH.json artifact.

Typical flow: download the `bench-json` artifact from a green bench-smoke run
(or produce one locally with `./bench/bench_smoke --bench_json=BENCH.json`),
then:

  ci/update_baseline.py BENCH.json
  git diff ci/bench_baseline.json   # sanity-check the deltas
  git commit ...

This is a thin wrapper over check_bench.py's --update mode so the schema
validation, row flattening, and baseline format live in exactly one place.
It prints a per-row delta summary against the previous baseline before
overwriting it, because a baseline refresh is how a real regression gets
laundered into "expected".
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_bench  # noqa: E402


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("bench_json", help="BENCH.json artifact from bench_smoke")
    ap.add_argument(
        "--baseline",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_baseline.json"),
        help="baseline file to rewrite (default: ci/bench_baseline.json)",
    )
    args = ap.parse_args()

    doc = check_bench.load_bench(args.bench_json)
    rows = check_bench.flatten(doc)

    old_rows = {}
    try:
        with open(args.baseline) as f:
            old = json.load(f)
        old_rows = {
            (r["bench"], r["name"], r["params"]): float(r["ns_per_op"])
            for r in old.get("rows", [])
            if r.get("ns_per_op", 0) > 0
        }
    except (OSError, json.JSONDecodeError, KeyError):
        print(f"update_baseline: no readable baseline at {args.baseline}; writing fresh")

    added = sorted(set(rows) - set(old_rows))
    removed = sorted(set(old_rows) - set(rows))
    moved = []
    for key in sorted(set(rows) & set(old_rows)):
        ratio = rows[key] / old_rows[key]
        if ratio > check_bench.SWING or ratio < 1.0 / check_bench.SWING:
            moved.append((key, old_rows[key], rows[key], ratio))

    for bench, name, params in added:
        print(f"update_baseline: + {bench} / {name} [{params}]")
    for bench, name, params in removed:
        print(f"update_baseline: - {bench} / {name} [{params}]")
    for (bench, name, params), old_ns, new_ns, ratio in moved:
        print(
            f"update_baseline: ~ {bench} / {name} [{params}]: "
            f"{old_ns:.1f} -> {new_ns:.1f} ns/op ({ratio:.2f}x)"
        )

    baseline = {
        "schema": check_bench.SCHEMA,
        "note": "Regenerate with: ci/update_baseline.py <BENCH.json artifact>",
        "rows": [
            {"bench": b, "name": n, "params": p, "ns_per_op": ns}
            for (b, n, p), ns in sorted(rows.items())
        ],
    }
    with open(args.baseline, "w") as f:
        json.dump(baseline, f, indent=1)
        f.write("\n")
    print(
        f"update_baseline: wrote {len(rows)} rows to {args.baseline} "
        f"({len(added)} added, {len(removed)} removed, {len(moved)} moved >{check_bench.SWING}x)"
    )


if __name__ == "__main__":
    main()
