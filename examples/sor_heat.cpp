// Heat-plate solver on the DSM: red/black successive over-relaxation with
// row-granularity minipages (the paper's SOR workload, presented as a small
// application rather than a benchmark).
//
// The plate's top edge is held hot, the other edges cold; hosts own
// contiguous row bands and exchange only boundary rows per color phase.
// Prints the temperature field as ASCII art plus the DSM traffic that the
// run generated.
//
// Build & run:  ./build/examples/sor_heat [hosts] [iterations]

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

using namespace millipage;

namespace {
constexpr uint32_t kRows = 48;
constexpr uint32_t kCols = 64;  // 256-byte rows, the paper's granularity
}  // namespace

int main(int argc, char** argv) {
  const uint16_t hosts = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 4;
  const int iterations = argc > 2 ? std::atoi(argv[2]) : 200;

  DsmConfig config;
  config.num_hosts = hosts;
  config.object_size = 4 << 20;
  config.num_views = 16;
  auto cluster = DsmCluster::Create(config);
  MP_CHECK(cluster.ok()) << cluster.status().ToString();

  std::vector<GlobalPtr<float>> rows;
  (*cluster)->RunOnManager([&](DsmNode&) {
    for (uint32_t r = 0; r < kRows; ++r) {
      rows.push_back(SharedAlloc<float>(kCols));
      float* row = rows.back().get();
      for (uint32_t c = 0; c < kCols; ++c) {
        row[c] = (r == 0) ? 100.0f : 0.0f;  // hot top edge
      }
    }
  });

  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    const uint32_t interior = kRows - 2;
    const uint32_t lo = 1 + interior * host / hosts;
    const uint32_t hi = 1 + interior * (host + 1) / hosts;
    node.Barrier();
    for (int it = 0; it < iterations; ++it) {
      for (int color = 0; color < 2; ++color) {
        for (uint32_t r = lo; r < hi; ++r) {
          const float* up = rows[r - 1].get();
          const float* down = rows[r + 1].get();
          float* cur = rows[r].get();
          for (uint32_t c = 1; c + 1 < kCols; ++c) {
            if ((r + c) % 2 == static_cast<uint32_t>(color)) {
              cur[c] = 0.25f * (up[c] + down[c] + cur[c - 1] + cur[c + 1]);
            }
          }
        }
        node.Barrier();
      }
    }
  });

  (*cluster)->RunOnManager([&](DsmNode&) {
    static const char kShades[] = " .:-=+*#%@";
    std::printf("temperature field (%ux%u plate, %d iterations, %u DSM hosts):\n", kRows,
                kCols, iterations, hosts);
    for (uint32_t r = 0; r < kRows; r += 2) {
      const float* row = rows[r].get();
      for (uint32_t c = 0; c < kCols; ++c) {
        const int shade = static_cast<int>(row[c] / 100.0f * 9.49f);
        std::putchar(kShades[shade < 0 ? 0 : (shade > 9 ? 9 : shade)]);
      }
      std::putchar('\n');
    }
  });
  const HostCounters totals = (*cluster)->TotalCounters();
  std::printf(
      "\nDSM traffic: %lu read faults, %lu write faults, %lu KB moved, %lu barriers\n",
      static_cast<unsigned long>(totals.read_faults),
      static_cast<unsigned long>(totals.write_faults),
      static_cast<unsigned long>((totals.read_fault_bytes + totals.write_fault_bytes) / 1024),
      static_cast<unsigned long>(totals.barriers / hosts));
  return 0;
}
