// Chaos suite: every scenario injects a failure the paper's runtime assumes
// away — a host dying mid-run, a manager reply that never arrives, a delayed
// ACK path — and asserts the liveness layer turns it into a prompt,
// diagnostic error on every surviving host instead of a hang.
//
// The forked scenarios run the paper's deployment shape (one process per
// host over the SEQPACKET mesh); the in-process scenarios assemble nodes by
// hand around FaultyTransport decorators so individual messages can be
// dropped or delayed deterministically.

#include <gtest/gtest.h>

#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <memory>
#include <thread>

#include "src/common/time_util.h"
#include "src/dsm/node.h"
#include "src/dsm/process_cluster.h"
#include "src/net/faulty_transport.h"
#include "src/net/inproc_transport.h"

namespace millipage {
namespace {

// Every surviving host must detect a fault and return a non-OK status within
// this budget (the acceptance bar; well under the 120 s watchdog sweep).
constexpr uint64_t kDetectBudgetMs = 5000;

DsmConfig ChaosConfig(uint16_t hosts) {
  DsmConfig cfg;
  // MILLIPAGE_TRANSPORT=uring re-runs the forked chaos scenarios over the
  // io_uring transport; the in-process FaultyPair/FaultyTrio shapes keep
  // their scripted InProcTransport regardless.
  cfg.transport_backend = TransportBackendFromEnv();
  cfg.num_hosts = hosts;
  cfg.object_size = 1 << 20;
  cfg.request_timeout_ms = 200;
  cfg.max_request_retries = 2;
  cfg.sync_timeout_ms = 2000;
  return cfg;
}

// A hand-assembled in-process pair: two nodes over one InProcTransport, each
// behind its own FaultyTransport so tests can script that node's failures.
struct FaultyPair {
  InProcTransport inner{2};
  FaultyTransport t0{&inner};
  FaultyTransport t1{&inner};
  std::unique_ptr<DsmNode> n0;
  std::unique_ptr<DsmNode> n1;

  explicit FaultyPair(const DsmConfig& cfg) {
    Result<std::unique_ptr<DsmNode>> r0 = DsmNode::Create(cfg, 0, &t0);
    MP_CHECK(r0.ok());
    n0 = std::move(*r0);
    Result<std::unique_ptr<DsmNode>> r1 = DsmNode::Create(cfg, 1, &t1);
    MP_CHECK(r1.ok());
    n1 = std::move(*r1);
    n0->Start();
    n1->Start();
  }
  ~FaultyPair() {
    // In-process teardown: no peer actually dies, so silence the liveness
    // layer before the server threads go away.
    n0->BeginShutdown();
    n1->BeginShutdown();
    n1->Stop();
    n0->Stop();
  }
};

// Three nodes over one InProcTransport, same shape one host wider: the
// duplicate-delivery scenario needs a requester, a copy holder, and a
// manager that are three distinct hosts.
struct FaultyTrio {
  InProcTransport inner{3};
  FaultyTransport t0{&inner};
  FaultyTransport t1{&inner};
  FaultyTransport t2{&inner};
  std::unique_ptr<DsmNode> nodes[3];

  explicit FaultyTrio(const DsmConfig& cfg) {
    FaultyTransport* ts[3] = {&t0, &t1, &t2};
    for (HostId h = 0; h < 3; ++h) {
      Result<std::unique_ptr<DsmNode>> r = DsmNode::Create(cfg, h, ts[h]);
      MP_CHECK(r.ok()) << r.status().ToString();
      nodes[h] = std::move(*r);
    }
    for (auto& n : nodes) {
      n->Start();
    }
  }
  ~FaultyTrio() {
    for (auto& n : nodes) {
      n->BeginShutdown();
    }
    for (int h = 2; h >= 0; --h) {
      nodes[h]->Stop();
    }
  }

  DsmNode& node(HostId h) { return *nodes[h]; }
};

// ---- Forked: a host dies mid-run ------------------------------------------

TEST(Chaos, HostDeathMidRunFailsSurvivorsWithinBudget) {
  const DsmConfig cfg = ChaosConfig(3);
  const uint64_t t0 = MonotonicNowNs();
  std::vector<HostOutcome> outcomes;
  const Status st = RunForkedCluster(
      cfg,
      [](DsmNode& node, HostId host) {
        const Status b = node.TryBarrier();  // everyone reaches steady state
        MP_CHECK(b.ok()) << b.ToString();
        if (host == 1) {
          ::usleep(50 * 1000);
          ::raise(SIGKILL);  // die without any cleanup, mid-protocol
        }
        // Survivors head for the runtime's final barrier, which can never
        // complete — host 1 is gone. The liveness layer must fail it.
      },
      /*timeout_ms=*/60000, &outcomes);
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;

  EXPECT_FALSE(st.ok());
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_TRUE(outcomes[1].signaled);
  EXPECT_EQ(outcomes[1].term_signal, SIGKILL);
  for (const HostId h : {HostId{0}, HostId{2}}) {
    // Survivors detected the death themselves (peer-down EOF abort at the
    // final barrier) and self-exited — the watchdog never had to sweep them.
    EXPECT_TRUE(outcomes[h].exited) << "host " << h;
    EXPECT_FALSE(outcomes[h].swept) << "host " << h;
    EXPECT_FALSE(outcomes[h].signaled) << "host " << h;
    EXPECT_EQ(outcomes[h].exit_code, kLivenessExitCode) << "host " << h;
    EXPECT_LT(outcomes[h].reaped_at_ms, kDetectBudgetMs) << "host " << h;
  }
  EXPECT_LT(elapsed_ms, 2 * kDetectBudgetMs);
}

// ---- In-process: a manager reply is dropped --------------------------------

TEST(Chaos, DroppedLockGrantFailsWithDeadline) {
  FaultyPair pair(ChaosConfig(2));
  // Host 1's first (and only) lock grant evaporates in flight. (Replies keep
  // the requester in h.from, so the origin filter is the wildcard.)
  pair.t1.DropReceives(kAnyHost, MsgType::kLockGrant, 1);
  const uint64_t t0 = MonotonicNowNs();
  const Status st = pair.n1->TryLock(0);
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kDeadlineExceeded) << st.ToString();
  EXPECT_EQ(pair.t1.receives_dropped(), 1u);
  EXPECT_GE(elapsed_ms, pair.n1->config().sync_timeout_ms - 1);
  EXPECT_LT(elapsed_ms, kDetectBudgetMs);
}

TEST(Chaos, DroppedBarrierReleaseFailsOneHostOnly) {
  FaultyPair pair(ChaosConfig(2));
  pair.t1.DropReceives(kAnyHost, MsgType::kBarrierRelease, 1);
  Status st0, st1;
  const uint64_t t0 = MonotonicNowNs();
  std::thread host0([&] { st0 = pair.n0->TryBarrier(); });
  std::thread host1([&] { st1 = pair.n1->TryBarrier(); });
  host0.join();
  host1.join();
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;
  // The manager released both hosts; only host 1's release was lost.
  EXPECT_TRUE(st0.ok()) << st0.ToString();
  ASSERT_FALSE(st1.ok());
  EXPECT_EQ(st1.code(), StatusCode::kDeadlineExceeded) << st1.ToString();
  EXPECT_LT(elapsed_ms, kDetectBudgetMs);
}

// ---- In-process: a dropped data reply is retried and recovered -------------

TEST(Chaos, DroppedFetchReplyRecoversByRetry) {
  DsmConfig cfg = ChaosConfig(2);
  // Retries require the manager to re-serve the minipage, which ACK-mode
  // serialization forbids while the first transaction is open — so this
  // scenario runs the no-ACK ablation, where fetch service completes at the
  // manager immediately and a re-sent request is served from scratch.
  cfg.enable_ack = false;
  FaultyPair pair(cfg);

  Result<GlobalAddr> addr = pair.n0->SharedMalloc(64 * sizeof(int));
  ASSERT_TRUE(addr.ok()) << addr.status().ToString();
  int* data0 = reinterpret_cast<int*>(pair.n0->AppPtr(*addr));
  for (int i = 0; i < 64; ++i) {
    data0[i] = 7000 + i;
  }

  // Host 1's first data reply is lost; the fault must time out, re-send, and
  // complete with correct contents on the second attempt.
  pair.t1.DropReceives(kAnyHost, MsgType::kReadReply, 1);
  const uint64_t t0 = MonotonicNowNs();
  ASSERT_TRUE(pair.n1->OnFault(addr->view, addr->offset, /*is_write=*/false));
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;

  EXPECT_EQ(pair.t1.receives_dropped(), 1u);
  EXPECT_EQ(pair.n1->timeout_retries(), 1u);
  const int* data1 = reinterpret_cast<const int*>(pair.n1->AppPtr(*addr));
  for (int i = 0; i < 64; ++i) {
    ASSERT_EQ(data1[i], 7000 + i) << "index " << i;
  }
  EXPECT_GE(elapsed_ms, cfg.request_timeout_ms - 1);
  EXPECT_LT(elapsed_ms, kDetectBudgetMs);
  EXPECT_TRUE(pair.n1->health().ok());
}

// ---- Retry pacing: exponential backoff with seeded jitter ------------------

// The schedule is a pure function of (config, host, attempt): attempt 0 is
// the configured timeout exactly, later attempts grow by retry_backoff_base
// within ±retry_jitter_pct, the cap bounds every attempt, and the same seed
// always reproduces the same schedule.
TEST(Chaos, RetryBackoffScheduleIsExponentialSeededAndCapped) {
  DsmConfig cfg;
  cfg.request_timeout_ms = 100;
  cfg.retry_backoff_base = 2.0;
  cfg.retry_backoff_max_ms = 1000;
  cfg.retry_jitter_pct = 20;

  // Attempt 0 carries no jitter: the common no-retry path keeps its exact
  // configured latency budget.
  EXPECT_EQ(DsmNode::RetryTimeoutMs(cfg, 0, 0), 100u);
  EXPECT_EQ(DsmNode::RetryTimeoutMs(cfg, 5, 0), 100u);

  // Later attempts double, give or take the jitter band, until the cap.
  uint64_t expected = 100;
  for (uint32_t attempt = 1; attempt <= 6; ++attempt) {
    expected = std::min<uint64_t>(expected * 2, cfg.retry_backoff_max_ms);
    const uint64_t span = expected * cfg.retry_jitter_pct / 100;
    for (HostId host = 0; host < 8; ++host) {
      const uint64_t ms = DsmNode::RetryTimeoutMs(cfg, host, attempt);
      EXPECT_GE(ms, expected - span) << "host " << host << " attempt " << attempt;
      EXPECT_LE(ms, expected + span) << "host " << host << " attempt " << attempt;
      // Deterministic: the seeded stream replays identically.
      EXPECT_EQ(ms, DsmNode::RetryTimeoutMs(cfg, host, attempt));
    }
  }

  // The jitter decorrelates hosts: a cluster that timed out together must
  // not re-fire in lockstep. At least two of eight hosts disagree.
  bool differs = false;
  const uint64_t h0 = DsmNode::RetryTimeoutMs(cfg, 0, 1);
  for (HostId host = 1; host < 8 && !differs; ++host) {
    differs = DsmNode::RetryTimeoutMs(cfg, host, 1) != h0;
  }
  EXPECT_TRUE(differs) << "every host retries at the same instant";

  // base = 1.0 with jitter 0 reproduces the historical fixed interval.
  cfg.retry_backoff_base = 1.0;
  cfg.retry_jitter_pct = 0;
  for (uint32_t attempt = 0; attempt < 4; ++attempt) {
    EXPECT_EQ(DsmNode::RetryTimeoutMs(cfg, 3, attempt), 100u);
  }
}

// Failure-driven proof of the spacing: with two consecutive data replies
// dropped, the fault path must wait out attempt 0's full window, then
// attempt 1's doubled window, before the third send succeeds — so the
// end-to-end latency is bounded below by the sum of the first two windows.
TEST(Chaos, DroppedRepliesBackOffBeforeEachResend) {
  DsmConfig cfg = ChaosConfig(2);
  cfg.enable_ack = false;  // retries need the manager to re-serve (see above)
  cfg.request_timeout_ms = 100;
  cfg.max_request_retries = 3;
  cfg.retry_backoff_base = 2.0;
  cfg.retry_jitter_pct = 0;  // deterministic spacing for the timing assert
  FaultyPair pair(cfg);

  Result<GlobalAddr> addr = pair.n0->SharedMalloc(32 * sizeof(int));
  ASSERT_TRUE(addr.ok()) << addr.status().ToString();
  int* data0 = reinterpret_cast<int*>(pair.n0->AppPtr(*addr));
  for (int i = 0; i < 32; ++i) {
    data0[i] = 8800 + i;
  }

  pair.t1.DropReceives(kAnyHost, MsgType::kReadReply, 2);
  const uint64_t t0 = MonotonicNowNs();
  ASSERT_TRUE(pair.n1->OnFault(addr->view, addr->offset, /*is_write=*/false));
  const uint64_t elapsed_ms = (MonotonicNowNs() - t0) / 1000000;

  EXPECT_EQ(pair.t1.receives_dropped(), 2u);
  EXPECT_EQ(pair.n1->timeout_retries(), 2u);
  const uint64_t floor_ms = DsmNode::RetryTimeoutMs(cfg, 1, 0) +
                            DsmNode::RetryTimeoutMs(cfg, 1, 1);  // 100 + 200
  EXPECT_GE(elapsed_ms, floor_ms - 2) << "retries fired faster than the backoff";
  EXPECT_LT(elapsed_ms, kDetectBudgetMs);
  const int* data1 = reinterpret_cast<const int*>(pair.n1->AppPtr(*addr));
  for (int i = 0; i < 32; ++i) {
    ASSERT_EQ(data1[i], 8800 + i) << "index " << i;
  }
  EXPECT_TRUE(pair.n1->health().ok());
}

// ---- In-process: a delayed ACK path must not trip liveness -----------------

TEST(Chaos, DelayedAckPathIsSlowButCorrect) {
  DsmConfig cfg = ChaosConfig(2);
  FaultyPair pair(cfg);

  Result<GlobalAddr> addr = pair.n0->SharedMalloc(16 * sizeof(int));
  ASSERT_TRUE(addr.ok()) << addr.status().ToString();
  int* data0 = reinterpret_cast<int*>(pair.n0->AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    data0[i] = 40 + i;
  }

  // Every ACK from host 1 limps to the manager well inside the deadline.
  pair.t1.DelaySends(kManagerHost, MsgType::kAck, 20 * 1000);
  ASSERT_TRUE(pair.n1->OnFault(addr->view, addr->offset, /*is_write=*/false));
  const int* data1 = reinterpret_cast<const int*>(pair.n1->AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(data1[i], 40 + i);
  }
  // Slow is not dead: no retries fired, no abort latched.
  EXPECT_EQ(pair.n1->timeout_retries(), 0u);
  EXPECT_EQ(pair.n1->stale_replies(), 0u);
  EXPECT_TRUE(pair.n1->health().ok());
  EXPECT_TRUE(pair.n0->health().ok());
}

// ---- In-process: injected peer death aborts blocked waiters ----------------

TEST(Chaos, InjectedPeerDeathAbortsBlockedBarrier) {
  FaultyPair pair(ChaosConfig(2));
  Status st1;
  std::thread host1([&] { st1 = pair.n1->TryBarrier(); });  // blocks: host 0 absent
  ::usleep(50 * 1000);
  pair.t1.KillPeer(0);  // the manager "dies" under host 1
  host1.join();
  ASSERT_FALSE(st1.ok());
  EXPECT_EQ(st1.code(), StatusCode::kUnavailable) << st1.ToString();
  EXPECT_EQ(pair.n1->peers_down(), 1u);  // bit 0
  // Sticky: everything after the abort fails fast, including fresh ops.
  const uint64_t t0 = MonotonicNowNs();
  EXPECT_FALSE(pair.n1->TryLock(3).ok());
  EXPECT_LT((MonotonicNowNs() - t0) / 1000000, 1000u);
  EXPECT_FALSE(pair.n1->health().ok());
  // The diagnostic snapshot names the failure state.
  const std::string report = pair.n1->LivenessReport();
  EXPECT_NE(report.find("peers_down=0x1"), std::string::npos) << report;
}

// ---- In-process: a duplicated invalidate reply is absorbed, not fatal ------

// A retransmitted or stray kInvalidateReply must be idempotent at the
// manager. Before the fix, the second delivery tripped a fatal MP_CHECK in
// MgrHandleInvalidateReply (write_pending / invalidates_pending already
// cleared), killing the manager's server thread mid-round; now it bumps
// dup_invalidate_replies and the write round completes normally.
TEST(Chaos, DuplicateInvalidateReplyIsAbsorbedByManager) {
  FaultyTrio trio(ChaosConfig(3));
  DsmNode& n0 = trio.node(0);
  DsmNode& n1 = trio.node(1);
  DsmNode& n2 = trio.node(2);

  Result<GlobalAddr> addr = n0.SharedMalloc(16 * sizeof(int));
  ASSERT_TRUE(addr.ok()) << addr.status().ToString();
  int* data0 = reinterpret_cast<int*>(n0.AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    data0[i] = 6100 + i;
  }

  // Host 1 takes a read copy, so host 2's upcoming write runs an
  // invalidation round: the manager keeps one replica as the data source and
  // invalidates the other (which of {0, 1} depends on the replica rotation).
  ASSERT_TRUE(n1.OnFault(addr->view, addr->offset, /*is_write=*/false));

  // Whoever replies, the manager hears the invalidate reply twice.
  trio.t0.DuplicateReceives(kAnyHost, MsgType::kInvalidateReply, 1);

  ASSERT_TRUE(n2.OnFault(addr->view, addr->offset, /*is_write=*/true));
  int* data2 = reinterpret_cast<int*>(n2.AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    data2[i] = 6200 + i;
  }

  // The duplicate arrives on the manager's next poll; wait until it has been
  // counted (absorbed) rather than fatally checked.
  const uint64_t t0 = MonotonicNowNs();
  while (n0.counters().dup_invalidate_replies.value() == 0) {
    ASSERT_LT((MonotonicNowNs() - t0) / 1000000, kDetectBudgetMs)
        << "duplicate reply never reached the idempotence path";
    ::usleep(1000);
  }
  EXPECT_EQ(trio.t0.receives_duplicated(), 1u);

  // The cluster stays fully operational: host 1 re-fetches host 2's values.
  ASSERT_TRUE(n1.OnFault(addr->view, addr->offset, /*is_write=*/false));
  const int* data1 = reinterpret_cast<const int*>(n1.AppPtr(*addr));
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(data1[i], 6200 + i) << "index " << i;
  }
  EXPECT_TRUE(n0.health().ok());
  EXPECT_TRUE(n1.health().ok());
  EXPECT_TRUE(n2.health().ok());
}

}  // namespace
}  // namespace millipage
