#include "src/net/uring_transport.h"

#include <linux/time_types.h>
#include <sys/mman.h>
#include <sys/socket.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/common/failpoint.h"
#include "src/common/logging.h"
#include "src/common/time_util.h"

namespace millipage {

namespace {

// No liburing in the build image; the three syscalls below plus the mmap'd
// ring layout are the whole ABI we need.
int SysUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysUringEnter(int fd, unsigned to_submit, unsigned min_complete, unsigned flags,
                  const void* arg, size_t argsz) {
  return static_cast<int>(
      ::syscall(__NR_io_uring_enter, fd, to_submit, min_complete, flags, arg, argsz));
}

int SysUringRegister(int fd, unsigned opcode, void* arg, unsigned nr_args) {
  return static_cast<int>(::syscall(__NR_io_uring_register, fd, opcode, arg, nr_args));
}

constexpr int kSocketBufBytes = 1 << 20;
constexpr uint16_t kBufGroup = 7;
constexpr unsigned kRecvBufCount = 64;  // must be a power of two
// io_uring_recvmsg_out (16 B) + the largest datagram we accept.
constexpr unsigned kRecvBufLen =
    sizeof(struct io_uring_recvmsg_out) + UringTransport::kMaxDatagramBytes;
constexpr unsigned kSendSqEntries = 256;
constexpr unsigned kSendCqEntries = 1024;
// Longest linked chain submitted per peer per pump; bounds CQ pressure.
constexpr unsigned kMaxChainSqes = 64;

Status SetBufferSizes(int fd) {
  const int sz = kSocketBufBytes;
  if (setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &sz, sizeof(sz)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &sz, sizeof(sz)) != 0) {
    return Status::Errno("setsockopt(SO_SNDBUF/SO_RCVBUF)");
  }
  return Status::Ok();
}

unsigned NextPow2(unsigned v) {
  unsigned p = 1;
  while (p < v) {
    p <<= 1;
  }
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Ring
// ---------------------------------------------------------------------------

Status UringTransport::Ring::Init(unsigned entries, unsigned cq_size, bool want_sqpoll) {
  struct io_uring_params p;
  std::memset(&p, 0, sizeof(p));
  p.flags = IORING_SETUP_CLAMP;
  if (cq_size > 0) {
    p.flags |= IORING_SETUP_CQSIZE;
    p.cq_entries = cq_size;
  }
  if (want_sqpoll) {
    p.flags |= IORING_SETUP_SQPOLL;
    p.sq_thread_idle = 50;  // ms before the poller kthread parks
  }
  fd = SysUringSetup(entries, &p);
  if (fd < 0) {
    return Status::Errno("io_uring_setup");
  }
  features = p.features;
  sqpoll = want_sqpoll;
  if ((features & IORING_FEAT_SINGLE_MMAP) == 0) {
    // Pre-5.4 split-mmap layout; such kernels lack everything else we need
    // anyway, so don't bother supporting it.
    Close();
    return Status::Unavailable("io_uring: kernel lacks IORING_FEAT_SINGLE_MMAP");
  }
  ring_mem_len = std::max<size_t>(p.sq_off.array + p.sq_entries * sizeof(unsigned),
                                  p.cq_off.cqes + p.cq_entries * sizeof(struct io_uring_cqe));
  ring_mem = ::mmap(nullptr, ring_mem_len, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE,
                    fd, IORING_OFF_SQ_RING);
  if (ring_mem == MAP_FAILED) {
    ring_mem = nullptr;
    Status st = Status::Errno("mmap(sq/cq ring)");
    Close();
    return st;
  }
  sqe_mem_len = p.sq_entries * sizeof(struct io_uring_sqe);
  sqe_mem = ::mmap(nullptr, sqe_mem_len, PROT_READ | PROT_WRITE, MAP_SHARED | MAP_POPULATE, fd,
                   IORING_OFF_SQES);
  if (sqe_mem == MAP_FAILED) {
    sqe_mem = nullptr;
    Status st = Status::Errno("mmap(sqes)");
    Close();
    return st;
  }
  auto* base = static_cast<char*>(ring_mem);
  sq_head = reinterpret_cast<unsigned*>(base + p.sq_off.head);
  sq_tail = reinterpret_cast<unsigned*>(base + p.sq_off.tail);
  sq_flags = reinterpret_cast<unsigned*>(base + p.sq_off.flags);
  sq_array = reinterpret_cast<unsigned*>(base + p.sq_off.array);
  sq_mask = *reinterpret_cast<unsigned*>(base + p.sq_off.ring_mask);
  sq_entries = p.sq_entries;
  cq_head = reinterpret_cast<unsigned*>(base + p.cq_off.head);
  cq_tail = reinterpret_cast<unsigned*>(base + p.cq_off.tail);
  cq_mask = *reinterpret_cast<unsigned*>(base + p.cq_off.ring_mask);
  cq_entries = p.cq_entries;
  cqes = reinterpret_cast<struct io_uring_cqe*>(base + p.cq_off.cqes);
  sqes = static_cast<struct io_uring_sqe*>(sqe_mem);
  sq_local_tail = *sq_tail;
  // Identity SQ index array: slot (tail & mask) always holds SQE (tail & mask).
  for (unsigned i = 0; i <= sq_mask; ++i) {
    sq_array[i] = i;
  }
  return Status::Ok();
}

void UringTransport::Ring::Close() {
  if (sqe_mem != nullptr) {
    ::munmap(sqe_mem, sqe_mem_len);
    sqe_mem = nullptr;
  }
  if (ring_mem != nullptr) {
    ::munmap(ring_mem, ring_mem_len);
    ring_mem = nullptr;
  }
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

struct io_uring_sqe* UringTransport::Ring::GetSqe() {
  const unsigned head = __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
  if (sq_local_tail - head >= sq_entries) {
    return nullptr;
  }
  struct io_uring_sqe* sqe = &sqes[sq_local_tail & sq_mask];
  std::memset(sqe, 0, sizeof(*sqe));
  sq_local_tail++;
  return sqe;
}

Status UringTransport::Ring::Submit(Counter* syscalls, Counter* submits, Histogram* batch) {
  // Publish everything prepped since the last submit; to_submit is derived
  // from the kernel's head so a previous partial consume is retried too.
  __atomic_store_n(sq_tail, sq_local_tail, __ATOMIC_RELEASE);
  const unsigned to_submit = sq_local_tail - __atomic_load_n(sq_head, __ATOMIC_ACQUIRE);
  if (to_submit == 0) {
    return Status::Ok();
  }
  if (submits != nullptr) {
    submits->Inc();
  }
  if (batch != nullptr) {
    batch->Record(to_submit);
  }
  if (sqpoll) {
    // The kernel thread consumes the ring on its own; enter only to wake it.
    if ((__atomic_load_n(sq_flags, __ATOMIC_ACQUIRE) & IORING_SQ_NEED_WAKEUP) != 0) {
      if (syscalls != nullptr) {
        syscalls->Inc();
      }
      (void)SysUringEnter(fd, to_submit, 0, IORING_ENTER_SQ_WAKEUP, nullptr, 0);
    }
    return Status::Ok();
  }
  for (;;) {
    if (syscalls != nullptr) {
      syscalls->Inc();
    }
    const int ret = SysUringEnter(fd, to_submit, 0, 0, nullptr, 0);
    if (ret >= 0) {
      // A short consume leaves the rest in the SQ; the next Submit retries.
      return Status::Ok();
    }
    if (errno == EINTR || errno == EAGAIN || errno == EBUSY) {
      continue;
    }
    return Status::Errno("io_uring_enter(submit)");
  }
}

Result<bool> UringTransport::Ring::WaitCqe(uint64_t timeout_ns, Counter* syscalls) {
  struct __kernel_timespec ts;
  ts.tv_sec = static_cast<int64_t>(timeout_ns / 1000000000ULL);
  ts.tv_nsec = static_cast<int64_t>(timeout_ns % 1000000000ULL);
  struct io_uring_getevents_arg arg;
  std::memset(&arg, 0, sizeof(arg));
  arg.ts = reinterpret_cast<uint64_t>(&ts);
  if (syscalls != nullptr) {
    syscalls->Inc();
  }
  const int ret = SysUringEnter(fd, 0, 1, IORING_ENTER_GETEVENTS | IORING_ENTER_EXT_ARG, &arg,
                                sizeof(arg));
  if (ret >= 0) {
    return true;
  }
  if (errno == ETIME) {
    return false;
  }
  if (errno == EINTR) {
    // The caller's loop recomputes the remaining budget and re-waits.
    return true;
  }
  return Status::Errno("io_uring_enter(getevents)");
}

struct io_uring_cqe* UringTransport::Ring::PeekCqe() {
  // Single consumer per ring: send CQ under send_mu_, recv CQ on the poller.
  const unsigned head = *cq_head;
  const unsigned tail = __atomic_load_n(cq_tail, __ATOMIC_ACQUIRE);
  if (head == tail) {
    return nullptr;
  }
  return &cqes[head & cq_mask];
}

void UringTransport::Ring::AdvanceCqe() {
  __atomic_store_n(cq_head, *cq_head + 1, __ATOMIC_RELEASE);
}

// ---------------------------------------------------------------------------
// BufRing
// ---------------------------------------------------------------------------

Status UringTransport::BufRing::Init(Ring& r, unsigned n, unsigned blen) {
  entries = n;
  buf_len = blen;
  ring_len = static_cast<size_t>(n) * sizeof(struct io_uring_buf);
  ring = static_cast<struct io_uring_buf_ring*>(
      ::mmap(nullptr, ring_len, PROT_READ | PROT_WRITE, MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (ring == MAP_FAILED) {
    ring = nullptr;
    return Status::Errno("mmap(buf ring)");
  }
  pool_len = static_cast<size_t>(n) * blen;
  pool = static_cast<std::byte*>(
      ::mmap(nullptr, pool_len, PROT_READ | PROT_WRITE, MAP_ANONYMOUS | MAP_PRIVATE, -1, 0));
  if (pool == MAP_FAILED) {
    pool = nullptr;
    ::munmap(ring, ring_len);
    ring = nullptr;
    return Status::Errno("mmap(buf pool)");
  }
  struct io_uring_buf_reg reg;
  std::memset(&reg, 0, sizeof(reg));
  reg.ring_addr = reinterpret_cast<uint64_t>(ring);
  reg.ring_entries = n;
  reg.bgid = kBufGroup;
  if (SysUringRegister(r.fd, IORING_REGISTER_PBUF_RING, &reg, 1) < 0) {
    Status st = Status::Errno("io_uring_register(PBUF_RING)");
    Destroy(r);
    return st;
  }
  tail = 0;
  free_bufs = 0;
  for (unsigned bid = 0; bid < n; ++bid) {
    Recycle(static_cast<unsigned short>(bid));
  }
  return Status::Ok();
}

void UringTransport::BufRing::Recycle(unsigned short bid) {
  // The ring header's tail field aliases bufs[0].resv, so write only
  // addr/len/bid — never memset a slot. Slot addresses are computed by byte
  // offset rather than through ring->bufs[]: the uapi header wraps the flex
  // array in __DECLARE_FLEX_ARRAY's empty struct, which is 0 bytes in C but
  // 1 byte (padded to 8) in C++, so the member indexes 8 bytes past where
  // the kernel reads.
  struct io_uring_buf* slot = reinterpret_cast<struct io_uring_buf*>(
      reinterpret_cast<char*>(ring) +
      static_cast<size_t>(tail & (entries - 1)) * sizeof(struct io_uring_buf));
  slot->addr = reinterpret_cast<uint64_t>(Buf(bid));
  slot->len = buf_len;
  slot->bid = bid;
  tail++;
  __atomic_store_n(&ring->tail, tail, __ATOMIC_RELEASE);
  free_bufs++;
}

void UringTransport::BufRing::Destroy(Ring& r) {
  if (ring != nullptr && r.fd >= 0) {
    struct io_uring_buf_reg reg;
    std::memset(&reg, 0, sizeof(reg));
    reg.bgid = kBufGroup;
    (void)SysUringRegister(r.fd, IORING_UNREGISTER_PBUF_RING, &reg, 1);
  }
  if (pool != nullptr) {
    ::munmap(pool, pool_len);
    pool = nullptr;
  }
  if (ring != nullptr) {
    ::munmap(ring, ring_len);
    ring = nullptr;
  }
}

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

bool UringTransport::ProbeSupport() {
  // A usable kernel needs: buffer rings (5.19+), multishot RECVMSG (6.0+,
  // inferred from the opcode horizon reaching IORING_OP_SEND_ZC), and
  // EXT_ARG timed waits. Probe with a scratch ring so no fds are risked.
  Ring ring;
  if (!ring.Init(4, 8, /*want_sqpoll=*/false).ok()) {
    return false;
  }
  bool ok = (ring.features & IORING_FEAT_EXT_ARG) != 0 &&
            (ring.features & IORING_FEAT_NODROP) != 0 &&
            (ring.features & IORING_FEAT_SUBMIT_STABLE) != 0;
  if (ok) {
    constexpr unsigned kProbeOps = 64;
    const size_t len = sizeof(struct io_uring_probe) + kProbeOps * sizeof(struct io_uring_probe_op);
    auto* probe = static_cast<struct io_uring_probe*>(std::calloc(1, len));
    ok = probe != nullptr && SysUringRegister(ring.fd, IORING_REGISTER_PROBE, probe, kProbeOps) >= 0 &&
         probe->last_op >= IORING_OP_SEND_ZC && IORING_OP_RECVMSG < probe->ops_len &&
         (probe->ops[IORING_OP_RECVMSG].flags & IO_URING_OP_SUPPORTED) != 0 &&
         IORING_OP_SENDMSG < probe->ops_len &&
         (probe->ops[IORING_OP_SENDMSG].flags & IO_URING_OP_SUPPORTED) != 0;
    std::free(probe);
  }
  if (ok) {
    // The buffer-ring address must be page-aligned (the kernel pins it).
    void* mem = ::mmap(nullptr, 4096, PROT_READ | PROT_WRITE, MAP_ANONYMOUS | MAP_PRIVATE, -1, 0);
    ok = mem != MAP_FAILED;
    if (ok) {
      struct io_uring_buf_reg reg;
      std::memset(&reg, 0, sizeof(reg));
      reg.ring_addr = reinterpret_cast<uint64_t>(mem);
      reg.ring_entries = 2;
      reg.bgid = kBufGroup;
      ok = SysUringRegister(ring.fd, IORING_REGISTER_PBUF_RING, &reg, 1) >= 0;
      ::munmap(mem, 4096);
    }
  }
  ring.Close();
  return ok;
}

bool UringTransportSupported() {
  static const bool supported = UringTransport::ProbeSupport();
  return supported;
}

// ---------------------------------------------------------------------------
// UringTransport
// ---------------------------------------------------------------------------

UringTransport::UringTransport(HostId me, std::vector<int> fds_by_peer)
    : me_(me), fds_(std::move(fds_by_peer)) {
  if (me_ >= fds_.size()) {
    fds_.resize(me_ + 1, -1);
  }
  // Self-loop so a host's application threads can message their own server.
  int sv[2];
  MP_CHECK(::socketpair(AF_UNIX, SOCK_SEQPACKET | SOCK_CLOEXEC, 0, sv) == 0);
  MP_CHECK_OK(SetBufferSizes(sv[0]));
  MP_CHECK_OK(SetBufferSizes(sv[1]));
  fds_[me_] = sv[0];
  self_recv_fd_ = sv[1];
  send_peers_.resize(fds_.size());
  recv_conns_.resize(fds_.size());
  for (size_t j = 0; j < fds_.size(); ++j) {
    RecvConn& c = recv_conns_[j];
    c.fd = j == me_ ? self_recv_fd_ : fds_[j];
    c.open = c.fd >= 0;
    std::memset(&c.mh, 0, sizeof(c.mh));  // no iov/name/control: ring buffers
  }
  MetricsRegistry& reg = MetricsRegistry::Global();
  msgs_sent_ = reg.GetCounter("net.msgs_sent");
  msgs_recv_ = reg.GetCounter("net.msgs_recv");
  send_ns_ = reg.GetHistogram("net.send_ns");
  send_bytes_ = reg.GetHistogram("net.send_bytes");
  recv_bytes_ = reg.GetHistogram("net.recv_bytes");
  syscalls_ = reg.GetCounter("net.syscalls");
  submits_ = reg.GetCounter("net.uring.submits");
  sqe_batch_ = reg.GetHistogram("net.uring.sqe_batch");
  recv_cqes_ = reg.GetCounter("net.uring.recv_cqes");
}

Status UringTransport::InitRings(const UringOptions& opts) {
  Status st = send_ring_.Init(kSendSqEntries, kSendCqEntries, opts.sqpoll);
  if (!st.ok() && opts.sqpoll) {
    // SQPOLL needs privileges on older kernels; degrade to plain submission.
    st = send_ring_.Init(kSendSqEntries, kSendCqEntries, /*want_sqpoll=*/false);
  }
  MP_RETURN_IF_ERROR(st);
  sqpoll_active_ = send_ring_.sqpoll;
  const unsigned n = static_cast<unsigned>(fds_.size());
  const unsigned recv_sq = std::clamp(NextPow2(n + 2), 64U, 4096U);
  MP_RETURN_IF_ERROR(recv_ring_.Init(recv_sq, std::max(2 * kRecvBufCount + recv_sq, 512U),
                                     /*want_sqpoll=*/false));
  if ((recv_ring_.features & IORING_FEAT_EXT_ARG) == 0 ||
      (recv_ring_.features & IORING_FEAT_NODROP) == 0) {
    return Status::Unavailable("io_uring: kernel lacks EXT_ARG/NODROP");
  }
  MP_RETURN_IF_ERROR(buf_ring_.Init(recv_ring_, kRecvBufCount, kRecvBufLen));
  for (uint16_t j = 0; j < recv_conns_.size(); ++j) {
    MP_RETURN_IF_ERROR(ArmRecv(j));
  }
  return recv_ring_.Submit(syscalls_, nullptr, nullptr);
}

Result<std::unique_ptr<UringTransport>> UringTransport::Create(HostId me,
                                                               std::vector<int> fds_by_peer,
                                                               const UringOptions& opts) {
  if (!UringTransportSupported()) {
    for (int fd : fds_by_peer) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
    return Status::Unavailable(
        "io_uring transport unsupported: kernel lacks multishot RECVMSG or buffer rings");
  }
  std::unique_ptr<UringTransport> t(new UringTransport(me, std::move(fds_by_peer)));
  MP_RETURN_IF_ERROR(t->InitRings(opts));
  return t;
}

UringTransport::~UringTransport() {
  // Unblock everything: shutdown makes parked sends fail with EPIPE and
  // armed multishot recvs complete with EOF, so both rings drain.
  for (int fd : fds_) {
    if (fd >= 0) {
      ::shutdown(fd, SHUT_RDWR);
    }
  }
  if (self_recv_fd_ >= 0) {
    ::shutdown(self_recv_fd_, SHUT_RDWR);
  }
  const uint64_t deadline_ns = MonotonicNowNs() + 1000000000ULL;
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    (void)send_ring_.Submit(nullptr, nullptr, nullptr);  // release anything prepped
    std::vector<HostId> dead;
    while (inflight_ops_ > 0 && MonotonicNowNs() < deadline_ns) {
      ReapSendCqesLocked(&dead);
      if (inflight_ops_ > 0) {
        (void)send_ring_.WaitCqe(50 * 1000 * 1000, nullptr);
      }
    }
  }
  unsigned armed = 0;
  for (const RecvConn& c : recv_conns_) {
    armed += c.armed ? 1 : 0;
  }
  while (armed > 0 && MonotonicNowNs() < deadline_ns) {
    struct io_uring_cqe* cqe = recv_ring_.PeekCqe();
    if (cqe == nullptr) {
      Result<bool> r = recv_ring_.WaitCqe(50 * 1000 * 1000, nullptr);
      if (!r.ok() || !*r) {
        break;
      }
      continue;
    }
    const uint64_t idx = cqe->user_data;
    if ((cqe->flags & IORING_CQE_F_BUFFER) != 0) {
      buf_ring_.Recycle(static_cast<unsigned short>(cqe->flags >> IORING_CQE_BUFFER_SHIFT));
      buf_ring_.free_bufs--;  // Recycle bumped it; this CQE had consumed one
    }
    if ((cqe->flags & IORING_CQE_F_MORE) == 0 && idx < recv_conns_.size() &&
        recv_conns_[idx].armed) {
      recv_conns_[idx].armed = false;
      armed--;
    }
    recv_ring_.AdvanceCqe();
  }
  if (inflight_ops_ > 0 || armed > 0) {
    // The kernel may still reference our buffers; leak them rather than
    // risk a use-after-free. Should not happen after the shutdowns above.
    MP_LOG(Warning) << "uring transport teardown incomplete (" << inflight_ops_
                 << " sends, " << armed << " recvs); leaking ring memory";
    for (int fd : fds_) {
      if (fd >= 0) {
        ::close(fd);
      }
    }
    if (self_recv_fd_ >= 0) {
      ::close(self_recv_fd_);
    }
    return;
  }
  buf_ring_.Destroy(recv_ring_);
  recv_ring_.Close();
  send_ring_.Close();
  for (int fd : fds_) {
    if (fd >= 0) {
      ::close(fd);
    }
  }
  if (self_recv_fd_ >= 0) {
    ::close(self_recv_fd_);
  }
}

// ---------------------------------------------------------------------------
// Send side
// ---------------------------------------------------------------------------

Status UringTransport::EnqueueSend(uint16_t to, const MsgHeader& h, const void* payload,
                                   size_t len) {
  auto make_op = [to](const void* src, size_t n) {
    auto op = std::make_unique<SendOp>();
    op->peer = to;
    op->data.resize(n);
    std::memcpy(op->data.data(), src, n);
    op->iov.iov_base = op->data.data();
    op->iov.iov_len = n;
    op->mh.msg_iov = &op->iov;
    op->mh.msg_iovlen = 1;
    return op;
  };
  SendPeer& p = send_peers_[to];
  p.queue.push_back(make_op(&h, sizeof(h)));
  if (h.has_payload()) {
    if (FailpointRegistry::Instance().Fire("socket.send.payload_err").has_value()) {
      // Mirror SocketTransport: the header is committed without its payload,
      // so the stream is desynchronized — shut the connection down so the
      // peer sees a clean EOF, and mark it gone now so further sends fail
      // synchronously (the async path would only learn from the EPIPE CQE).
      p.gone = true;
      p.queue.clear();
      if (fds_[to] >= 0) {
        ::shutdown(fds_[to], SHUT_RDWR);
      }
      return Status::Unavailable("injected payload send failure");
    }
    p.queue.push_back(make_op(payload, len));
  }
  return Status::Ok();
}

Status UringTransport::PumpSendsLocked(bool allow_defer) {
  for (size_t peer = 0; peer < send_peers_.size(); ++peer) {
    SendPeer& p = send_peers_[peer];
    if (p.queue.empty() || p.inflight > 0) {
      continue;
    }
    if (p.gone || fds_[peer] < 0) {
      p.queue.clear();
      continue;
    }
    // Submit the whole backlog for this peer as ONE linked chain: io_uring
    // promises nothing about ordering between unlinked SQEs, so the chain —
    // plus the one-chain-in-flight rule — is what preserves per-pair FIFO.
    const int fd = fds_[peer];
    struct io_uring_sqe* prev = nullptr;
    unsigned chained = 0;
    while (!p.queue.empty() && chained < kMaxChainSqes) {
      struct io_uring_sqe* sqe = send_ring_.GetSqe();
      if (sqe == nullptr) {
        // SQ full: release it (one enter) and grow the chain afterwards.
        MP_RETURN_IF_ERROR(send_ring_.Submit(syscalls_, submits_, sqe_batch_));
        sqe = send_ring_.GetSqe();
        if (sqe == nullptr) {
          break;  // SQ still full of unconsumed entries; next pump retries
        }
      }
      SendOp* op = p.queue.front().release();
      p.queue.pop_front();
      sqe->opcode = IORING_OP_SENDMSG;
      sqe->fd = fd;
      sqe->addr = reinterpret_cast<uint64_t>(&op->mh);
      sqe->msg_flags = MSG_NOSIGNAL;
      sqe->user_data = reinterpret_cast<uint64_t>(op);
      if (prev != nullptr) {
        prev->flags |= IOSQE_IO_LINK;  // safe pre-submit (SUBMIT_STABLE)
      }
      prev = sqe;
      p.inflight++;
      inflight_ops_++;
      chained++;
    }
  }
  if (allow_defer) {
    return Status::Ok();  // EndBurst releases everything in one enter
  }
  return send_ring_.Submit(syscalls_, submits_, sqe_batch_);
}

void UringTransport::ReapSendCqesLocked(std::vector<HostId>* newly_dead) {
  for (;;) {
    struct io_uring_cqe* cqe = send_ring_.PeekCqe();
    if (cqe == nullptr) {
      return;
    }
    auto* op = reinterpret_cast<SendOp*>(static_cast<uintptr_t>(cqe->user_data));
    const int res = cqe->res;
    send_ring_.AdvanceCqe();
    SendPeer& p = send_peers_[op->peer];
    p.inflight--;
    inflight_ops_--;
    if (res < 0 && res != -ECANCELED && !p.gone) {
      // EPIPE/ECONNRESET and friends: the peer is unreachable. Shut our end
      // down so the recv multishot sees EOF, retires the connection, and
      // raises the peer-down event (same path as SocketTransport). Link
      // cancellation already dropped the rest of the in-flight chain.
      p.gone = true;
      p.queue.clear();
      if (fds_[op->peer] >= 0) {
        ::shutdown(fds_[op->peer], SHUT_RDWR);
      }
      if (newly_dead != nullptr && op->peer != me_) {
        newly_dead->push_back(static_cast<HostId>(op->peer));
      }
    }
    delete op;
  }
}

void UringTransport::DrainSendsFromPoller() {
  std::vector<HostId> dead;
  {
    std::unique_lock<std::mutex> lock(send_mu_, std::try_to_lock);
    if (!lock.owns_lock()) {
      return;  // a sender is active; it will pump on its own
    }
    if (burst_depth_ > 0) {
      return;  // mid-burst; EndBurst releases
    }
    ReapSendCqesLocked(&dead);
    (void)PumpSendsLocked(/*allow_defer=*/false);
  }
  (void)dead;  // the recv path reports peer death when EOF arrives
}

Status UringTransport::Send(HostId to, MsgHeader h, const void* payload, size_t len) {
  if (to >= fds_.size()) {
    return Status::Invalid("UringTransport::Send: bad destination host");
  }
  if (payload != nullptr && len > 0) {
    h.flags |= kFlagHasPayload;
    h.pgsize = static_cast<uint32_t>(len);
  }
  if (len > kMaxDatagramBytes || sizeof(h) > kMaxDatagramBytes) {
    return Status::Invalid("UringTransport::Send: datagram exceeds ring buffer capacity");
  }
  ScopedTimer timer(send_ns_);
  Status st;
  {
    std::lock_guard<std::mutex> lock(send_mu_);
    ReapSendCqesLocked(nullptr);
    SendPeer& p = send_peers_[to];
    if (p.gone || fds_[to] < 0) {
      return Status::Unavailable("UringTransport::Send: connection to host " +
                                 std::to_string(to) + " is gone");
    }
    st = EnqueueSend(to, h, payload, len);
    // Inside a burst window, only enqueue: pumping here would start a
    // one-message chain per peer and the in-flight guard would then block
    // the rest of the burst's backlog behind it. EndBurst pumps the whole
    // backlog as one chain per peer and releases it with a single enter.
    if (st.ok() && burst_depth_ == 0) {
      st = PumpSendsLocked(/*allow_defer=*/false);
    }
  }
  if (st.ok()) {
    msgs_sent_->Inc();
    send_bytes_->Record(sizeof(h) + (h.has_payload() ? len : 0));
  }
  return st;
}

void UringTransport::BeginBurst() {
  std::lock_guard<std::mutex> lock(send_mu_);
  burst_depth_++;
}

void UringTransport::EndBurst() {
  std::lock_guard<std::mutex> lock(send_mu_);
  if (burst_depth_ == 0) {
    return;
  }
  if (--burst_depth_ > 0) {
    return;
  }
  ReapSendCqesLocked(nullptr);
  (void)PumpSendsLocked(/*allow_defer=*/false);
}

// ---------------------------------------------------------------------------
// Recv side
// ---------------------------------------------------------------------------

Status UringTransport::ArmRecv(uint16_t conn_idx) {
  RecvConn& c = recv_conns_[conn_idx];
  if (!c.open || c.armed) {
    return Status::Ok();
  }
  if (buf_ring_.free_bufs <= 0) {
    return Status::Ok();  // re-armed once buffers are recycled
  }
  struct io_uring_sqe* sqe = recv_ring_.GetSqe();
  if (sqe == nullptr) {
    MP_RETURN_IF_ERROR(recv_ring_.Submit(syscalls_, nullptr, nullptr));
    sqe = recv_ring_.GetSqe();
    if (sqe == nullptr) {
      return Status::Internal("uring: recv SQ full");
    }
  }
  sqe->opcode = IORING_OP_RECVMSG;
  sqe->fd = c.fd;
  sqe->addr = reinterpret_cast<uint64_t>(&c.mh);
  sqe->ioprio = IORING_RECV_MULTISHOT;
  sqe->flags = IOSQE_BUFFER_SELECT;
  sqe->buf_group = kBufGroup;
  // MSG_TRUNC so payloadlen reports the datagram's *real* size — without it
  // an oversized sender is silently truncated to the buffer and undetected.
  sqe->msg_flags = MSG_TRUNC;
  sqe->user_data = conn_idx;
  c.armed = true;
  // Deliberately leave c.have_header alone: a buffer-pool ENOBUFS can kill
  // the multishot between a header and its payload, and the re-armed recv
  // must resume the half-assembled message, not misparse the payload as a
  // fresh header.
  return Status::Ok();
}

void UringTransport::ArmAllIdleRecvs() {
  bool prepped = false;
  for (uint16_t j = 0; j < recv_conns_.size(); ++j) {
    RecvConn& c = recv_conns_[j];
    if (c.open && !c.armed && buf_ring_.free_bufs > 0) {
      if (ArmRecv(j).ok()) {
        prepped = true;
      }
    }
  }
  if (prepped) {
    (void)recv_ring_.Submit(syscalls_, nullptr, nullptr);
  }
}

void UringTransport::RetireConn(uint16_t conn_idx, std::vector<HostId>* newly_dead) {
  RecvConn& c = recv_conns_[conn_idx];
  if (!c.open) {
    return;
  }
  c.open = false;
  c.have_header = false;
  {
    // Same discipline as SocketTransport::ClosePeer: take the send lock so a
    // sender mid-prep never writes into a recycled descriptor.
    std::lock_guard<std::mutex> lock(send_mu_);
    if (conn_idx != me_) {
      send_peers_[conn_idx].gone = true;
      send_peers_[conn_idx].queue.clear();
      // Close only when no send op still references the fd; otherwise the
      // reaper's shutdown already ensured those complete, and the fd is
      // closed at destruction.
      if (send_peers_[conn_idx].inflight == 0 && fds_[conn_idx] >= 0) {
        ::close(fds_[conn_idx]);
        fds_[conn_idx] = -1;
      }
    } else if (self_recv_fd_ >= 0) {
      ::close(self_recv_fd_);
      self_recv_fd_ = -1;
    }
  }
  if (conn_idx != me_ && newly_dead != nullptr) {
    newly_dead->push_back(static_cast<HostId>(conn_idx));
  }
}

Status UringTransport::ConsumeRecvCqe(struct io_uring_cqe* cqe, MsgHeader* h,
                                      const PayloadSink& sink, bool* delivered,
                                      std::vector<HostId>* newly_dead) {
  *delivered = false;
  const uint64_t idx64 = cqe->user_data;
  if (idx64 >= recv_conns_.size()) {
    return Status::Internal("uring: recv cqe for unknown connection");
  }
  const auto idx = static_cast<uint16_t>(idx64);
  RecvConn& c = recv_conns_[idx];
  const int res = cqe->res;
  const unsigned flags = cqe->flags;
  if ((flags & IORING_CQE_F_MORE) == 0) {
    c.armed = false;  // multishot terminated; re-armed (or retired) below
  }
  // Recycle the selected buffer on every exit path once consumed.
  const bool has_buf = (flags & IORING_CQE_F_BUFFER) != 0;
  const auto bid = static_cast<unsigned short>(flags >> IORING_CQE_BUFFER_SHIFT);
  if (has_buf) {
    buf_ring_.free_bufs--;
  }
  struct BufGuard {
    BufRing* ring;
    unsigned short bid;
    bool active;
    ~BufGuard() {
      if (active) {
        ring->Recycle(bid);
      }
    }
  } guard{&buf_ring_, bid, has_buf};
  if (res < 0) {
    if (res == -ENOBUFS) {
      return Status::Ok();  // pool exhausted momentarily; re-armed by caller
    }
    if (res == -ECANCELED) {
      return Status::Ok();
    }
    if (res == -ECONNRESET || res == -EPIPE || res == -ENOTCONN || res == -EBADF) {
      RetireConn(idx, newly_dead);
      return Status::Ok();
    }
    return Status::Internal(std::string("uring recvmsg: ") + std::strerror(-res));
  }
  if (!has_buf || static_cast<size_t>(res) < sizeof(struct io_uring_recvmsg_out)) {
    // EOF surfaces as a zero-byte completion (no buffer consumed).
    RetireConn(idx, newly_dead);
    return Status::Ok();
  }
  std::byte* buf = buf_ring_.Buf(bid);
  struct io_uring_recvmsg_out out;
  std::memcpy(&out, buf, sizeof(out));
  const std::byte* data = buf + sizeof(out);  // namelen == controllen == 0
  const size_t n = out.payloadlen;
  if (n == 0) {
    // SEQPACKET EOF: the peer process died or closed its end.
    RetireConn(idx, newly_dead);
    return Status::Ok();
  }
  const size_t expected = c.have_header ? c.header.pgsize : sizeof(MsgHeader);
  if ((out.flags & MSG_TRUNC) != 0 || n > expected) {
    return Status::Internal("recv: oversized datagram truncated (" + std::to_string(n) +
                            " vs expected " + std::to_string(expected) + ")");
  }
  if (n != expected) {
    return Status::Internal("recv: short datagram (" + std::to_string(n) + " vs expected " +
                            std::to_string(expected) + ")");
  }
  if (!c.have_header) {
    MsgHeader header;
    std::memcpy(&header, data, sizeof(header));
    if (header.has_payload()) {
      // Two-datagram message; per-connection CQE ordering guarantees the
      // payload is this connection's next completion.
      c.have_header = true;
      c.header = header;
      return Status::Ok();
    }
    *h = header;
    *delivered = true;
  } else {
    c.have_header = false;
    *h = c.header;
    std::byte* dst = sink(*h);
    if (dst != nullptr) {
      std::memcpy(dst, data, n);
    }
    *delivered = true;
  }
  msgs_recv_->Inc();
  recv_bytes_->Record(sizeof(MsgHeader) + (h->has_payload() ? h->pgsize : 0));
  recv_cqes_->Inc();
  return Status::Ok();
}

Result<bool> UringTransport::Poll(HostId me, MsgHeader* h, const PayloadSink& sink,
                                  uint64_t timeout_us) {
  if (me != me_) {
    return Status::Invalid("UringTransport::Poll: not this host's transport");
  }
  const uint64_t deadline_ns = timeout_us == 0 ? 0 : MonotonicNowNs() + timeout_us * 1000;
  std::vector<HostId> dead;
  for (;;) {
    // Keep queued send chains moving even when no new Send arrives.
    DrainSendsFromPoller();
    ArmAllIdleRecvs();
    bool retired = false;
    for (;;) {
      struct io_uring_cqe* cqe = recv_ring_.PeekCqe();
      if (cqe == nullptr) {
        break;
      }
      bool delivered = false;
      const size_t dead_before = dead.size();
      const Status st = ConsumeRecvCqe(cqe, h, sink, &delivered, &dead);
      recv_ring_.AdvanceCqe();
      retired = retired || dead.size() > dead_before;
      for (HostId peer : dead) {
        NotifyPeerDown(peer);
      }
      dead.clear();
      MP_RETURN_IF_ERROR(st);
      if (delivered) {
        return true;
      }
      if (retired) {
        // Mirror SocketTransport: surface a retirement as an empty poll so
        // the server loop can react to the peer-down event promptly.
        return false;
      }
    }
    if (timeout_us == 0) {
      return false;
    }
    const uint64_t now = MonotonicNowNs();
    if (now >= deadline_ns) {
      return false;
    }
    // Interrupted waits resume with the *remaining* budget (see the
    // SocketTransport rationale); the failpoint simulates a signal storm.
    if (FailpointRegistry::Instance().Fire("socket.poll.eintr").has_value()) {
      continue;
    }
    // A burst can exhaust the buffer pool, terminating a multishot recv with
    // ENOBUFS; the buffers were recycled while draining the CQ above, so
    // re-arm *before* blocking — the fresh recv picks up any data already
    // queued in the socket and posts the CQE the wait needs.
    ArmAllIdleRecvs();
    MP_ASSIGN_OR_RETURN(const bool ready, recv_ring_.WaitCqe(deadline_ns - now, syscalls_));
    if (!ready) {
      return false;
    }
  }
}

}  // namespace millipage
