#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace millipage {

namespace {

std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

// Serializes whole lines so multi-threaded logs stay readable.
std::mutex& LogMutex() {
  static std::mutex mu;
  return mu;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level, std::memory_order_relaxed); }

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  {
    std::lock_guard<std::mutex> lock(LogMutex());
    std::fprintf(stderr, "%s\n", stream_.str().c_str());
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace millipage
