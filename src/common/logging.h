// Minimal leveled logging plus CHECK macros.
//
// The DSM fault path must stay allocation-free, so hot-path code never logs;
// logging is for setup, teardown, tests, benches and fatal invariant
// violations.

#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace millipage {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

// Global minimum level; messages below it are dropped. Default kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define MP_LOG(level)                                                         \
  (::millipage::LogLevel::k##level < ::millipage::GetLogLevel())             \
      ? (void)0                                                               \
      : ::millipage::internal::LogVoidify() &                                 \
            ::millipage::internal::LogMessage(::millipage::LogLevel::k##level, \
                                              __FILE__, __LINE__)             \
                .stream()

// CHECK macros abort on failure regardless of log level.
#define MP_CHECK(cond)                                                        \
  (cond) ? (void)0                                                            \
         : ::millipage::internal::LogVoidify() &                              \
               ::millipage::internal::LogMessage(                             \
                   ::millipage::LogLevel::kFatal, __FILE__, __LINE__)         \
                   .stream()                                                  \
                   << "Check failed: " #cond " "

#define MP_CHECK_OK(expr)                                                     \
  do {                                                                        \
    ::millipage::Status _st_chk = (expr);                                     \
    MP_CHECK(_st_chk.ok()) << _st_chk.ToString();                             \
  } while (0)

#define MP_DCHECK(cond) MP_CHECK(cond)

}  // namespace millipage

#endif  // SRC_COMMON_LOGGING_H_
