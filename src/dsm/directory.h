// Manager-side directory: per-minipage copyset/ownership, in-service
// serialization with request queueing (the source of the paper's "competing
// requests" statistic), pending-write invalidation rounds, plus the lock and
// barrier tables. One Directory instance is one manager *shard*: centralized
// deployments run a single shard on host 0; sharded deployments
// (ManagerPolicy::kSharded) run one per host, holding exactly the ids that
// hash to it. All state in a shard is touched exclusively by its host's
// server thread, so no locking is needed.

#ifndef SRC_DSM_DIRECTORY_H_
#define SRC_DSM_DIRECTORY_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/multiview/minipage.h"
#include "src/net/message.h"

namespace millipage {

// Directory entry for one minipage.
struct DirEntry {
  uint64_t copyset = 0;     // bitmask of hosts holding a copy
  bool writable = false;    // single copyset member holds ReadWrite
  bool in_service = false;  // a request is being serviced (until ACK)
  HostId in_service_for = 0;      // requester of the in-service transaction
  std::deque<MsgHeader> pending;  // competing requests, FIFO

  // Outstanding invalidation round for a write request.
  bool write_pending = false;
  MsgHeader pending_write{};
  HostId write_remaining = 0;  // host that will supply the data
  uint32_t invalidates_outstanding = 0;

  // Outstanding confirmations for an in-service push-update broadcast.
  uint32_t push_outstanding = 0;

  // The copyset is a 64-bit mask, so host ids past 63 would shift out of
  // range (undefined behavior, then silent membership aliasing). Node/cluster
  // construction rejects num_hosts > 64; these checks catch corrupt ids.
  bool HasCopy(HostId h) const {
    MP_CHECK(h < 64) << "copyset host id " << h << " out of 64-bit mask range";
    return (copyset & (1ULL << h)) != 0;
  }
  void AddCopy(HostId h) {
    MP_CHECK(h < 64) << "copyset host id " << h << " out of 64-bit mask range";
    copyset |= (1ULL << h);
  }
  void RemoveCopy(HostId h) {
    MP_CHECK(h < 64) << "copyset host id " << h << " out of 64-bit mask range";
    copyset &= ~(1ULL << h);
  }
  int CopyCount() const { return __builtin_popcountll(copyset); }
  // Any copyset member, preferring one different from `avoid`. `hint`
  // rotates the starting position: when read ACKs are elided the copyset can
  // transiently contain members whose copy is still inbound, and a rotating
  // choice guarantees a re-routed request eventually reaches the (always
  // existing) member with stable data.
  HostId PickReplica(HostId avoid, uint32_t hint = 0) const {
    // An empty copyset has no replica to pick: hint % 0 divides by zero and
    // ctzll(0) is undefined, so fail loudly instead of returning garbage.
    MP_CHECK(copyset != 0) << "PickReplica on an empty copyset (minipage has no holder)";
    MP_CHECK(avoid < 64) << "copyset host id " << avoid << " out of 64-bit mask range";
    const uint64_t others = copyset & ~(1ULL << avoid);
    const uint64_t pool = others != 0 ? others : copyset;
    const int n = __builtin_popcountll(pool);
    int skip = static_cast<int>(hint % static_cast<uint32_t>(n));
    uint64_t bits = pool;
    while (skip-- > 0) {
      bits &= bits - 1;  // drop lowest set bit
    }
    return static_cast<HostId>(__builtin_ctzll(bits));
  }
};

struct LockEntry {
  bool held = false;
  HostId holder = 0;
  std::deque<MsgHeader> waiters;
};

struct BarrierState {
  uint32_t generation = 0;
  uint32_t arrived = 0;
  std::vector<MsgHeader> waiters;
};

class Directory {
 public:
  DirEntry& Entry(MinipageId id) {
    MP_CHECK(id != kInvalidMinipage) << "directory access with invalid minipage id";
    if (id >= entries_.size()) {
      entries_.resize(id + 1);
    }
    return entries_[id];
  }

  LockEntry& Lock(uint32_t lock_id) {
    if (lock_id >= locks_.size()) {
      locks_.resize(lock_id + 1);
    }
    return locks_[lock_id];
  }

  BarrierState& barrier() { return barrier_; }
  const BarrierState& barrier() const { return barrier_; }
  ManagerCounters& counters() { return counters_; }
  const ManagerCounters& counters() const { return counters_; }

  size_t num_entries() const { return entries_.size(); }

  // Minipages currently in service (their ACK or invalidation round is
  // outstanding). Read from liveness diagnostics off the manager thread, so
  // the count is a best-effort racy snapshot.
  size_t InServiceCount() const {
    size_t n = 0;
    for (const DirEntry& e : entries_) {
      n += e.in_service ? 1 : 0;
    }
    return n;
  }

 private:
  std::vector<DirEntry> entries_;
  std::vector<LockEntry> locks_;
  BarrierState barrier_;
  ManagerCounters counters_;
};

}  // namespace millipage

#endif  // SRC_DSM_DIRECTORY_H_
