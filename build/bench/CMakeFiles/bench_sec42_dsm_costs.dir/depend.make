# Empty dependencies file for bench_sec42_dsm_costs.
# This may be replaced when dependencies are built.
