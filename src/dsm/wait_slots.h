// Wait slots: the per-thread events faulting threads block on while their
// request is serviced (the paper's pmsg->event). POSIX semaphores are used
// because sem_wait/sem_post are async-signal-safe, and the faulting thread
// waits from inside the SIGSEGV handler.
//
// Liveness layer: WaitFor bounds every wait with a deadline (sem_timedwait,
// still async-signal-safe), and AbortAll wakes every current and future
// waiter with a sticky error — the peer-down path that turns "hang at the
// next barrier" into a prompt Status::Unavailable.
//
// The wire `seq` field carries more than the slot: the low byte is the slot
// index and the high 24 bits a per-operation generation. A requester that
// times out and retries (or abandons) an operation bumps the generation, so
// a late reply to the old attempt is recognizably stale instead of being
// mistaken for the new attempt's reply.

#ifndef SRC_DSM_WAIT_SLOTS_H_
#define SRC_DSM_WAIT_SLOTS_H_

#include <semaphore.h>
#include <time.h>

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>

#include "src/common/logging.h"
#include "src/common/status.h"
#include "src/net/message.h"

namespace millipage {

class WaitSlots {
 public:
  static constexpr uint32_t kMaxSlots = 64;

  // seq wire encoding: low byte slot, high 24 bits generation (mod 2^24).
  static uint32_t MakeSeq(uint32_t slot, uint32_t gen) {
    return ((gen & 0xffffffu) << 8) | (slot & 0xffu);
  }
  static uint32_t SeqSlot(uint32_t seq) { return seq & 0xffu; }
  static uint32_t SeqGen(uint32_t seq) { return seq >> 8; }

  WaitSlots() {
    for (auto& s : slots_) {
      MP_CHECK(sem_init(&s.sem, 0, 0) == 0);
    }
  }
  ~WaitSlots() {
    for (auto& s : slots_) {
      sem_destroy(&s.sem);
    }
  }

  WaitSlots(const WaitSlots&) = delete;
  WaitSlots& operator=(const WaitSlots&) = delete;

  // Reserves a slot for a thread's lifetime.
  uint32_t Acquire() {
    const uint32_t id = next_.fetch_add(1, std::memory_order_relaxed);
    MP_CHECK(id < kMaxSlots) << "too many threads per host";
    return id;
  }

  // Blocks until a reply for `slot` arrives; returns the oldest undelivered
  // reply. Replies queue per slot, so split transactions (several requests
  // outstanding on one slot, e.g. a composed-view group fetch) deliver every
  // reply exactly once, in arrival order. Unbounded wait; fatal if the slots
  // are aborted while waiting — deadline-aware callers use WaitFor.
  MsgHeader Wait(uint32_t slot) {
    Result<MsgHeader> r = WaitFor(slot, 0);
    MP_CHECK(r.ok()) << "WaitSlots::Wait: " << r.status().ToString();
    return *r;
  }

  // Returns the oldest undelivered reply for `slot`, waiting at most
  // `timeout_ms` (0 = wait forever). Queued replies are always delivered
  // before an abort is reported. Errors:
  //   kDeadlineExceeded — no reply within the budget;
  //   the AbortAll status (default kUnavailable) — slots are aborted.
  Result<MsgHeader> WaitFor(uint32_t slot, uint64_t timeout_ms) {
    MP_CHECK(slot < kMaxSlots);
    Slot& s = slots_[slot];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.in_wait = true;
    }
    struct timespec abs_deadline;
    if (timeout_ms > 0) {
      clock_gettime(CLOCK_REALTIME, &abs_deadline);
      abs_deadline.tv_sec += static_cast<time_t>(timeout_ms / 1000);
      abs_deadline.tv_nsec += static_cast<long>((timeout_ms % 1000) * 1000000);
      if (abs_deadline.tv_nsec >= 1000000000L) {
        abs_deadline.tv_sec += 1;
        abs_deadline.tv_nsec -= 1000000000L;
      }
    }
    for (;;) {
      // Fast path: consume an already-posted reply (or a stale abort token).
      while (sem_trywait(&s.sem) == 0) {
        std::lock_guard<std::mutex> lock(s.mu);
        if (!s.replies.empty()) {
          const MsgHeader reply = s.replies.front();
          s.replies.pop_front();
          // Cleared in the same critical section as the pop, so an observer
          // never sees "in wait, no reply queued" for a thread that in fact
          // holds its reply and is running. A real reply supersedes a
          // pending kick: the thread is making progress.
          s.in_wait = false;
          s.has_kick = false;
          return reply;
        }
        if (s.has_kick) {
          s.has_kick = false;
          s.in_wait = false;
          return s.kicked;
        }
        // Token without a reply: an abort wake-up; fall through to report it.
        break;
      }
      if (aborted_.load(std::memory_order_acquire)) {
        return LeaveWait(s, abort_status());
      }
      const int rc = timeout_ms > 0 ? sem_timedwait(&s.sem, &abs_deadline)
                                    : sem_wait(&s.sem);
      if (rc != 0) {
        if (errno == EINTR) {
          continue;
        }
        if (errno == ETIMEDOUT) {
          if (aborted_.load(std::memory_order_acquire)) {
            return LeaveWait(s, abort_status());
          }
          return LeaveWait(
              s, Status::DeadlineExceeded("no reply on wait slot " + std::to_string(slot) +
                                          " within " + std::to_string(timeout_ms) + " ms"));
        }
        return LeaveWait(s, Status::Errno("sem_wait"));
      }
      std::lock_guard<std::mutex> lock(s.mu);
      if (!s.replies.empty()) {
        const MsgHeader reply = s.replies.front();
        s.replies.pop_front();
        s.in_wait = false;
        s.has_kick = false;
        return reply;
      }
      if (s.has_kick) {
        s.has_kick = false;
        s.in_wait = false;
        return s.kicked;
      }
      // Woken without a reply: abort token — loop re-checks aborted_.
    }
  }

  // Deposits a reply and wakes the waiter.
  void Post(uint32_t slot, const MsgHeader& reply) {
    MP_CHECK(slot < kMaxSlots);
    Slot& s = slots_[slot];
    {
      std::lock_guard<std::mutex> lock(s.mu);
      s.replies.push_back(reply);
    }
    sem_post(&s.sem);
  }

  // Wakes every current waiter and fails every future wait with `status`
  // (sticky). Queued replies are still drained first. Used by the peer-down
  // path; also async-signal-unsafe-free apart from the small mutex.
  void AbortAll(Status status) {
    {
      std::lock_guard<std::mutex> lock(abort_mu_);
      if (aborted_.load(std::memory_order_acquire)) {
        return;  // first reason wins
      }
      abort_status_ = std::move(status);
    }
    aborted_.store(true, std::memory_order_release);
    for (auto& s : slots_) {
      sem_post(&s.sem);  // reply-less token: wakes a waiter into the abort path
    }
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  // Wakes every *currently parked* waiter once with `status` (one-shot, not
  // sticky): that waiter's WaitFor returns `status`; threads not parked and
  // all future waits are unaffected. The recovery path fires this after a
  // membership epoch bump so threads waiting on a reply that will never come
  // (the peer died, or the owning shard moved) re-send against the new
  // membership immediately instead of waiting out their full timeout.
  void KickAll(Status status) {
    for (auto& s : slots_) {
      bool parked;
      {
        std::lock_guard<std::mutex> lock(s.mu);
        parked = s.in_wait && s.replies.empty();
        if (parked) {
          s.kicked = status;
          s.has_kick = true;
        }
      }
      if (parked) {
        sem_post(&s.sem);
      }
    }
  }

  // True while the thread owning `slot` is parked inside WaitFor with no
  // reply queued, no kick pending, and no abort pending — i.e. it cannot
  // make progress until the next Post. The deterministic simulator's
  // quiescence predicate; sound because in_wait is cleared in the same
  // critical section that pops a reply, so a running thread is never
  // reported blocked. A pending kick counts as progress: the wake token is
  // already posted, the thread just hasn't been scheduled yet — reporting it
  // blocked would let the simulator declare a deadlock in the window between
  // KickAll and the woken thread's re-send.
  bool WaiterBlocked(uint32_t slot) const {
    MP_CHECK(slot < kMaxSlots);
    const Slot& s = slots_[slot];
    std::lock_guard<std::mutex> lock(s.mu);
    return s.in_wait && s.replies.empty() && !s.has_kick &&
           !aborted_.load(std::memory_order_acquire);
  }

  Status abort_status() const {
    std::lock_guard<std::mutex> lock(abort_mu_);
    return abort_status_;
  }

 private:
  struct Slot {
    sem_t sem;
    mutable std::mutex mu;
    std::deque<MsgHeader> replies;
    bool in_wait = false;   // guarded by mu
    bool has_kick = false;  // guarded by mu; one-shot KickAll wake pending
    Status kicked;          // guarded by mu; status that wake reports
  };

  // Clears in_wait on a non-reply exit from WaitFor.
  static Status LeaveWait(Slot& s, Status status) {
    std::lock_guard<std::mutex> lock(s.mu);
    s.in_wait = false;
    return status;
  }

  Slot slots_[kMaxSlots];
  std::atomic<uint32_t> next_{0};
  std::atomic<bool> aborted_{false};
  mutable std::mutex abort_mu_;
  Status abort_status_;
};

}  // namespace millipage

#endif  // SRC_DSM_WAIT_SLOTS_H_
