file(REMOVE_RECURSE
  "CMakeFiles/false_sharing_demo.dir/false_sharing_demo.cpp.o"
  "CMakeFiles/false_sharing_demo.dir/false_sharing_demo.cpp.o.d"
  "false_sharing_demo"
  "false_sharing_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/false_sharing_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
