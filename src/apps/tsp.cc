#include "src/apps/tsp.h"

#include <algorithm>
#include <climits>
#include <cstring>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/rng.h"

namespace millipage {

namespace {

constexpr uint32_t kQueueLock = 0;
constexpr uint32_t kMinLock = 1;
constexpr int32_t kInfinity = INT32_MAX / 4;

std::vector<int32_t> MakeDistances(uint32_t n, uint64_t seed) {
  std::vector<int32_t> d(static_cast<size_t>(n) * n, 0);
  Rng rng(seed);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) {
      const int32_t w = static_cast<int32_t>(rng.Range(1, 99));
      d[i * n + j] = w;
      d[j * n + i] = w;
    }
  }
  return d;
}

// Serial exhaustive branch-and-bound, the validation reference.
void SerialDfs(const int32_t* dist, uint32_t n, uint32_t city, int32_t len,
               uint32_t visited, uint32_t depth, int32_t* best) {
  if (len >= *best) {
    return;
  }
  if (depth == n) {
    const int32_t total = len + dist[city * n + 0];
    *best = std::min(*best, total);
    return;
  }
  for (uint32_t next = 1; next < n; ++next) {
    if ((visited & (1u << next)) != 0) {
      continue;
    }
    SerialDfs(dist, n, next, len + dist[city * n + next], visited | (1u << next), depth + 1,
              best);
  }
}

}  // namespace

std::string TspApp::input_desc() const {
  std::ostringstream os;
  os << config_.num_cities << " cities, prefix depth " << config_.prefix_depth;
  return os.str();
}

void TspApp::Setup(DsmNode& manager) {
  (void)manager;
  const uint32_t n = config_.num_cities;
  MP_CHECK(n >= 3 && n <= 24);
  MP_CHECK(config_.prefix_depth >= 2 && config_.prefix_depth < n);
  dist_ = MakeDistances(n, config_.seed);

  // Expand every prefix of length prefix_depth starting at city 0 into the
  // shared tour array (one minipage per TourElement).
  tours_.clear();
  std::vector<int32_t> path(config_.prefix_depth, 0);
  std::vector<bool> used(n, false);
  used[0] = true;
  auto enumerate = [&](auto&& self, uint32_t depth, int32_t len) -> void {
    if (depth == config_.prefix_depth) {
      GlobalPtr<TourElement> t = SharedAlloc<TourElement>(1);
      TourElement* te = t.get();
      std::memset(te, 0, sizeof(*te));
      for (uint32_t i = 0; i < depth; ++i) {
        te->city[i] = path[i];
      }
      te->count = static_cast<int32_t>(depth);
      te->length = len;
      tours_.push_back(t);
      return;
    }
    for (uint32_t c = 1; c < n; ++c) {
      if (used[c]) {
        continue;
      }
      used[c] = true;
      path[depth] = static_cast<int32_t>(c);
      self(self, depth + 1, len + dist_[static_cast<uint32_t>(path[depth - 1]) * n + c]);
      used[c] = false;
    }
  };
  enumerate(enumerate, 1, 0);

  next_tour_ = SharedAlloc<int32_t>(1);
  *next_tour_ = 0;
  min_len_ = SharedAlloc<int32_t>(1);
  *min_len_ = kInfinity;

  int32_t best = kInfinity;
  SerialDfs(dist_.data(), n, 0, 0, 1u, 1, &best);
  serial_best_ = best;
}

void TspApp::Dfs(const int32_t* dist, uint32_t n, int32_t* path, uint32_t depth, int32_t len,
                 uint32_t visited_mask, int32_t* local_best, DsmNode& node,
                 uint64_t* expanded) {
  ++*expanded;
  // Prune against the shared best (unprotected frequent read, as in the
  // paper); keep a local floor to avoid re-reading when it cannot help.
  const int32_t global_best = *min_len_;
  *local_best = std::min(*local_best, global_best);
  if (len >= *local_best) {
    return;
  }
  const int32_t city = path[depth - 1];
  if (depth == n) {
    const int32_t total = len + dist[city * n + 0];
    if (total < *local_best) {
      *local_best = total;
      node.Lock(kMinLock);
      if (total < *min_len_) {
        *min_len_ = total;
        node.PushToAll(min_len_.addr());
      }
      node.Unlock(kMinLock);
    }
    return;
  }
  for (uint32_t next = 1; next < n; ++next) {
    if ((visited_mask & (1u << next)) != 0) {
      continue;
    }
    path[depth] = static_cast<int32_t>(next);
    Dfs(dist, n, path, depth + 1, len + dist[city * n + next], visited_mask | (1u << next),
        local_best, node, expanded);
  }
}

void TspApp::Worker(DsmNode& node, HostId host) {
  (void)host;
  const uint32_t n = config_.num_cities;
  const int32_t total_tours = static_cast<int32_t>(tours_.size());
  node.Barrier();
  uint64_t expanded = 0;
  int32_t local_best = kInfinity;
  int32_t path[32];
  while (true) {
    node.Lock(kQueueLock);
    const int32_t idx = *next_tour_;
    if (idx < total_tours) {
      *next_tour_ = idx + 1;
    }
    node.Unlock(kQueueLock);
    if (idx >= total_tours) {
      break;
    }
    const TourElement* te = tours_[static_cast<size_t>(idx)].get();
    uint32_t visited = 0;
    for (int32_t i = 0; i < te->count; ++i) {
      path[i] = te->city[i];
      visited |= 1u << static_cast<uint32_t>(te->city[i]);
    }
    Dfs(dist_.data(), n, path, static_cast<uint32_t>(te->count), te->length, visited,
        &local_best, node, &expanded);
  }
  node.AddWorkUnits(expanded);
  node.Barrier();
}

Status TspApp::Validate(DsmNode& manager) {
  (void)manager;
  best_len_result_ = *min_len_;
  if (best_len_result_ != serial_best_) {
    return Status::Internal("TSP best tour mismatch: got " + std::to_string(best_len_result_) +
                            " want " + std::to_string(serial_best_));
  }
  return Status::Ok();
}

}  // namespace millipage
