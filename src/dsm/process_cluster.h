// Multi-process deployment: one OS process per DSM host — the paper's
// deployment shape — connected by a pre-forked AF_UNIX SOCK_SEQPACKET mesh.
// Each child creates its own DsmNode (memory object, views, SIGSEGV
// handler), runs the application function, joins a final barrier, and exits.

#ifndef SRC_DSM_PROCESS_CLUSTER_H_
#define SRC_DSM_PROCESS_CLUSTER_H_

#include <functional>
#include <vector>

#include "src/common/status.h"
#include "src/dsm/node.h"

namespace millipage {

// How one forked host ended, as observed by the parent's watchdog. Used by
// failure-injection tests to distinguish a survivor that detected the fault
// and exited on its own from one the watchdog had to sweep.
struct HostOutcome {
  bool exited = false;       // reaped at all (false only on waitpid error)
  bool signaled = false;     // terminated by a signal
  int exit_code = 0;         // WEXITSTATUS, when !signaled
  int term_signal = 0;       // WTERMSIG, when signaled
  bool swept = false;        // killed by the watchdog (deadline/grace expiry)
  uint64_t reaped_at_ms = 0; // watchdog time when the child was reaped
};

// Exit code a child uses when its application or final barrier failed a
// liveness check (peer down / deadline exceeded) and it self-terminated.
inline constexpr int kLivenessExitCode = 12;

// Forks config.num_hosts children and runs `fn(node, host)` in each. The
// runtime adds a final barrier after `fn` so no host tears down the protocol
// while others still need it. Returns once every child exited; any child
// that crashed or exited non-zero turns into an error.
// `timeout_ms` bounds the whole run (0 = default 120 s); on expiry (or after
// any child fails) surviving children are killed and an error is returned.
// `outcomes`, when non-null, receives one HostOutcome per host.
Status RunForkedCluster(const DsmConfig& config,
                        const std::function<void(DsmNode&, HostId)>& fn,
                        uint64_t timeout_ms = 0,
                        std::vector<HostOutcome>* outcomes = nullptr);

}  // namespace millipage

#endif  // SRC_DSM_PROCESS_CLUSTER_H_
