# Empty dependencies file for bench_fig7_chunking.
# This may be replaced when dependencies are built.
