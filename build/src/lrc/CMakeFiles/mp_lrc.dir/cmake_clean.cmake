file(REMOVE_RECURSE
  "CMakeFiles/mp_lrc.dir/lrc_cluster.cc.o"
  "CMakeFiles/mp_lrc.dir/lrc_cluster.cc.o.d"
  "CMakeFiles/mp_lrc.dir/lrc_node.cc.o"
  "CMakeFiles/mp_lrc.dir/lrc_node.cc.o.d"
  "libmp_lrc.a"
  "libmp_lrc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mp_lrc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
