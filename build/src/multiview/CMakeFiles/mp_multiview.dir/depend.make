# Empty dependencies file for mp_multiview.
# This may be replaced when dependencies are built.
