file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_chunking.dir/bench_fig7_chunking.cc.o"
  "CMakeFiles/bench_fig7_chunking.dir/bench_fig7_chunking.cc.o.d"
  "bench_fig7_chunking"
  "bench_fig7_chunking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_chunking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
