// Home-based release consistency on MultiView minipages — the protocol the
// paper sketches in Section 5 ("Reduced-Consistency Protocols"): when
// minipages are chunked above the sharing grain, false sharing can be
// eliminated by relaxing the memory model instead of by shrinking the
// sharing unit, and "the overhead involved in the reduced consistency
// protocol itself is small compared to that measured in traditional
// page-based systems, due to the smaller page size".
//
// The design is home-based LRC in the style of Zhou/Iftode/Li (OSDI '96),
// simplified to synchronization-point granularity:
//   * every minipage has a static home host (id mod hosts); the home's
//     memory object holds the master copy;
//   * read faults fetch the master copy from the home (routed through the
//     manager for MPT translation, exactly like millipage requests);
//   * write faults additionally make a twin and mark the minipage dirty —
//     concurrent writers on one minipage are allowed (no invalidations);
//   * at a release (unlock, barrier entry) the host run-length-diffs every
//     dirty minipage against its twin and flushes the diffs to the homes,
//     which apply them to the master copy and acknowledge;
//   * at an acquire (lock grant, barrier exit) the host invalidates every
//     cached non-home minipage, so subsequent reads refetch fresh masters.
//
// Data-race-free programs observe release consistency; unlike millipage's
// SW/MR protocol this pays twin/diff costs (Section 4.2's 250 us/4 KB class
// of overhead) but tolerates false sharing inside large minipages.

#ifndef SRC_LRC_LRC_NODE_H_
#define SRC_LRC_LRC_NODE_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/stats.h"
#include "src/diff/diff.h"
#include "src/dsm/config.h"
#include "src/dsm/directory.h"
#include "src/dsm/wait_slots.h"
#include "src/multiview/allocator.h"
#include "src/multiview/minipage.h"
#include "src/multiview/view_set.h"
#include "src/net/transport.h"

namespace millipage {

// Statistics specific to the LRC protocol.
struct LrcCounters {
  uint64_t read_faults = 0;
  uint64_t write_faults = 0;
  uint64_t fetches = 0;          // master copies pulled from homes
  uint64_t fetch_bytes = 0;
  uint64_t local_upgrades = 0;   // write faults served without any message
  uint64_t twins_created = 0;
  uint64_t diffs_flushed = 0;
  uint64_t diff_bytes = 0;
  uint64_t diffs_applied = 0;    // at this host acting as home
  uint64_t invalidation_sweeps = 0;
  uint64_t messages_sent = 0;
  uint64_t barriers = 0;
  uint64_t lock_acquires = 0;
};

class LrcNode {
 public:
  static Result<std::unique_ptr<LrcNode>> Create(const DsmConfig& config, HostId me,
                                                 Transport* transport);
  ~LrcNode();

  LrcNode(const LrcNode&) = delete;
  LrcNode& operator=(const LrcNode&) = delete;

  void Start();
  void Stop();

  HostId id() const { return me_; }
  uint16_t num_hosts() const { return config_.num_hosts; }
  bool is_manager() const { return me_ == kManagerHost; }
  ViewSet& views() { return *views_; }

  // ---- Application API ----------------------------------------------------

  Result<GlobalAddr> SharedMalloc(uint64_t size);

  std::byte* AppPtr(GlobalAddr a) const { return views_->AppAddr(a.view, a.offset); }

  // Barrier = release (flush diffs) + global rendezvous + acquire
  // (invalidate cached copies).
  void Barrier();
  // Lock = rendezvous + acquire; Unlock = release + hand-off.
  void Lock(uint32_t lock_id);
  void Unlock(uint32_t lock_id);

  // Home of a minipage: static placement.
  HostId HomeOf(MinipageId id) const { return static_cast<HostId>(id % config_.num_hosts); }

  // ---- Fault path -----------------------------------------------------------

  bool OnFault(uint32_t view, uint64_t offset, bool is_write);

  // ---- Introspection --------------------------------------------------------

  LrcCounters counters() const;

 private:
  LrcNode(const DsmConfig& config, HostId me, Transport* transport);

  // A locally cached (non-home) minipage.
  struct CacheEntry {
    Minipage geometry;
    std::unique_ptr<Twin> twin;  // set while writable (dirty)
  };

  void ServerLoop();
  void HandleMessage(const MsgHeader& h);
  // Manager role (allocation, locks, barriers — reusing Directory tables).
  void MgrHandleFetch(const MsgHeader& h);
  void MgrHandleAlloc(const MsgHeader& h);
  void MgrHandleBarrierEnter(const MsgHeader& h);
  void MgrHandleLockAcquire(const MsgHeader& h);
  void MgrHandleLockRelease(const MsgHeader& h);
  // Home role.
  void ServeFetch(const MsgHeader& h);
  void ApplyIncomingDiff(const MsgHeader& h, std::vector<std::byte> payload);

  void HandleFetchReply(const MsgHeader& h);

  // Release: diff+flush all dirty minipages; blocks until homes ack.
  void FlushDirty();
  // Acquire: drop every cached non-home copy.
  void InvalidateCache();

  uint32_t ThreadSlot();
  void SendMsg(HostId to, const MsgHeader& h, const void* payload = nullptr, size_t len = 0);
  Minipage MinipageFromHeader(const MsgHeader& h) const;

  const DsmConfig config_;
  const HostId me_;
  Transport* const transport_;
  std::unique_ptr<ViewSet> views_;
  WaitSlots slots_;

  // Local geometry knowledge, learned from fetch replies and served
  // fetches (guarded by mu_).
  std::unique_ptr<MinipageTable> local_mpt_;

  // MPT-host-only (allocation); sync tables live on host 0 when centralized
  // and on every host when the manager policy is sharded.
  std::unique_ptr<MinipageTable> mpt_;
  std::unique_ptr<MinipageAllocator> allocator_;
  std::unique_ptr<Directory> directory_;

  std::thread server_;
  std::atomic<bool> stop_{false};

  // Cache of non-home minipages and the set of home-owned minipages made
  // writable locally. Guarded by mu_ (fault path + app sync path; the
  // server thread only touches the privileged view).
  mutable std::mutex mu_;
  std::map<MinipageId, CacheEntry> cache_;
  std::vector<MinipageId> dirty_;
  // Diff-flush acknowledgement tracking.
  std::atomic<uint32_t> flush_acks_pending_{0};

  mutable std::mutex stats_mu_;
  LrcCounters counters_;

  // Payload staging for incoming diffs (applied after header dispatch).
  std::vector<std::byte> diff_buffer_;
};

}  // namespace millipage

#endif  // SRC_LRC_LRC_NODE_H_
