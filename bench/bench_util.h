// Shared helpers for the paper-reproduction benchmark binaries: simple
// best-of-k timing, aligned table printing with paper-vs-measured columns,
// and a machine-readable reporting layer. Every bench binary accepts
//   --smoke              run at tiny sizes (CI shape check, not a measurement)
//   --bench_json=<path>  write structured results as JSON
// and routes its rows through a BenchReporter so `bench_smoke` can merge all
// binaries into one BENCH.json (schema in EXPERIMENTS.md).

#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/time_util.h"

namespace millipage {

// Runs `fn` `iters` times and returns the average time per call in
// microseconds, taking the best of `repeats` batches to suppress scheduler
// noise.
inline double MeasureUs(const std::function<void()>& fn, int iters = 1000, int repeats = 3) {
  double best = 1e100;
  for (int r = 0; r < repeats; ++r) {
    const uint64_t t0 = MonotonicNowNs();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    const double us = static_cast<double>(MonotonicNowNs() - t0) / 1000.0 / iters;
    if (us < best) {
      best = us;
    }
  }
  return best;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

inline void PrintRow(const std::string& label, double measured_us, const char* paper) {
  std::printf("  %-44s %10.2f us   (paper: %s)\n", label.c_str(), measured_us, paper);
}

inline void PrintNote(const std::string& note) { std::printf("  %s\n", note.c_str()); }

// Command-line environment shared by all bench binaries.
class BenchEnv {
 public:
  static BenchEnv Parse(int argc, char** argv) {
    BenchEnv env;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strcmp(arg, "--smoke") == 0) {
        env.smoke_ = true;
      } else if (std::strncmp(arg, "--bench_json=", 13) == 0) {
        env.json_path_ = arg + 13;
      }
    }
    return env;
  }

  bool smoke() const { return smoke_; }
  const std::string& json_path() const { return json_path_; }

  // Pick the full-run or smoke-run value for a size/iteration knob.
  int Scaled(int full, int smoke_value) const { return smoke_ ? smoke_value : full; }

 private:
  bool smoke_ = false;
  std::string json_path_;
};

// One measured row: what ran, at what size, and what it cost.
struct BenchResult {
  std::string name;
  std::string params;  // human-readable knob settings, e.g. "hosts=4 chunking=2"
  uint64_t iterations = 0;
  double ns_per_op = 0.0;
  std::map<std::string, double> values;  // extra named values (speedup, bytes, ...)
  std::string metrics_json;              // optional MetricsSnapshot::DumpJson()
};

namespace bench_internal {

inline void AppendJsonString(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

inline void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  out->append(buf);
}

}  // namespace bench_internal

// Collects BenchResults and writes the per-binary JSON document:
//   {"bench": <name>, "smoke": <bool>, "results": [...]}
// Call Finish() last; it returns the process exit code (nonzero if the JSON
// file could not be written), so mains end with `return reporter.Finish();`.
class BenchReporter {
 public:
  BenchReporter(std::string bench_name, const BenchEnv& env)
      : bench_name_(std::move(bench_name)), env_(env) {}

  void Add(BenchResult result) { results_.push_back(std::move(result)); }

  // Convenience for the common "one label, measured in us/op" row.
  void AddUs(const std::string& name, const std::string& params, double us_per_op,
             uint64_t iterations) {
    BenchResult r;
    r.name = name;
    r.params = params;
    r.iterations = iterations;
    r.ns_per_op = us_per_op * 1000.0;
    results_.push_back(std::move(r));
  }

  // Attach a metrics snapshot to the most recently added result.
  void AttachMetrics(const MetricsSnapshot& snapshot) {
    if (!results_.empty()) {
      results_.back().metrics_json = snapshot.DumpJson();
    }
  }

  std::string ToJson() const {
    std::string out = "{\"bench\":";
    bench_internal::AppendJsonString(&out, bench_name_);
    out += ",\"smoke\":";
    out += env_.smoke() ? "true" : "false";
    out += ",\"results\":[";
    bool first = true;
    for (const BenchResult& r : results_) {
      if (!first) {
        out.push_back(',');
      }
      first = false;
      out += "{\"name\":";
      bench_internal::AppendJsonString(&out, r.name);
      out += ",\"params\":";
      bench_internal::AppendJsonString(&out, r.params);
      out += ",\"iterations\":" + std::to_string(r.iterations);
      out += ",\"ns_per_op\":";
      bench_internal::AppendDouble(&out, r.ns_per_op);
      if (!r.values.empty()) {
        out += ",\"values\":{";
        bool vf = true;
        for (const auto& [k, v] : r.values) {
          if (!vf) {
            out.push_back(',');
          }
          vf = false;
          bench_internal::AppendJsonString(&out, k);
          out.push_back(':');
          bench_internal::AppendDouble(&out, v);
        }
        out.push_back('}');
      }
      if (!r.metrics_json.empty()) {
        out += ",\"metrics\":" + r.metrics_json;  // already-serialized JSON object
      }
      out.push_back('}');
    }
    out += "]}";
    return out;
  }

  // Writes the JSON file if --bench_json was given. Returns the exit code.
  int Finish() const {
    if (env_.json_path().empty()) {
      return 0;
    }
    std::FILE* f = std::fopen(env_.json_path().c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "bench: cannot open %s for writing\n", env_.json_path().c_str());
      return 1;
    }
    const std::string json = ToJson();
    const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
                    std::fputc('\n', f) != EOF;
    if (std::fclose(f) != 0 || !ok) {
      std::fprintf(stderr, "bench: short write to %s\n", env_.json_path().c_str());
      return 1;
    }
    return 0;
  }

 private:
  std::string bench_name_;
  BenchEnv env_;
  std::vector<BenchResult> results_;
};

}  // namespace millipage

#endif  // BENCH_BENCH_UTIL_H_
