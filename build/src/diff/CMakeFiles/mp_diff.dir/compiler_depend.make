# Empty compiler generated dependencies file for mp_diff.
# This may be replaced when dependencies are built.
