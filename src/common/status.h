// Lightweight, exception-free error model used throughout millipage.
//
// Status carries an error code and a human-readable message; Result<T> is a
// Status-or-value union. Both are modeled after absl::Status/StatusOr but are
// self-contained so the project has no external dependencies beyond the
// standard library.

#ifndef SRC_COMMON_STATUS_H_
#define SRC_COMMON_STATUS_H_

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <variant>

namespace millipage {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kResourceExhausted,
  kFailedPrecondition,
  kOutOfRange,
  kUnimplemented,
  kInternal,
  kUnavailable,
  kDeadlineExceeded,
};

const char* StatusCodeName(StatusCode code);

class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status Invalid(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Exhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Precondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  // Builds an error from the current errno, in the style of perror().
  static Status Errno(const std::string& what) {
    return Status(StatusCode::kInternal, what + ": " + std::strerror(errno));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) {
      return "OK";
    }
    return std::string(StatusCodeName(code_)) + ": " + message_;
  }

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

// Result<T>: either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : data_(std::move(status)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOkStatus;
    if (ok()) {
      return kOkStatus;
    }
    return std::get<Status>(data_);
  }

  T& value() & { return std::get<T>(data_); }
  const T& value() const& { return std::get<T>(data_); }
  T&& value() && { return std::get<T>(std::move(data_)); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<Status, T> data_;
};

// Propagates a non-OK Status from an expression returning Status.
#define MP_RETURN_IF_ERROR(expr)          \
  do {                                    \
    ::millipage::Status _st = (expr);     \
    if (!_st.ok()) {                      \
      return _st;                         \
    }                                     \
  } while (0)

// Assigns the value of a Result expression or propagates its error.
#define MP_ASSIGN_OR_RETURN(lhs, expr)    \
  auto MP_CONCAT_(_res_, __LINE__) = (expr);              \
  if (!MP_CONCAT_(_res_, __LINE__).ok()) {                \
    return MP_CONCAT_(_res_, __LINE__).status();          \
  }                                                       \
  lhs = std::move(MP_CONCAT_(_res_, __LINE__)).value()

#define MP_CONCAT_INNER_(a, b) a##b
#define MP_CONCAT_(a, b) MP_CONCAT_INNER_(a, b)

}  // namespace millipage

#endif  // SRC_COMMON_STATUS_H_
