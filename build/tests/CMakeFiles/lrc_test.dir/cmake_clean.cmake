file(REMOVE_RECURSE
  "CMakeFiles/lrc_test.dir/lrc_test.cc.o"
  "CMakeFiles/lrc_test.dir/lrc_test.cc.o.d"
  "lrc_test"
  "lrc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lrc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
