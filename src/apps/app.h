// Common harness for the five paper applications (Section 4.3): SOR, LU,
// WATER, IS, TSP. Each app allocates its shared data on the manager, runs
// one worker per host, and validates the result. The harness also collects
// the Table 2 quantities (shared size, views, granularity, barriers, locks)
// and the epoch records the cost model prices for Figures 6 and 7.

#ifndef SRC_APPS_APP_H_
#define SRC_APPS_APP_H_

#include <string>

#include "src/common/status.h"
#include "src/dsm/cluster.h"
#include "src/model/cost_model.h"

namespace millipage {

class App {
 public:
  virtual ~App() = default;

  virtual std::string name() const = 0;
  virtual std::string input_desc() const = 0;
  virtual std::string granularity_desc() const = 0;
  // Calibration constant for the cost model (ns of 300 MHz-class compute
  // per reported work unit).
  virtual double ns_per_work_unit() const = 0;
  // Epochs at the start of Worker that only distribute data (excluded from
  // modeled time, as in the SPLASH-2 methodology).
  virtual uint32_t warmup_epochs() const { return 1; }

  // Allocates and initializes shared state (manager thread, before workers).
  virtual void Setup(DsmNode& manager) = 0;
  // Parallel body; must end with a barrier.
  virtual void Worker(DsmNode& node, HostId host) = 0;
  // Result check (manager thread, after workers).
  virtual Status Validate(DsmNode& manager) = 0;
};

// Table 2 row plus everything the model needs.
struct AppRunResult {
  std::string name;
  std::string input_desc;
  std::string granularity_desc;
  uint64_t shared_bytes = 0;   // bytes handed out by the shared allocator
  uint32_t num_views = 0;      // distinct application views in use
  uint64_t num_minipages = 0;
  uint64_t barriers = 0;       // per-host barrier count
  uint64_t locks = 0;          // cluster-wide lock acquisitions
  uint64_t read_faults = 0;    // cluster-wide
  uint64_t write_faults = 0;   // cluster-wide
  uint64_t competing_requests = 0;
  Status validation = Status::Ok();

  AppTimingInput timing;  // epochs + calibration, ready for ModelRun
};

// Runs `app` on `cluster` (Setup -> Workers -> Validate) and gathers stats.
AppRunResult RunApp(DsmCluster& cluster, App& app);

}  // namespace millipage

#endif  // SRC_APPS_APP_H_
