#include "src/apps/sor.h"

#include <cmath>
#include <sstream>

#include "src/common/logging.h"

namespace millipage {

namespace {

// Band of interior rows owned by `host` ([lo, hi)).
void Band(uint32_t rows, uint16_t hosts, HostId host, uint32_t* lo, uint32_t* hi) {
  const uint32_t interior = rows - 2;  // rows 0 and rows-1 are fixed borders
  *lo = 1 + interior * host / hosts;
  *hi = 1 + interior * (host + 1) / hosts;
}

float InitValue(uint32_t i, uint32_t j, uint32_t cols) {
  return static_cast<float>((i * cols + j) % 100) / 100.0f;
}

}  // namespace

std::string SorApp::input_desc() const {
  std::ostringstream os;
  os << config_.rows << "x" << config_.cols << " matrix, " << config_.iterations
     << " iterations";
  return os.str();
}

std::string SorApp::granularity_desc() const {
  std::ostringstream os;
  os << "a row, " << config_.cols * sizeof(float) << " bytes";
  return os.str();
}

void SorApp::Setup(DsmNode& manager) {
  rows_.clear();
  rows_.reserve(config_.rows);
  for (uint32_t r = 0; r < config_.rows; ++r) {
    rows_.push_back(SharedAlloc<float>(config_.cols));
    float* row = rows_.back().get();
    for (uint32_t c = 0; c < config_.cols; ++c) {
      row[c] = InitValue(r, c, config_.cols);
    }
  }
  (void)manager;

  // Serial reference for validation.
  std::vector<std::vector<float>> ref(config_.rows, std::vector<float>(config_.cols));
  for (uint32_t r = 0; r < config_.rows; ++r) {
    for (uint32_t c = 0; c < config_.cols; ++c) {
      ref[r][c] = InitValue(r, c, config_.cols);
    }
  }
  for (uint32_t it = 0; it < config_.iterations; ++it) {
    for (int color = 0; color < 2; ++color) {
      for (uint32_t r = 1; r + 1 < config_.rows; ++r) {
        for (uint32_t c = 1; c + 1 < config_.cols; ++c) {
          if ((r + c) % 2 == static_cast<uint32_t>(color)) {
            ref[r][c] = 0.25f * (ref[r - 1][c] + ref[r + 1][c] + ref[r][c - 1] + ref[r][c + 1]);
          }
        }
      }
    }
  }
  expected_checksum_ = 0;
  for (uint32_t r = 0; r < config_.rows; ++r) {
    for (uint32_t c = 0; c < config_.cols; ++c) {
      expected_checksum_ += ref[r][c];
    }
  }
}

void SorApp::Worker(DsmNode& node, HostId host) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  Band(config_.rows, node.num_hosts(), host, &lo, &hi);
  // Distribution pass (excluded warmup epoch): each host takes ownership of
  // its band so steady-state iterations only exchange boundary rows.
  for (uint32_t r = lo; r < hi; ++r) {
    volatile float* row = Row(r);
    row[0] = row[0];
  }
  node.Barrier();
  for (uint32_t it = 0; it < config_.iterations; ++it) {
    for (int color = 0; color < 2; ++color) {
      uint64_t cells = 0;
      for (uint32_t r = lo; r < hi; ++r) {
        const float* up = Row(r - 1);
        const float* down = Row(r + 1);
        float* cur = Row(r);
        for (uint32_t c = 1; c + 1 < config_.cols; ++c) {
          if ((r + c) % 2 == static_cast<uint32_t>(color)) {
            cur[c] = 0.25f * (up[c] + down[c] + cur[c - 1] + cur[c + 1]);
            cells++;
          }
        }
      }
      node.AddWorkUnits(cells);
      node.Barrier();
    }
  }
}

Status SorApp::Validate(DsmNode& manager) {
  (void)manager;
  double sum = 0;
  for (uint32_t r = 0; r < config_.rows; ++r) {
    const float* row = Row(r);
    for (uint32_t c = 0; c < config_.cols; ++c) {
      sum += row[c];
    }
  }
  if (std::abs(sum - expected_checksum_) > 1e-3 * (std::abs(expected_checksum_) + 1)) {
    return Status::Internal("SOR checksum mismatch: got " + std::to_string(sum) +
                            " want " + std::to_string(expected_checksum_));
  }
  return Status::Ok();
}

}  // namespace millipage
