// Figure 6 reproduction: speedups of the five applications on 1-8 hosts
// (left chart) and the execution-time breakdown at 8 hosts (right chart).
//
// Protocol events (faults, bytes, invalidations, barriers, locks) are
// measured from real executions on the in-process cluster; times are
// modeled with the paper-calibrated cost model (Table 1 / Section 4.2
// parameters, including the ~500 us polling-delay the paper describes in
// Section 3.5.1). Expected shape: IS and SOR near-linear; LU good (thin
// protocol + prefetch); WATER decent with chunking; TSP good.

#include <cstdio>
#include <functional>
#include <memory>
#include <vector>

#include "bench/app_bench_util.h"
#include "bench/bench_util.h"
#include "src/apps/is.h"
#include "src/apps/lu.h"
#include "src/apps/sor.h"
#include "src/apps/tsp.h"
#include "src/apps/water.h"
#include "src/model/cost_model.h"

namespace millipage {
namespace {

struct AppSpec {
  const char* name;
  uint32_t chunking;
  std::function<std::unique_ptr<App>()> make;
  const char* paper_shape;
};

std::vector<AppSpec> Suite() {
  return {
      {"SOR", 1,
       [] {
         SorConfig cfg;  // the paper's input: 32768x64 floats, 256 B rows
         cfg.rows = 32768;
         cfg.cols = 64;
         cfg.iterations = 10;
         return std::make_unique<SorApp>(cfg);
       },
       "close to linear"},
      {"LU", 1,
       [] {
         LuConfig cfg;  // paper: 1024x1024; 768 keeps the same block grain
         cfg.n = 768;
         cfg.block = 32;
         return std::make_unique<LuApp>(cfg);
       },
       "good (thin layer + prefetch)"},
      {"WATER", 4,
       [] {
         WaterConfig cfg;  // the paper's input: 512 molecules
         cfg.num_molecules = 512;
         cfg.iterations = 3;
         return std::make_unique<WaterApp>(cfg);
       },
       "comparable to relaxed-consistency systems (chunked)"},
      {"IS", 1,
       [] {
         IsConfig cfg;  // the paper's input: 2^23 keys, 2^9 values
         cfg.num_keys = 1 << 23;
         cfg.iterations = 5;
         return std::make_unique<IsApp>(cfg);
       },
       "close to linear"},
      {"TSP", 1,
       [] {
         TspConfig cfg;  // paper: 19 cities, depth 12; same tasks-per-host
         cfg.num_cities = 13;  // shape with a tractable search space
         cfg.prefix_depth = 3;  // ~130 coarse tasks: compute-dominated, as
                                // the paper's depth-12/19-city input is
         return std::make_unique<TspApp>(cfg);
       },
       "good"},
  };
}

}  // namespace
}  // namespace millipage

int main() {
  using namespace millipage;
  const CostModel model;
  const std::vector<uint16_t> host_counts = {1, 2, 4, 8};

  PrintHeader("Figure 6 (left): speedups on 1-8 hosts (modeled from measured events)");
  std::printf("  %-7s", "app");
  for (uint16_t h : host_counts) {
    std::printf("   p=%-5u", h);
  }
  std::printf("  paper shape\n");

  std::vector<std::pair<std::string, Breakdown>> breakdowns;
  std::vector<std::pair<std::string, std::pair<double, double>>> fast_predictions;
  const CostModel fast = model.WithFastService();
  for (const AppSpec& spec : Suite()) {
    std::printf("  %-7s", spec.name);
    double serial_us = 0;
    double serial_fast_us = 0;
    for (uint16_t hosts : host_counts) {
      auto app = spec.make();
      const AppRunResult r = RunAppOnCluster(AppBenchConfig(hosts, spec.chunking), *app);
      const ModeledRun run = ModelRun(model, r.timing);
      const ModeledRun run_fast = ModelRun(fast, r.timing);
      if (hosts == 1) {
        serial_us = run.total_us;
        serial_fast_us = run_fast.total_us;
        std::printf("   %6.2f", 1.0);
      } else {
        std::printf("   %6.2f", serial_us / run.total_us);
      }
      if (hosts == 8) {
        breakdowns.emplace_back(spec.name, run.breakdown);
        fast_predictions.emplace_back(
            spec.name,
            std::make_pair(serial_us / run.total_us, serial_fast_us / run_fast.total_us));
      }
    }
    std::printf("  %s\n", spec.paper_shape);
  }

  PrintHeader("Figure 6 (right): breakdown at 8 hosts (% of modeled time)");
  for (const auto& [name, b] : breakdowns) {
    std::printf("  %-7s %s\n", name.c_str(), b.ToString().c_str());
  }
  PrintNote("paper: computation dominates SOR/IS/TSP; LU shows a visible prefetch slice;");
  PrintNote("WATER carries the largest fault+synch share.");

  PrintHeader("Section 3.5 prediction: speedups once the polling problem is solved");
  std::printf("  %-7s %18s %22s\n", "app", "p=8 (as measured)", "p=8 (fast service)");
  for (const auto& [name, pair] : fast_predictions) {
    std::printf("  %-7s %18.2f %22.2f\n", name.c_str(), pair.first, pair.second);
  }
  PrintNote("the paper expects the fault-service delay (timer/polling) to shrink once");
  PrintNote("resolved; same measured events priced without the ~500 us response delay.");
  return 0;
}
