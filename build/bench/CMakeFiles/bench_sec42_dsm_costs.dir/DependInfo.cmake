
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_sec42_dsm_costs.cc" "bench/CMakeFiles/bench_sec42_dsm_costs.dir/bench_sec42_dsm_costs.cc.o" "gcc" "bench/CMakeFiles/bench_sec42_dsm_costs.dir/bench_sec42_dsm_costs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/mp_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/lrc/CMakeFiles/mp_lrc.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/mp_model.dir/DependInfo.cmake"
  "/root/repo/build/src/diff/CMakeFiles/mp_diff.dir/DependInfo.cmake"
  "/root/repo/build/src/dsm/CMakeFiles/mp_dsm.dir/DependInfo.cmake"
  "/root/repo/build/src/multiview/CMakeFiles/mp_multiview.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/os/CMakeFiles/mp_os.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
