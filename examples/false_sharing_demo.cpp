// False-sharing demo: the paper's headline problem and its MultiView cure,
// side by side.
//
// Two hosts alternately increment two different variables that live on the
// same physical page. With classic page-granularity sharing (Ivy-style,
// --page-based) the page ping-pongs between the hosts on every round; with
// MultiView minipages each variable has its own protection and each host
// faults exactly once, ever.
//
// Build & run:  ./build/examples/false_sharing_demo [rounds]

#include <cstdio>
#include <cstdlib>

#include "src/common/time_util.h"
#include "src/dsm/cluster.h"
#include "src/dsm/global_ptr.h"

using namespace millipage;

namespace {

struct DemoResult {
  uint64_t faults = 0;
  uint64_t bytes_moved = 0;
  double wall_ms = 0;
};

DemoResult Run(bool page_based, int rounds) {
  DsmConfig config;
  config.num_hosts = 2;
  config.object_size = 1 << 20;
  config.num_views = 8;
  config.page_based = page_based;
  auto cluster = DsmCluster::Create(config);
  MP_CHECK(cluster.ok()) << cluster.status().ToString();

  GlobalPtr<int> x;
  GlobalPtr<int> y;
  (*cluster)->RunOnManager([&](DsmNode&) {
    x = SharedAlloc<int>(1);
    y = SharedAlloc<int>(1);
    *x = 0;
    *y = 0;
  });
  // Same page, independent protection (unless page_based collapsed them).
  std::printf("  x at view %u offset %lu | y at view %u offset %lu -> %s\n", x.addr().view,
              static_cast<unsigned long>(x.addr().offset), y.addr().view,
              static_cast<unsigned long>(y.addr().offset),
              page_based ? "one full-page sharing unit" : "two independent minipages");

  const uint64_t t0 = MonotonicNowNs();
  (*cluster)->RunParallel([&](DsmNode& node, HostId host) {
    node.Barrier();
    for (int r = 0; r < rounds; ++r) {
      if (host == 0) {
        *x = *x + 1;
      } else {
        *y = *y + 1;
      }
      node.Barrier();
    }
  });
  DemoResult result;
  result.wall_ms = static_cast<double>(MonotonicNowNs() - t0) / 1e6;
  const HostCounters totals = (*cluster)->TotalCounters();
  result.faults = totals.read_faults + totals.write_faults;
  result.bytes_moved = totals.read_fault_bytes + totals.write_fault_bytes;
  (*cluster)->RunOnManager([&](DsmNode&) {
    MP_CHECK(*x == rounds && *y == rounds) << "wrong result!";
  });
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 100;
  std::printf("Two hosts, %d rounds, x and y on the same physical page.\n\n", rounds);

  std::printf("MultiView minipages (the paper's technique):\n");
  const DemoResult fine = Run(/*page_based=*/false, rounds);
  std::printf("  -> %lu faults, %lu bytes moved, %.1f ms\n\n",
              static_cast<unsigned long>(fine.faults),
              static_cast<unsigned long>(fine.bytes_moved), fine.wall_ms);

  std::printf("Full-page sharing (Ivy-style baseline):\n");
  const DemoResult coarse = Run(/*page_based=*/true, rounds);
  std::printf("  -> %lu faults, %lu bytes moved, %.1f ms\n\n",
              static_cast<unsigned long>(coarse.faults),
              static_cast<unsigned long>(coarse.bytes_moved), coarse.wall_ms);

  std::printf("false sharing cost: %.1fx the faults, %.1fx the data volume\n",
              static_cast<double>(coarse.faults) / static_cast<double>(fine.faults ? fine.faults : 1),
              static_cast<double>(coarse.bytes_moved) /
                  static_cast<double>(fine.bytes_moved ? fine.bytes_moved : 1));
  return 0;
}
